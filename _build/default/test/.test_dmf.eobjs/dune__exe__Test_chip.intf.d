test/test_chip.mli:
