lib/mixtree/entry.mli: Dmf Format
