(** The full stack in one call: plan → schedule → place → execute →
    analyse.

    [run] prepares the mixing forest for an {!Mdst.Engine.spec}, sizes a
    default chip (or uses the one you pass), executes the schedule in the
    droplet simulator, verifies every emitted droplet, and returns the
    physical analyses alongside the engine result. *)

type result = {
  engine : Mdst.Engine.result;
  layout : Chip.Layout.t;
  trace : Trace.t;
  stats : Executor.stats;
  actuation : Chip.Actuation.t;  (** Movement-level accounting. *)
  wear : Wear.t;  (** Per-electrode actuation heatmap. *)
  contamination : Contamination.t;  (** Residue crossings and wash estimate. *)
}

val run :
  ?layout:Chip.Layout.t -> Mdst.Engine.spec -> (result, string) Stdlib.result
(** [run spec] executes the whole pipeline.  Without [layout] a default
    chip is generated with exactly the mixers and storage units the
    schedule needs.  Fails if the layout cannot host the schedule, the
    simulation breaks a constraint it cannot fall back from, or the
    emitted droplets do not verify against the target. *)
