type 'a heap =
  | Empty
  | Node of 'a * 'a heap list

type 'a t = { compare : 'a -> 'a -> int; heap : 'a heap; size : int }

let empty ~compare = { compare; heap = Empty; size = 0 }
let is_empty q = q.size = 0
let size q = q.size

let merge compare a b =
  match (a, b) with
  | Empty, h | h, Empty -> h
  | Node (x, xs), Node (y, ys) ->
    if compare x y <= 0 then Node (x, b :: xs) else Node (y, a :: ys)

let insert x q =
  { q with heap = merge q.compare (Node (x, [])) q.heap; size = q.size + 1 }

(* Two-pass pairing merge keeps pop amortised logarithmic. *)
let rec merge_pairs compare = function
  | [] -> Empty
  | [ h ] -> h
  | a :: b :: rest -> merge compare (merge compare a b) (merge_pairs compare rest)

let pop q =
  match q.heap with
  | Empty -> None
  | Node (x, children) ->
    Some (x, { q with heap = merge_pairs q.compare children; size = q.size - 1 })

let of_list ~compare xs =
  List.fold_left (fun q x -> insert x q) (empty ~compare) xs

let union a b =
  { a with heap = merge a.compare a.heap b.heap; size = a.size + b.size }

let to_sorted_list q =
  let rec drain acc q =
    match pop q with
    | None -> List.rev acc
    | Some (x, q) -> drain (x :: acc) q
  in
  drain [] q
