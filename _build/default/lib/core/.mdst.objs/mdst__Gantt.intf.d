lib/core/gantt.mli: Format Plan Schedule
