lib/core/mms.ml: Array Dmf Int List Plan Queue Schedule
