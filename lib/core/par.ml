(* Chunked parallel map on stdlib Domain (OCaml 5): the input is split
   into [domains] contiguous blocks whose sizes differ by at most one,
   [domains - 1] blocks run on spawned domains, the first on the calling
   domain, and the results are reassembled in input order — so the output
   is identical whatever the domain count.

   Corpus sweeps are embarrassingly parallel (one ratio per evaluation),
   so coarse contiguous chunking beats a work-stealing pool here: no
   shared queue, no per-item synchronisation, one join per domain. *)

let default_domains () =
  match Sys.getenv_opt "MDST_DOMAINS" with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d when d >= 1 -> d
    | Some _ | None ->
      invalid_arg "MDST_DOMAINS must be a positive integer")
  | None -> Domain.recommended_domain_count ()

(* Spawning from inside a worker would multiply domains beyond the
   requested count (e.g. a parallel bench sweep calling the parallel
   corpus average), so nested calls degrade to serial. *)
let inside_parallel_region = Domain.DLS.new_key (fun () -> false)

let map_array ?domains f input =
  let n = Array.length input in
  let domains =
    if Domain.DLS.get inside_parallel_region then 1
    else match domains with Some d -> max 1 d | None -> default_domains ()
  in
  if domains = 1 || n <= 1 then Array.map f input
  else begin
    let k = min domains n in
    let base = n / k and extra = n mod k in
    let bounds i =
      let start = (i * base) + min i extra in
      let len = base + if i < extra then 1 else 0 in
      (start, len)
    in
    let work i () =
      Domain.DLS.set inside_parallel_region true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set inside_parallel_region false)
        (fun () ->
          let start, len = bounds i in
          Array.init len (fun j -> f input.(start + j)))
    in
    Analysis.Runtime.note_domain_spawn ();
    let spawned = Array.init (k - 1) (fun i -> Domain.spawn (work (i + 1))) in
    let wrap g = try Ok (g ()) with e -> Error e in
    let first = wrap (work 0) in
    let rest = Array.map (fun d -> wrap (fun () -> Domain.join d)) spawned in
    let chunks =
      Array.map
        (function Ok chunk -> chunk | Error e -> raise e)
        (Array.append [| first |] rest)
    in
    Array.concat (Array.to_list chunks)
  end

let serialized f =
  let prev = Domain.DLS.get inside_parallel_region in
  Domain.DLS.set inside_parallel_region true;
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set inside_parallel_region prev)
    f

let map ?domains f xs =
  Array.to_list (map_array ?domains f (Array.of_list xs))

let iter ?domains f xs = ignore (map ?domains f xs)
