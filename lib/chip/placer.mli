(** Placement optimisation: "the relative positions of reservoirs and
    mixers are optimized considering the total droplet-transportation
    cost" (Section 5, after [21]).

    Starting from a layout, the placer permutes same-kind modules across
    their slots — reservoirs across reservoir positions, mixers across
    mixer positions, storage across storage positions — by simulated
    annealing against the flow-weighted transportation cost of a concrete
    schedule.  This is a documented extension: the paper takes its layout
    from [21] as given, while we both reproduce that fixed layout
    ({!Layout.pcr_fig5}) and search for better ones. *)

type flows = ((string * string) * int) list
(** Movement counts between module pairs. *)

val flows_of_accounting : Actuation.t -> flows
(** Aggregate an actuation accounting into per-pair movement counts. *)

val transport_cost : Layout.t -> flows -> int
(** Flow-weighted shortest-path cost of a layout; pairs whose modules are
    missing or unreachable contribute a large penalty. *)

val optimize :
  ?iterations:int ->
  ?seed:int ->
  ?batch:int ->
  Layout.t ->
  flows:flows ->
  Layout.t * int
(** [optimize layout ~flows] anneals module permutations and returns the
    best layout found with its cost.  Candidate swaps are delta-evaluated:
    only the two touched modules are re-flooded ({!Cost_matrix.update}),
    never the whole matrix.

    With the default [batch = 1] the annealing trajectory is
    bit-identical to {!Reference.optimize} for a fixed [seed].  With
    [batch > 1], each round draws [batch] independent candidate swaps,
    evaluates them concurrently over domains ([Mdst.Par]) and anneals
    on the cheapest; the trajectory then depends only on
    [(seed, batch)], not on the domain count. *)

val optimize_for :
  ?iterations:int ->
  ?seed:int ->
  ?batch:int ->
  plan:Mdst.Plan.t ->
  schedule:Mdst.Schedule.t ->
  Layout.t ->
  (Layout.t * int * int, string) result
(** Convenience wrapper: account the schedule on the layout, optimise for
    the resulting flows and return
    [(best_layout, cost_before, cost_after)] in actuated electrodes. *)

(** The original annealer — a full cost-matrix rebuild per candidate —
    kept as the differential reference for the delta-evaluated
    {!optimize}. *)
module Reference : sig
  val optimize :
    ?iterations:int -> ?seed:int -> Layout.t -> flows:flows -> Layout.t * int
end
