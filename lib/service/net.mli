(** Shared TCP name resolution.

    The dmfstream client, the dmfd listener and the dmfrouter shard pool
    all resolve [host:port] endpoints through this one helper, built on
    the thread-safe [Unix.getaddrinfo] (the deprecated
    [Unix.gethostbyname] shares a static result buffer and must not be
    called from the router's per-shard threads). *)

val resolve : host:string -> port:int -> Unix.sockaddr
(** Resolve [host] to an IPv4 socket address.  [host] may be a dotted
    quad (no lookup performed) or a name.
    @raise Failure ["cannot resolve host <host>"] when resolution yields
    no IPv4 address. *)

val connect : host:string -> port:int -> Unix.file_descr
(** {!resolve}, then open a connected [SOCK_STREAM] socket.  The socket
    is closed again if [connect] itself fails.
    @raise Failure on resolution failure, [Unix.Unix_error] on
    connection failure. *)
