type counters = {
  lock : Mutex.t;
  mutable served : int;
  mutable errors : int;
  mutable jobs : int;
  mutable plans_built : int;
  mutable store_hits : int;
  mutable latency_ms_sum : float;
  mutable latency_samples : int;
}

type t = {
  queue : Queue.t;
  cache : Prep.prepared Cache.t;
  counters : counters;
  pool : Pool.t;
  started_at : float;
  wal_stats : (unit -> Jsonl.t) option;
  repl_stats : (unit -> Jsonl.t) option;
  store : Store.t option;
}

let with_counters c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) (fun () -> f c)
[@@dmflint.allow
  "callback-under-lock: with-lock combinator over the counters record; \
   every closure passed in is a handful of integer field updates"]

(* The planning handler every pool worker runs: plan cache first, then
   the on-disk plan store, the engine only when both miss.  The spec
   demand is already the coalesced sum.  A store hit enters the LRU
   like a fresh plan but reports [cache_hit = false] — the response
   surface is unchanged by the store, only the stats object knows.
   [on_complete] (the WAL's completion hook) fires for every job — hits
   refresh LRU recency, which recovery must replay — and strictly
   before [Queue.fulfil] releases the waiters, so with a strict fsync
   policy no client ever observes a response that is not yet durable. *)
let run_job cache counters on_complete store job =
  let spec = Queue.job_spec job in
  let coalesced = Queue.job_requests job in
  let batch_demand = spec.Request.demand in
  let key = Request.cache_key spec in
  let store_find () =
    match store with None -> None | Some s -> s.Store.find spec
  in
  let result =
    match Cache.find cache key with
    | Some prepared ->
      Ok { Queue.prepared; batch_demand; coalesced; cache_hit = true }
    | None -> (
      match store_find () with
      | Some prepared ->
        Cache.add cache key prepared;
        with_counters counters (fun c -> c.store_hits <- c.store_hits + 1);
        Ok { Queue.prepared; batch_demand; coalesced; cache_hit = false }
      | None -> (
        match Validate.protect (fun () -> Prep.run spec) with
        | Ok prepared ->
          Cache.add cache key prepared;
          (match store with None -> () | Some s -> s.Store.add spec prepared);
          with_counters counters (fun c -> c.plans_built <- c.plans_built + 1);
          Ok { Queue.prepared; batch_demand; coalesced; cache_hit = false }
        | Error msg -> Error msg))
  in
  with_counters counters (fun c -> c.jobs <- c.jobs + 1);
  (match on_complete with
  | Some hook -> hook ~spec ~requests:coalesced ~ok:(Result.is_ok result)
  | None -> ());
  Queue.fulfil job result

let create ?workers ?(queue_capacity = 256) ?(cache_capacity = 1024) ?on_accept
    ?on_complete ?wal_stats ?repl_stats ?store () =
  let workers =
    match workers with Some w -> w | None -> Mdst.Par.default_domains ()
  in
  let queue = Queue.create ?on_admit:on_accept ~capacity:queue_capacity () in
  let cache = Cache.create ~capacity:cache_capacity in
  let counters =
    {
      lock = Mutex.create ();
      served = 0;
      errors = 0;
      jobs = 0;
      plans_built = 0;
      store_hits = 0;
      latency_ms_sum = 0.;
      latency_samples = 0;
    }
  in
  let pool =
    Pool.start ~workers ~handler:(run_job cache counters on_complete store) queue
  in
  {
    queue;
    cache;
    counters;
    pool;
    started_at = Unix.gettimeofday ();
    wal_stats;
    repl_stats;
    store;
  }

let workers t = Pool.workers t.pool
let cache_keys t = Cache.keys t.cache

type primed = { replanned : int; from_store : int }

(* Recovery priming: rebuild the plans the crashed process had.  The
   plan store is consulted first — a decoded entry is bit-identical to
   a re-plan (the differential tests in [test_plan_store] hold the
   codec to that), so priming from it preserves PR 5's determinism
   guarantee while skipping the planning work.  Re-planning remains the
   fallback for misses and version mismatches; it is deterministic
   (every spec dispatches through the Mdst.Scheduler registry), so
   inserting in least-recently-used-first order reproduces both the
   cache contents and the recency chain either way.  Recovered pending
   requests are resubmitted quietly — their accepted records are
   already journaled — with no waiter: the pool plans them and the
   completion hook discharges them, re-warming the cache. *)
let prime t ~cache ~pending =
  let primed =
    List.fold_left
      (fun acc spec ->
        let from_store =
          match t.store with None -> None | Some s -> s.Store.find spec
        in
        match from_store with
        | Some prepared ->
          Cache.add t.cache (Request.cache_key spec) prepared;
          { acc with from_store = acc.from_store + 1 }
        | None -> (
          match Validate.protect (fun () -> Prep.run spec) with
          | Ok prepared ->
            Cache.add t.cache (Request.cache_key spec) prepared;
            (match t.store with
            | None -> ()
            | Some s -> s.Store.add spec prepared);
            { acc with replanned = acc.replanned + 1 }
          | Error _ -> acc))
      { replanned = 0; from_store = 0 }
      cache
  in
  List.iter (fun spec -> ignore (Queue.submit ~quiet:true t.queue spec)) pending;
  primed

let stats t =
  let c = t.counters in
  Mutex.lock c.lock;
  let served = c.served
  and errors = c.errors
  and jobs = c.jobs
  and plans_built = c.plans_built
  and store_hits = c.store_hits
  and latency_ms_sum = c.latency_ms_sum
  and latency_samples = c.latency_samples in
  Mutex.unlock c.lock;
  {
    Response.queue_depth = Queue.depth t.queue;
    workers = workers t;
    served;
    errors;
    coalesced = Queue.coalesced_total t.queue;
    jobs;
    plans_built;
    cache = Cache.stats t.cache;
    avg_latency_ms =
      (if latency_samples = 0 then 0.
       else latency_ms_sum /. float_of_int latency_samples);
    uptime_s = Unix.gettimeofday () -. t.started_at;
    wal = Option.map (fun f -> f ()) t.wal_stats;
    replication = Option.map (fun f -> f ()) t.repl_stats;
    store =
      (* The store's own counters (shared-directory totals) plus this
         server's [served_from_store] — the requests the store saved
         from re-planning here. *)
      Option.map
        (fun s ->
          match s.Store.stats () with
          | Jsonl.Obj fields ->
            Jsonl.Obj
              (fields @ [ ("served_from_store", Jsonl.Int store_hits) ])
          | other -> other)
        t.store;
  }

(* ------------------------------------------------------------------ *)
(* NDJSON transport                                                    *)

(* The reader admits requests the moment their line arrives — that is
   what lets a burst of identical requests coalesce — and hands the
   response obligations, in request order, to a writer thread.  [stats]
   is deferred as a thunk so it observes the counters at its own
   position in the response order, not at read time. *)
type item =
  | Ready of Response.t
  | Pending of { ticket : Queue.ticket; id : Jsonl.t option; t0 : float }
  | Thunk of (unit -> Response.t)

let response_of_ticket t ~id ~t0 ticket =
  match Queue.wait ticket with
  | Ok outcome ->
    let elapsed = (Unix.gettimeofday () -. t0) *. 1000. in
    with_counters t.counters (fun c ->
        c.latency_ms_sum <- c.latency_ms_sum +. elapsed;
        c.latency_samples <- c.latency_samples + 1);
    {
      Response.id;
      elapsed_ms = Some elapsed;
      body =
        Response.Schedule
          {
            summary = outcome.Queue.prepared.Prep.summary;
            demand = Queue.ticket_demand ticket;
            batch_demand = outcome.Queue.batch_demand;
            coalesced = outcome.Queue.coalesced;
            cache_hit = outcome.Queue.cache_hit;
            instr = Some outcome.Queue.prepared.Prep.instr;
          };
    }
  | Error msg -> { Response.id; elapsed_ms = None; body = Response.Error msg }

let serve_channels t ic oc =
  let fifo = Stdlib.Queue.create () in
  let lock = Mutex.create () in
  let nonempty = Condition.create () in
  let eof = ref false in
  let push item =
    Mutex.lock lock;
    Stdlib.Queue.push item fifo;
    Condition.signal nonempty;
    Mutex.unlock lock
  in
  let next () =
    Mutex.lock lock;
    let rec wait () =
      match Stdlib.Queue.take_opt fifo with
      | Some item ->
        Mutex.unlock lock;
        Some item
      | None ->
        if !eof then begin
          Mutex.unlock lock;
          None
        end
        else begin
          Condition.wait nonempty lock;
          wait ()
        end
    in
    wait ()
  in
  let writer () =
    let rec loop () =
      match next () with
      | None -> ()
      | Some item ->
        let response =
          match item with
          | Ready r -> r
          | Thunk f -> f ()
          | Pending { ticket; id; t0 } -> response_of_ticket t ~id ~t0 ticket
        in
        with_counters t.counters (fun c ->
            c.served <- c.served + 1;
            if not (Response.ok response) then c.errors <- c.errors + 1);
        output_string oc (Response.to_line response);
        output_char oc '\n';
        flush oc;
        loop ()
    in
    loop ()
  in
  let writer_thread = Thread.create writer () in
  let rec read_loop () =
    match Jsonl.read_line ic with
    | Jsonl.Eof -> ()
    | Jsonl.Oversized n ->
      (* The line was discarded unread, so there is no id to echo. *)
      push
        (Ready
           {
             Response.id = None;
             elapsed_ms = None;
             body =
               Response.Error
                 (Printf.sprintf "request line of %d bytes exceeds the %d byte limit"
                    n Jsonl.max_line_bytes);
           });
      read_loop ()
    | Jsonl.Line line | Jsonl.Tail line ->
      begin
        if String.trim line <> "" then
          match Request.of_line line with
          | Error msg ->
            (* Echo the id even for a rejected request, so a pipelining
               client can still match the error to its question. *)
            let id =
              match Jsonl.of_string line with
              | Ok json -> Jsonl.member "id" json
              | Error _ -> None
            in
            push (Ready { Response.id; elapsed_ms = None; body = Response.Error msg })
          | Ok { Request.id; kind = Request.Ping } ->
            push (Ready { Response.id; elapsed_ms = None; body = Response.Pong })
          | Ok { Request.id; kind = Request.Stats } ->
            push
              (Thunk
                 (fun () ->
                   { Response.id; elapsed_ms = None; body = Response.Stats (stats t) }))
          | Ok { Request.id; kind = Request.Prepare spec } -> (
            let t0 = Unix.gettimeofday () in
            match Queue.submit t.queue spec with
            | Ok ticket -> push (Pending { ticket; id; t0 })
            | Error msg ->
              push
                (Ready { Response.id; elapsed_ms = None; body = Response.Error msg }))
      end;
      read_loop ()
  in
  read_loop ();
  Mutex.lock lock;
  eof := true;
  Condition.signal nonempty;
  Mutex.unlock lock;
  Thread.join writer_thread

let serve_tcp ?on_listen t ~host ~port =
  let addr = Net.resolve ~host ~port in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock addr;
  Unix.listen sock 64;
  (match on_listen with
  | None -> ()
  | Some f -> (
    (* With port 0 the kernel picked the port; read it back. *)
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, bound) -> f bound
    | Unix.ADDR_UNIX _ -> f port));
  while true do
    (* A signal (e.g. SIGTERM starting the clean-shutdown thread)
       interrupts the blocking accept; keep serving until the shutdown
       path exits the process. *)
    match Unix.accept sock with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _peer ->
      ignore
        (Thread.create
           (fun fd ->
             let ic = Unix.in_channel_of_descr fd in
             let oc = Unix.out_channel_of_descr fd in
             (try serve_channels t ic oc with _ -> ());
             (try close_out oc with _ -> ());
             try Unix.close fd with _ -> ())
           fd)
  done

let stop t =
  Queue.close t.queue;
  Pool.join t.pool
