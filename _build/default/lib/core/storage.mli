(** Counting on-chip storage units (Algorithm 3).

    A droplet produced by a mix-split at cycle [tn] and consumed by
    another node at cycle [tp] occupies one storage unit during every
    intermediate cycle [tn + 1 .. tp - 1].  Waste droplets are routed to a
    waste reservoir and target droplets are emitted, so neither occupies
    storage.  The number of storage units required by a schedule, [q], is
    the maximum concurrent occupancy over time. *)

val profile : plan:Plan.t -> Schedule.t -> int array
(** [profile ~plan s] is the occupancy of each cycle: element [t - 1] is
    the number of stored droplets during cycle [t], for
    [t = 1 .. completion_time s].  Reserve droplets occupy storage from
    the first cycle until consumed (or throughout, if unused). *)

val units : plan:Plan.t -> Schedule.t -> int
(** [units ~plan s] is [q], the peak of {!profile}. *)

type residency = {
  producer : int;  (** Producing node id. *)
  port : int;  (** Which of the two output droplets (0 or 1). *)
  consumer : int;  (** Consuming node id. *)
  from_cycle : int;  (** First cycle spent in storage. *)
  to_cycle : int;  (** Last cycle spent in storage (inclusive). *)
}

val residencies : plan:Plan.t -> Schedule.t -> residency list
(** Every stored droplet with its storage interval; droplets consumed on
    the cycle right after production do not appear. *)
