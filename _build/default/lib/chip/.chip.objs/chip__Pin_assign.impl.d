lib/chip/pin_assign.ml: Geometry Hashtbl Int List Option Set
