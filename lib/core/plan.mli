(** Mixing-forest plans — the mix-split task graph of the MDST engine.

    A plan is the flattened form of a mixing forest [F] (Section 4.1): an
    array of (1:1) mix-split nodes, each belonging to a component tree
    [Ti] and sitting at a base-tree level (the root of every component
    tree is at level [d]).  Each node consumes two droplets and produces
    two droplets of its mixture value:

    - port 0 feeds the node's parent in its own component tree;
    - port 1 is the spare: in a plain pass it is waste, in a forest it may
      be consumed by a node of a later component tree (the brown nodes of
      Figure 1) or, with intra-pass sharing, by a later node of the same
      tree.

    Both ports of a component-tree root are emitted target droplets. *)

type source =
  | Input of Dmf.Fluid.t  (** A fresh droplet dispensed from a reservoir. *)
  | Output of { node : int; port : int }
      (** A droplet produced by an earlier mix-split node. *)
  | Reserve of int
      (** A pre-existing droplet sitting in on-chip storage when the plan
          starts — the salvaged droplets of an error-recovery run
          ({!Recovery}).  The index refers to the plan's reserve table. *)

type node = {
  id : int;  (** Position in the plan; producers precede consumers. *)
  tree : int;  (** Component-tree index [i] of [Ti], 1-based. *)
  level : int;  (** Base-tree level; roots at [d], deepest mixes at 1. *)
  bfs : int;  (** Breadth-first index [j] of [m_ij] within [Ti], 1-based. *)
  value : Dmf.Mixture.t;  (** Value of both output droplets. *)
  left : source;
  right : source;
}

type t

val create :
  ratio:Dmf.Ratio.t ->
  demand:int ->
  nodes:node array ->
  roots:int array ->
  t
(** [create ~ratio ~demand ~nodes ~roots] assembles and checks a plan.
    Consumer links are derived from the node sources.
    @raise Invalid_argument if the plan is structurally invalid (see
    {!validate}). *)

val create_multi :
  ?reserves:Dmf.Mixture.t array ->
  ratio:Dmf.Ratio.t ->
  demand:int ->
  nodes:node array ->
  roots:int array ->
  root_values:Dmf.Mixture.t array ->
  unit ->
  t
(** As {!create}, but each component-tree root may carry its own target
    value (SDMT — single/multiple droplets of {e multiple} targets).
    [ratio] still names the fluid universe; [root_values] is parallel to
    [roots]. *)

val ratio : t -> Dmf.Ratio.t
val demand : t -> int

val n_nodes : t -> int
val node : t -> int -> node
val nodes : t -> node list
(** All nodes in id order. *)

val is_root : t -> int -> bool
val roots : t -> int list
(** Component-tree roots in tree order. *)

val trees : t -> int
(** [trees p] is the number of component trees, [|F|]. *)

val targets : t -> int
(** [targets p] is the number of emitted target droplets, [2 * trees p]
    (at least [demand p]). *)

val reserves : t -> Dmf.Mixture.t array
(** Values of the pre-existing stored droplets (a copy); empty for
    ordinary plans. *)

val reserve_consumed : t -> int -> bool
(** Whether reserve [i] is used by some node. *)

val root_value : t -> int -> Dmf.Mixture.t
(** [root_value p r] is the target value droplets of root [r] must carry
    (for single-target plans, always the ratio's mixture value).
    @raise Invalid_argument if [r] is not a root. *)

val consumer : t -> node:int -> port:int -> int option
(** [consumer p ~node ~port] is the id of the node consuming that output
    droplet, if any.  Root ports are never consumed. *)

val predecessors : node -> int list
(** Producing node ids among the node's two sources. *)

val pred_count : t -> int -> int
(** [pred_count p id] is [List.length (predecessors (node p id))], read
    from an index built once at plan creation — O(1). *)

val iter_successors : t -> int -> (int -> unit) -> unit
(** [iter_successors p id f] applies [f] to the id of every node consuming
    an output droplet of [id], port 0 before port 1.  Backed by the same
    precomputed index; the event-driven schedulers use it to decrement
    dependent pending counts without rescanning the plan. *)

val child_kind : t -> node -> [ `Both_internal | `One_internal | `Both_leaves ]
(** Classification of a node by its children for SRS (Type-A / Type-B /
    Type-C in Section 4.2.2): a [Output] source counts as internal — the
    droplet occupies a storage unit while it waits — and an [Input] source
    counts as a leaf. *)

val tms : t -> int
(** Total number of mix-split steps, [Tms] — the node count. *)

val input_vector : t -> int array
(** Input droplets required per fluid, [I\[\]]. *)

val input_total : t -> int
(** Total input droplets, [I]. *)

val waste : t -> int
(** Number of produced droplets that are neither consumed nor targets,
    [W].  Unused reserves are not waste — they simply stay in storage. *)

val validate : t -> (unit, string) result
(** Re-checks every structural invariant: id consistency, topological
    order, single consumption per droplet, exact mixture values, root
    values equal to the target, conservation [I = targets + W]. *)

val pp_summary : Format.formatter -> t -> unit
