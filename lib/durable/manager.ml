type config = {
  dir : string;
  fsync : Wal.fsync_policy;
  snapshot_every : int;
  cache_capacity : int;
}

type t = {
  config : config;
  store : Plan_store.t option;
  lock : Mutex.t;
  lock_file : Unix.file_descr;
  wal : Wal.t;
  mirror : State.t;
  recovery : Replay.stats;
  recovered_cache : Service.Request.spec list;
  recovered_pending : Service.Request.spec list;
  segments_quarantined : int;
  mutable last_snapshot_seq : int;
  mutable since_snapshot : int;
  mutable snapshots_written : int;
  mutable segments_compacted : int;
  mutable snapshots_compacted : int;
  mutable prime_ms : float;
  mutable primed_replanned : int;
  mutable primed_from_store : int;
  mutable primed_pending : int;
  mutable listeners : (int -> unit) list;
  mutable closed : bool;
}

(* A second daemon journaling to the same directory would interleave
   duplicate sequence numbers into the same O_APPEND segment, so the
   directory is claimed with an advisory lock held for the manager's
   lifetime (and dropped by the kernel if the process dies). *)
let acquire_dir_lock dir =
  let fd =
    Unix.openfile (Filename.concat dir "LOCK")
      [ Unix.O_RDWR; Unix.O_CREAT ]
      0o644
  in
  match Unix.lockf fd Unix.F_TLOCK 0 with
  | () -> fd
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
    Unix.close fd;
    failwith
      (Printf.sprintf "wal directory %s is in use by another process" dir)

(* Cut a torn segment back to its valid prefix so the bytes past it can
   never merge with a future append (Replay reports the offsets but
   never writes itself). *)
let repair_torn (path, valid_bytes) =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd valid_bytes;
      try Unix.fsync fd with Unix.Unix_error _ -> ())

(* Records past a sequence gap can never be replayed (applying them
   would rebuild a state that never existed), yet left in place they
   would abort every future boot's replay before it reaches the journal
   written after them.  The recovered state is snapshotted first — so
   nothing already applied is lost — and only then are the unreachable
   segments renamed out of the [wal-*.ndjson] namespace.  A crash
   between the two steps just re-runs this on the next boot. *)
let quarantine_segments dir =
  List.fold_left
    (fun n (_start, path) ->
      let rec fresh i =
        let candidate =
          if i = 0 then path ^ ".quarantined"
          else Printf.sprintf "%s.quarantined.%d" path i
        in
        if Sys.file_exists candidate then fresh (i + 1) else candidate
      in
      Sys.rename path (fresh 0);
      n + 1)
    0 (Wal.segments ~dir)

let start ?store config =
  Wal.ensure_dir config.dir;
  let lock_file = acquire_dir_lock config.dir in
  let state, recovery =
    Replay.recover ~dir:config.dir ~cache_capacity:config.cache_capacity
  in
  List.iter repair_torn recovery.Replay.repairs;
  let last_snapshot_seq, since_snapshot, segments_quarantined =
    if recovery.Replay.gap then begin
      let upto = recovery.Replay.next_seq - 1 in
      ignore (Snapshot.write ~dir:config.dir ~seq:upto state);
      (upto, 0, quarantine_segments config.dir)
    end
    else
      ( (match recovery.Replay.snapshot_seq with Some s -> s | None -> 0),
        recovery.Replay.replayed,
        0 )
  in
  let wal =
    Wal.open_segment ~dir:config.dir ~start_seq:recovery.Replay.next_seq
      ~fsync:config.fsync
  in
  ( {
      config;
      store;
      lock = Mutex.create ();
      lock_file;
      wal;
      mirror = state;
      recovery;
      (* Least recently used first: inserting in this order rebuilds
         the same recency chain. *)
      recovered_cache = List.rev (State.cache_specs state);
      recovered_pending = State.outstanding state;
      segments_quarantined;
      last_snapshot_seq;
      since_snapshot;
      snapshots_written = 0;
      segments_compacted = 0;
      snapshots_compacted = 0;
      prime_ms = 0.;
      primed_replanned = 0;
      primed_from_store = 0;
      primed_pending = 0;
      listeners = [];
      closed = false;
    },
    recovery )

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f
[@@dmflint.allow
  "callback-under-lock: with-lock combinator; dmflint analyzes every \
   caller's closure under t.lock via param_held"]

(* Caller holds the lock. *)
let snapshot_locked t =
  let upto = Wal.next_seq t.wal - 1 in
  if upto > t.last_snapshot_seq then begin
    Wal.sync t.wal;
    ignore (Snapshot.write ~dir:t.config.dir ~seq:upto t.mirror);
    Wal.rotate t.wal;
    let segs, snaps = Compact.run ?store:t.store ~dir:t.config.dir ~upto () in
    t.last_snapshot_seq <- upto;
    t.since_snapshot <- 0;
    t.snapshots_written <- t.snapshots_written + 1;
    t.segments_compacted <- t.segments_compacted + segs;
    t.snapshots_compacted <- t.snapshots_compacted + snaps
  end

(* [snapshot] gates the threshold check: the admission hook runs under
   the queue lock, where a snapshot's sync + write + compaction would
   stall every client and worker for the duration of the disk I/O.
   Admissions still count; the snapshot happens at the next completion
   (every accepted job completes), which runs on a worker thread with
   no queue lock held.

   t.lock covers only the append (sequence assignment + the mirror
   update must be atomic); the durability wait happens {e outside} it
   through [Wal.commit], so concurrent journaling threads accumulate
   into one group fsync instead of serializing an fsync each — that is
   the whole group-commit win.  Journal listeners (the replication
   feed) are notified after the append, before the durability wait: a
   follower may hold a record the primary has not fsynced yet, which
   can only ever make the follower {e ahead} of the primary's disk,
   never behind a response some client observed. *)
let journal ~snapshot t kind =
  let appended =
    locked t (fun () ->
        if t.closed then None
        else begin
          let seq = Wal.append t.wal kind in
          State.apply t.mirror kind;
          t.since_snapshot <- t.since_snapshot + 1;
          Some (seq, Wal.sync_due t.wal, t.listeners)
        end)
  in
  match appended with
  | None -> ()
  | Some (seq, due, listeners) ->
    List.iter (fun f -> f seq) listeners;
    if due then Wal.commit t.wal ~upto:seq;
    if snapshot && t.config.snapshot_every > 0 then
      locked t (fun () ->
          if (not t.closed) && t.since_snapshot >= t.config.snapshot_every then
            snapshot_locked t)
[@@dmflint.allow
  "blocking-under-lock: the WAL append's write(2) (and the occasional \
   threshold snapshot) run under t.lock by design — t.lock serializes \
   the journal and is only ever taken from worker threads and \
   shutdown, never while the queue admission lock is held (PR 5 \
   review); the fsync wait itself happens outside t.lock via \
   Wal.commit"]

let subscribe_journal t f = locked t (fun () -> t.listeners <- f :: t.listeners)

let on_accept t spec = journal ~snapshot:false t (Record.Accepted spec)

let on_complete t ~spec ~requests ~ok =
  journal ~snapshot:true t (Record.Completed { spec; requests; ok })

let recovered_cache t = t.recovered_cache
let recovered_pending t = t.recovered_pending
let quarantined_segments t = t.segments_quarantined

let note_prime t ~ms ~replanned ~from_store ~pending =
  locked t (fun () ->
      t.prime_ms <- ms;
      t.primed_replanned <- replanned;
      t.primed_from_store <- from_store;
      t.primed_pending <- pending)

let state t = locked t (fun () -> State.copy t.mirror)
let snapshot_now t = locked t (fun () -> snapshot_locked t)
[@@dmflint.allow
  "blocking-under-lock: explicit operator-requested snapshot; the disk \
   I/O is the point, and t.lock must cover it so no append interleaves \
   with the snapshot's view of the mirror"]
let appends t = locked t (fun () -> Wal.appends t.wal)
let fsyncs t = locked t (fun () -> Wal.fsyncs t.wal)
let group_commits t = Wal.group_commits t.wal
let avg_batch_size t = Wal.avg_batch_size t.wal
let dir t = t.config.dir
let last_seq t = locked t (fun () -> Wal.next_seq t.wal - 1)

let stats_json t =
  locked t (fun () ->
      let r = t.recovery in
      Service.Jsonl.Obj
        [
          ("dir", Service.Jsonl.String t.config.dir);
          ("last_seq", Service.Jsonl.Int (Wal.next_seq t.wal - 1));
          ("appends", Service.Jsonl.Int (Wal.appends t.wal));
          ("fsyncs", Service.Jsonl.Int (Wal.fsyncs t.wal));
          ("group_commits", Service.Jsonl.Int (Wal.group_commits t.wal));
          ("avg_batch_size", Service.Jsonl.Float (Wal.avg_batch_size t.wal));
          ("fsync_every_n", Service.Jsonl.Int t.config.fsync.Wal.every_n);
          ("fsync_every_ms", Service.Jsonl.Float t.config.fsync.Wal.every_ms);
          ("snapshot_every", Service.Jsonl.Int t.config.snapshot_every);
          ("snapshots_written", Service.Jsonl.Int t.snapshots_written);
          ("segments_compacted", Service.Jsonl.Int t.segments_compacted);
          ("snapshots_compacted", Service.Jsonl.Int t.snapshots_compacted);
          ("segments_quarantined", Service.Jsonl.Int t.segments_quarantined);
          ( "recovery",
            Service.Jsonl.Obj
              [
                ( "snapshot_seq",
                  match r.Replay.snapshot_seq with
                  | Some s -> Service.Jsonl.Int s
                  | None -> Service.Jsonl.Null );
                ("replayed", Service.Jsonl.Int r.Replay.replayed);
                ("truncated", Service.Jsonl.Int r.Replay.truncated);
                ("gap", Service.Jsonl.Bool r.Replay.gap);
                ("wall_ms", Service.Jsonl.Float r.Replay.wall_ms);
                ("prime_ms", Service.Jsonl.Float t.prime_ms);
                ( "primed_plans",
                  Service.Jsonl.Int (t.primed_replanned + t.primed_from_store)
                );
                ("primed_replanned", Service.Jsonl.Int t.primed_replanned);
                ("primed_from_store", Service.Jsonl.Int t.primed_from_store);
                ("primed_pending", Service.Jsonl.Int t.primed_pending);
              ] );
        ])

let close t =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        snapshot_locked t;
        Wal.close t.wal;
        Unix.close t.lock_file
      end)
[@@dmflint.allow
  "blocking-under-lock: shutdown-only path; the final sync + snapshot \
   must complete under t.lock so a racing journal call either lands \
   before the snapshot or observes closed=true and does nothing"]
