(* Nodes are enqueued in (level, tree, bfs) order — "from level l upwards"
   — and dequeued first-in first-out, Mc per time-cycle. *)
let enqueue_order a b =
  let na = a.Plan.level and nb = b.Plan.level in
  match Int.compare na nb with
  | 0 -> (
    match Int.compare a.Plan.tree b.Plan.tree with
    | 0 -> Int.compare a.Plan.bfs b.Plan.bfs
    | c -> c)
  | c -> c

let schedule ~plan ~mixers =
  if mixers < 1 then invalid_arg "Mms.schedule: at least one mixer";
  let n = Plan.n_nodes plan in
  let cycles = Array.make n 0 in
  let mixer_of = Array.make n 0 in
  let pending = Array.make n 0 in
  List.iter
    (fun node ->
      pending.(node.Plan.id) <- List.length (Plan.predecessors node))
    (Plan.nodes plan);
  let enqueued = Array.make n false in
  let queue = Queue.create () in
  let remaining = ref n in
  let depth = Dmf.Ratio.accuracy (Plan.ratio plan) in
  (* Admit every node that has become schedulable and is not yet queued. *)
  let admit () =
    Plan.nodes plan
    |> List.filter (fun node ->
           (not enqueued.(node.Plan.id)) && pending.(node.Plan.id) = 0)
    |> List.sort enqueue_order
    |> List.iter (fun node ->
           enqueued.(node.Plan.id) <- true;
           Queue.push node queue)
  in
  let run_cycle t =
    let launched = ref 0 in
    while !launched < mixers && not (Queue.is_empty queue) do
      let node = Queue.pop queue in
      incr launched;
      cycles.(node.Plan.id) <- t;
      mixer_of.(node.Plan.id) <- !launched;
      decr remaining;
      (match Plan.consumer plan ~node:node.Plan.id ~port:0 with
      | Some c -> pending.(c) <- pending.(c) - 1
      | None -> ());
      match Plan.consumer plan ~node:node.Plan.id ~port:1 with
      | Some c -> pending.(c) <- pending.(c) - 1
      | None -> ()
    done
  in
  let t = ref 0 in
  (* Phase 1: walk the levels of the forest, one time-cycle per level. *)
  for _level = 1 to depth do
    incr t;
    admit ();
    run_cycle !t
  done;
  (* Phase 2: drain the backlog, admitting newly schedulable nodes. *)
  let guard = ref (2 * (n + depth) + 2) in
  while !remaining > 0 do
    decr guard;
    if !guard <= 0 then failwith "Mms.schedule: no progress (internal error)";
    incr t;
    admit ();
    run_cycle !t
  done;
  Schedule.create ~plan ~mixers ~cycles ~mixer_of
