(** The daemon-facing façade over the durable machinery.

    One {!t} owns the journal, a live mirror of the durable {!State},
    and the snapshot/compaction schedule.  {!start} recovers whatever a
    previous process left in the directory and then opens a fresh
    journal segment after it; the caller re-derives the in-memory
    plans from {!recovered_cache}/{!recovered_pending} (see
    {!Service.Server.prime}) and wires {!on_accept}/{!on_complete} into
    the server's hooks.

    All operations are mutex-guarded and safe across domains and
    threads.  {!on_complete} must be invoked {e before} the job's
    waiters are released (the server guarantees this): with a strict
    fsync policy, any response a client has observed is then already
    durable — the invariant the kill -9 recovery tests check. *)

type config = {
  dir : string;
  fsync : Wal.fsync_policy;
  snapshot_every : int;
      (** Snapshot (then rotate and compact) after this many journal
          records; [<= 0] snapshots only on {!close}. *)
  cache_capacity : int;  (** Must match the server's, for the mirror. *)
}

type t

val start : ?store:Plan_store.t -> config -> t * Replay.stats
(** Recover, then open the journal for appending.  [store] hands the
    manager the daemon's plan store so threshold snapshots run its GC
    alongside journal compaction ({!Compact.run}).

    Recovery side effects on the directory: torn segment tails reported
    by {!Replay.recover} are truncated back to their valid prefix (so a
    reopened segment can never merge a new record with torn bytes), and
    when a sequence gap aborted the replay the recovered state is
    snapshotted and every existing segment is renamed to
    [*.quarantined] — unreachable records are preserved for inspection
    but no longer block future boots from replaying the journal written
    after them.

    Holds an advisory lock on [dir/LOCK] until {!close} (or process
    death).
    @raise Failure if another process already journals to [dir]. *)

val on_accept : t -> Service.Request.spec -> unit
(** Journal an admitted prepare request (the queue's admission hook,
    called under the queue lock so journal order = admission order). *)

val on_complete :
  t -> spec:Service.Request.spec -> requests:int -> ok:bool -> unit
(** Journal a resolved planning job (the server's completion hook,
    called before the waiters are released). *)

val recovered_cache : t -> Service.Request.spec list
(** Cache contents recovery rebuilt, {e least} recently used first —
    the insertion order that reproduces the LRU recency. *)

val recovered_pending : t -> Service.Request.spec list
(** Accepted-but-unanswered specs recovery found, admission order.
    Resubmitting them must bypass {!on_accept} — their accepted
    records are already in the journal. *)

val quarantined_segments : t -> int
(** Segments this boot renamed aside because a sequence gap made them
    unreplayable; 0 on a clean recovery. *)

val note_prime :
  t -> ms:float -> replanned:int -> from_store:int -> pending:int -> unit
(** Record what rebuilding the recovered state cost, split by how each
    plan came back ({!Service.Server.primed}), for {!stats_json}'s
    [recovery] object ([primed_plans] stays the total). *)

val state : t -> State.t
(** A copy of the live durable-state mirror (tests compare it against
    both the real server and a fresh {!Replay.recover}). *)

val snapshot_now : t -> unit
(** Sync, snapshot at the last journaled record, rotate the segment and
    compact.  No-op when nothing new was journaled since the last
    snapshot. *)

val appends : t -> int
val fsyncs : t -> int

val group_commits : t -> int
(** Group-commit fsyncs the journal has issued ({!Wal.group_commits}). *)

val avg_batch_size : t -> float
(** Mean records per group commit ({!Wal.avg_batch_size}). *)

val dir : t -> string
(** The journal directory this manager owns. *)

val last_seq : t -> int
(** Sequence number of the most recently journaled record (0 before
    the first). *)

val subscribe_journal : t -> (int -> unit) -> unit
(** Register a listener called with each record's sequence number just
    after it is appended (outside the manager's lock, from the
    journaling thread, possibly before the record is fsynced).  The
    replication feed uses this to wake segment tails; listeners must
    be fast and must not call back into the manager. *)

val stats_json : t -> Service.Jsonl.t
(** The [wal] object of the daemon's [stats] response: journal and
    snapshot counters plus the boot's recovery stats. *)

val close : t -> unit
(** Final sync, snapshot and compaction, then close the journal. *)
