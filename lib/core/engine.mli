(** The mixture-preparation engine — top-level MDST API.

    A {!spec} names everything the engine needs: the target ratio, the
    droplet demand, the base mixing algorithm, the forest scheduler and
    the number of on-chip mixers.  {!prepare} builds the mixing forest,
    schedules it and returns the plan, the schedule and the cost metrics
    in one result.

    {[
      let ratio = Dmf.Ratio.of_string "2:1:1:1:1:1:9" in
      let result =
        Mdst.Engine.prepare
          { ratio; demand = 20; algorithm = Mixtree.Algorithm.MM;
            scheduler = Mdst.Scheduler.srs; mixers = None }
      in
      print_string (Mdst.Gantt.render ~plan:result.plan result.schedule)
    ]} *)

type spec = {
  ratio : Dmf.Ratio.t;
  demand : int;
  algorithm : Mixtree.Algorithm.t;
  scheduler : Scheduler.t;
  mixers : int option;
      (** [None] uses the paper's default: [Mlb] of the MM tree. *)
}

type result = {
  spec : spec;
  mixers : int;  (** The resolved mixer count. *)
  plan : Plan.t;
  schedule : Schedule.t;
  metrics : Metrics.t;
}

val default_mixers : Dmf.Ratio.t -> int
(** [Mlb] of the MM base tree — the minimum mixer count for the fastest
    completion of one MM pass, used throughout the paper's evaluation. *)

val scheme_name : Mixtree.Algorithm.t -> Scheduler.t -> string
(** E.g. ["RMA+SRS"]. *)

val prepare : ?instr:Instr.t -> spec -> result
(** Build and schedule the mixing forest for [spec]; [instr] hooks the
    scheduling run (see {!Instr}).
    @raise Invalid_argument on inconsistent parameters. *)

val baseline_metrics : spec -> Metrics.t
(** Cost of meeting the same spec with the repeated baseline of the
    spec's algorithm (RMM / RRMA / RMTCS), for side-by-side comparison. *)
