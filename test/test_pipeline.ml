(* Tests for the one-call physical pipeline. *)

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let spec ?(demand = 12) ratio =
  { Mdst.Engine.ratio; demand; algorithm = Mixtree.Algorithm.MM;
    scheduler = Mdst.Scheduler.srs; mixers = None }

let test_full_run () =
  match Sim.Pipeline.run (spec Generators.pcr16) with
  | Error e -> Alcotest.fail e
  | Ok result ->
    check int "emitted = targets"
      (Mdst.Plan.targets result.Sim.Pipeline.engine.Mdst.Engine.plan)
      (List.length result.Sim.Pipeline.stats.Sim.Executor.emitted);
    check bool "actuation consistent with the trace" true
      (result.Sim.Pipeline.actuation.Chip.Actuation.total_electrodes > 0);
    check int "wear total matches the trace"
      (Sim.Trace.electrodes result.Sim.Pipeline.trace)
      result.Sim.Pipeline.wear.Sim.Wear.total;
    check bool "contamination analysed" true
      (result.Sim.Pipeline.contamination.Sim.Contamination.total_crossings >= 0)

let test_custom_layout () =
  let layout = Chip.Layout.pcr_fig5 () in
  match Sim.Pipeline.run ~layout (spec ~demand:20 Generators.pcr16) with
  | Error e -> Alcotest.fail e
  | Ok result ->
    check int "uses the given chip" (Chip.Layout.width layout)
      (Chip.Layout.width result.Sim.Pipeline.layout)

let test_undersized_custom_layout_fails () =
  let layout = Chip.Layout.default ~mixers:1 ~n_fluids:7 () in
  check bool "too small a chip is rejected" true
    (Result.is_error (Sim.Pipeline.run ~layout (spec ~demand:20 Generators.pcr16)))

let prop_pipeline_verifies =
  Generators.qtest ~count:25 "pipeline verifies random runs"
    QCheck2.Gen.(pair Generators.ratio_gen (int_range 2 10))
    (fun (r, d) -> Printf.sprintf "%s D=%d" (Dmf.Ratio.to_string r) d)
    (fun (ratio, demand) ->
      match Sim.Pipeline.run (spec ~demand ratio) with
      | Error _ -> false
      | Ok result ->
        result.Sim.Pipeline.stats.Sim.Executor.violations = 0
        && List.length result.Sim.Pipeline.stats.Sim.Executor.emitted
           = Mdst.Plan.targets result.Sim.Pipeline.engine.Mdst.Engine.plan)

let () =
  Alcotest.run "pipeline"
    [
      ( "pipeline",
        [
          Alcotest.test_case "full run" `Quick test_full_run;
          Alcotest.test_case "custom layout" `Quick test_custom_layout;
          Alcotest.test_case "undersized layout fails" `Quick
            test_undersized_custom_layout_fails;
          prop_pipeline_verifies;
        ] );
    ]
