(* Unit and property tests for the dmf substrate: binary helpers, fluids,
   target ratios and exact mixture arithmetic. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Binary                                                              *)

let test_pow2 () =
  check int "2^0" 1 (Dmf.Binary.pow2 0);
  check int "2^5" 32 (Dmf.Binary.pow2 5);
  Alcotest.check_raises "negative exponent rejected"
    (Invalid_argument "Binary.pow2: exponent out of range") (fun () ->
      ignore (Dmf.Binary.pow2 (-1)))

let test_is_power_of_two () =
  List.iter
    (fun (n, expected) ->
      check bool (string_of_int n) expected (Dmf.Binary.is_power_of_two n))
    [ (0, false); (1, true); (2, true); (3, false); (4, true); (-4, false);
      (1024, true); (1023, false) ]

let test_log2 () =
  check int "log2 16" 4 (Dmf.Binary.log2_exact 16);
  check int "floor_log2 17" 4 (Dmf.Binary.floor_log2 17);
  check int "floor_log2 1" 0 (Dmf.Binary.floor_log2 1);
  Alcotest.check_raises "log2_exact rejects non-powers"
    (Invalid_argument "Binary.log2_exact: not a power of two") (fun () ->
      ignore (Dmf.Binary.log2_exact 12))

let test_popcount_set_bits () =
  check int "popcount 0" 0 (Dmf.Binary.popcount 0);
  check int "popcount 9" 2 (Dmf.Binary.popcount 9);
  check (Alcotest.list int) "set_bits 9" [ 0; 3 ] (Dmf.Binary.set_bits 9);
  check (Alcotest.list int) "set_bits 0" [] (Dmf.Binary.set_bits 0)

let test_ceil_div () =
  check int "7/2" 4 (Dmf.Binary.ceil_div 7 2);
  check int "8/2" 4 (Dmf.Binary.ceil_div 8 2);
  check int "0/3" 0 (Dmf.Binary.ceil_div 0 3)

(* ------------------------------------------------------------------ *)
(* Fluid                                                               *)

let test_fluid () =
  let f = Dmf.Fluid.make 3 in
  check int "index" 3 (Dmf.Fluid.index f);
  check Alcotest.string "default name" "x4" (Dmf.Fluid.default_name f);
  check bool "equal" true (Dmf.Fluid.equal f (Dmf.Fluid.make 3));
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Fluid.make: negative index") (fun () ->
      ignore (Dmf.Fluid.make (-1)))

(* ------------------------------------------------------------------ *)
(* Ratio                                                               *)

let test_ratio_make () =
  let r = Dmf.Ratio.make [| 2; 1; 1; 1; 1; 1; 9 |] in
  check int "N" 7 (Dmf.Ratio.n_fluids r);
  check int "d" 4 (Dmf.Ratio.accuracy r);
  check int "L" 16 (Dmf.Ratio.sum r);
  check int "part 0" 2 (Dmf.Ratio.part r 0);
  check Alcotest.string "to_string" "2:1:1:1:1:1:9" (Dmf.Ratio.to_string r)

let test_ratio_rejects () =
  let invalid parts = try ignore (Dmf.Ratio.make parts); false with Invalid_argument _ -> true in
  check bool "single fluid" true (invalid [| 16 |]);
  check bool "zero part" true (invalid [| 0; 16 |]);
  check bool "non-power sum" true (invalid [| 3; 4 |]);
  check bool "valid" false (invalid [| 3; 13 |])

let test_ratio_of_string () =
  let r = Dmf.Ratio.of_string " 3 : 5 " in
  check int "parsed sum" 8 (Dmf.Ratio.sum r);
  check bool "reject garbage" true
    (try ignore (Dmf.Ratio.of_string "1:2:x"); false with Invalid_argument _ -> true)

let test_ratio_equal () =
  let a = Dmf.Ratio.of_string "3:5" and b = Dmf.Ratio.of_string "3:5" in
  let c = Dmf.Ratio.of_string "5:3" in
  check bool "equal" true (Dmf.Ratio.equal a b);
  check bool "order matters" false (Dmf.Ratio.equal a c)

let test_approximate_pcr () =
  (* The generic largest-remainder approximation of the PCR percentages. *)
  let r = Dmf.Ratio.approximate ~d:6 Bioproto.Protocols.pcr_percentages in
  check int "sums to 64" 64 (Dmf.Ratio.sum r);
  Array.iter (fun a -> check bool "every part >= 1" true (a >= 1)) (Dmf.Ratio.parts r);
  (* Water stays the dominant carrier. *)
  let parts = Dmf.Ratio.parts r in
  check bool "carrier dominates" true (parts.(6) > 32)

let test_approximate_error_bound () =
  (* With no minimum-part pressure, largest remainder stays within 1/2^d. *)
  let percents = [| 25.; 25.; 50. |] in
  let r = Dmf.Ratio.approximate ~d:4 percents in
  check bool "error below 1/16" true
    (Dmf.Ratio.approximation_error r percents <= 1. /. 16. +. 1e-9)

let test_approximate_rejects () =
  check bool "non-positive percentage" true
    (try ignore (Dmf.Ratio.approximate ~d:4 [| 0.; 100. |]); false
     with Invalid_argument _ -> true);
  check bool "too many fluids for the scale" true
    (try ignore (Dmf.Ratio.approximate ~d:1 [| 1.; 1.; 1. |]); false
     with Invalid_argument _ -> true)

let test_rescale () =
  let r = Dmf.Ratio.of_string "2:1:1:1:1:1:9" in
  let r5 = Dmf.Ratio.rescale r ~d:5 in
  check int "rescaled sum" 32 (Dmf.Ratio.sum r5);
  check int "same N" 7 (Dmf.Ratio.n_fluids r5)

(* ------------------------------------------------------------------ *)
(* Mixture                                                             *)

let mixture = Alcotest.testable Dmf.Mixture.pp Dmf.Mixture.equal

let test_pure () =
  let v = Dmf.Mixture.pure ~n:3 (Dmf.Fluid.make 1) in
  check int "scale 0" 0 (Dmf.Mixture.scale v);
  check (Alcotest.option (Alcotest.testable Dmf.Fluid.pp Dmf.Fluid.equal))
    "is_pure" (Some (Dmf.Fluid.make 1)) (Dmf.Mixture.is_pure v)

let test_mix_simple () =
  let x = Dmf.Mixture.pure ~n:2 (Dmf.Fluid.make 0) in
  let y = Dmf.Mixture.pure ~n:2 (Dmf.Fluid.make 1) in
  let m = Dmf.Mixture.mix x y in
  check int "scale 1" 1 (Dmf.Mixture.scale m);
  check (Alcotest.array int) "numerators" [| 1; 1 |] (Dmf.Mixture.numerators m)

let test_mix_canonicalises () =
  (* (1,1)/2 mixed with (1,1)/2 is still (1,1)/2, not (2,2)/4. *)
  let x = Dmf.Mixture.pure ~n:2 (Dmf.Fluid.make 0) in
  let y = Dmf.Mixture.pure ~n:2 (Dmf.Fluid.make 1) in
  let half = Dmf.Mixture.mix x y in
  check mixture "self-mix is identity on value" half (Dmf.Mixture.mix half half)

let test_mix_unbalanced () =
  (* Pure x mixed with (y+z)/2 gives (2x+y+z)/4. *)
  let x = Dmf.Mixture.pure ~n:3 (Dmf.Fluid.make 0) in
  let yz =
    Dmf.Mixture.mix
      (Dmf.Mixture.pure ~n:3 (Dmf.Fluid.make 1))
      (Dmf.Mixture.pure ~n:3 (Dmf.Fluid.make 2))
  in
  let m = Dmf.Mixture.mix x yz in
  check (Alcotest.array int) "2x+y+z over 4" [| 2; 1; 1 |]
    (Dmf.Mixture.numerators m);
  check int "scale 2" 2 (Dmf.Mixture.scale m)

let test_mix_rejects_universes () =
  let a = Dmf.Mixture.pure ~n:2 (Dmf.Fluid.make 0) in
  let b = Dmf.Mixture.pure ~n:3 (Dmf.Fluid.make 0) in
  check bool "different universes rejected" true
    (try ignore (Dmf.Mixture.mix a b); false with Invalid_argument _ -> true)

let test_of_ratio () =
  let r = Dmf.Ratio.of_string "2:1:1:1:1:1:9" in
  let v = Dmf.Mixture.of_ratio r in
  check (Alcotest.array int) "numerators" [| 2; 1; 1; 1; 1; 1; 9 |]
    (Dmf.Mixture.numerators v);
  let two_sixteenths, denominator = Dmf.Mixture.cf v (Dmf.Fluid.make 0) in
  check int "cf numerator" 2 two_sixteenths;
  check int "cf denominator" 16 denominator

let test_of_ratio_canonical () =
  (* 2:2 over scale 2 canonicalises to 1:1 over scale 1. *)
  let v = Dmf.Mixture.of_ratio (Dmf.Ratio.of_string "2:2") in
  check int "canonical scale" 1 (Dmf.Mixture.scale v)

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let prop_mix_commutative =
  Generators.qtest "mix is commutative" Generators.ratio_gen
    Generators.ratio_print (fun r ->
      let n = Dmf.Ratio.n_fluids r in
      let a = Dmf.Mixture.pure ~n (Dmf.Fluid.make 0) in
      let b = Dmf.Mixture.of_ratio r in
      Dmf.Mixture.equal (Dmf.Mixture.mix a b) (Dmf.Mixture.mix b a))

let prop_numerators_sum =
  Generators.qtest "canonical numerators sum to 2^scale" Generators.ratio_gen
    Generators.ratio_print (fun r ->
      let v = Dmf.Mixture.of_ratio r in
      Array.fold_left ( + ) 0 (Dmf.Mixture.numerators v)
      = Dmf.Binary.pow2 (Dmf.Mixture.scale v))

let prop_ratio_roundtrip =
  Generators.qtest "ratio to_string/of_string round-trips"
    Generators.ratio_gen Generators.ratio_print (fun r ->
      Dmf.Ratio.equal r (Dmf.Ratio.of_string (Dmf.Ratio.to_string r)))

let prop_approximate_valid =
  Generators.qtest ~count:100 "approximate always yields a valid ratio"
    Generators.ratio_gen Generators.ratio_print (fun r ->
      let percents = Array.map float_of_int (Dmf.Ratio.parts r) in
      let a = Dmf.Ratio.approximate ~d:(Dmf.Ratio.accuracy r) percents in
      (* Re-approximating an exact ratio must reproduce it. *)
      Dmf.Ratio.equal a r)

let () =
  Alcotest.run "dmf"
    [
      ( "binary",
        [
          Alcotest.test_case "pow2" `Quick test_pow2;
          Alcotest.test_case "is_power_of_two" `Quick test_is_power_of_two;
          Alcotest.test_case "log2" `Quick test_log2;
          Alcotest.test_case "popcount and set_bits" `Quick test_popcount_set_bits;
          Alcotest.test_case "ceil_div" `Quick test_ceil_div;
        ] );
      ("fluid", [ Alcotest.test_case "basics" `Quick test_fluid ]);
      ( "ratio",
        [
          Alcotest.test_case "make" `Quick test_ratio_make;
          Alcotest.test_case "rejects invalid" `Quick test_ratio_rejects;
          Alcotest.test_case "of_string" `Quick test_ratio_of_string;
          Alcotest.test_case "equal" `Quick test_ratio_equal;
          Alcotest.test_case "approximate PCR" `Quick test_approximate_pcr;
          Alcotest.test_case "approximation error bound" `Quick
            test_approximate_error_bound;
          Alcotest.test_case "approximate rejects" `Quick test_approximate_rejects;
          Alcotest.test_case "rescale" `Quick test_rescale;
        ] );
      ( "mixture",
        [
          Alcotest.test_case "pure" `Quick test_pure;
          Alcotest.test_case "mix two pure droplets" `Quick test_mix_simple;
          Alcotest.test_case "mix canonicalises" `Quick test_mix_canonicalises;
          Alcotest.test_case "mix unbalanced scales" `Quick test_mix_unbalanced;
          Alcotest.test_case "mix rejects universes" `Quick
            test_mix_rejects_universes;
          Alcotest.test_case "of_ratio" `Quick test_of_ratio;
          Alcotest.test_case "of_ratio canonical" `Quick test_of_ratio_canonical;
        ] );
      ( "properties",
        [
          prop_mix_commutative;
          prop_numerators_sum;
          prop_ratio_roundtrip;
          prop_approximate_valid;
        ] );
    ]
