(* A streaming follower: mirror a primary's journal, keep a warm
   replica of its durable state, serve reads, and stand by to become
   the primary.

   The engine thread owns the feed connection and everything the
   stream mutates: the {!Sink} mirror, the durable {!Durable.State}
   model, the apply cursor.  Serving threads only read (through the
   thread-safe {!Service.Cache} and counter snapshots under [t.m]), so
   the apply path takes the mutex for a handful of integer updates per
   record and nothing else.

   Exactly-once apply holds by construction: every record line's CRC
   is re-verified on arrival ({!Durable.Record.decode}), sequence
   numbers are strictly monotonic, and the apply cursor skips numbers
   at or below what snapshot-plus-journal already covered — the same
   idempotent-replay filter {!Durable.Replay} uses, which is also what
   makes the resume overlap after a reconnect harmless.  A sequence
   that skips {e ahead} means the stream lost records; the engine
   drops the connection and resubscribes from scratch rather than
   apply around a hole.

   Promotion is deliberately boring: stop the engine, close the sink
   (releasing the directory lock), then run {!Durable.Manager.start}
   on the mirrored directory — ordinary crash recovery on a journal
   that happens to have been written over the network — and stand up a
   full {!Service.Server} on the result. *)

module Jsonl = Service.Jsonl
module Request = Service.Request
module Response = Service.Response
module Cache = Service.Cache
module Prep = Service.Prep
module Server = Service.Server
module Net = Service.Net
module Record = Durable.Record
module Replay = Durable.Replay
module Manager = Durable.Manager
module Snapshot = Durable.Snapshot
module Plan_store = Durable.Plan_store
module State = Durable.State

type config = {
  host : string;  (** The primary's replication feed endpoint. *)
  port : int;
  dir : string;  (** Local mirror directory (the follower's WAL). *)
  cache_capacity : int;
  queue_capacity : int;
  workers : int option;
  fsync : Durable.Wal.fsync_policy;  (** Policy after promotion. *)
  snapshot_every : int;  (** Ditto. *)
  store : Plan_store.t option;
  fetch_plans : bool;
      (** Ask the feed for plan payloads on cache-prime misses instead
          of re-planning locally. *)
  reconnect_ms : float;
}

type promoted = {
  manager : Manager.t;
  server : Server.t;
  recovery : Replay.stats;
  at_seq : int;
}

type t = {
  config : config;
  m : Mutex.t;
  promote_done : Condition.t;
  cache : Prep.prepared Cache.t;
  sink : Sink.t;
  started_at : float;
  (* Engine-private (single-threaded): *)
  mutable mirror : State.t;
  mutable expected : int;
  mutable force_reset : bool;
  mutable plan_io : (Unix.file_descr * in_channel * out_channel) option;
  (* Shared, guarded by [m]: *)
  mutable stop : bool;
  mutable stop_engine : bool;
  mutable promoting : bool;
  mutable promoted : promoted option;
  mutable engine_starting : bool;
  mutable engine : Thread.t option;
  mutable feed_fds : Unix.file_descr list;
  mutable connected : bool;
  mutable connects : int;
  mutable last_applied : int;
  mutable primary_last_seq : int;
  mutable lag_ms : float;
  mutable served : int;
  mutable errors : int;
  mutable crc_failures : int;
  mutable resets : int;
  mutable primed_from_store : int;
  mutable primed_fetched : int;
  mutable primed_replanned : int;
}

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f
[@@dmflint.allow
  "callback-under-lock: with-lock combinator; every closure passed in \
   is a handful of field reads or integer updates — promotion and \
   shutdown do their blocking work outside it"]

exception Stopped
exception Protocol of string

(* Same torn-tail discipline as {!Durable.Manager.start}: a follower
   that died mid-append must cut the segment back to its valid prefix
   before resuming, or the resumed stream's bytes would merge with the
   torn partial line. *)
let repair_torn (path, valid_bytes) =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd valid_bytes;
      try Unix.fsync fd with Unix.Unix_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Plan priming                                                        *)

let close_plan_io t =
  match t.plan_io with
  | None -> ()
  | Some (fd, _ic, oc) ->
    (try flush oc with Sys_error _ -> ());
    locked t (fun () ->
        t.feed_fds <- List.filter (fun f -> f != fd) t.feed_fds);
    (try Unix.close fd with Unix.Unix_error _ -> ());
    t.plan_io <- None

let plan_io t =
  match t.plan_io with
  | Some io -> Some io
  | None -> (
    match Net.connect ~host:t.config.host ~port:t.config.port with
    | exception _ -> None
    | fd ->
      locked t (fun () -> t.feed_fds <- fd :: t.feed_fds);
      let io = (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd) in
      t.plan_io <- Some io;
      Some io)

(* One blocking request/response on the side connection; any failure
   downgrades to [None] (the caller re-plans) and drops the connection
   so the next miss retries cleanly. *)
let fetch_plan t spec =
  match plan_io t with
  | None -> None
  | Some (_fd, ic, oc) -> (
    let attempt () =
      output_string oc (Wire.to_line (Wire.Plan_get spec));
      output_char oc '\n';
      flush oc;
      match Jsonl.read_line ic with
      | Jsonl.Line line | Jsonl.Tail line -> (
        match Wire.of_line line with
        | Ok (Wire.Plan { data = Some payload; _ }) -> (
          match Plan_store.decode_prepared payload with
          | Ok prepared -> Some prepared
          | Error _ -> None)
        | Ok _ | Error _ -> None)
      | Jsonl.Eof | Jsonl.Oversized _ -> None
    in
    match attempt () with
    | Some prepared -> Some prepared
    | None ->
      close_plan_io t;
      None
    | exception (Sys_error _ | End_of_file | Unix.Unix_error _) ->
      close_plan_io t;
      None)

(* Rebuild the prepared value for a spec the primary's cache holds:
   plan store, then the feed's plan-fetch session, then deterministic
   re-planning — all three produce the same value (the codec and
   differential tests hold them to it), so the cache serves identical
   bytes whichever path primed it. *)
let obtain t spec =
  let store_find () =
    match t.config.store with None -> None | Some ps -> Plan_store.find ps spec
  in
  match store_find () with
  | Some prepared ->
    locked t (fun () -> t.primed_from_store <- t.primed_from_store + 1);
    Some prepared
  | None -> (
    match if t.config.fetch_plans then fetch_plan t spec else None with
    | Some prepared ->
      (match t.config.store with
      | Some ps -> Plan_store.add ps spec prepared
      | None -> ());
      locked t (fun () -> t.primed_fetched <- t.primed_fetched + 1);
      Some prepared
    | None -> (
      match Service.Validate.protect (fun () -> Prep.run spec) with
      | Ok prepared ->
        (match t.config.store with
        | Some ps -> Plan_store.add ps spec prepared
        | None -> ());
        locked t (fun () -> t.primed_replanned <- t.primed_replanned + 1);
        Some prepared
      | Error _ -> None))

(* Keep the serving cache tracking the durable model: re-adding an
   already-cached value refreshes its recency exactly as the model's
   touch does, so the LRU eviction order stays aligned. *)
let ensure_cached t spec =
  let key = Request.cache_key spec in
  match Cache.peek t.cache key with
  | Some prepared -> Cache.add t.cache key prepared
  | None -> (
    match obtain t spec with
    | Some prepared -> Cache.add t.cache key prepared
    | None -> ())

(* Least recently used first, reproducing the recency chain — the same
   order {!Service.Server.prime} consumes. *)
let prime_from_state t state =
  List.iter (ensure_cached t) (List.rev (State.cache_specs state))

(* ------------------------------------------------------------------ *)
(* The engine                                                          *)

let engine_stopped t = locked t (fun () -> t.stop_engine)

let now_ms () = Unix.gettimeofday () *. 1000.

let handle_frame t = function
  | Wire.Open_segment segment -> Sink.open_segment t.sink segment
  | Wire.Snapshot { seq; data } -> (
    Sink.put_snapshot t.sink ~seq ~data;
    let path = Filename.concat t.config.dir (Snapshot.name seq) in
    match Snapshot.load ~cache_capacity:t.config.cache_capacity path with
    | Error msg -> raise (Protocol ("bad snapshot from primary: " ^ msg))
    | Ok state ->
      t.mirror <- state;
      t.expected <- seq + 1;
      locked t (fun () ->
          t.last_applied <- seq;
          if seq > t.primary_last_seq then t.primary_last_seq <- seq);
      prime_from_state t state)
  | Wire.At { last_seq; ms } ->
    locked t (fun () ->
        if last_seq > t.primary_last_seq then t.primary_last_seq <- last_seq;
        if ms > 0. then t.lag_ms <- Float.max 0. (now_ms () -. ms));
    (* The stream is at an idle point (or a batch boundary): make the
       mirrored records durable now instead of per record. *)
    Sink.flush t.sink
  | Wire.Hello _ | Wire.Subscribe _ | Wire.Plan _ | Wire.Plan_get _ -> ()

let handle_record t line =
  match Record.decode line with
  | Error msg ->
    locked t (fun () -> t.crc_failures <- t.crc_failures + 1);
    raise (Protocol ("record failed verification: " ^ msg))
  | Ok (seq, kind) ->
    if seq > t.expected then begin
      (* Records went missing between [expected] and [seq]; applying
         around the hole would rebuild a state that never existed.
         Resubscribe from scratch. *)
      t.force_reset <- true;
      raise
        (Protocol
           (Printf.sprintf "sequence gap: expected %d, got %d" t.expected seq))
    end;
    Sink.append_line t.sink line;
    if seq = t.expected then begin
      State.apply t.mirror kind;
      t.expected <- seq + 1;
      locked t (fun () ->
          t.last_applied <- seq;
          if seq > t.primary_last_seq then t.primary_last_seq <- seq);
      match kind with
      | Record.Completed { spec; ok = true; _ } -> ensure_cached t spec
      | Record.Completed _ | Record.Accepted _ -> ()
    end

let handle_stream_line t line =
  match Wire.classify line with
  | Error msg -> raise (Protocol ("unparseable feed line: " ^ msg))
  | Ok (`Frame frame) -> handle_frame t frame
  | Ok (`Record line) -> handle_record t line

let read_frame ic =
  match Jsonl.read_line ic with
  | Jsonl.Line line | Jsonl.Tail line -> (
    match Wire.of_line line with Ok f -> Some f | Error _ -> None)
  | Jsonl.Eof | Jsonl.Oversized _ -> None

(* One feed connection: subscribe from the sink's cursor, handle the
   hello (resetting the mirror when the primary could not resume us),
   then apply the stream until it ends. *)
let session t =
  let fd = Net.connect ~host:t.config.host ~port:t.config.port in
  let stopping =
    locked t (fun () ->
        if t.stop_engine then true
        else begin
          t.feed_fds <- fd :: t.feed_fds;
          t.connected <- true;
          t.connects <- t.connects + 1;
          false
        end)
  in
  if stopping then begin
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise Stopped
  end;
  Fun.protect
    ~finally:(fun () ->
      locked t (fun () ->
          t.connected <- false;
          t.feed_fds <- List.filter (fun f -> f != fd) t.feed_fds);
      try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let ic = Unix.in_channel_of_descr fd in
      let oc = Unix.out_channel_of_descr fd in
      let cursor = if t.force_reset then Wire.start else Sink.cursor t.sink in
      output_string oc (Wire.to_line (Wire.Subscribe cursor));
      output_char oc '\n';
      flush oc;
      (match read_frame ic with
      | Some (Wire.Hello { resumed; last_seq }) ->
        locked t (fun () ->
            if last_seq > t.primary_last_seq then t.primary_last_seq <- last_seq);
        if not resumed then begin
          (* Full resync: drop the mirror and rebuild from the
             snapshot and segments about to arrive. *)
          Sink.reset t.sink;
          t.force_reset <- false;
          t.mirror <- State.create ~cache_capacity:t.config.cache_capacity;
          t.expected <- 1;
          Cache.clear t.cache;
          locked t (fun () ->
              t.last_applied <- 0;
              t.resets <- t.resets + 1)
        end
      | Some _ | None -> raise (Protocol "feed did not answer with hello"));
      let rec loop () =
        if engine_stopped t then raise Stopped;
        match Jsonl.read_line ic with
        | Jsonl.Eof -> ()
        | Jsonl.Tail _ ->
          (* The connection died mid-line; the partial line was never
             journaled by the primary's framing, drop it. *)
          ()
        | Jsonl.Oversized n ->
          raise (Protocol (Printf.sprintf "oversized feed line (%d bytes)" n))
        | Jsonl.Line line ->
          handle_stream_line t line;
          loop ()
      in
      loop ();
      Sink.flush t.sink)

let engine t =
  let rec loop () =
    if engine_stopped t then ()
    else begin
      (try session t with
      | Stopped -> ()
      | Protocol _ | End_of_file | Sys_error _ | Failure _
      | Unix.Unix_error _ ->
        ());
      close_plan_io t;
      if engine_stopped t then ()
      else begin
        Thread.delay (t.config.reconnect_ms /. 1000.);
        loop ()
      end
    end
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)

let create config =
  let sink = Sink.create ~dir:config.dir in
  (* A restarted follower boots exactly like a crashed primary: replay
     the local mirror to find both the durable state and where the
     resume cursor stands. *)
  let state, recovery =
    Replay.recover ~dir:config.dir ~cache_capacity:config.cache_capacity
  in
  List.iter repair_torn recovery.Replay.repairs;
  let mirror, expected =
    if recovery.Replay.gap then begin
      (* A mirror with a hole cannot be extended; start over. *)
      Sink.reset sink;
      (State.create ~cache_capacity:config.cache_capacity, 1)
    end
    else (state, recovery.Replay.next_seq)
  in
  let t =
    {
      config;
      m = Mutex.create ();
      promote_done = Condition.create ();
      cache = Cache.create ~capacity:config.cache_capacity;
      sink;
      started_at = Unix.gettimeofday ();
      mirror;
      expected;
      force_reset = false;
      plan_io = None;
      stop = false;
      stop_engine = false;
      promoting = false;
      promoted = None;
      engine_starting = false;
      engine = None;
      feed_fds = [];
      connected = false;
      connects = 0;
      last_applied = expected - 1;
      primary_last_seq = expected - 1;
      lag_ms = 0.;
      served = 0;
      errors = 0;
      crc_failures = 0;
      resets = 0;
      primed_from_store = 0;
      primed_fetched = 0;
      primed_replanned = 0;
    }
  in
  prime_from_state t t.mirror;
  t

(* Claim the engine slot under [m] but spawn outside it, so no code
   path that writes to a socket is even reachable while the lock is
   held.  Should [close] land between the claim and the handle store,
   the fresh engine thread sees [stop_engine] on its first loop check
   and exits on its own — the unjoined handle is harmless. *)
let start t =
  let claimed =
    locked t (fun () ->
        if t.engine = None && (not t.engine_starting) && not t.stop_engine
        then begin
          t.engine_starting <- true;
          true
        end
        else false)
  in
  if claimed then begin
    let th = Thread.create engine t in
    locked t (fun () ->
        t.engine_starting <- false;
        if not t.stop_engine then t.engine <- Some th)
  end

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

let follower_repl_json t =
  locked t (fun () ->
      Jsonl.Obj
        [
          ("role", Jsonl.String "follower");
          ( "primary",
            Jsonl.String (Printf.sprintf "%s:%d" t.config.host t.config.port) );
          ("connected", Jsonl.Bool t.connected);
          ("connects", Jsonl.Int t.connects);
          ("last_applied_seq", Jsonl.Int t.last_applied);
          ("primary_last_seq", Jsonl.Int t.primary_last_seq);
          ("lag_records", Jsonl.Int (max 0 (t.primary_last_seq - t.last_applied)));
          ("lag_ms", Jsonl.Float t.lag_ms);
          ("mirrored_records", Jsonl.Int (Sink.appended t.sink));
          ("sink_fsyncs", Jsonl.Int (Sink.fsyncs t.sink));
          ("crc_failures", Jsonl.Int t.crc_failures);
          ("resets", Jsonl.Int t.resets);
          ("primed_from_store", Jsonl.Int t.primed_from_store);
          ("primed_fetched", Jsonl.Int t.primed_fetched);
          ("primed_replanned", Jsonl.Int t.primed_replanned);
        ])

let promoted_repl_json t p =
  locked t (fun () ->
      Jsonl.Obj
        [
          ("role", Jsonl.String "primary");
          ("promoted", Jsonl.Bool true);
          ("promoted_at_seq", Jsonl.Int p.at_seq);
          ( "promoted_from",
            Jsonl.String (Printf.sprintf "%s:%d" t.config.host t.config.port) );
          ("connects", Jsonl.Int t.connects);
          ("last_applied_seq", Jsonl.Int (Manager.last_seq p.manager));
          ("mirrored_records", Jsonl.Int (Sink.appended t.sink));
          ("crc_failures", Jsonl.Int t.crc_failures);
          ("resets", Jsonl.Int t.resets);
        ])

let repl_json t =
  match locked t (fun () -> t.promoted) with
  | Some p -> promoted_repl_json t p
  | None -> follower_repl_json t

let stats t : Response.stats =
  let served, errors, replanned =
    locked t (fun () -> (t.served, t.errors, t.primed_replanned))
  in
  {
    Response.queue_depth = 0;
    workers = 0;
    served;
    errors;
    coalesced = 0;
    jobs = 0;
    plans_built = replanned;
    cache = Cache.stats t.cache;
    avg_latency_ms = 0.;
    uptime_s = Unix.gettimeofday () -. t.started_at;
    wal =
      Some
        (Jsonl.Obj
           [
             ("dir", Jsonl.String t.config.dir);
             ("last_seq", Jsonl.Int (locked t (fun () -> t.last_applied)));
             ("appends", Jsonl.Int (Sink.appended t.sink));
             ("fsyncs", Jsonl.Int (Sink.fsyncs t.sink));
           ]);
    store = Option.map Plan_store.stats_json t.config.store;
    replication = Some (follower_repl_json t);
  }

let last_applied t = locked t (fun () -> t.last_applied)
let connected t = locked t (fun () -> t.connected)

(* ------------------------------------------------------------------ *)
(* Promotion                                                           *)

let do_promote t =
  Mutex.lock t.m;
  match t.promoted with
  | Some p ->
    Mutex.unlock t.m;
    p
  | None when t.promoting ->
    (* Someone else is mid-promotion (SIGUSR1 racing a promote
       request); wait for their result. *)
    while t.promoted = None do
      Condition.wait t.promote_done t.m
    done;
    let p = Option.get t.promoted in
    Mutex.unlock t.m;
    p
  | None ->
    t.promoting <- true;
    t.stop_engine <- true;
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      t.feed_fds;
    let eng = t.engine in
    t.engine <- None;
    Mutex.unlock t.m;
    (match eng with Some th -> Thread.join th | None -> ());
    Sink.close t.sink;
    (* From here this is a normal durable boot on the mirrored
       directory: recovery replays the journal the feed wrote, priming
       rebuilds the plans, and the node starts journaling its own
       appends where the primary left off. *)
    let manager, recovery =
      Manager.start ?store:t.config.store
        {
          Manager.dir = t.config.dir;
          fsync = t.config.fsync;
          snapshot_every = t.config.snapshot_every;
          cache_capacity = t.config.cache_capacity;
        }
    in
    let store_iface =
      Option.map
        (fun ps ->
          {
            Service.Store.find = Plan_store.find ps;
            add = Plan_store.add ps;
            stats = (fun () -> Plan_store.stats_json ps);
          })
        t.config.store
    in
    let rec_promoted = ref None in
    let server =
      Server.create ?workers:t.config.workers
        ~queue_capacity:t.config.queue_capacity
        ~cache_capacity:t.config.cache_capacity
        ~on_accept:(Manager.on_accept manager)
        ~on_complete:(fun ~spec ~requests ~ok ->
          Manager.on_complete manager ~spec ~requests ~ok)
        ~wal_stats:(fun () -> Manager.stats_json manager)
        ~repl_stats:(fun () ->
          match !rec_promoted with
          | Some p -> promoted_repl_json t p
          | None -> follower_repl_json t)
        ?store:store_iface ()
    in
    let t0 = Unix.gettimeofday () in
    let primed =
      Server.prime server
        ~cache:(Manager.recovered_cache manager)
        ~pending:(Manager.recovered_pending manager)
    in
    Manager.note_prime manager
      ~ms:((Unix.gettimeofday () -. t0) *. 1000.)
      ~replanned:primed.Server.replanned ~from_store:primed.Server.from_store
      ~pending:(List.length (Manager.recovered_pending manager));
    let p =
      { manager; server; recovery; at_seq = Manager.last_seq manager }
    in
    rec_promoted := Some p;
    Mutex.lock t.m;
    t.promoted <- Some p;
    t.promoting <- false;
    Condition.broadcast t.promote_done;
    Mutex.unlock t.m;
    p

let promote t = ignore (do_promote t)

let role t =
  match locked t (fun () -> t.promoted) with
  | Some _ -> `Promoted
  | None -> `Following

let promoted_server t = locked t (fun () -> Option.map (fun p -> p.server) t.promoted)

(* ------------------------------------------------------------------ *)
(* Serving                                                             *)

let write_json oc json =
  output_string oc (Jsonl.to_string json);
  output_char oc '\n';
  flush oc

let count_response t resp =
  locked t (fun () ->
      t.served <- t.served + 1;
      if not (Response.ok resp) then t.errors <- t.errors + 1)

let respond t oc resp =
  count_response t resp;
  write_json oc (Response.to_json resp)

let with_id ~id fields =
  fields @ (match id with Some v -> [ ("id", v) ] | None -> [])

(* One pre-promotion request line.  Returns [`Delegate server] when a
   promote request just turned this node into a primary: the rest of
   the connection's stream gets full service. *)
let handle_line t oc line =
  if String.trim line = "" then `Continue
  else begin
    let json = Jsonl.of_string line in
    let id =
      match json with Ok j -> Jsonl.member "id" j | Error _ -> None
    in
    let req =
      match json with
      | Ok j -> Option.bind (Jsonl.member "req" j) Jsonl.to_str
      | Error _ -> None
    in
    match req with
    | Some "promote" ->
      let p = do_promote t in
      locked t (fun () -> t.served <- t.served + 1);
      write_json oc
        (Jsonl.Obj
           (with_id ~id
              [
                ("ok", Jsonl.Bool true);
                ("req", Jsonl.String "promote");
                ("replayed", Jsonl.Int p.recovery.Replay.replayed);
                ("last_seq", Jsonl.Int p.at_seq);
              ]));
      `Delegate p.server
    | Some "route" ->
      (match Request.spec_of_json (Result.get_ok json) with
      | Ok spec ->
        locked t (fun () -> t.served <- t.served + 1);
        write_json oc
          (Jsonl.Obj
             (with_id ~id
                [
                  ("ok", Jsonl.Bool true);
                  ("req", Jsonl.String "route");
                  ("key", Jsonl.String (Request.coalesce_key spec));
                  ("cache_key", Jsonl.String (Request.cache_key spec));
                  ( "cached",
                    Jsonl.Bool
                      (Cache.peek t.cache (Request.cache_key spec) <> None) );
                  ("role", Jsonl.String "follower");
                ]))
      | Error msg ->
        respond t oc { Response.id; elapsed_ms = None; body = Response.Error msg });
      `Continue
    | _ ->
      (match Request.of_line line with
      | Error msg ->
        respond t oc { Response.id; elapsed_ms = None; body = Response.Error msg }
      | Ok { Request.id; kind = Request.Ping } ->
        respond t oc { Response.id; elapsed_ms = None; body = Response.Pong }
      | Ok { Request.id; kind = Request.Stats } ->
        respond t oc
          { Response.id; elapsed_ms = None; body = Response.Stats (stats t) }
      | Ok { Request.id; kind = Request.Prepare spec } -> (
        let t0 = Unix.gettimeofday () in
        match Cache.find t.cache (Request.cache_key spec) with
        | Some prepared ->
          respond t oc
            {
              Response.id;
              elapsed_ms = Some ((Unix.gettimeofday () -. t0) *. 1000.);
              body =
                Response.Schedule
                  {
                    summary = prepared.Prep.summary;
                    demand = spec.Request.demand;
                    batch_demand = spec.Request.demand;
                    coalesced = 1;
                    cache_hit = true;
                    instr = Some prepared.Prep.instr;
                  };
            }
        | None ->
          respond t oc
            {
              Response.id;
              elapsed_ms = None;
              body =
                Response.Error
                  "read-only follower: plan not cached (send writes to the \
                   primary, or promote this node)";
            }));
      `Continue
  end

let serve_channels t ic oc =
  let rec loop () =
    match promoted_server t with
    | Some server -> Server.serve_channels server ic oc
    | None -> (
      match Jsonl.read_line ic with
      | Jsonl.Eof -> ()
      | Jsonl.Oversized n ->
        respond t oc
          {
            Response.id = None;
            elapsed_ms = None;
            body =
              Response.Error
                (Printf.sprintf
                   "request line of %d bytes exceeds the %d byte limit" n
                   Jsonl.max_line_bytes);
          };
        loop ()
      | Jsonl.Line line | Jsonl.Tail line -> (
        match handle_line t oc line with
        | `Delegate server -> Server.serve_channels server ic oc
        | `Continue -> loop ()))
  in
  loop ()

let serve_tcp ?on_listen t ~host ~port =
  let addr = Net.resolve ~host ~port in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock addr;
  Unix.listen sock 64;
  (match on_listen with
  | None -> ()
  | Some f -> (
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, bound) -> f bound
    | Unix.ADDR_UNIX _ -> f port));
  while not (locked t (fun () -> t.stop)) do
    match Unix.accept sock with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _peer ->
      ignore
        (Thread.create
           (fun fd ->
             let ic = Unix.in_channel_of_descr fd in
             let oc = Unix.out_channel_of_descr fd in
             (try serve_channels t ic oc with _ -> ());
             (try close_out oc with _ -> ());
             try Unix.close fd with _ -> ())
           fd)
  done;
  try Unix.close sock with Unix.Unix_error _ -> ()

let close t =
  let eng, promoted =
    locked t (fun () ->
        t.stop <- true;
        t.stop_engine <- true;
        List.iter
          (fun fd ->
            try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
          t.feed_fds;
        let eng = t.engine in
        t.engine <- None;
        (eng, t.promoted))
  in
  (match eng with Some th -> Thread.join th | None -> ());
  match promoted with
  | Some p ->
    Server.stop p.server;
    Manager.close p.manager
  | None -> Sink.close t.sink
