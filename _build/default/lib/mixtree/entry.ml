type t = { fluid : Dmf.Fluid.t; weight : int }

let compare_entries a b =
  match Int.compare b.weight a.weight with
  | 0 -> Dmf.Fluid.compare a.fluid b.fluid
  | c -> c

let sort entries = List.sort compare_entries entries

let of_ratio r =
  let entries = ref [] in
  Array.iteri
    (fun i a ->
      let fluid = Dmf.Fluid.make i in
      List.iter
        (fun j -> entries := { fluid; weight = Dmf.Binary.pow2 j } :: !entries)
        (Dmf.Binary.set_bits a))
    (Dmf.Ratio.parts r);
  sort !entries

let total entries = List.fold_left (fun acc e -> acc + e.weight) 0 entries

(* First-fit decreasing.  Invariant: after all entries of weight >= w have
   been placed, the remaining capacity of the first bin is a multiple of
   w, so an entry either fits exactly or the bin is already full. *)
let partition ?tie ~half entries =
  if total entries <> 2 * half then
    invalid_arg "Entry.partition: total is not twice the half";
  let compare_weighted a b =
    match Int.compare b.weight a.weight with
    | 0 -> (
      match tie with
      | None -> Dmf.Fluid.compare a.fluid b.fluid
      | Some tie -> tie a b)
    | c -> c
  in
  let left = ref [] and right = ref [] in
  let capacity = ref half in
  List.iter
    (fun e ->
      if e.weight <= !capacity then begin
        left := e :: !left;
        capacity := !capacity - e.weight
      end
      else right := e :: !right)
    (List.sort compare_weighted entries);
  assert (!capacity = 0);
  (List.rev !left, List.rev !right)

(* Deal [pool] alternately into two sides with fixed quotas; once a side is
   full the remainder goes to the other side. *)
let deal_round_robin ~left_quota ~right_quota pool =
  let rec go toggle nl nr pool lacc racc =
    match pool with
    | [] -> (List.rev lacc, List.rev racc)
    | e :: rest ->
      let to_left =
        if nl >= left_quota then false
        else if nr >= right_quota then true
        else toggle
      in
      if to_left then go (not toggle) (nl + 1) nr rest (e :: lacc) racc
      else go (not toggle) nl (nr + 1) rest lacc (e :: racc)
  in
  go true 0 0 pool [] []

let balance_fluids (left, right) =
  (* For each weight class, re-deal the entries of that weight across the
     two sides round-robin in fluid order; per-side counts (and therefore
     sums) are unchanged. *)
  let weights =
    List.sort_uniq Int.compare (List.map (fun e -> e.weight) (left @ right))
  in
  let redistribute (left, right) w =
    let is_w e = e.weight = w in
    let lw, lrest = List.partition is_w left in
    let rw, rrest = List.partition is_w right in
    let pool = sort (lw @ rw) in
    let lw', rw' =
      deal_round_robin ~left_quota:(List.length lw)
        ~right_quota:(List.length rw) pool
    in
    (lrest @ lw', rrest @ rw')
  in
  let left, right =
    List.fold_left redistribute (left, right) weights
  in
  (sort left, sort right)

let split_largest entries =
  match sort entries with
  | { fluid; weight } :: rest when weight >= 2 ->
    let halfw = weight / 2 in
    Some (sort ({ fluid; weight = halfw } :: { fluid; weight = halfw } :: rest))
  | _ :: _ | [] -> None

let pp ppf entries =
  let pp_entry ppf e =
    Format.fprintf ppf "%a:%d" Dmf.Fluid.pp e.fluid e.weight
  in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ") pp_entry)
    entries
