lib/core/srs.mli: Plan Schedule
