(* Tests for the chip substrate: geometry, layouts, routing, cost
   matrices, storage allocation, actuation accounting and the placer. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let pcr = Generators.pcr16

(* ------------------------------------------------------------------ *)
(* Geometry                                                            *)

let point x y = { Chip.Geometry.x; y }

let test_distances () =
  check int "manhattan" 7 (Chip.Geometry.manhattan (point 0 0) (point 3 4));
  check int "chebyshev" 4 (Chip.Geometry.chebyshev (point 0 0) (point 3 4));
  check int "4-neighbourhood" 4 (List.length (Chip.Geometry.neighbours4 (point 5 5)))

let test_rects () =
  let r = { Chip.Geometry.x = 1; y = 2; w = 3; h = 2 } in
  check int "cells" 6 (List.length (Chip.Geometry.rect_cells r));
  check bool "contains corner" true (Chip.Geometry.rect_contains r (point 3 3));
  check bool "excludes outside" false (Chip.Geometry.rect_contains r (point 4 2));
  check bool "overlap" true
    (Chip.Geometry.rect_overlap r { Chip.Geometry.x = 3; y = 3; w = 2; h = 2 });
  check bool "no overlap" false
    (Chip.Geometry.rect_overlap r { Chip.Geometry.x = 4; y = 2; w = 1; h = 1 });
  let grown = Chip.Geometry.rect_expand r ~by:1 in
  check int "expanded width" 5 grown.Chip.Geometry.w

(* ------------------------------------------------------------------ *)
(* Layout                                                              *)

let test_default_layout_inventory () =
  let l = Chip.Layout.pcr_fig5 () in
  check int "7 reservoirs" 7 (List.length (Chip.Layout.reservoirs l));
  check int "3 mixers" 3 (List.length (Chip.Layout.mixers l));
  check int "5 storage units" 5 (List.length (Chip.Layout.storage_units l));
  check int "2 wastes" 2 (List.length (Chip.Layout.wastes l));
  check Alcotest.string "output port" "OUT" (Chip.Layout.output l).Chip.Chip_module.id

let test_layout_rejects_overlap () =
  let m id x =
    Chip.Chip_module.make ~id ~kind:Chip.Chip_module.Mixer
      ~rect:{ Chip.Geometry.x; y = 0; w = 2; h = 2 }
  in
  check bool "overlap rejected" true
    (try
       ignore (Chip.Layout.make ~width:10 ~height:10 ~modules:[ m "a" 0; m "b" 1 ]);
       false
     with Invalid_argument _ -> true);
  check bool "duplicate id rejected" true
    (try
       ignore (Chip.Layout.make ~width:10 ~height:10 ~modules:[ m "a" 0; m "a" 5 ]);
       false
     with Invalid_argument _ -> true);
  check bool "out of bounds rejected" true
    (try
       ignore (Chip.Layout.make ~width:3 ~height:3 ~modules:[ m "a" 2 ]);
       false
     with Invalid_argument _ -> true)

let test_layout_scales_with_resources () =
  (* Twelve fluids and thirty storage units must still place cleanly. *)
  let l = Chip.Layout.default ~mixers:5 ~storage_units:30 ~n_fluids:12 () in
  check int "12 reservoirs" 12 (List.length (Chip.Layout.reservoirs l));
  check int "30 storage units" 30 (List.length (Chip.Layout.storage_units l));
  check int "5 mixers" 5 (List.length (Chip.Layout.mixers l))

let test_reservoir_lookup () =
  let l = Chip.Layout.pcr_fig5 () in
  let r = Chip.Layout.reservoir_for l (Dmf.Fluid.make 6) in
  check Alcotest.string "R7 holds x7" "R7" r.Chip.Chip_module.id;
  check bool "missing fluid raises Not_found" true
    (try ignore (Chip.Layout.reservoir_for l (Dmf.Fluid.make 11)); false
     with Not_found -> true)

let test_mixer_ordering () =
  let l = Chip.Layout.default ~mixers:12 ~n_fluids:3 () in
  let ids = List.map (fun m -> m.Chip.Chip_module.id) (Chip.Layout.mixers l) in
  check (Alcotest.list Alcotest.string) "numeric order"
    [ "M1"; "M2"; "M3"; "M4"; "M5"; "M6"; "M7"; "M8"; "M9"; "M10"; "M11"; "M12" ]
    ids

let test_render () =
  let l = Chip.Layout.pcr_fig5 () in
  let map = Chip.Layout.render l in
  check bool "mentions mixers" true (Astring.String.is_infix ~affix:"M" map);
  check bool "legend present" true (Astring.String.is_infix ~affix:"R1=reservoir" map)

(* ------------------------------------------------------------------ *)
(* Router                                                              *)

let test_route_exists_and_valid () =
  let l = Chip.Layout.pcr_fig5 () in
  match Chip.Router.route_ids l ~src:"R1" ~dst:"M1" with
  | None -> Alcotest.fail "no route R1 -> M1"
  | Some path ->
    check bool "non-trivial" true (List.length path > 1);
    (* Consecutive cells are 4-neighbours. *)
    let rec steps = function
      | a :: (b :: _ as rest) ->
        check int "unit step" 1 (Chip.Geometry.manhattan a b);
        steps rest
      | [ _ ] | [] -> ()
    in
    steps path

let test_route_avoids_other_modules () =
  let l = Chip.Layout.pcr_fig5 () in
  match Chip.Router.route_ids l ~src:"R1" ~dst:"M3" with
  | None -> Alcotest.fail "no route"
  | Some path ->
    List.iter
      (fun p ->
        match Chip.Layout.module_at l p with
        | None -> ()
        | Some m ->
          check bool "only src/dst modules on path" true
            (m.Chip.Chip_module.id = "R1" || m.Chip.Chip_module.id = "M3"))
      path

let test_route_blocked () =
  let l = Chip.Layout.pcr_fig5 () in
  (* Block everything: no route. *)
  check bool "fully blocked" true
    (Chip.Router.route_ids ~blocked:(fun _ -> true) l ~src:"R1" ~dst:"M1" = None)

let test_path_cost () =
  check int "empty" 0 (Chip.Router.path_cost []);
  check int "singleton" 0 (Chip.Router.path_cost [ point 0 0 ]);
  check int "two cells" 1 (Chip.Router.path_cost [ point 0 0; point 0 1 ])

(* ------------------------------------------------------------------ *)
(* Cost matrix                                                         *)

let test_cost_matrix_symmetric () =
  let l = Chip.Layout.pcr_fig5 () in
  let m = Chip.Cost_matrix.build l in
  List.iter
    (fun (a, b) ->
      check int
        (Printf.sprintf "%s-%s symmetric" a b)
        (Chip.Cost_matrix.cost m ~src:a ~dst:b)
        (Chip.Cost_matrix.cost m ~src:b ~dst:a))
    [ ("R1", "M1"); ("M1", "M3"); ("q1", "M2"); ("W1", "M1") ];
  check int "diagonal zero" 0 (Chip.Cost_matrix.cost m ~src:"M1" ~dst:"M1")

let test_cost_matrix_triangle () =
  (* Shortest paths obey the triangle inequality. *)
  let l = Chip.Layout.pcr_fig5 () in
  let m = Chip.Cost_matrix.build l in
  let c a b = Chip.Cost_matrix.cost m ~src:a ~dst:b in
  check bool "triangle R1-M2" true (c "R1" "M2" <= c "R1" "M1" + c "M1" "M2" + 4)

let test_cost_matrix_render () =
  let l = Chip.Layout.pcr_fig5 () in
  let m = Chip.Cost_matrix.build l in
  let s = Chip.Cost_matrix.render ~rows:[ "R1"; "q1" ] ~columns:[ "M1"; "M2" ] m in
  check bool "has rows" true (Astring.String.is_infix ~affix:"R1" s)

(* ------------------------------------------------------------------ *)
(* Storage allocation                                                  *)

let forest demand = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~demand

let test_allocation_succeeds_with_enough_units () =
  let plan = forest 20 in
  let schedule = Mdst.Srs.schedule ~plan ~mixers:3 in
  let q = Mdst.Storage.units ~plan schedule in
  let units = List.init q (fun i -> Printf.sprintf "q%d" (i + 1)) in
  match Chip.Storage_alloc.allocate ~plan ~schedule ~units with
  | Error e -> Alcotest.fail e
  | Ok a ->
    (* Every residency got a unit, and units never hold two droplets at
       once. *)
    let residencies = Mdst.Storage.residencies ~plan schedule in
    check int "every stored droplet assigned" (List.length residencies)
      (List.length (Chip.Storage_alloc.bindings a));
    List.iter
      (fun r1 ->
        List.iter
          (fun r2 ->
            if r1 <> r2 then begin
              let u1 =
                Chip.Storage_alloc.unit_for a ~producer:r1.Mdst.Storage.producer
                  ~port:r1.Mdst.Storage.port
              and u2 =
                Chip.Storage_alloc.unit_for a ~producer:r2.Mdst.Storage.producer
                  ~port:r2.Mdst.Storage.port
              in
              if u1 = u2 then
                check bool "no overlap in same unit" true
                  (r1.Mdst.Storage.to_cycle < r2.Mdst.Storage.from_cycle
                  || r2.Mdst.Storage.to_cycle < r1.Mdst.Storage.from_cycle)
            end)
          residencies)
      residencies

let test_allocation_fails_with_too_few () =
  let plan = forest 20 in
  let schedule = Mdst.Srs.schedule ~plan ~mixers:3 in
  let q = Mdst.Storage.units ~plan schedule in
  check int "needs 5 units" 5 q;
  let units = List.init (q - 1) (fun i -> Printf.sprintf "q%d" (i + 1)) in
  check bool "too few units fails" true
    (Result.is_error (Chip.Storage_alloc.allocate ~plan ~schedule ~units))

(* ------------------------------------------------------------------ *)
(* Actuation accounting                                                *)

let test_actuation_consistency () =
  let plan = forest 20 in
  let schedule = Mdst.Srs.schedule ~plan ~mixers:3 in
  let layout = Chip.Layout.pcr_fig5 () in
  match Chip.Actuation.account ~layout ~plan ~schedule with
  | Error e -> Alcotest.fail e
  | Ok acc ->
    check int "dispenses = I" (Mdst.Plan.input_total plan) acc.Chip.Actuation.dispenses;
    check int "emitted = targets" (Mdst.Plan.targets plan) acc.Chip.Actuation.emitted;
    check int "waste disposals = W" (Mdst.Plan.waste plan) acc.Chip.Actuation.to_waste;
    check int "total = sum of movement costs"
      (List.fold_left (fun a m -> a + m.Chip.Actuation.cost) 0 acc.Chip.Actuation.movements)
      acc.Chip.Actuation.total_electrodes;
    check bool "some transfers go through storage" true (acc.Chip.Actuation.via_storage > 0)

let test_streamed_cheaper_than_repeated () =
  (* The Section 5 comparison: the streamed forest actuates far fewer
     electrodes than repeated passes (386 vs 980 on the paper's chip). *)
  let layout = Chip.Layout.pcr_fig5 () in
  let plan = forest 20 in
  let schedule = Mdst.Srs.schedule ~plan ~mixers:3 in
  let pass = Mdst.Forest.repeated ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~demand:2 in
  let pass_schedule = Mdst.Oms.schedule ~plan:pass ~mixers:3 in
  match
    ( Chip.Actuation.account ~layout ~plan ~schedule,
      Chip.Actuation.account ~layout ~plan:pass ~schedule:pass_schedule )
  with
  | Ok streamed, Ok one_pass ->
    let repeated = 10 * Chip.Actuation.total one_pass in
    check bool
      (Printf.sprintf "streamed (%d) < repeated (%d)"
         (Chip.Actuation.total streamed) repeated)
      true
      (Chip.Actuation.total streamed < repeated)
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_actuation_rejects_small_layout () =
  let plan = forest 20 in
  let schedule = Mdst.Srs.schedule ~plan ~mixers:3 in
  (* Only one mixer on chip but the schedule uses three. *)
  let layout = Chip.Layout.default ~mixers:1 ~n_fluids:7 () in
  check bool "too few mixers" true
    (Result.is_error (Chip.Actuation.account ~layout ~plan ~schedule))

(* ------------------------------------------------------------------ *)
(* Placer                                                              *)

let test_placer_never_worse () =
  let layout = Chip.Layout.pcr_fig5 () in
  let plan = forest 20 in
  let schedule = Mdst.Srs.schedule ~plan ~mixers:3 in
  match Chip.Placer.optimize_for ~iterations:400 ~plan ~schedule layout with
  | Error e -> Alcotest.fail e
  | Ok (improved, before, after) ->
    check bool "optimised layout is valid" true
      (List.length (Chip.Layout.modules improved) = List.length (Chip.Layout.modules layout));
    check bool (Printf.sprintf "no regression (%d -> %d)" before after) true
      (after <= before)

let test_flows_aggregation () =
  let layout = Chip.Layout.pcr_fig5 () in
  let plan = forest 8 in
  let schedule = Mdst.Srs.schedule ~plan ~mixers:3 in
  match Chip.Actuation.account ~layout ~plan ~schedule with
  | Error e -> Alcotest.fail e
  | Ok acc ->
    let flows = Chip.Placer.flows_of_accounting acc in
    let total = List.fold_left (fun a (_, c) -> a + c) 0 flows in
    check int "flow counts sum to movement count" (List.length acc.Chip.Actuation.movements) total

let () =
  Alcotest.run "chip"
    [
      ( "geometry",
        [
          Alcotest.test_case "distances" `Quick test_distances;
          Alcotest.test_case "rectangles" `Quick test_rects;
        ] );
      ( "layout",
        [
          Alcotest.test_case "pcr_fig5 inventory" `Quick test_default_layout_inventory;
          Alcotest.test_case "rejects bad layouts" `Quick test_layout_rejects_overlap;
          Alcotest.test_case "scales with resources" `Quick
            test_layout_scales_with_resources;
          Alcotest.test_case "reservoir lookup" `Quick test_reservoir_lookup;
          Alcotest.test_case "mixer ordering" `Quick test_mixer_ordering;
          Alcotest.test_case "render" `Quick test_render;
        ] );
      ( "router",
        [
          Alcotest.test_case "route exists and is valid" `Quick
            test_route_exists_and_valid;
          Alcotest.test_case "route avoids other modules" `Quick
            test_route_avoids_other_modules;
          Alcotest.test_case "blocked routing" `Quick test_route_blocked;
          Alcotest.test_case "path cost" `Quick test_path_cost;
        ] );
      ( "cost-matrix",
        [
          Alcotest.test_case "symmetric with zero diagonal" `Quick
            test_cost_matrix_symmetric;
          Alcotest.test_case "triangle inequality" `Quick test_cost_matrix_triangle;
          Alcotest.test_case "render" `Quick test_cost_matrix_render;
        ] );
      ( "storage-alloc",
        [
          Alcotest.test_case "succeeds with q units" `Quick
            test_allocation_succeeds_with_enough_units;
          Alcotest.test_case "fails below q units" `Quick
            test_allocation_fails_with_too_few;
        ] );
      ( "actuation",
        [
          Alcotest.test_case "accounting consistency" `Quick test_actuation_consistency;
          Alcotest.test_case "streamed cheaper than repeated" `Quick
            test_streamed_cheaper_than_repeated;
          Alcotest.test_case "rejects undersized layout" `Quick
            test_actuation_rejects_small_layout;
        ] );
      ( "placer",
        [
          Alcotest.test_case "never worse" `Quick test_placer_never_worse;
          Alcotest.test_case "flow aggregation" `Quick test_flows_aggregation;
        ] );
    ]
