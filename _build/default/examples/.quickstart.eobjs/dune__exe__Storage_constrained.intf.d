examples/storage_constrained.mli:
