lib/assay/planner.ml: Demand Format Int List Mdst
