(* Deepest level first; ties by tree then breadth-first index. *)
let priority a b =
  match Int.compare a.Plan.level b.Plan.level with
  | 0 -> (
    match Int.compare a.Plan.tree b.Plan.tree with
    | 0 -> Int.compare a.Plan.bfs b.Plan.bfs
    | c -> c)
  | c -> c

(* The main loop lives in {!Sched_core}; OMS is only the ready-set: one
   pairing heap in critical-path order.  The order is total ((tree, bfs)
   identifies a node), so popping the heap's minimum Mc times selects
   the same prefix the original sorted per-cycle rescan selected, and
   the schedules are bit-identical to the {!Naive.oms} reference at
   O(n log n) instead of O(n·Tc). *)
module Policy = struct
  let name = "OMS"

  type state = Plan.node Pqueue.t ref

  let init ~plan:_ ~mixers:_ = ref (Pqueue.empty ~compare:priority)

  let release st batch =
    List.iter (fun node -> st := Pqueue.insert node !st) batch

  let ready st = Pqueue.size !st

  let pick st ~fired:_ =
    match Pqueue.pop !st with
    | Some (node, rest) ->
      st := rest;
      Some node
    | None -> None
end

let policy : Sched_core.policy = (module Policy)
let schedule ~plan ~mixers = Sched_core.run policy ~plan ~mixers
