type request = {
  id : int;
  src : Geometry.point;
  dst : Geometry.point;
  allow : string list;
}

type routed = { id : int; trajectory : Geometry.point list }

let makespan = function
  | [] -> 0
  | routed ->
    List.fold_left
      (fun acc r -> max acc (List.length r.trajectory - 1))
      0 routed

(* Position of a parked-after-arrival trajectory at any sub-step. *)
let position_at (positions : Geometry.point array) t =
  if t < 0 then positions.(0)
  else positions.(min t (Array.length positions - 1))

(* The dynamic fluidic constraint between two droplets, with the
   same-module exemption (operands meeting inside one mixer). *)
let cells_conflict layout a b =
  if Geometry.chebyshev a b > 1 then false
  else
    match (Layout.module_at layout a, Layout.module_at layout b) with
    | Some ma, Some mb when ma.Chip_module.id = mb.Chip_module.id -> false
    | Some _, Some _ | Some _, None | None, Some _ | None, None -> true

let step_conflicts layout ~candidate ~candidate_prev reserved t =
  List.exists
    (fun positions ->
      let now = position_at positions t in
      let before = position_at positions (t - 1) in
      cells_conflict layout candidate now
      || cells_conflict layout candidate before
      || cells_conflict layout candidate_prev now)
    reserved

(* Once arrived, the droplet parks at [cell]: it must stay clear of every
   reserved trajectory for the rest of the horizon. *)
let can_park layout reserved cell ~from_t ~horizon =
  let rec check t =
    if t > horizon then true
    else if
      step_conflicts layout ~candidate:cell ~candidate_prev:cell reserved t
    then false
    else check (t + 1)
  in
  check from_t

let route_one layout ~horizon ~reserved request =
  let allowed_cell p =
    Layout.in_bounds layout p
    &&
    match Layout.module_at layout p with
    | None -> true
    | Some m -> List.mem m.Chip_module.id request.allow
  in
  if not (allowed_cell request.src && allowed_cell request.dst) then None
  else begin
    let key (p : Geometry.point) t = ((p.Geometry.y * 4096) + p.Geometry.x, t) in
    let parent = Hashtbl.create 256 in
    let queue = Queue.create () in
    let goal = ref None in
    Hashtbl.add parent (key request.src 0) None;
    if
      not
        (step_conflicts layout ~candidate:request.src
           ~candidate_prev:request.src reserved 0)
    then Queue.push (request.src, 0) queue;
    while !goal = None && not (Queue.is_empty queue) do
      let p, t = Queue.pop queue in
      if
        p = request.dst
        && can_park layout reserved p ~from_t:t ~horizon
      then goal := Some (p, t)
      else if t < horizon then
        List.iter
          (fun next ->
            if
              allowed_cell next
              && (not (Hashtbl.mem parent (key next (t + 1))))
              && not
                   (step_conflicts layout ~candidate:next ~candidate_prev:p
                      reserved (t + 1))
            then begin
              Hashtbl.add parent (key next (t + 1)) (Some (p, t));
              Queue.push (next, t + 1) queue
            end)
          (p :: Geometry.neighbours4 p)
    done;
    match !goal with
    | None -> None
    | Some (p, t) ->
      let rec backtrack (p, t) acc =
        match Hashtbl.find parent (key p t) with
        | None -> p :: acc
        | Some prev -> backtrack prev (p :: acc)
      in
      Some (backtrack (p, t) [])
  end

let route_batch ?horizon layout requests =
  let horizon =
    match horizon with
    | Some h -> h
    | None -> 4 * 2 * (Layout.width layout + Layout.height layout)
  in
  let ordered =
    List.stable_sort
      (fun a b ->
        Int.compare
          (Geometry.manhattan b.src b.dst)
          (Geometry.manhattan a.src a.dst))
      requests
  in
  let rec plan reserved routed = function
    | [] -> Ok (List.rev routed)
    | request :: rest -> (
      match route_one layout ~horizon ~reserved request with
      | None -> Error (request : request)
      | Some trajectory ->
        let positions = Array.of_list trajectory in
        plan (positions :: reserved)
          ({ id = request.id; trajectory } :: routed)
          rest)
  in
  (* Prioritised planning is order-sensitive: a droplet routed early may
     cut through the still-parked source of a later one.  On failure,
     promote the failed droplet to the front and replan — at most once
     per droplet. *)
  let rec attempt order retries =
    match plan [] [] order with
    | Ok routed -> Ok routed
    | Error (failed : request) ->
      if retries <= 0 then
        Error
          (Printf.sprintf
             "droplet %d cannot reach (%d,%d) within %d sub-steps" failed.id
             failed.dst.Geometry.x failed.dst.Geometry.y horizon)
      else
        let rest = List.filter (fun (r : request) -> r.id <> failed.id) order in
        attempt (failed :: rest) (retries - 1)
  in
  match attempt ordered (List.length ordered) with
  | Error _ as e -> e
  | Ok routed ->
    (* Pad every trajectory to the common makespan: droplets park. *)
    let span = makespan routed in
    let pad r =
      let last = List.nth r.trajectory (List.length r.trajectory - 1) in
      let missing = span + 1 - List.length r.trajectory in
      { r with trajectory = r.trajectory @ List.init missing (fun _ -> last) }
    in
    Ok (List.map pad routed)

let validate layout routed =
  let check cond fmt =
    Format.kasprintf (fun s -> if cond then Ok () else Error s) fmt
  in
  let ( let* ) = Result.bind in
  let rec each f = function
    | [] -> Ok ()
    | x :: rest ->
      let* () = f x in
      each f rest
  in
  let span = makespan routed in
  let* () =
    each
      (fun r ->
        let* () =
          check
            (List.length r.trajectory = span + 1)
            "droplet %d trajectory not padded" r.id
        in
        let rec steps = function
          | a :: (b :: _ as rest) ->
            let* () =
              check
                (Geometry.manhattan a b <= 1)
                "droplet %d teleports" r.id
            in
            let* () =
              check (Layout.in_bounds layout b) "droplet %d leaves the grid"
                r.id
            in
            steps rest
          | [ _ ] | [] -> Ok ()
        in
        steps r.trajectory)
      routed
  in
  let arr = List.map (fun r -> (r.id, Array.of_list r.trajectory)) routed in
  let rec pairs = function
    | [] -> Ok ()
    | (ida, pa) :: rest ->
      let* () =
        each
          (fun (idb, pb) ->
            let rec times t =
              if t > span then Ok ()
              else
                let* () =
                  check
                    (not
                       (cells_conflict layout (position_at pa t)
                          (position_at pb t)
                        || cells_conflict layout (position_at pa t)
                             (position_at pb (t - 1))
                        || cells_conflict layout
                             (position_at pa (t - 1))
                             (position_at pb t)))
                    "droplets %d and %d violate segregation at sub-step %d"
                    ida idb t
                in
                times (t + 1)
            in
            times 0)
          rest
      in
      pairs rest
  in
  pairs arr
