lib/chip/chip_module.ml: Dmf Format Geometry String
