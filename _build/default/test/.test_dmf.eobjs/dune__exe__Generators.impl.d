test/generators.ml: Array Bioproto Dmf Gen Int List Mixtree QCheck2 QCheck_alcotest
