(* Tests for multi-target preparation (SDMT/MDMT) and the Pqueue used by
   the SRS scheduler. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

(* ------------------------------------------------------------------ *)
(* Multi-target forests                                                *)

let r = Dmf.Ratio.of_string

let test_two_targets () =
  let plan =
    Mdst.Forest.build_multi ~algorithm:Mixtree.Algorithm.MM
      [ (r "2:1:1:1:1:1:9", 4); (r "1:1:1:1:1:1:10", 4) ]
  in
  check bool "valid" true (Result.is_ok (Mdst.Plan.validate plan));
  check int "four trees" 4 (Mdst.Plan.trees plan);
  check int "eight targets" 8 (Mdst.Plan.targets plan);
  (* Root values follow request order. *)
  let values =
    List.map (fun root -> Mdst.Plan.root_value plan root) (Mdst.Plan.roots plan)
  in
  let a = Dmf.Mixture.of_ratio (r "2:1:1:1:1:1:9") in
  let b = Dmf.Mixture.of_ratio (r "1:1:1:1:1:1:10") in
  check bool "first two roots emit target A" true
    (List.for_all (Dmf.Mixture.equal a) (List.filteri (fun i _ -> i < 2) values));
  check bool "last two roots emit target B" true
    (List.for_all (Dmf.Mixture.equal b) (List.filteri (fun i _ -> i >= 2) values))

let test_cross_target_sharing_saves_reagent () =
  (* Two related targets share intermediate mixtures; the combined forest
     must use no more input than preparing them independently. *)
  let requests = [ (r "3:3:2", 8); (r "3:3:10", 8) ] in
  let combined =
    Mdst.Forest.build_multi ~algorithm:Mixtree.Algorithm.MM requests
  in
  let separate =
    List.fold_left
      (fun acc (ratio, demand) ->
        acc
        + Mdst.Plan.input_total
            (Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand))
      0 requests
  in
  check bool
    (Printf.sprintf "combined I (%d) <= separate I (%d)"
       (Mdst.Plan.input_total combined)
       separate)
    true
    (Mdst.Plan.input_total combined <= separate);
  (* And a pair where the second target strictly consumes the first
     target's spare droplets: 3:3:2 leaves a spare of (1,1,0)/2 and a
     spare of (1,1,2)/4, both of which 1:1:2 needs. *)
  let combined =
    Mdst.Forest.build_multi ~algorithm:Mixtree.Algorithm.MM
      [ (r "3:3:2", 2); (r "1:1:2", 2) ]
  in
  let separate =
    Mdst.Plan.input_total
      (Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:(r "3:3:2")
         ~demand:2)
    + Mdst.Plan.input_total
        (Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:(r "1:1:2")
           ~demand:2)
  in
  check bool
    (Printf.sprintf "strict sharing: %d < %d"
       (Mdst.Plan.input_total combined)
       separate)
    true
    (Mdst.Plan.input_total combined < separate)

let test_multi_schedulable () =
  let plan =
    Mdst.Forest.build_multi ~algorithm:Mixtree.Algorithm.MM
      [ (r "3:5", 6); (r "1:7", 6); (r "5:3", 2) ]
  in
  List.iter
    (fun scheduler ->
      let s = Mdst.Scheduler.schedule scheduler ~plan ~mixers:2 in
      check bool
        (Mdst.Scheduler.name scheduler ^ " valid")
        true
        (Result.is_ok (Mdst.Schedule.validate ~plan s)))
    (Mdst.Scheduler.all ())

let test_multi_rejects_bad_requests () =
  check bool "empty" true
    (try ignore (Mdst.Forest.build_multi ~algorithm:Mixtree.Algorithm.MM []); false
     with Invalid_argument _ -> true);
  check bool "universe mismatch" true
    (try
       ignore
         (Mdst.Forest.build_multi ~algorithm:Mixtree.Algorithm.MM
            [ (r "3:5", 2); (r "1:1:2", 2) ]);
       false
     with Invalid_argument _ -> true);
  check bool "zero demand" true
    (try
       ignore
         (Mdst.Forest.build_multi ~algorithm:Mixtree.Algorithm.MM
            [ (r "3:5", 0) ]);
       false
     with Invalid_argument _ -> true)

let test_multi_single_matches_forest () =
  (* One request degenerates to the ordinary forest. *)
  let ratio = r "2:1:1:1:1:1:9" in
  let multi = Mdst.Forest.build_multi ~algorithm:Mixtree.Algorithm.MM [ (ratio, 20) ] in
  let single = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:20 in
  check int "same Tms" (Mdst.Plan.tms single) (Mdst.Plan.tms multi);
  check int "same inputs" (Mdst.Plan.input_total single) (Mdst.Plan.input_total multi);
  check int "same waste" (Mdst.Plan.waste single) (Mdst.Plan.waste multi)

let prop_multi_conservation =
  Generators.qtest ~count:60 "multi-target droplet conservation"
    QCheck2.Gen.(
      Generators.ratio_gen >>= fun a ->
      Generators.composition_gen ~n:(Dmf.Ratio.n_fluids a)
        ~d:(Dmf.Ratio.accuracy a)
      >>= fun parts ->
      pair (int_range 1 10) (int_range 1 10) >|= fun (da, db) ->
      (a, Dmf.Ratio.make parts, da, db))
    (fun (a, b, da, db) ->
      Printf.sprintf "%s x%d + %s x%d" (Dmf.Ratio.to_string a) da
        (Dmf.Ratio.to_string b) db)
    (fun (a, b, da, db) ->
      let plan =
        Mdst.Forest.build_multi ~algorithm:Mixtree.Algorithm.MM
          [ (a, da); (b, db) ]
      in
      Mdst.Plan.input_total plan = Mdst.Plan.targets plan + Mdst.Plan.waste plan
      && Mdst.Plan.trees plan = ((da + 1) / 2) + ((db + 1) / 2))

(* ------------------------------------------------------------------ *)
(* Pqueue                                                              *)

let test_pqueue_orders () =
  let q = Mdst.Pqueue.of_list ~compare:Int.compare [ 5; 1; 4; 1; 3 ] in
  check (Alcotest.list int) "sorted drain" [ 1; 1; 3; 4; 5 ]
    (Mdst.Pqueue.to_sorted_list q)

let test_pqueue_size () =
  let q = Mdst.Pqueue.empty ~compare:Int.compare in
  check bool "empty" true (Mdst.Pqueue.is_empty q);
  let q = Mdst.Pqueue.insert 2 (Mdst.Pqueue.insert 7 q) in
  check int "size 2" 2 (Mdst.Pqueue.size q);
  match Mdst.Pqueue.pop q with
  | Some (x, rest) ->
    check int "min first" 2 x;
    check int "size shrinks" 1 (Mdst.Pqueue.size rest);
    check bool "pop empty" true
      (match Mdst.Pqueue.pop rest with
      | Some (7, final) -> Mdst.Pqueue.pop final = None
      | Some _ | None -> false)
  | None -> Alcotest.fail "pop failed"

let test_pqueue_custom_order () =
  let q = Mdst.Pqueue.of_list ~compare:(fun a b -> Int.compare b a) [ 1; 9; 5 ] in
  check (Alcotest.list int) "max first" [ 9; 5; 1 ] (Mdst.Pqueue.to_sorted_list q)

let prop_pqueue_sorts =
  Generators.qtest ~count:200 "pqueue drains in sorted order"
    QCheck2.Gen.(list_size (int_range 0 60) (int_range (-100) 100))
    (fun xs -> String.concat "," (List.map string_of_int xs))
    (fun xs ->
      Mdst.Pqueue.to_sorted_list (Mdst.Pqueue.of_list ~compare:Int.compare xs)
      = List.sort Int.compare xs)

let () =
  Alcotest.run "multi"
    [
      ( "multi-target",
        [
          Alcotest.test_case "two targets" `Quick test_two_targets;
          Alcotest.test_case "cross-target sharing saves reagent" `Quick
            test_cross_target_sharing_saves_reagent;
          Alcotest.test_case "schedulable" `Quick test_multi_schedulable;
          Alcotest.test_case "rejects bad requests" `Quick
            test_multi_rejects_bad_requests;
          Alcotest.test_case "single request = ordinary forest" `Quick
            test_multi_single_matches_forest;
          prop_multi_conservation;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "orders" `Quick test_pqueue_orders;
          Alcotest.test_case "size and pop" `Quick test_pqueue_size;
          Alcotest.test_case "custom order" `Quick test_pqueue_custom_order;
          prop_pqueue_sorts;
        ] );
    ]
