type spec = {
  ratio : Dmf.Ratio.t;
  demand : int;
  algorithm : Mixtree.Algorithm.t;
  scheduler : Mdst.Scheduler.t;
  mixers : int option;
  storage_limit : int option;
}

type kind = Prepare of spec | Stats | Ping

type t = { id : Jsonl.t option; kind : kind }

let coalesce_key spec =
  Printf.sprintf "%s|%s|%s|Mc=%s|q'=%s"
    (Dmf.Ratio.key spec.ratio)
    (Mixtree.Algorithm.name spec.algorithm)
    (Mdst.Scheduler.name spec.scheduler)
    (match spec.mixers with Some m -> string_of_int m | None -> "auto")
    (match spec.storage_limit with Some q -> string_of_int q | None -> "-")

let cache_key spec =
  Printf.sprintf "%s|D=%d" (coalesce_key spec) spec.demand

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)

let ( let* ) = Result.bind

let field_str json key =
  match Jsonl.member key json with
  | None -> Ok None
  | Some (Jsonl.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "field %S must be a string" key)

let field_int json key =
  match Jsonl.member key json with
  | None | Some Jsonl.Null -> Ok None
  | Some (Jsonl.Int i) -> Ok (Some i)
  | Some _ -> Error (Printf.sprintf "field %S must be an integer" key)

let opt_validated v f =
  match v with
  | None -> Ok None
  | Some x ->
    let* y = f x in
    Ok (Some y)

let spec_of_json json =
  let* ratio_str = field_str json "ratio" in
  let* ratio =
    match ratio_str with
    | Some s -> Validate.ratio s
    | None -> Error "prepare request needs a \"ratio\" field"
  in
  let* demand_raw = field_int json "D" in
  let* demand =
    match demand_raw with
    | Some d -> Validate.demand d
    | None -> Error "prepare request needs an integer \"D\" field"
  in
  let* algo_str = field_str json "algorithm" in
  let* algorithm =
    match algo_str with
    | Some s -> Validate.algorithm s
    | None -> Ok Mixtree.Algorithm.MM
  in
  let* sched_str = field_str json "scheduler" in
  let* scheduler =
    match sched_str with
    | Some s -> Validate.scheduler s
    | None -> Ok Mdst.Scheduler.srs
  in
  let* mixers_raw = field_int json "Mc" in
  let* mixers = opt_validated mixers_raw Validate.mixers in
  let* storage_raw = field_int json "storage" in
  let* storage_limit = opt_validated storage_raw Validate.storage in
  Ok { ratio; demand; algorithm; scheduler; mixers; storage_limit }

let of_json json =
  match json with
  | Jsonl.Obj _ ->
    let id = Jsonl.member "id" json in
    let* kind_str = field_str json "req" in
    let* kind =
      match kind_str with
      | Some "prepare" ->
        let* spec = spec_of_json json in
        Ok (Prepare spec)
      | Some "stats" -> Ok Stats
      | Some "ping" -> Ok Ping
      | Some other -> Error ("unknown request kind " ^ other)
      | None -> Error "request needs a \"req\" field (prepare, stats, ping)"
    in
    Ok { id; kind }
  | _ -> Error "request must be a JSON object"

let of_line line =
  let* json = Jsonl.of_string line in
  of_json json

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)

let to_json { id; kind } =
  let id_field = match id with Some v -> [ ("id", v) ] | None -> [] in
  let fields =
    match kind with
    | Stats -> [ ("req", Jsonl.String "stats") ]
    | Ping -> [ ("req", Jsonl.String "ping") ]
    | Prepare spec ->
      [
        ("req", Jsonl.String "prepare");
        ("ratio", Jsonl.String (Dmf.Ratio.to_string spec.ratio));
        ("D", Jsonl.Int spec.demand);
        ("algorithm", Jsonl.String (Mixtree.Algorithm.name spec.algorithm));
        ("scheduler", Jsonl.String (Mdst.Scheduler.name spec.scheduler));
      ]
      @ (match spec.mixers with
        | Some m -> [ ("Mc", Jsonl.Int m) ]
        | None -> [])
      @
      (match spec.storage_limit with
      | Some q -> [ ("storage", Jsonl.Int q) ]
      | None -> [])
  in
  Jsonl.Obj (fields @ id_field)
