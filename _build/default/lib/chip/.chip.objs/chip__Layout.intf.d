lib/chip/layout.mli: Chip_module Dmf Geometry
