type t = { parts : int array; d : int; names : string array }

let default_names n = Array.init n (fun i -> Fluid.default_name (Fluid.make i))

let make ?names parts =
  let n = Array.length parts in
  if n < 2 then invalid_arg "Ratio.make: a mixture needs at least two fluids";
  Array.iter
    (fun a -> if a < 1 then invalid_arg "Ratio.make: every part must be >= 1")
    parts;
  let sum = Array.fold_left ( + ) 0 parts in
  if not (Binary.is_power_of_two sum) then
    invalid_arg "Ratio.make: the ratio-sum must be a power of two";
  let names =
    match names with
    | None -> default_names n
    | Some names ->
      if Array.length names <> n then
        invalid_arg "Ratio.make: names and parts lengths differ";
      Array.copy names
  in
  { parts = Array.copy parts; d = Binary.log2_exact sum; names }

let of_string s =
  let fields = String.split_on_char ':' s in
  let parse field =
    match int_of_string_opt (String.trim field) with
    | Some a -> a
    | None -> invalid_arg ("Ratio.of_string: bad part " ^ field)
  in
  make (Array.of_list (List.map parse fields))

let parts r = Array.copy r.parts

let part r i =
  if i < 0 || i >= Array.length r.parts then
    invalid_arg "Ratio.part: index out of range";
  r.parts.(i)

let n_fluids r = Array.length r.parts
let sum r = Binary.pow2 r.d
let accuracy r = r.d
let names r = Array.copy r.names
let fluids r = List.init (n_fluids r) Fluid.make

let equal a b =
  Array.length a.parts = Array.length b.parts
  && Array.for_all2 ( = ) a.parts b.parts

let compare a b =
  let la = Array.length a.parts and lb = Array.length b.parts in
  match Int.compare la lb with
  | 0 ->
    let rec go i =
      if i >= la then 0
      else
        match Int.compare a.parts.(i) b.parts.(i) with
        | 0 -> go (i + 1)
        | c -> c
    in
    go 0
  | c -> c

let hash r = Hashtbl.hash r.parts

let key r =
  String.concat ":" (Array.to_list (Array.map string_of_int r.parts))

(* Largest-remainder rounding of [ideal.(i)] values to non-negative
   integers that sum to [total], with a floor of one part per fluid. *)
let round_to_sum ~total ideal =
  let n = Array.length ideal in
  if n > total then invalid_arg "Ratio.approximate: more fluids than parts";
  let base = Array.map (fun x -> max 1 (int_of_float (floor x))) ideal in
  let current = ref (Array.fold_left ( + ) 0 base) in
  (* Distribute missing parts to the largest fractional remainders. *)
  if !current < total then begin
    let by_remainder =
      List.sort
        (fun i j ->
          Float.compare
            (ideal.(j) -. float_of_int base.(j))
            (ideal.(i) -. float_of_int base.(i)))
        (List.init n Fun.id)
    in
    let order = ref by_remainder in
    while !current < total do
      (match !order with
      | [] -> order := by_remainder
      | i :: rest ->
        base.(i) <- base.(i) + 1;
        incr current;
        order := rest)
    done
  end
  (* Remove excess parts where the rounding overshot the most, while
     keeping every part at least one. *)
  else if !current > total then begin
    while !current > total do
      let victim = ref (-1) in
      let worst = ref neg_infinity in
      for i = 0 to n - 1 do
        if base.(i) > 1 then begin
          let overshoot = float_of_int base.(i) -. ideal.(i) in
          if overshoot > !worst then begin
            worst := overshoot;
            victim := i
          end
        end
      done;
      if !victim < 0 then invalid_arg "Ratio.approximate: infeasible rounding";
      base.(!victim) <- base.(!victim) - 1;
      decr current
    done
  end;
  base

let approximate ?names ~d percents =
  let n = Array.length percents in
  if n < 2 then
    invalid_arg "Ratio.approximate: a mixture needs at least two fluids";
  Array.iter
    (fun p ->
      if not (p > 0.) then
        invalid_arg "Ratio.approximate: percentages must be positive")
    percents;
  let total = Binary.pow2 d in
  let psum = Array.fold_left ( +. ) 0. percents in
  let ideal = Array.map (fun p -> p /. psum *. float_of_int total) percents in
  make ?names (round_to_sum ~total ideal)

let rescale r ~d =
  approximate ~names:r.names ~d (Array.map float_of_int r.parts)

let approximation_error r percents =
  let psum = Array.fold_left ( +. ) 0. percents in
  let total = float_of_int (sum r) in
  let err i a = abs_float ((float_of_int a /. total) -. (percents.(i) /. psum)) in
  let worst = ref 0. in
  Array.iteri (fun i a -> worst := max !worst (err i a)) r.parts;
  !worst

let to_string r =
  String.concat ":" (Array.to_list (Array.map string_of_int r.parts))

let pp ppf r = Format.pp_print_string ppf (to_string r)
