lib/mixtree/hu.mli: Tree
