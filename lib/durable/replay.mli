(** Boot-time recovery: latest valid snapshot + journal tail.

    {!recover} rebuilds the durable {!State} a crashed daemon left
    behind: load the newest snapshot that verifies, then apply every
    journal record with a later sequence number, segment by segment, in
    order.  The first record in a segment that fails to verify — CRC
    mismatch, JSON parse error, an over-long or truncated line — marks
    a torn tail: that record and everything after it {e in that
    segment} is dropped (and counted), and replay moves to the next
    segment.  A sequence-number gap between surviving records aborts
    the replay at the gap instead of rebuilding a state that never
    existed.

    The rebuilt state carries only request specs; the caller re-derives
    cached plans by re-running the deterministic planner
    ({!Service.Server.prime} via {!Manager}). *)

type stats = {
  snapshot_seq : int option;  (** Snapshot the recovery started from. *)
  replayed : int;  (** Journal records applied on top of it. *)
  truncated : int;  (** Torn or invalid journal lines dropped. *)
  gap : bool;  (** A sequence gap stopped the replay early. *)
  wall_ms : float;  (** Snapshot load + replay time. *)
  next_seq : int;  (** First unused sequence number after recovery. *)
}

val recover : dir:string -> cache_capacity:int -> State.t * stats
(** A missing or empty [dir] recovers to the empty state (all-zero
    stats, [next_seq = 1]). *)
