lib/core/metrics.mli: Format Plan Schedule
