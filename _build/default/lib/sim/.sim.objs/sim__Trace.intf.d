lib/sim/trace.mli: Chip Dmf Format
