lib/bioproto/protocols.mli: Dmf
