(** The event-driven scheduling engine behind every forest scheduler.

    MMS (Algorithm 1), SRS (Algorithm 2) and OMS (Hu's critical-path
    rule) differ only in {e which ready node fires next}; everything
    else — ready-set maintenance through the plan's successor index,
    pending-count decrement, fresh-droplet buffering (a droplet produced
    at cycle [t] is consumable from [t + 1]), the shared
    {!Schedule.no_progress_bound} guard and the Algorithm 3 storage
    accounting of the instrumentation hooks — lives here, once.

    A scheduler is a {!POLICY}: a mutable ready-set keyed by the order
    the policy imposes.  The engine calls [release] with each batch of
    newly schedulable nodes at the cycle's admission point and then
    [pick]s up to [Mc] nodes; nodes whose last predecessor fires during
    the cycle are buffered and released at the next admission point, so
    every policy sees exactly the candidate sets a per-cycle full-plan
    rescan would see.  Because the paper's priority orders are all total
    — [(tree, bfs)] identifies a node — the engine reproduces the
    original per-cycle-rescan schedules bit for bit (the differential
    tests against {!Naive} check this). *)

module type POLICY = sig
  val name : string
  (** Registry name, e.g. ["MMS"]; also used in error messages. *)

  type state
  (** The mutable ready-set. *)

  val init : plan:Plan.t -> mixers:int -> state

  val release : state -> Plan.node list -> unit
  (** Admit a non-empty batch of newly schedulable nodes.  Batch order
      is unspecified; the policy imposes its own total order. *)

  val ready : state -> int
  (** Number of admitted, not yet fired nodes.  Only called when the
      run is instrumented. *)

  val pick : state -> fired:int -> Plan.node option
  (** Next node to fire this cycle, given that [fired] nodes already
      fired in it ([fired = 0] marks the start of a cycle — SRS
      snapshots its per-cycle queue quotas there).  [None] ends the
      cycle early. *)
end

type policy = (module POLICY)

val run : ?instr:Instr.t -> policy -> plan:Plan.t -> mixers:int -> Schedule.t
(** [run policy ~plan ~mixers] schedules the whole plan.  With [instr],
    the hooks of {!Instr} fire as documented there; without it no
    instrumentation bookkeeping happens at all.  @raise Invalid_argument
    if [mixers < 1]; @raise Failure on a no-progress loop (corrupt
    pending counts — an internal error, never a property of a valid
    plan). *)
