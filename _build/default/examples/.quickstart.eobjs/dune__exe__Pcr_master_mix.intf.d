examples/pcr_master_mix.mli:
