(** Demand-driven cost analysis of a mixing tree with droplet sharing.

    Every (1:1) mix-split emits {e two} droplets of the same value; when a
    value is needed in several places (within one pass, or across the
    component trees of a mixing forest), one mix instance can feed two
    consumers.  This module propagates a droplet demand through the value
    graph of a tree and reports the minimum mix-split, input and waste
    counts achievable with full sharing — the analytical optimum that the
    MDST mixing forest realises, and the per-pass cost model of the MTCS
    baseline [16].

    The numbers returned here serve as reference values for the
    forest-construction tests: a greedy pool-based forest must match the
    demand-driven mix count whenever no value admits two distinct
    recipes. *)

type stats = {
  mixes : int;  (** Total (1:1) mix-split steps, [Tms]. *)
  inputs : int array;  (** Input droplets per fluid, [I\[\]]. *)
  waste : int;  (** Droplets produced but never consumed or emitted. *)
}

val demand_stats : n:int -> demand:int -> Tree.t -> stats
(** [demand_stats ~n ~demand tree] is the fully-shared cost of producing
    [demand] droplets of the root value of [tree] over a universe of [n]
    fluids.  @raise Invalid_argument if [demand < 1]. *)

val pass_stats : n:int -> Tree.t -> stats
(** [pass_stats ~n tree] is [demand_stats ~n ~demand:2 tree] — the cost of
    one pass when identical intermediate droplets are shared (the MTCS
    execution model). *)
