(** Volumetric split-error analysis of a plan.

    On real electrowetting chips a (1:1) split is imbalanced: the two
    daughter droplets carry volumes [(1 + e) v] and [(1 - e) v] for some
    per-split imbalance bound [e] (typically up to 5-7%).  An imbalanced
    split does not change a droplet's CF vector, but it changes the
    {e volume ratio} at the next merge: mixing operand volumes [va] and
    [vb] yields CFs weighted [va / (va + vb)] instead of exactly 1/2, so
    volume errors become concentration errors that compound along the
    mixing path.

    This module propagates {b worst-case} volume intervals through a plan
    and bounds the CF deviation of every emitted target droplet —
    extending the paper's exact-arithmetic model with the robustness
    analysis common in the DMF sample-preparation literature.  It lets
    one compare how base-tree choices (deep RMA chains versus balanced MM
    trees) and droplet re-use affect error accumulation. *)

type report = {
  epsilon : float;  (** The assumed per-split volume imbalance bound. *)
  max_cf_error : float;
      (** Largest absolute CF deviation over all fluids and all emitted
          target droplets. *)
  mean_cf_error : float;  (** Mean over target droplets of their worst CF deviation. *)
  per_root : (int * float) list;
      (** Worst-case CF deviation of each component-tree root. *)
  worst_volume_skew : float;
      (** Largest relative volume deviation of any droplet in the plan. *)
}

val analyze : plan:Plan.t -> epsilon:float -> report
(** [analyze ~plan ~epsilon] computes worst-case bounds.
    @raise Invalid_argument if [epsilon] is not in [\[0, 0.5)]. *)

val max_cf_error : plan:Plan.t -> epsilon:float -> float
(** Shortcut for [(analyze ~plan ~epsilon).max_cf_error]. *)
