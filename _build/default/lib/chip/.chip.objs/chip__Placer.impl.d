lib/chip/placer.ml: Actuation Array Chip_module Cost_matrix Geometry Hashtbl Layout List Option Random
