lib/core/compare.mli: Dmf Metrics Mixtree Streaming
