(* Tests for the split-error analysis and the electrode-wear model. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let pcr = Generators.pcr16

let forest demand =
  Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~demand

(* ------------------------------------------------------------------ *)
(* Split-error analysis                                                *)

let test_zero_epsilon_is_exact () =
  let plan = forest 20 in
  let report = Mdst.Split_error.analyze ~plan ~epsilon:0. in
  check (Alcotest.float 1e-12) "no CF error" 0. report.Mdst.Split_error.max_cf_error;
  check (Alcotest.float 1e-12) "no volume skew" 0.
    report.Mdst.Split_error.worst_volume_skew

let test_error_grows_with_epsilon () =
  let plan = forest 20 in
  let e1 = Mdst.Split_error.max_cf_error ~plan ~epsilon:0.01 in
  let e3 = Mdst.Split_error.max_cf_error ~plan ~epsilon:0.03 in
  let e7 = Mdst.Split_error.max_cf_error ~plan ~epsilon:0.07 in
  check bool "monotone in epsilon" true (0. < e1 && e1 < e3 && e3 < e7)

let test_error_bounded () =
  (* CFs live in [0, 1], so the deviation can never exceed 1. *)
  let plan = forest 32 in
  let report = Mdst.Split_error.analyze ~plan ~epsilon:0.07 in
  check bool "bounded by 1" true (report.Mdst.Split_error.max_cf_error <= 1.);
  check bool "mean <= max" true
    (report.Mdst.Split_error.mean_cf_error
    <= report.Mdst.Split_error.max_cf_error +. 1e-12);
  check int "one entry per root" (Mdst.Plan.trees plan)
    (List.length report.Mdst.Split_error.per_root)

let test_deeper_trees_are_more_fragile () =
  (* A deeper (RMA) plan accumulates at least as much worst-case error as
     a balanced (MM) plan of the same target on a single pass. *)
  let ratio = Dmf.Ratio.of_string "1:15" in
  let epsilon = 0.05 in
  let error algorithm =
    let plan = Mdst.Forest.build ~algorithm ~ratio ~demand:2 in
    Mdst.Split_error.max_cf_error ~plan ~epsilon
  in
  check bool "shallow no worse than deep chain" true
    (error Mixtree.Algorithm.MM <= error Mixtree.Algorithm.RMA +. 1e-9)

let test_rejects_bad_epsilon () =
  let plan = forest 4 in
  List.iter
    (fun epsilon ->
      check bool
        (Printf.sprintf "epsilon %f rejected" epsilon)
        true
        (try ignore (Mdst.Split_error.analyze ~plan ~epsilon); false
         with Invalid_argument _ -> true))
    [ -0.1; 0.5; 1.0 ]

let prop_error_sound =
  Generators.qtest ~count:80 "error bound is finite, monotone and sound"
    QCheck2.Gen.(pair Generators.ratio_gen (int_range 2 16))
    (fun (r, d) -> Printf.sprintf "%s D=%d" (Dmf.Ratio.to_string r) d)
    (fun (ratio, demand) ->
      let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand in
      let e0 = Mdst.Split_error.max_cf_error ~plan ~epsilon:0. in
      let small = Mdst.Split_error.max_cf_error ~plan ~epsilon:0.02 in
      let large = Mdst.Split_error.max_cf_error ~plan ~epsilon:0.06 in
      e0 = 0. && small <= large && large <= 1. && small >= 0.)

(* ------------------------------------------------------------------ *)
(* Electrode wear                                                      *)

let wear_of demand =
  let plan = forest demand in
  let schedule = Mdst.Srs.schedule ~plan ~mixers:3 in
  let layout = Chip.Layout.pcr_fig5 () in
  match Sim.Wear.of_run ~layout ~plan ~schedule with
  | Ok wear -> wear
  | Error e -> Alcotest.fail e

let test_wear_consistency () =
  let wear = wear_of 20 in
  check bool "some electrodes used" true (wear.Sim.Wear.active_electrodes > 0);
  check bool "hottest <= total" true (wear.Sim.Wear.hottest <= wear.Sim.Wear.total);
  let heat_total =
    Array.fold_left
      (fun acc row -> Array.fold_left ( + ) acc row)
      0 wear.Sim.Wear.heatmap
  in
  check int "heatmap sums to total" wear.Sim.Wear.total heat_total;
  check bool "mean positive" true (wear.Sim.Wear.mean_per_active > 0.)

let test_wear_matches_trace_electrodes () =
  let plan = forest 20 in
  let schedule = Mdst.Srs.schedule ~plan ~mixers:3 in
  let layout = Chip.Layout.pcr_fig5 () in
  match Sim.Executor.run ~layout ~plan ~schedule with
  | Error e -> Alcotest.fail e
  | Ok (trace, stats) ->
    let wear = Sim.Wear.of_stats stats in
    check int "wear total = routed electrodes" (Sim.Trace.electrodes trace)
      wear.Sim.Wear.total

let test_streaming_wears_less_than_repeated () =
  (* The reliability argument of Section 5: fewer actuations, less wear. *)
  let layout = Chip.Layout.pcr_fig5 () in
  let streamed =
    let plan = forest 20 in
    let schedule = Mdst.Srs.schedule ~plan ~mixers:3 in
    match Sim.Wear.of_run ~layout ~plan ~schedule with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  let one_pass =
    let plan = Mdst.Forest.repeated ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~demand:2 in
    let schedule = Mdst.Oms.schedule ~plan ~mixers:3 in
    match Sim.Wear.of_run ~layout ~plan ~schedule with
    | Ok w -> w
    | Error e -> Alcotest.fail e
  in
  check bool "streamed total wear below 10 repeated passes" true
    (streamed.Sim.Wear.total < 10 * one_pass.Sim.Wear.total)

let test_wear_render () =
  let wear = wear_of 8 in
  let s = Sim.Wear.render wear in
  check bool "mentions totals" true (Astring.String.is_infix ~affix:"total=" s);
  check bool "grid lines present" true (String.contains s '\n')

let () =
  Alcotest.run "robustness"
    [
      ( "split-error",
        [
          Alcotest.test_case "zero epsilon exact" `Quick test_zero_epsilon_is_exact;
          Alcotest.test_case "grows with epsilon" `Quick test_error_grows_with_epsilon;
          Alcotest.test_case "bounded and complete" `Quick test_error_bounded;
          Alcotest.test_case "deep chains are fragile" `Quick
            test_deeper_trees_are_more_fragile;
          Alcotest.test_case "rejects bad epsilon" `Quick test_rejects_bad_epsilon;
          prop_error_sound;
        ] );
      ( "wear",
        [
          Alcotest.test_case "consistency" `Quick test_wear_consistency;
          Alcotest.test_case "matches trace" `Quick test_wear_matches_trace_electrodes;
          Alcotest.test_case "streaming wears less" `Quick
            test_streaming_wears_less_than_repeated;
          Alcotest.test_case "render" `Quick test_wear_render;
        ] );
    ]
