(** A streaming follower: hot standby for a [dmfd] primary.

    The follower subscribes to a primary's replication feed
    ({!Feed}), mirrors its WAL byte-for-byte into a local directory
    ({!Sink}), CRC-verifies and applies every record to a live
    {!Durable.State} model, and keeps a warm plan cache primed from
    the plan store, the feed's plan-fetch session, or deterministic
    re-planning — whichever answers first; all three produce the same
    value.

    While following, it serves read-only traffic: [ping], [stats]
    (with a [replication] object carrying role and lag), [route]
    diagnostics, and [prepare] requests that hit the warm cache
    (misses answer with an error naming the primary).  A [promote]
    request — or {!promote}, which [dmfd] wires to [SIGUSR1] — turns
    it into a full primary: the feed stops, the mirrored directory
    goes through ordinary {!Durable.Manager.start} crash recovery
    (so the promoted node's stats show [replayed > 0]), and a
    complete {!Service.Server} takes over, journaling new appends
    where the old primary left off.

    Exactly-once apply holds because record CRCs are re-verified on
    arrival, sequence numbers are strictly monotonic, and the apply
    cursor skips already-covered numbers — the same idempotent filter
    {!Durable.Replay} uses, which also makes resume overlap after a
    reconnect harmless.  A sequence gap (lost records) drops the
    connection and resubscribes from scratch instead of applying
    around a hole. *)

type config = {
  host : string;  (** The primary's replication feed endpoint. *)
  port : int;
  dir : string;  (** Local mirror directory (the follower's WAL). *)
  cache_capacity : int;
  queue_capacity : int;  (** For the post-promotion server. *)
  workers : int option;  (** Ditto. *)
  fsync : Durable.Wal.fsync_policy;  (** Ditto. *)
  snapshot_every : int;  (** Ditto. *)
  store : Durable.Plan_store.t option;
  fetch_plans : bool;
      (** Ask the feed for plan payloads on cache-prime misses
          instead of re-planning locally. *)
  reconnect_ms : float;  (** Backoff between feed reconnect attempts. *)
}

type t

val create : config -> t
(** Claim the mirror directory and recover any previous mirror
    through {!Durable.Replay} (repairing torn tails, wiping a mirror
    with a sequence hole), so a restarted follower resumes from where
    its disk stands.
    @raise Failure when another process holds the directory. *)

val start : t -> unit
(** Start the engine thread: connect, subscribe from the mirror's
    cursor, apply the stream, reconnect with backoff on disconnect. *)

val promote : t -> unit
(** Promote to primary (idempotent; concurrent callers wait for the
    one promotion and share its result): stop the engine, release the
    mirror, run {!Durable.Manager.start} recovery on it, stand up a
    full server.  [dmfd --follow] wires this to [SIGUSR1]. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Serve one NDJSON stream: read-only while following; after a
    [promote] request (or a concurrent {!promote}), the rest of
    the stream — and every later connection — gets the promoted
    server's full service. *)

val serve_tcp : ?on_listen:(int -> unit) -> t -> host:string -> port:int -> unit
(** Bind and serve connections until {!close}; same [port = 0] /
    [on_listen] convention as {!Service.Server.serve_tcp}. *)

val stats : t -> Service.Response.stats
(** The follower-shaped stats record served to [stats] requests while
    following (zero queue/workers, warm-cache counters, a [wal]
    object for the mirror and a [replication] object for role and
    lag). *)

val repl_json : t -> Service.Jsonl.t
(** Just the [replication] stats object, for either role. *)

val role : t -> [ `Following | `Promoted ]

val last_applied : t -> int
(** Highest sequence number applied to the live model. *)

val connected : t -> bool

val close : t -> unit
(** Stop the engine (and, when promoted, the server and manager);
    release the mirror directory. *)
