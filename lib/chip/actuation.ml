type movement = {
  cycle : int;
  description : string;
  src : string;
  dst : string;
  cost : int;
}

type t = {
  movements : movement list;
  total_electrodes : int;
  dispenses : int;
  via_storage : int;
  direct_transfers : int;
  to_waste : int;
  emitted : int;
}

let total t = t.total_electrodes

let account ~layout ~plan ~schedule =
  let ( let* ) r f = Result.bind r f in
  let matrix = Cost_matrix.build layout in
  let mixers = Layout.mixers layout in
  let* () =
    if List.length mixers >= Mdst.Schedule.mixers schedule then Ok ()
    else
      Error
        (Printf.sprintf "layout has %d mixers, schedule needs %d"
           (List.length mixers)
           (Mdst.Schedule.mixers schedule))
  in
  let mixer_id k = (List.nth mixers (k - 1)).Chip_module.id in
  let storage_ids =
    List.map (fun m -> m.Chip_module.id) (Layout.storage_units layout)
  in
  let* allocation = Storage_alloc.allocate ~plan ~schedule ~units:storage_ids in
  let wastes = Layout.wastes layout in
  let* () = if wastes = [] then Error "layout has no waste reservoir" else Ok () in
  let out = (Layout.output layout).Chip_module.id in
  let movements = ref [] in
  let dispenses = ref 0
  and via_storage = ref 0
  and direct = ref 0
  and to_waste = ref 0
  and emitted = ref 0 in
  let move ~cycle ~description ~src ~dst =
    let cost = Cost_matrix.cost matrix ~src ~dst in
    movements := { cycle; description; src; dst; cost } :: !movements
  in
  (* The nearest waste depends only on the source mixer; memoise it so
     the waste fold runs once per mixer, not once per evacuated
     droplet. *)
  let nearest_waste_cache = Hashtbl.create 8 in
  let nearest_waste src =
    match Hashtbl.find_opt nearest_waste_cache src with
    | Some w -> w
    | None ->
      let w =
        List.fold_left
          (fun best w ->
            let c = Cost_matrix.cost matrix ~src ~dst:w.Chip_module.id in
            match best with
            | Some (_, bc) when bc <= c -> best
            | Some _ | None -> Some (w.Chip_module.id, c))
          None wastes
        |> Option.get |> fst
      in
      Hashtbl.add nearest_waste_cache src w;
      w
  in
  let result =
    try
      List.iter
        (fun node ->
          let id = node.Mdst.Plan.id in
          let t = Mdst.Schedule.cycle schedule id in
          let mixer = mixer_id (Mdst.Schedule.mixer schedule id) in
          let label = Mdst.Gantt.label node in
          (* Bring the two operand droplets to the mixer. *)
          List.iter
            (fun (side, source) ->
              match source with
              | Mdst.Plan.Reserve _ ->
                failwith
                  "plans with reserve droplets are not supported by the \
                   actuation backend"
              | Mdst.Plan.Input f ->
                incr dispenses;
                let reservoir =
                  (Layout.reservoir_for layout f).Chip_module.id
                in
                move ~cycle:t
                  ~description:(Printf.sprintf "%s %s operand" label side)
                  ~src:reservoir ~dst:mixer
              | Mdst.Plan.Output { node = producer; port } -> (
                let tp = Mdst.Schedule.cycle schedule producer in
                let producer_mixer =
                  mixer_id (Mdst.Schedule.mixer schedule producer)
                in
                if t = tp + 1 then begin
                  incr direct;
                  move ~cycle:t
                    ~description:(Printf.sprintf "%s %s operand" label side)
                    ~src:producer_mixer ~dst:mixer
                end
                else
                  match
                    Storage_alloc.unit_for allocation ~producer ~port
                  with
                  | None ->
                    failwith
                      (Printf.sprintf
                         "droplet (%d,%d) has no storage assignment" producer
                         port)
                  | Some unit_id ->
                    incr via_storage;
                    move ~cycle:(tp + 1)
                      ~description:
                        (Printf.sprintf "store spare of node %d" producer)
                      ~src:producer_mixer ~dst:unit_id;
                    move ~cycle:t
                      ~description:(Printf.sprintf "%s %s operand" label side)
                      ~src:unit_id ~dst:mixer))
            [ ("left", node.Mdst.Plan.left); ("right", node.Mdst.Plan.right) ];
          (* Evacuate unconsumed output droplets. *)
          List.iter
            (fun port ->
              match Mdst.Plan.consumer plan ~node:id ~port with
              | Some _ -> ()
              | None ->
                if Mdst.Plan.is_root plan id then begin
                  incr emitted;
                  move ~cycle:(t + 1)
                    ~description:(Printf.sprintf "target from %s" label)
                    ~src:mixer ~dst:out
                end
                else begin
                  incr to_waste;
                  move ~cycle:(t + 1)
                    ~description:(Printf.sprintf "waste from %s" label)
                    ~src:mixer ~dst:(nearest_waste mixer)
                end)
            [ 0; 1 ])
        (Mdst.Plan.nodes plan);
      Ok ()
    with
    | Failure msg -> Error msg
    | Invalid_argument msg -> Error msg
    | Not_found -> Error "layout lacks a reservoir for some fluid"
  in
  let* () = result in
  let movements = List.rev !movements in
  Ok
    {
      movements;
      total_electrodes =
        List.fold_left (fun acc m -> acc + m.cost) 0 movements;
      dispenses = !dispenses;
      via_storage = !via_storage;
      direct_transfers = !direct;
      to_waste = !to_waste;
      emitted = !emitted;
    }
