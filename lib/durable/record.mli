(** One write-ahead-log record: the unit {!Wal} appends and {!Replay}
    decodes.

    Two kinds of event are journaled, mirroring the two durable state
    transitions of the server:

    - [Accepted spec] — the admission queue took a prepare request in
      (logged under the queue lock, so the journal order matches the
      admission order);
    - [Completed _] — a planning job resolved.  [spec] is the job's
      batch spec (demand already summed over the coalesced waiters),
      [requests] how many accepted requests it answers, and [ok]
      whether planning succeeded.  Completions are logged for cache
      hits too: a hit refreshes LRU recency, and recovery must replay
      that refresh to rebuild the same eviction order.

    On the wire a record is one JSON object on one NDJSON line:
    [{"seq": n, "rec": "accepted"|"completed", "spec": {...}, ..., "crc": c}]
    where [c] is the {!Crc32} of the record's canonical encoding
    without the [crc] field.  The {!Service.Jsonl} codec prints
    deterministically (key order preserved, floats round-trip), which
    is what makes checksum-over-reencoding sound. *)

type kind =
  | Accepted of Service.Request.spec
  | Completed of { spec : Service.Request.spec; requests : int; ok : bool }

val encode : seq:int -> kind -> string
(** One protocol line (no trailing newline), [crc] field included. *)

val decode : string -> (int * kind, string) result
(** Parse and verify one line: JSON well-formedness, the [crc] match
    against the re-encoded record, and spec validity all checked.  The
    [Error] message says which check failed — {!Replay} treats any of
    them as the start of a torn tail. *)

(** {2 Spec codec}

    Shared with {!Snapshot}: a spec is stored as the prepare-request
    object {!Service.Request.to_json} produces, and read back through
    {!Service.Request.of_json}, so journaled specs pass exactly the
    validation live requests do. *)

val spec_to_json : Service.Request.spec -> Service.Jsonl.t

val spec_of_json : Service.Jsonl.t -> (Service.Request.spec, string) result
