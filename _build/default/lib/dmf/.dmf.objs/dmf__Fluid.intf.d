lib/dmf/fluid.mli: Format
