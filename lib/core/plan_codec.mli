(** Canonical, versioned binary codec for plans and schedules.

    Everything the daemon caches per spec — the mixing-forest plan and
    its mixer schedule — can be rebuilt deterministically by re-planning
    (PR 5 relies on exactly that), but re-planning costs tree
    construction plus scheduling.  This codec gives the cheaper
    alternative: a {e canonical} byte encoding — the same value always
    encodes to the same bytes, so [encode (decode b) = b] and byte
    equality is value equality — that the content-addressed plan store
    ({!Durable.Plan_store}) persists across restarts and shares across
    shards.

    Decoding re-enters the ordinary constructors ({!Plan.create_multi},
    {!Schedule.create}), so every decoded value passes the full
    structural validation a freshly planned one does; a corrupt or
    truncated buffer yields [Error], never a malformed plan.

    Format: little-endian fixed-width integers, length-prefixed strings
    and arrays, one leading tag byte per value kind, all wrapped by the
    store in a CRC-guarded frame ({!Durable.Crc32}).  Any change to
    these bytes must bump {!version} — the pinned golden vectors in
    [test/test_plan_store.ml] exist to make silent drift impossible. *)

val version : int
(** Version of the canonical encoding.  Bump on {e any} byte-level
    change; the store treats entries of other versions as misses and
    falls back to re-planning. *)

(** Low-level wire primitives, exposed so the plan store can encode its
    records (spec keys, summaries, instrumentation counters) in the same
    canonical format. *)
module Wire : sig
  type writer

  val writer : unit -> writer
  val u8 : writer -> int -> unit
  val u32 : writer -> int -> unit
  (** @raise Invalid_argument outside [0, 0xFFFFFFFF]. *)

  val int64 : writer -> int64 -> unit
  val int : writer -> int -> unit
  (** Full native int, as its [Int64] image. *)

  val f64 : writer -> float -> unit
  (** IEEE-754 bits — exact round-trip for every float. *)

  val bool : writer -> bool -> unit
  val bytes : writer -> string -> unit
  (** u32 length prefix + raw bytes. *)

  val contents : writer -> string

  type reader

  exception Corrupt of string
  (** Raised by the [r_*] readers on truncation or malformed input;
      {!Plan_codec.decode_plan} and friends catch it and return
      [Error]. *)

  val reader : string -> reader
  val r_u8 : reader -> int
  val r_u32 : reader -> int
  val r_int64 : reader -> int64
  val r_int : reader -> int
  val r_f64 : reader -> float
  val r_bool : reader -> bool
  val r_bytes : reader -> string
  val expect_end : reader -> unit
  (** @raise Corrupt if bytes remain. *)
end

val encode_plan : Plan.t -> string
(** Canonical bytes of a plan: ratio (parts and names), demand,
    reserves, nodes, roots and root values. *)

val decode_plan : string -> (Plan.t, string) result
(** Rebuild a plan through {!Plan.create_multi} — full structural
    validation included. *)

val encode_schedule : plan:Plan.t -> Schedule.t -> string
(** Canonical bytes of a schedule: mixer count plus the per-node cycle
    and mixer assignments ([plan] supplies the node count — a schedule
    is meaningless without the plan it orders). *)

val decode_schedule : plan:Plan.t -> string -> (Schedule.t, string) result
(** Rebuild a schedule against its plan through {!Schedule.create} —
    precedence and double-booking re-checked. *)

val hash_hex : string -> string
(** Stable 128-bit content hash of arbitrary bytes as 32 lowercase hex
    characters — the store's entry name for the canonical bytes of the
    planning inputs.  Two independently seeded FNV-1a-64 lanes, each
    passed through the splitmix64 finalizer (the same mixing the
    cluster ring uses); stable across platforms and processes, never
    dependent on [Hashtbl.hash]. *)
