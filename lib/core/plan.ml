type source =
  | Input of Dmf.Fluid.t
  | Output of { node : int; port : int }
  | Reserve of int

type node = {
  id : int;
  tree : int;
  level : int;
  bfs : int;
  value : Dmf.Mixture.t;
  left : source;
  right : source;
}

type t = {
  ratio : Dmf.Ratio.t;
  demand : int;
  nodes : node array;
  roots : int array;
  root_values : Dmf.Mixture.t array;  (* parallel to [roots] *)
  root_set : bool array;
  consumers : (int option * int option) array;
  reserve_values : Dmf.Mixture.t array;
  reserve_users : int option array;  (* consuming node per reserve *)
  succs : int array array;  (* consumer ids per node, port 0 before port 1 *)
  pred_counts : int array;  (* producing predecessors per node *)
}

let ratio p = p.ratio
let demand p = p.demand
let n_nodes p = Array.length p.nodes

let node p i =
  if i < 0 || i >= Array.length p.nodes then
    invalid_arg "Plan.node: id out of range";
  p.nodes.(i)

let nodes p = Array.to_list p.nodes
let is_root p i = p.root_set.(i)
let roots p = Array.to_list p.roots
let trees p = Array.length p.roots
let targets p = 2 * trees p

let root_value p r =
  let rec find i =
    if i >= Array.length p.roots then
      invalid_arg "Plan.root_value: not a root"
    else if p.roots.(i) = r then p.root_values.(i)
    else find (i + 1)
  in
  find 0

let consumer p ~node ~port =
  let first, second = p.consumers.(node) in
  match port with
  | 0 -> first
  | 1 -> second
  | _ -> invalid_arg "Plan.consumer: port must be 0 or 1"

let predecessors n =
  List.filter_map
    (function
      | Input _ | Reserve _ -> None
      | Output { node; port = _ } -> Some node)
    [ n.left; n.right ]

let pred_count p i =
  if i < 0 || i >= Array.length p.pred_counts then
    invalid_arg "Plan.pred_count: id out of range";
  p.pred_counts.(i)

let iter_successors p i f =
  if i < 0 || i >= Array.length p.succs then
    invalid_arg "Plan.iter_successors: id out of range";
  Array.iter f p.succs.(i)

(* A reserve droplet sits in a storage unit, so for SRS priorities it
   behaves like an internal child: stalling its consumer keeps the
   storage unit busy. *)
let child_kind _p n =
  let internal = function Output _ | Reserve _ -> true | Input _ -> false in
  match (internal n.left, internal n.right) with
  | true, true -> `Both_internal
  | true, false | false, true -> `One_internal
  | false, false -> `Both_leaves

let tms p = Array.length p.nodes

let input_vector p =
  let counts = Array.make (Dmf.Ratio.n_fluids p.ratio) 0 in
  let record = function
    | Input f ->
      let i = Dmf.Fluid.index f in
      counts.(i) <- counts.(i) + 1
    | Output _ | Reserve _ -> ()
  in
  Array.iter
    (fun n ->
      record n.left;
      record n.right)
    p.nodes;
  counts

let input_total p = Array.fold_left ( + ) 0 (input_vector p)

let waste p =
  let w = ref 0 in
  Array.iteri
    (fun i (first, second) ->
      if not p.root_set.(i) then begin
        if first = None then incr w;
        if second = None then incr w
      end)
    p.consumers;
  !w

let reserves p = Array.copy p.reserve_values

let reserve_consumed p i =
  if i < 0 || i >= Array.length p.reserve_users then
    invalid_arg "Plan.reserve_consumed: index out of range";
  p.reserve_users.(i) <> None

let consumed_reserves p =
  Array.fold_left
    (fun acc user -> if user = None then acc else acc + 1)
    0 p.reserve_users

let source_value p = function
  | Input f -> Dmf.Mixture.pure ~n:(Dmf.Ratio.n_fluids p.ratio) f
  | Output { node; port = _ } -> p.nodes.(node).value
  | Reserve i -> p.reserve_values.(i)

let validate p =
  let ( let* ) r f = Result.bind r f in
  let check cond fmt =
    Format.kasprintf (fun s -> if cond then Ok () else Error s) fmt
  in
  let rec each f = function
    | [] -> Ok ()
    | x :: rest ->
      let* () = f x in
      each f rest
  in
  let* () = check (p.demand >= 1) "demand %d < 1" p.demand in
  let* () =
    check
      (2 * Array.length p.roots >= p.demand)
      "only %d targets for demand %d"
      (2 * Array.length p.roots)
      p.demand
  in
  let* () =
    each
      (fun n ->
        let* () = check (n.id >= 0 && n.id < n_nodes p) "node id %d out of range" n.id in
        let* () = check (p.nodes.(n.id) == n) "node %d misplaced" n.id in
        let* () =
          each
            (fun src ->
              match src with
              | Input _ -> Ok ()
              | Reserve i ->
                check
                  (i >= 0 && i < Array.length p.reserve_values)
                  "node %d: reserve %d out of range" n.id i
              | Output { node = producer; port } ->
                let* () =
                  check (port = 0 || port = 1) "node %d: bad port %d" n.id port
                in
                check
                  (producer >= 0 && producer < n.id)
                  "node %d consumes from node %d: not topologically ordered"
                  n.id producer)
            [ n.left; n.right ]
        in
        let expect =
          Dmf.Mixture.mix (source_value p n.left) (source_value p n.right)
        in
        check
          (Dmf.Mixture.equal expect n.value)
          "node %d: recorded value %s, recomputed %s" n.id
          (Dmf.Mixture.to_string n.value)
          (Dmf.Mixture.to_string expect))
      (nodes p)
  in
  (* Every droplet consumed at most once, and consumer links match. *)
  let seen = Hashtbl.create 64 in
  let seen_reserves = Hashtbl.create 8 in
  let* () =
    each
      (fun n ->
        each
          (fun src ->
            match src with
            | Input _ -> Ok ()
            | Reserve i ->
              let* () =
                check
                  (not (Hashtbl.mem seen_reserves i))
                  "reserve %d consumed twice" i
              in
              Hashtbl.add seen_reserves i n.id;
              check
                (p.reserve_users.(i) = Some n.id)
                "reserve link of %d broken" i
            | Output { node = producer; port } ->
              let key = (producer, port) in
              let* () =
                check
                  (not (Hashtbl.mem seen key))
                  "droplet (%d, %d) consumed twice" producer port
              in
              Hashtbl.add seen key n.id;
              let* () =
                check
                  (not p.root_set.(producer))
                  "node %d consumes a target droplet of root %d" n.id producer
              in
              check
                (consumer p ~node:producer ~port = Some n.id)
                "consumer link of droplet (%d, %d) broken" producer port)
          [ n.left; n.right ])
      (nodes p)
  in
  let* () =
    check
      (Array.length p.root_values = Array.length p.roots)
      "plan has %d roots but %d root values"
      (Array.length p.roots)
      (Array.length p.root_values)
  in
  let* () =
    each
      (fun i ->
        let r = p.roots.(i) in
        check
          (Dmf.Mixture.equal p.nodes.(r).value p.root_values.(i))
          "root %d value %s differs from target %s" r
          (Dmf.Mixture.to_string p.nodes.(r).value)
          (Dmf.Mixture.to_string p.root_values.(i)))
      (List.init (Array.length p.roots) Fun.id)
  in
  check
    (input_total p + consumed_reserves p = targets p + waste p)
    "droplet conservation violated: I=%d, reserves used=%d, targets=%d, W=%d"
    (input_total p) (consumed_reserves p) (targets p) (waste p)

let create_multi ?(reserves = [||]) ~ratio ~demand ~nodes ~roots ~root_values
    () =
  let consumers = Array.make (Array.length nodes) (None, None) in
  let reserve_users = Array.make (Array.length reserves) None in
  Array.iter
    (fun n ->
      List.iter
        (function
          | Input _ -> ()
          | Reserve i ->
            if i < 0 || i >= Array.length reserves then
              invalid_arg "Plan.create: reserve index out of range";
            reserve_users.(i) <- Some n.id
          | Output { node = producer; port } ->
            let first, second = consumers.(producer) in
            let updated =
              match port with
              | 0 -> (Some n.id, second)
              | 1 -> (first, Some n.id)
              | _ -> invalid_arg "Plan.create: bad port"
            in
            consumers.(producer) <- updated)
        [ n.left; n.right ])
    nodes;
  let root_set = Array.make (Array.length nodes) false in
  Array.iter (fun r -> root_set.(r) <- true) roots;
  (* Successor/predecessor index for the event-driven schedulers: the
     port-0 consumer precedes the port-1 consumer, matching the order in
     which a launch releases its two output droplets. *)
  let succs =
    Array.map
      (fun (first, second) ->
        match (first, second) with
        | Some a, Some b -> [| a; b |]
        | Some a, None | None, Some a -> [| a |]
        | None, None -> [||])
      consumers
  in
  let pred_counts =
    Array.map (fun n -> List.length (predecessors n)) nodes
  in
  let p =
    { ratio; demand; nodes; roots; root_values; root_set; consumers;
      reserve_values = Array.copy reserves; reserve_users; succs;
      pred_counts }
  in
  match validate p with
  | Ok () -> p
  | Error msg -> invalid_arg ("Plan.create: " ^ msg)

let create ~ratio ~demand ~nodes ~roots =
  let target = Dmf.Mixture.of_ratio ratio in
  create_multi ~ratio ~demand ~nodes ~roots
    ~root_values:(Array.make (Array.length roots) target)
    ()

let pp_summary ppf p =
  let distinct_targets =
    Array.fold_left
      (fun acc v -> Dmf.Mixture.Set.add v acc)
      Dmf.Mixture.Set.empty p.root_values
    |> Dmf.Mixture.Set.cardinal
  in
  let target_label =
    if distinct_targets <= 1 then
      Format.asprintf "target %a (d=%d)" Dmf.Ratio.pp p.ratio
        (Dmf.Ratio.accuracy p.ratio)
    else Format.asprintf "%d distinct targets" distinct_targets
  in
  Format.fprintf ppf
    "@[<v>%s, demand %d:@ |F|=%d trees, Tms=%d, W=%d, I=%d, I[]=[%s]@]"
    target_label p.demand (trees p) (tms p) (waste p) (input_total p)
    (String.concat ";"
       (Array.to_list (Array.map string_of_int (input_vector p))))
