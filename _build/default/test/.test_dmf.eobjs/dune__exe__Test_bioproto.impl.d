test/test_bioproto.ml: Alcotest Array Bioproto Dmf Generators Int List Printf QCheck2
