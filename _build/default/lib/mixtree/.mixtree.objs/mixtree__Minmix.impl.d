lib/mixtree/minmix.ml: Dmf Entry Tree
