lib/mixtree/sharing.mli: Tree
