lib/mixtree/rsm.mli: Dmf Tree
