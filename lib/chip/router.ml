(* Shortest-path routing on the electrode grid.

   The hot loops (cost matrices, the placer's annealing, the
   simulator) run thousands of BFS passes over the same grid, so the
   search works on reusable int-indexed scratch buffers (cell index
   [y*width+x]) instead of tuple-keyed hash tables: a visit-stamp
   array doubles as the visited set (no clearing between runs), a flat
   ring buffer replaces the [Queue], and the parent chain is a plain
   int array.  [Reference] keeps the original Hashtbl/Queue
   implementation as a differential oracle; both expand neighbours in
   the same order, so they return identical paths, not merely
   equal-cost ones. *)

module Scratch = struct
  type t = {
    mutable capacity : int;
    mutable state : int array; (* visit stamp per cell *)
    mutable parent : int array; (* predecessor cell index; -1 = root *)
    mutable queue : int array; (* FIFO ring: each cell enters at most once *)
    mutable stamp : int;
  }

  let create () =
    { capacity = 0; state = [||]; parent = [||]; queue = [||]; stamp = 0 }

  (* Grow to [n] cells if needed and open a fresh visit generation. *)
  let enter t n =
    if t.capacity < n then begin
      t.state <- Array.make n 0;
      t.parent <- Array.make n (-1);
      t.queue <- Array.make n 0;
      t.capacity <- n;
      t.stamp <- 0
    end;
    t.stamp <- t.stamp + 1;
    t.stamp
end

(* The flat BFS.  [allowed x y] is consulted at most once per cell;
   neighbour order (left, right, up, down) matches
   [Geometry.neighbours4] so paths are bit-identical to [Reference]. *)
let bfs_flat scratch ~width ~height ~allowed ~(start : Geometry.point)
    ~(goal : Geometry.point) =
  let in_grid x y = x >= 0 && x < width && y >= 0 && y < height in
  if
    not
      (in_grid start.Geometry.x start.Geometry.y
      && allowed start.Geometry.x start.Geometry.y
      && in_grid goal.Geometry.x goal.Geometry.y
      && allowed goal.Geometry.x goal.Geometry.y)
  then None
  else begin
    let stamp = Scratch.enter scratch (width * height) in
    let state = scratch.Scratch.state
    and parent = scratch.Scratch.parent
    and queue = scratch.Scratch.queue in
    let si = (start.Geometry.y * width) + start.Geometry.x in
    let gi = (goal.Geometry.y * width) + goal.Geometry.x in
    state.(si) <- stamp;
    parent.(si) <- -1;
    queue.(0) <- si;
    let head = ref 0 and tail = ref 1 in
    let found = ref false in
    while (not !found) && !head < !tail do
      let p = queue.(!head) in
      incr head;
      if p = gi then found := true
      else begin
        let px = p mod width and py = p / width in
        let visit x y =
          if in_grid x y then begin
            let q = (y * width) + x in
            if state.(q) <> stamp && allowed x y then begin
              state.(q) <- stamp;
              parent.(q) <- p;
              queue.(!tail) <- q;
              incr tail
            end
          end
        in
        visit (px - 1) py;
        visit (px + 1) py;
        visit px (py - 1);
        visit px (py + 1)
      end
    done;
    if not !found then None
    else begin
      let rec backtrack i acc =
        let p = { Geometry.x = i mod width; y = i / width } in
        if parent.(i) < 0 then p :: acc else backtrack parent.(i) (p :: acc)
      in
      Some (backtrack gi [])
    end
  end

let shared_scratch = function
  | Some s -> s
  | None -> Scratch.create ()

(* Membership mask over module indices for an [allow] id list. *)
let allow_mask layout allow =
  let mask = Array.make (max 1 (Layout.module_count layout)) false in
  List.iter
    (fun id ->
      match Layout.index_of_id layout id with
      | Some i -> mask.(i) <- true
      | None -> ())
    allow;
  mask

let route ?scratch ?(blocked = fun _ -> false) layout ~src ~dst =
  let scratch = shared_scratch scratch in
  let si =
    Option.value ~default:(-2) (Layout.index_of_id layout src.Chip_module.id)
  and di =
    Option.value ~default:(-2) (Layout.index_of_id layout dst.Chip_module.id)
  in
  let allowed x y =
    let p = { Geometry.x = x; y } in
    (not (blocked p))
    &&
    let mi = Layout.module_index_at layout p in
    mi = -1 || mi = si || mi = di
  in
  bfs_flat scratch ~width:(Layout.width layout) ~height:(Layout.height layout)
    ~allowed ~start:(Chip_module.anchor src) ~goal:(Chip_module.anchor dst)

let route_cells ?scratch ?(blocked = fun _ -> false) layout ~allow ~src ~dst =
  let scratch = shared_scratch scratch in
  let mask = allow_mask layout allow in
  let allowed x y =
    let p = { Geometry.x = x; y } in
    (not (blocked p))
    &&
    let mi = Layout.module_index_at layout p in
    mi = -1 || mask.(mi)
  in
  bfs_flat scratch ~width:(Layout.width layout) ~height:(Layout.height layout)
    ~allowed ~start:src ~goal:dst

let route_ids ?scratch ?blocked layout ~src ~dst =
  route ?scratch ?blocked layout ~src:(Layout.find_exn layout src)
    ~dst:(Layout.find_exn layout dst)

let path_cost = function
  | [] -> 0
  | path -> List.length path - 1

let distance ?scratch layout ~src ~dst =
  Option.map path_cost (route_ids ?scratch layout ~src ~dst)

(* Single-source flood fill: distances from [start] to every cell that
   is free or covered by a module in [allow].  One flood per source
   module replaces one BFS per (src, dst) pair in the cost matrix. *)
let flood ?scratch layout ~allow ~(start : Geometry.point) =
  let scratch = shared_scratch scratch in
  let width = Layout.width layout and height = Layout.height layout in
  let n = width * height in
  let dist = Array.make n (-1) in
  let mask = allow_mask layout allow in
  let allowed x y =
    let mi = Layout.module_index_at layout { Geometry.x = x; y } in
    mi = -1 || mask.(mi)
  in
  let in_grid x y = x >= 0 && x < width && y >= 0 && y < height in
  if
    in_grid start.Geometry.x start.Geometry.y
    && allowed start.Geometry.x start.Geometry.y
  then begin
    let stamp = Scratch.enter scratch n in
    let state = scratch.Scratch.state and queue = scratch.Scratch.queue in
    let si = (start.Geometry.y * width) + start.Geometry.x in
    state.(si) <- stamp;
    dist.(si) <- 0;
    queue.(0) <- si;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let p = queue.(!head) in
      incr head;
      let d = dist.(p) in
      let px = p mod width and py = p / width in
      let visit x y =
        if in_grid x y then begin
          let q = (y * width) + x in
          if state.(q) <> stamp && allowed x y then begin
            state.(q) <- stamp;
            dist.(q) <- d + 1;
            queue.(!tail) <- q;
            incr tail
          end
        end
      in
      visit (px - 1) py;
      visit (px + 1) py;
      visit px (py - 1);
      visit px (py + 1)
    done
  end;
  dist

(* The original implementation, kept verbatim as the differential
   reference (the Mdst.Naive convention): tuple-keyed Hashtbl parent
   map and a Queue, one fresh allocation of each per call. *)
module Reference = struct
  let bfs ~allowed ~start ~goal =
    if not (allowed start && allowed goal) then None
    else begin
      let key (p : Geometry.point) = (p.Geometry.x, p.Geometry.y) in
      let parent = Hashtbl.create 64 in
      let queue = Queue.create () in
      Hashtbl.add parent (key start) None;
      Queue.push start queue;
      let found = ref false in
      while (not !found) && not (Queue.is_empty queue) do
        let p = Queue.pop queue in
        if p = goal then found := true
        else
          List.iter
            (fun next ->
              if allowed next && not (Hashtbl.mem parent (key next)) then begin
                Hashtbl.add parent (key next) (Some p);
                Queue.push next queue
              end)
            (Geometry.neighbours4 p)
      done;
      if not !found then None
      else begin
        let rec backtrack p acc =
          match Hashtbl.find parent (key p) with
          | None -> p :: acc
          | Some prev -> backtrack prev (p :: acc)
        in
        Some (backtrack goal [])
      end
    end

  let route ?(blocked = fun _ -> false) layout ~src ~dst =
    let allowed p =
      Layout.in_bounds layout p
      && (not (blocked p))
      &&
      match Layout.module_at layout p with
      | None -> true
      | Some m ->
        m.Chip_module.id = src.Chip_module.id
        || m.Chip_module.id = dst.Chip_module.id
    in
    bfs ~allowed ~start:(Chip_module.anchor src) ~goal:(Chip_module.anchor dst)

  let route_cells ?(blocked = fun _ -> false) layout ~allow ~src ~dst =
    let allowed p =
      Layout.in_bounds layout p
      && (not (blocked p))
      &&
      match Layout.module_at layout p with
      | None -> true
      | Some m -> List.mem m.Chip_module.id allow
    in
    bfs ~allowed ~start:src ~goal:dst

  let route_ids ?blocked layout ~src ~dst =
    route ?blocked layout ~src:(Layout.find_exn layout src)
      ~dst:(Layout.find_exn layout dst)

  let distance layout ~src ~dst =
    Option.map path_cost (route_ids layout ~src ~dst)
end
