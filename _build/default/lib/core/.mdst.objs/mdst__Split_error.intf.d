lib/core/split_error.mli: Plan
