(** Shortest-path droplet routing on the electrode grid.

    Droplets move between module anchors over free electrodes.  The cells
    of every module other than the source and destination are obstacles;
    an optional [blocked] predicate adds dynamic obstacles (e.g. the
    segregation ring around currently parked droplets in the
    simulator).

    Every search runs on flat int-indexed arrays (cell [y*width+x])
    with visit stamps instead of hash tables; callers on a hot path
    pass an explicit {!Scratch.t} so consecutive searches reuse the
    same buffers.  {!Reference} retains the original Hashtbl/Queue
    implementation as a differential oracle — both expand neighbours
    in the same order and return identical paths. *)

module Scratch : sig
  type t
  (** Reusable BFS buffers.  Grown on demand to the largest grid seen;
      not safe to share across domains. *)

  val create : unit -> t
end

val route :
  ?scratch:Scratch.t ->
  ?blocked:(Geometry.point -> bool) ->
  Layout.t ->
  src:Chip_module.t ->
  dst:Chip_module.t ->
  Geometry.point list option
(** [route layout ~src ~dst] is a shortest path from the anchor of [src]
    to the anchor of [dst] (both endpoints included), or [None] when the
    destination is unreachable. *)

val route_ids :
  ?scratch:Scratch.t ->
  ?blocked:(Geometry.point -> bool) ->
  Layout.t ->
  src:string ->
  dst:string ->
  Geometry.point list option
(** As {!route} but looking the modules up by id.
    @raise Invalid_argument on unknown ids. *)

val route_cells :
  ?scratch:Scratch.t ->
  ?blocked:(Geometry.point -> bool) ->
  Layout.t ->
  allow:string list ->
  src:Geometry.point ->
  dst:Geometry.point ->
  Geometry.point list option
(** Cell-to-cell shortest path; cells covered by modules are obstacles
    unless the module id is listed in [allow].  Used by the simulator,
    whose droplets park at specific cells inside modules. *)

val path_cost : Geometry.point list -> int
(** Number of electrode actuations of a path: one per step, i.e.
    [length - 1]; a trivial path costs 0. *)

val distance :
  ?scratch:Scratch.t -> Layout.t -> src:string -> dst:string -> int option
(** Shortest-path cost between two modules on an otherwise empty chip. *)

val flood :
  ?scratch:Scratch.t ->
  Layout.t ->
  allow:string list ->
  start:Geometry.point ->
  int array
(** [flood layout ~allow ~start] is the array of BFS distances from
    [start] to every cell, indexed [y * width + x]; [-1] marks
    unreachable cells.  Passable cells are the free cells plus the
    cells of the modules named in [allow].  One flood per source module
    gives a whole cost-matrix row in a single pass. *)

(** The original per-call Hashtbl/Queue implementation, kept as the
    differential reference for the flat-array searches. *)
module Reference : sig
  val route :
    ?blocked:(Geometry.point -> bool) ->
    Layout.t ->
    src:Chip_module.t ->
    dst:Chip_module.t ->
    Geometry.point list option

  val route_ids :
    ?blocked:(Geometry.point -> bool) ->
    Layout.t ->
    src:string ->
    dst:string ->
    Geometry.point list option

  val route_cells :
    ?blocked:(Geometry.point -> bool) ->
    Layout.t ->
    allow:string list ->
    src:Geometry.point ->
    dst:Geometry.point ->
    Geometry.point list option

  val distance : Layout.t -> src:string -> dst:string -> int option
end
