(* Output: a human listing for terminals and a JSON document for CI. *)

let print_human ?(quiet = false) oc (r : Engine.result) =
  let unsup = Engine.unsuppressed r in
  let suppressed =
    List.filter (fun (f : Finding.t) -> f.suppressed <> None) r.findings
  in
  List.iter (fun f -> Printf.fprintf oc "%s\n" (Finding.to_human f)) unsup;
  if (not quiet) && suppressed <> [] then begin
    Printf.fprintf oc "\nsuppressed (%d):\n" (List.length suppressed);
    List.iter
      (fun f -> Printf.fprintf oc "  %s\n" (Finding.to_human f))
      suppressed
  end;
  List.iter
    (fun e ->
      Printf.fprintf oc "warning: could not read %s: %s\n" e.Loader.path
        e.Loader.reason)
    r.errors;
  Printf.fprintf oc
    "%d finding%s (%d suppressed), %d unit%s analyzed, lock graph: %d \
     node%s, %d cycle%s\n"
    (List.length r.findings)
    (if List.length r.findings = 1 then "" else "s")
    (List.length suppressed)
    (List.length r.units)
    (if List.length r.units = 1 then "" else "s")
    (Lockgraph.SS.cardinal (Lockgraph.nodes r.graph))
    (if Lockgraph.SS.cardinal (Lockgraph.nodes r.graph) = 1 then "" else "s")
    (List.length r.cycles)
    (if List.length r.cycles = 1 then "" else "s")

let print_json oc (r : Engine.result) =
  let unsup = Engine.unsuppressed r in
  Printf.fprintf oc "{\n  \"findings\": [\n";
  let n = List.length r.findings in
  List.iteri
    (fun i f ->
      Printf.fprintf oc "    %s%s\n" (Finding.to_json f)
        (if i = n - 1 then "" else ","))
    r.findings;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"cycles\": [%s],\n"
    (String.concat ", "
       (List.map
          (fun scc ->
            Printf.sprintf "[%s]"
              (String.concat ", "
                 (List.map
                    (fun l -> Printf.sprintf "\"%s\"" (Finding.json_escape l))
                    scc)))
          r.cycles));
  Printf.fprintf oc
    "  \"summary\": {\"total\": %d, \"suppressed\": %d, \"unsuppressed\": \
     %d, \"units\": %d, \"errors\": %d}\n"
    (List.length r.findings)
    (List.length r.findings - List.length unsup)
    (List.length unsup) (List.length r.units)
    (List.length r.errors);
  Printf.fprintf oc "}\n"
