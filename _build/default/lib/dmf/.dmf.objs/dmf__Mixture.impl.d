lib/dmf/mixture.ml: Array Binary Fluid Format Hashtbl Int Map Printf Ratio Set Stdlib String
