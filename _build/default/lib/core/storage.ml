type residency = {
  producer : int;
  port : int;
  consumer : int;
  from_cycle : int;
  to_cycle : int;
}

let residencies ~plan s =
  let spans = ref [] in
  List.iter
    (fun node ->
      let id = node.Plan.id in
      let tn = Schedule.cycle s id in
      List.iter
        (fun port ->
          match Plan.consumer plan ~node:id ~port with
          | None -> ()
          | Some c ->
            let tp = Schedule.cycle s c in
            if tp > tn + 1 then
              spans :=
                {
                  producer = id;
                  port;
                  consumer = c;
                  from_cycle = tn + 1;
                  to_cycle = tp - 1;
                }
                :: !spans)
        [ 0; 1 ])
    (Plan.nodes plan);
  List.rev !spans

let profile ~plan s =
  let tc = Schedule.completion_time s in
  let occupancy = Array.make (max tc 0) 0 in
  List.iter
    (fun r ->
      for t = r.from_cycle to r.to_cycle do
        occupancy.(t - 1) <- occupancy.(t - 1) + 1
      done)
    (residencies ~plan s);
  (* Reserve droplets sit in storage from the start until they are
     consumed — or for the whole run if nobody takes them. *)
  Array.iteri
    (fun i _ ->
      let until =
        let consumer = ref None in
        List.iter
          (fun node ->
            List.iter
              (fun src ->
                match src with
                | Plan.Reserve j when j = i ->
                  consumer := Some (Schedule.cycle s node.Plan.id)
                | Plan.Reserve _ | Plan.Input _ | Plan.Output _ -> ())
              [ node.Plan.left; node.Plan.right ])
          (Plan.nodes plan);
        match !consumer with Some t -> t - 1 | None -> tc
      in
      for t = 1 to until do
        occupancy.(t - 1) <- occupancy.(t - 1) + 1
      done)
    (Plan.reserves plan);
  occupancy

let units ~plan s = Array.fold_left max 0 (profile ~plan s)
