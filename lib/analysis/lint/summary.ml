(* Shared shapes: the per-function event trees the extractor produces
   from a .cmt typed tree, and the per-unit information the global
   passes consume.  Locks are named by *class*, not by allocation:
   a record field's class is "<type path>.<field>" (every Queue.t
   shares "Service.Queue.t.lock"), a local mutex's class is
   "<unit>.<function>.<var>".  That is the right granularity for
   lock-order analysis of this codebase: discipline is per-field, not
   per-instance. *)

type loc = { file : string; line : int; col : int }

let loc_of_location (l : Location.t) =
  {
    file = l.loc_start.Lexing.pos_fname;
    line = l.loc_start.Lexing.pos_lnum;
    col = l.loc_start.Lexing.pos_cnum - l.loc_start.Lexing.pos_bol;
  }

let string_of_loc l = Printf.sprintf "%s:%d:%d" l.file l.line l.col

type callee =
  | Global of string
      (* resolved, normalized path: "Mutex.lock", "Service.Queue.submit" *)
  | Callback of { name : string; param_index : int option }
      (* a function value that is not a statically known function:
         a parameter (param_index points into the enclosing top-level
         function's parameter list), a pattern-bound continuation, a
         projected field, ... *)

type event =
  | Acquire of { lock : string; loc : loc }
  | Release of { lock : string }
  | Wait of { cond : string; mutex : string; loc : loc }
  | Call of { callee : callee; loc : loc; guarded : bool }
      (* [guarded] : syntactically inside an EINTR handler or an
         Analysis.Runtime.retry_eintr thunk *)
  | Ref of { name : string; loc : loc }
      (* a statically known function escaping as a value (argument,
         list element, partial application): assumed to run at this
         point in program order for the fork-after-domain rule *)
  | ClosureArg of {
      callee : string option;  (* Global callee it was passed to *)
      index : int;             (* argument position *)
      fresh : bool;            (* runs on a new thread/domain: held set
                                  does not propagate in *)
      body : event list;
    }
  | Branch of event list list  (* match / if / try alternatives *)

type func = {
  qname : string;  (* "Service.Queue.submit"; "<Unit>.<init>" for
                      top-level effects in structure order *)
  floc : loc;
  events : event list;
}

type suppression = {
  s_file : string;
  s_line_start : int;
  s_line_end : int;
  s_rule : string;      (* rule id or name, as written *)
  s_rationale : string;
  s_loc : loc;          (* of the attribute, for diagnostics *)
}

type unit_info = {
  modname : string;          (* normalized: "Service.Queue" *)
  funcs : func list;
  suppressions : suppression list;
  bad_suppressions : loc list;
      (* [@dmflint.allow] attributes whose payload is not
         "<rule>: <rationale>" *)
  signal_roots : string list;
      (* functions installed via Sys.Signal_handle *)
  installs_signal_handler : bool;
}
