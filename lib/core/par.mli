(** Chunked parallel map over stdlib domains.

    Corpus sweeps (Tables 2–3, Figures 6–7) evaluate thousands of
    independent ratios; [map] fans them out over OCaml 5 domains in
    contiguous chunks and reassembles the results in input order, so the
    output is identical at any domain count — including [1], which (like
    any nested call from inside a parallel region) degrades to a plain
    serial map.

    The domain count defaults to the [MDST_DOMAINS] environment variable
    when set, and to [Domain.recommended_domain_count ()] (the physical
    core count) otherwise. *)

val default_domains : unit -> int
(** [MDST_DOMAINS] if set, else [Domain.recommended_domain_count ()].
    @raise Invalid_argument if [MDST_DOMAINS] is set but not a positive
    integer. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] is [List.map f xs] computed on [domains] domains
    (default {!default_domains}).  Result order always matches input
    order.  [f] must be safe to run concurrently with itself; if any
    application raises, all domains are joined and the first exception in
    input order is re-raised. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** As {!map}, on arrays. *)

val iter : ?domains:int -> ('a -> unit) -> 'a list -> unit
(** [iter f xs] runs [f] on every element, in parallel, ignoring
    results. *)

val serialized : (unit -> 'a) -> 'a
(** [serialized f] runs [f] with this domain marked as being inside a
    parallel region, so any nested {!map} degrades to a plain serial
    map — the discipline the chunk workers already follow.  Long-lived
    worker pools (the preparation server's domains) wrap their job
    handlers in it: the pool, not the job, owns the parallelism. *)
