(* Clean counterpart of bad_fork: no domains anywhere, and the fork
   site carries the runtime assertion dmflint demands. *)

let run () =
  Analysis.Runtime.assert_no_domains_spawned ();
  match Unix.fork () with
  | 0 -> exit 0
  | pid -> ignore (Unix.waitpid [] pid)
