(** Demand-driven production planning.

    Couples the droplet-streaming engine to a downstream demand profile:
    the total demand is produced in storage-feasible passes (as in
    Section 6), the passes are placed on the time axis as late as
    possible without missing deadlines (reducing how long finished
    droplets sit in the output buffer), and every emitted droplet is
    matched to a demand deadline.

    Matching the [i]-th emission to the [i]-th deadline (both ascending)
    minimises the maximum lateness, by the classic exchange argument. *)

type delivery = {
  deadline : int;  (** When the droplet is needed. *)
  emission : int;  (** Absolute cycle at which it is emitted. *)
  lateness : int;  (** [max 0 (emission - deadline)]. *)
  earliness : int;  (** [max 0 (deadline - emission)]: buffer residency. *)
}

type t = {
  streaming : Mdst.Streaming.t;  (** The underlying pass structure. *)
  pass_starts : int list;  (** Absolute start cycle of each pass. *)
  deliveries : delivery list;  (** One per demanded droplet, by deadline. *)
  max_lateness : int;  (** 0 iff every deadline is met. *)
  total_earliness : int;  (** Sum of buffer-residency cycles. *)
  makespan : int;  (** Cycle at which the last pass completes. *)
  surplus : int;  (** Droplets produced beyond the demand (rounding). *)
}

val plan :
  algorithm:Mixtree.Algorithm.t ->
  ratio:Dmf.Ratio.t ->
  mixers:int ->
  storage_limit:int ->
  scheduler:Mdst.Scheduler.t ->
  requests:Demand.request list ->
  t
(** [plan] builds, schedules and places the passes for the profile.
    @raise Invalid_argument on an empty profile or invalid resources. *)

val feasible : t -> bool
(** [max_lateness = 0]. *)

val pp : Format.formatter -> t -> unit
