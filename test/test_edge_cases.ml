(* Cross-cutting edge cases: minimal ratios, extreme resource counts,
   large accuracy levels, degenerate demands and layout corners. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool

let r = Dmf.Ratio.of_string

(* ------------------------------------------------------------------ *)
(* Minimal and extreme mixtures                                        *)

let test_smallest_mixture () =
  (* 1:1 — one mix, depth 1. *)
  let ratio = r "1:1" in
  let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:2 in
  check int "one node" 1 (Mdst.Plan.tms plan);
  check int "no waste" 0 (Mdst.Plan.waste plan);
  let s = Mdst.Mms.schedule ~plan ~mixers:1 in
  check int "one cycle" 1 (Mdst.Schedule.completion_time s);
  check int "no storage" 0 (Mdst.Storage.units ~plan s)

let test_deep_skew () =
  (* 1 : 2^d - 1 produces maximal depth; everything must still hold. *)
  List.iter
    (fun d ->
      let parts = [| 1; Dmf.Binary.pow2 d - 1 |] in
      let ratio = Dmf.Ratio.make parts in
      let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:4 in
      check bool (Printf.sprintf "valid at d=%d" d) true
        (Result.is_ok (Mdst.Plan.validate plan));
      let s = Mdst.Srs.schedule ~plan ~mixers:2 in
      check bool "schedule valid" true
        (Result.is_ok (Mdst.Schedule.validate ~plan s)))
    [ 2; 6; 10 ]

let test_wide_mixture () =
  (* 16 fluids of one part each on the scale 16: a perfect balanced tree. *)
  let ratio = Dmf.Ratio.make (Array.make 16 1) in
  let tree = Mixtree.Minmix.build ratio in
  check int "depth 4" 4 (Mixtree.Tree.depth tree);
  check int "15 mixes" 15 (Mixtree.Tree.internal_count tree);
  let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:16 in
  check int "no waste at D = 2^d" 0 (Mdst.Plan.waste plan);
  check (Alcotest.array int) "inputs = ratio" (Dmf.Ratio.parts ratio)
    (Mdst.Plan.input_vector plan)

let test_large_accuracy () =
  (* d = 10: a 1024-scale ratio still round-trips exactly. *)
  let ratio = r "513:511" in
  let tree = Mixtree.Minmix.build ratio in
  check bool "valid" true (Result.is_ok (Mixtree.Tree.validate ~ratio tree));
  check int "depth 10" 10 (Mixtree.Tree.depth tree)

(* ------------------------------------------------------------------ *)
(* Resource extremes                                                   *)

let test_many_mixers_saturate () =
  let ratio = Generators.pcr16 in
  let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:20 in
  let tc_100 =
    Mdst.Schedule.completion_time (Mdst.Mms.schedule ~plan ~mixers:100)
  in
  let tc_27 =
    Mdst.Schedule.completion_time (Mdst.Mms.schedule ~plan ~mixers:27)
  in
  check int "beyond Tms mixers change nothing" tc_27 tc_100

let test_streaming_huge_budget_single_pass () =
  let ratio = Generators.pcr16 in
  let run =
    Mdst.Streaming.run ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:32
      ~mixers:3 ~storage_limit:1000 ~scheduler:Mdst.Scheduler.srs ()
  in
  check int "single pass" 1 (Mdst.Streaming.n_passes run)

let test_demand_one () =
  (* Odd minimal demand still emits a pair. *)
  let ratio = r "3:5" in
  let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:1 in
  check int "one tree" 1 (Mdst.Plan.trees plan);
  check int "two targets" 2 (Mdst.Plan.targets plan)

let test_huge_demand () =
  (* D = 8 * 2^d: still zero waste and exact multiples of the ratio. *)
  let ratio = r "3:5" in
  let plan =
    Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:64
  in
  check int "no waste" 0 (Mdst.Plan.waste plan);
  check (Alcotest.array int) "inputs = 8x ratio" [| 24; 40 |]
    (Mdst.Plan.input_vector plan)

(* ------------------------------------------------------------------ *)
(* Layout corners                                                      *)

let test_single_fluid_layout_rejected () =
  check bool "zero fluids rejected" true
    (try ignore (Chip.Layout.default ~n_fluids:0 ()); false
     with Invalid_argument _ -> true)

let test_minimal_layout () =
  let l = Chip.Layout.default ~mixers:1 ~storage_units:1 ~wastes:1 ~n_fluids:2 () in
  check int "one mixer" 1 (List.length (Chip.Layout.mixers l));
  check int "one waste" 1 (List.length (Chip.Layout.wastes l));
  (* Everything reachable from everything. *)
  let matrix = Chip.Cost_matrix.build l in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check bool
            (Printf.sprintf "%s -> %s reachable" a b)
            true
            (Chip.Cost_matrix.reachable matrix ~src:a ~dst:b))
        (Chip.Cost_matrix.labels matrix))
    (Chip.Cost_matrix.labels matrix)

let test_full_pipeline_on_minimal_chip () =
  let ratio = r "1:3" in
  let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:4 in
  let schedule = Mdst.Mms.schedule ~plan ~mixers:1 in
  let q = Mdst.Storage.units ~plan schedule in
  let layout =
    Chip.Layout.default ~mixers:1 ~storage_units:(max 1 q) ~n_fluids:2 ()
  in
  match Sim.Executor.run ~layout ~plan ~schedule with
  | Error e -> Alcotest.fail e
  | Ok (_, stats) ->
    check bool "verified" true (Result.is_ok (Sim.Executor.check ~plan stats))

(* ------------------------------------------------------------------ *)
(* Engine-level crossovers                                             *)

let test_streaming_wins_exactly_when_demand_exceeds_two () =
  let ratio = Generators.pcr16 in
  List.iter
    (fun demand ->
      let streamed =
        Mdst.Compare.evaluate ~ratio ~demand
          (Mdst.Compare.Streamed (Mixtree.Algorithm.MM, Mdst.Scheduler.mms))
      in
      let repeated =
        Mdst.Compare.evaluate ~ratio ~demand
          (Mdst.Compare.Repeated Mixtree.Algorithm.MM)
      in
      if demand <= 2 then
        check int
          (Printf.sprintf "equal inputs at D=%d" demand)
          repeated.Mdst.Metrics.input_total streamed.Mdst.Metrics.input_total
      else
        check bool
          (Printf.sprintf "streaming cheaper at D=%d" demand)
          true
          (streamed.Mdst.Metrics.input_total < repeated.Mdst.Metrics.input_total))
    [ 1; 2; 3; 4; 8; 16 ]

let test_gantt_renders_every_scheduler () =
  let ratio = r "25:5:5:5:5:13:13:25:1:159" in
  let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:6 in
  List.iter
    (fun schedule ->
      let chart = Mdst.Gantt.render ~plan schedule in
      check bool "chart non-empty" true (String.length chart > 100))
    [ Mdst.Mms.schedule ~plan ~mixers:2; Mdst.Srs.schedule ~plan ~mixers:2;
      Mdst.Oms.schedule ~plan ~mixers:2 ]

let prop_metrics_monotone_in_demand =
  Generators.qtest ~count:60 "inputs weakly increase with demand"
    Generators.ratio_gen Generators.ratio_print (fun ratio ->
      let inputs demand =
        Mdst.Plan.input_total
          (Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand)
      in
      let rec check_monotone previous = function
        | [] -> true
        | demand :: rest ->
          let i = inputs demand in
          i >= previous && check_monotone i rest
      in
      check_monotone 0 [ 2; 4; 8; 12; 16 ])

let () =
  Alcotest.run "edge-cases"
    [
      ( "mixtures",
        [
          Alcotest.test_case "smallest mixture" `Quick test_smallest_mixture;
          Alcotest.test_case "deep skew" `Quick test_deep_skew;
          Alcotest.test_case "wide mixture" `Quick test_wide_mixture;
          Alcotest.test_case "large accuracy" `Quick test_large_accuracy;
        ] );
      ( "resources",
        [
          Alcotest.test_case "mixers saturate" `Quick test_many_mixers_saturate;
          Alcotest.test_case "huge storage budget" `Quick
            test_streaming_huge_budget_single_pass;
          Alcotest.test_case "demand one" `Quick test_demand_one;
          Alcotest.test_case "huge demand" `Quick test_huge_demand;
        ] );
      ( "layout",
        [
          Alcotest.test_case "zero fluids rejected" `Quick
            test_single_fluid_layout_rejected;
          Alcotest.test_case "minimal layout" `Quick test_minimal_layout;
          Alcotest.test_case "full pipeline on minimal chip" `Quick
            test_full_pipeline_on_minimal_chip;
        ] );
      ( "engine",
        [
          Alcotest.test_case "streaming crossover at D=2" `Quick
            test_streaming_wins_exactly_when_demand_exceeds_two;
          Alcotest.test_case "gantt for every scheduler" `Quick
            test_gantt_renders_every_scheduler;
          prop_metrics_monotone_in_demand;
        ] );
    ]
