(* Demand-driven feeding of a downstream assay.

   The paper's opening motivation: a PCR thermocycler consumes
   master-mix droplets batch by batch, so the chip must keep a stream of
   target droplets coming — neither late (the assay stalls) nor too
   early (finished droplets hog storage).  The assay planner couples the
   streaming engine to a consumption profile: it picks the pass size and
   places every pass just-in-time.

   Run with: dune exec examples/assay_feed.exe *)

let ratio = Bioproto.Protocols.pcr ~d:4

let run title requests =
  print_string (Mdst.Report.section title);
  let plan =
    Assay.Planner.plan ~algorithm:Mixtree.Algorithm.MM ~ratio ~mixers:3
      ~storage_limit:5 ~scheduler:Mdst.Scheduler.srs ~requests
  in
  Format.printf "%a@." Assay.Planner.pp plan;
  Format.printf "pass sizes: %s, starts: %s@."
    (String.concat ","
       (List.map
          (fun (p : Mdst.Streaming.pass) -> string_of_int p.Mdst.Streaming.demand)
          plan.Assay.Planner.streaming.Mdst.Streaming.passes))
    (String.concat "," (List.map string_of_int plan.Assay.Planner.pass_starts));
  let rows =
    List.map
      (fun d ->
        [
          string_of_int d.Assay.Planner.deadline;
          string_of_int d.Assay.Planner.emission;
          string_of_int d.Assay.Planner.lateness;
          string_of_int d.Assay.Planner.earliness;
        ])
      (List.filteri (fun i _ -> i mod 4 = 0) plan.Assay.Planner.deliveries)
  in
  print_string
    (Mdst.Report.table
       ~header:[ "deadline"; "emission"; "late"; "early" ]
       ~rows)

let () =
  (* A comfortable thermocycler: four droplets every 15 cycles. *)
  run "Thermocycler, 4 droplets / 15 cycles, first batch at cycle 20"
    (Assay.Demand.periodic ~start:20 ~interval:15 ~count:4 ~batches:8);
  (* A hungry consumer: the chip cannot keep up and the planner reports
     exactly how late each batch will be. *)
  run "Overloaded consumer, 4 droplets / 2 cycles from cycle 2"
    (Assay.Demand.periodic ~start:2 ~interval:2 ~count:4 ~batches:8);
  (* An irregular protocol: confirmation tests at a few fixed times. *)
  run "Irregular confirmatory screening"
    [
      Assay.Demand.request ~deadline:12 ~count:2;
      Assay.Demand.request ~deadline:40 ~count:6;
      Assay.Demand.request ~deadline:45 ~count:2;
      Assay.Demand.request ~deadline:90 ~count:8;
    ]
