let rec build_entries ~tie entries k =
  match entries with
  | [] -> invalid_arg "Rsm: empty entry multiset"
  | [ { Entry.fluid; weight } ] ->
    assert (weight = Dmf.Binary.pow2 k);
    Tree.Leaf fluid
  | _ :: _ :: _ ->
    let half = Dmf.Binary.pow2 (k - 1) in
    let left, right = Entry.partition ~tie ~half entries in
    Tree.Mix (build_entries ~tie left (k - 1), build_entries ~tie right (k - 1))

let build_with_carrier ~carrier r =
  (* Among equal weights, carrier entries are placed first, concentrating
     the carrier on the first side of every split. *)
  let tie a b =
    let rank e = if Dmf.Fluid.equal e.Entry.fluid carrier then 0 else 1 in
    match Int.compare (rank a) (rank b) with
    | 0 -> Dmf.Fluid.compare a.Entry.fluid b.Entry.fluid
    | c -> c
  in
  build_entries ~tie (Entry.of_ratio r) (Dmf.Ratio.accuracy r)

let build r =
  let parts = Dmf.Ratio.parts r in
  let carrier = ref 0 in
  Array.iteri (fun i a -> if a > parts.(!carrier) then carrier := i) parts;
  build_with_carrier ~carrier:(Dmf.Fluid.make !carrier) r
