(* Differential properties for the chip-layer hot paths: every
   flat-array implementation (grid BFS, single-source cost matrices,
   delta-evaluated placement, stamped parallel routing) is pinned
   against the reference implementation it replaced, on randomized
   layouts.  The references are retained precisely for these oracles:
   equal outputs here are what licenses the fast paths everywhere
   else. *)

open QCheck2

let layout_params_gen =
  Gen.(
    int_range 1 4 >>= fun mixers ->
    int_range 1 8 >>= fun storage ->
    int_range 1 2 >>= fun wastes ->
    int_range 1 8 >|= fun fluids -> (mixers, storage, wastes, fluids))

let layout_of (mixers, storage_units, wastes, n_fluids) =
  Chip.Layout.default ~mixers ~storage_units ~wastes ~n_fluids ()

let case_gen = Gen.pair layout_params_gen (Gen.int_range 0 0x3FFFFFFF)

let case_print ((m, s, w, f), seed) =
  Printf.sprintf "mixers=%d storage=%d wastes=%d fluids=%d seed=%d" m s w f
    seed

(* A small deterministic PRNG so a failing case is reproducible from the
   printed seed alone. *)
let lcg seed =
  let state = ref (seed land 0x3FFFFFFF) in
  fun bound ->
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    if bound <= 0 then 0 else !state mod bound

(* A pure pseudo-random obstacle field (must be a function of the cell
   only: both router implementations query it independently). *)
let blocked_of seed (p : Chip.Geometry.point) =
  Hashtbl.hash (seed, p.Chip.Geometry.x, p.Chip.Geometry.y) mod 7 = 0

let module_ids layout =
  List.map (fun m -> m.Chip.Chip_module.id) (Chip.Layout.modules layout)

(* ------------------------------------------------------------------ *)
(* Router: flat grid BFS vs Reference                                  *)

let prop_route_ids (params, seed) =
  let layout = layout_of params in
  let ids = module_ids layout in
  let blocked = blocked_of seed in
  let scratch = Chip.Router.Scratch.create () in
  List.for_all
    (fun src ->
      List.for_all
        (fun dst ->
          Chip.Router.route_ids ~scratch ~blocked layout ~src ~dst
          = Chip.Router.Reference.route_ids ~blocked layout ~src ~dst)
        ids)
    ids

let prop_route_cells (params, seed) =
  let layout = layout_of params in
  let modules = Array.of_list (Chip.Layout.modules layout) in
  let rand = lcg seed in
  let pick_module () = modules.(rand (Array.length modules)) in
  let pick_cell m =
    let cells = Chip.Geometry.rect_cells m.Chip.Chip_module.rect in
    List.nth cells (rand (List.length cells))
  in
  let a = pick_module () and b = pick_module () in
  let src = pick_cell a and dst = pick_cell b in
  let allow = [ a.Chip.Chip_module.id; b.Chip.Chip_module.id ] in
  let blocked = blocked_of seed in
  Chip.Router.route_cells ~blocked layout ~allow ~src ~dst
  = Chip.Router.Reference.route_cells ~blocked layout ~allow ~src ~dst

(* ------------------------------------------------------------------ *)
(* Cost matrix: single-source floods vs pairwise BFS, and delta update *)

let matrices_equal a b =
  let la = Chip.Cost_matrix.labels a and lb = Chip.Cost_matrix.labels b in
  la = lb
  && List.for_all
       (fun src ->
         List.for_all
           (fun dst ->
             let ra = Chip.Cost_matrix.reachable a ~src ~dst in
             ra = Chip.Cost_matrix.reachable b ~src ~dst
             && ((not ra)
                || Chip.Cost_matrix.cost a ~src ~dst
                   = Chip.Cost_matrix.cost b ~src ~dst))
           la)
       la

let prop_build_matches_pairwise (params, _seed) =
  let layout = layout_of params in
  matrices_equal
    (Chip.Cost_matrix.build layout)
    (Chip.Cost_matrix.build_pairwise layout)

(* Same-kind, same-size module pairs — the swaps the placer draws. *)
let swap_pairs layout =
  let same_size a b =
    a.Chip.Chip_module.rect.Chip.Geometry.w
    = b.Chip.Chip_module.rect.Chip.Geometry.w
    && a.Chip.Chip_module.rect.Chip.Geometry.h
       = b.Chip.Chip_module.rect.Chip.Geometry.h
  in
  let group modules =
    List.concat_map
      (fun m ->
        List.filter_map
          (fun m' ->
            if m.Chip.Chip_module.id < m'.Chip.Chip_module.id && same_size m m'
            then Some (m.Chip.Chip_module.id, m'.Chip.Chip_module.id)
            else None)
          modules)
      modules
  in
  group (Chip.Layout.reservoirs layout)
  @ group (Chip.Layout.mixers layout)
  @ group (Chip.Layout.storage_units layout)

let apply_swap layout (a, b) =
  let ma = Chip.Layout.find_exn layout a
  and mb = Chip.Layout.find_exn layout b in
  let replace m =
    if m.Chip.Chip_module.id = a then
      { m with Chip.Chip_module.rect = mb.Chip.Chip_module.rect }
    else if m.Chip.Chip_module.id = b then
      { m with Chip.Chip_module.rect = ma.Chip.Chip_module.rect }
    else m
  in
  Chip.Layout.make
    ~width:(Chip.Layout.width layout)
    ~height:(Chip.Layout.height layout)
    ~modules:(List.map replace (Chip.Layout.modules layout))

let prop_update_chain (params, seed) =
  let layout = layout_of params in
  let pairs = Array.of_list (swap_pairs layout) in
  if Array.length pairs = 0 then true
  else begin
    let rand = lcg seed in
    let current = ref layout in
    let matrix = ref (Chip.Cost_matrix.build layout) in
    for _ = 1 to 1 + rand 5 do
      let ((a, b) as pair) = pairs.(rand (Array.length pairs)) in
      let candidate = apply_swap !current pair in
      matrix := Chip.Cost_matrix.update !matrix candidate ~changed:[ a; b ];
      current := candidate
    done;
    matrices_equal !matrix (Chip.Cost_matrix.build_pairwise !current)
  end

(* ------------------------------------------------------------------ *)
(* Placer: delta-evaluated annealing vs full-rebuild Reference         *)

let flows_of_seed layout seed =
  let ids = Array.of_list (module_ids layout) in
  let rand = lcg (seed lxor 0x2A2A2A) in
  List.init
    (1 + rand 6)
    (fun _ ->
      ((ids.(rand (Array.length ids)), ids.(rand (Array.length ids))),
       1 + rand 5))

let layouts_equal a b =
  let profile l =
    List.map
      (fun m -> (m.Chip.Chip_module.id, m.Chip.Chip_module.rect))
      (Chip.Layout.modules l)
  in
  profile a = profile b

let prop_placer_matches_reference (params, seed) =
  let layout = layout_of params in
  let flows = flows_of_seed layout seed in
  let anneal_seed = seed land 0xFFFF in
  let fast, fast_cost =
    Chip.Placer.optimize ~iterations:60 ~seed:anneal_seed layout ~flows
  in
  let slow, slow_cost =
    Chip.Placer.Reference.optimize ~iterations:60 ~seed:anneal_seed layout
      ~flows
  in
  fast_cost = slow_cost && layouts_equal fast slow

let prop_placer_batch_deterministic (params, seed) =
  let layout = layout_of params in
  let flows = flows_of_seed layout seed in
  let anneal_seed = seed land 0xFFFF in
  let run () =
    Chip.Placer.optimize ~iterations:60 ~seed:anneal_seed ~batch:3 layout
      ~flows
  in
  let a, a_cost = run () and b, b_cost = run () in
  a_cost = b_cost && layouts_equal a b

(* ------------------------------------------------------------------ *)
(* Parallel router: stamped flat planner vs Reference                  *)

let prop_route_batch_matches_reference (params, seed) =
  let layout = layout_of params in
  let modules = Array.of_list (Chip.Layout.modules layout) in
  let rand = lcg seed in
  (* A deterministic shuffle, then consecutive pairs: distinct source
     and destination modules so no two droplets share a start cell. *)
  for i = Array.length modules - 1 downto 1 do
    let j = rand (i + 1) in
    let tmp = modules.(i) in
    modules.(i) <- modules.(j);
    modules.(j) <- tmp
  done;
  let batch = min (1 + rand 3) (Array.length modules / 2) in
  let anchor m = List.hd (Chip.Geometry.rect_cells m.Chip.Chip_module.rect) in
  let requests =
    List.init batch (fun i ->
        let src = modules.(2 * i) and dst = modules.((2 * i) + 1) in
        {
          Chip.Parallel_router.id = i;
          src = anchor src;
          dst = anchor dst;
          allow = [ src.Chip.Chip_module.id; dst.Chip.Chip_module.id ];
        })
  in
  Chip.Parallel_router.route_batch layout requests
  = Chip.Parallel_router.Reference.route_batch layout requests

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "chip-diff"
    [
      ( "router",
        [
          Generators.qtest ~count:20 "route_ids = Reference (all pairs)"
            case_gen case_print prop_route_ids;
          Generators.qtest ~count:100 "route_cells = Reference" case_gen
            case_print prop_route_cells;
        ] );
      ( "cost-matrix",
        [
          Generators.qtest ~count:40 "build = build_pairwise" case_gen
            case_print prop_build_matches_pairwise;
          Generators.qtest ~count:40 "update chain = fresh pairwise build"
            case_gen case_print prop_update_chain;
        ] );
      ( "placer",
        [
          Generators.qtest ~count:15 "delta annealing = Reference trajectory"
            case_gen case_print prop_placer_matches_reference;
          Generators.qtest ~count:10 "batched annealing is deterministic"
            case_gen case_print prop_placer_batch_deterministic;
        ] );
      ( "parallel-router",
        [
          Generators.qtest ~count:40 "route_batch = Reference" case_gen
            case_print prop_route_batch_matches_reference;
        ] );
    ]
