(* The may-hold-while-acquiring graph: an edge a -> b means some
   execution path acquires b while holding a.  A cycle is a potential
   deadlock; the witness on each edge is the acquisition site that
   created it. *)

module SS = Set.Make (String)

type t = { edges : (string * string, Summary.loc) Hashtbl.t }

let create () = { edges = Hashtbl.create 64 }

let add g a b loc =
  if a <> b && not (Hashtbl.mem g.edges (a, b)) then
    Hashtbl.replace g.edges (a, b) loc

let nodes g =
  Hashtbl.fold (fun (a, b) _ acc -> SS.add a (SS.add b acc)) g.edges SS.empty

let successors g n =
  Hashtbl.fold
    (fun (a, b) _ acc -> if a = n then b :: acc else acc)
    g.edges []
  |> List.sort String.compare

(* Tarjan; SCCs with more than one node are deadlock-capable. *)
let cycles g =
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if not (Hashtbl.mem index w) then begin
          strongconnect w;
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
        end
        else if Hashtbl.mem on_stack w then
          Hashtbl.replace lowlink v
            (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (successors g v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack w;
          if w = v then w :: acc else pop (w :: acc)
      in
      let scc = pop [] in
      if List.length scc > 1 then sccs := List.sort String.compare scc :: !sccs
    end
  in
  SS.iter (fun v -> if not (Hashtbl.mem index v) then strongconnect v) (nodes g);
  List.rev !sccs

(* A representative witness location for a cycle: the first edge inside
   the SCC, in deterministic order. *)
let cycle_witness g scc =
  let in_scc n = List.mem n scc in
  let best = ref None in
  Hashtbl.iter
    (fun (a, b) loc ->
      if in_scc a && in_scc b then
        match !best with
        | Some (a', b', _) when (a', b') <= (a, b) -> ()
        | _ -> best := Some (a, b, loc))
    g.edges;
  !best

let to_dot g =
  let b = Buffer.create 1024 in
  Buffer.add_string b "digraph lock_order {\n";
  Buffer.add_string b "  rankdir=LR;\n  node [shape=box, fontname=\"monospace\"];\n";
  let cyc = cycles g in
  let in_cycle n = List.exists (fun scc -> List.mem n scc) cyc in
  SS.iter
    (fun n ->
      Buffer.add_string b
        (Printf.sprintf "  \"%s\"%s;\n" n
           (if in_cycle n then " [color=red]" else "")))
    (nodes g);
  let edges =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) g.edges []
    |> List.sort compare
  in
  List.iter
    (fun ((a, bn), loc) ->
      let red =
        List.exists (fun scc -> List.mem a scc && List.mem bn scc) cyc
      in
      Buffer.add_string b
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s:%d\"%s];\n" a bn
           (Filename.basename loc.Summary.file)
           loc.Summary.line
           (if red then ", color=red" else "")))
    edges;
  Buffer.add_string b "}\n";
  Buffer.contents b
