lib/mixtree/dilution.ml: Dmf Minmix Tree
