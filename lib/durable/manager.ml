type config = {
  dir : string;
  fsync : Wal.fsync_policy;
  snapshot_every : int;
  cache_capacity : int;
}

type t = {
  config : config;
  lock : Mutex.t;
  wal : Wal.t;
  mirror : State.t;
  recovery : Replay.stats;
  recovered_cache : Service.Request.spec list;
  recovered_pending : Service.Request.spec list;
  mutable last_snapshot_seq : int;
  mutable since_snapshot : int;
  mutable snapshots_written : int;
  mutable segments_compacted : int;
  mutable snapshots_compacted : int;
  mutable prime_ms : float;
  mutable primed_plans : int;
  mutable primed_pending : int;
  mutable closed : bool;
}

let start config =
  let state, recovery =
    Replay.recover ~dir:config.dir ~cache_capacity:config.cache_capacity
  in
  let wal =
    Wal.open_segment ~dir:config.dir ~start_seq:recovery.Replay.next_seq
      ~fsync:config.fsync
  in
  ( {
      config;
      lock = Mutex.create ();
      wal;
      mirror = state;
      recovery;
      (* Least recently used first: inserting in this order rebuilds
         the same recency chain. *)
      recovered_cache = List.rev (State.cache_specs state);
      recovered_pending = State.outstanding state;
      last_snapshot_seq =
        (match recovery.Replay.snapshot_seq with Some s -> s | None -> 0);
      since_snapshot = recovery.Replay.replayed;
      snapshots_written = 0;
      segments_compacted = 0;
      snapshots_compacted = 0;
      prime_ms = 0.;
      primed_plans = 0;
      primed_pending = 0;
      closed = false;
    },
    recovery )

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Caller holds the lock. *)
let snapshot_locked t =
  let upto = Wal.next_seq t.wal - 1 in
  if upto > t.last_snapshot_seq then begin
    Wal.sync t.wal;
    ignore (Snapshot.write ~dir:t.config.dir ~seq:upto t.mirror);
    Wal.rotate t.wal;
    let segs, snaps = Compact.run ~dir:t.config.dir ~upto in
    t.last_snapshot_seq <- upto;
    t.since_snapshot <- 0;
    t.snapshots_written <- t.snapshots_written + 1;
    t.segments_compacted <- t.segments_compacted + segs;
    t.snapshots_compacted <- t.snapshots_compacted + snaps
  end

let journal t kind =
  locked t (fun () ->
      if not t.closed then begin
        ignore (Wal.append t.wal kind);
        State.apply t.mirror kind;
        t.since_snapshot <- t.since_snapshot + 1;
        if
          t.config.snapshot_every > 0
          && t.since_snapshot >= t.config.snapshot_every
        then snapshot_locked t
      end)

let on_accept t spec = journal t (Record.Accepted spec)

let on_complete t ~spec ~requests ~ok =
  journal t (Record.Completed { spec; requests; ok })

let recovered_cache t = t.recovered_cache
let recovered_pending t = t.recovered_pending

let note_prime t ~ms ~plans ~pending =
  locked t (fun () ->
      t.prime_ms <- ms;
      t.primed_plans <- plans;
      t.primed_pending <- pending)

let state t = locked t (fun () -> State.copy t.mirror)
let snapshot_now t = locked t (fun () -> snapshot_locked t)
let appends t = locked t (fun () -> Wal.appends t.wal)
let fsyncs t = locked t (fun () -> Wal.fsyncs t.wal)

let stats_json t =
  locked t (fun () ->
      let r = t.recovery in
      Service.Jsonl.Obj
        [
          ("dir", Service.Jsonl.String t.config.dir);
          ("last_seq", Service.Jsonl.Int (Wal.next_seq t.wal - 1));
          ("appends", Service.Jsonl.Int (Wal.appends t.wal));
          ("fsyncs", Service.Jsonl.Int (Wal.fsyncs t.wal));
          ("fsync_every_n", Service.Jsonl.Int t.config.fsync.Wal.every_n);
          ("fsync_every_ms", Service.Jsonl.Float t.config.fsync.Wal.every_ms);
          ("snapshot_every", Service.Jsonl.Int t.config.snapshot_every);
          ("snapshots_written", Service.Jsonl.Int t.snapshots_written);
          ("segments_compacted", Service.Jsonl.Int t.segments_compacted);
          ("snapshots_compacted", Service.Jsonl.Int t.snapshots_compacted);
          ( "recovery",
            Service.Jsonl.Obj
              [
                ( "snapshot_seq",
                  match r.Replay.snapshot_seq with
                  | Some s -> Service.Jsonl.Int s
                  | None -> Service.Jsonl.Null );
                ("replayed", Service.Jsonl.Int r.Replay.replayed);
                ("truncated", Service.Jsonl.Int r.Replay.truncated);
                ("gap", Service.Jsonl.Bool r.Replay.gap);
                ("wall_ms", Service.Jsonl.Float r.Replay.wall_ms);
                ("prime_ms", Service.Jsonl.Float t.prime_ms);
                ("primed_plans", Service.Jsonl.Int t.primed_plans);
                ("primed_pending", Service.Jsonl.Int t.primed_pending);
              ] );
        ])

let close t =
  locked t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        snapshot_locked t;
        Wal.close t.wal
      end)
