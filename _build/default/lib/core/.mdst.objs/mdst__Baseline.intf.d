lib/core/baseline.mli: Dmf Metrics Mixtree
