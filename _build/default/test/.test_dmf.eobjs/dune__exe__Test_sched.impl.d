test/test_sched.ml: Alcotest Array Astring Dmf Generators Lazy List Mdst Mixtree Printf QCheck2 Result
