(* Tests for mixing trees: entries, the four construction algorithms,
   sharing analysis and Hu/OMS scheduling. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let pcr = Generators.pcr16

(* ------------------------------------------------------------------ *)
(* Entry                                                               *)

let test_entries_of_ratio () =
  let entries = Mixtree.Entry.of_ratio pcr in
  (* 2 -> one entry of weight 2; five parts of 1; 9 -> weights 8 and 1. *)
  check int "entry count" 8 (List.length entries);
  check int "total" 16 (Mixtree.Entry.total entries);
  (match entries with
  | first :: _ -> check int "largest first" 8 first.Mixtree.Entry.weight
  | [] -> Alcotest.fail "no entries")

let test_partition_exact () =
  let entries = Mixtree.Entry.of_ratio pcr in
  let left, right = Mixtree.Entry.partition ~half:8 entries in
  check int "left half" 8 (Mixtree.Entry.total left);
  check int "right half" 8 (Mixtree.Entry.total right)

let test_partition_rejects () =
  check bool "bad half rejected" true
    (try
       ignore (Mixtree.Entry.partition ~half:4 (Mixtree.Entry.of_ratio pcr));
       false
     with Invalid_argument _ -> true)

let test_split_largest () =
  let entries = Mixtree.Entry.of_ratio pcr in
  match Mixtree.Entry.split_largest entries with
  | None -> Alcotest.fail "should split"
  | Some split ->
    check int "one more entry" 9 (List.length split);
    check int "total preserved" 16 (Mixtree.Entry.total split)

let test_split_units () =
  let units =
    [ { Mixtree.Entry.fluid = Dmf.Fluid.make 0; weight = 1 };
      { Mixtree.Entry.fluid = Dmf.Fluid.make 1; weight = 1 } ]
  in
  check bool "unit entries cannot split" true
    (Mixtree.Entry.split_largest units = None)

let test_balance_fluids () =
  let e fluid weight = { Mixtree.Entry.fluid = Dmf.Fluid.make fluid; weight } in
  let left = [ e 0 1; e 0 1 ] and right = [ e 1 1; e 2 1 ] in
  let left', right' = Mixtree.Entry.balance_fluids (left, right) in
  check int "left count preserved" 2 (List.length left');
  check int "right count preserved" 2 (List.length right');
  let fluids entries =
    List.sort_uniq Int.compare
      (List.map (fun x -> Dmf.Fluid.index x.Mixtree.Entry.fluid) entries)
  in
  (* The duplicate fluid 0 must no longer be concentrated on one side. *)
  check bool "duplicates spread" true
    (List.mem 0 (fluids left') && List.mem 0 (fluids right'))

(* ------------------------------------------------------------------ *)
(* Tree statistics and construction                                    *)

let test_mm_pcr_shape () =
  let t = Mixtree.Minmix.build pcr in
  check int "depth" 4 (Mixtree.Tree.depth t);
  check int "internal nodes (paper: 7)" 7 (Mixtree.Tree.internal_count t);
  check int "leaves" 8 (Mixtree.Tree.leaf_count t);
  check int "waste" 6 (Mixtree.Tree.waste_count t);
  check (Alcotest.array int) "inputs" [| 1; 1; 1; 1; 1; 1; 2 |]
    (Mixtree.Tree.input_vector ~n:7 t)

let test_rma_wastes_more () =
  let mm = Mixtree.Minmix.build pcr and rma = Mixtree.Rma.build pcr in
  check bool "RMA uses at least as many leaves" true
    (Mixtree.Tree.leaf_count rma >= Mixtree.Tree.leaf_count mm);
  check bool "RMA wastes strictly more on PCR" true
    (Mixtree.Tree.waste_count rma > Mixtree.Tree.waste_count mm)

let test_all_algorithms_valid_on_pcr () =
  List.iter
    (fun algo ->
      let t = Mixtree.Algorithm.build algo pcr in
      match Mixtree.Tree.validate ~ratio:pcr t with
      | Ok () -> ()
      | Error e ->
        Alcotest.failf "%s invalid: %s" (Mixtree.Algorithm.name algo) e)
    Mixtree.Algorithm.all

let test_leaf_tree_stats () =
  let t = Mixtree.Tree.Leaf (Dmf.Fluid.make 0) in
  check int "depth" 0 (Mixtree.Tree.depth t);
  check int "internal" 0 (Mixtree.Tree.internal_count t);
  check int "waste" 0 (Mixtree.Tree.waste_count t)

let test_validate_detects_wrong_ratio () =
  let t = Mixtree.Minmix.build (Dmf.Ratio.of_string "1:3") in
  check bool "wrong target detected" true
    (Result.is_error (Mixtree.Tree.validate ~ratio:(Dmf.Ratio.of_string "3:1") t))

let test_subtrees_by_level () =
  let t = Mixtree.Minmix.build pcr in
  let subtrees = Mixtree.Tree.subtrees_by_level ~d:4 t in
  let roots = List.filter (fun (level, _) -> level = 4) subtrees in
  check int "single root at level d" 1 (List.length roots)

let test_algorithm_of_string () =
  check bool "mm" true (Mixtree.Algorithm.of_string "mm" = Some Mixtree.Algorithm.MM);
  check bool "RMA" true (Mixtree.Algorithm.of_string " RMA " = Some Mixtree.Algorithm.RMA);
  check bool "unknown" true (Mixtree.Algorithm.of_string "nope" = None)

(* ------------------------------------------------------------------ *)
(* Sharing analysis                                                    *)

let test_sharing_paper_numbers () =
  let t = Mixtree.Minmix.build pcr in
  let s16 = Mixtree.Sharing.demand_stats ~n:7 ~demand:16 t in
  check int "D=16 mixes (paper: 19)" 19 s16.Mixtree.Sharing.mixes;
  check int "D=16 waste (paper: 0)" 0 s16.Mixtree.Sharing.waste;
  check (Alcotest.array int) "D=16 inputs equal the ratio"
    [| 2; 1; 1; 1; 1; 1; 9 |] s16.Mixtree.Sharing.inputs;
  let s20 = Mixtree.Sharing.demand_stats ~n:7 ~demand:20 t in
  check int "D=20 mixes (paper: 27)" 27 s20.Mixtree.Sharing.mixes;
  check int "D=20 waste (paper: 5)" 5 s20.Mixtree.Sharing.waste;
  check (Alcotest.array int) "D=20 inputs (paper: [3,2,2,2,2,2,12])"
    [| 3; 2; 2; 2; 2; 2; 12 |] s20.Mixtree.Sharing.inputs

let test_sharing_conservation =
  Generators.qtest ~count:150 "sharing stats conserve droplets"
    QCheck2.Gen.(pair Generators.ratio_gen Generators.demand_gen)
    (fun (r, demand) -> Printf.sprintf "%s D=%d" (Dmf.Ratio.to_string r) demand)
    (fun (r, demand) ->
      let t = Mixtree.Minmix.build r in
      let s = Mixtree.Sharing.demand_stats ~n:(Dmf.Ratio.n_fluids r) ~demand t in
      Array.fold_left ( + ) 0 s.Mixtree.Sharing.inputs
      = demand + s.Mixtree.Sharing.waste)

let test_sharing_full_demand_no_waste =
  Generators.qtest ~count:150 "demand 2^d consumes exactly the ratio"
    Generators.ratio_gen Generators.ratio_print (fun r ->
      let t = Mixtree.Minmix.build r in
      let s =
        Mixtree.Sharing.demand_stats ~n:(Dmf.Ratio.n_fluids r)
          ~demand:(Dmf.Ratio.sum r) t
      in
      s.Mixtree.Sharing.waste = 0
      && s.Mixtree.Sharing.inputs = Dmf.Ratio.parts r)

(* ------------------------------------------------------------------ *)
(* Hu / OMS                                                            *)

let test_hu_pcr () =
  let t = Mixtree.Minmix.build pcr in
  check int "Mlb (paper: 3)" 3 (Mixtree.Hu.min_mixers_for_fastest t);
  check int "tc with Mlb mixers = depth" 4 (Mixtree.Hu.completion_time t ~mixers:3);
  check int "tc with one mixer = node count" 7
    (Mixtree.Hu.completion_time t ~mixers:1)

let test_hu_monotone () =
  let t = Mixtree.Minmix.build (Dmf.Ratio.of_string "26:21:2:2:3:3:199") in
  let previous = ref max_int in
  for m = 1 to 8 do
    let tc = Mixtree.Hu.completion_time t ~mixers:m in
    check bool (Printf.sprintf "tc nonincreasing at m=%d" m) true (tc <= !previous);
    previous := tc
  done

let test_hu_leaf () =
  let t = Mixtree.Tree.Leaf (Dmf.Fluid.make 0) in
  check int "leaf takes no cycles" 0 (Mixtree.Hu.completion_time t ~mixers:1);
  check int "leaf needs one mixer by convention" 1
    (Mixtree.Hu.min_mixers_for_fastest t)

let test_hu_schedule_valid () =
  let t = Mixtree.Minmix.build pcr in
  let slots = Mixtree.Hu.schedule t ~mixers:2 in
  check int "every internal node scheduled" 7 (List.length slots);
  (* No mixer double-booked. *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let key = (s.Mixtree.Hu.cycle, s.Mixtree.Hu.mixer) in
      check bool "slot unique" false (Hashtbl.mem seen key);
      Hashtbl.add seen key ())
    slots

let prop_hu_critical_path =
  Generators.qtest ~count:100 "many mixers reach the critical path"
    Generators.ratio_gen Generators.ratio_print (fun r ->
      let t = Mixtree.Minmix.build r in
      let many = max 1 (Mixtree.Tree.internal_count t) in
      Mixtree.Hu.completion_time t ~mixers:many = Mixtree.Tree.depth t)

let prop_trees_valid =
  Generators.qtest ~count:200 "all four algorithms build exact trees"
    QCheck2.Gen.(pair Generators.ratio_gen Generators.algorithm_gen)
    (fun (r, a) ->
      Printf.sprintf "%s %s" (Mixtree.Algorithm.name a) (Dmf.Ratio.to_string r))
    (fun (r, a) ->
      let t = Mixtree.Algorithm.build a r in
      Result.is_ok (Mixtree.Tree.validate ~ratio:r t))

let prop_mm_leaf_optimal =
  Generators.qtest ~count:200 "MM uses exactly popcount leaves"
    Generators.ratio_gen Generators.ratio_print (fun r ->
      let t = Mixtree.Minmix.build r in
      let popcount_total =
        Array.fold_left (fun acc a -> acc + Dmf.Binary.popcount a) 0
          (Dmf.Ratio.parts r)
      in
      Mixtree.Tree.leaf_count t = popcount_total)

let prop_mtcs_no_worse =
  Generators.qtest ~count:150 "MTCS shared pass never beats MM on inputs badly"
    Generators.ratio_gen Generators.ratio_print (fun r ->
      let n = Dmf.Ratio.n_fluids r in
      let mm = Mixtree.Sharing.pass_stats ~n (Mixtree.Minmix.build r) in
      let mtcs = Mixtree.Sharing.pass_stats ~n (Mixtree.Mtcs.build r) in
      mtcs.Mixtree.Sharing.mixes <= mm.Mixtree.Sharing.mixes)

let () =
  Alcotest.run "mixtree"
    [
      ( "entry",
        [
          Alcotest.test_case "of_ratio" `Quick test_entries_of_ratio;
          Alcotest.test_case "partition exact" `Quick test_partition_exact;
          Alcotest.test_case "partition rejects" `Quick test_partition_rejects;
          Alcotest.test_case "split largest" `Quick test_split_largest;
          Alcotest.test_case "split units" `Quick test_split_units;
          Alcotest.test_case "balance fluids" `Quick test_balance_fluids;
        ] );
      ( "tree",
        [
          Alcotest.test_case "MM PCR shape" `Quick test_mm_pcr_shape;
          Alcotest.test_case "RMA wastes more" `Quick test_rma_wastes_more;
          Alcotest.test_case "all algorithms valid on PCR" `Quick
            test_all_algorithms_valid_on_pcr;
          Alcotest.test_case "leaf stats" `Quick test_leaf_tree_stats;
          Alcotest.test_case "validate detects wrong ratio" `Quick
            test_validate_detects_wrong_ratio;
          Alcotest.test_case "subtrees by level" `Quick test_subtrees_by_level;
          Alcotest.test_case "algorithm of_string" `Quick test_algorithm_of_string;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "paper numbers (Figs 1-2)" `Quick
            test_sharing_paper_numbers;
          test_sharing_conservation;
          test_sharing_full_demand_no_waste;
        ] );
      ( "hu",
        [
          Alcotest.test_case "PCR Mlb and tc" `Quick test_hu_pcr;
          Alcotest.test_case "tc monotone in mixers" `Quick test_hu_monotone;
          Alcotest.test_case "leaf" `Quick test_hu_leaf;
          Alcotest.test_case "schedule valid" `Quick test_hu_schedule_valid;
          prop_hu_critical_path;
        ] );
      ( "properties",
        [ prop_trees_valid; prop_mm_leaf_optimal; prop_mtcs_no_worse ] );
    ]
