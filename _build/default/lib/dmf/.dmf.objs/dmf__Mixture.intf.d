lib/dmf/mixture.mli: Fluid Format Map Ratio Set
