(** Execution traces of the droplet-level simulator. *)

type event =
  | Dispense of {
      cycle : int;
      droplet : int;
      fluid : Dmf.Fluid.t;
      reservoir : string;
    }
  | Move of {
      cycle : int;
      droplet : int;
      src : string;
      dst : string;
      path : Chip.Geometry.point list;
          (** The full route, source cell first. *)
      cost : int;  (** Electrodes actuated along the route. *)
      segregation_ok : bool;
          (** Whether the route respected the fluidic segregation ring
              around every unrelated parked droplet. *)
    }
  | Mix of {
      cycle : int;
      node : int;  (** Plan node id. *)
      mixer : string;
      value : Dmf.Mixture.t;
      operands : int * int;  (** Droplet ids consumed. *)
      products : int * int;  (** Droplet ids produced. *)
    }
  | Emit of { cycle : int; droplet : int; value : Dmf.Mixture.t }
  | Discard of { cycle : int; droplet : int; waste : string }

type t = event list
(** Chronological event list. *)

val cycle_of : event -> int
val pp_event : Format.formatter -> event -> unit
val pp : Format.formatter -> t -> unit

val moves : t -> int
val electrodes : t -> int
(** Total actuation cost over all moves. *)

val emitted : t -> Dmf.Mixture.t list
val violations : t -> int
(** Moves that could not respect droplet segregation. *)
