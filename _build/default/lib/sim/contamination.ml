type visit = { step : int; droplet : int; value : Dmf.Mixture.t; cycle : int }

type pair = {
  cell : Chip.Geometry.point;
  first : visit;
  second : visit;
}

type wash_plan = { washes : int; wash_steps : int }

type t = {
  pairs : pair list;
  contaminated_cells : int;
  total_crossings : int;
  benign_crossings : int;
  wash : wash_plan;
}

let key (p : Chip.Geometry.point) = (p.Chip.Geometry.x, p.Chip.Geometry.y)

(* Greedy nearest-neighbour sweep from the waste reservoir through the
   dirty cells and back — a simple estimate of one wash droplet's
   route length. *)
let sweep_length ~home cells =
  let rec go current remaining acc =
    match remaining with
    | [] -> acc + Chip.Geometry.manhattan current home
    | _ :: _ ->
      let next =
        List.fold_left
          (fun best cell ->
            match best with
            | Some b
              when Chip.Geometry.manhattan current b
                   <= Chip.Geometry.manhattan current cell -> best
            | Some _ | None -> Some cell)
          None remaining
      in
      (match next with
      | None -> acc
      | Some next ->
        go next
          (List.filter (fun c -> c <> next) remaining)
          (acc + Chip.Geometry.manhattan current next))
  in
  go home cells 0

let analyze ~layout ~plan ~trace =
  let n = Dmf.Ratio.n_fluids (Mdst.Plan.ratio plan) in
  let values : (int, Dmf.Mixture.t) Hashtbl.t = Hashtbl.create 64 in
  let visits : (int * int, visit list) Hashtbl.t = Hashtbl.create 256 in
  let step = ref 0 in
  List.iter
    (fun event ->
      match event with
      | Trace.Dispense { droplet; fluid; _ } ->
        Hashtbl.replace values droplet (Dmf.Mixture.pure ~n fluid)
      | Trace.Mix { value; products = p0, p1; _ } ->
        Hashtbl.replace values p0 value;
        Hashtbl.replace values p1 value
      | Trace.Move { droplet; path; cycle; _ } ->
        let value =
          match Hashtbl.find_opt values droplet with
          | Some v -> v
          | None -> Dmf.Mixture.pure ~n (Dmf.Fluid.make 0)
        in
        List.iter
          (fun cell ->
            incr step;
            let visit = { step = !step; droplet; value; cycle } in
            let existing =
              Option.value ~default:[] (Hashtbl.find_opt visits (key cell))
            in
            Hashtbl.replace visits (key cell) (visit :: existing))
          path
      | Trace.Emit _ | Trace.Discard _ -> ())
    trace;
  let pairs = ref [] in
  let total = ref 0 and benign = ref 0 in
  let dirty_cells = Hashtbl.create 64 in
  Hashtbl.iter
    (fun (x, y) cell_visits ->
      let chronological =
        List.sort (fun a b -> Int.compare a.step b.step) cell_visits
      in
      let rec successions = function
        | a :: (b :: _ as rest) ->
          if a.droplet <> b.droplet then begin
            incr total;
            if Dmf.Mixture.equal a.value b.value then incr benign
            else begin
              let cell = { Chip.Geometry.x; y } in
              pairs := { cell; first = a; second = b } :: !pairs;
              Hashtbl.replace dirty_cells (x, y) ()
            end
          end;
          successions rest
        | [ _ ] | [] -> ()
      in
      successions chronological)
    visits;
  (* One wash sweep per cycle that produced fresh contamination. *)
  let by_cycle = Hashtbl.create 16 in
  List.iter
    (fun p ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt by_cycle p.second.cycle)
      in
      Hashtbl.replace by_cycle p.second.cycle (p.cell :: existing))
    !pairs;
  let home =
    match Chip.Layout.wastes layout with
    | w :: _ -> Chip.Chip_module.anchor w
    | [] -> { Chip.Geometry.x = 0; y = 0 }
  in
  let washes = ref 0 and wash_steps = ref 0 in
  Hashtbl.iter
    (fun _cycle cells ->
      incr washes;
      wash_steps :=
        !wash_steps + sweep_length ~home (List.sort_uniq compare cells))
    by_cycle;
  {
    pairs = List.rev !pairs;
    contaminated_cells = Hashtbl.length dirty_cells;
    total_crossings = !total;
    benign_crossings = !benign;
    wash = { washes = !washes; wash_steps = !wash_steps };
  }

let wash_overhead_ratio t ~transport_electrodes =
  if transport_electrodes = 0 then 0.
  else float_of_int t.wash.wash_steps /. float_of_int transport_electrodes
