(* Tests for the engine facade, the baselines and the comparison module
   (Tables 2-3). *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let pcr = Generators.pcr16

let spec ?(demand = 20) ?(algorithm = Mixtree.Algorithm.MM)
    ?(scheduler = Mdst.Scheduler.srs) ?mixers ratio =
  { Mdst.Engine.ratio; demand; algorithm; scheduler; mixers }

let test_default_mixers () =
  check int "PCR Mlb = 3" 3 (Mdst.Engine.default_mixers pcr);
  check int "dilution Mlb" 1
    (Mdst.Engine.default_mixers (Dmf.Ratio.of_string "1:15"))

let test_prepare_coherent () =
  let result = Mdst.Engine.prepare (spec ~mixers:3 pcr) in
  check int "resolved mixers" 3 result.Mdst.Engine.mixers;
  check int "metrics demand" 20 result.Mdst.Engine.metrics.Mdst.Metrics.demand;
  check int "metrics tc matches schedule"
    (Mdst.Schedule.completion_time result.Mdst.Engine.schedule)
    result.Mdst.Engine.metrics.Mdst.Metrics.tc;
  check Alcotest.string "scheme name" "MM+SRS"
    result.Mdst.Engine.metrics.Mdst.Metrics.scheme

let test_prepare_rejects_bad_mixers () =
  check bool "zero mixers" true
    (try ignore (Mdst.Engine.prepare (spec ~mixers:0 pcr)); false
     with Invalid_argument _ -> true)

let test_baseline_metrics () =
  let m = Mdst.Engine.baseline_metrics (spec ~mixers:3 pcr) in
  check int "ten passes" 10 m.Mdst.Metrics.passes;
  check int "Tr = passes * 4" 40 m.Mdst.Metrics.tc;
  check int "Ir = passes * 8" 80 m.Mdst.Metrics.input_total;
  check int "Wr = passes * 6" 60 m.Mdst.Metrics.waste

let test_baseline_names () =
  check Alcotest.string "RMM" "RMM" (Mdst.Baseline.name Mixtree.Algorithm.MM);
  check Alcotest.string "RRMA" "RRMA" (Mdst.Baseline.name Mixtree.Algorithm.RMA);
  check Alcotest.string "RMTCS" "RMTCS" (Mdst.Baseline.name Mixtree.Algorithm.MTCS)

(* Table 2, Ex.2 row: the paper's exact values for the schemes our MM
   reimplementation matches. *)
let test_table2_ex2 () =
  let ratio = Dmf.Ratio.of_string "128:123:5" in
  let results =
    Mdst.Compare.evaluate_all ~ratio ~demand:32 Mdst.Compare.table2_schemes
  in
  let find name =
    List.find
      (fun (s, _) -> Mdst.Compare.scheme_name s = name)
      results
    |> snd
  in
  let rmm = find "RMM" in
  check int "RMM Tc (paper: 128)" 128 rmm.Mdst.Metrics.tc;
  check int "RMM I (paper: 144)" 144 rmm.Mdst.Metrics.input_total;
  let mms = find "MM+MMS" in
  check int "MM+MMS Tc (paper: 34)" 34 mms.Mdst.Metrics.tc;
  check int "MM+MMS q (paper: 15)" 15 mms.Mdst.Metrics.q;
  check int "MM+MMS I (paper: 35)" 35 mms.Mdst.Metrics.input_total;
  let srs = find "MM+SRS" in
  check int "MM+SRS Tc (paper: 34)" 34 srs.Mdst.Metrics.tc;
  check int "MM+SRS q (paper: 4)" 4 srs.Mdst.Metrics.q;
  check int "MM+SRS I (paper: 35)" 35 srs.Mdst.Metrics.input_total

let test_table2_all_protocols_ordering () =
  (* On every protocol, every streamed scheme beats its repeated baseline
     on both completion time and reactant usage. *)
  List.iter
    (fun p ->
      let ratio = p.Bioproto.Protocols.ratio in
      let results =
        Mdst.Compare.evaluate_all ~ratio ~demand:32 Mdst.Compare.table2_schemes
      in
      let metric name =
        snd (List.find (fun (s, _) -> Mdst.Compare.scheme_name s = name) results)
      in
      List.iter
        (fun (repeated, streamed) ->
          let r = metric repeated and s = metric streamed in
          check bool
            (Printf.sprintf "%s: %s faster than %s" p.Bioproto.Protocols.id
               streamed repeated)
            true
            (s.Mdst.Metrics.tc < r.Mdst.Metrics.tc);
          check bool
            (Printf.sprintf "%s: %s cheaper than %s" p.Bioproto.Protocols.id
               streamed repeated)
            true
            (s.Mdst.Metrics.input_total < r.Mdst.Metrics.input_total))
        [ ("RMM", "MM+MMS"); ("RMM", "MM+SRS"); ("RRMA", "RMA+MMS");
          ("RRMA", "RMA+SRS"); ("RMTCS", "MTCS+MMS"); ("RMTCS", "MTCS+SRS") ])
    Bioproto.Protocols.table2

let test_improvements_on_corpus_slice () =
  (* Table 3's headline: MMS reduces Tc and I by a large margin over the
     repeated baselines on the L=32 corpus with D=32; SRS cuts storage
     relative to MMS at a small Tc cost. *)
  let ratios = Lazy.force Generators.corpus_slice in
  List.iter
    (fun algorithm ->
      let imp = Mdst.Compare.average_improvements ~ratios ~demand:32 algorithm in
      let name = Mixtree.Algorithm.name algorithm in
      check bool (name ^ ": MMS saves > 50% time") true
        (imp.Mdst.Compare.mms_tc_over_repeated > 50.);
      check bool (name ^ ": MMS saves > 50% reactant") true
        (imp.Mdst.Compare.mms_i_over_repeated > 50.);
      check bool (name ^ ": SRS saves storage vs MMS") true
        (imp.Mdst.Compare.srs_q_over_mms > 0.);
      check bool (name ^ ": SRS no faster than MMS on average") true
        (imp.Mdst.Compare.srs_tc_over_mms <= 0.))
    [ Mixtree.Algorithm.MM; Mixtree.Algorithm.RMA; Mixtree.Algorithm.MTCS ]

let test_scheme_names () =
  check Alcotest.string "streamed name" "RMA+MMS"
    (Mdst.Compare.scheme_name
       (Mdst.Compare.Streamed (Mixtree.Algorithm.RMA, Mdst.Scheduler.mms)));
  check Alcotest.string "repeated name" "RMTCS"
    (Mdst.Compare.scheme_name (Mdst.Compare.Repeated Mixtree.Algorithm.MTCS));
  check int "nine table-2 schemes" 9 (List.length Mdst.Compare.table2_schemes)

let test_percent_improvement () =
  check (Alcotest.float 1e-9) "halving is 50%" 50.
    (Mdst.Metrics.percent_improvement ~baseline:128 64);
  check (Alcotest.float 1e-9) "zero baseline" 0.
    (Mdst.Metrics.percent_improvement ~baseline:0 10);
  check bool "regression is negative" true
    (Mdst.Metrics.percent_improvement ~baseline:10 12 < 0.)

let test_report_table () =
  let s =
    Mdst.Report.table ~header:[ "a"; "b" ] ~rows:[ [ "1"; "22" ]; [ "333" ] ]
  in
  check bool "pads ragged rows" true (String.length s > 0);
  check bool "has rule" true (Astring.String.is_infix ~affix:"---" s)

let prop_engine_metrics_consistent =
  Generators.qtest ~count:100 "engine metrics are internally consistent"
    QCheck2.Gen.(
      triple Generators.ratio_gen (int_range 2 24) Generators.algorithm_gen)
    (fun (r, d, a) ->
      Printf.sprintf "%s D=%d %s" (Dmf.Ratio.to_string r) d
        (Mixtree.Algorithm.name a))
    (fun (ratio, demand, algorithm) ->
      let result =
        Mdst.Engine.prepare
          { Mdst.Engine.ratio; demand; algorithm;
            scheduler = Mdst.Scheduler.srs; mixers = None }
      in
      let m = result.Mdst.Engine.metrics in
      m.Mdst.Metrics.tms = Mdst.Plan.tms result.Mdst.Engine.plan
      && m.Mdst.Metrics.input_total
         = Array.fold_left ( + ) 0 m.Mdst.Metrics.inputs
      && m.Mdst.Metrics.tc
         = Mdst.Schedule.completion_time result.Mdst.Engine.schedule
      && m.Mdst.Metrics.trees = (demand + 1) / 2)

let () =
  Alcotest.run "engine"
    [
      ( "engine",
        [
          Alcotest.test_case "default mixers" `Quick test_default_mixers;
          Alcotest.test_case "prepare coherent" `Quick test_prepare_coherent;
          Alcotest.test_case "rejects bad mixers" `Quick test_prepare_rejects_bad_mixers;
          Alcotest.test_case "baseline metrics" `Quick test_baseline_metrics;
          Alcotest.test_case "baseline names" `Quick test_baseline_names;
        ] );
      ( "table2",
        [
          Alcotest.test_case "Ex.2 exact row" `Quick test_table2_ex2;
          Alcotest.test_case "streamed beats repeated on Ex.1-5" `Quick
            test_table2_all_protocols_ordering;
        ] );
      ( "table3",
        [
          Alcotest.test_case "corpus-slice improvements" `Slow
            test_improvements_on_corpus_slice;
        ] );
      ( "report",
        [
          Alcotest.test_case "scheme names" `Quick test_scheme_names;
          Alcotest.test_case "percent improvement" `Quick test_percent_improvement;
          Alcotest.test_case "table rendering" `Quick test_report_table;
        ] );
      ("properties", [ prop_engine_metrics_consistent ]);
    ]
