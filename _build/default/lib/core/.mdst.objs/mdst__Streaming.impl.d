lib/core/streaming.ml: Forest List Mms Plan Schedule Srs Storage
