lib/chip/parallel_router.ml: Array Chip_module Format Geometry Hashtbl Int Layout List Printf Queue Result
