(* Qint: nodes with an internal child — higher level first (stalling costs
   storage; finishing high nodes ends the forest sooner). *)
let int_priority a b =
  match Int.compare b.Plan.level a.Plan.level with
  | 0 -> (
    match Int.compare a.Plan.tree b.Plan.tree with
    | 0 -> Int.compare a.Plan.bfs b.Plan.bfs
    | c -> c)
  | c -> c

(* Qleaf: both children are reservoir inputs — lower level first (a
   high-level Type-C node is useless until its sibling is ready). *)
let leaf_priority a b =
  match Int.compare a.Plan.level b.Plan.level with
  | 0 -> (
    match Int.compare a.Plan.tree b.Plan.tree with
    | 0 -> Int.compare a.Plan.bfs b.Plan.bfs
    | c -> c)
  | c -> c

(* Event-driven: a node is inserted into Qint/Qleaf exactly once, when its
   pending-predecessor count hits zero.  Droplets produced at cycle t are
   consumable from t+1, so readiness discovered while launching cycle t is
   buffered and flushed at the next cycle's admission point — exactly the
   set the original per-cycle full-plan rescan admitted.  Both priority
   orders are total ((tree, bfs) identifies a node), so the pairing heap
   pops the same unique minimum whatever the insertion order, and the
   schedules are bit-identical to the {!Naive.srs} reference at O(n log n)
   instead of O(n·Tc). *)
let schedule ~plan ~mixers =
  if mixers < 1 then invalid_arg "Srs.schedule: at least one mixer";
  let n = Plan.n_nodes plan in
  let cycles = Array.make n 0 in
  let mixer_of = Array.make n 0 in
  let pending = Array.init n (fun i -> Plan.pred_count plan i) in
  let qint = ref (Pqueue.empty ~compare:int_priority) in
  let qleaf = ref (Pqueue.empty ~compare:leaf_priority) in
  (* Nodes whose pending count reached zero since the last admission. *)
  let fresh = ref [] in
  for i = n - 1 downto 0 do
    if pending.(i) = 0 then fresh := i :: !fresh
  done;
  let admit () =
    List.iter
      (fun id ->
        let node = Plan.node plan id in
        match Plan.child_kind plan node with
        | `Both_leaves -> qleaf := Pqueue.insert node !qleaf
        | `Both_internal | `One_internal -> qint := Pqueue.insert node !qint)
      !fresh;
    fresh := []
  in
  let remaining = ref n in
  let t = ref 0 in
  let launch t node slot =
    cycles.(node.Plan.id) <- t;
    mixer_of.(node.Plan.id) <- slot;
    decr remaining;
    Plan.iter_successors plan node.Plan.id (fun c ->
        pending.(c) <- pending.(c) - 1;
        if pending.(c) = 0 then fresh := c :: !fresh)
  in
  let depth = Dmf.Ratio.accuracy (Plan.ratio plan) in
  let guard = ref (Schedule.no_progress_bound ~nodes:n ~depth) in
  while !remaining > 0 do
    decr guard;
    if !guard <= 0 then failwith "Srs.schedule: no progress (internal error)";
    incr t;
    admit ();
    (* Dequeue up to Mc from Qint first, then fill from Qleaf; per
       Algorithm 2 the Qleaf quota is based on |Qint| before dequeuing. *)
    let int_nodes = Pqueue.size !qint in
    let slot = ref 0 in
    let take_from q limit =
      let taken = ref 0 in
      while !taken < limit && not (Pqueue.is_empty !q) do
        match Pqueue.pop !q with
        | None -> ()
        | Some (node, rest) ->
          q := rest;
          incr taken;
          incr slot;
          launch !t node !slot
      done
    in
    take_from qint (min mixers int_nodes);
    take_from qleaf (max 0 (mixers - int_nodes))
  done;
  Schedule.create ~plan ~mixers ~cycles ~mixer_of
