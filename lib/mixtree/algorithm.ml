type t = MM | RMA | MTCS | RSM

let all = [ MM; RMA; RSM; MTCS ]

let construct = function
  | MM -> Minmix.build
  | RMA -> Rma.build
  | MTCS -> Mtcs.build
  | RSM -> Rsm.build

let intra_pass_sharing = function
  | MTCS -> true
  | MM | RMA | RSM -> false

let name = function
  | MM -> "MM"
  | RMA -> "RMA"
  | MTCS -> "MTCS"
  | RSM -> "RSM"

(* Base trees are pure values and construction depends only on (algorithm,
   ratio), so identical requests share one tree.  The compare and baseline
   paths rebuild the same few trees thousands of times across a corpus
   sweep; the mutex keeps the table safe under Par's domains (duplicate
   misses may build twice, but the results are interchangeable). *)
let cache : (string, Tree.t) Hashtbl.t = Hashtbl.create 256
let cache_lock = Mutex.create ()
let cache_cap = 8192

let build algorithm ratio =
  let key = name algorithm ^ "|" ^ Dmf.Ratio.key ratio in
  Mutex.lock cache_lock;
  let cached = Hashtbl.find_opt cache key in
  Mutex.unlock cache_lock;
  match cached with
  | Some tree -> tree
  | None ->
    let tree = construct algorithm ratio in
    Mutex.lock cache_lock;
    if Hashtbl.length cache >= cache_cap then Hashtbl.reset cache;
    Hashtbl.replace cache key tree;
    Mutex.unlock cache_lock;
    tree

let of_string s =
  match String.uppercase_ascii (String.trim s) with
  | "MM" -> Some MM
  | "RMA" -> Some RMA
  | "MTCS" -> Some MTCS
  | "RSM" -> Some RSM
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (name t)
