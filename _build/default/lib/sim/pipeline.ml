type result = {
  engine : Mdst.Engine.result;
  layout : Chip.Layout.t;
  trace : Trace.t;
  stats : Executor.stats;
  actuation : Chip.Actuation.t;
  wear : Wear.t;
  contamination : Contamination.t;
}

let ( let* ) = Result.bind

let run ?layout spec =
  let engine = Mdst.Engine.prepare spec in
  let plan = engine.Mdst.Engine.plan and schedule = engine.Mdst.Engine.schedule in
  let layout =
    match layout with
    | Some layout -> layout
    | None ->
      Chip.Layout.default ~mixers:engine.Mdst.Engine.mixers
        ~storage_units:(max 1 (Mdst.Storage.units ~plan schedule))
        ~n_fluids:(Dmf.Ratio.n_fluids spec.Mdst.Engine.ratio)
        ()
  in
  let* actuation = Chip.Actuation.account ~layout ~plan ~schedule in
  let* trace, stats = Executor.run ~layout ~plan ~schedule in
  let* () = Executor.check ~plan stats in
  Ok
    {
      engine;
      layout;
      trace;
      stats;
      actuation;
      wear = Wear.of_stats stats;
      contamination = Contamination.analyze ~layout ~plan ~trace;
    }
