type t = {
  rule : Ids.rule;
  loc : Summary.loc;
  message : string;
  mutable suppressed : string option;  (* the suppression's rationale *)
}

let make rule loc message = { rule; loc; message; suppressed = None }

let compare a b =
  match String.compare a.loc.Summary.file b.loc.Summary.file with
  | 0 -> (
    match Int.compare a.loc.Summary.line b.loc.Summary.line with
    | 0 -> (
      match String.compare a.rule.Ids.id b.rule.Ids.id with
      | 0 -> String.compare a.message b.message
      | c -> c)
    | c -> c)
  | c -> c

let key f =
  Printf.sprintf "%s|%s|%d|%s" f.rule.Ids.id f.loc.Summary.file
    f.loc.Summary.line f.message

let to_human f =
  Printf.sprintf "%s: %s %s: %s%s"
    (Summary.string_of_loc f.loc)
    f.rule.Ids.id f.rule.Ids.name f.message
    (match f.suppressed with
    | Some why -> Printf.sprintf "\n    suppressed: %s" why
    | None -> "")

(* ------------------------------------------------------------------ *)
(* Minimal JSON emission (the lint library deliberately has no
   dependency on the served stack, lib/service's Jsonl included).     *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    "{\"rule\": \"%s\", \"name\": \"%s\", \"file\": \"%s\", \"line\": %d, \
     \"col\": %d, \"message\": \"%s\", \"suppressed\": %b%s}"
    f.rule.Ids.id f.rule.Ids.name
    (json_escape f.loc.Summary.file)
    f.loc.Summary.line f.loc.Summary.col (json_escape f.message)
    (f.suppressed <> None)
    (match f.suppressed with
    | Some why -> Printf.sprintf ", \"rationale\": \"%s\"" (json_escape why)
    | None -> "")
