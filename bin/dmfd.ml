(* dmfd — the demand-driven preparation daemon.

   Serves the MDST engine behind a newline-delimited JSON protocol:
   typed prepare/stats/ping requests go through a bounded admission
   queue that coalesces concurrent requests for the same target, a
   bounded LRU plan cache, and a fixed pool of planning workers on
   OCaml 5 domains.

     dmfd --stdio                      # serve stdin/stdout (tests, CI)
     dmfd --port 7433                  # serve TCP, one thread per client
     dmfd --port 7433 --wal-dir wal    # ... with crash recovery
     echo '{"req":"prepare","ratio":"2:1:1:1:1:1:9","D":20,"Mc":3}' \
       | dmfd --stdio

   With --wal-dir, accepted requests and completed jobs are journaled
   to a write-ahead log (lib/durable): on boot the daemon loads the
   latest snapshot, replays the journal tail, re-plans the recovered
   cache through the deterministic scheduler registry and resubmits
   requests that were accepted but never answered.  SIGTERM/SIGINT
   shut the daemon down cleanly: the queue drains, the workers join,
   and the journal is synced, snapshotted and compacted.

   Replication (lib/replication) rides on the journal:

     dmfd --port 7433 --wal-dir wal --repl-port 7533   # primary
     dmfd --port 7434 --wal-dir wal2 --follow 127.0.0.1:7533

   --repl-port streams WAL segments plus the live tail to followers;
   --follow mirrors a primary byte-for-byte, applies its records, and
   serves read-only traffic until promoted (SIGUSR1 or a
   {"req":"promote"} request), at which point it recovers from its
   mirrored journal and becomes a writable primary. *)

open Cmdliner

let stdio_arg =
  Arg.(
    value & flag
    & info [ "stdio" ]
        ~doc:"Serve newline-delimited JSON on stdin/stdout instead of TCP.")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind (TCP mode).")

let port_arg =
  Arg.(
    value & opt int 7433
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:
          "TCP port to listen on. 0 binds a kernel-chosen ephemeral port and \
           announces it on stdout as a PORT=<n> line (machine-parseable, for \
           supervisors launching shard fleets).")

let workers_arg =
  Arg.(
    value & opt (some int) None
    & info [ "w"; "workers" ] ~docv:"N"
        ~doc:
          "Planning workers (OCaml domains). Defaults to \\$MDST_DOMAINS or \
           the physical core count.")

let queue_arg =
  Arg.(
    value & opt int 256
    & info [ "queue-capacity" ] ~docv:"N"
        ~doc:
          "Maximum pending planning jobs before admission blocks \
           (backpressure).")

let cache_arg =
  Arg.(
    value & opt int 1024
    & info [ "cache-capacity" ] ~docv:"N"
        ~doc:"Maximum cached plans (LRU eviction). 0 disables the cache.")

let wal_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "wal-dir" ] ~docv:"DIR"
        ~doc:
          "Enable durability: journal accepted requests and completed jobs \
           to a write-ahead log in $(docv), and recover state from it on \
           boot. Off by default.")

let fsync_batch_arg =
  Arg.(
    value & opt int 1
    & info [ "fsync-batch" ] ~docv:"N"
        ~doc:
          "fsync the journal after every $(docv) records. 1 (the default) \
           makes every response durable before the client sees it; larger \
           batches trade a bounded tail-loss window for throughput. 0 \
           disables count-based syncing.")

let fsync_ms_arg =
  Arg.(
    value & opt float 0.
    & info [ "fsync-ms" ] ~docv:"MS"
        ~doc:
          "Also fsync the journal once $(docv) milliseconds have passed \
           since the last sync (bounds the loss window of a large \
           --fsync-batch under a slow trickle of requests). 0 disables the \
           time trigger.")

let snapshot_arg =
  Arg.(
    value & opt int 512
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:
          "Snapshot the durable state (and compact the journal) after every \
           $(docv) journaled records. 0 snapshots only on clean shutdown.")

let store_dir_arg =
  Arg.(
    value & opt (some string) None
    & info [ "store-dir" ] ~docv:"DIR"
        ~doc:
          "Enable the content-addressed plan store: persist every built plan \
           to $(docv) and serve cache misses from it instead of re-planning. \
           Entries survive restarts and may be shared by several daemons \
           (shards) pointing at the same directory. Off by default.")

let store_max_bytes_arg =
  Arg.(
    value & opt (some int) None
    & info [ "store-max-bytes" ] ~docv:"BYTES"
        ~doc:
          "Bound the plan store's total size: once exceeded, oldest entries \
           are deleted down to 80% of $(docv) at each journal compaction \
           (and after writes). Unbounded by default.")

let repl_port_arg =
  Arg.(
    value & opt (some int) None
    & info [ "repl-port" ] ~docv:"PORT"
        ~doc:
          "Serve the replication feed on $(docv): stream WAL segments and \
           the live journal tail to followers. Requires --wal-dir. 0 binds \
           an ephemeral port announced on stdout as REPL_PORT=<n>.")

let follow_arg =
  Arg.(
    value & opt (some string) None
    & info [ "follow" ] ~docv:"HOST:PORT"
        ~doc:
          "Run as a streaming follower of the primary whose replication feed \
           listens at $(docv): mirror its WAL into --wal-dir, apply every \
           record, and serve read-only traffic until promoted (SIGUSR1 or a \
           {\"req\":\"promote\"} request). Requires --wal-dir.")

let no_plan_fetch_arg =
  Arg.(
    value & flag
    & info [ "no-plan-fetch" ]
        ~doc:
          "Follower mode: never fetch plan payloads over the feed's \
           plan-fetch session; prime the warm cache from the plan store or \
           by local re-planning only.")

let parse_follow s =
  match String.rindex_opt s ':' with
  | None -> failwith (Printf.sprintf "dmfd: --follow %S is not HOST:PORT" s)
  | Some i -> (
    let host = String.sub s 0 i in
    let port_s = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port_s with
    | Some port when port > 0 && port < 65536 && host <> "" -> (host, port)
    | _ -> failwith (Printf.sprintf "dmfd: --follow %S is not HOST:PORT" s))

(* Follower mode: no queue, no pool, no journal of its own — just the
   replication engine plus a read-only serving loop, promotable into
   the full daemon below. *)
let run_follower ~stdio ~host ~port ~workers ~queue_capacity ~cache_capacity
    ~wal_dir ~fsync_batch ~fsync_ms ~snapshot_every ~plan_store ~no_plan_fetch
    ~upstream =
  let upstream_host, upstream_port = parse_follow upstream in
  let follower =
    Replication.Follower.create
      {
        Replication.Follower.host = upstream_host;
        port = upstream_port;
        dir = wal_dir;
        cache_capacity;
        queue_capacity;
        workers;
        fsync = { Durable.Wal.every_n = fsync_batch; every_ms = fsync_ms };
        snapshot_every;
        store = plan_store;
        fetch_plans = not no_plan_fetch;
        reconnect_ms = 200.;
      }
  in
  Replication.Follower.start follower;
  let shutdown_lock = Mutex.create () in
  let stopped = ref false in
  let[@dmflint.allow
       "blocking-under-lock: shutdown_lock exists precisely to make one \
        caller do the blocking teardown while the loser waits for it; \
        nothing else ever takes this lock"] shutdown_once () =
    Mutex.lock shutdown_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock shutdown_lock)
      (fun () ->
        if not !stopped then begin
          stopped := true;
          Replication.Follower.close follower
        end)
  in
  let shutdown _signal =
    ignore
      (Thread.create
         (fun () ->
           shutdown_once ();
           exit 0)
         ())
  in
  Sys.set_signal Sys.sigterm (Sys.Signal_handle shutdown);
  Sys.set_signal Sys.sigint (Sys.Signal_handle shutdown);
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Sys.set_signal Sys.sigusr1
    (Sys.Signal_handle
       (fun _ ->
         ignore
           (Thread.create
              (fun () ->
                Replication.Follower.promote follower;
                Printf.eprintf "dmfd: promoted to primary (SIGUSR1)\n%!")
              ())));
  Printf.eprintf "dmfd: following %s:%d, mirroring into %s\n%!" upstream_host
    upstream_port wal_dir;
  if stdio then begin
    Replication.Follower.serve_channels follower stdin stdout;
    shutdown_once ()
  end
  else
    let on_listen bound = Printf.printf "PORT=%d\n%!" bound in
    Replication.Follower.serve_tcp follower ~on_listen ~host ~port

let run stdio host port workers queue_capacity cache_capacity wal_dir
    fsync_batch fsync_ms snapshot_every store_dir store_max_bytes repl_port
    follow no_plan_fetch =
  Service.Validate.run_cli (fun () ->
      let plan_store =
        Option.map
          (fun dir ->
            Durable.Plan_store.open_store ?max_bytes:store_max_bytes ~dir ())
          store_dir
      in
      (match follow with
      | Some _ when repl_port <> None ->
        failwith "dmfd: --follow and --repl-port are mutually exclusive"
      | _ -> ());
      match follow with
      | Some upstream ->
        let wal_dir =
          match wal_dir with
          | Some dir -> dir
          | None -> failwith "dmfd: --follow requires --wal-dir"
        in
        run_follower ~stdio ~host ~port ~workers ~queue_capacity
          ~cache_capacity ~wal_dir ~fsync_batch ~fsync_ms ~snapshot_every
          ~plan_store ~no_plan_fetch ~upstream
      | None ->
      let store =
        Option.map
          (fun ps ->
            {
              Service.Store.find = Durable.Plan_store.find ps;
              add = Durable.Plan_store.add ps;
              stats = (fun () -> Durable.Plan_store.stats_json ps);
            })
          plan_store
      in
      let durable =
        Option.map
          (fun dir ->
            let config =
              {
                Durable.Manager.dir;
                fsync = { Durable.Wal.every_n = fsync_batch; every_ms = fsync_ms };
                snapshot_every;
                cache_capacity;
              }
            in
            Durable.Manager.start ?store:plan_store config)
          wal_dir
      in
      let feed =
        match (repl_port, durable) with
        | None, _ -> None
        | Some _, None -> failwith "dmfd: --repl-port requires --wal-dir"
        | Some rport, Some (manager, _) ->
          let fetch_plan spec =
            match plan_store with
            | None -> None
            | Some ps ->
              Option.map Durable.Plan_store.encode_prepared
                (Durable.Plan_store.find ps spec)
          in
          let feed =
            Replication.Feed.create
              {
                Replication.Feed.dir = Durable.Manager.dir manager;
                last_seq = (fun () -> Durable.Manager.last_seq manager);
                fetch_plan;
              }
          in
          Durable.Manager.subscribe_journal manager
            (Replication.Feed.notify feed);
          Some (rport, feed)
      in
      let repl_stats =
        Option.map (fun (_, f) () -> Replication.Feed.stats_json f) feed
      in
      let server =
        match durable with
        | None ->
          Service.Server.create ?workers ~queue_capacity ~cache_capacity ?store
            ()
        | Some (manager, _) ->
          Service.Server.create ?workers ~queue_capacity ~cache_capacity
            ~on_accept:(Durable.Manager.on_accept manager)
            ~on_complete:(fun ~spec ~requests ~ok ->
              Durable.Manager.on_complete manager ~spec ~requests ~ok)
            ~wal_stats:(fun () -> Durable.Manager.stats_json manager)
            ?repl_stats ?store ()
      in
      (match feed with
      | None -> ()
      | Some (rport, feed) ->
        ignore
          (Thread.create
             (fun () ->
               Replication.Feed.serve_tcp feed
                 ~on_listen:(fun bound ->
                   (* Machine-parseable, like PORT=: supervisors launch
                      `--repl-port 0` and read back where the feed
                      landed. *)
                   Printf.printf "REPL_PORT=%d\n%!" bound;
                   Printf.eprintf "dmfd: replication feed on %s:%d\n%!" host
                     bound)
                 ~host ~port:rport)
             ()));
      (match (plan_store, durable) with
      | Some ps, None ->
        Printf.eprintf "dmfd: plan store at %s (%d entries)\n%!"
          (Durable.Plan_store.dir ps)
          (Durable.Plan_store.stats ps).Durable.Plan_store.entries
      | _ -> ());
      (match durable with
      | None -> ()
      | Some (manager, recovery) ->
        let t0 = Unix.gettimeofday () in
        let cache = Durable.Manager.recovered_cache manager in
        let pending = Durable.Manager.recovered_pending manager in
        let primed = Service.Server.prime server ~cache ~pending in
        let plans =
          primed.Service.Server.replanned + primed.Service.Server.from_store
        in
        let prime_ms = (Unix.gettimeofday () -. t0) *. 1000. in
        Durable.Manager.note_prime manager ~ms:prime_ms
          ~replanned:primed.Service.Server.replanned
          ~from_store:primed.Service.Server.from_store
          ~pending:(List.length pending);
        Printf.eprintf
          "dmfd: recovered %d plan(s)%s and %d pending job(s) from %d \
           replayed record(s)%s%s in %.1f ms\n\
           %!"
          plans
          (if plan_store <> None then
             Printf.sprintf " (%d from the plan store, %d re-planned)"
               primed.Service.Server.from_store primed.Service.Server.replanned
           else "")
          (List.length pending) recovery.Durable.Replay.replayed
          (match recovery.Durable.Replay.snapshot_seq with
          | Some s -> Printf.sprintf " on snapshot #%d" s
          | None -> "")
          (if recovery.Durable.Replay.truncated > 0 then
             Printf.sprintf " (torn tail: %d line(s) dropped)"
               recovery.Durable.Replay.truncated
           else "")
          (recovery.Durable.Replay.wall_ms +. prime_ms);
        if recovery.Durable.Replay.gap then
          Printf.eprintf
            "dmfd: WARNING: journal had a sequence gap; snapshotted the \
             recovered state and quarantined %d segment(s)\n\
             %!"
            (Durable.Manager.quarantined_segments manager));
      (* Clean shutdown: drain the queue, join the workers, sync +
         snapshot + compact the journal — exactly once, whether it is
         triggered by SIGTERM/SIGINT or by stdin reaching EOF in
         --stdio mode (both can fire; the second caller waits for the
         first and then no-ops, so Pool.join never runs twice). *)
      let shutdown_lock = Mutex.create () in
      let stopped = ref false in
      let[@dmflint.allow
           "blocking-under-lock: shutdown_lock exists precisely to make \
            one caller do the blocking teardown (worker join + journal \
            close) while the loser waits for it; nothing else ever \
            takes this lock"] shutdown_once () =
        Mutex.lock shutdown_lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock shutdown_lock)
          (fun () ->
            if not !stopped then begin
              stopped := true;
              (match feed with
              | Some (_, feed) -> Replication.Feed.stop feed
              | None -> ());
              Service.Server.stop server;
              match durable with
              | Some (manager, _) -> Durable.Manager.close manager
              | None -> ()
            end)
      in
      (* The handler runs on whichever thread takes the signal —
         possibly one that holds a server lock — so the actual teardown
         happens on a fresh thread that can take those locks
         normally. *)
      let shutdown _signal =
        ignore
          (Thread.create
             (fun () ->
               shutdown_once ();
               exit 0)
             ())
      in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle shutdown);
      Sys.set_signal Sys.sigint (Sys.Signal_handle shutdown);
      if stdio then begin
        Service.Server.serve_channels server stdin stdout;
        shutdown_once ()
      end
      else
        (* The bound-port announcement goes to stdout (logs go to
           stderr) so a supervisor can launch `--port 0` shards and
           read back where each one landed. *)
        let on_listen bound =
          Printf.printf "PORT=%d\n%!" bound;
          Printf.eprintf "dmfd: serving on %s:%d with %d worker(s)%s\n%!" host
            bound
            (Service.Server.workers server)
            ((match wal_dir with
             | Some dir -> Printf.sprintf ", journaling to %s" dir
             | None -> "")
            ^
            match store_dir with
            | Some dir -> Printf.sprintf ", plan store at %s" dir
            | None -> "")
        in
        Service.Server.serve_tcp server ~on_listen ~host ~port)

let cmd =
  let doc = "demand-driven mixture-preparation server (NDJSON over stdio/TCP)" in
  let term =
    Term.(
      const run $ stdio_arg $ host_arg $ port_arg $ workers_arg $ queue_arg
      $ cache_arg $ wal_dir_arg $ fsync_batch_arg $ fsync_ms_arg
      $ snapshot_arg $ store_dir_arg $ store_max_bytes_arg $ repl_port_arg
      $ follow_arg $ no_plan_fetch_arg)
  in
  Cmd.v (Cmd.info "dmfd" ~version:"1.0.0" ~doc) term

let () = exit (Cmd.eval cmd)
