(** NDJSON proxy that shards a dmfd fleet by coalesce key.

    The router listens on the daemon protocol and forwards [prepare]
    requests — as raw bytes — to the shard owning
    [Request.coalesce_key] on a consistent-hash {!Ring}.  Requests that
    could merge into one planning job therefore always meet in the same
    daemon, so demand-summing coalescing and the plan cache (whose key
    refines the coalesce key) work exactly as in a single daemon.

    Per client connection, responses are emitted strictly in request
    order even though shards answer concurrently.  [ping] and the
    [route] placement diagnostic are answered locally; [stats] fans out
    to every node — primaries and followers — and merges
    deterministically ({!Stats.merge}).  A dead shard yields error
    responses within the shard client's bounded retry budget — never a
    hang — and is reported [healthy:false] in merged stats (health =
    did it answer this stats probe).

    A shard may register a hot standby (a [dmfd --follow] node): the
    ring still hashes to the primary, but every forwarded request leads
    with whichever of the pair looks healthy (primary preferred) and
    falls through to the other exactly once on transport failure — so
    reads fail over to the follower's warm cache while the primary is
    down, and writes follow as soon as the follower is promoted. *)

type t

val create :
  ?vnodes:int ->
  ?retries:int ->
  ?backoff_ms:float ->
  ?cooldown_ms:float ->
  ((string * int) * (string * int) option) list ->
  t
(** [create endpoints] builds the ring over [(host, port)] primaries,
    each optionally paired with a follower endpoint; the list order
    defines shard indices.  Connections are opened lazily on first use.
    Defaults: {!Ring.default_vnodes}, 3 retries, 50 ms backoff, 1 s
    cooldown.
    @raise Invalid_argument on an empty endpoint list. *)

val shards : t -> int

val followers : t -> int
(** Number of shards with a registered follower. *)

val route : t -> Service.Request.spec -> int * string
(** Owner of a spec's coalesce key: [(shard index, "host:port")].
    Pure ring arithmetic — no I/O. *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Proxy one client connection until EOF, preserving request order in
    the responses. *)

val serve_tcp : ?on_listen:(int -> unit) -> t -> host:string -> port:int -> unit
(** Accept loop; one thread per client connection.  [on_listen]
    receives the bound port after [listen] — with [port = 0] this is
    the kernel-chosen ephemeral port.  Never returns normally. *)

val stats_json : t -> Service.Jsonl.t
(** Blocking cluster-wide stats body (the fan-out the [stats] request
    uses), for embedders and tests. *)

val close : t -> unit
(** Close every shard connection, failing outstanding requests. *)
