lib/viz/svg.ml: Array Buffer Float List Printf String
