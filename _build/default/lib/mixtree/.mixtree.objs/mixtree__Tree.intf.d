lib/mixtree/tree.mli: Dmf Format
