type stats = {
  snapshot_seq : int option;
  replayed : int;
  truncated : int;
  gap : bool;
  wall_ms : float;
  next_seq : int;
  repairs : (string * int) list;
}

let recover ~dir ~cache_capacity =
  let t0 = Unix.gettimeofday () in
  let state, snapshot_seq =
    match Snapshot.load_latest ~dir ~cache_capacity with
    | Some (seq, state) -> (state, Some seq)
    | None -> (State.create ~cache_capacity, None)
  in
  let replayed = ref 0 and truncated = ref 0 and gap = ref false in
  let repairs = ref [] in
  let expected = ref (match snapshot_seq with Some s -> s + 1 | None -> 1) in
  (try
     List.iter
       (fun (_start, path) ->
         let ic = open_in_bin path in
         Fun.protect
           ~finally:(fun () -> close_in_noerr ic)
           (fun () ->
             (* Byte offset just past the last record whose bytes
                verified, so a torn segment can be cut back to its valid
                prefix before anything appends to it again. *)
             let good_end = ref 0 in
             (* Count every line left in the segment: once one record is
                torn, the ones after it are unusable (their sequence
                numbers would gap) even if their bytes verify. *)
             let drain_rest () =
               let rec go n =
                 match Service.Jsonl.read_line ic with
                 | Service.Jsonl.Eof -> n
                 | _ -> go (n + 1)
               in
               truncated := !truncated + 1 + go 0;
               repairs := (path, !good_end) :: !repairs
             in
             let rec lines () =
               match Service.Jsonl.read_line ic with
               | Service.Jsonl.Eof -> ()
               | Service.Jsonl.Oversized _ -> drain_rest ()
               | Service.Jsonl.Line l | Service.Jsonl.Tail l -> (
                 match Record.decode l with
                 | Error _ -> drain_rest ()
                 | Ok (seq, _) when seq < !expected ->
                   (* Already covered by the snapshot. *)
                   good_end := pos_in ic;
                   lines ()
                 | Ok (seq, kind) when seq = !expected ->
                   State.apply state kind;
                   incr replayed;
                   expected := seq + 1;
                   good_end := pos_in ic;
                   lines ()
                 | Ok _ ->
                   gap := true;
                   raise Exit)
             in
             lines ()))
       (Wal.segments ~dir)
   with Exit -> ());
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  ( state,
    {
      snapshot_seq;
      replayed = !replayed;
      truncated = !truncated;
      gap = !gap;
      wall_ms;
      next_seq = !expected;
      repairs = List.rev !repairs;
    } )
