examples/assay_feed.mli:
