lib/chip/layout.ml: Array Buffer Chip_module Dmf Geometry Hashtbl List Printf String
