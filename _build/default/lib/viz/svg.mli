(** A minimal SVG document builder.

    Just enough scalable-vector output for the Gantt charts, chip maps
    and wear heatmaps — no external dependency, correct escaping, nested
    groups. *)

type t
(** An SVG element tree. *)

val rect :
  x:float -> y:float -> w:float -> h:float ->
  ?rx:float -> ?fill:string -> ?stroke:string -> ?opacity:float -> unit -> t

val line :
  x1:float -> y1:float -> x2:float -> y2:float ->
  ?stroke:string -> ?width:float -> unit -> t

val text :
  x:float -> y:float -> ?size:float -> ?fill:string -> ?anchor:string ->
  string -> t
(** The string content is XML-escaped. *)

val title : string -> t
(** A tooltip child element. *)

val group : ?transform:string -> t list -> t

val document : width:float -> height:float -> t list -> string
(** Render a standalone SVG document. *)

val palette : int -> string
(** A stable categorical colour for an index (used to colour component
    trees, module kinds, ...). *)
