(** M_Mixers_Schedule (Algorithm 1).

    Level-wise list scheduling of a mixing forest with [Mc] on-chip
    mixers: schedulable nodes (both input droplets available) are enqueued
    level-by-level from the bottom of the forest and dequeued [Mc] per
    time-cycle; once every level has been examined the backlog is drained,
    admitting nodes as their predecessors complete.  Deepest-first
    ordering makes MMS coincide with Hu's optimal schedule on a single
    mixing tree. *)

val policy : Sched_core.policy
(** MMS as a ready-set policy over the shared {!Sched_core} engine: a
    FIFO queue with admission batches sorted by (level, tree, bfs). *)

val schedule : plan:Plan.t -> mixers:int -> Schedule.t
(** [schedule ~plan ~mixers] runs MMS.  @raise Invalid_argument if
    [mixers < 1]. *)
