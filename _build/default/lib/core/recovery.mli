(** Checkpoint-based error recovery.

    On a cyberphysical biochip a (1:1) split occasionally fails — the
    merged droplet does not separate cleanly and both daughters must be
    discarded.  When a checkpoint detects such a failure mid-run, the
    remaining demand has to be re-produced; restarting from scratch
    wastes everything already on the chip.  This module salvages instead:
    it computes which droplets survive the failure (spares parked in
    storage for later consumers, and targets already emitted) and builds
    a {e recovery forest} whose droplet pool is seeded with the
    survivors ({!Forest.of_tree} with [reserves]), so only the genuinely
    missing mixtures are recomputed.

    The recovery plan is an ordinary {!Plan.t} (with {!Plan.Reserve}
    sources) and can be scheduled with MMS or SRS like any other; its
    cost is compared against the restart-from-scratch alternative. *)

type t = {
  failed_node : int;
  failure_cycle : int;  (** Cycle at which the failed split executed. *)
  delivered : int;  (** Target droplets already emitted before the failure. *)
  salvaged : Dmf.Mixture.t array;
      (** Values of the surviving stored droplets seeding the recovery. *)
  remaining_demand : int;
  recovery_plan : Plan.t option;
      (** [None] when the failure happens after the demand was met. *)
  fresh_restart : Plan.t option;
      (** The same remaining demand prepared from scratch, for
          comparison. *)
}

val recover :
  algorithm:Mixtree.Algorithm.t ->
  plan:Plan.t ->
  schedule:Schedule.t ->
  failed_node:int ->
  t
(** [recover ~algorithm ~plan ~schedule ~failed_node] assumes execution
    followed [schedule] until the cycle of [failed_node], whose two
    output droplets were then lost; execution halts there and the
    recovery run starts fresh with the salvaged droplets in storage.
    The recovery forest uses [algorithm]'s base tree of the plan's
    ratio.
    @raise Invalid_argument if [failed_node] is not a node of [plan], or
    if the plan prepares multiple targets (recover one target at a
    time). *)

val reagent_saving : t -> int
(** Input droplets saved by salvaging compared to a fresh restart
    (0 when no recovery is needed). *)
