lib/core/report.mli:
