module Wire = Mdst.Plan_codec.Wire

let magic = "DMFPS001"
let tag_spec = 0x4B (* 'K' *)
let tag_prepared = 0x52 (* 'R' *)

(* ------------------------------------------------------------------ *)
(* Canonical spec bytes (the hash preimage)                            *)

let spec_bytes (spec : Service.Request.spec) =
  let b = Wire.writer () in
  Wire.u8 b tag_spec;
  Wire.u8 b Mdst.Plan_codec.version;
  let parts = Dmf.Ratio.parts spec.Service.Request.ratio in
  Wire.u32 b (Array.length parts);
  Array.iter (Wire.u32 b) parts;
  Wire.u32 b spec.Service.Request.demand;
  Wire.bytes b (Mixtree.Algorithm.name spec.Service.Request.algorithm);
  Wire.bytes b (Mdst.Scheduler.name spec.Service.Request.scheduler);
  (match spec.Service.Request.mixers with
  | None -> Wire.bool b false
  | Some m ->
    Wire.bool b true;
    Wire.u32 b m);
  (match spec.Service.Request.storage_limit with
  | None -> Wire.bool b false
  | Some s ->
    Wire.bool b true;
    Wire.u32 b s);
  Wire.contents b

let key_of_spec spec = Mdst.Plan_codec.hash_hex (spec_bytes spec)

(* ------------------------------------------------------------------ *)
(* Prepared-result payload                                             *)

let w_summary b (s : Service.Response.summary) =
  Wire.bytes b s.Service.Response.scheme;
  Wire.u32 b s.Service.Response.mixers;
  Wire.u32 b s.Service.Response.demand;
  Wire.u32 b s.Service.Response.tc;
  Wire.u32 b s.Service.Response.q;
  Wire.u32 b s.Service.Response.tms;
  Wire.u32 b s.Service.Response.waste;
  Wire.u32 b s.Service.Response.input_total;
  Wire.u32 b s.Service.Response.trees;
  Wire.u32 b s.Service.Response.passes;
  Wire.bool b s.Service.Response.within_limit

let r_summary r : Service.Response.summary =
  let scheme = Wire.r_bytes r in
  let mixers = Wire.r_u32 r in
  let demand = Wire.r_u32 r in
  let tc = Wire.r_u32 r in
  let q = Wire.r_u32 r in
  let tms = Wire.r_u32 r in
  let waste = Wire.r_u32 r in
  let input_total = Wire.r_u32 r in
  let trees = Wire.r_u32 r in
  let passes = Wire.r_u32 r in
  let within_limit = Wire.r_bool r in
  {
    scheme;
    mixers;
    demand;
    tc;
    q;
    tms;
    waste;
    input_total;
    trees;
    passes;
    within_limit;
  }

let w_instr b (c : Mdst.Instr.counters) =
  Wire.int b c.Mdst.Instr.cycles;
  Wire.int b c.Mdst.Instr.fired;
  Wire.int b c.Mdst.Instr.stores;
  Wire.int b c.Mdst.Instr.evictions;
  Wire.int b c.Mdst.Instr.peak_storage;
  Wire.f64 b c.Mdst.Instr.avg_storage;
  Wire.int b c.Mdst.Instr.peak_ready;
  Wire.f64 b c.Mdst.Instr.mixer_occupancy

let r_instr r : Mdst.Instr.counters =
  let cycles = Wire.r_int r in
  let fired = Wire.r_int r in
  let stores = Wire.r_int r in
  let evictions = Wire.r_int r in
  let peak_storage = Wire.r_int r in
  let avg_storage = Wire.r_f64 r in
  let peak_ready = Wire.r_int r in
  let mixer_occupancy = Wire.r_f64 r in
  {
    cycles;
    fired;
    stores;
    evictions;
    peak_storage;
    avg_storage;
    peak_ready;
    mixer_occupancy;
  }

let encode_prepared (p : Service.Prep.prepared) =
  let b = Wire.writer () in
  Wire.u8 b tag_prepared;
  Wire.u8 b Mdst.Plan_codec.version;
  w_summary b p.Service.Prep.summary;
  w_instr b p.Service.Prep.instr;
  (match p.Service.Prep.plan with
  | None -> Wire.bool b false
  | Some plan ->
    Wire.bool b true;
    Wire.bytes b (Mdst.Plan_codec.encode_plan plan));
  (match (p.Service.Prep.schedule, p.Service.Prep.plan) with
  | None, _ -> Wire.bool b false
  | Some _, None ->
    invalid_arg "Plan_store.encode_prepared: schedule without plan"
  | Some s, Some plan ->
    Wire.bool b true;
    Wire.bytes b (Mdst.Plan_codec.encode_schedule ~plan s));
  Wire.contents b

let decode_prepared buf : (Service.Prep.prepared, string) result =
  let ( let* ) = Result.bind in
  match
    let r = Wire.reader buf in
    if Wire.r_u8 r <> tag_prepared then Error "not a prepared-result record"
    else begin
      let v = Wire.r_u8 r in
      if v <> Mdst.Plan_codec.version then
        Error
          (Printf.sprintf "codec version %d, expected %d" v
             Mdst.Plan_codec.version)
      else begin
        let summary = r_summary r in
        let instr = r_instr r in
        let* plan =
          if Wire.r_bool r then
            Result.map Option.some (Mdst.Plan_codec.decode_plan (Wire.r_bytes r))
          else Ok None
        in
        let* schedule =
          if Wire.r_bool r then
            match plan with
            | None -> Error "schedule without plan"
            | Some plan ->
              Result.map Option.some
                (Mdst.Plan_codec.decode_schedule ~plan (Wire.r_bytes r))
          else Ok None
        in
        Wire.expect_end r;
        Ok { Service.Prep.summary; instr; plan; schedule }
      end
    end
  with
  | result -> result
  | exception Wire.Corrupt msg -> Error msg
  | exception Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* File framing                                                        *)

let encode_entry ~spec_key ~payload =
  let b = Wire.writer () in
  Wire.bytes b spec_key;
  Wire.bytes b payload;
  let body = Wire.contents b in
  let crc = Crc32.string body in
  let f = Wire.writer () in
  Wire.u32 f crc;
  magic ^ body ^ Wire.contents f

let decode_entry image =
  let mn = String.length magic in
  let n = String.length image in
  if n < mn + 4 then Error "truncated entry"
  else if String.sub image 0 mn <> magic then Error "bad magic"
  else begin
    let body = String.sub image mn (n - mn - 4) in
    let stored_crc =
      let r = Wire.reader (String.sub image (n - 4) 4) in
      Wire.r_u32 r
    in
    if Crc32.string body <> stored_crc then Error "CRC mismatch"
    else
      match
        let r = Wire.reader body in
        let spec_key = Wire.r_bytes r in
        let payload = Wire.r_bytes r in
        Wire.expect_end r;
        (spec_key, payload)
      with
      | pair -> Ok pair
      | exception Wire.Corrupt msg -> Error msg
  end

(* ------------------------------------------------------------------ *)
(* The store                                                           *)

type t = {
  dir : string;
  max_bytes : int option;
  mu : Mutex.t;  (** Guards the counters below — never held across I/O. *)
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable errors : int;
  mutable gc_runs : int;
  mutable gc_removed : int;
  mutable tmp_seq : int;
}

let dir t = t.dir

let open_store ?max_bytes ~dir () =
  Wal.ensure_dir dir;
  {
    dir;
    max_bytes;
    mu = Mutex.create ();
    hits = 0;
    misses = 0;
    writes = 0;
    errors = 0;
    gc_runs = 0;
    gc_removed = 0;
    tmp_seq = 0;
  }

let entry_prefix = "ps-"
let entry_suffix = ".plan"
let entry_name key = entry_prefix ^ key ^ entry_suffix
let entry_path t spec = Filename.concat t.dir (entry_name (key_of_spec spec))

let is_entry name =
  let pn = String.length entry_prefix and sn = String.length entry_suffix in
  let n = String.length name in
  n = pn + 32 + sn
  && String.sub name 0 pn = entry_prefix
  && String.sub name (n - sn) sn = entry_suffix

let entries t =
  match Sys.readdir t.dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun name ->
           if not (is_entry name) then None
           else
             let path = Filename.concat t.dir name in
             match Unix.stat path with
             | st -> Some (path, st.Unix.st_size, st.Unix.st_mtime)
             | exception Unix.Unix_error _ -> None)

let try_remove path =
  match Sys.remove path with () -> true | exception Sys_error _ -> false

let read_file path =
  match In_channel.with_open_bin path In_channel.input_all with
  | image -> Some image
  | exception Sys_error _ -> None

(* A bad entry (torn write that still renamed, version drift, hash
   collision) is deleted on sight so it cannot cost a decode attempt on
   every future lookup. *)
let drop_bad t path =
  ignore (try_remove path);
  (Mutex.lock t.mu;
     t.errors <- t.errors + 1;
     Mutex.unlock t.mu)

let find t spec =
  let spec_key = spec_bytes spec in
  let path = Filename.concat t.dir (entry_name (Mdst.Plan_codec.hash_hex spec_key)) in
  match read_file path with
  | None ->
    Mutex.lock t.mu;
    t.misses <- t.misses + 1;
    Mutex.unlock t.mu;
    None
  | Some image -> (
    match decode_entry image with
    | Error _ ->
      drop_bad t path;
      Mutex.lock t.mu;
    t.misses <- t.misses + 1;
    Mutex.unlock t.mu;
      None
    | Ok (stored_key, payload) ->
      if not (String.equal stored_key spec_key) then begin
        (* Same 128-bit hash, different inputs: the guard this embedded
           key exists for.  Treat as absent; the colliding entry loses. *)
        drop_bad t path;
        Mutex.lock t.mu;
    t.misses <- t.misses + 1;
    Mutex.unlock t.mu;
        None
      end
      else
        match decode_prepared payload with
        | Error _ ->
          drop_bad t path;
          Mutex.lock t.mu;
    t.misses <- t.misses + 1;
    Mutex.unlock t.mu;
          None
        | Ok prepared ->
          Mutex.lock t.mu;
          t.hits <- t.hits + 1;
          Mutex.unlock t.mu;
          Some prepared)

let write_all fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd s !written (n - !written)
  done

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | dfd ->
    (try Unix.fsync dfd with Unix.Unix_error _ -> ());
    Unix.close dfd
  | exception Unix.Unix_error _ -> ()

let gc t =
  match t.max_bytes with
  | None -> ()
  | Some max_bytes ->
    let total ents = List.fold_left (fun a (_, sz, _) -> a + sz) 0 ents in
    let ents = entries t in
    if total ents > max_bytes then begin
      (* Advisory cross-process exclusion, same discipline as the
         manager's LOCK: a contended lock means another shard is already
         collecting, so this round is simply skipped. *)
      match
        Unix.openfile
          (Filename.concat t.dir "GC.LOCK")
          [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
      with
      | exception Unix.Unix_error _ -> ()
      | fd ->
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            match Unix.lockf fd Unix.F_TLOCK 0 with
            | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
              ()
            | exception Unix.Unix_error _ -> ()
            | () ->
              (* Re-list under the lock; oldest mtime first. *)
              let ents =
                List.sort
                  (fun (_, _, a) (_, _, b) -> Float.compare a b)
                  (entries t)
              in
              let target = max_bytes * 4 / 5 in
              let remaining = ref (total ents) in
              let removed = ref 0 in
              List.iter
                (fun (path, sz, _) ->
                  if !remaining > target && try_remove path then begin
                    remaining := !remaining - sz;
                    incr removed
                  end)
                ents;
              Mutex.lock t.mu;
              t.gc_runs <- t.gc_runs + 1;
              t.gc_removed <- t.gc_removed + !removed;
              Mutex.unlock t.mu)
    end

let add t spec prepared =
  match encode_prepared prepared with
  | exception Invalid_argument _ ->
    (Mutex.lock t.mu;
     t.errors <- t.errors + 1;
     Mutex.unlock t.mu)
  | payload ->
    let spec_key = spec_bytes spec in
    let image = encode_entry ~spec_key ~payload in
    let name = entry_name (Mdst.Plan_codec.hash_hex spec_key) in
    let path = Filename.concat t.dir name in
    let seq =
      Mutex.lock t.mu;
      t.tmp_seq <- t.tmp_seq + 1;
      let seq = t.tmp_seq in
      Mutex.unlock t.mu;
      seq
    in
    let tmp =
      Filename.concat t.dir
        (Printf.sprintf "%s.tmp.%d.%d" name (Unix.getpid ()) seq)
    in
    (match
       Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
     with
    | exception Unix.Unix_error _ ->
      (Mutex.lock t.mu;
     t.errors <- t.errors + 1;
     Mutex.unlock t.mu)
    | fd -> (
      match
        Fun.protect
          ~finally:(fun () -> Unix.close fd)
          (fun () ->
            write_all fd image;
            Unix.fsync fd)
      with
      | exception Unix.Unix_error _ ->
        ignore (try_remove tmp);
        (Mutex.lock t.mu;
     t.errors <- t.errors + 1;
     Mutex.unlock t.mu)
      | () -> (
        match Unix.rename tmp path with
        | exception Unix.Unix_error _ ->
          ignore (try_remove tmp);
          (Mutex.lock t.mu;
     t.errors <- t.errors + 1;
     Mutex.unlock t.mu)
        | () ->
          fsync_dir t.dir;
          Mutex.lock t.mu;
          t.writes <- t.writes + 1;
          Mutex.unlock t.mu;
          gc t)))

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)

type stats = {
  entries : int;
  bytes : int;
  hits : int;
  misses : int;
  writes : int;
  errors : int;
  gc_runs : int;
  gc_removed : int;
  max_bytes : int option;
}

let stats t =
  let ents = entries t in
  let bytes = List.fold_left (fun a (_, sz, _) -> a + sz) 0 ents in
  Mutex.lock t.mu;
  let s =
    {
      entries = List.length ents;
      bytes;
      hits = t.hits;
      misses = t.misses;
      writes = t.writes;
      errors = t.errors;
      gc_runs = t.gc_runs;
      gc_removed = t.gc_removed;
      max_bytes = t.max_bytes;
    }
  in
  Mutex.unlock t.mu;
  s

let stats_json t =
  let s = stats t in
  Service.Jsonl.Obj
    ([
       ("entries", Service.Jsonl.Int s.entries);
       ("bytes", Service.Jsonl.Int s.bytes);
       ("hits", Service.Jsonl.Int s.hits);
       ("misses", Service.Jsonl.Int s.misses);
       ("writes", Service.Jsonl.Int s.writes);
       ("errors", Service.Jsonl.Int s.errors);
       ("gc_runs", Service.Jsonl.Int s.gc_runs);
       ("gc_removed", Service.Jsonl.Int s.gc_removed);
     ]
    @
    match s.max_bytes with
    | None -> []
    | Some m -> [ ("max_bytes", Service.Jsonl.Int m) ])
