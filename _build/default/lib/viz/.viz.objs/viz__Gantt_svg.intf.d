lib/viz/gantt_svg.mli: Mdst
