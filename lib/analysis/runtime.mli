(** Process-wide concurrency-discipline helpers.

    The static side of the discipline lives in [lib/analysis/lint]
    (the [dmflint] analyzer over dune's [.cmt] typed trees); this
    module is the runtime side: the spawn ledger that turns the
    "fork before any domain" convention into a loud assertion, and
    the EINTR retry wrappers the analyzer's [eintr-unsafe] rule
    steers signal-path code towards. *)

val note_domain_spawn : unit -> unit
(** Record that this process is about to spawn (or just spawned) an
    OCaml domain.  Called by every domain-spawning wrapper in the
    repo ([Mdst.Par], [Service.Pool]); call it too if you use
    [Domain.spawn] directly. *)

val domains_spawned : unit -> int
(** How many domain spawns have been recorded in this process. *)

val assert_no_domains_spawned : unit -> unit
(** Fail (with [Invalid_argument]) unless no domain has ever been
    spawned in this process.  Call it immediately before [Unix.fork]
    or [Unix.create_process]: OCaml 5 does not support forking once
    a domain has been spawned, and the failure mode is a child
    deadlocked on a runtime lock — this assertion fails loudly at
    the fork site instead.  The static counterpart is dmflint's
    [fork-after-domain] rule. *)

val retry_eintr : (unit -> 'a) -> 'a
(** Run [f], retrying while it raises [Unix.Unix_error (EINTR, _, _)].
    Use it around interruptible syscalls ([accept], [connect],
    [read], [waitpid], ...) in executables that install signal
    handlers; dmflint's [eintr-unsafe] rule recognises this wrapper
    as a guard. *)

val read_retry : Unix.file_descr -> bytes -> int -> int -> int
(** [Unix.read] through {!retry_eintr}. *)

val write_retry : Unix.file_descr -> bytes -> int -> int -> int
(** [Unix.write] through {!retry_eintr}. *)

val waitpid_retry :
  Unix.wait_flag list -> int -> int * Unix.process_status
(** [Unix.waitpid] through {!retry_eintr}. *)
