lib/chip/pin_assign.mli: Geometry
