type fsync_policy = { every_n : int; every_ms : float }

let strict = { every_n = 1; every_ms = 0. }

type t = {
  dir : string;
  fsync : fsync_policy;
  mutable fd : Unix.file_descr;
  mutable next_seq : int;
  mutable unsynced : int;
  mutable last_sync : float;
  mutable appends : int;
  mutable fsyncs : int;
}

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let segment_name seq = Printf.sprintf "wal-%012d.ndjson" seq

let parse_name ~prefix ~suffix name =
  let pn = String.length prefix and sn = String.length suffix in
  let n = String.length name in
  if
    n > pn + sn
    && String.sub name 0 pn = prefix
    && String.sub name (n - sn) sn = suffix
  then int_of_string_opt (String.sub name pn (n - pn - sn))
  else None

let listing ~prefix ~suffix dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun name ->
           match parse_name ~prefix ~suffix name with
           | Some seq -> Some (seq, Filename.concat dir name)
           | None -> None)
    |> List.sort compare

let segments ~dir = listing ~prefix:"wal-" ~suffix:".ndjson" dir

let open_fd dir start_seq =
  Unix.openfile
    (Filename.concat dir (segment_name start_seq))
    [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
    0o644

let open_segment ~dir ~start_seq ~fsync =
  ensure_dir dir;
  {
    dir;
    fsync;
    fd = open_fd dir start_seq;
    next_seq = start_seq;
    unsynced = 0;
    last_sync = Unix.gettimeofday ();
    appends = 0;
    fsyncs = 0;
  }

let write_all fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd s !written (n - !written)
  done

let sync t =
  if t.unsynced > 0 then begin
    Unix.fsync t.fd;
    t.fsyncs <- t.fsyncs + 1;
    t.unsynced <- 0;
    t.last_sync <- Unix.gettimeofday ()
  end

let append t kind =
  let seq = t.next_seq in
  write_all t.fd (Record.encode ~seq kind ^ "\n");
  t.next_seq <- seq + 1;
  t.appends <- t.appends + 1;
  t.unsynced <- t.unsynced + 1;
  let due_count = t.fsync.every_n > 0 && t.unsynced >= t.fsync.every_n in
  let due_time =
    t.fsync.every_ms > 0.
    && (Unix.gettimeofday () -. t.last_sync) *. 1000. >= t.fsync.every_ms
  in
  if due_count || due_time then sync t;
  seq

let rotate t =
  sync t;
  Unix.close t.fd;
  t.fd <- open_fd t.dir t.next_seq;
  t.last_sync <- Unix.gettimeofday ()

let close t =
  sync t;
  Unix.close t.fd

let next_seq t = t.next_seq
let appends t = t.appends
let fsyncs t = t.fsyncs
