lib/assay/demand.mli:
