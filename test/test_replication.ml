(* lib/replication: the wire codec, the byte-verbatim sink, and a live
   primary -> follower stream end-to-end in one process (feed over an
   ephemeral TCP port, follower applying, disconnect/resume, and
   promotion to a writable primary). *)

let with_temp_dir f =
  let dir = Filename.temp_dir "replication-test" "" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name ->
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let spec_for ?(ratio = Generators.pcr16) ?(demand = 8) () =
  {
    Service.Request.ratio;
    demand;
    algorithm = Mixtree.Algorithm.MM;
    scheduler = Mdst.Scheduler.srs;
    mixers = Some 3;
    storage_limit = None;
  }

(* ------------------------------------------------------------------ *)
(* Wire codec                                                          *)

let frame_roundtrip () =
  let check frame =
    let line = Replication.Wire.to_line frame in
    match Replication.Wire.of_line line with
    | Ok frame' ->
      Alcotest.(check string)
        "frame survives its own encoding" line
        (Replication.Wire.to_line frame')
    | Error msg -> Alcotest.failf "decode failed on %s: %s" line msg
  in
  check (Replication.Wire.Subscribe { segment = 42; offset = 31337 });
  check Replication.Wire.(Subscribe start);
  check (Replication.Wire.Hello { resumed = true; last_seq = 7 });
  check (Replication.Wire.Hello { resumed = false; last_seq = 0 });
  check (Replication.Wire.Open_segment 12);
  check (Replication.Wire.At { last_seq = 9; ms = 123.5 });
  (* Snapshot payloads are arbitrary bytes: all 256 must survive. *)
  let blob = String.init 256 Char.chr in
  check (Replication.Wire.Snapshot { seq = 3; data = blob });
  (match
     Replication.Wire.of_line
       (Replication.Wire.to_line
          (Replication.Wire.Snapshot { seq = 3; data = blob }))
   with
  | Ok (Replication.Wire.Snapshot { data; _ }) ->
    Alcotest.(check string) "binary snapshot data intact" blob data
  | Ok _ | Error _ -> Alcotest.fail "snapshot frame lost its payload");
  check (Replication.Wire.Plan_get (spec_for ()));
  check (Replication.Wire.Plan { key = "k"; data = Some blob });
  check (Replication.Wire.Plan { key = "k"; data = None })

let classify_lines () =
  let record =
    Durable.Record.encode ~seq:1 (Durable.Record.Accepted (spec_for ()))
  in
  (match Replication.Wire.classify record with
  | Ok (`Record line) ->
    Alcotest.(check string) "record lines pass through verbatim" record line
  | Ok (`Frame _) -> Alcotest.fail "record line classified as a frame"
  | Error msg -> Alcotest.failf "record line rejected: %s" msg);
  (match Replication.Wire.classify (Replication.Wire.to_line (Replication.Wire.Open_segment 5)) with
  | Ok (`Frame (Replication.Wire.Open_segment 5)) -> ()
  | _ -> Alcotest.fail "control frame not recognized");
  match Replication.Wire.classify "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage line classified"

(* ------------------------------------------------------------------ *)
(* Sink                                                                *)

let sink_cursor_and_reset () =
  with_temp_dir (fun dir ->
      let sink = Replication.Sink.create ~dir in
      Alcotest.(check bool) "fresh mirror starts at the zero cursor" true
        (Replication.Sink.cursor sink = Replication.Wire.start);
      Replication.Sink.open_segment sink 1;
      let line =
        Durable.Record.encode ~seq:1 (Durable.Record.Accepted (spec_for ()))
      in
      Replication.Sink.append_line sink line;
      Replication.Sink.flush sink;
      let cursor = Replication.Sink.cursor sink in
      Alcotest.(check int) "cursor segment" 1 cursor.Replication.Wire.segment;
      Alcotest.(check int) "cursor offset = bytes written"
        (String.length line + 1)
        cursor.Replication.Wire.offset;
      Alcotest.(check int) "one line mirrored" 1
        (Replication.Sink.appended sink);
      Replication.Sink.close sink;
      (* Reopening reads the cursor back from the directory — the
         restart-resume path. *)
      let sink2 = Replication.Sink.create ~dir in
      Alcotest.(check bool) "cursor recovered from the listing" true
        (Replication.Sink.cursor sink2 = cursor);
      (* Reset wipes segments and snapshots but keeps the claim. *)
      Replication.Sink.put_snapshot sink2 ~seq:1 ~data:"{}";
      Replication.Sink.reset sink2;
      Alcotest.(check bool) "reset returns to the zero cursor" true
        (Replication.Sink.cursor sink2 = Replication.Wire.start);
      Alcotest.(check bool) "reset removed the segments" true
        (Durable.Wal.segments ~dir = []);
      Alcotest.(check bool) "reset removed the snapshots" true
        (Durable.Snapshot.list ~dir = []);
      Replication.Sink.close sink2)

(* lockf claims only exclude other PROCESSES, so the misuse we can
   check in-process is the protocol one: no appends before the feed
   has opened a segment. *)
let sink_append_guard () =
  with_temp_dir (fun dir ->
      let sink = Replication.Sink.create ~dir in
      (match Replication.Sink.append_line sink "orphan line" with
      | exception Failure _ -> ()
      | () -> Alcotest.fail "append before open_segment must raise");
      Replication.Sink.close sink)

(* ------------------------------------------------------------------ *)
(* Live stream end-to-end                                              *)

let await ?(timeout = 30.) what pred =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if pred () then ()
    else if Unix.gettimeofday () > deadline then
      Alcotest.failf "timed out waiting for %s" what
    else begin
      Thread.delay 0.02;
      go ()
    end
  in
  go ()

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Byte-verbatim mirroring: every segment the follower holds must be a
   prefix (here: an exact copy) of the primary's same-named file. *)
let check_mirror ~primary_dir ~follower_dir =
  let mirrored = Durable.Wal.segments ~dir:follower_dir in
  if mirrored = [] then Alcotest.fail "follower mirrored no segments";
  List.iter
    (fun (seq, path) ->
      let primary_path =
        Filename.concat primary_dir (Durable.Wal.segment_name seq)
      in
      Alcotest.(check string)
        (Printf.sprintf "segment %d is byte-identical" seq)
        (read_file primary_path) (read_file path))
    mirrored

let start_primary ~dir =
  let manager, _ =
    Durable.Manager.start
      {
        Durable.Manager.dir;
        fsync = Durable.Wal.strict;
        snapshot_every = 0;
        cache_capacity = 8;
      }
  in
  let feed =
    Replication.Feed.create
      {
        Replication.Feed.dir;
        last_seq = (fun () -> Durable.Manager.last_seq manager);
        fetch_plan = (fun _ -> None);
      }
  in
  Durable.Manager.subscribe_journal manager (Replication.Feed.notify feed);
  let m = Mutex.create () in
  let cv = Condition.create () in
  let port = ref 0 in
  ignore
    (Thread.create
       (fun () ->
         try
           Replication.Feed.serve_tcp feed
             ~on_listen:(fun bound ->
               Mutex.lock m;
               port := bound;
               Condition.signal cv;
               Mutex.unlock m)
             ~host:"127.0.0.1" ~port:0
         with _ -> ())
       ());
  Mutex.lock m;
  while !port = 0 do
    Condition.wait cv m
  done;
  let bound = !port in
  Mutex.unlock m;
  (manager, feed, bound)

let follower_config ~port ~dir =
  {
    Replication.Follower.host = "127.0.0.1";
    port;
    dir;
    cache_capacity = 8;
    queue_capacity = 16;
    workers = Some 1;
    fsync = Durable.Wal.strict;
    snapshot_every = 0;
    store = None;
    fetch_plans = false;
    reconnect_ms = 30.;
  }

let geti json key =
  match Option.bind (Service.Jsonl.member key json) Service.Jsonl.to_int with
  | Some v -> v
  | None -> Alcotest.failf "json lacks integer %s" key

let gets json key =
  match Option.bind (Service.Jsonl.member key json) Service.Jsonl.to_str with
  | Some v -> v
  | None -> Alcotest.failf "json lacks string %s" key

let stream_apply_resume_promote () =
  with_temp_dir (fun primary_dir ->
      with_temp_dir (fun follower_dir ->
          let manager, feed, port = start_primary ~dir:primary_dir in
          let journal spec =
            Durable.Manager.on_accept manager spec;
            Durable.Manager.on_complete manager ~spec ~requests:1 ~ok:true
          in
          (* Records journaled before the follower exists: it must
             stream the backlog. *)
          let spec_a = spec_for () in
          let spec_b = spec_for ~ratio:(Dmf.Ratio.of_string "3:1") () in
          journal spec_a;
          let follower =
            Replication.Follower.create (follower_config ~port ~dir:follower_dir)
          in
          Replication.Follower.start follower;
          await "backlog applied" (fun () ->
              Replication.Follower.last_applied follower >= 2);
          (* Records journaled while the follower is live: the tail. *)
          journal spec_b;
          await "live tail applied" (fun () ->
              Replication.Follower.last_applied follower >= 4);
          Alcotest.(check bool) "follower reports connected" true
            (Replication.Follower.connected follower);
          check_mirror ~primary_dir ~follower_dir;
          let repl = Replication.Follower.repl_json follower in
          Alcotest.(check string) "role follower" "follower" (gets repl "role");
          Alcotest.(check int) "applied seq in stats" 4
            (geti repl "last_applied_seq");
          (* Disconnect (close the whole follower), journal more, and
             resume from the mirror's cursor: no reset, no re-apply. *)
          Replication.Follower.close follower;
          journal spec_a;
          let follower2 =
            Replication.Follower.create (follower_config ~port ~dir:follower_dir)
          in
          Replication.Follower.start follower2;
          await "resume catches up" (fun () ->
              Replication.Follower.last_applied follower2 >= 6);
          check_mirror ~primary_dir ~follower_dir;
          let feed_stats = Replication.Feed.stats_json feed in
          Alcotest.(check string) "feed is the primary" "primary"
            (gets feed_stats "role");
          Alcotest.(check bool) "the second subscribe was a resume" true
            (geti feed_stats "resumes" >= 1);
          (* The only reset is the very first subscribe (a fresh mirror
             starts at the zero cursor); the restart resumed cleanly. *)
          Alcotest.(check int) "restart did not reset" 1
            (geti feed_stats "resets");
          (* The warm cache primed every completed spec by re-planning:
             both specs answer without the primary. *)
          let repl2 = Replication.Follower.repl_json follower2 in
          Alcotest.(check bool) "plans primed" true
            (geti repl2 "primed_replanned" >= 1);
          (* Promote: the mirrored directory goes through ordinary
             manager recovery and the node turns writable. *)
          Replication.Follower.promote follower2;
          (match Replication.Follower.role follower2 with
          | `Promoted -> ()
          | `Following -> Alcotest.fail "promote left the node following");
          let promoted = Replication.Follower.repl_json follower2 in
          Alcotest.(check string) "promoted role" "primary"
            (gets promoted "role");
          Alcotest.(check int) "promoted at the applied seq" 6
            (geti promoted "promoted_at_seq");
          (* Promotion is idempotent. *)
          Replication.Follower.promote follower2;
          Alcotest.(check int) "second promote is a no-op" 6
            (geti (Replication.Follower.repl_json follower2) "promoted_at_seq");
          Replication.Follower.close follower2;
          Replication.Feed.stop feed;
          Durable.Manager.close manager))

(* A fresh follower pointed at a primary whose early segments were
   compacted away cannot resume from nothing mid-history: it must get
   Hello{resumed=false} plus the snapshot, and land on the same state. *)
let snapshot_reset_path () =
  with_temp_dir (fun primary_dir ->
      with_temp_dir (fun follower_dir ->
          let manager, feed, port =
            let manager, _ =
              Durable.Manager.start
                {
                  Durable.Manager.dir = primary_dir;
                  fsync = Durable.Wal.strict;
                  snapshot_every = 2;
                  cache_capacity = 8;
                }
            in
            let feed =
              Replication.Feed.create
                {
                  Replication.Feed.dir = primary_dir;
                  last_seq = (fun () -> Durable.Manager.last_seq manager);
                  fetch_plan = (fun _ -> None);
                }
            in
            Durable.Manager.subscribe_journal manager
              (Replication.Feed.notify feed);
            let m = Mutex.create () in
            let cv = Condition.create () in
            let port = ref 0 in
            ignore
              (Thread.create
                 (fun () ->
                   try
                     Replication.Feed.serve_tcp feed
                       ~on_listen:(fun bound ->
                         Mutex.lock m;
                         port := bound;
                         Condition.signal cv;
                         Mutex.unlock m)
                       ~host:"127.0.0.1" ~port:0
                   with _ -> ())
                 ());
            Mutex.lock m;
            while !port = 0 do
              Condition.wait cv m
            done;
            let bound = !port in
            Mutex.unlock m;
            (manager, feed, bound)
          in
          (* Enough records to snapshot, rotate and compact: the first
             segment is gone, so history does not start at seq 1. *)
          let spec = spec_for () in
          for _ = 1 to 3 do
            Durable.Manager.on_accept manager spec;
            Durable.Manager.on_complete manager ~spec ~requests:1 ~ok:true
          done;
          Alcotest.(check bool) "early segments compacted away" true
            (match Durable.Wal.segments ~dir:primary_dir with
            | (first, _) :: _ -> first > 1
            | [] -> false);
          let follower =
            Replication.Follower.create (follower_config ~port ~dir:follower_dir)
          in
          Replication.Follower.start follower;
          await "snapshot + tail applied" (fun () ->
              Replication.Follower.last_applied follower
              >= Durable.Manager.last_seq manager);
          let feed_stats = Replication.Feed.stats_json feed in
          Alcotest.(check bool) "the subscribe was a reset" true
            (geti feed_stats "resets" >= 1);
          (* The mirrored state must equal a recovery of the primary's
             own directory: promote and compare cache keys. *)
          Replication.Follower.promote follower;
          let promoted = Replication.Follower.repl_json follower in
          Alcotest.(check int) "promoted at the primary's seq"
            (Durable.Manager.last_seq manager)
            (geti promoted "promoted_at_seq");
          Replication.Follower.close follower;
          Replication.Feed.stop feed;
          Durable.Manager.close manager))

let () =
  Alcotest.run "replication"
    [
      ( "wire",
        [
          Alcotest.test_case "frames round-trip" `Quick frame_roundtrip;
          Alcotest.test_case "classify splits frames from records" `Quick
            classify_lines;
        ] );
      ( "sink",
        [
          Alcotest.test_case "cursor tracks the mirror, reset wipes it" `Quick
            sink_cursor_and_reset;
          Alcotest.test_case "no appends before a segment is open" `Quick
            sink_append_guard;
        ] );
      ( "stream",
        [
          Alcotest.test_case "backlog, live tail, resume, promote" `Quick
            stream_apply_resume_promote;
          Alcotest.test_case "compacted history forces snapshot reset" `Quick
            snapshot_reset_path;
        ] );
    ]
