(** Pipelined TCP client for one dmfd shard, with bounded-retry
    reconnection.

    The daemon answers each connection strictly in request order, so
    the client matches responses to requests by FIFO position: {!send}
    appends a continuation and writes the raw request line; a reader
    thread resolves one continuation per response line.

    Failure is always bounded and never silent: a dead shard (connect
    refused, write error, EOF after a [kill -9]) resolves every
    outstanding continuation with [None], retries the connection at
    most [retries] more times with [backoff_ms] pauses on the next
    send, and then fails fast for [cooldown_ms] before probing again.
    No continuation is ever dropped and no caller ever blocks
    unboundedly on a dead shard. *)

type config = {
  host : string;
  port : int;
  retries : int;  (** Extra connect attempts per send while down. *)
  backoff_ms : float;  (** Pause between connect attempts. *)
  cooldown_ms : float;
      (** Fail-fast window after the retry budget is spent. *)
}

val default_config : host:string -> port:int -> config
(** 3 retries, 50 ms backoff, 1 s cooldown. *)

type t

type stats = {
  addr : string;  (** ["host:port"]. *)
  healthy : bool;  (** Connected, or never probed and not cooling down. *)
  sent : int;  (** Request lines written. *)
  answered : int;  (** Response lines matched back. *)
  failed : int;  (** Continuations resolved with [None]. *)
  connects : int;  (** Successful connection establishments. *)
}

val create : config -> t
(** No connection is opened until the first {!send}. *)

val addr : t -> string

val send : t -> string -> (string option -> unit) -> unit
(** [send t line k] forwards one raw protocol line and eventually calls
    [k (Some response_line)] — or [k None] if the shard is or becomes
    unreachable.  [k] is called exactly once, possibly before [send]
    returns (fail-fast path), from this or the reader thread; it must
    not call back into [t]. *)

val healthy : t -> bool

val stats : t -> stats

val close : t -> unit
(** Fail outstanding continuations and refuse further sends. *)
