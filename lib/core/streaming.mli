(** The droplet-streaming engine under a storage budget (Section 6,
    Table 4).

    On a real biochip the number of storage electrodes [q'] is fixed.  The
    streaming engine finds the largest per-pass demand [D'] whose schedule
    fits within [q'] storage units, and meets a total demand [D] in
    [ceil (D / D')] passes; the last pass schedules an incomplete mixing
    forest for the remaining droplets.

    The forest scheduler of each pass is a {!Scheduler.t} registry
    handle; an optional {!Instr.t} hook record is threaded to the final
    passes (never to the feasibility probes), so a collector aggregates
    the counters of the whole multi-pass run. *)

type pass = {
  demand : int;  (** Droplets produced by this pass. *)
  plan : Plan.t;
  schedule : Schedule.t;
  tc : int;
  q : int;
  waste : int;
}

type t = {
  passes : pass list;
  per_pass_demand : int;  (** The chosen [D']. *)
  total_cycles : int;  (** Sum of per-pass [Tc]. *)
  total_waste : int;
  total_inputs : int;
  storage_limit : int;
  within_limit : bool;
      (** [false] when even a two-droplet pass exceeds the budget, in
          which case the engine runs with [D' = 2] regardless. *)
}

val max_demand_per_pass :
  algorithm:Mixtree.Algorithm.t ->
  ratio:Dmf.Ratio.t ->
  mixers:int ->
  storage_limit:int ->
  scheduler:Scheduler.t ->
  max_demand:int ->
  int option
(** Largest even [D' <= max_demand] whose forest schedule needs at most
    [storage_limit] units, or [None] if not even [D' = 2] fits. *)

val run :
  ?instr:Instr.t ->
  algorithm:Mixtree.Algorithm.t ->
  ratio:Dmf.Ratio.t ->
  demand:int ->
  mixers:int ->
  storage_limit:int ->
  scheduler:Scheduler.t ->
  unit ->
  t
(** [run] executes the multi-pass streaming engine; each pass produces
    the largest storage-feasible demand.
    @raise Invalid_argument if [demand < 1] or [mixers < 1]. *)

val run_fixed :
  ?instr:Instr.t ->
  pass_size:int ->
  algorithm:Mixtree.Algorithm.t ->
  ratio:Dmf.Ratio.t ->
  demand:int ->
  mixers:int ->
  storage_limit:int ->
  scheduler:Scheduler.t ->
  unit ->
  t
(** As {!run}, but with a forced (even, positive) pass size — used by the
    demand-driven assay planner to match the production rate to the
    consumption rate.  [within_limit] reports whether the forced size
    actually fits the storage budget.
    @raise Invalid_argument if the pass size is not even and positive. *)

val n_passes : t -> int
