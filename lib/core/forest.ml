(* Base tree annotated with the exact droplet value of every subtree. *)
type ann = { value : Dmf.Mixture.t; shape : shape }
and shape = Aleaf of Dmf.Fluid.t | Amix of ann * ann

let rec annotate ~n = function
  | Mixtree.Tree.Leaf f -> { value = Dmf.Mixture.pure ~n f; shape = Aleaf f }
  | Mixtree.Tree.Mix (a, b) ->
    let a = annotate ~n a and b = annotate ~n b in
    { value = Dmf.Mixture.mix a.value b.value; shape = Amix (a, b) }

(* Local mirror of one instantiated component tree, used to assign the
   paper's breadth-first [m_ij] labels after the tree is complete. *)
type mirror = Mstop | Mnode of int * mirror * mirror

type builder = {
  mutable acc : Plan.node list;  (* reversed *)
  mutable count : int;
  mutable pool : Plan.source Queue.t Dmf.Mixture.Map.t;
}

let new_builder () = { acc = []; count = 0; pool = Dmf.Mixture.Map.empty }

let pool_take builder value =
  match Dmf.Mixture.Map.find_opt value builder.pool with
  | None -> None
  | Some queue -> if Queue.is_empty queue then None else Some (Queue.pop queue)

let pool_put builder value droplet =
  let queue =
    match Dmf.Mixture.Map.find_opt value builder.pool with
    | Some queue -> queue
    | None ->
      let queue = Queue.create () in
      builder.pool <- Dmf.Mixture.Map.add value queue builder.pool;
      queue
  in
  Queue.push droplet queue

(* Instantiate one component tree top-down: every needed droplet is taken
   from the pool when available, otherwise recomputed.  Returns the root
   node id.  With [sharing] the spare droplets are committed immediately
   (a tree may feed itself); otherwise they become available only to
   later trees. *)
let instantiate_tree builder ~sharing ~reuse ~tree_idx ~root_level root_ann =
  let spares = ref [] in
  let rec instantiate ~at_root ann level =
    match ann.shape with
    | Aleaf f -> (Plan.Input f, Mstop)
    | Amix (a, b) -> (
      match
        if at_root || not reuse then None else pool_take builder ann.value
      with
      | Some source -> (source, Mstop)
      | None ->
        let left, mleft = instantiate ~at_root:false a (level - 1) in
        let right, mright = instantiate ~at_root:false b (level - 1) in
        let id = builder.count in
        builder.count <- id + 1;
        builder.acc <-
          {
            Plan.id;
            tree = tree_idx;
            level;
            bfs = 0;
            value = ann.value;
            left;
            right;
          }
          :: builder.acc;
        if not at_root then
          if sharing && reuse then
            pool_put builder ann.value (Plan.Output { node = id; port = 1 })
          else
            spares :=
              (ann.value, Plan.Output { node = id; port = 1 }) :: !spares;
        (Plan.Output { node = id; port = 0 }, Mnode (id, mleft, mright)))
  in
  let root_source, mirror = instantiate ~at_root:true root_ann root_level in
  let root_id =
    match root_source with
    | Plan.Output { node; port = 0 } -> node
    | Plan.Output _ | Plan.Input _ | Plan.Reserve _ ->
      invalid_arg "Forest: a component tree must contain at least one mix"
  in
  (* Commit this tree's spare droplets for use by later trees. *)
  if reuse && not sharing then
    List.iter (fun (value, droplet) -> pool_put builder value droplet) !spares;
  (* Assign the breadth-first m_ij labels of this component tree. *)
  let queue = Queue.create () in
  Queue.push mirror queue;
  let j = ref 0 in
  let relabel = Hashtbl.create 16 in
  while not (Queue.is_empty queue) do
    match Queue.pop queue with
    | Mstop -> ()
    | Mnode (id, l, r) ->
      incr j;
      Hashtbl.replace relabel id !j;
      Queue.push l queue;
      Queue.push r queue
  done;
  builder.acc <-
    List.map
      (fun node ->
        match Hashtbl.find_opt relabel node.Plan.id with
        | Some bfs -> { node with Plan.bfs }
        | None -> node)
      builder.acc;
  root_id

let finish ?reserves builder ~ratio ~demand ~roots ~root_values =
  Plan.create_multi ?reserves ~ratio ~demand
    ~nodes:(Array.of_list (List.rev builder.acc))
    ~roots:(Array.of_list (List.rev roots))
    ~root_values:(Array.of_list (List.rev root_values))
    ()

let grow ?(reserves = [||]) ~ratio ~demand ~sharing ~reuse tree =
  if demand < 1 then invalid_arg "Forest: demand must be >= 1";
  (match Mixtree.Tree.validate ~ratio tree with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Forest: invalid base tree: " ^ msg));
  let n = Dmf.Ratio.n_fluids ratio in
  let d = Dmf.Ratio.accuracy ratio in
  let root_ann = annotate ~n tree in
  let builder = new_builder () in
  (* Pre-existing stored droplets are available from the start. *)
  Array.iteri
    (fun i value -> pool_put builder value (Plan.Reserve i))
    reserves;
  let trees_needed = Dmf.Binary.ceil_div demand 2 in
  let roots = ref [] and root_values = ref [] in
  for tree_idx = 1 to trees_needed do
    let root =
      instantiate_tree builder ~sharing ~reuse ~tree_idx ~root_level:d root_ann
    in
    roots := root :: !roots;
    root_values := root_ann.value :: !root_values
  done;
  finish ~reserves builder ~ratio ~demand ~roots:!roots
    ~root_values:!root_values

let of_tree ?reserves ~ratio ~demand ~sharing tree =
  grow ?reserves ~ratio ~demand ~sharing ~reuse:true tree

(* Plans are immutable once created, and [build]/[repeated] depend only on
   (algorithm, ratio, demand) — but the streaming engine rebuilds the same
   pass plan once per pass and the compare/baseline paths once per scheme,
   so identical requests share one memoised plan.  Mutex-guarded for Par's
   domains: a concurrent miss may construct twice, but the constructions
   are deterministic and either result is valid.  [of_tree] with reserves
   (error recovery) stays uncached — reserve tables vary per failure. *)
let plan_cache : (string * string * int, Plan.t) Hashtbl.t =
  Hashtbl.create 256

let plan_cache_lock = Mutex.create ()
let plan_cache_cap = 4096

let memo_plan ~tag ~algorithm ~ratio ~demand construct =
  let key = (tag ^ Mixtree.Algorithm.name algorithm, Dmf.Ratio.key ratio,
             demand)
  in
  Mutex.lock plan_cache_lock;
  let cached = Hashtbl.find_opt plan_cache key in
  Mutex.unlock plan_cache_lock;
  match cached with
  | Some plan -> plan
  | None ->
    let plan = construct () in
    Mutex.lock plan_cache_lock;
    if Hashtbl.length plan_cache >= plan_cache_cap then
      Hashtbl.reset plan_cache;
    Hashtbl.replace plan_cache key plan;
    Mutex.unlock plan_cache_lock;
    plan

let build ~algorithm ~ratio ~demand =
  memo_plan ~tag:"F|" ~algorithm ~ratio ~demand (fun () ->
      let tree = Mixtree.Algorithm.build algorithm ratio in
      let sharing = Mixtree.Algorithm.intra_pass_sharing algorithm in
      of_tree ~ratio ~demand ~sharing tree)

let build_multi ~algorithm requests =
  (match requests with
  | [] -> invalid_arg "Forest.build_multi: no targets"
  | _ :: _ -> ());
  let n = Dmf.Ratio.n_fluids (fst (List.hd requests)) in
  List.iter
    (fun (ratio, demand) ->
      if Dmf.Ratio.n_fluids ratio <> n then
        invalid_arg "Forest.build_multi: targets use different fluid universes";
      if demand < 1 then invalid_arg "Forest.build_multi: demand must be >= 1")
    requests;
  let sharing = Mixtree.Algorithm.intra_pass_sharing algorithm in
  let builder = new_builder () in
  let roots = ref [] and root_values = ref [] in
  let tree_idx = ref 0 in
  let total_demand = ref 0 in
  List.iter
    (fun (ratio, demand) ->
      total_demand := !total_demand + demand;
      let tree = Mixtree.Algorithm.build algorithm ratio in
      (match Mixtree.Tree.validate ~ratio tree with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Forest.build_multi: " ^ msg));
      let root_ann = annotate ~n tree in
      let d = Dmf.Ratio.accuracy ratio in
      for _ = 1 to Dmf.Binary.ceil_div demand 2 do
        incr tree_idx;
        let root =
          instantiate_tree builder ~sharing ~reuse:true ~tree_idx:!tree_idx
            ~root_level:d root_ann
        in
        roots := root :: !roots;
        root_values := root_ann.value :: !root_values
      done)
    requests;
  finish builder
    ~ratio:(fst (List.hd requests))
    ~demand:!total_demand ~roots:!roots ~root_values:!root_values

let repeated ~algorithm ~ratio ~demand =
  memo_plan ~tag:"R|" ~algorithm ~ratio ~demand @@ fun () ->
  let tree = Mixtree.Algorithm.build algorithm ratio in
  if Mixtree.Algorithm.intra_pass_sharing algorithm then
    (* MTCS shares droplets within one pass; concatenate independent
       shared passes by growing each pass separately. *)
    let passes = Dmf.Binary.ceil_div demand 2 in
    let plans =
      List.init passes (fun _ ->
          grow ~ratio ~demand:2 ~sharing:true ~reuse:true tree)
    in
    (* Merge the independent pass plans into one, shifting ids. *)
    let nodes = ref [] and roots = ref [] and offset = ref 0 in
    let tree_offset = ref 0 in
    List.iter
      (fun p ->
        let shift_source = function
          | Plan.Input f -> Plan.Input f
          | Plan.Reserve _ as r -> r
          | Plan.Output { node; port } ->
            Plan.Output { node = node + !offset; port }
        in
        List.iter
          (fun node ->
            nodes :=
              {
                node with
                Plan.id = node.Plan.id + !offset;
                tree = node.Plan.tree + !tree_offset;
                left = shift_source node.Plan.left;
                right = shift_source node.Plan.right;
              }
              :: !nodes)
          (Plan.nodes p);
        List.iter (fun r -> roots := (r + !offset) :: !roots) (Plan.roots p);
        offset := !offset + Plan.n_nodes p;
        tree_offset := !tree_offset + Plan.trees p)
      plans;
    Plan.create ~ratio ~demand
      ~nodes:(Array.of_list (List.rev !nodes))
      ~roots:(Array.of_list (List.rev !roots))
  else grow ~ratio ~demand ~sharing:false ~reuse:false tree
