(** Chip layouts: an electrode grid with placed modules (Figure 5).

    A layout knows the grid dimensions and the placement of every module.
    Module ids follow the paper: reservoirs [R1..RN], mixers [M1..Mc],
    storage units [q1..qS], waste reservoirs [W1, W2] and the output port
    [OUT]. *)

type t

val make : width:int -> height:int -> modules:Chip_module.t list -> t
(** @raise Invalid_argument if any module lies outside the grid, two
    modules overlap, or two modules share an id. *)

val default :
  ?mixers:int -> ?storage_units:int -> ?wastes:int -> n_fluids:int -> unit -> t
(** [default ~n_fluids ()] is a programmatically placed layout with the
    given resources ([mixers] defaults to 3, [storage_units] to 5,
    [wastes] to 2): reservoirs along the top and bottom edges, mixers in
    a central row, storage rows below, waste on the left edge and the
    output port on the right edge, all separated by segregation gaps. *)

val pcr_fig5 : unit -> t
(** The PCR master-mix chip of Figure 5: seven reservoirs, three mixers,
    five storage units, two waste reservoirs and the output port. *)

val width : t -> int
val height : t -> int
val modules : t -> Chip_module.t list

val find : t -> string -> Chip_module.t option
val find_exn : t -> string -> Chip_module.t

val mixers : t -> Chip_module.t list
(** In id order [M1, M2, ...]. *)

val storage_units : t -> Chip_module.t list
val reservoirs : t -> Chip_module.t list
val wastes : t -> Chip_module.t list
val output : t -> Chip_module.t

val reservoir_for : t -> Dmf.Fluid.t -> Chip_module.t
(** @raise Not_found if the layout has no reservoir for that fluid. *)

val in_bounds : t -> Geometry.point -> bool

val module_at : t -> Geometry.point -> Chip_module.t option
(** O(1): a precomputed occupancy grid maps each cell to its covering
    module.  [None] out of bounds or on a free cell. *)

val free : t -> Geometry.point -> bool
(** In bounds and not covered by any module. *)

val module_index_at : t -> Geometry.point -> int
(** The index (into the {!make}-time module order) of the module
    covering [p], or [-1] when the cell is free or out of bounds.
    Routing hot loops compare these indices instead of ids. *)

val module_count : t -> int

val module_of_index : t -> int -> Chip_module.t
(** The module at a {!module_index_at} index; indices follow the order
    of {!modules}. *)

val index_of_id : t -> string -> int option

val render : t -> string
(** ASCII map of the chip. *)
