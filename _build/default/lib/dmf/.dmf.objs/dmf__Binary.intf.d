lib/dmf/binary.mli:
