type point = { x : int; y : int }

let manhattan a b = abs (a.x - b.x) + abs (a.y - b.y)
let chebyshev a b = max (abs (a.x - b.x)) (abs (a.y - b.y))

let neighbours4 p =
  [
    { p with x = p.x - 1 };
    { p with x = p.x + 1 };
    { p with y = p.y - 1 };
    { p with y = p.y + 1 };
  ]

type rect = { x : int; y : int; w : int; h : int }

let rect_cells r =
  List.concat_map
    (fun dy -> List.init r.w (fun dx -> { x = r.x + dx; y = r.y + dy }))
    (List.init r.h Fun.id)

let rect_contains r (p : point) =
  p.x >= r.x && p.x < r.x + r.w && p.y >= r.y && p.y < r.y + r.h

let rect_overlap a b =
  a.x < b.x + b.w && b.x < a.x + a.w && a.y < b.y + b.h && b.y < a.y + a.h

let rect_center r = { x = r.x + (r.w / 2); y = r.y + (r.h / 2) }

let rect_expand r ~by =
  { x = r.x - by; y = r.y - by; w = r.w + (2 * by); h = r.h + (2 * by) }

let pp_point ppf (p : point) = Format.fprintf ppf "(%d,%d)" p.x p.y
