(** Typed requests of the preparation service.

    One request is one JSON object on one line.  The [req] field selects
    the kind:

    - [{"req": "prepare", "ratio": "2:1:1:1:1:1:9", "D": 20,
        "algorithm": "MM", "scheduler": "SRS", "Mc": 3, "storage": 5,
        "id": 7}] — plan and schedule [D] droplets of the target.
        [algorithm] defaults to MM, [scheduler] to SRS; [Mc] defaults to
        the paper's [Mlb] of the MM tree; [storage] switches to the
        multi-pass streaming engine under that budget.  [ratio] also
        accepts a protocol id (pcr16, ex1..ex5).
    - [{"req": "stats"}] — server counters.
    - [{"req": "ping"}] — liveness probe.

    [id] is any JSON value and is echoed verbatim in the response, so a
    pipelining client can match answers to questions. *)

type spec = {
  ratio : Dmf.Ratio.t;
  demand : int;
  algorithm : Mixtree.Algorithm.t;
  scheduler : Mdst.Scheduler.t;
  mixers : int option;
  storage_limit : int option;
      (** When set, run the {!Mdst.Streaming} multi-pass engine under
          this storage budget instead of a single-pass schedule. *)
}

type kind = Prepare of spec | Stats | Ping

type t = { id : Jsonl.t option; kind : kind }

val coalesce_key : spec -> string
(** Canonical identity of a planning job {e ignoring demand}: requests
    for the same (ratio, algorithm, scheduler, Mc, q') coalesce into one
    job with summed demand (the paper's demand aggregation). *)

val cache_key : spec -> string
(** {!coalesce_key} plus the demand — the plan-cache key. *)

val spec_of_json : Jsonl.t -> (spec, string) result
(** Decode and validate just the spec fields (ratio, D, algorithm,
    scheduler, Mc, storage) of a request object, ignoring [req].  The
    router uses this for its local [route] diagnostic, which carries the
    same fields as a prepare but never reaches a shard. *)

val of_json : Jsonl.t -> (t, string) result
(** Decode and validate (via {!Validate}) a request object. *)

val of_line : string -> (t, string) result
(** Parse one protocol line: JSON decode then {!of_json}. *)

val to_json : t -> Jsonl.t
(** Encode; [of_json (to_json r)] returns a request with an equal spec. *)
