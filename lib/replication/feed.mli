(** The primary side of replication: stream WAL segments plus the live
    tail to followers, straight from the segment files on disk.

    The feed's only coupling to the write path is {!notify}, wired as a
    {!Durable.Manager.subscribe_journal} listener: it bumps a version
    counter and wakes parked sessions.  Everything else reads the
    segment files, so a slow (or dead) follower can never hold a
    journal lock or stall a commit.

    Sessions forward only complete newline-terminated record lines,
    byte-verbatim, interleaved with control frames ({!Wire}).  A
    session's first frame selects its mode: [subscribe] streams
    records until the peer disconnects or {!stop}; [plan_get] answers
    plan-store payload lookups.

    Creating a feed sets [SIGPIPE] to ignore: streaming writes race
    follower deaths as a matter of course, and the session loop
    already handles the resulting [EPIPE]. *)

type config = {
  dir : string;  (** The primary's WAL directory. *)
  last_seq : unit -> int;  (** {!Durable.Manager.last_seq}. *)
  fetch_plan : Service.Request.spec -> string option;
      (** {!Durable.Plan_store} payload bytes for a spec, if stored
          ([fun _ -> None] without a store). *)
}

type t

val create : config -> t

val notify : t -> int -> unit
(** Journal listener: wake any session parked at the live tail.  Safe
    from any thread; never blocks on I/O. *)

val stop : t -> unit
(** Stop accepting and wake every parked session so it can exit. *)

val handle : t -> in_channel -> out_channel -> unit
(** Serve one session on explicit channels (tests use socketpairs). *)

val subscribe : t -> out_channel -> Wire.cursor -> unit
(** The subscribe-session body: hello, optional snapshot + reset, then
    stream from the cursor until disconnect or {!stop}. *)

val stats_json : t -> Service.Jsonl.t
(** The primary's [replication] stats object: role, journal position,
    subscriber count, streamed/resume/reset/plan counters. *)

val serve_tcp : ?on_listen:(int -> unit) -> t -> host:string -> port:int -> unit
(** Bind, listen and serve sessions, one thread per connection, until
    {!stop}.  [port = 0] binds an ephemeral port reported through
    [on_listen], same convention as {!Service.Server.serve_tcp}. *)
