(* Additional cross-module properties on randomly generated inputs. *)

open QCheck2

let check = Alcotest.check
let bool = Alcotest.bool

(* Random but valid default layouts. *)
let layout_gen =
  Gen.(
    triple (int_range 2 8) (int_range 1 4) (int_range 1 12)
    >|= fun (n_fluids, mixers, storage_units) ->
    Chip.Layout.default ~mixers ~storage_units ~n_fluids ())

let layout_print l =
  Printf.sprintf "%dx%d grid, %d modules" (Chip.Layout.width l)
    (Chip.Layout.height l)
    (List.length (Chip.Layout.modules l))

let prop_cost_matrix_symmetric =
  Generators.qtest ~count:40 "cost matrices are symmetric on random layouts"
    layout_gen layout_print (fun layout ->
      let matrix = Chip.Cost_matrix.build layout in
      let labels = Chip.Cost_matrix.labels matrix in
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              (not
                 (Chip.Cost_matrix.reachable matrix ~src:a ~dst:b
                 || Chip.Cost_matrix.reachable matrix ~src:b ~dst:a))
              || Chip.Cost_matrix.cost matrix ~src:a ~dst:b
                 = Chip.Cost_matrix.cost matrix ~src:b ~dst:a)
            labels)
        labels)

let prop_cost_matrix_triangle =
  Generators.qtest ~count:25 "routing costs obey a relaxed triangle bound"
    layout_gen layout_print (fun layout ->
      let matrix = Chip.Cost_matrix.build layout in
      let labels = Chip.Cost_matrix.labels matrix in
      (* Via-points can force a detour around the intermediate module's
         own footprint, so allow its half-perimeter as slack. *)
      List.for_all
        (fun a ->
          List.for_all
            (fun b ->
              List.for_all
                (fun c ->
                  if
                    Chip.Cost_matrix.reachable matrix ~src:a ~dst:b
                    && Chip.Cost_matrix.reachable matrix ~src:a ~dst:c
                    && Chip.Cost_matrix.reachable matrix ~src:c ~dst:b
                  then
                    let slack =
                      let m = Chip.Layout.find_exn layout c in
                      2
                      * (m.Chip.Chip_module.rect.Chip.Geometry.w
                        + m.Chip.Chip_module.rect.Chip.Geometry.h)
                    in
                    Chip.Cost_matrix.cost matrix ~src:a ~dst:b
                    <= Chip.Cost_matrix.cost matrix ~src:a ~dst:c
                       + Chip.Cost_matrix.cost matrix ~src:c ~dst:b
                       + slack
                  else true)
                labels)
            labels)
        labels)

let printable_string_gen =
  Gen.(string_size ~gen:(char_range ' ' '~') (int_range 0 40))

let prop_svg_escaping =
  Generators.qtest ~count:200 "SVG text never leaks raw markup"
    printable_string_gen Fun.id (fun s ->
      let doc =
        Viz.Svg.document ~width:10. ~height:10. [ Viz.Svg.text ~x:0. ~y:0. s ]
      in
      (* After the opening <svg ...>, any '<' must start a known tag or
         entity; raw user '<' and '&' must have been escaped. *)
      let body_start = String.index doc '>' + 1 in
      let body = String.sub doc body_start (String.length doc - body_start) in
      let rec scan i =
        if i >= String.length body then true
        else
          match body.[i] with
          | '&' ->
            (* must be one of our entities *)
            List.exists
              (fun entity ->
                i + String.length entity <= String.length body
                && String.sub body i (String.length entity) = entity)
              [ "&lt;"; "&gt;"; "&amp;"; "&quot;"; "&apos;" ]
            && scan (i + 1)
          | '<' ->
            List.exists
              (fun tag ->
                i + String.length tag <= String.length body
                && String.sub body i (String.length tag) = tag)
              [ "<text"; "</text>"; "</svg>" ]
            && scan (i + 1)
          | _ -> scan (i + 1)
      in
      scan 0)

let prop_dmrw_canonical =
  Generators.qtest ~count:100 "DMRW is invariant under target reduction"
    Gen.(
      int_range 2 7 >>= fun d ->
      int_range 1 (Dmf.Binary.pow2 d - 1) >|= fun c -> (c, d))
    (fun (c, d) -> Printf.sprintf "%d/%d" c (Dmf.Binary.pow2 d))
    (fun (c, d) ->
      (* c/2^d and 2c/2^(d+1) are the same concentration; the recipes must
         coincide structurally. *)
      Mixtree.Tree.equal
        (Mixtree.Dilution.dmrw ~c ~d)
        (Mixtree.Dilution.dmrw ~c:(2 * c) ~d:(d + 1)))

let test_default_layouts_host_their_ratios () =
  (* Every default layout can host a small run for its own fluid count. *)
  List.iter
    (fun n_fluids ->
      let parts = Array.make n_fluids 1 in
      parts.(0) <- (2 * Dmf.Binary.pow2 (Dmf.Binary.floor_log2 n_fluids)) - n_fluids + 1;
      let total = Array.fold_left ( + ) 0 parts in
      if Dmf.Binary.is_power_of_two total && n_fluids >= 2 then begin
        let ratio = Dmf.Ratio.make parts in
        match
          Sim.Pipeline.run
            { Mdst.Engine.ratio; demand = 4;
              algorithm = Mixtree.Algorithm.MM;
              scheduler = Mdst.Scheduler.srs; mixers = Some 2 }
        with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "N=%d: %s" n_fluids e
      end)
    [ 2; 3; 4; 5; 6; 7; 8; 10; 12 ];
  check bool "done" true true

let () =
  Alcotest.run "extra-props"
    [
      ( "chip",
        [
          prop_cost_matrix_symmetric;
          prop_cost_matrix_triangle;
          Alcotest.test_case "default layouts host their ratios" `Quick
            test_default_layouts_host_their_ratios;
        ] );
      ("viz", [ prop_svg_escaping ]);
      ("dilution", [ prop_dmrw_canonical ]);
    ]
