type spec = {
  ratio : Dmf.Ratio.t;
  demand : int;
  algorithm : Mixtree.Algorithm.t;
  scheduler : Scheduler.t;
  mixers : int option;
}

type result = {
  spec : spec;
  mixers : int;
  plan : Plan.t;
  schedule : Schedule.t;
  metrics : Metrics.t;
}

(* Recomputed for every scheme evaluation of a corpus sweep, so the Mlb
   count is memoised per ratio (the MM tree itself comes from the
   Algorithm cache).  Mutex-guarded for Par's domains. *)
let mixers_cache : (string, int) Hashtbl.t = Hashtbl.create 256
let mixers_cache_lock = Mutex.create ()

let default_mixers ratio =
  let key = Dmf.Ratio.key ratio in
  Mutex.lock mixers_cache_lock;
  let cached = Hashtbl.find_opt mixers_cache key in
  Mutex.unlock mixers_cache_lock;
  match cached with
  | Some m -> m
  | None ->
    let m =
      Mixtree.Hu.min_mixers_for_fastest
        (Mixtree.Algorithm.build Mixtree.Algorithm.MM ratio)
    in
    Mutex.lock mixers_cache_lock;
    if Hashtbl.length mixers_cache >= 4096 then Hashtbl.reset mixers_cache;
    Hashtbl.replace mixers_cache key m;
    Mutex.unlock mixers_cache_lock;
    m

let scheme_name algorithm scheduler =
  Mixtree.Algorithm.name algorithm ^ "+" ^ Scheduler.name scheduler

let resolve_mixers (spec : spec) =
  match spec.mixers with
  | Some m ->
    if m < 1 then invalid_arg "Engine: at least one mixer";
    m
  | None -> default_mixers spec.ratio

let prepare ?instr spec =
  let mixers = resolve_mixers spec in
  let plan =
    Forest.build ~algorithm:spec.algorithm ~ratio:spec.ratio
      ~demand:spec.demand
  in
  let schedule = Scheduler.schedule ?instr spec.scheduler ~plan ~mixers in
  let metrics =
    Metrics.of_schedule
      ~scheme:(scheme_name spec.algorithm spec.scheduler)
      ~plan schedule
  in
  { spec; mixers; plan; schedule; metrics }

let baseline_metrics spec =
  let mixers = resolve_mixers spec in
  Baseline.metrics ~algorithm:spec.algorithm ~ratio:spec.ratio
    ~demand:spec.demand ~mixers
