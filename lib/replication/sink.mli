(** The follower's local journal: a byte-for-byte mirror of the
    primary's WAL directory.

    Record lines from the feed are appended verbatim to segment files
    of the same names the primary uses, so the local directory is
    always a prefix copy of the primary's.  That identity is what the
    whole design leans on: the sink's write position doubles as the
    resume cursor ({!cursor}), and promotion can hand the directory to
    {!Durable.Manager.start} and get ordinary crash recovery.

    Single-writer: only the follower's engine thread may call the
    mutating operations.  The directory is claimed with the same
    advisory [LOCK] file the manager uses; {!close} releases it (which
    is how promotion hands the directory over). *)

type t

val create : dir:string -> t
(** Create [dir] as needed and claim its [LOCK].
    @raise Failure when another process holds the directory. *)

val dir : t -> string

val cursor : t -> Wire.cursor
(** Where the mirror ends: the current segment and write offset, read
    from the directory listing when nothing is open yet
    ({!Wire.start} for an empty directory).  Truncate any torn tail
    {e before} asking, or the cursor points past valid bytes. *)

val reset : t -> unit
(** Full resync: delete every mirrored segment and snapshot (the
    [LOCK] stays held). *)

val put_snapshot : t -> seq:int -> data:string -> unit
(** Write the primary's snapshot bytes verbatim as
    [snapshot-<seq12>.json], atomically (tmp, fsync, rename). *)

val open_segment : t -> int -> unit
(** Direct subsequent {!append_line}s into segment [wal-<seq12>];
    appends continue at the file's current end on resume. *)

val append_line : t -> string -> unit
(** Append one verbatim record line plus newline.
    @raise Failure before the first {!open_segment}. *)

val flush : t -> unit
(** fsync the current segment if it has unsynced appends.  The engine
    calls this at stream-idle points (heartbeats), trading bounded
    replay-on-crash for not paying an fsync per record. *)

val appended : t -> int
(** Record lines mirrored through this value. *)

val fsyncs : t -> int

val close : t -> unit
(** Flush, close and release the directory [LOCK]. *)
