(** The MTCS base mixing tree, after Kumar et al. [16].

    MTCS ("Efficient Mixture Preparation") reduces the number of mix-split
    operations of one pass by computing identical intermediate mixtures
    once: a single mix-split emits two droplets, which can feed two
    consumers needing the same value.  We model this as (a) a tree
    construction that picks, among candidate partitions, the one whose
    fully-shared pass cost ({!Sharing.pass_stats}) is smallest, and (b) an
    execution mode with intra-pass droplet sharing (see
    {!Algorithm.intra_pass_sharing}).

    Reimplemented from the published description; see DESIGN.md §3. *)

val build : Dmf.Ratio.t -> Tree.t
(** [build r] is the MTCS mixing tree for [r]: exact-target semantics,
    depth at most [Ratio.accuracy r], shared pass cost no worse than the
    MM tree's. *)
