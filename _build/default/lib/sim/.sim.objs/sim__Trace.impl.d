lib/sim/trace.ml: Chip Dmf Format List
