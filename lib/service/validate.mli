(** Shared input validation for the daemon and the CLI.

    Both front ends accept the same inputs — a malformed ratio or a
    non-positive demand is rejected with the same one-line message
    whether it arrives as a JSON field over the wire ([dmfd] answers an
    error response) or as a command-line argument ([dmfstream] exits
    nonzero).  Bounds exist so one hostile request cannot wedge a worker
    on a pathological forest. *)

val max_demand : int
(** Upper bound on a single request's droplet demand (also the bound on
    a coalesced batch). *)

val ratio : string -> (Dmf.Ratio.t, string) result
(** Parse a colon-separated ratio or a built-in protocol id (pcr16,
    ex1..ex5), exactly like the [dmfstream -r] argument. *)

val demand : int -> (int, string) result
(** Positive and at most {!max_demand}. *)

val mixers : int -> (int, string) result
(** Positive and at most 4096. *)

val storage : int -> (int, string) result
(** Non-negative (a zero-storage streaming run is legal) and at most
    4096. *)

val algorithm : string -> (Mixtree.Algorithm.t, string) result

val scheduler : string -> (Mdst.Scheduler.t, string) result
(** {!Mdst.Scheduler.of_string}: the registry is the single source of
    truth for scheduler names, so the daemon's JSON field and the CLI
    flag reject unknown names with the same one-line message. *)

val protect : (unit -> 'a) -> ('a, string) result
(** Run a computation, turning [Invalid_argument] and [Failure] — the
    engine's rejection exceptions — into [Error].  Any other exception
    propagates: those are bugs, not bad inputs. *)

val run_cli : (unit -> unit) -> unit
(** CLI wrapper: run the command body; on a rejected input print one
    [error: ...] line on stderr and exit 2 instead of dying with a raw
    exception backtrace. *)
