lib/chip/cost_matrix.ml: Array Chip_module Fun Hashtbl Layout List Option Printf Router String
