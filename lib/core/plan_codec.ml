(* Canonical binary codec for plans and schedules.

   Canonical means: the encoding is a pure function of the value with
   no optional representations (fixed-width little-endian integers,
   length-prefixed sequences, fixed field order), so byte equality is
   value equality and [encode (decode b) = b].  The store layers CRC
   framing on top; this module only defines the bytes under the CRC. *)

let version = 1

(* ------------------------------------------------------------------ *)
(* Wire primitives                                                     *)

module Wire = struct
  type writer = Buffer.t

  let writer () = Buffer.create 256

  let u8 b v =
    if v < 0 || v > 0xFF then invalid_arg "Plan_codec.Wire.u8: out of range";
    Buffer.add_char b (Char.chr v)

  let u32 b v =
    if v < 0 || v > 0xFFFFFFFF then
      invalid_arg "Plan_codec.Wire.u32: out of range";
    Buffer.add_char b (Char.chr (v land 0xFF));
    Buffer.add_char b (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char b (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char b (Char.chr ((v lsr 24) land 0xFF))

  let int64 b v =
    for i = 0 to 7 do
      Buffer.add_char b
        (Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))
    done

  let int b v = int64 b (Int64.of_int v)
  let f64 b v = int64 b (Int64.bits_of_float v)
  let bool b v = u8 b (if v then 1 else 0)

  let bytes b s =
    u32 b (String.length s);
    Buffer.add_string b s

  let contents = Buffer.contents

  type reader = { buf : string; mutable pos : int }

  exception Corrupt of string

  let corrupt fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt
  let reader buf = { buf; pos = 0 }

  let take r n =
    if n < 0 || r.pos > String.length r.buf - n then
      corrupt "truncated: wanted %d byte(s) at offset %d of %d" n r.pos
        (String.length r.buf);
    let pos = r.pos in
    r.pos <- pos + n;
    pos

  let r_u8 r = Char.code r.buf.[take r 1]

  let r_u32 r =
    let p = take r 4 in
    let byte i = Char.code r.buf.[p + i] in
    byte 0 lor (byte 1 lsl 8) lor (byte 2 lsl 16) lor (byte 3 lsl 24)

  let r_int64 r =
    let p = take r 8 in
    let v = ref 0L in
    for i = 7 downto 0 do
      v :=
        Int64.logor
          (Int64.shift_left !v 8)
          (Int64.of_int (Char.code r.buf.[p + i]))
    done;
    !v

  let r_int r =
    let v = r_int64 r in
    let i = Int64.to_int v in
    if Int64.of_int i <> v then corrupt "integer out of native range";
    i

  let r_f64 r = Int64.float_of_bits (r_int64 r)

  let r_bool r =
    match r_u8 r with
    | 0 -> false
    | 1 -> true
    | v -> corrupt "bad boolean byte %d" v

  let r_bytes r =
    let n = r_u32 r in
    let p = take r n in
    String.sub r.buf p n

  let expect_end r =
    if r.pos <> String.length r.buf then
      corrupt "%d trailing byte(s)" (String.length r.buf - r.pos)
end

open Wire

(* ------------------------------------------------------------------ *)
(* Ratios, mixtures, sources                                           *)

let tag_plan = 0x50 (* 'P' *)
let tag_schedule = 0x53 (* 'S' *)

let w_ratio b r =
  let parts = Dmf.Ratio.parts r in
  u32 b (Array.length parts);
  Array.iter (u32 b) parts;
  Array.iter (bytes b) (Dmf.Ratio.names r)

let r_ratio r =
  let n = r_u32 r in
  if n < 2 || n > 0xFFFF then corrupt "implausible fluid count %d" n;
  let parts = Array.init n (fun _ -> r_u32 r) in
  let names = Array.init n (fun _ -> r_bytes r) in
  Dmf.Ratio.make ~names parts

(* A mixture travels as (numerators, scale k): value = <num>/2^k.
   Numerators of deep mixes can exceed 32 bits, so they ride as full
   ints. *)
let w_mixture b m =
  let num = Dmf.Mixture.numerators m in
  u32 b (Array.length num);
  int b (Dmf.Mixture.scale m);
  Array.iter (int b) num

let r_mixture_parts ~n_fluids r =
  let n = r_u32 r in
  if n <> n_fluids then corrupt "mixture width %d in a %d-fluid plan" n n_fluids;
  let k = r_int r in
  if k < 0 || k > 62 then corrupt "implausible mixture scale %d" k;
  let num = Array.init n (fun _ -> r_int r) in
  (num, k)

let mixture_equals_parts m (num, k) =
  Dmf.Mixture.scale m = k
  && Array.for_all2 ( = ) (Dmf.Mixture.numerators m) num

(* Mixture exposes no raw constructor (its canonical form is an
   internal invariant), so a stored mixture with no producing node — a
   reserve droplet — is rebuilt through the public mix algebra: 2^k
   pure leaves in numerator order, reduced pairwise.  [mix] canonicalizes
   at every step, so the result equals the stored parts iff they were a
   canonical mixture in the first place. *)
let mixture_of_parts ~n_fluids (num, k) =
  let total = Array.fold_left ( + ) 0 num in
  if total < 1 || total > 0x10000 || total <> 1 lsl k then
    corrupt "mixture numerators sum to %d, scale %d" total k;
  let leaves = ref [] in
  for i = n_fluids - 1 downto 0 do
    for _ = 1 to num.(i) do
      leaves := Dmf.Mixture.pure ~n:n_fluids (Dmf.Fluid.make i) :: !leaves
    done
  done;
  let rec reduce = function
    | [] -> corrupt "empty mixture"
    | [ m ] -> m
    | ms ->
      let rec pair = function
        | a :: b :: rest -> Dmf.Mixture.mix a b :: pair rest
        | [ _ ] -> corrupt "mixture leaf count is not a power of two"
        | [] -> []
      in
      reduce (pair ms)
  in
  let m = reduce !leaves in
  if not (mixture_equals_parts m (num, k)) then
    corrupt "mixture parts are not in canonical form";
  m

let w_source b = function
  | Plan.Input f ->
    u8 b 0;
    u32 b (Dmf.Fluid.index f)
  | Plan.Output { node; port } ->
    u8 b 1;
    u32 b node;
    u8 b port
  | Plan.Reserve i ->
    u8 b 2;
    u32 b i

let r_source r =
  match r_u8 r with
  | 0 -> Plan.Input (Dmf.Fluid.make (r_u32 r))
  | 1 ->
    let node = r_u32 r in
    let port = r_u8 r in
    Plan.Output { node; port }
  | 2 -> Plan.Reserve (r_u32 r)
  | t -> corrupt "unknown source tag %d" t

(* ------------------------------------------------------------------ *)
(* Plans                                                               *)

let encode_plan p =
  let b = writer () in
  u8 b tag_plan;
  u8 b version;
  w_ratio b (Plan.ratio p);
  u32 b (Plan.demand p);
  let reserves = Plan.reserves p in
  u32 b (Array.length reserves);
  Array.iter (w_mixture b) reserves;
  u32 b (Plan.n_nodes p);
  List.iter
    (fun (n : Plan.node) ->
      u32 b n.Plan.tree;
      u32 b n.Plan.level;
      u32 b n.Plan.bfs;
      w_mixture b n.Plan.value;
      w_source b n.Plan.left;
      w_source b n.Plan.right)
    (Plan.nodes p);
  let roots = Plan.roots p in
  u32 b (List.length roots);
  List.iter
    (fun root ->
      u32 b root;
      w_mixture b (Plan.root_value p root))
    roots;
  contents b

(* Node and root values are recomputed bottom-up from the sources
   rather than trusted: the stored mixture bytes become a pure
   cross-check, so a bit pattern that somehow survived the CRC still
   cannot smuggle in a wrong concentration, and [Plan.create_multi]
   re-runs the full structural validation at the end. *)
let decode_plan_exn buf =
  let r = reader buf in
  if r_u8 r <> tag_plan then corrupt "not a plan";
  let v = r_u8 r in
  if v <> version then corrupt "codec version %d, expected %d" v version;
  let ratio = r_ratio r in
  let n_fluids = Dmf.Ratio.n_fluids ratio in
  let demand = r_u32 r in
  let n_reserves = r_u32 r in
  if n_reserves > 0xFFFFF then corrupt "implausible reserve count %d" n_reserves;
  let reserves =
    Array.init n_reserves (fun _ ->
        mixture_of_parts ~n_fluids (r_mixture_parts ~n_fluids r))
  in
  let n_nodes = r_u32 r in
  if n_nodes > 0xFFFFFF then corrupt "implausible node count %d" n_nodes;
  let values = Array.make n_nodes (Dmf.Mixture.pure ~n:n_fluids (Dmf.Fluid.make 0)) in
  let nodes =
    Array.init n_nodes (fun id ->
        let tree = r_u32 r in
        let level = r_u32 r in
        let bfs = r_u32 r in
        let stored = r_mixture_parts ~n_fluids r in
        let left = r_source r in
        let right = r_source r in
        let source_value = function
          | Plan.Input f -> Dmf.Mixture.pure ~n:n_fluids f
          | Plan.Output { node; port = _ } ->
            if node < 0 || node >= id then
              corrupt "node %d: producer %d out of order" id node;
            values.(node)
          | Plan.Reserve i ->
            if i < 0 || i >= n_reserves then
              corrupt "node %d: reserve %d out of range" id i;
            reserves.(i)
        in
        let value = Dmf.Mixture.mix (source_value left) (source_value right) in
        if not (mixture_equals_parts value stored) then
          corrupt "node %d: stored value disagrees with its sources" id;
        values.(id) <- value;
        { Plan.id; tree; level; bfs; value; left; right })
  in
  let n_roots = r_u32 r in
  if n_roots > n_nodes then corrupt "more roots than nodes";
  let roots = Array.make n_roots 0 in
  let root_values =
    Array.init n_roots (fun i ->
        let root = r_u32 r in
        if root < 0 || root >= n_nodes then corrupt "root %d out of range" root;
        roots.(i) <- root;
        let stored = r_mixture_parts ~n_fluids r in
        if not (mixture_equals_parts values.(root) stored) then
          corrupt "root %d: stored target disagrees with the node value" root;
        values.(root))
  in
  expect_end r;
  Plan.create_multi ~reserves ~ratio ~demand ~nodes ~roots ~root_values ()

let decode_plan buf =
  match decode_plan_exn buf with
  | p -> Ok p
  | exception Corrupt msg -> Error msg
  | exception Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Schedules                                                           *)

let encode_schedule ~plan s =
  let b = writer () in
  u8 b tag_schedule;
  u8 b version;
  u32 b (Schedule.mixers s);
  let n = Plan.n_nodes plan in
  u32 b n;
  for id = 0 to n - 1 do
    u32 b (Schedule.cycle s id)
  done;
  for id = 0 to n - 1 do
    u32 b (Schedule.mixer s id)
  done;
  contents b

let decode_schedule ~plan buf =
  match
    let r = reader buf in
    if r_u8 r <> tag_schedule then corrupt "not a schedule";
    let v = r_u8 r in
    if v <> version then corrupt "codec version %d, expected %d" v version;
    let mixers = r_u32 r in
    let n = r_u32 r in
    if n <> Plan.n_nodes plan then
      corrupt "schedule covers %d node(s), plan has %d" n (Plan.n_nodes plan);
    let cycles = Array.init n (fun _ -> r_u32 r) in
    let mixer_of = Array.init n (fun _ -> r_u32 r) in
    expect_end r;
    Schedule.create ~plan ~mixers ~cycles ~mixer_of
  with
  | s -> Ok s
  | exception Corrupt msg -> Error msg
  | exception Invalid_argument msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Content hashing                                                     *)

(* Two independently seeded FNV-1a-64 lanes + splitmix64 finalizer:
   cheap, allocation-free, stable across platforms, and — unlike
   Hashtbl.hash — contractually frozen, because the hex result names
   files on disk that outlive any one process. *)

let fnv_prime = 0x100000001b3L

let splitmix64 h =
  let h =
    Int64.mul
      (Int64.logxor h (Int64.shift_right_logical h 30))
      0xbf58476d1ce4e5b9L
  in
  let h =
    Int64.mul
      (Int64.logxor h (Int64.shift_right_logical h 27))
      0x94d049bb133111ebL
  in
  Int64.logxor h (Int64.shift_right_logical h 31)

let fnv1a ~seed s =
  let h = ref seed in
  String.iter
    (fun c ->
      h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) fnv_prime)
    s;
  splitmix64 !h

let hash_hex s =
  let lane1 = fnv1a ~seed:0xcbf29ce484222325L s in
  let lane2 = fnv1a ~seed:0x9e3779b97f4a7c15L s in
  Printf.sprintf "%016Lx%016Lx" lane1 lane2
