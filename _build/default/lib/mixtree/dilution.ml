let sample = Dmf.Fluid.make 0
let buffer = Dmf.Fluid.make 1

let check_target ~c ~d =
  let total = Dmf.Binary.pow2 d in
  if c < 1 || c > total - 1 then
    invalid_arg "Dilution: target CF must satisfy 1 <= c <= 2^d - 1"

let ratio ~c ~d =
  check_target ~c ~d;
  Dmf.Ratio.make [| c; Dmf.Binary.pow2 d - c |]

let twm ~c ~d = Minmix.build (ratio ~c ~d)

(* Reduce an even target: c/2^d = (c/2)/2^(d-1). *)
let rec canonical ~c ~d = if c land 1 = 0 then canonical ~c:(c / 2) ~d:(d - 1) else (c, d)

let dmrw ~c ~d =
  check_target ~c ~d;
  let c, d = canonical ~c ~d in
  (* Binary search on the CF interval, all numerators over 2^d.  The
     boundary trees are shared OCaml values, so repeatedly-needed
     boundaries are structurally identical subtrees — exactly what the
     value-keyed droplet pool exploits. *)
  let rec search ~lo ~lo_tree ~hi ~hi_tree ~steps =
    assert (steps >= 1);
    let mid = (lo + hi) / 2 in
    let mid_tree = Tree.Mix (lo_tree, hi_tree) in
    if mid = c then mid_tree
    else if c < mid then
      search ~lo ~lo_tree ~hi:mid ~hi_tree:mid_tree ~steps:(steps - 1)
    else search ~lo:mid ~lo_tree:mid_tree ~hi ~hi_tree ~steps:(steps - 1)
  in
  if d = 0 then Tree.Leaf sample
  else
    search ~lo:0 ~lo_tree:(Tree.Leaf buffer) ~hi:(Dmf.Binary.pow2 d)
      ~hi_tree:(Tree.Leaf sample) ~steps:d

let dmrw_steps ~c ~d =
  check_target ~c ~d;
  let c, d = canonical ~c ~d in
  ignore c;
  d
