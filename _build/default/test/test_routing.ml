(* Tests for the space-time parallel router and the parallel-transport
   analysis. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let pcr = Generators.pcr16

let point x y = { Chip.Geometry.x; y }

(* An empty 12x12 chip with two far-apart reference modules so routes
   have somewhere to go. *)
let open_layout () =
  Chip.Layout.make ~width:12 ~height:12
    ~modules:
      [
        Chip.Chip_module.make ~id:"A" ~kind:Chip.Chip_module.Storage
          ~rect:{ Chip.Geometry.x = 0; y = 0; w = 1; h = 1 };
        Chip.Chip_module.make ~id:"B" ~kind:Chip.Chip_module.Storage
          ~rect:{ Chip.Geometry.x = 11; y = 11; w = 1; h = 1 };
      ]

let request ?(allow = [ "A"; "B" ]) id src dst =
  { Chip.Parallel_router.id; src; dst; allow }

let route_exn layout requests =
  match Chip.Parallel_router.route_batch layout requests with
  | Ok routed -> routed
  | Error e -> Alcotest.fail e

let test_single_droplet_shortest () =
  let layout = open_layout () in
  let routed = route_exn layout [ request 0 (point 2 2) (point 7 2) ] in
  check int "manhattan-length trajectory" 5 (Chip.Parallel_router.makespan routed);
  check bool "valid" true
    (Result.is_ok (Chip.Parallel_router.validate layout routed))

let test_crossing_droplets () =
  (* Two droplets crossing paths must time-separate. *)
  let layout = open_layout () in
  let routed =
    route_exn layout
      [ request 0 (point 2 5) (point 9 5); request 1 (point 5 2) (point 5 9) ]
  in
  check bool "valid crossing" true
    (Result.is_ok (Chip.Parallel_router.validate layout routed));
  check bool "no absurd detour" true
    (Chip.Parallel_router.makespan routed <= 14)

let test_head_on_swap () =
  (* The classic head-on case: droplets exchanging endpoints on one row
     must leave the row to pass each other. *)
  let layout = open_layout () in
  let routed =
    route_exn layout
      [ request 0 (point 2 6) (point 9 6); request 1 (point 9 6) (point 2 6) ]
  in
  check bool "valid swap" true
    (Result.is_ok (Chip.Parallel_router.validate layout routed))

let test_parallel_beats_serial () =
  let layout = open_layout () in
  let requests =
    [ request 0 (point 1 1) (point 10 1); request 1 (point 1 4) (point 10 4);
      request 2 (point 1 7) (point 10 7); request 3 (point 1 10) (point 10 10) ]
  in
  let routed = route_exn layout requests in
  let serial =
    List.fold_left
      (fun acc r ->
        acc + Chip.Geometry.manhattan r.Chip.Parallel_router.src r.Chip.Parallel_router.dst)
      0 requests
  in
  check bool "concurrent makespan below the serial sum" true
    (Chip.Parallel_router.makespan routed < serial);
  check int "four non-interfering lanes run at distance speed" 9
    (Chip.Parallel_router.makespan routed)

let test_same_module_exemption () =
  (* Two operands may sit side by side inside one mixer. *)
  let layout =
    Chip.Layout.make ~width:12 ~height:6
      ~modules:
        [
          Chip.Chip_module.make ~id:"M1" ~kind:Chip.Chip_module.Mixer
            ~rect:{ Chip.Geometry.x = 5; y = 2; w = 4; h = 2 };
        ]
  in
  let routed =
    match
      Chip.Parallel_router.route_batch layout
        [
          { Chip.Parallel_router.id = 0; src = point 0 0; dst = point 6 3;
            allow = [ "M1" ] };
          { Chip.Parallel_router.id = 1; src = point 0 5; dst = point 7 3;
            allow = [ "M1" ] };
        ]
    with
    | Ok routed -> routed
    | Error e -> Alcotest.fail e
  in
  check bool "adjacent parking inside the mixer allowed" true
    (Result.is_ok (Chip.Parallel_router.validate layout routed))

let test_unreachable_fails () =
  let layout = open_layout () in
  (* Destination inside a module the droplet may not enter. *)
  check bool "forbidden module" true
    (Result.is_error
       (Chip.Parallel_router.route_batch layout
          [ { Chip.Parallel_router.id = 0; src = point 3 3; dst = point 0 0;
              allow = [] } ]));
  (* Horizon too small. *)
  check bool "horizon exceeded" true
    (Result.is_error
       (Chip.Parallel_router.route_batch ~horizon:3 layout
          [ request 0 (point 0 5) (point 11 5) ]))

let test_empty_batch () =
  let layout = open_layout () in
  match Chip.Parallel_router.route_batch layout [] with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "expected empty result"
  | Error e -> Alcotest.fail e

let prop_batches_valid =
  Generators.qtest ~count:60 "random batches are conflict-free"
    QCheck2.Gen.(
      let cell = pair (int_range 0 11) (int_range 0 11) in
      list_size (int_range 1 5) (pair cell cell))
    (fun pairs ->
      String.concat ";"
        (List.map
           (fun ((a, b), (c, d)) -> Printf.sprintf "(%d,%d)->(%d,%d)" a b c d)
           pairs))
    (fun pairs ->
      let layout = open_layout () in
      (* Distinct sources and destinations, away from the two corner
         modules. *)
      let shift i ((sx, sy), (dx, dy)) =
        let clamp v = max 1 (min 10 v) in
        request i
          (point (clamp sx) (clamp ((sy + (2 * i)) mod 10 |> max 1)))
          (point (clamp dx) (clamp ((dy + (2 * i) + 1) mod 10 |> max 1)))
      in
      let requests = List.mapi shift pairs in
      let distinct f =
        let cells = List.map f requests in
        List.length (List.sort_uniq compare cells) = List.length cells
      in
      if
        (not (distinct (fun r -> r.Chip.Parallel_router.src)))
        || (not (distinct (fun r -> r.Chip.Parallel_router.dst)))
        || List.exists
             (fun r ->
               List.exists
                 (fun r' ->
                   Chip.Geometry.chebyshev r.Chip.Parallel_router.src
                     r'.Chip.Parallel_router.src <= 1
                   && r.Chip.Parallel_router.id <> r'.Chip.Parallel_router.id)
                 requests)
             requests
      then true (* skip degenerate instances *)
      else
        match Chip.Parallel_router.route_batch layout requests with
        | Error _ -> true (* prioritised planning may give up; soundness only *)
        | Ok routed ->
          Result.is_ok (Chip.Parallel_router.validate layout routed))

(* ------------------------------------------------------------------ *)
(* Parallel-transport analysis                                         *)

let test_transport_analysis () =
  let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~demand:20 in
  let schedule = Mdst.Srs.schedule ~plan ~mixers:3 in
  let layout = Chip.Layout.pcr_fig5 () in
  match Sim.Parallel_transport.analyze ~layout ~plan ~schedule with
  | Error e -> Alcotest.fail e
  | Ok t ->
    check bool "parallel never exceeds serial" true
      (t.Sim.Parallel_transport.total_parallel
      <= t.Sim.Parallel_transport.total_serial);
    check bool "meaningful speedup" true (t.Sim.Parallel_transport.speedup > 1.);
    check bool "per-cycle consistency" true
      (List.for_all
         (fun r ->
           r.Sim.Parallel_transport.parallel_steps
           <= r.Sim.Parallel_transport.serial_steps)
         t.Sim.Parallel_transport.cycles);
    check int "serial total matches the actuation accounting"
      (match Chip.Actuation.account ~layout ~plan ~schedule with
      | Ok acc -> acc.Chip.Actuation.total_electrodes
      | Error e -> Alcotest.fail e)
      t.Sim.Parallel_transport.total_serial

let () =
  Alcotest.run "routing"
    [
      ( "parallel-router",
        [
          Alcotest.test_case "single droplet" `Quick test_single_droplet_shortest;
          Alcotest.test_case "crossing droplets" `Quick test_crossing_droplets;
          Alcotest.test_case "head-on swap" `Quick test_head_on_swap;
          Alcotest.test_case "parallel beats serial" `Quick test_parallel_beats_serial;
          Alcotest.test_case "same-module exemption" `Quick test_same_module_exemption;
          Alcotest.test_case "unreachable fails" `Quick test_unreachable_fails;
          Alcotest.test_case "empty batch" `Quick test_empty_batch;
          prop_batches_valid;
        ] );
      ( "transport",
        [ Alcotest.test_case "PCR analysis" `Quick test_transport_analysis ] );
    ]
