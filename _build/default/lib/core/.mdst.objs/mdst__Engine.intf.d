lib/core/engine.mli: Dmf Metrics Mixtree Plan Schedule Streaming
