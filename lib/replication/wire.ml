(* The replication wire protocol.

   One feed session is NDJSON both ways, like the service protocol.
   Control frames are JSON objects carrying a ["repl"] field; journal
   records are forwarded as their verbatim WAL line — byte-identical
   to the segment file on the primary, so the follower re-verifies the
   CRC on exactly the bytes the primary journaled and can mirror its
   segment files byte-for-byte.  [classify] splits the two: a line
   whose JSON has a ["repl"] member is a control frame, anything else
   is a record line.

   The cursor is [(segment, offset)]: the [start_seq] name of a
   segment file plus a byte offset into it.  Because the follower's
   files mirror the primary's, its own write position {e is} a valid
   primary cursor, so resuming after a disconnect is just re-sending
   where the sink's last byte landed. *)

module Jsonl = Service.Jsonl

type cursor = { segment : int; offset : int }

let start = { segment = 0; offset = 0 }

type frame =
  | Subscribe of cursor
      (** Follower -> primary: stream records from this cursor
          ({!start} for a full resync). *)
  | Hello of { resumed : bool; last_seq : int }
      (** Primary's first answer: [resumed = false] means the cursor
          was unusable (fresh follower, compacted-away segment) and a
          reset follows — wipe local state, expect a snapshot. *)
  | Snapshot of { seq : int; data : string }
      (** Verbatim bytes of the primary's latest snapshot file. *)
  | Open_segment of int
      (** Record lines that follow belong to segment [wal-<seq12>]. *)
  | At of { last_seq : int; ms : float }
      (** Heartbeat: the primary's journal position and wall clock at
          emission — the follower's lag estimate. *)
  | Plan_get of Service.Request.spec
      (** Follower -> primary (plan-fetch session): ship the
          {!Durable.Plan_store} payload bytes for this spec. *)
  | Plan of { key : string; data : string option }
      (** Answer to {!Plan_get}; [data] is the Plan_codec payload,
          [None] when the primary has no store or no entry. *)

(* Plan payloads are arbitrary bytes; hex keeps them JSON-safe without
   trusting the Jsonl escaper with unpaired high bytes. *)
let to_hex s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let of_hex s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "hex string has odd length"
  else
    let digit c =
      match c with
      | '0' .. '9' -> Ok (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Ok (Char.code c - Char.code 'a' + 10)
      | 'A' .. 'F' -> Ok (Char.code c - Char.code 'A' + 10)
      | _ -> Error (Printf.sprintf "invalid hex digit %C" c)
    in
    let b = Bytes.create (n / 2) in
    let rec go i =
      if i >= n then Ok (Bytes.unsafe_to_string b)
      else
        match (digit s.[i], digit s.[i + 1]) with
        | Ok hi, Ok lo ->
          Bytes.set b (i / 2) (Char.chr ((hi lsl 4) lor lo));
          go (i + 2)
        | Error e, _ | _, Error e -> Error e
    in
    go 0

let to_json = function
  | Subscribe { segment; offset } ->
    Jsonl.Obj
      [
        ("repl", Jsonl.String "subscribe");
        ("segment", Jsonl.Int segment);
        ("offset", Jsonl.Int offset);
      ]
  | Hello { resumed; last_seq } ->
    Jsonl.Obj
      [
        ("repl", Jsonl.String "hello");
        ("resumed", Jsonl.Bool resumed);
        ("last_seq", Jsonl.Int last_seq);
      ]
  | Snapshot { seq; data } ->
    Jsonl.Obj
      [
        ("repl", Jsonl.String "snapshot");
        ("seq", Jsonl.Int seq);
        ("data", Jsonl.String (to_hex data));
      ]
  | Open_segment seq ->
    Jsonl.Obj [ ("repl", Jsonl.String "open"); ("segment", Jsonl.Int seq) ]
  | At { last_seq; ms } ->
    Jsonl.Obj
      [
        ("repl", Jsonl.String "at");
        ("last_seq", Jsonl.Int last_seq);
        ("ms", Jsonl.Float ms);
      ]
  | Plan_get spec ->
    Jsonl.Obj
      [ ("repl", Jsonl.String "plan_get"); ("spec", Durable.Record.spec_to_json spec) ]
  | Plan { key; data } ->
    Jsonl.Obj
      ([ ("repl", Jsonl.String "plan"); ("key", Jsonl.String key) ]
      @
      match data with
      | Some payload -> [ ("data", Jsonl.String (to_hex payload)) ]
      | None -> [])

let to_line frame = Jsonl.to_string (to_json frame)

let ( let* ) = Result.bind

let int_field name json =
  match Option.bind (Jsonl.member name json) Jsonl.to_int with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "frame is missing integer field %S" name)

let of_json json =
  match Option.bind (Jsonl.member "repl" json) Jsonl.to_str with
  | None -> Error "not a replication frame (no \"repl\" field)"
  | Some kind -> (
    match kind with
    | "subscribe" ->
      let* segment = int_field "segment" json in
      let* offset = int_field "offset" json in
      Ok (Subscribe { segment; offset })
    | "hello" ->
      let* last_seq = int_field "last_seq" json in
      let resumed =
        Option.bind (Jsonl.member "resumed" json) Jsonl.to_bool = Some true
      in
      Ok (Hello { resumed; last_seq })
    | "snapshot" ->
      let* seq = int_field "seq" json in
      let* hex =
        match Option.bind (Jsonl.member "data" json) Jsonl.to_str with
        | Some s -> Ok s
        | None -> Error "snapshot frame is missing \"data\""
      in
      let* data = of_hex hex in
      Ok (Snapshot { seq; data })
    | "open" ->
      let* segment = int_field "segment" json in
      Ok (Open_segment segment)
    | "at" ->
      let* last_seq = int_field "last_seq" json in
      let ms =
        match Option.bind (Jsonl.member "ms" json) Jsonl.to_float with
        | Some v -> v
        | None -> 0.
      in
      Ok (At { last_seq; ms })
    | "plan_get" -> (
      match Jsonl.member "spec" json with
      | None -> Error "plan_get frame is missing \"spec\""
      | Some spec_json ->
        let* spec = Durable.Record.spec_of_json spec_json in
        Ok (Plan_get spec))
    | "plan" -> (
      let key =
        match Option.bind (Jsonl.member "key" json) Jsonl.to_str with
        | Some k -> k
        | None -> ""
      in
      match Option.bind (Jsonl.member "data" json) Jsonl.to_str with
      | None -> Ok (Plan { key; data = None })
      | Some hex ->
        let* data = of_hex hex in
        Ok (Plan { key; data = Some data }))
    | other -> Error (Printf.sprintf "unknown replication frame %S" other))

let of_line line =
  let* json = Jsonl.of_string line in
  of_json json

(* A feed stream interleaves control frames with verbatim record
   lines; the ["repl"] member is what tells them apart (records carry
   ["rec"]). *)
let classify line =
  match Jsonl.of_string line with
  | Error msg -> Error msg
  | Ok json -> (
    match Jsonl.member "repl" json with
    | Some _ -> ( match of_json json with Ok f -> Ok (`Frame f) | Error e -> Error e)
    | None -> Ok (`Record line))
