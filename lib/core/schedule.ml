type t = {
  mixers : int;
  cycles : int array;
  mixer_of : int array;
  tc : int;
}

let mixers s = s.mixers

let cycle s id =
  if id < 0 || id >= Array.length s.cycles then
    invalid_arg "Schedule.cycle: id out of range";
  s.cycles.(id)

let mixer s id =
  if id < 0 || id >= Array.length s.mixer_of then
    invalid_arg "Schedule.mixer: id out of range";
  s.mixer_of.(id)

let completion_time s = s.tc

let at_cycle s t =
  let ids = ref [] in
  Array.iteri (fun id c -> if c = t then ids := id :: !ids) s.cycles;
  List.sort (fun a b -> Int.compare s.mixer_of.(a) s.mixer_of.(b)) !ids

exception Invalid of string

(* Every schedule goes through [create] → [validate], so this is on the
   scheduling hot path: plain loops over a flat slot array, and error
   messages are only formatted on the (exceptional) failure branch. *)
let validate ~plan s =
  let fail fmt = Format.kasprintf (fun m -> raise (Invalid m)) fmt in
  try
    let n = Plan.n_nodes plan in
    if Array.length s.cycles <> n || Array.length s.mixer_of <> n then
      fail "schedule covers %d nodes, plan has %d" (Array.length s.cycles) n;
    if s.mixers < 1 then fail "no mixers";
    let tc = Array.fold_left max 0 s.cycles in
    let slots = Array.make (tc * s.mixers) (-1) in
    List.iter
      (fun node ->
        let id = node.Plan.id in
        let t = s.cycles.(id) and m = s.mixer_of.(id) in
        if t < 1 then fail "node %d unscheduled" id;
        if m < 1 || m > s.mixers then fail "node %d on bad mixer %d" id m;
        let slot = ((t - 1) * s.mixers) + (m - 1) in
        if slots.(slot) >= 0 then
          fail "mixer %d double-booked at cycle %d" m t;
        slots.(slot) <- id;
        List.iter
          (fun producer ->
            if s.cycles.(producer) >= t then
              fail "node %d at cycle %d consumes droplet produced at cycle %d"
                id t s.cycles.(producer))
          (Plan.predecessors node))
      (Plan.nodes plan);
    Ok ()
  with Invalid msg -> Error msg

let create ~plan ~mixers ~cycles ~mixer_of =
  let tc = Array.fold_left max 0 cycles in
  let s = { mixers; cycles; mixer_of; tc } in
  match validate ~plan s with
  | Ok () -> s
  | Error msg -> invalid_arg ("Schedule.create: " ^ msg)

(* A correct scheduler launches at least one node per cycle once its
   ready set is non-empty, so a run needs at most [nodes] productive
   cycles plus [depth] warm-up cycles (MMS walks one forest level per
   cycle before draining, and a level can be empty of ready work when
   earlier levels were collapsed by droplet reuse).  Doubling that and
   adding two gives a slack bound that no well-formed plan can reach:
   hitting it means the pending counts are corrupt, not that the plan is
   merely deep. *)
let no_progress_bound ~nodes ~depth = (2 * (nodes + depth)) + 2

let emission_order ~plan s =
  Plan.roots plan
  |> List.map (fun r -> (s.cycles.(r), r))
  |> List.sort compare
