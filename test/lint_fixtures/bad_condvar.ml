(* DML004: Condition.wait without the paired mutex held is undefined
   behaviour — the wakeup can be lost. *)

let m = Mutex.create ()
let ready = Condition.create ()

let await () = Condition.wait ready m
