(** Boot-time recovery: latest valid snapshot + journal tail.

    {!recover} rebuilds the durable {!State} a crashed daemon left
    behind: load the newest snapshot that verifies, then apply every
    journal record with a later sequence number, segment by segment, in
    order.  The first record in a segment that fails to verify — CRC
    mismatch, JSON parse error, an over-long or truncated line — marks
    a torn tail: that record and everything after it {e in that
    segment} is dropped (and counted), and replay moves to the next
    segment.  A sequence-number gap between surviving records aborts
    the replay at the gap instead of rebuilding a state that never
    existed.

    The rebuilt state carries only request specs; the caller re-derives
    cached plans by re-running the deterministic planner
    ({!Service.Server.prime} via {!Manager}).

    {!recover} itself never writes: torn segments are reported in
    {!field-stats.repairs} and it is the caller's job ({!Manager.start})
    to truncate them back to their valid prefix {e before} appending to
    the directory again.  Otherwise a segment whose {e first} record was
    torn would be re-opened for append at the same [start_seq] and the
    new record's bytes would merge with the torn partial line into one
    unreadable record. *)

type stats = {
  snapshot_seq : int option;  (** Snapshot the recovery started from. *)
  replayed : int;  (** Journal records applied on top of it. *)
  truncated : int;  (** Torn or invalid journal lines dropped. *)
  gap : bool;  (** A sequence gap stopped the replay early. *)
  wall_ms : float;  (** Snapshot load + replay time. *)
  next_seq : int;  (** First unused sequence number after recovery. *)
  repairs : (string * int) list;
      (** [(path, valid_bytes)] for each segment holding torn bytes:
          everything past [valid_bytes] failed to verify and must be
          truncated away before the journal accepts new appends. *)
}

val recover : dir:string -> cache_capacity:int -> State.t * stats
(** A missing or empty [dir] recovers to the empty state (all-zero
    stats, [next_seq = 1]). *)
