lib/core/compare.ml: Baseline Engine List Metrics Mixtree Streaming
