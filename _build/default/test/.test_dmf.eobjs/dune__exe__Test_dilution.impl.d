test/test_dilution.ml: Alcotest Dmf Generators List Mdst Mixtree Printf QCheck2 Result
