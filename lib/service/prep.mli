(** Execution of one planning job: the bridge from a validated request
    spec to the MDST engine.

    A spec without a storage budget runs the single-pass engine
    ({!Mdst.Engine.prepare}); with one, the multi-pass streaming engine
    ({!Mdst.Streaming.run}).  The result keeps the plan and schedule of
    single-pass runs so in-process callers (tests, the coalescing
    correctness check) can re-validate them; the wire protocol only
    ships the summary. *)

type prepared = {
  summary : Response.summary;
  instr : Mdst.Instr.counters;
      (** Scheduler-core counters of the run, aggregated over every
          pass for streaming runs — shipped as the response's [instr]
          object. *)
  plan : Mdst.Plan.t option;  (** [None] for multi-pass streaming runs. *)
  schedule : Mdst.Schedule.t option;
}

val run : Request.spec -> prepared
(** Build and schedule the forest for the spec.
    @raise Invalid_argument on inconsistent engine parameters (callers
    go through {!Validate.protect}). *)
