lib/core/report.ml: Array List Printf String
