type cycle_report = {
  cycle : int;
  moves : int;
  serial_steps : int;
  parallel_steps : int;
  fallback : bool;
}

type t = {
  cycles : cycle_report list;
  total_serial : int;
  total_parallel : int;
  speedup : float;
  fallbacks : int;
}

(* Hand out distinct cells of a module to the droplets of one batch that
   start or end there (two operands of one mixer, several dispenses from
   one reservoir, ...). *)
let make_cell_allocator layout =
  let used : (string, int) Hashtbl.t = Hashtbl.create 16 in
  fun module_id ->
    let m = Chip.Layout.find_exn layout module_id in
    let cells = Chip.Geometry.rect_cells m.Chip.Chip_module.rect in
    let index = Option.value ~default:0 (Hashtbl.find_opt used module_id) in
    Hashtbl.replace used module_id (index + 1);
    List.nth cells (index mod List.length cells)

let analyze ~layout ~plan ~schedule =
  match Chip.Actuation.account ~layout ~plan ~schedule with
  | Error e -> Error e
  | Ok accounting ->
    let by_cycle : (int, Chip.Actuation.movement list) Hashtbl.t =
      Hashtbl.create 32
    in
    List.iter
      (fun m ->
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt by_cycle m.Chip.Actuation.cycle)
        in
        Hashtbl.replace by_cycle m.Chip.Actuation.cycle (m :: existing))
      accounting.Chip.Actuation.movements;
    let cycles =
      Hashtbl.fold (fun cycle movements acc -> (cycle, List.rev movements) :: acc) by_cycle []
      |> List.sort compare
    in
    let scratch = Chip.Parallel_router.Scratch.create () in
    let reports =
      List.map
        (fun (cycle, movements) ->
          let allocate = make_cell_allocator layout in
          let requests =
            List.mapi
              (fun i m ->
                {
                  Chip.Parallel_router.id = i;
                  src = allocate m.Chip.Actuation.src;
                  dst = allocate m.Chip.Actuation.dst;
                  allow = [ m.Chip.Actuation.src; m.Chip.Actuation.dst ];
                })
              movements
          in
          let serial_steps =
            List.fold_left (fun acc m -> acc + m.Chip.Actuation.cost) 0 movements
          in
          match Chip.Parallel_router.route_batch ~scratch layout requests with
          | Ok routed ->
            {
              cycle;
              moves = List.length movements;
              serial_steps;
              parallel_steps = Chip.Parallel_router.makespan routed;
              fallback = false;
            }
          | Error _ ->
            {
              cycle;
              moves = List.length movements;
              serial_steps;
              parallel_steps = serial_steps;
              fallback = true;
            })
        cycles
    in
    let total_serial =
      List.fold_left (fun acc r -> acc + r.serial_steps) 0 reports
    in
    let total_parallel =
      List.fold_left (fun acc r -> acc + r.parallel_steps) 0 reports
    in
    Ok
      {
        cycles = reports;
        total_serial;
        total_parallel;
        speedup =
          (if total_parallel = 0 then 1.
           else float_of_int total_serial /. float_of_int total_parallel);
        fallbacks =
          List.length (List.filter (fun r -> r.fallback) reports);
      }
