lib/bioproto/protocols.ml: Dmf List String
