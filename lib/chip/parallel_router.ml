type request = {
  id : int;
  src : Geometry.point;
  dst : Geometry.point;
  allow : string list;
}

type routed = { id : int; trajectory : Geometry.point list }

let makespan = function
  | [] -> 0
  | routed ->
    List.fold_left
      (fun acc r -> max acc (List.length r.trajectory - 1))
      0 routed

(* Position of a parked-after-arrival trajectory at any sub-step. *)
let position_at (positions : Geometry.point array) t =
  if t < 0 then positions.(0)
  else positions.(min t (Array.length positions - 1))

(* The dynamic fluidic constraint between two droplets, with the
   same-module exemption (operands meeting inside one mixer). *)
let cells_conflict layout a b =
  if Geometry.chebyshev a b > 1 then false
  else
    match (Layout.module_at layout a, Layout.module_at layout b) with
    | Some ma, Some mb when ma.Chip_module.id = mb.Chip_module.id -> false
    | Some _, Some _ | Some _, None | None, Some _ | None, None -> true

(* The search runs on a time-expanded grid of (cell, sub-step) nodes,
   node index [t * cells + cell].  Instead of testing every candidate
   step against every reserved trajectory, each reservation is marked
   once into a stamped conflict grid — cell c is marked at sub-step t
   when some reserved droplet sits within Chebyshev distance 1 of c at
   t (minus the same-module exemption) — so the BFS tests a step in
   O(1) and parking in O(1) via the latest marked sub-step per cell.
   Stamps make clearing free: bumping a generation counter invalidates
   every mark and visit at once. *)
module Scratch = struct
  type t = {
    mutable cells : int; (* per-cell capacity *)
    mutable nodes : int; (* (horizon+1) * cells capacity *)
    mutable visited : int array; (* BFS visit stamp per node *)
    mutable parent : int array; (* predecessor node; -1 = root *)
    mutable queue : int array; (* FIFO ring over nodes *)
    mutable bfs_stamp : int;
    mutable conflict : int array; (* reservation mark stamp per node *)
    mutable last_conflict : int array; (* per cell: latest marked sub-step *)
    mutable last_stamp : int array; (* stamp guarding last_conflict *)
    mutable mark_stamp : int;
  }

  let create () =
    {
      cells = 0;
      nodes = 0;
      visited = [||];
      parent = [||];
      queue = [||];
      bfs_stamp = 0;
      conflict = [||];
      last_conflict = [||];
      last_stamp = [||];
      mark_stamp = 0;
    }

  let ensure t ~cells ~nodes =
    if t.nodes < nodes then begin
      t.visited <- Array.make nodes 0;
      t.parent <- Array.make nodes (-1);
      t.queue <- Array.make nodes 0;
      t.conflict <- Array.make nodes 0;
      t.nodes <- nodes;
      t.bfs_stamp <- 0;
      t.mark_stamp <- 0
    end;
    if t.cells < cells then begin
      t.last_conflict <- Array.make cells (-1);
      t.last_stamp <- Array.make cells 0;
      t.cells <- cells
    end
end

(* Mark one reserved trajectory into the conflict grid, sub-steps 0
   through [horizon] (the droplet parks at its last position). *)
let mark_trajectory scratch layout ~cells ~horizon positions =
  let width = Layout.width layout and height = Layout.height layout in
  let stamp = scratch.Scratch.mark_stamp in
  let conflict = scratch.Scratch.conflict
  and last_conflict = scratch.Scratch.last_conflict
  and last_stamp = scratch.Scratch.last_stamp in
  for t = 0 to horizon do
    let q = position_at positions t in
    let mq = Layout.module_index_at layout q in
    for dy = -1 to 1 do
      let y = q.Geometry.y + dy in
      if y >= 0 && y < height then
        for dx = -1 to 1 do
          let x = q.Geometry.x + dx in
          if x >= 0 && x < width then begin
            let ci = (y * width) + x in
            let mc = Layout.module_index_at layout { Geometry.x = x; y } in
            if not (mc >= 0 && mc = mq) then begin
              conflict.((t * cells) + ci) <- stamp;
              if last_stamp.(ci) <> stamp then begin
                last_stamp.(ci) <- stamp;
                last_conflict.(ci) <- t
              end
              else if last_conflict.(ci) < t then last_conflict.(ci) <- t
            end
          end
        done
    done
  done

let route_one_flat scratch layout ~cells ~horizon request =
  let width = Layout.width layout in
  let mask = Array.make (max 1 (Layout.module_count layout)) false in
  List.iter
    (fun id ->
      match Layout.index_of_id layout id with
      | Some i -> mask.(i) <- true
      | None -> ())
    request.allow;
  let allowed_cell p =
    Layout.in_bounds layout p
    &&
    let mi = Layout.module_index_at layout p in
    mi = -1 || mask.(mi)
  in
  if not (allowed_cell request.src && allowed_cell request.dst) then None
  else begin
    scratch.Scratch.bfs_stamp <- scratch.Scratch.bfs_stamp + 1;
    let stamp = scratch.Scratch.bfs_stamp in
    let mark = scratch.Scratch.mark_stamp in
    let visited = scratch.Scratch.visited
    and parent = scratch.Scratch.parent
    and queue = scratch.Scratch.queue
    and conflict = scratch.Scratch.conflict
    and last_conflict = scratch.Scratch.last_conflict
    and last_stamp = scratch.Scratch.last_stamp in
    let conflict_at t ci =
      conflict.(((if t < 0 then 0 else t) * cells) + ci) = mark
    in
    (* A step of [p] (from [prev]) at sub-step [t] violates segregation
       against some reservation at t or an adjacent sub-step. *)
    let step_blocked ~p ~prev t =
      conflict_at t p || conflict_at (t - 1) p || conflict_at t prev
    in
    (* Parking at [ci] from [from_t] onwards is clear iff no reservation
       marks the cell at any sub-step >= from_t - 1. *)
    let can_park ci ~from_t =
      let lc = if last_stamp.(ci) = mark then last_conflict.(ci) else -1 in
      lc < max 0 (from_t - 1)
    in
    let cell_of (p : Geometry.point) = (p.Geometry.y * width) + p.Geometry.x in
    let src_ci = cell_of request.src and dst_ci = cell_of request.dst in
    let root = src_ci in
    visited.(root) <- stamp;
    parent.(root) <- -1;
    let head = ref 0 and tail = ref 0 in
    if not (step_blocked ~p:src_ci ~prev:src_ci 0) then begin
      queue.(!tail) <- root;
      incr tail
    end;
    let goal = ref (-1) in
    while !goal < 0 && !head < !tail do
      let node = queue.(!head) in
      incr head;
      let t = node / cells and ci = node mod cells in
      if ci = dst_ci && can_park ci ~from_t:t then goal := node
      else if t < horizon then begin
        let x = ci mod width and y = ci / width in
        let visit nx ny =
          let p = { Geometry.x = nx; y = ny } in
          if allowed_cell p then begin
            let nci = (ny * width) + nx in
            let nnode = ((t + 1) * cells) + nci in
            if
              visited.(nnode) <> stamp
              && not (step_blocked ~p:nci ~prev:ci (t + 1))
            then begin
              visited.(nnode) <- stamp;
              parent.(nnode) <- node;
              queue.(!tail) <- nnode;
              incr tail
            end
          end
        in
        (* Wait in place first, then the neighbours4 order — the same
           expansion order as [Reference.route_one]. *)
        visit x y;
        visit (x - 1) y;
        visit (x + 1) y;
        visit x (y - 1);
        visit x (y + 1)
      end
    done;
    if !goal < 0 then None
    else begin
      let rec backtrack node acc =
        let ci = node mod cells in
        let p = { Geometry.x = ci mod width; y = ci / width } in
        if parent.(node) < 0 then p :: acc
        else backtrack parent.(node) (p :: acc)
      in
      Some (backtrack !goal [])
    end
  end

let default_horizon layout =
  4 * 2 * (Layout.width layout + Layout.height layout)

let route_batch ?scratch ?horizon layout requests =
  let scratch =
    match scratch with Some s -> s | None -> Scratch.create ()
  in
  let horizon =
    match horizon with Some h -> h | None -> default_horizon layout
  in
  let cells = Layout.width layout * Layout.height layout in
  Scratch.ensure scratch ~cells ~nodes:((horizon + 1) * cells);
  let ordered =
    List.stable_sort
      (fun a b ->
        Int.compare
          (Geometry.manhattan b.src b.dst)
          (Geometry.manhattan a.src a.dst))
      requests
  in
  let rec plan routed = function
    | [] -> Ok (List.rev routed)
    | request :: rest -> (
      match route_one_flat scratch layout ~cells ~horizon request with
      | None -> Error (request : request)
      | Some trajectory ->
        mark_trajectory scratch layout ~cells ~horizon
          (Array.of_list trajectory);
        plan ({ id = request.id; trajectory } :: routed) rest)
  in
  (* Prioritised planning is order-sensitive: a droplet routed early may
     cut through the still-parked source of a later one.  On failure,
     promote the failed droplet to the front and replan — at most once
     per droplet. *)
  let rec attempt order retries =
    (* A fresh mark generation drops every reservation of the failed
       attempt at once. *)
    scratch.Scratch.mark_stamp <- scratch.Scratch.mark_stamp + 1;
    match plan [] order with
    | Ok routed -> Ok routed
    | Error (failed : request) ->
      if retries <= 0 then
        Error
          (Printf.sprintf
             "droplet %d cannot reach (%d,%d) within %d sub-steps" failed.id
             failed.dst.Geometry.x failed.dst.Geometry.y horizon)
      else
        let rest = List.filter (fun (r : request) -> r.id <> failed.id) order in
        attempt (failed :: rest) (retries - 1)
  in
  match attempt ordered (List.length ordered) with
  | Error _ as e -> e
  | Ok routed ->
    (* Pad every trajectory to the common makespan: droplets park. *)
    let span = makespan routed in
    let pad r =
      let last = List.nth r.trajectory (List.length r.trajectory - 1) in
      let missing = span + 1 - List.length r.trajectory in
      { r with trajectory = r.trajectory @ List.init missing (fun _ -> last) }
    in
    Ok (List.map pad routed)

(* The original space-time planner — per-call Hashtbl parent maps and a
   linear scan of every reserved trajectory per expansion — kept as the
   differential reference for the stamped-grid implementation. *)
module Reference = struct
  let step_conflicts layout ~candidate ~candidate_prev reserved t =
    List.exists
      (fun positions ->
        let now = position_at positions t in
        let before = position_at positions (t - 1) in
        cells_conflict layout candidate now
        || cells_conflict layout candidate before
        || cells_conflict layout candidate_prev now)
      reserved

  (* Once arrived, the droplet parks at [cell]: it must stay clear of
     every reserved trajectory for the rest of the horizon. *)
  let can_park layout reserved cell ~from_t ~horizon =
    let rec check t =
      if t > horizon then true
      else if
        step_conflicts layout ~candidate:cell ~candidate_prev:cell reserved t
      then false
      else check (t + 1)
    in
    check from_t

  let route_one layout ~horizon ~reserved request =
    let allowed_cell p =
      Layout.in_bounds layout p
      &&
      match Layout.module_at layout p with
      | None -> true
      | Some m -> List.mem m.Chip_module.id request.allow
    in
    if not (allowed_cell request.src && allowed_cell request.dst) then None
    else begin
      let key (p : Geometry.point) t =
        ((p.Geometry.y * 4096) + p.Geometry.x, t)
      in
      let parent = Hashtbl.create 256 in
      let queue = Queue.create () in
      let goal = ref None in
      Hashtbl.add parent (key request.src 0) None;
      if
        not
          (step_conflicts layout ~candidate:request.src
             ~candidate_prev:request.src reserved 0)
      then Queue.push (request.src, 0) queue;
      while !goal = None && not (Queue.is_empty queue) do
        let p, t = Queue.pop queue in
        if
          p = request.dst
          && can_park layout reserved p ~from_t:t ~horizon
        then goal := Some (p, t)
        else if t < horizon then
          List.iter
            (fun next ->
              if
                allowed_cell next
                && (not (Hashtbl.mem parent (key next (t + 1))))
                && not
                     (step_conflicts layout ~candidate:next ~candidate_prev:p
                        reserved (t + 1))
              then begin
                Hashtbl.add parent (key next (t + 1)) (Some (p, t));
                Queue.push (next, t + 1) queue
              end)
            (p :: Geometry.neighbours4 p)
        done;
      match !goal with
      | None -> None
      | Some (p, t) ->
        let rec backtrack (p, t) acc =
          match Hashtbl.find parent (key p t) with
          | None -> p :: acc
          | Some prev -> backtrack prev (p :: acc)
        in
        Some (backtrack (p, t) [])
    end

  let route_batch ?horizon layout requests =
    let horizon =
      match horizon with Some h -> h | None -> default_horizon layout
    in
    let ordered =
      List.stable_sort
        (fun a b ->
          Int.compare
            (Geometry.manhattan b.src b.dst)
            (Geometry.manhattan a.src a.dst))
        requests
    in
    let rec plan reserved routed = function
      | [] -> Ok (List.rev routed)
      | request :: rest -> (
        match route_one layout ~horizon ~reserved request with
        | None -> Error (request : request)
        | Some trajectory ->
          let positions = Array.of_list trajectory in
          plan (positions :: reserved)
            ({ id = request.id; trajectory } :: routed)
            rest)
    in
    let rec attempt order retries =
      match plan [] [] order with
      | Ok routed -> Ok routed
      | Error (failed : request) ->
        if retries <= 0 then
          Error
            (Printf.sprintf
               "droplet %d cannot reach (%d,%d) within %d sub-steps" failed.id
               failed.dst.Geometry.x failed.dst.Geometry.y horizon)
        else
          let rest =
            List.filter (fun (r : request) -> r.id <> failed.id) order
          in
          attempt (failed :: rest) (retries - 1)
    in
    match attempt ordered (List.length ordered) with
    | Error _ as e -> e
    | Ok routed ->
      let span = makespan routed in
      let pad r =
        let last = List.nth r.trajectory (List.length r.trajectory - 1) in
        let missing = span + 1 - List.length r.trajectory in
        { r with trajectory = r.trajectory @ List.init missing (fun _ -> last) }
      in
      Ok (List.map pad routed)
end

let validate layout routed =
  let check cond fmt =
    Format.kasprintf (fun s -> if cond then Ok () else Error s) fmt
  in
  let ( let* ) = Result.bind in
  let rec each f = function
    | [] -> Ok ()
    | x :: rest ->
      let* () = f x in
      each f rest
  in
  let span = makespan routed in
  let* () =
    each
      (fun r ->
        let* () =
          check
            (List.length r.trajectory = span + 1)
            "droplet %d trajectory not padded" r.id
        in
        let rec steps = function
          | a :: (b :: _ as rest) ->
            let* () =
              check
                (Geometry.manhattan a b <= 1)
                "droplet %d teleports" r.id
            in
            let* () =
              check (Layout.in_bounds layout b) "droplet %d leaves the grid"
                r.id
            in
            steps rest
          | [ _ ] | [] -> Ok ()
        in
        steps r.trajectory)
      routed
  in
  let arr = List.map (fun r -> (r.id, Array.of_list r.trajectory)) routed in
  let rec pairs = function
    | [] -> Ok ()
    | (ida, pa) :: rest ->
      let* () =
        each
          (fun (idb, pb) ->
            let rec times t =
              if t > span then Ok ()
              else
                let* () =
                  check
                    (not
                       (cells_conflict layout (position_at pa t)
                          (position_at pb t)
                        || cells_conflict layout (position_at pa t)
                             (position_at pb (t - 1))
                        || cells_conflict layout
                             (position_at pa (t - 1))
                             (position_at pb t)))
                    "droplets %d and %d violate segregation at sub-step %d"
                    ida idb t
                in
                times (t + 1)
            in
            times 0)
          rest
      in
      pairs rest
  in
  pairs arr
