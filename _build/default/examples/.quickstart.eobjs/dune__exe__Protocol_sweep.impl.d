examples/protocol_sweep.ml: Bioproto Dmf List Mdst Mixtree Printf
