lib/mixtree/rma.mli: Dmf Tree
