let try_remove path =
  match Sys.remove path with () -> true | exception Sys_error _ -> false

let run ?store ~dir ~upto () =
  (match store with None -> () | Some s -> Plan_store.gc s);
  let segments = Wal.segments ~dir in
  (* A segment covers [start, next_start - 1]; without a successor its
     end is unknown, so it stays. *)
  let rec removable = function
    | (start, path) :: ((next_start, _) :: _ as rest) ->
      if next_start - 1 <= upto && start <= upto then
        path :: removable rest
      else removable rest
    | [ _ ] | [] -> []
  in
  let segs_removed =
    List.fold_left
      (fun n path -> if try_remove path then n + 1 else n)
      0 (removable segments)
  in
  let snaps_removed =
    List.fold_left
      (fun n (seq, path) ->
        if seq < upto && try_remove path then n + 1 else n)
      0 (Snapshot.list ~dir)
  in
  (segs_removed, snaps_removed)
