lib/sim/contamination.ml: Chip Dmf Hashtbl Int List Mdst Option Trace
