(* .cmt typed tree -> per-function event trees (Summary.event).

   The walk is evaluation-order-approximate: sequences, lets and
   applications emit events in source order; match/if/try fork into
   Branch nodes so a lock released on one path is not considered
   released on the others; closure literals passed as arguments are
   assumed to run at the call site (the List.iter convention) except
   under known thread-starters (Thread.create, Domain.spawn), where
   the body starts with an empty held set; statically known functions
   that escape as values (arguments, list elements, partial
   applications) become Ref events, which the fork-after-domain rule
   treats as "runs at or after this point in program order" — that is
   precisely the approximation that lets the analyzer see the ordering
   convention inside an Alcotest.run suite list or the bench
   experiment registry. *)

open Typedtree
module S = Summary

(* ------------------------------------------------------------------ *)
(* Path normalization                                                  *)

(* "Stdlib__Mutex.lock" -> "Mutex.lock"; "Service__Queue.submit" ->
   "Service.Queue.submit".  Dune wraps library modules as Lib__Module;
   the double underscore never appears in this codebase's own idents. *)
let normalize_name s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && s.[!i] = '_' && s.[!i + 1] = '_' then begin
      Buffer.add_char b '.';
      i := !i + 2
    end
    else begin
      Buffer.add_char b s.[!i];
      incr i
    end
  done;
  let s = Buffer.contents b in
  if String.length s > 7 && String.sub s 0 7 = "Stdlib." then
    String.sub s 7 (String.length s - 7)
  else s

(* ------------------------------------------------------------------ *)
(* Walk environment                                                    *)

type env = {
  unit_name : string;
  top_ids : (Ident.t, string) Hashtbl.t;  (* top-level binding -> qname *)
  mutable local_fns : Ident.t list;       (* let-bound function literals *)
  mutable params : Ident.t list;          (* enclosing top-level fn params *)
  enclosing : string;                     (* short name of enclosing fn *)
  mutable guarded : bool;                 (* inside an EINTR guard *)
  mutable acc : S.event list ref;
  (* per-unit collectors *)
  signal_roots : string list ref;
  signal_installs : bool ref;
  pseudo_funcs : S.func list ref;         (* synthesized handler bodies *)
}

let emit env ev = env.acc := ev :: !(env.acc)
let events_of acc = List.rev !acc

let loc_of e = S.loc_of_location e.exp_loc

let is_arrow ty =
  match Types.get_desc ty with Types.Tarrow _ -> true | _ -> false

(* The resolved, normalized name of an identifier — top-level values of
   the current unit come back qualified ("Service.Queue.locked"). *)
let ident_name env path =
  match path with
  | Path.Pident id -> (
    match Hashtbl.find_opt env.top_ids id with
    | Some q -> Some q
    | None -> None)
  | _ -> Some (normalize_name (Path.name path))

let is_local_fn env id = List.exists (fun i -> Ident.same i id) env.local_fns

let param_index env id =
  let rec go i = function
    | [] -> None
    | p :: rest -> if Ident.same p id then Some i else go (i + 1) rest
  in
  go 0 env.params

(* ------------------------------------------------------------------ *)
(* Lock classes                                                        *)

let type_head env ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> (
    match p with
    | Path.Pident id -> env.unit_name ^ "." ^ Ident.name id
    | _ -> normalize_name (Path.name p))
  | _ -> "?"

let lock_class env e =
  match e.exp_desc with
  | Texp_field (r, _, lbl) -> type_head env r.exp_type ^ "." ^ lbl.lbl_name
  | Texp_ident (Path.Pident id, _, _) when not (Hashtbl.mem env.top_ids id) ->
    env.unit_name ^ "." ^ env.enclosing ^ "." ^ Ident.name id
  | Texp_ident (path, _, _) -> (
    match ident_name env path with
    | Some n -> n
    | None -> env.unit_name ^ "." ^ env.enclosing ^ "." ^ Path.last path)
  | _ ->
    Printf.sprintf "%s.%s.<lock@%d>" env.unit_name env.enclosing
      (loc_of e).S.line

(* ------------------------------------------------------------------ *)
(* EINTR-pattern detection                                             *)

let pattern_mentions_eintr : type k. k general_pattern -> bool =
 fun pat ->
  let found = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      pat =
        (fun (type k) it (p : k general_pattern) ->
          (match p.pat_desc with
          | Tpat_construct (_, cd, _, _) ->
            if cd.Types.cstr_name = "EINTR" then found := true
          | _ -> ());
          Tast_iterator.default_iterator.pat it p);
    }
  in
  it.pat it pat;
  !found

(* ------------------------------------------------------------------ *)
(* Prim sets                                                           *)

let fresh_context_callees = [ "Thread.create"; "Domain.spawn" ]

(* ------------------------------------------------------------------ *)
(* The walk                                                            *)

let rec walk env e =
  match e.exp_desc with
  | Texp_apply (fn, args) -> walk_apply env e fn args
  | Texp_ident (path, _, _) ->
    (* A statically known function escaping as a value. *)
    if is_arrow e.exp_type then (
      match path with
      | Path.Pident id when is_local_fn env id -> ()
      | Path.Pident id when param_index env id <> None -> ()
      | _ -> (
        match ident_name env path with
        | Some n when String.contains n '.' ->
          emit env (S.Ref { name = n; loc = loc_of e })
        | Some _ | None -> ()))
  | Texp_let (_, vbs, body) ->
    List.iter
      (fun vb ->
        (match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
        | Tpat_var (id, _), Texp_function _ -> env.local_fns <- id :: env.local_fns
        | _ -> ());
        walk env vb.vb_expr)
      vbs;
    walk env body
  | Texp_sequence (a, b) ->
    walk env a;
    walk env b
  | Texp_ifthenelse (c, a, b) ->
    walk env c;
    let alt_a = branch env (fun () -> walk env a) in
    let alt_b =
      branch env (fun () -> match b with Some b -> walk env b | None -> ())
    in
    emit env (S.Branch [ alt_a; alt_b ])
  | Texp_match (scrut, cases, _) ->
    let eintr =
      List.exists
        (fun c ->
          match Typedtree.split_pattern c.c_lhs with
          | _, Some exn_pat -> pattern_mentions_eintr exn_pat
          | _, None -> false)
        cases
    in
    with_guard env eintr (fun () -> walk env scrut);
    let alts =
      List.map
        (fun c ->
          branch env (fun () ->
              (match c.c_guard with Some g -> walk env g | None -> ());
              walk env c.c_rhs))
        cases
    in
    emit env (S.Branch alts)
  | Texp_try (body, cases) ->
    let eintr = List.exists (fun c -> pattern_mentions_eintr c.c_lhs) cases in
    with_guard env eintr (fun () -> walk env body);
    let alts =
      branch env (fun () -> ())
      :: List.map (fun c -> branch env (fun () -> walk env c.c_rhs)) cases
    in
    emit env (S.Branch alts)
  | Texp_function { cases; _ } ->
    (* A closure reached in expression position: its body is assumed
       to run here (invoke_fn_arg / ClosureArg route most closures
       before this point).  Multi-case [function] bodies fork like a
       match. *)
    let alts =
      List.map
        (fun c ->
          branch env (fun () ->
              (match c.c_guard with Some g -> walk env g | None -> ());
              walk env c.c_rhs))
        cases
    in
    emit env (S.Branch alts)
  | Texp_construct (lid, cd, args) ->
    (if cd.Types.cstr_name = "Signal_handle" then begin
       ignore lid;
       env.signal_installs := true;
       match args with
       | [ handler ] -> signal_handler env handler
       | _ -> ()
     end);
    List.iter (walk env) args
  | _ -> walk_children env e

and with_guard env flag f =
  if flag then begin
    let saved = env.guarded in
    env.guarded <- true;
    f ();
    env.guarded <- saved
  end
  else f ()

(* Run [f] with a fresh accumulator; return its events. *)
and branch env f =
  let saved = env.acc in
  let fresh = ref [] in
  env.acc <- fresh;
  f ();
  env.acc <- saved;
  events_of fresh

(* Register the handler function/closure installed via Signal_handle:
   its body becomes a pseudo-function so the eintr-unsafe rule can
   treat it as a signal root. *)
and signal_handler env handler =
  match handler.exp_desc with
  | Texp_ident (path, _, _) -> (
    match ident_name env path with
    | Some n -> env.signal_roots := n :: !(env.signal_roots)
    | None -> ())
  | Texp_function _ ->
    let name =
      Printf.sprintf "%s.<signal-handler@%d>" env.unit_name
        (loc_of handler).S.line
    in
    let body = branch env (fun () -> walk_children env handler) in
    env.pseudo_funcs :=
      { S.qname = name; floc = loc_of handler; events = body }
      :: !(env.pseudo_funcs);
    env.signal_roots := name :: !(env.signal_roots)
  | _ -> walk env handler

(* Emit the invocation of an argument that a known combinator calls:
   a closure literal is inlined (held set applies), an identifier
   becomes a Call event. *)
and invoke_fn_arg env arg =
  match arg.exp_desc with
  | Texp_function _ -> walk env arg
  | _ -> (
    match callee_of env arg with
    | Some c -> emit env (S.Call { callee = c; loc = loc_of arg; guarded = env.guarded })
    | None -> walk env arg)

and callee_of env fn =
  match fn.exp_desc with
  | Texp_ident (Path.Pident id, _, _) when is_local_fn env id ->
    None  (* body already inlined at its definition *)
  | Texp_ident (Path.Pident id, _, _) -> (
    match Hashtbl.find_opt env.top_ids id with
    | Some q -> Some (S.Global q)
    | None ->
      Some
        (S.Callback { name = Ident.name id; param_index = param_index env id }))
  | Texp_ident (path, _, _) -> (
    match ident_name env path with
    | Some n -> Some (S.Global n)
    | None -> None)
  | Texp_field (r, _, lbl) ->
    ignore r;
    Some (S.Callback { name = "." ^ lbl.Types.lbl_name; param_index = None })
  | _ -> None

and walk_apply env e fn args =
  let callee = callee_of env fn in
  let name = match callee with Some (S.Global n) -> Some n | _ -> None in
  let arg_exprs =
    List.filter_map (fun (lbl, a) -> Option.map (fun a -> (lbl, a)) a) args
  in
  let plain_arg i =
    match List.nth_opt arg_exprs i with Some (_, a) -> Some a | None -> None
  in
  match name with
  | Some ("Mutex.lock" | "Mutex.try_lock") -> (
    match plain_arg 0 with
    | Some m ->
      emit env (S.Acquire { lock = lock_class env m; loc = loc_of e })
    | None -> walk_generic_apply env e fn args)
  | Some "Mutex.unlock" -> (
    match plain_arg 0 with
    | Some m -> emit env (S.Release { lock = lock_class env m })
    | None -> walk_generic_apply env e fn args)
  | Some "Mutex.protect" -> (
    match (plain_arg 0, plain_arg 1) with
    | Some m, Some f ->
      let cls = lock_class env m in
      emit env (S.Acquire { lock = cls; loc = loc_of e });
      invoke_fn_arg env f;
      emit env (S.Release { lock = cls })
    | _ -> walk_generic_apply env e fn args)
  | Some "Condition.wait" -> (
    match (plain_arg 0, plain_arg 1) with
    | Some c, Some m ->
      emit env
        (S.Wait
           { cond = lock_class env c; mutex = lock_class env m; loc = loc_of e })
    | _ -> walk_generic_apply env e fn args)
  | Some "Fun.protect" ->
    let finally =
      List.find_opt
        (fun (lbl, _) ->
          match lbl with
          | Asttypes.Labelled "finally" | Asttypes.Optional "finally" -> true
          | _ -> false)
        arg_exprs
    in
    let main =
      List.find_opt
        (fun (lbl, _) ->
          match lbl with Asttypes.Nolabel -> true | _ -> false)
        arg_exprs
    in
    (match main with Some (_, f) -> invoke_fn_arg env f | None -> ());
    (match finally with Some (_, f) -> invoke_fn_arg env f | None -> ())
  | Some "Analysis.Runtime.retry_eintr" -> (
    match plain_arg 0 with
    | Some f -> with_guard env true (fun () -> invoke_fn_arg env f)
    | None -> ())
  | _ -> walk_generic_apply env e fn args

and walk_generic_apply env e fn args =
  let callee = callee_of env fn in
  let name = match callee with Some (S.Global n) -> Some n | _ -> None in
  (* Walk the callee expression itself when it is not an identifier
     (e.g. an application returning a function). *)
  (match fn.exp_desc with
  | Texp_ident _ -> ()
  | _ -> walk env fn);
  let arg_exprs =
    List.filter_map (fun (_, a) -> a) args
  in
  if is_arrow e.exp_type then begin
    (* Partial application: nothing runs now; the known callee escapes
       as a value. *)
    (match name with
    | Some n when String.contains n '.' ->
      emit env (S.Ref { name = n; loc = loc_of e })
    | _ -> ());
    List.iter (walk env) arg_exprs
  end
  else begin
    (* Non-closure arguments first (they may themselves be calls or
       escaping refs), then the call, then closure-literal arguments —
       which the callee is assumed to invoke at this point. *)
    List.iter
      (fun a ->
        match a.exp_desc with Texp_function _ -> () | _ -> walk env a)
      arg_exprs;
    (match callee with
    | Some c ->
      emit env (S.Call { callee = c; loc = loc_of e; guarded = env.guarded })
    | None -> ());
    let fresh =
      match name with
      | Some n -> List.mem n fresh_context_callees
      | None -> false
    in
    List.iteri
      (fun i a ->
        match a.exp_desc with
        | Texp_function _ ->
          let body = branch env (fun () -> walk env a) in
          emit env (S.ClosureArg { callee = name; index = i; fresh; body })
        | _ -> ())
      arg_exprs
  end

(* Generic structural recursion for everything without special
   handling: descend into immediate children, re-entering [walk]. *)
and walk_children env e =
  let it =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ child -> walk env child);
      (* Do not descend into module expressions from an expression
         context (first-class modules): out of scope. *)
      module_expr = (fun _ _ -> ());
    }
  in
  Tast_iterator.default_iterator.expr it e

(* ------------------------------------------------------------------ *)
(* Suppressions                                                        *)

let parse_allow_payload (attr : Parsetree.attribute) =
  match attr.Parsetree.attr_payload with
  | Parsetree.PStr
      [
        {
          pstr_desc =
            Pstr_eval
              ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                _ );
          _;
        };
      ] -> (
    match String.index_opt s ':' with
    | Some i when i > 0 ->
      let rule = String.trim (String.sub s 0 i) in
      let rationale =
        String.trim (String.sub s (i + 1) (String.length s - i - 1))
      in
      if rationale = "" || Ids.by_name rule = None then None
      else Some (rule, rationale)
    | Some _ | None -> None)
  | _ -> None

let collect_suppressions str =
  let sups = ref [] and bad = ref [] in
  let add (attrs : Parsetree.attributes) (region : Location.t) =
    List.iter
      (fun (attr : Parsetree.attribute) ->
        if attr.Parsetree.attr_name.txt = "dmflint.allow" then
          let aloc = S.loc_of_location attr.Parsetree.attr_loc in
          match parse_allow_payload attr with
          | Some (rule, rationale) ->
            sups :=
              {
                S.s_file = region.loc_start.Lexing.pos_fname;
                s_line_start = region.loc_start.Lexing.pos_lnum;
                s_line_end = region.loc_end.Lexing.pos_lnum;
                s_rule = rule;
                s_rationale = rationale;
                s_loc = aloc;
              }
              :: !sups
          | None -> bad := aloc :: !bad)
      attrs
  in
  let it =
    {
      Tast_iterator.default_iterator with
      value_binding =
        (fun it vb ->
          add vb.vb_attributes vb.vb_loc;
          Tast_iterator.default_iterator.value_binding it vb);
      expr =
        (fun it e ->
          add e.exp_attributes e.exp_loc;
          Tast_iterator.default_iterator.expr it e);
      structure_item =
        (fun it si ->
          (match si.str_desc with
          | Tstr_attribute attr ->
            (* Floating [@@@dmflint.allow ...]: whole-file scope. *)
            add [ attr ]
              {
                si.str_loc with
                loc_end =
                  { si.str_loc.loc_end with Lexing.pos_lnum = max_int };
              }
          | _ -> ());
          Tast_iterator.default_iterator.structure_item it si);
    }
  in
  it.structure it str;
  (!sups, !bad)

(* ------------------------------------------------------------------ *)
(* Structure -> unit_info                                              *)

let collect_top_ids unit_name str =
  let tbl = Hashtbl.create 64 in
  let rec pat_vars prefix p =
    match p.pat_desc with
    | Tpat_var (id, _) -> Hashtbl.replace tbl id (prefix ^ Ident.name id)
    | Tpat_alias (p, id, _) ->
      Hashtbl.replace tbl id (prefix ^ Ident.name id);
      pat_vars prefix p
    | Tpat_tuple ps -> List.iter (pat_vars prefix) ps
    | _ -> ()
  in
  let rec items prefix strc =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter (fun vb -> pat_vars prefix vb.vb_pat) vbs
        | Tstr_module mb -> sub prefix mb
        | Tstr_recmodule mbs -> List.iter (sub prefix) mbs
        | _ -> ())
      strc.str_items
  and sub prefix mb =
    let name =
      match mb.mb_id with Some id -> Ident.name id | None -> "_"
    in
    match mb.mb_expr.mod_desc with
    | Tmod_structure s -> items (prefix ^ name ^ ".") s
    | Tmod_constraint ({ mod_desc = Tmod_structure s; _ }, _, _, _) ->
      items (prefix ^ name ^ ".") s
    | _ -> ()
  in
  items (unit_name ^ ".") str;
  tbl

(* Peel the outer fun-chain of a top-level function, collecting the
   parameter idents in order; returns the innermost body. *)
let rec peel_params acc e =
  match e.exp_desc with
  | Texp_function { param; cases = [ c ]; _ } -> (
    ignore param;
    match c.c_guard with
    | Some _ -> (List.rev acc, Some e)
    | None ->
      let acc =
        match c.c_lhs.pat_desc with
        | Tpat_var (id, _) -> id :: acc
        | Tpat_alias (_, id, _) -> id :: acc
        | _ -> param :: acc
      in
      peel_params acc c.c_rhs)
  | _ -> (List.rev acc, Some e)

let of_structure ~modname str =
  let unit_name = normalize_name modname in
  let top_ids = collect_top_ids unit_name str in
  let signal_roots = ref [] in
  let signal_installs = ref false in
  let pseudo_funcs = ref [] in
  let mk_env enclosing acc =
    {
      unit_name;
      top_ids;
      local_fns = [];
      params = [];
      enclosing;
      guarded = false;
      acc;
      signal_roots;
      signal_installs;
      pseudo_funcs;
    }
  in
  let funcs = ref [] in
  let init_acc = ref [] in
  let rec do_items prefix strc =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) ->
          List.iter
            (fun vb ->
              match (vb.vb_pat.pat_desc, vb.vb_expr.exp_desc) with
              | Tpat_var (id, _), Texp_function _ ->
                let qname =
                  match Hashtbl.find_opt top_ids id with
                  | Some q -> q
                  | None -> prefix ^ Ident.name id
                in
                let short = Ident.name id in
                let params, body = peel_params [] vb.vb_expr in
                let acc = ref [] in
                let env = mk_env short acc in
                env.params <- params;
                (match body with
                | Some b when b != vb.vb_expr -> walk env b
                | _ -> walk_children env vb.vb_expr);
                funcs :=
                  {
                    S.qname;
                    floc = S.loc_of_location vb.vb_loc;
                    events = events_of acc;
                  }
                  :: !funcs
              | _ ->
                (* Top-level effectful binding: part of module init, in
                   structure order. *)
                let env = mk_env "<init>" init_acc in
                walk env vb.vb_expr)
            vbs
        | Tstr_eval (e, _) ->
          let env = mk_env "<init>" init_acc in
          walk env e
        | Tstr_module mb -> do_sub prefix mb
        | Tstr_recmodule mbs -> List.iter (do_sub prefix) mbs
        | _ -> ())
      strc.str_items
  and do_sub prefix mb =
    let name =
      match mb.mb_id with Some id -> Ident.name id | None -> "_"
    in
    match mb.mb_expr.mod_desc with
    | Tmod_structure s -> do_items (prefix ^ name ^ ".") s
    | Tmod_constraint ({ mod_desc = Tmod_structure s; _ }, _, _, _) ->
      do_items (prefix ^ name ^ ".") s
    | _ -> ()
  in
  do_items (unit_name ^ ".") str;
  let init_events = events_of init_acc in
  let init_func =
    {
      S.qname = unit_name ^ ".<init>";
      floc = { S.file = ""; line = 0; col = 0 };
      events = init_events;
    }
  in
  let suppressions, bad = collect_suppressions str in
  {
    S.modname = unit_name;
    funcs = List.rev ((init_func :: !pseudo_funcs) @ !funcs);
    suppressions;
    bad_suppressions = bad;
    signal_roots = !signal_roots;
    installs_signal_handler = !signal_installs;
  }
