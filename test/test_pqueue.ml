(* Property tests for the pairing heap: it backs both SRS priority
   queues, so its ordering guarantees are load-bearing for the
   schedulers' bit-identity story. *)

open QCheck2

let int_list_gen = Gen.(list_size (int_range 0 200) (int_range (-1000) 1000))
let print_ints = Print.list string_of_int
let sorted = List.sort Int.compare

let prop_to_sorted_list =
  Generators.qtest ~count:500 "to_sorted_list agrees with List.sort"
    int_list_gen print_ints (fun xs ->
      Mdst.Pqueue.to_sorted_list (Mdst.Pqueue.of_list ~compare:Int.compare xs)
      = sorted xs)

let prop_pop_after_union =
  Generators.qtest ~count:500 "pop after union yields the global minimum"
    (Gen.pair int_list_gen int_list_gen)
    (Print.pair print_ints print_ints)
    (fun (xs, ys) ->
      let q =
        Mdst.Pqueue.union
          (Mdst.Pqueue.of_list ~compare:Int.compare xs)
          (Mdst.Pqueue.of_list ~compare:Int.compare ys)
      in
      match (Mdst.Pqueue.pop q, sorted (xs @ ys)) with
      | None, [] -> Mdst.Pqueue.size q = 0
      | Some (x, rest), least :: others ->
        x = least
        && Mdst.Pqueue.size q = List.length xs + List.length ys
        && Mdst.Pqueue.to_sorted_list rest = others
      | None, _ :: _ | Some _, [] -> false)

let prop_interleaved_pops =
  Generators.qtest ~count:500 "popping k elements leaves the sorted tail"
    (Gen.pair int_list_gen (Gen.int_range 0 50))
    (Print.pair print_ints string_of_int)
    (fun (xs, k) ->
      let q = Mdst.Pqueue.of_list ~compare:Int.compare xs in
      let rec drop k q =
        if k = 0 then q
        else
          match Mdst.Pqueue.pop q with
          | None -> q
          | Some (_, rest) -> drop (k - 1) rest
      in
      let tail =
        List.filteri (fun i _ -> i >= k) (sorted xs)
      in
      Mdst.Pqueue.to_sorted_list (drop k q) = tail)

let () =
  Alcotest.run "pqueue"
    [
      ( "pairing-heap",
        [ prop_to_sorted_list; prop_pop_after_union; prop_interleaved_pops ] );
    ]
