(* The canonical plan codec and the content-addressed plan store:
   pinned golden byte vectors (a silent codec change must break the
   build, per the version-bump rule in DESIGN.md), QCheck roundtrips
   over engine output, differential checks that a store-decoded plan is
   bit-identical to a freshly planned one (schedule, storage
   accounting, report output), corruption/truncation/version-mismatch
   fallback to re-planning, GC size bounds, and recovery priming from
   the store. *)

open QCheck2

let with_temp_dir f =
  let dir = Filename.temp_dir "plan-store-test" "" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name ->
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

let spec_of ?(demand = 20) ?(mixers = Some 3) ?storage_limit
    ?(algorithm = Mixtree.Algorithm.MM) ?(scheduler = Mdst.Scheduler.srs) ratio
    =
  { Service.Request.ratio; demand; algorithm; scheduler; mixers; storage_limit }

let prepare_spec (spec : Service.Request.spec) =
  Mdst.Engine.prepare
    {
      Mdst.Engine.ratio = spec.Service.Request.ratio;
      demand = spec.Service.Request.demand;
      algorithm = spec.Service.Request.algorithm;
      scheduler = spec.Service.Request.scheduler;
      mixers = spec.Service.Request.mixers;
    }

let hex s =
  String.concat ""
    (List.init (String.length s) (fun i ->
         Printf.sprintf "%02x" (Char.code s.[i])))

(* ------------------------------------------------------------------ *)
(* Golden vectors                                                      *)

(* The full canonical bytes of the MM+SRS plan and schedule for 3:1 at
   demand 2 (4 nodes, 2 trees).  These pins are the codec's contract:
   any byte-level change — field order, widths, a new field — must bump
   Plan_codec.version AND update these vectors deliberately. *)
let tiny_plan_hex =
  "50010200000003000000010000000200000078310200000078320200000000000000020000000100000001000000020000000200000001000000000000000100000000000000010000000000000000000000000001000000010000000200000001000000020000000200000000000000030000000000000001000000000000000000000000010000000000010000000100000002000000020000000000000003000000000000000100000000000000"

let tiny_sched_hex = "5301010000000200000001000000020000000100000001000000"

let tiny_result () =
  prepare_spec (spec_of ~demand:2 ~mixers:None (Dmf.Ratio.of_string "3:1"))

let golden_tiny () =
  let r = tiny_result () in
  Alcotest.(check string)
    "plan bytes pinned" tiny_plan_hex
    (hex (Mdst.Plan_codec.encode_plan r.Mdst.Engine.plan));
  Alcotest.(check string)
    "schedule bytes pinned" tiny_sched_hex
    (hex
       (Mdst.Plan_codec.encode_schedule ~plan:r.Mdst.Engine.plan
          r.Mdst.Engine.schedule))

(* The pcr16 plan is too large to pin byte-for-byte; its length, CRC
   and content hash pin it just as hard. *)
let golden_pcr16 () =
  let r = prepare_spec (spec_of Generators.pcr16) in
  let pb = Mdst.Plan_codec.encode_plan r.Mdst.Engine.plan in
  let sb =
    Mdst.Plan_codec.encode_schedule ~plan:r.Mdst.Engine.plan
      r.Mdst.Engine.schedule
  in
  Alcotest.(check int) "plan length" 3271 (String.length pb);
  Alcotest.(check int) "plan crc" 0x99360740 (Durable.Crc32.string pb);
  Alcotest.(check string) "plan hash" "a6ead5fc533b3edb37bf9592a42b748a"
    (Mdst.Plan_codec.hash_hex pb);
  Alcotest.(check int) "schedule length" 226 (String.length sb);
  Alcotest.(check int) "schedule crc" 0x19E1015B (Durable.Crc32.string sb)

let golden_spec_key () =
  let spec = spec_of Generators.pcr16 in
  Alcotest.(check string) "spec preimage pinned"
    "4b01070000000200000001000000010000000100000001000000010000000900000014000000020000004d4d03000000535253010300000000"
    (hex (Durable.Plan_store.spec_bytes spec));
  Alcotest.(check string) "spec key pinned" "f26f03fde83432b127f9f9ff1193b88c"
    (Durable.Plan_store.key_of_spec spec)

let golden_hash () =
  Alcotest.(check string) "empty" "f52a15e9a9b5e89be220a8397b1dcdaf"
    (Mdst.Plan_codec.hash_hex "");
  Alcotest.(check string) "abc" "0dd490490804b508351d88a9dce78d10"
    (Mdst.Plan_codec.hash_hex "abc")

(* Ratio names label reports but never change a plan, so — like
   Request.cache_key — the store key must ignore them, or two shards
   naming fluids differently would duplicate every entry. *)
let key_ignores_names () =
  let parts = [| 3; 1 |] in
  let a = spec_of (Dmf.Ratio.make parts) in
  let b = spec_of (Dmf.Ratio.make ~names:[| "blood"; "buffer" |] parts) in
  Alcotest.(check string)
    "same key" (Durable.Plan_store.key_of_spec a)
    (Durable.Plan_store.key_of_spec b);
  let c = spec_of ~demand:21 (Dmf.Ratio.make parts) in
  Alcotest.(check bool) "demand changes the key" false
    (Durable.Plan_store.key_of_spec a = Durable.Plan_store.key_of_spec c)

(* ------------------------------------------------------------------ *)
(* Roundtrips                                                          *)

let engine_spec_gen =
  let open Gen in
  Generators.ratio_gen >>= fun ratio ->
  Generators.algorithm_gen >>= fun algorithm ->
  Generators.demand_gen >|= fun demand ->
  spec_of ~demand ~mixers:None ~algorithm ratio

let spec_print (s : Service.Request.spec) = Service.Request.cache_key s

let roundtrip_plan =
  Generators.qtest ~count:60 "encode/decode plan = id" engine_spec_gen
    spec_print (fun spec ->
      let r = prepare_spec spec in
      let bytes = Mdst.Plan_codec.encode_plan r.Mdst.Engine.plan in
      match Mdst.Plan_codec.decode_plan bytes with
      | Error msg -> Test.fail_reportf "decode failed: %s" msg
      | Ok plan ->
        (* Canonicality: the decoded value re-encodes to the same
           bytes, so byte equality is value equality. *)
        String.equal bytes (Mdst.Plan_codec.encode_plan plan))

let roundtrip_schedule =
  Generators.qtest ~count:60 "encode/decode schedule = id" engine_spec_gen
    spec_print (fun spec ->
      let r = prepare_spec spec in
      let plan = r.Mdst.Engine.plan in
      let bytes =
        Mdst.Plan_codec.encode_schedule ~plan r.Mdst.Engine.schedule
      in
      match Mdst.Plan_codec.decode_schedule ~plan bytes with
      | Error msg -> Test.fail_reportf "decode failed: %s" msg
      | Ok s -> String.equal bytes (Mdst.Plan_codec.encode_schedule ~plan s))

let roundtrip_prepared =
  Generators.qtest ~count:40 "encode/decode prepared = id" engine_spec_gen
    spec_print (fun spec ->
      let prepared = Service.Prep.run spec in
      let bytes = Durable.Plan_store.encode_prepared prepared in
      match Durable.Plan_store.decode_prepared bytes with
      | Error msg -> Test.fail_reportf "decode failed: %s" msg
      | Ok p ->
        p.Service.Prep.summary = prepared.Service.Prep.summary
        && p.Service.Prep.instr = prepared.Service.Prep.instr
        && String.equal bytes (Durable.Plan_store.encode_prepared p))

(* Streaming runs carry no plan (prepared.plan = None); the codec must
   round-trip that shape too. *)
let roundtrip_streaming () =
  let spec = spec_of ~storage_limit:4 Generators.pcr16 in
  let prepared = Service.Prep.run spec in
  Alcotest.(check bool) "streaming run has no plan" true
    (prepared.Service.Prep.plan = None);
  let bytes = Durable.Plan_store.encode_prepared prepared in
  match Durable.Plan_store.decode_prepared bytes with
  | Error msg -> Alcotest.failf "decode failed: %s" msg
  | Ok p ->
    Alcotest.(check bool) "summary survives" true
      (p.Service.Prep.summary = prepared.Service.Prep.summary);
    Alcotest.(check string) "re-encode identical" (hex bytes)
      (hex (Durable.Plan_store.encode_prepared p))

(* Recovery plans carry Reserve sources (salvaged droplets seed the
   forest) — the one plan shape the service never produces, and the
   reason the codec encodes reserve mixtures at all. *)
let roundtrip_reserves () =
  let r = prepare_spec (spec_of ~demand:8 Generators.pcr16) in
  let salvage =
    Mdst.Recovery.recover ~algorithm:Mixtree.Algorithm.MM
      ~plan:r.Mdst.Engine.plan ~schedule:r.Mdst.Engine.schedule ~failed_node:2
  in
  match salvage.Mdst.Recovery.recovery_plan with
  | None -> Alcotest.fail "expected a recovery plan"
  | Some plan ->
    Alcotest.(check bool) "plan has reserves" true
      (Array.length (Mdst.Plan.reserves plan) > 0);
    let bytes = Mdst.Plan_codec.encode_plan plan in
    (match Mdst.Plan_codec.decode_plan bytes with
    | Error msg -> Alcotest.failf "decode failed: %s" msg
    | Ok plan' ->
      Alcotest.(check string) "re-encode identical" (hex bytes)
        (hex (Mdst.Plan_codec.encode_plan plan')))

(* Every flipped byte is either rejected — by the wire reader, a
   value-validation cross-check, or the final constructor — or decodes
   to a plan whose canonical bytes are exactly the flipped buffer (a
   flip in a ratio name, say, is a legitimately different plan).  What
   must never happen is silent normalization: a buffer that decodes
   but re-encodes to something else. *)
let decode_rejects_flips =
  Generators.qtest ~count:40 "no corrupt plan decodes silently"
    Gen.(pair (int_range 0 1000) (int_range 1 255))
    (fun (pos, delta) -> Printf.sprintf "pos=%d delta=%d" pos delta)
    (fun (pos, delta) ->
      let r = tiny_result () in
      let bytes = Bytes.of_string (Mdst.Plan_codec.encode_plan r.Mdst.Engine.plan) in
      let pos = pos mod Bytes.length bytes in
      Bytes.set bytes pos
        (Char.chr ((Char.code (Bytes.get bytes pos) + delta) land 0xFF));
      let flipped = Bytes.to_string bytes in
      match Mdst.Plan_codec.decode_plan flipped with
      | Error _ -> true
      | Ok plan -> String.equal flipped (Mdst.Plan_codec.encode_plan plan))

(* ------------------------------------------------------------------ *)
(* Differential: store-decoded = freshly planned                       *)

(* The acceptance bar for priming recovery from the store instead of
   re-planning (PR 5's determinism guarantee): across a corpus slice,
   the decoded plan is bit-identical to a fresh plan — same canonical
   bytes, same schedule, same storage accounting, same rendered
   report. *)
let differential_corpus () =
  with_temp_dir (fun dir ->
      let store = Durable.Plan_store.open_store ~dir () in
      let specs =
        List.concat_map
          (fun ratio ->
            [
              spec_of ~demand:8 ~mixers:None ratio;
              spec_of ~demand:8 ~mixers:None ~algorithm:Mixtree.Algorithm.RMA
                ~scheduler:Mdst.Scheduler.mms ratio;
            ])
          (Lazy.force Generators.corpus_slice)
      in
      List.iter
        (fun spec ->
          let fresh = Service.Prep.run spec in
          Durable.Plan_store.add store spec fresh;
          match Durable.Plan_store.find store spec with
          | None -> Alcotest.fail "stored entry not found"
          | Some decoded -> (
            Alcotest.(check bool) "summary identical" true
              (decoded.Service.Prep.summary = fresh.Service.Prep.summary);
            Alcotest.(check bool) "instr identical" true
              (decoded.Service.Prep.instr = fresh.Service.Prep.instr);
            match
              ( fresh.Service.Prep.plan,
                fresh.Service.Prep.schedule,
                decoded.Service.Prep.plan,
                decoded.Service.Prep.schedule )
            with
            | Some fp, Some fs, Some dp, Some ds ->
              Alcotest.(check string) "plan bytes identical"
                (hex (Mdst.Plan_codec.encode_plan fp))
                (hex (Mdst.Plan_codec.encode_plan dp));
              Alcotest.(check string) "schedule bytes identical"
                (hex (Mdst.Plan_codec.encode_schedule ~plan:fp fs))
                (hex (Mdst.Plan_codec.encode_schedule ~plan:dp ds));
              Alcotest.(check int) "storage accounting identical"
                (Mdst.Storage.units ~plan:fp fs)
                (Mdst.Storage.units ~plan:dp ds);
              Alcotest.(check string) "report output identical"
                (Mdst.Gantt.render ~plan:fp fs)
                (Mdst.Gantt.render ~plan:dp ds)
            | _ -> Alcotest.fail "expected single-pass plans"))
        specs;
      let s = Durable.Plan_store.stats store in
      Alcotest.(check int) "all lookups hit" (List.length specs)
        s.Durable.Plan_store.hits;
      Alcotest.(check int) "no decode errors" 0 s.Durable.Plan_store.errors)

(* ------------------------------------------------------------------ *)
(* Store behavior: corruption, truncation, version drift, GC           *)

let entry_file dir =
  match
    Array.to_list (Sys.readdir dir)
    |> List.filter (fun n ->
           Filename.check_suffix n ".plan" && String.length n > 8)
  with
  | [ name ] -> Filename.concat dir name
  | files -> Alcotest.failf "expected exactly one entry, got %d" (List.length files)

let store_one dir =
  let store = Durable.Plan_store.open_store ~dir () in
  let spec = spec_of Generators.pcr16 in
  Durable.Plan_store.add store spec (Service.Prep.run spec);
  (store, spec)

let rewrite path f =
  let image = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc (f image))

let check_falls_back store spec path =
  Alcotest.(check bool) "read as a miss" true
    (Durable.Plan_store.find store spec = None);
  Alcotest.(check bool) "bad entry deleted" false (Sys.file_exists path);
  let s = Durable.Plan_store.stats store in
  Alcotest.(check bool) "error counted" true (s.Durable.Plan_store.errors > 0);
  (* The server path this protects: a store returning None falls back
     to Prep.run, so the corrupt entry costs a re-plan, not a wrong
     answer.  Re-adding through the normal path must heal the store. *)
  Durable.Plan_store.add store spec (Service.Prep.run spec);
  Alcotest.(check bool) "healed after re-plan" true
    (Durable.Plan_store.find store spec <> None)

let corrupt_entry () =
  with_temp_dir (fun dir ->
      let store, spec = store_one dir in
      let path = entry_file dir in
      rewrite path (fun image ->
          (* Flip one payload byte mid-file; the CRC trailer now lies. *)
          let b = Bytes.of_string image in
          let pos = Bytes.length b / 2 in
          Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0xFF));
          Bytes.to_string b);
      check_falls_back store spec path)

let truncated_entry () =
  with_temp_dir (fun dir ->
      let store, spec = store_one dir in
      let path = entry_file dir in
      rewrite path (fun image -> String.sub image 0 (String.length image / 2));
      check_falls_back store spec path)

let version_mismatch () =
  with_temp_dir (fun dir ->
      let store, spec = store_one dir in
      let path = entry_file dir in
      (* Bump the payload's version byte and re-frame with a valid CRC:
         only the version check can reject this one. *)
      let prepared = Service.Prep.run spec in
      let payload = Bytes.of_string (Durable.Plan_store.encode_prepared prepared) in
      Bytes.set payload 1 (Char.chr (Mdst.Plan_codec.version + 1));
      rewrite path (fun _ ->
          Durable.Plan_store.encode_entry
            ~spec_key:(Durable.Plan_store.spec_bytes spec)
            ~payload:(Bytes.to_string payload));
      check_falls_back store spec path)

(* A colliding entry: right hash (same filename), wrong embedded spec
   bytes.  find must treat it as absent, not decode it. *)
let collision_guard () =
  with_temp_dir (fun dir ->
      let store, spec = store_one dir in
      let path = entry_file dir in
      let prepared = Service.Prep.run spec in
      rewrite path (fun _ ->
          Durable.Plan_store.encode_entry ~spec_key:"not-the-same-spec"
            ~payload:(Durable.Plan_store.encode_prepared prepared));
      check_falls_back store spec path)

let gc_bounds () =
  with_temp_dir (fun dir ->
      (* Small bound: a handful of pcr16-sized entries exceed it, so
         every add past the bound triggers collection down to 80%. *)
      let max_bytes = 16 * 1024 in
      let store = Durable.Plan_store.open_store ~max_bytes ~dir () in
      List.iter
        (fun demand ->
          let spec = spec_of ~demand Generators.pcr16 in
          Durable.Plan_store.add store spec (Service.Prep.run spec))
        [ 4; 8; 12; 16; 20; 24; 28; 32 ];
      let s = Durable.Plan_store.stats store in
      Alcotest.(check bool) "under the bound" true
        (s.Durable.Plan_store.bytes <= max_bytes);
      Alcotest.(check bool) "gc ran" true (s.Durable.Plan_store.gc_runs > 0);
      Alcotest.(check bool) "gc removed entries" true
        (s.Durable.Plan_store.gc_removed > 0);
      Alcotest.(check int) "every add wrote" 8 s.Durable.Plan_store.writes)

(* ------------------------------------------------------------------ *)
(* Server integration: prime from the store                            *)

let service_store store =
  {
    Service.Store.find = Durable.Plan_store.find store;
    add = Durable.Plan_store.add store;
    stats = (fun () -> Durable.Plan_store.stats_json store);
  }

let prime_from_store () =
  with_temp_dir (fun dir ->
      let specs =
        [
          spec_of ~demand:4 Generators.pcr16;
          spec_of ~demand:8 Generators.pcr16;
          spec_of ~demand:4 (Dmf.Ratio.of_string "3:1");
        ]
      in
      (* Cold boot: nothing stored, everything re-planned — and written
         through, so the next boot can prime from disk. *)
      let store = Durable.Plan_store.open_store ~dir () in
      let server =
        Service.Server.create ~workers:1 ~cache_capacity:16
          ~store:(service_store store) ()
      in
      let primed = Service.Server.prime server ~cache:specs ~pending:[] in
      Alcotest.(check int) "cold: all re-planned" (List.length specs)
        primed.Service.Server.replanned;
      Alcotest.(check int) "cold: none from store" 0
        primed.Service.Server.from_store;
      Service.Server.stop server;
      (* Warm boot: a fresh handle on the same directory primes every
         plan from the store. *)
      let store2 = Durable.Plan_store.open_store ~dir () in
      let server2 =
        Service.Server.create ~workers:1 ~cache_capacity:16
          ~store:(service_store store2) ()
      in
      let primed2 = Service.Server.prime server2 ~cache:specs ~pending:[] in
      Alcotest.(check int) "warm: all from store" (List.length specs)
        primed2.Service.Server.from_store;
      Alcotest.(check int) "warm: none re-planned" 0
        primed2.Service.Server.replanned;
      (* The primed cache is the real thing: both servers hold equal
         cache keys in equal recency order. *)
      Alcotest.(check (list string)) "cache keys identical"
        (Service.Server.cache_keys server)
        (Service.Server.cache_keys server2);
      Service.Server.stop server2;
      (* Corrupt one entry: the next boot primes the other two from the
         store and falls back to re-planning just that one. *)
      let store3 = Durable.Plan_store.open_store ~dir () in
      let victim = Durable.Plan_store.entry_path store3 (List.hd specs) in
      rewrite victim (fun image -> String.sub image 0 10);
      let server3 =
        Service.Server.create ~workers:1 ~cache_capacity:16
          ~store:(service_store store3) ()
      in
      let primed3 = Service.Server.prime server3 ~cache:specs ~pending:[] in
      Alcotest.(check int) "corrupt entry re-planned" 1
        primed3.Service.Server.replanned;
      Alcotest.(check int) "rest from store" (List.length specs - 1)
        primed3.Service.Server.from_store;
      Service.Server.stop server3)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "plan_store"
    [
      ( "golden",
        [
          Alcotest.test_case "tiny plan and schedule bytes" `Quick golden_tiny;
          Alcotest.test_case "pcr16 length, crc, hash" `Quick golden_pcr16;
          Alcotest.test_case "spec preimage and key" `Quick golden_spec_key;
          Alcotest.test_case "hash_hex vectors" `Quick golden_hash;
          Alcotest.test_case "key ignores ratio names" `Quick key_ignores_names;
        ] );
      ( "roundtrip",
        [
          roundtrip_plan;
          roundtrip_schedule;
          roundtrip_prepared;
          Alcotest.test_case "streaming prepared (no plan)" `Quick
            roundtrip_streaming;
          Alcotest.test_case "recovery plan with reserves" `Quick
            roundtrip_reserves;
          decode_rejects_flips;
        ] );
      ( "differential",
        [
          Alcotest.test_case "store-decoded = freshly planned" `Slow
            differential_corpus;
        ] );
      ( "store",
        [
          Alcotest.test_case "corrupt entry falls back" `Quick corrupt_entry;
          Alcotest.test_case "truncated entry falls back" `Quick
            truncated_entry;
          Alcotest.test_case "version mismatch falls back" `Quick
            version_mismatch;
          Alcotest.test_case "hash-collision guard" `Quick collision_guard;
          Alcotest.test_case "gc keeps the store bounded" `Quick gc_bounds;
        ] );
      ( "server",
        [
          Alcotest.test_case "prime from store, fallback on corruption" `Quick
            prime_from_store;
        ] );
    ]
