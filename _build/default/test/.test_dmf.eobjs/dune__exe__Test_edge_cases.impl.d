test/test_edge_cases.ml: Alcotest Array Chip Dmf Generators List Mdst Mixtree Printf Result Sim String
