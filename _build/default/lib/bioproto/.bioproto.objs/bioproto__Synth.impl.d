lib/bioproto/synth.ml: Array Dmf List
