type request = { deadline : int; count : int }

let request ~deadline ~count =
  if count < 1 then invalid_arg "Demand.request: count must be >= 1";
  if deadline < 0 then invalid_arg "Demand.request: negative deadline";
  { deadline; count }

let periodic ~start ~interval ~count ~batches =
  if interval < 1 || count < 1 || batches < 1 || start < 0 then
    invalid_arg "Demand.periodic: non-positive parameters";
  List.init batches (fun i ->
      request ~deadline:(start + (i * interval)) ~count)

let total requests = List.fold_left (fun acc r -> acc + r.count) 0 requests

let normalize requests =
  match requests with
  | [] -> invalid_arg "Demand.normalize: empty profile"
  | _ :: _ ->
    let sorted =
      List.sort (fun a b -> Int.compare a.deadline b.deadline) requests
    in
    let rec merge = function
      | a :: b :: rest when a.deadline = b.deadline ->
        merge ({ a with count = a.count + b.count } :: rest)
      | a :: rest -> a :: merge rest
      | [] -> []
    in
    merge sorted

let droplet_deadlines requests =
  normalize requests
  |> List.concat_map (fun r -> List.init r.count (fun _ -> r.deadline))
