lib/dmf/fluid.ml: Format Int
