let table ~header ~rows =
  let columns =
    List.fold_left (fun acc row -> max acc (List.length row)) (List.length header) rows
  in
  let pad_row row = row @ List.init (columns - List.length row) (fun _ -> "") in
  let all = List.map pad_row (header :: rows) in
  let widths = Array.make columns 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let render_row row =
    String.concat "  "
      (List.mapi (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell) row)
  in
  let rule =
    String.concat "  "
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  match all with
  | [] -> ""
  | header :: rows ->
    String.concat "\n" ((render_row header :: rule :: List.map render_row rows) @ [ "" ])

let section title =
  let bar = String.make (String.length title) '=' in
  Printf.sprintf "\n%s\n%s\n" title bar

let float_cell f = Printf.sprintf "%.1f" f
