(* Table-driven CRC-32, reflected polynomial 0xEDB88320.  OCaml's
   native [int] is 63-bit on every platform dune supports here, so the
   32-bit arithmetic fits without boxing; [land 0xFFFFFFFF] keeps the
   running remainder in range. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let sub s ~pos ~len =
  if pos < 0 || len < 0 || pos > String.length s - len then
    invalid_arg "Crc32.sub";
  let table = Lazy.force table in
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor Char.code s.[i]) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc lxor 0xFFFFFFFF

let string s = sub s ~pos:0 ~len:(String.length s)
