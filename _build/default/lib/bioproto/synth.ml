let partitions ~sum ~parts =
  (* Non-increasing parts, each between 1 and [cap]. *)
  let rec go sum parts cap =
    if parts = 0 then if sum = 0 then [ [] ] else []
    else if sum < parts then []
    else
      let upper = min cap (sum - parts + 1) in
      let rec collect first acc =
        if first < 1 then acc
        else
          let tails = go (sum - first) (parts - 1) first in
          collect (first - 1)
            (List.rev_append (List.rev_map (fun tail -> first :: tail) tails) acc)
      in
      collect upper []
  in
  go sum parts sum

let count_partitions ~sum ~parts = List.length (partitions ~sum ~parts)

let corpus ?(min_parts = 2) ?(max_parts = 12) ~sum () =
  if not (Dmf.Binary.is_power_of_two sum) then
    invalid_arg "Synth.corpus: ratio-sum must be a power of two";
  List.concat_map
    (fun parts ->
      List.map
        (fun partition -> Dmf.Ratio.make (Array.of_list partition))
        (partitions ~sum ~parts))
    (List.init (max_parts - min_parts + 1) (fun i -> min_parts + i))

let corpus_size ?min_parts ?max_parts ~sum () =
  List.length (corpus ?min_parts ?max_parts ~sum ())

let sample ~every xs =
  if every < 1 then invalid_arg "Synth.sample: step must be >= 1";
  List.filteri (fun i _ -> i mod every = 0) xs
