(** CRC-32 (the IEEE 802.3 polynomial, reflected: 0xEDB88320) over
    bytes — the per-record integrity check of the write-ahead log.

    A torn write (the process or the machine died mid-[write]) leaves a
    record whose bytes parse as a prefix of valid JSON or not at all;
    either way the stored checksum no longer matches the recomputed one
    and {!Replay} truncates the journal there.  The well-known check
    value is [string "123456789" = 0xCBF43926]. *)

val string : string -> int
(** Checksum of a whole string; the result is in [0, 0xFFFFFFFF]. *)

val sub : string -> pos:int -> len:int -> int
(** Checksum of a substring.
    @raise Invalid_argument if the range is out of bounds. *)
