lib/sim/wear.mli: Chip Executor Mdst
