(** Minimal newline-delimited JSON codec for the preparation server.

    The service protocol is one JSON object per line over a byte stream
    (stdin/stdout or a TCP socket), so the codec only needs single-line
    rendering and a strict parser — hand-rolled on the stdlib because the
    switch carries no JSON library.

    Integers and floats are kept apart: a number without fraction or
    exponent parses as {!Int}, everything else as {!Float}.  Floats are
    printed with enough digits to round-trip exactly, so
    [of_string (to_string v)] returns a value {!equal} to [v] for every
    finite [v]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Single-line rendering (no newline).  Control characters in strings
    are escaped as [\u00XX].
    @raise Invalid_argument on a non-finite float, which JSON cannot
    represent. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. *)

val equal : t -> t -> bool
(** Structural equality; object key order is significant (the codec
    preserves it), and NaN equals NaN. *)

val pp : Format.formatter -> t -> unit
(** Human-oriented multi-line rendering (the [client] subcommand's
    pretty-printer). *)

(** {2 Bounded line reading}

    NDJSON consumers (the server's reader thread, WAL replay) must not
    let one malformed line exhaust memory, and must distinguish a
    complete final line from one whose trailing newline never made it
    to disk — the torn-tail case crash recovery truncates at. *)

type line =
  | Line of string  (** A complete, newline-terminated line. *)
  | Tail of string
      (** The final line of the stream, not newline-terminated: input
          ended mid-line (truncated file, torn journal write). *)
  | Oversized of int
      (** The line exceeded the byte bound; its full length is
          reported and the stream is positioned after it (or at end of
          input), so the caller can reject and keep reading. *)
  | Eof

val max_line_bytes : int
(** Default bound: 1 MiB, far above any protocol line. *)

val read_line : ?max_bytes:int -> in_channel -> line
(** Read one line (newline not included).  Unlike
    {!Stdlib.input_line}, never allocates more than [max_bytes] for
    the line and never conflates a truncated final line with a
    complete one. *)

(** {2 Accessors} *)

val member : string -> t -> t option
(** [member k (Obj ...)] is the first binding of [k]; [None] on other
    constructors. *)

val to_int : t -> int option

val to_float : t -> float option
(** Accepts both [Int] and [Float]. *)

val to_bool : t -> bool option
val to_str : t -> string option
val to_list : t -> t list option
