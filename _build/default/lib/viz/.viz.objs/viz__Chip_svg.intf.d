lib/viz/chip_svg.mli: Chip
