(** Bounded admission queue with request coalescing.

    The paper's whole premise is that demand aggregation pays: one
    forest serving a summed demand wastes fewer droplets than separate
    forests serving each request (Section 4.1; Coviello Gonzalez &
    Chrobak study the same effect for dilution).  The queue
    operationalises this: while a planning job for some
    (ratio, algorithm, scheduler, Mc, q') is still {e pending}, further
    requests with the same {!Request.coalesce_key} merge into it —
    demands are summed, and the one forest built for the batch answers
    every waiter.  A job that a worker has already taken is never
    mutated.

    Admission is bounded: at most [capacity] distinct pending jobs; a
    submitter that would exceed the bound blocks until a worker drains
    the queue (backpressure), never dropping a request.  Coalescing
    merges never block — they add no queue entry.

    All operations are mutex-guarded and safe across domains and
    threads. *)

type t

type job
(** A planning job: a spec whose demand is the sum over its waiters. *)

type ticket
(** One submitter's claim on a job's outcome. *)

type outcome = {
  prepared : Prep.prepared;
  batch_demand : int;  (** The summed demand the job planned for. *)
  coalesced : int;  (** Number of requests the job answers. *)
  cache_hit : bool;
}

val create : ?on_admit:(Request.spec -> unit) -> capacity:int -> unit -> t
(** [on_admit] is called for every successfully admitted request —
    merge or fresh job alike — under the queue lock, so calls happen in
    admission order and strictly before any worker can complete the
    request's job.  The write-ahead log hangs its accepted-record hook
    here; it must not call back into the queue.
    @raise Invalid_argument if [capacity < 1]. *)

val submit : ?quiet:bool -> t -> Request.spec -> (ticket, string) result
(** Admit a request: merge into the pending job with the same coalesce
    key, or enqueue a new job (blocking while the queue is full).
    A merge that would push the batch demand over {!Validate.max_demand}
    is not performed — the request is queued as its own fresh job
    instead.  [quiet] (default [false]) suppresses the [on_admit] hook:
    recovery resubmits journaled requests that were already accepted
    once.  [Error] only after {!close}. *)

val take : t -> job option
(** Worker side: pop the oldest pending job, blocking while the queue is
    empty.  [None] once the queue is closed {e and} drained — remaining
    jobs are always handed out before the shutdown [None]. *)

val job_spec : job -> Request.spec
(** The job's spec with the summed demand. *)

val job_requests : job -> int
(** How many requests coalesced into the job (>= 1). *)

val fulfil : job -> (outcome, string) result -> unit
(** Deliver the job's result to every waiter.  Idempotent: only the
    first call wins. *)

val wait : ticket -> (outcome, string) result
(** Block until the ticket's job is fulfilled.  Tickets of jobs still
    pending when the queue was closed resolve to [Error]. *)

val ticket_demand : ticket -> int
(** The demand this submitter asked for (its share of the batch). *)

val depth : t -> int
(** Pending jobs (admitted, not yet taken by a worker). *)

val coalesced_total : t -> int
(** Running count of requests that merged into an existing job. *)

val close : t -> unit
(** Reject new submissions and wake blocked submitters and workers.
    Jobs already admitted are still handed to workers ({!take} drains
    before returning [None]), so their waiters resolve normally. *)
