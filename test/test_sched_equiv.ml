(* Differential tests for the scheduler core: on any plan the policies
   running inside the shared event-driven engine (MMS/SRS/OMS) must
   produce schedules bit-identical to the retained naive
   per-cycle-rescan references ({!Mdst.Naive}), registry dispatch must
   equal the direct entry points, the instrumentation hooks must count
   consistently (and change nothing), and the parallel corpus sweep
   must not depend on the domain count. *)

open QCheck2

let instance_gen =
  Gen.(
    Generators.ratio_gen >>= fun ratio ->
    Generators.algorithm_gen >>= fun algorithm ->
    Generators.demand_gen >>= fun demand ->
    int_range 1 8 >|= fun mixers -> (ratio, algorithm, demand, mixers))

let instance_print (ratio, algorithm, demand, mixers) =
  Printf.sprintf "%s %s D=%d M=%d"
    (Mixtree.Algorithm.name algorithm)
    (Dmf.Ratio.to_string ratio)
    demand mixers

let same_schedule plan a b =
  let n = Mdst.Plan.n_nodes plan in
  let rec nodes_agree i =
    i >= n
    || (Mdst.Schedule.cycle a i = Mdst.Schedule.cycle b i
       && Mdst.Schedule.mixer a i = Mdst.Schedule.mixer b i
       && nodes_agree (i + 1))
  in
  Mdst.Schedule.completion_time a = Mdst.Schedule.completion_time b
  && Mdst.Schedule.mixers a = Mdst.Schedule.mixers b
  && nodes_agree 0

let differential schedule reference (ratio, algorithm, demand, mixers) =
  let plan = Mdst.Forest.build ~algorithm ~ratio ~demand in
  same_schedule plan (schedule ~plan ~mixers) (reference ~plan ~mixers)

let prop_mms =
  Generators.qtest ~count:300 "event-driven MMS = naive rescan MMS"
    instance_gen instance_print
    (differential Mdst.Mms.schedule Mdst.Naive.mms)

let prop_srs =
  Generators.qtest ~count:300 "event-driven SRS = naive rescan SRS"
    instance_gen instance_print
    (differential Mdst.Srs.schedule Mdst.Naive.srs)

let prop_oms =
  Generators.qtest ~count:300 "event-driven OMS = naive rescan OMS"
    instance_gen instance_print
    (differential Mdst.Oms.schedule Mdst.Naive.oms)

(* Every registered policy, over the generator corpus: the registry
   must be the same code path as the direct entry points, and its
   schedules must validate. *)
let prop_registry =
  Generators.qtest ~count:200 "registry dispatch = direct calls, and valid"
    instance_gen instance_print
    (fun (ratio, algorithm, demand, mixers) ->
      let plan = Mdst.Forest.build ~algorithm ~ratio ~demand in
      let direct_of s =
        match Mdst.Scheduler.name s with
        | "MMS" -> Some Mdst.Mms.schedule
        | "SRS" -> Some Mdst.Srs.schedule
        | "OMS" -> Some Mdst.Oms.schedule
        | _ -> None
      in
      List.for_all
        (fun s ->
          let via_registry = Mdst.Scheduler.schedule s ~plan ~mixers in
          Result.is_ok (Mdst.Schedule.validate ~plan via_registry)
          &&
          match direct_of s with
          | Some direct ->
            same_schedule plan via_registry (direct ~plan ~mixers)
          | None -> true)
        (Mdst.Scheduler.all ()))

(* Instrumentation: the collector's counters must agree with the
   schedule's own accounting, and hooking the engine must not change
   the schedule. *)
let prop_instr =
  Generators.qtest ~count:200 "instrumentation counts are consistent"
    instance_gen instance_print
    (fun (ratio, algorithm, demand, mixers) ->
      let plan = Mdst.Forest.build ~algorithm ~ratio ~demand in
      List.for_all
        (fun s ->
          let hooks, counters = Mdst.Instr.collector ~mixers in
          let hooked = Mdst.Scheduler.schedule ~instr:hooks s ~plan ~mixers in
          let bare = Mdst.Scheduler.schedule s ~plan ~mixers in
          let c = counters () in
          c.Mdst.Instr.fired = Mdst.Plan.n_nodes plan
          && c.Mdst.Instr.cycles = Mdst.Schedule.completion_time hooked
          && c.Mdst.Instr.peak_storage = Mdst.Storage.units ~plan hooked
          && same_schedule plan hooked bare)
        (Mdst.Scheduler.all ()))

let test_registry_names () =
  Alcotest.(check bool)
    "of_string roundtrips every registered name" true
    (List.for_all
       (fun s ->
         match Mdst.Scheduler.of_string (Mdst.Scheduler.name s) with
         | Ok s' -> Mdst.Scheduler.name s' = Mdst.Scheduler.name s
         | Error _ -> false)
       (Mdst.Scheduler.all ()));
  Alcotest.(check bool)
    "unknown name rejected" true
    (Result.is_error (Mdst.Scheduler.of_string "NOPE"))

let prop_par_map =
  Generators.qtest ~count:100 "Par.map is independent of the domain count"
    Gen.(list_size (int_range 0 40) (int_range 0 10_000))
    (Print.list string_of_int)
    (fun xs ->
      let f x = (x * x) + 1 in
      Mdst.Par.map ~domains:1 f xs = Mdst.Par.map ~domains:4 f xs)

(* The real sweep, as run by bench table2/table3: evaluate a corpus slice
   under every scheme and keep the headline metrics. *)
let corpus_sweep () =
  let ratios =
    List.filteri (fun i _ -> i < 6) (Lazy.force Generators.corpus_slice)
  in
  Mdst.Par.map
    (fun ratio ->
      Mdst.Compare.evaluate_all ~ratio ~demand:8 Mdst.Compare.table2_schemes
      |> List.map (fun (_, m) ->
             (m.Mdst.Metrics.tc, m.Mdst.Metrics.q, m.Mdst.Metrics.input_total)))
    ratios

let with_domains d f =
  Unix.putenv "MDST_DOMAINS" (string_of_int d);
  Fun.protect ~finally:(fun () -> Unix.putenv "MDST_DOMAINS" "1") f

let test_sweep_determinism () =
  let serial = with_domains 1 corpus_sweep in
  let parallel = with_domains 4 corpus_sweep in
  Alcotest.(check bool)
    "MDST_DOMAINS=1 and MDST_DOMAINS=4 sweeps agree" true (serial = parallel)

let () =
  Alcotest.run "sched-equiv"
    [
      ("differential", [ prop_mms; prop_srs; prop_oms ]);
      ( "registry",
        [
          prop_registry;
          Alcotest.test_case "registered names roundtrip" `Quick
            test_registry_names;
        ] );
      ("instrumentation", [ prop_instr ]);
      ( "parallel",
        [
          prop_par_map;
          Alcotest.test_case "corpus sweep determinism" `Quick
            test_sweep_determinism;
        ] );
    ]
