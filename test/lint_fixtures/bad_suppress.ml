(* DML000: a suppression without a rationale is itself a finding, and
   does not suppress anything — the DML002 below still fires. *)

let m = Mutex.create ()

let f () =
  Mutex.lock m;
  Thread.delay 0.01;
  Mutex.unlock m
[@@dmflint.allow "blocking-under-lock"]
