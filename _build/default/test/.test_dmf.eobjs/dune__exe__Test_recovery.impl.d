test/test_recovery.ml: Alcotest Chip Dmf Generators List Mdst Mixtree Printf QCheck2 Result Sim
