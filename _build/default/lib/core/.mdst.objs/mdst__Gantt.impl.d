lib/core/gantt.ml: Array Buffer Format List Plan Printf Schedule Storage String
