lib/chip/placer.mli: Actuation Layout Mdst
