type kind =
  | Reservoir of Dmf.Fluid.t
  | Mixer
  | Storage
  | Waste
  | Output_port

type t = { id : string; kind : kind; rect : Geometry.rect }

let make ~id ~kind ~rect =
  if String.length id = 0 then invalid_arg "Chip_module.make: empty id";
  if rect.Geometry.w < 1 || rect.Geometry.h < 1 then
    invalid_arg "Chip_module.make: degenerate rectangle";
  { id; kind; rect }

let anchor m = Geometry.rect_center m.rect

let kind_name = function
  | Reservoir _ -> "reservoir"
  | Mixer -> "mixer"
  | Storage -> "storage"
  | Waste -> "waste"
  | Output_port -> "output"

let glyph m =
  match m.kind with
  | Reservoir _ -> 'R'
  | Mixer -> 'M'
  | Storage -> 'S'
  | Waste -> 'W'
  | Output_port -> 'O'

let pp ppf m =
  Format.fprintf ppf "%s (%s) at (%d,%d) %dx%d" m.id (kind_name m.kind)
    m.rect.Geometry.x m.rect.Geometry.y m.rect.Geometry.w m.rect.Geometry.h
