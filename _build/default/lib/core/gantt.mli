(** Text rendering of a schedule as a modified Gantt chart (Figure 4).

    One row per mixer, one column per time-cycle, each cell showing the
    mix-split label [m_ij] executed there; a final row shows the storage
    occupancy per cycle and the target-droplet emission sequence. *)

val label : Plan.node -> string
(** [label node] is the paper's node label, e.g. ["m9,4"] (rendered
    ["m94"] when both indices are single digits). *)

val render : plan:Plan.t -> Schedule.t -> string
(** [render ~plan s] is a multi-line chart; the last lines summarise
    [Tc], [q] and the emission cycles of the target droplets. *)

val pp : plan:Plan.t -> Format.formatter -> Schedule.t -> unit
