module type POLICY = sig
  val name : string

  type state

  val init : plan:Plan.t -> mixers:int -> state
  val release : state -> Plan.node list -> unit
  val ready : state -> int
  val pick : state -> fired:int -> Plan.node option
end

type policy = (module POLICY)

(* The merged main loop subsumes MMS's two phases: every cycle with
   remaining work fires at least one node (if the ready-set and the
   fresh buffer were both empty with work remaining, the topologically
   first unfired node would have all producers fired yet never have been
   released — impossible), so the level-walk phase and the drain phase
   of Algorithm 1 assign the same cycles as one guarded while-loop. *)
let run ?instr (module P : POLICY) ~plan ~mixers =
  if mixers < 1 then invalid_arg (P.name ^ ": at least one mixer");
  let n = Plan.n_nodes plan in
  let cycles = Array.make n 0 in
  let mixer_of = Array.make n 0 in
  let pending = Array.init n (fun i -> Plan.pred_count plan i) in
  (* Nodes whose pending count reached zero since the last admission. *)
  let fresh = ref [] in
  for i = n - 1 downto 0 do
    if pending.(i) = 0 then fresh := Plan.node plan i :: !fresh
  done;
  let state = P.init ~plan ~mixers in
  let remaining = ref n in
  let depth = Dmf.Ratio.accuracy (Plan.ratio plan) in
  let guard = ref (Schedule.no_progress_bound ~nodes:n ~depth) in
  let t = ref 0 in
  (* Storage occupancy per Algorithm 3, maintained only when hooked. *)
  let stored = ref 0 in
  (match instr with
  | None -> ()
  | Some h ->
    Array.iteri
      (fun i _ ->
        incr stored;
        h.Instr.on_store ~cycle:0 ~source:(Plan.Reserve i))
      (Plan.reserves plan));
  while !remaining > 0 do
    decr guard;
    if !guard <= 0 then failwith (P.name ^ ": no progress (internal error)");
    incr t;
    (match !fresh with
    | [] -> ()
    | batch ->
      fresh := [];
      P.release state batch);
    let ready = match instr with None -> 0 | Some _ -> P.ready state in
    let fired = ref 0 in
    let produced = ref 0 in
    let exhausted = ref false in
    while (not !exhausted) && !fired < mixers do
      match P.pick state ~fired:!fired with
      | None -> exhausted := true
      | Some node ->
        let id = node.Plan.id in
        incr fired;
        cycles.(id) <- !t;
        mixer_of.(id) <- !fired;
        decr remaining;
        (match instr with
        | None -> ()
        | Some h ->
          h.Instr.on_fire ~cycle:!t ~mixer:!fired ~node;
          let evict source =
            match source with
            | Plan.Input _ -> ()
            | Plan.Output _ | Plan.Reserve _ ->
              decr stored;
              h.Instr.on_evict ~cycle:!t ~source
          in
          evict node.Plan.left;
          evict node.Plan.right;
          List.iter
            (fun port ->
              match Plan.consumer plan ~node:id ~port with
              | None -> ()
              | Some _ ->
                incr produced;
                h.Instr.on_store ~cycle:!t
                  ~source:(Plan.Output { node = id; port }))
            [ 0; 1 ]);
        Plan.iter_successors plan id (fun c ->
            pending.(c) <- pending.(c) - 1;
            if pending.(c) = 0 then fresh := Plan.node plan c :: !fresh)
    done;
    match instr with
    | None -> ()
    | Some h ->
      (* Occupancy of cycle t: after its evictions, before adding its
         productions — droplets enter storage from the next cycle. *)
      h.Instr.on_cycle ~cycle:!t ~fired:!fired ~ready ~stored:!stored;
      stored := !stored + !produced
  done;
  Schedule.create ~plan ~mixers ~cycles ~mixer_of
