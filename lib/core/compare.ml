type scheme =
  | Repeated of Mixtree.Algorithm.t
  | Streamed of Mixtree.Algorithm.t * Scheduler.t

let scheme_name = function
  | Repeated algorithm -> Baseline.name algorithm
  | Streamed (algorithm, scheduler) -> Engine.scheme_name algorithm scheduler

let table2_schemes =
  let open Mixtree.Algorithm in
  [
    Repeated MM;
    Streamed (MM, Scheduler.mms);
    Streamed (MM, Scheduler.srs);
    Repeated RMA;
    Streamed (RMA, Scheduler.mms);
    Streamed (RMA, Scheduler.srs);
    Repeated MTCS;
    Streamed (MTCS, Scheduler.mms);
    Streamed (MTCS, Scheduler.srs);
  ]

let evaluate ?mixers ~ratio ~demand scheme =
  let mixers =
    match mixers with Some m -> m | None -> Engine.default_mixers ratio
  in
  match scheme with
  | Repeated algorithm -> Baseline.metrics ~algorithm ~ratio ~demand ~mixers
  | Streamed (algorithm, scheduler) ->
    let result =
      Engine.prepare
        { Engine.ratio; demand; algorithm; scheduler; mixers = Some mixers }
    in
    result.Engine.metrics

let evaluate_all ?mixers ~ratio ~demand schemes =
  Par.map
    (fun scheme -> (scheme, evaluate ?mixers ~ratio ~demand scheme))
    schemes

type improvement = {
  algorithm : Mixtree.Algorithm.t;
  mms_tc_over_repeated : float;
  srs_tc_over_repeated : float;
  mms_i_over_repeated : float;
  srs_i_over_repeated : float;
  srs_q_over_mms : float;
  srs_tc_over_mms : float;
}

let mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let average_improvements ?mixers ~ratios ~demand algorithm =
  (* Each ratio is an independent nine-evaluation workload: fan the corpus
     out over domains; the fold below only sees the in-order results. *)
  let rows =
    Par.map
      (fun ratio ->
        let repeated = evaluate ?mixers ~ratio ~demand (Repeated algorithm) in
        let mms =
          evaluate ?mixers ~ratio ~demand (Streamed (algorithm, Scheduler.mms))
        in
        let srs =
          evaluate ?mixers ~ratio ~demand (Streamed (algorithm, Scheduler.srs))
        in
        (repeated, mms, srs))
      ratios
  in
  let improvement f = Metrics.percent_improvement ~baseline:f in
  {
    algorithm;
    mms_tc_over_repeated =
      mean
        (List.map (fun (r, m, _) -> improvement r.Metrics.tc m.Metrics.tc) rows);
    srs_tc_over_repeated =
      mean
        (List.map (fun (r, _, s) -> improvement r.Metrics.tc s.Metrics.tc) rows);
    mms_i_over_repeated =
      mean
        (List.map
           (fun (r, m, _) ->
             improvement r.Metrics.input_total m.Metrics.input_total)
           rows);
    srs_i_over_repeated =
      mean
        (List.map
           (fun (r, _, s) ->
             improvement r.Metrics.input_total s.Metrics.input_total)
           rows);
    srs_q_over_mms =
      mean
        (List.map (fun (_, m, s) -> improvement m.Metrics.q s.Metrics.q) rows);
    srs_tc_over_mms =
      mean
        (List.map (fun (_, m, s) -> improvement m.Metrics.tc s.Metrics.tc) rows);
  }
