lib/core/oms.ml: Array Int List Plan Schedule
