type t = MM | RMA | MTCS | RSM

let all = [ MM; RMA; RSM; MTCS ]

let build = function
  | MM -> Minmix.build
  | RMA -> Rma.build
  | MTCS -> Mtcs.build
  | RSM -> Rsm.build

let intra_pass_sharing = function
  | MTCS -> true
  | MM | RMA | RSM -> false

let name = function
  | MM -> "MM"
  | RMA -> "RMA"
  | MTCS -> "MTCS"
  | RSM -> "RSM"

let of_string s =
  match String.uppercase_ascii (String.trim s) with
  | "MM" -> Some MM
  | "RMA" -> Some RMA
  | "MTCS" -> Some MTCS
  | "RSM" -> Some RSM
  | _ -> None

let pp ppf t = Format.pp_print_string ppf (name t)
