(** Cycle-level droplet simulator.

    Executes a scheduled mixing forest on a concrete chip layout, droplet
    by droplet: reservoir dispenses, routed moves with fluidic segregation
    (no unrelated droplet within the 8-neighbourhood of a route), (1:1)
    mix-splits in the assigned mixers, storage parking, waste disposal and
    target emission at the output port.

    Each schedule cycle expands into three phases:
    + {b evacuation} — droplets mixed in the previous cycle leave their
      mixer for a storage unit, the waste reservoir or the output port
      (unless a consumer fetches them directly this cycle);
    + {b staging} — the operand droplets of this cycle's mix-splits are
      dispensed or fetched to their mixers;
    + {b mixing} — co-located operands merge, mix and split.

    Within a phase droplets move one at a time, so route interference
    reduces to avoiding parked droplets; when no segregation-respecting
    route exists the droplet takes the shortest module-avoiding route and
    the move is flagged ({!Trace.violations}). *)

type stats = {
  cycles : int;  (** Schedule cycles executed. *)
  moves : int;
  electrodes : int;  (** Total electrode actuations of all moves. *)
  dispensed : int;
  emitted : Dmf.Mixture.t list;  (** Values of emitted targets, in order. *)
  discarded : int;  (** Droplets sent to waste. *)
  violations : int;  (** Moves that had to break segregation. *)
  heatmap : int array array;
      (** Per-electrode actuation counts, indexed [y].[x] — one count per
          route step, the basis of the {!Wear} analysis. *)
  addressing : Chip.Pin_assign.requirement list;
      (** Three-valued actuation requirements of every route step, in
          step order — the input of broadcast pin assignment
          ({!Chip.Pin_assign.assign}). *)
}

val run :
  layout:Chip.Layout.t ->
  plan:Mdst.Plan.t ->
  schedule:Mdst.Schedule.t ->
  (Trace.t * stats, string) result
(** [run ~layout ~plan ~schedule] simulates the full schedule.  Fails when
    the layout cannot host the schedule (missing reservoir, too few
    mixers or storage units, unreachable modules). *)

val check : plan:Mdst.Plan.t -> stats -> (unit, string) result
(** Post-execution verification: the number of emitted droplets equals
    the plan's target count and every emitted value equals the target
    mixture. *)
