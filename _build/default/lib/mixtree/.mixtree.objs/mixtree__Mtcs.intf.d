lib/mixtree/mtcs.mli: Dmf Tree
