(* Primitive classification.  Names are post-normalization ("Stdlib."
   stripped, "__" -> "."), so stdlib channel primitives appear bare. *)

module SS = Set.Make (String)

let of_list = SS.of_list

(* Operations that can park the calling thread for an unbounded or
   scheduler-visible amount of time: raw Unix I/O, fsync, sleeps,
   joins, and buffered channel I/O (which blocks on the peer for
   sockets and pipes). *)
let blocking =
  of_list
    [
      "Unix.sleep";
      "Unix.sleepf";
      "Unix.read";
      "Unix.write";
      "Unix.single_write";
      "Unix.select";
      "Unix.accept";
      "Unix.connect";
      "Unix.fsync";
      "Unix.waitpid";
      "Unix.wait";
      "Unix.recv";
      "Unix.send";
      "Unix.recvfrom";
      "Unix.sendto";
      "Unix.system";
      "Unix.lockf";
      "Thread.delay";
      "Thread.join";
      "Domain.join";
      "output_string";
      "output_char";
      "output_bytes";
      "output_binary_int";
      "output_value";
      "flush";
      "input_line";
      "input_char";
      "input_byte";
      "input_binary_int";
      "input_value";
      "really_input";
      "really_input_string";
    ]

(* Process-creating primitives: forbidden once any domain has been
   spawned (OCaml 5 runtime constraint), and required to be preceded by
   Analysis.Runtime.assert_no_domains_spawned in the same function. *)
let fork =
  of_list
    [
      "Unix.fork";
      "Unix.create_process";
      "Unix.create_process_env";
      "Unix.system";
      "Unix.open_process";
      "Unix.open_process_in";
      "Unix.open_process_out";
      "Unix.open_process_full";
    ]

let spawn = "Domain.spawn"

(* Unix calls that fail with EINTR when a signal handler is installed
   without SA_RESTART — which is how the OCaml runtime installs them.
   Deliberately the classic non-restartable set: plain reads/writes are
   excluded to keep the rule's signal/noise high. *)
let interruptible =
  of_list
    [
      "Unix.accept";
      "Unix.select";
      "Unix.connect";
      "Unix.wait";
      "Unix.waitpid";
      "Unix.sleep";
      "Unix.sleepf";
    ]

let assert_no_domains = "Analysis.Runtime.assert_no_domains_spawned"
