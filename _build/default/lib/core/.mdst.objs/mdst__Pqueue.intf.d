lib/core/pqueue.mli:
