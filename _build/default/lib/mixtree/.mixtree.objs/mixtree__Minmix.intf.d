lib/mixtree/minmix.mli: Dmf Tree
