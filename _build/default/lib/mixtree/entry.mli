(** Leaf entries of a mixing tree.

    A target part [ai] is realised by leaf droplets of fluid [i] entering
    the tree at depths given by the binary expansion of [ai]: a set bit
    [j] becomes one leaf of weight [2^j] (contributing [2^j / 2^d] of the
    final volume).  Tree-construction algorithms manipulate multisets of
    such entries and repeatedly partition them into two halves of equal
    weight — always possible for powers of two (see {!partition}). *)

type t = { fluid : Dmf.Fluid.t; weight : int }
(** One leaf entry; [weight] is a power of two. *)

val of_ratio : Dmf.Ratio.t -> t list
(** [of_ratio r] expands each part into its set-bit entries, sorted by
    decreasing weight (ties by fluid index). *)

val total : t list -> int
(** Sum of the weights. *)

val sort : t list -> t list
(** Sort by decreasing weight, ties by increasing fluid index. *)

val partition : ?tie:(t -> t -> int) -> half:int -> t list -> t list * t list
(** [partition ~half entries] splits [entries] (whose total must be
    [2 * half]) into two halves of weight exactly [half] by first-fit
    decreasing — exact because all weights are powers of two.  Entries of
    equal weight are ordered by [tie] (fluid index by default), which lets
    algorithms bias {e which} entries land in the first half without
    breaking exactness.
    @raise Invalid_argument if the total is not [2 * half]. *)

val balance_fluids : t list * t list -> t list * t list
(** [balance_fluids (l, r)] swaps equal-weight entries between the two
    halves so that duplicate entries of the same fluid are spread across
    both sides (the totals of each side are preserved).  Used by the RMA
    variant to avoid mixing a fluid with itself. *)

val split_largest : t list -> t list option
(** [split_largest entries] replaces one entry of the largest weight
    [w >= 2] by two entries of weight [w / 2], or returns [None] when all
    entries are unit weight. *)

val pp : Format.formatter -> t list -> unit
