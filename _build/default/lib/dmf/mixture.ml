type t = { num : int array; k : int }

(* Canonical form: either k = 0, or at least one numerator is odd.  The
   numerators always sum to 2^k, so halving preserves the invariant. *)
let rec canonicalize num k =
  if k > 0 && Array.for_all (fun a -> a land 1 = 0) num then
    canonicalize (Array.map (fun a -> a asr 1) num) (k - 1)
  else { num; k }

let pure ~n f =
  let i = Fluid.index f in
  if n < 1 || i >= n then invalid_arg "Mixture.pure: fluid out of range";
  let num = Array.make n 0 in
  num.(i) <- 1;
  { num; k = 0 }

let of_ratio r = canonicalize (Ratio.parts r) (Ratio.accuracy r)

let mix a b =
  if Array.length a.num <> Array.length b.num then
    invalid_arg "Mixture.mix: different fluid universes";
  let k = max a.k b.k in
  let lift v = Array.map (fun x -> x lsl (k - v.k)) v.num in
  let na = lift a and nb = lift b in
  canonicalize (Array.map2 ( + ) na nb) (k + 1)

let n_fluids v = Array.length v.num
let scale v = v.k
let numerators v = Array.copy v.num

let cf v f =
  let i = Fluid.index f in
  if i >= Array.length v.num then invalid_arg "Mixture.cf: fluid out of range";
  (v.num.(i), Binary.pow2 v.k)

let is_pure v =
  if v.k <> 0 then None
  else
    let found = ref None in
    Array.iteri (fun i a -> if a = 1 then found := Some (Fluid.make i)) v.num;
    !found

let compare a b =
  match Int.compare a.k b.k with
  | 0 -> Stdlib.compare a.num b.num
  | c -> c

let equal a b = compare a b = 0
let hash v = Hashtbl.hash (v.k, v.num)

let to_string v =
  let body =
    String.concat "," (Array.to_list (Array.map string_of_int v.num))
  in
  Printf.sprintf "<%s>/%d" body (Binary.pow2 v.k)

let pp ppf v = Format.pp_print_string ppf (to_string v)

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ordered)
module Set = Set.Make (Ordered)
