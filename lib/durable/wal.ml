type fsync_policy = { every_n : int; every_ms : float }

let strict = { every_n = 1; every_ms = 0. }

(* Group commit.

   [append] only writes; durability is a separate step.  When the
   policy makes a record's durability due, its thread calls [commit]
   and parks on [q_done] until some fsync covers its sequence number.
   The first thread to find no sync in flight becomes the leader: it
   snapshots the high-water mark ([appended_upto]), fsyncs once with no
   lock that an appender needs, and releases every thread parked at or
   below the mark together.  Threads that arrive while a sync is in
   flight park and, if that fsync started before their record was
   written, one of them leads the next round — so under concurrent
   load one fsync absorbs a whole batch and `every_n = 1` keeps its
   meaning (no caller returns before its record is on disk) at far
   fewer than one fsync per record.

   Lock roles:
   - [q_lock]/[q_done] guard the commit-queue state; [q_done] pairs
     with [q_lock] and nothing else, and a parked thread holds no
     other lock (Manager calls [commit] outside its own mutex).
   - [fsync_gate] orders the leader's fsync against [rotate]/[close]
     swapping the descriptor, so an fsync can never race a close.
   [sync] (used by rotate, close and snapshots, which run under the
   manager's lock) never parks on the condvar: it issues its own fsync
   regardless of an in-flight leader — a redundant fsync is harmless,
   a condvar wait under a foreign lock is not. *)

type t = {
  dir : string;
  fsync : fsync_policy;
  mutable fd : Unix.file_descr;
  mutable next_seq : int;
  mutable appends : int;
  q_lock : Mutex.t;
  q_done : Condition.t;
  fsync_gate : Mutex.t;
  mutable appended_upto : int;  (* highest seq written to [fd] *)
  mutable synced_upto : int;  (* highest seq an fsync covers *)
  mutable sync_in_flight : bool;
  mutable fd_closed : bool;
  mutable last_sync : float;
  mutable fsyncs : int;
  mutable group_commits : int;
  mutable batch_records : int;
}

let rec ensure_dir dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then ensure_dir parent;
    try Unix.mkdir dir 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let segment_name seq = Printf.sprintf "wal-%012d.ndjson" seq

let parse_name ~prefix ~suffix name =
  let pn = String.length prefix and sn = String.length suffix in
  let n = String.length name in
  if
    n > pn + sn
    && String.sub name 0 pn = prefix
    && String.sub name (n - sn) sn = suffix
  then int_of_string_opt (String.sub name pn (n - pn - sn))
  else None

let listing ~prefix ~suffix dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    Array.to_list names
    |> List.filter_map (fun name ->
           match parse_name ~prefix ~suffix name with
           | Some seq -> Some (seq, Filename.concat dir name)
           | None -> None)
    |> List.sort compare

let segments ~dir = listing ~prefix:"wal-" ~suffix:".ndjson" dir

let open_fd dir start_seq =
  Unix.openfile
    (Filename.concat dir (segment_name start_seq))
    [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
    0o644

let open_segment ~dir ~start_seq ~fsync =
  ensure_dir dir;
  {
    dir;
    fsync;
    fd = open_fd dir start_seq;
    next_seq = start_seq;
    appends = 0;
    q_lock = Mutex.create ();
    q_done = Condition.create ();
    fsync_gate = Mutex.create ();
    appended_upto = start_seq - 1;
    synced_upto = start_seq - 1;
    sync_in_flight = false;
    fd_closed = false;
    last_sync = Unix.gettimeofday ();
    fsyncs = 0;
    group_commits = 0;
    batch_records = 0;
  }

let write_all fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd s !written (n - !written)
  done

let append t kind =
  let seq = t.next_seq in
  write_all t.fd (Record.encode ~seq kind ^ "\n");
  t.next_seq <- seq + 1;
  t.appends <- t.appends + 1;
  Mutex.lock t.q_lock;
  t.appended_upto <- seq;
  Mutex.unlock t.q_lock;
  seq

let sync_due t =
  Mutex.lock t.q_lock;
  let unsynced = t.appended_upto - t.synced_upto in
  let due_count = t.fsync.every_n > 0 && unsynced >= t.fsync.every_n in
  let due_time =
    t.fsync.every_ms > 0. && unsynced > 0
    && (Unix.gettimeofday () -. t.last_sync) *. 1000. >= t.fsync.every_ms
  in
  Mutex.unlock t.q_lock;
  due_count || due_time

let fsync_gated t =
  Mutex.lock t.fsync_gate;
  if not t.fd_closed then Unix.fsync t.fd;
  Mutex.unlock t.fsync_gate
[@@dmflint.allow
  "blocking-under-lock: fsync_gate exists precisely to order this \
   fsync before rotate/close swaps or closes the descriptor; it is \
   never held together with q_lock or any caller's lock, so nothing \
   that appends or parks can contend on it"]

(* Under [q_lock]. *)
let record_sync t ~target ~group =
  if target > t.synced_upto then begin
    if group then t.batch_records <- t.batch_records + (target - t.synced_upto);
    t.synced_upto <- target
  end;
  t.fsyncs <- t.fsyncs + 1;
  if group then t.group_commits <- t.group_commits + 1;
  t.last_sync <- Unix.gettimeofday ();
  Condition.broadcast t.q_done

let commit t ~upto =
  Mutex.lock t.q_lock;
  let rec settle () =
    if t.synced_upto >= upto then ()
    else if t.sync_in_flight then begin
      Condition.wait t.q_done t.q_lock;
      settle ()
    end
    else begin
      t.sync_in_flight <- true;
      let target = t.appended_upto in
      Mutex.unlock t.q_lock;
      fsync_gated t;
      Mutex.lock t.q_lock;
      t.sync_in_flight <- false;
      record_sync t ~target ~group:true;
      settle ()
    end
  in
  settle ();
  Mutex.unlock t.q_lock

let sync t =
  Mutex.lock t.q_lock;
  let target = t.appended_upto in
  let dirty = target > t.synced_upto in
  Mutex.unlock t.q_lock;
  if dirty then begin
    fsync_gated t;
    Mutex.lock t.q_lock;
    record_sync t ~target ~group:false;
    Mutex.unlock t.q_lock
  end

let rotate t =
  sync t;
  Mutex.lock t.fsync_gate;
  Unix.close t.fd;
  t.fd <- open_fd t.dir t.next_seq;
  Mutex.unlock t.fsync_gate;
  Mutex.lock t.q_lock;
  t.last_sync <- Unix.gettimeofday ();
  Mutex.unlock t.q_lock

let close t =
  sync t;
  Mutex.lock t.fsync_gate;
  t.fd_closed <- true;
  Unix.close t.fd;
  Mutex.unlock t.fsync_gate;
  Mutex.lock t.q_lock;
  Condition.broadcast t.q_done;
  Mutex.unlock t.q_lock

let next_seq t = t.next_seq
let appends t = t.appends

let fsyncs t =
  Mutex.lock t.q_lock;
  let n = t.fsyncs in
  Mutex.unlock t.q_lock;
  n

let group_commits t =
  Mutex.lock t.q_lock;
  let n = t.group_commits in
  Mutex.unlock t.q_lock;
  n

let avg_batch_size t =
  Mutex.lock t.q_lock;
  let g = t.group_commits and r = t.batch_records in
  Mutex.unlock t.q_lock;
  if g = 0 then 0. else float_of_int r /. float_of_int g
