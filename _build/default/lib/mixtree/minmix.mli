(** The Min-Mix (MM) base mixing tree of Thies et al. [24].

    Each part [ai] of the target ratio is expanded in binary; fluid [i]
    contributes one leaf droplet at depth [d - j] for every set bit [j],
    which is the minimum possible number of input droplets for a mixing
    tree.  The entry multiset is split top-down into exact halves
    (first-fit decreasing), producing a balanced tree of depth [d]. *)

val build : Dmf.Ratio.t -> Tree.t
(** [build r] is the MM mixing tree for [r]; its root value equals
    [Dmf.Mixture.of_ratio r] and its depth is at most [Ratio.accuracy r]. *)
