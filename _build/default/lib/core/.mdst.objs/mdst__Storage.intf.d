lib/core/storage.mli: Plan Schedule
