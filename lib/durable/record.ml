type kind =
  | Accepted of Service.Request.spec
  | Completed of { spec : Service.Request.spec; requests : int; ok : bool }

let spec_to_json spec =
  Service.Request.to_json { Service.Request.id = None; kind = Prepare spec }

let fields ~seq kind =
  match kind with
  | Accepted spec ->
    [
      ("seq", Service.Jsonl.Int seq);
      ("rec", Service.Jsonl.String "accepted");
      ("spec", spec_to_json spec);
    ]
  | Completed { spec; requests; ok } ->
    [
      ("seq", Service.Jsonl.Int seq);
      ("rec", Service.Jsonl.String "completed");
      ("spec", spec_to_json spec);
      ("requests", Service.Jsonl.Int requests);
      ("ok", Service.Jsonl.Bool ok);
    ]

let encode ~seq kind =
  let body = fields ~seq kind in
  let crc = Crc32.string (Service.Jsonl.to_string (Service.Jsonl.Obj body)) in
  Service.Jsonl.to_string
    (Service.Jsonl.Obj (body @ [ ("crc", Service.Jsonl.Int crc) ]))

let ( let* ) = Result.bind

let field name json =
  match Service.Jsonl.member name json with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "record is missing the %S field" name)

let int_field name json =
  let* v = field name json in
  match Service.Jsonl.to_int v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "record field %S must be an integer" name)

let spec_of_json json =
  let ( let* ) = Result.bind in
  let* req = Service.Request.of_json json in
  match req.Service.Request.kind with
  | Service.Request.Prepare spec -> Ok spec
  | _ -> Error "record spec must be a prepare request"

let decode line =
  let* json = Service.Jsonl.of_string line in
  let* kvs =
    match json with
    | Service.Jsonl.Obj kvs -> Ok kvs
    | _ -> Error "record must be a JSON object"
  in
  let* stored_crc = int_field "crc" json in
  let body = List.filter (fun (k, _) -> k <> "crc") kvs in
  let computed =
    Crc32.string (Service.Jsonl.to_string (Service.Jsonl.Obj body))
  in
  if computed <> stored_crc then
    Error
      (Printf.sprintf "crc mismatch (stored %d, computed %d)" stored_crc
         computed)
  else
    let* seq = int_field "seq" json in
    let* rec_v = field "rec" json in
    let* spec_v = field "spec" json in
    let* spec = spec_of_json spec_v in
    match Service.Jsonl.to_str rec_v with
    | Some "accepted" -> Ok (seq, Accepted spec)
    | Some "completed" ->
      let* requests = int_field "requests" json in
      let* ok =
        let* v = field "ok" json in
        match Service.Jsonl.to_bool v with
        | Some b -> Ok b
        | None -> Error "record field \"ok\" must be a boolean"
      in
      Ok (seq, Completed { spec; requests; ok })
    | Some other -> Error (Printf.sprintf "unknown record kind %S" other)
    | None -> Error "record field \"rec\" must be a string"
