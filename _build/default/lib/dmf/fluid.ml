type t = int

let make i =
  if i < 0 then invalid_arg "Fluid.make: negative index";
  i

let index f = f
let equal = Int.equal
let compare = Int.compare
let hash f = f
let default_name f = "x" ^ string_of_int (f + 1)
let pp ppf f = Format.pp_print_string ppf (default_name f)
