lib/core/oms.mli: Plan Schedule
