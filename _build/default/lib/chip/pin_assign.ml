type requirement = {
  step : int;
  must_actuate : Geometry.point list;
  must_ground : Geometry.point list;
}

module Int_set = Set.Make (Int)

type electrode = {
  cell : Geometry.point;
  actuate : Int_set.t;  (* steps where this electrode must be high *)
  ground : Int_set.t;  (* steps where it must stay low *)
}

type group = {
  mutable members : Geometry.point list;
  mutable group_actuate : Int_set.t;
  mutable group_ground : Int_set.t;
}

type t = {
  width : int;
  pin_table : (int, int) Hashtbl.t;  (* cell key -> pin (1-based) *)
  pins : int;
  addressed : int;
}

let key ~width (p : Geometry.point) = (p.Geometry.y * width) + p.Geometry.x

let collect ~width ~height requirements =
  let table : (int, Geometry.point * Int_set.t ref * Int_set.t ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let touch (p : Geometry.point) =
    if p.Geometry.x < 0 || p.Geometry.x >= width || p.Geometry.y < 0
       || p.Geometry.y >= height
    then None
    else begin
      let k = key ~width p in
      match Hashtbl.find_opt table k with
      | Some entry -> Some entry
      | None ->
        let entry = (p, ref Int_set.empty, ref Int_set.empty) in
        Hashtbl.add table k entry;
        Some entry
    end
  in
  List.iter
    (fun r ->
      List.iter
        (fun p ->
          match touch p with
          | Some (_, actuate, _) -> actuate := Int_set.add r.step !actuate
          | None -> ())
        r.must_actuate;
      List.iter
        (fun p ->
          match touch p with
          | Some (_, _, ground) -> ground := Int_set.add r.step !ground
          | None -> ())
        r.must_ground)
    requirements;
  Hashtbl.fold
    (fun _ (cell, actuate, ground) acc ->
      (* Electrodes that are only ever grounded stay on the ground pin;
         keeping the full ground set (even where it overlaps the actuate
         set, which only happens for infeasible inputs) is conservative:
         such an electrode then conflicts with every pin sharing those
         steps. *)
      if Int_set.is_empty !actuate then acc
      else { cell; actuate = !actuate; ground = !ground } :: acc)
    table []

let assign ~width ~height requirements =
  let electrodes =
    collect ~width ~height requirements
    (* Most-constrained first gives the greedy grouping its best shot. *)
    |> List.sort (fun a b ->
           match
             Int.compare
               (Int_set.cardinal b.actuate + Int_set.cardinal b.ground)
               (Int_set.cardinal a.actuate + Int_set.cardinal a.ground)
           with
           | 0 -> compare a.cell b.cell
           | c -> c)
  in
  let groups : group list ref = ref [] in
  let compatible g e =
    Int_set.is_empty (Int_set.inter g.group_actuate e.ground)
    && Int_set.is_empty (Int_set.inter g.group_ground e.actuate)
  in
  List.iter
    (fun e ->
      match List.find_opt (fun g -> compatible g e) !groups with
      | Some g ->
        g.members <- e.cell :: g.members;
        g.group_actuate <- Int_set.union g.group_actuate e.actuate;
        g.group_ground <- Int_set.union g.group_ground e.ground
      | None ->
        groups :=
          !groups
          @ [
              {
                members = [ e.cell ];
                group_actuate = e.actuate;
                group_ground = e.ground;
              };
            ])
    electrodes;
  let pin_table = Hashtbl.create 256 in
  List.iteri
    (fun i g ->
      List.iter
        (fun cell -> Hashtbl.replace pin_table (key ~width cell) (i + 1))
        g.members)
    !groups;
  {
    width;
    pin_table;
    pins = List.length !groups;
    addressed = List.length electrodes;
  }

let pins t = t.pins
let addressed_electrodes t = t.addressed

let pin_of t p =
  Option.value ~default:0 (Hashtbl.find_opt t.pin_table (key ~width:t.width p))

let saving t =
  if t.addressed = 0 then 0.
  else 1. -. (float_of_int t.pins /. float_of_int t.addressed)
