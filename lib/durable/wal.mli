(** The append-only NDJSON journal, with group-commit durability.

    A WAL directory holds segment files named [wal-<seq12>.ndjson],
    where [<seq12>] is the zero-padded sequence number of the segment's
    first record; records carry strictly increasing sequence numbers
    across segments.  {!Manager} opens a fresh segment on every boot
    and rotates to a new one at each snapshot, so {!Compact} can drop
    whole files that a snapshot has made redundant.

    Durability is tunable with {!fsync_policy} and decoupled from
    appending: {!append} only writes; a thread whose record is due
    (per {!sync_due}) calls {!commit} and parks until an fsync covers
    its sequence number.  Concurrent committers share one fsync — the
    first to arrive leads, the rest ride the batch and all release
    together — so [every_n = 1] keeps its strict meaning (no caller
    returns before its record is on disk) at far fewer than one fsync
    per record under load.  [every_ms] adds a time bound so a slow
    trickle of requests does not postpone the sync indefinitely;
    either trigger alone may be disabled with a non-positive value.

    {!append} must still be serialized by the caller ({!Manager}'s
    lock — appends assign sequence numbers and interleave bytes);
    {!commit}, {!sync} and the counters are safe from any thread. *)

type fsync_policy = { every_n : int; every_ms : float }

val strict : fsync_policy
(** [{ every_n = 1; every_ms = 0. }] — every record durable before its
    journaling call returns. *)

type t

val open_segment : dir:string -> start_seq:int -> fsync:fsync_policy -> t
(** Create (or append to) the segment whose first record will be
    [start_seq], creating [dir] as needed.
    @raise Unix.Unix_error if the directory or file cannot be made. *)

val append : t -> Record.kind -> int
(** Journal one record; returns the sequence number it was assigned.
    Does not sync — check {!sync_due} and call {!commit} (outside any
    lock {!append} is serialized under). *)

val sync_due : t -> bool
(** Whether the fsync policy wants a sync now (count or time
    trigger). *)

val commit : t -> upto:int -> unit
(** Park until an fsync covers sequence number [upto], leading the
    group fsync if no sync is in flight.  Must be called with no locks
    held. *)

val sync : t -> unit
(** Force an fsync of any unsynced appends now, without parking on the
    commit queue (safe under the manager's lock; rotate, close and
    snapshots use this). *)

val rotate : t -> unit
(** Sync and close the current segment, then open a fresh one starting
    at the next sequence number. *)

val close : t -> unit
(** Sync and close.  The value must not be used afterwards. *)

val next_seq : t -> int
(** Sequence number the next {!append} will be assigned. *)

val appends : t -> int
(** Records appended through this value (all segments). *)

val fsyncs : t -> int
(** fsync calls issued through this value (group commits included). *)

val group_commits : t -> int
(** fsyncs issued by {!commit} leaders — each released a whole batch
    of parked committers at once. *)

val avg_batch_size : t -> float
(** Mean records newly covered per group commit ([0.] before the
    first); the batching win strict durability gets from concurrency. *)

(** {2 Directory layout} *)

val segment_name : int -> string
val segments : dir:string -> (int * string) list
(** [(start_seq, absolute path)] of every segment file in [dir], in
    ascending [start_seq] order; empty for a missing directory. *)

val ensure_dir : string -> unit
(** [mkdir -p]. *)
