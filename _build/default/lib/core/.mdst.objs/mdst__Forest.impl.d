lib/core/forest.ml: Array Dmf Hashtbl List Mixtree Plan Queue
