lib/chip/router.mli: Chip_module Geometry Layout
