(** A small purely functional priority queue (pairing heap).

    Used by the SRS scheduler for its two priority queues of schedulable
    nodes ([Qint] and [Qleaf], Algorithm 2). *)

type 'a t

val empty : compare:('a -> 'a -> int) -> 'a t
(** [empty ~compare] is an empty queue; [compare] orders elements with the
    minimum popped first. *)

val is_empty : 'a t -> bool
val size : 'a t -> int

val insert : 'a -> 'a t -> 'a t

val pop : 'a t -> ('a * 'a t) option
(** [pop q] removes the minimum element, or [None] when empty. *)

val of_list : compare:('a -> 'a -> int) -> 'a list -> 'a t

val union : 'a t -> 'a t -> 'a t
(** [union a b] melds two queues in O(1); the result orders elements with
    [a]'s comparison function, so both queues must use compatible
    orders. *)

val to_sorted_list : 'a t -> 'a list
(** Drains the queue in priority order. *)
