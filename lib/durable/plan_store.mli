(** Content-addressed on-disk store of prepared plans — the second
    cache tier under {!Service.Cache}'s in-memory LRU.

    One entry is one file named by a stable content hash of the
    canonical bytes of the planning inputs (ratio parts, demand,
    algorithm, scheduler, Mc, storage budget — the same identity as
    {!Service.Request.cache_key}, made byte-precise).  The payload is
    the {!Mdst.Plan_codec} encoding of the full prepared result:
    summary, scheduler counters, and — for single-pass runs — the plan
    and schedule themselves.

    Durability discipline matches the snapshot writer: write to a
    unique temp name, [fsync], [rename], fsync the directory.  Entries
    are immutable once named, so concurrent readers (the shards of a
    cluster sharing one directory) need no locking; the only
    cross-process coordination is an advisory [GC.LOCK] taken with
    [F_TLOCK] around garbage collection, and a contended lock simply
    skips the GC round.

    Every read verifies the CRC and the embedded spec-key bytes (a
    hash-collision guard), then decodes through the validating codec
    constructors; any failure deletes the entry and reads as a miss, so
    corruption can only ever cost a re-plan, never serve a wrong
    schedule. *)

type t

val open_store : ?max_bytes:int -> dir:string -> unit -> t
(** Open (creating [dir] if needed) a store.  [max_bytes], when given,
    bounds the total size of entries: {!gc} deletes oldest-first down
    to 80% of the bound once it is exceeded. *)

val dir : t -> string

val spec_bytes : Service.Request.spec -> string
(** Canonical bytes of the planning inputs — the hash preimage.  Ratio
    names are excluded, exactly as {!Service.Request.cache_key} ignores
    them: names label reports, they never change a plan. *)

val key_of_spec : Service.Request.spec -> string
(** [Mdst.Plan_codec.hash_hex (spec_bytes spec)] — 32 hex characters. *)

val entry_path : t -> Service.Request.spec -> string
(** Absolute path of the entry file ([ps-<key>.plan]) for a spec,
    whether or not it exists. *)

val find : t -> Service.Request.spec -> Service.Prep.prepared option
(** Look up a spec.  [None] on absent, version-mismatched, corrupt or
    colliding entries (the latter three also delete the file and count
    as [errors]). *)

val add : t -> Service.Request.spec -> Service.Prep.prepared -> unit
(** Persist a prepared result (atomic write; last writer wins on a
    race, both writers having produced equal bytes by canonicality).
    Runs {!gc} afterwards when a size bound is configured.  I/O errors
    are counted, never raised: the store is an accelerator, losing a
    write only costs a future re-plan. *)

val gc : t -> unit
(** Delete oldest entries (by mtime) until total size is at or below
    80% of [max_bytes].  No-op without a bound, when under it, or when
    another process holds [GC.LOCK]. *)

type stats = {
  entries : int;  (** Entry files currently on disk. *)
  bytes : int;  (** Their total size. *)
  hits : int;
  misses : int;
  writes : int;
  errors : int;  (** Corrupt/mismatched entries deleted + failed writes. *)
  gc_runs : int;
  gc_removed : int;
  max_bytes : int option;
}

val stats : t -> stats
(** Counters are per-handle (this process); [entries]/[bytes] scan the
    shared directory. *)

val stats_json : t -> Service.Jsonl.t

(** {2 Codec internals, exposed for the golden-vector and corruption
    tests} *)

val encode_prepared : Service.Prep.prepared -> string
(** Canonical payload bytes of a prepared result (no file framing). *)

val decode_prepared : string -> (Service.Prep.prepared, string) result

val encode_entry : spec_key:string -> payload:string -> string
(** Full file image: magic, length-prefixed spec-key bytes and payload,
    CRC-32 trailer. *)

val decode_entry : string -> (string * string, string) result
(** [(spec_key_bytes, payload)] of a file image after magic and CRC
    checks. *)
