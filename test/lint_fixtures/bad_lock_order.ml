(* DML001: ab and ba take the two mutexes in opposite order — the
   classic deadlock-capable cycle. *)

let a = Mutex.create ()
let b = Mutex.create ()

let ab () =
  Mutex.lock a;
  Mutex.lock b;
  Mutex.unlock b;
  Mutex.unlock a

let ba () =
  Mutex.lock b;
  Mutex.lock a;
  Mutex.unlock a;
  Mutex.unlock b
