test/test_robustness.ml: Alcotest Array Astring Chip Dmf Generators List Mdst Mixtree Printf QCheck2 Sim String
