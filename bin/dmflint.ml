(* dmflint — concurrency-discipline lint over dune-produced .cmt files.

   Build first, then point it at the build tree (or the repo root: it
   scans recursively for .cmt):

     dune build @all
     dune exec bin/dmflint.exe -- --root _build/default --exclude lint_fixtures

   Exit codes: 0 clean, 1 unsuppressed findings, 2 usage/environment
   error (e.g. no .cmt files found). *)

let run root excludes json dot quiet =
  if not (Sys.file_exists root && Sys.is_directory root) then begin
    Printf.eprintf "dmflint: not a directory: %s\n" root;
    exit 2
  end;
  let r = Lint.Engine.run ~root ~excludes in
  if r.Lint.Engine.units = [] then begin
    Printf.eprintf
      "dmflint: no readable .cmt files under %s (run `dune build` first?)\n"
      root;
    exit 2
  end;
  (match dot with
  | Some path ->
    let oc = open_out path in
    output_string oc (Lint.Lockgraph.to_dot r.Lint.Engine.graph);
    close_out oc;
    if not quiet then Printf.printf "lock-order graph written to %s\n" path
  | None -> ());
  if json then Lint.Report.print_json stdout r
  else Lint.Report.print_human ~quiet stdout r;
  if Lint.Engine.unsuppressed r = [] then exit 0 else exit 1

open Cmdliner

let root =
  Arg.(
    value & opt string "_build/default"
    & info [ "root" ] ~docv:"DIR" ~doc:"Directory to scan for .cmt files.")

let excludes =
  Arg.(
    value & opt_all string []
    & info [ "exclude" ] ~docv:"SUBSTR"
        ~doc:
          "Skip .cmt files whose path or source file contains $(docv). \
           Repeatable.")

let json =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit findings as JSON.")

let dot =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE"
        ~doc:"Write the lock-order graph as Graphviz DOT to $(docv).")

let quiet =
  Arg.(
    value & flag
    & info [ "quiet" ] ~doc:"Do not list suppressed findings.")

let cmd =
  let doc = "static concurrency-discipline checks over .cmt typed trees" in
  Cmd.v
    (Cmd.info "dmflint" ~doc)
    Term.(const run $ root $ excludes $ json $ dot $ quiet)

let () = exit (Cmd.eval cmd)
