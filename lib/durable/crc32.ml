(* The implementation moved to lib/core (Mdst.Crc32) so the canonical
   plan codec can checksum without depending on this library; the WAL,
   snapshot and plan-store call sites keep their Durable.Crc32 name. *)

include Mdst.Crc32
