(* Droplet streaming under a hard storage budget (Section 6, Table 4).

   A point-of-care chip has a fixed number of storage electrodes q'.
   The streaming engine finds the largest per-pass demand D' that fits
   the budget and meets the total demand in ceil(D/D') passes.  This
   example sweeps the budget for the PCR master-mix at three accuracy
   levels and shows the passes / completion-time / waste trade-off.

   Run with: dune exec examples/storage_constrained.exe *)

let () =
  print_string
    (Mdst.Report.section
       "PCR master-mix streaming under a storage budget (Table 4 scenario)");
  List.iter
    (fun d ->
      let ratio = Bioproto.Protocols.pcr ~d in
      Format.printf "@.accuracy d = %d, ratio %a, demand 32, 3 mixers:@."
        d Dmf.Ratio.pp ratio;
      let rows =
        List.map
          (fun storage_limit ->
            let r =
              Mdst.Streaming.run ~algorithm:Mixtree.Algorithm.MM ~ratio
                ~demand:32 ~mixers:3 ~storage_limit
                ~scheduler:Mdst.Scheduler.srs ()
            in
            [
              string_of_int storage_limit;
              string_of_int (Mdst.Streaming.n_passes r);
              string_of_int r.Mdst.Streaming.per_pass_demand;
              string_of_int r.Mdst.Streaming.total_cycles;
              string_of_int r.Mdst.Streaming.total_waste;
              string_of_int r.Mdst.Streaming.total_inputs;
            ])
          [ 1; 2; 3; 4; 5; 6; 7; 10 ]
      in
      print_string
        (Mdst.Report.table
           ~header:[ "q'"; "passes"; "D'"; "Tc"; "W"; "I" ]
           ~rows))
    [ 4; 5; 6 ];
  (* Show one full constrained run in detail. *)
  let ratio = Bioproto.Protocols.pcr ~d:4 in
  Format.printf "@.detailed run: d=4, q'=3, demand 32@.";
  let r =
    Mdst.Streaming.run ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:32
      ~mixers:3 ~storage_limit:3 ~scheduler:Mdst.Scheduler.srs ()
  in
  List.iteri
    (fun i pass ->
      Format.printf "@.pass %d (D' = %d):@." (i + 1) pass.Mdst.Streaming.demand;
      print_string
        (Mdst.Gantt.render ~plan:pass.Mdst.Streaming.plan
           pass.Mdst.Streaming.schedule))
    r.Mdst.Streaming.passes
