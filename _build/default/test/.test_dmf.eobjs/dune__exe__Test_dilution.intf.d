test/test_dilution.mli:
