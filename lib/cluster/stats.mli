(** Deterministic aggregation of per-shard stats responses.

    Given one entry per ring shard — the primary's probe (client-side
    transport counters plus the parsed stats body, [None] if it did not
    answer) and, when a hot standby is registered, the follower's probe
    — builds the cluster-wide stats payload: daemon counters summed
    across every answering node, [cache] sub-counters summed,
    [avg_latency_ms] weighted by each node's [served], [uptime_s] as
    the maximum, a [cluster] object with shard/healthy/follower counts,
    and a [shards] array in ring order carrying each shard's address,
    health, transport counters and verbatim per-node fields (including
    the nested [wal] and [replication] objects, which have no
    meaningful cluster-wide sum); a follower's entry nests the same way
    under its shard's [follower] member.  When any shard reports a
    [plan_store] object its counters are summed into a cluster-wide
    [plan_store], except the on-disk totals ([entries], [bytes],
    [max_bytes]), which merge as maxima: shards share one store
    directory, so summing would count the same files once per shard.
    When any node reports a [replication] object, a top-level
    [replication] summary carries the role census and the worst
    follower lag (records and ms).

    The output is a pure function of the inputs: fan-out timing and
    completion order cannot change it. *)

type probe = Shard_client.stats * Service.Jsonl.t option
(** One node's probe result: transport counters plus the parsed stats
    body ([None] if the node did not answer the probe). *)

val merge : (probe * probe option) list -> Service.Jsonl.t
(** [merge entries] with one [(primary, follower)] pair per ring
    shard.  The returned object is the merged stats {e body}; the
    router adds the protocol envelope ([ok]/[req]/[id]). *)
