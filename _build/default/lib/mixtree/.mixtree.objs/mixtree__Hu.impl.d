lib/mixtree/hu.ml: Array Int List Queue Tree
