(** Atomic, versioned snapshots of the durable {!State}.

    A snapshot file [snapshot-<seq12>.json] captures the state after
    every record up to and including sequence number [<seq12>] has been
    applied; recovery loads the newest valid one and replays only the
    journal records after it.  Files are written to a [.tmp] sibling,
    fsynced, then renamed into place — a crash mid-write leaves the old
    snapshot untouched, and a half-written tmp file is never considered
    by {!load_latest}.

    Like the journal, snapshots store request {e specs}, not plans:
    deterministic re-planning through the scheduler registry rebuilds
    the cached values on boot. *)

val version : int
(** Current format version; {!load_latest} refuses newer files. *)

val name : int -> string

val list : dir:string -> (int * string) list
(** [(seq, absolute path)] of every snapshot file, ascending. *)

val write : dir:string -> seq:int -> State.t -> string
(** Serialize atomically; returns the path written.
    @raise Unix.Unix_error on filesystem failure. *)

val load : cache_capacity:int -> string -> (State.t, string) result
(** Read one snapshot file, verifying its CRC and version.  The state
    is rebuilt under the caller's [cache_capacity] (see
    {!State.restore}). *)

val load_latest : dir:string -> cache_capacity:int -> (int * State.t) option
(** The newest snapshot that verifies, with its sequence number;
    corrupt or unreadable candidates are skipped, older ones tried. *)
