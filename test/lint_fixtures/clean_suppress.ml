(* The suppression contract done right: rule name, colon, reviewable
   rationale.  The DML002 in this file is reported as suppressed and
   does not gate. *)

let m = Mutex.create ()

let f () =
  Mutex.lock m;
  Thread.delay 0.01;
  Mutex.unlock m
[@@dmflint.allow
  "blocking-under-lock: fixture — demonstrates a well-formed \
   suppression; the sleep is deliberate and harmless here"]
