lib/sim/pipeline.ml: Chip Contamination Dmf Executor Mdst Result Trace Wear
