test/test_assay.ml: Alcotest Array Assay Chip Generators List Mdst Mixtree Printf QCheck2 Sim
