lib/dmf/ratio.mli: Fluid Format
