examples/assay_feed.ml: Assay Bioproto Format List Mdst Mixtree String
