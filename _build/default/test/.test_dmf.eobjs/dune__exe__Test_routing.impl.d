test/test_routing.ml: Alcotest Chip Generators List Mdst Mixtree Printf QCheck2 Result Sim String
