test/test_chip.ml: Alcotest Astring Chip Dmf Generators List Mdst Mixtree Printf Result
