test/test_streaming.ml: Alcotest Bioproto Dmf Generators List Mdst Mixtree Printf QCheck2
