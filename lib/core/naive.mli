(** Per-cycle full-rescan reference schedulers.

    These are the original O(n·T) implementations of MMS, SRS and OMS,
    kept as the behavioural reference for the event-driven policies over
    {!Sched_core}: {!Mms}, {!Srs} and {!Oms} must produce bit-identical
    schedules (same cycle and same mixer for every node).  The
    differential property tests and the speed benchmark compare against
    them; nothing else should. *)

val mms : plan:Plan.t -> mixers:int -> Schedule.t
(** Reference MMS (Algorithm 1), rescanning the whole plan every cycle.
    @raise Invalid_argument if [mixers < 1]. *)

val srs : plan:Plan.t -> mixers:int -> Schedule.t
(** Reference SRS (Algorithm 2), rescanning the whole plan every cycle.
    @raise Invalid_argument if [mixers < 1]. *)

val oms : plan:Plan.t -> mixers:int -> Schedule.t
(** Reference OMS (critical-path list scheduling), rescanning the whole
    plan every cycle.  @raise Invalid_argument if [mixers < 1]. *)
