(** Real-life bioprotocol target mixtures used in the paper's evaluation
    (Sections 5 and 6). *)

type t = {
  id : string;  (** Short identifier, e.g. ["ex1"]. *)
  name : string;
  description : string;
  ratio : Dmf.Ratio.t;
  citation : string;  (** The paper's reference for the protocol. *)
}

val pcr_percentages : float array
(** The PCR master-mix volumetric percentages
    [{10; 8; 0.8; 0.8; 1; 1; 78.4}] — reactant buffer, dNTPs, forward
    primer, reverse primer, DNA template, optimase, water [14]. *)

val pcr_fluid_names : string array

val pcr : d:int -> Dmf.Ratio.t
(** [pcr ~d] is the PCR master-mix approximated at accuracy level [d].
    [d = 4] returns the paper's hand-rounded ratio [2:1:1:1:1:1:9]
    (Section 4.1); other levels use {!Dmf.Ratio.approximate}. *)

val ex1 : t
(** {26:21:2:2:3:3:199} — PCR master-mix on the scale 256 [3, 14]. *)

val ex2 : t
(** {128:123:5} — phenol / chloroform / isoamylalcohol, One-Step Miniprep
    [4]. *)

val ex3 : t
(** {25:5:5:5:5:13:13:25:1:159} — 10 fluids, Molecular Barcodes [12]. *)

val ex4 : t
(** {9:17:26:9:195} — 5 fluids, Splinkerette PCR [1]. *)

val ex5 : t
(** {57:28:6:6:6:3:150} — Miniprep by alkaline lysis [15]. *)

val table2 : t list
(** [ex1 .. ex5], the rows of Table 2. *)

val all : t list

val find : string -> t option
(** Look up a protocol by its [id] (case-insensitive). *)
