type spec = {
  ratio : Dmf.Ratio.t;
  demand : int;
  algorithm : Mixtree.Algorithm.t;
  scheduler : Streaming.scheduler;
  mixers : int option;
}

type result = {
  spec : spec;
  mixers : int;
  plan : Plan.t;
  schedule : Schedule.t;
  metrics : Metrics.t;
}

let default_mixers ratio =
  Mixtree.Hu.min_mixers_for_fastest (Mixtree.Minmix.build ratio)

let scheme_name algorithm scheduler =
  Mixtree.Algorithm.name algorithm ^ "+" ^ Streaming.scheduler_name scheduler

let resolve_mixers (spec : spec) =
  match spec.mixers with
  | Some m ->
    if m < 1 then invalid_arg "Engine: at least one mixer";
    m
  | None -> default_mixers spec.ratio

let prepare spec =
  let mixers = resolve_mixers spec in
  let plan =
    Forest.build ~algorithm:spec.algorithm ~ratio:spec.ratio
      ~demand:spec.demand
  in
  let schedule = Streaming.run_scheduler spec.scheduler ~plan ~mixers in
  let metrics =
    Metrics.of_schedule
      ~scheme:(scheme_name spec.algorithm spec.scheduler)
      ~plan schedule
  in
  { spec; mixers; plan; schedule; metrics }

let baseline_metrics spec =
  let mixers = resolve_mixers spec in
  Baseline.metrics ~algorithm:spec.algorithm ~ratio:spec.ratio
    ~demand:spec.demand ~mixers
