type t = {
  id : string;
  name : string;
  description : string;
  ratio : Dmf.Ratio.t;
  citation : string;
}

let pcr_percentages = [| 10.; 8.; 0.8; 0.8; 1.; 1.; 78.4 |]

let pcr_fluid_names =
  [|
    "reactant buffer";
    "dNTPs";
    "forward primer";
    "reverse primer";
    "DNA template";
    "optimase";
    "water";
  |]

let pcr ~d =
  if d = 4 then
    (* The paper's hand rounding (Section 4.1) keeps the buffer at 2/16
       rather than pushing all slack onto the water carrier. *)
    Dmf.Ratio.make ~names:pcr_fluid_names [| 2; 1; 1; 1; 1; 1; 9 |]
  else Dmf.Ratio.approximate ~names:pcr_fluid_names ~d pcr_percentages

let protocol id name description citation parts =
  { id; name; description; citation; ratio = Dmf.Ratio.of_string parts }

let ex1 =
  protocol "ex1" "PCR master-mix"
    "DNA-amplification master mixture of seven fluids on the scale 256"
    "Bio-Protocol 2013; mutationdiscovery.com [3, 14]" "26:21:2:2:3:3:199"

let ex2 =
  protocol "ex2" "One-Step Miniprep"
    "Phenol, chloroform and isoamylalcohol for plasmid DNA isolation"
    "Chowdhury, Nucleic Acids Res. 19(10) [4]" "128:123:5"

let ex3 =
  protocol "ex3" "Molecular Barcodes"
    "Ten-fluid mixture of the DNA barcoding protocol"
    "Lopez and Erickson, DNA Barcodes [12]" "25:5:5:5:5:13:13:25:1:159"

let ex4 =
  protocol "ex4" "Splinkerette PCR"
    "Five-fluid mixture for retroviral insertion-site sequencing"
    "Uren et al., Nature Protocols 4(5) [1]" "9:17:26:9:195"

let ex5 =
  protocol "ex5" "Miniprep (alkaline lysis)"
    "Plasmid DNA preparation by alkaline lysis with SDS"
    "Cold Spring Harbor Protocols 2006 [15]" "57:28:6:6:6:3:150"

let table2 = [ ex1; ex2; ex3; ex4; ex5 ]

let pcr16 =
  {
    id = "pcr16";
    name = "PCR master-mix (d=4)";
    description = "The paper's running example on the scale 16";
    citation = "[14]";
    ratio = pcr ~d:4;
  }

let all = pcr16 :: table2

let find id =
  let id = String.lowercase_ascii (String.trim id) in
  List.find_opt (fun p -> String.lowercase_ascii p.id = id) all
