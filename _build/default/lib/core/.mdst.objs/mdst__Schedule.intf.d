lib/core/schedule.mli: Plan
