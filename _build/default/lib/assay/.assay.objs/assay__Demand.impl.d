lib/assay/demand.ml: Int List
