(** Exact mixture values (concentration-factor vectors).

    Every droplet manipulated by a (1:1) mix-split sequence has a CF vector
    whose entries are dyadic rationals: fluid [i] is present with
    concentration [num.(i) / 2^k].  Values are kept canonical (the
    numerators are not all even unless [k = 0]), so structural comparison
    decides droplet interchangeability — the property the mixing forest
    exploits when it re-uses waste droplets. *)

type t
(** A canonical mixture value over a fixed universe of [n] fluids. *)

val pure : n:int -> Fluid.t -> t
(** [pure ~n f] is a droplet of reactant [f] at CF 100%, in a universe of
    [n] fluids.  @raise Invalid_argument if [f] is out of range. *)

val of_ratio : Ratio.t -> t
(** [of_ratio r] is the target mixture value [a1/2^d, ..., aN/2^d]. *)

val mix : t -> t -> t
(** [mix a b] is the value of both droplets produced by a (1:1) mix-split
    of a droplet of value [a] with one of value [b]: the average
    [(a + b) / 2], renormalised.
    @raise Invalid_argument if the two values live in different fluid
    universes. *)

val n_fluids : t -> int
(** Number of fluids in the universe (including zero-concentration ones). *)

val scale : t -> int
(** [scale v] is the canonical denominator exponent [k] (CFs are
    [num / 2^k]). *)

val numerators : t -> int array
(** [numerators v] is a fresh copy of the canonical numerator vector; it
    sums to [2^(scale v)]. *)

val cf : t -> Fluid.t -> int * int
(** [cf v f] is the concentration factor of [f] in [v] as a pair
    [(numerator, 2^k)]. *)

val is_pure : t -> Fluid.t option
(** [is_pure v] is [Some f] iff [v] is 100% fluid [f]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val pp : Format.formatter -> t -> unit
(** Prints e.g. [<2,1,1,1,1,1,9>/16]. *)

val to_string : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
