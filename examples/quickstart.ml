(* Quickstart: prepare a stream of droplets of a three-fluid mixture.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* A target mixture of three fluids in ratio 3:4:9 (ratio-sum 16, so the
     accuracy level d is 4: every CF is exact to within 1/16). *)
  let ratio = Dmf.Ratio.of_string "3:4:9" in

  (* Ask the engine for 12 droplets of the mixture, using the MM base
     mixing tree and the storage-reduced scheduler, with the default
     number of on-chip mixers. *)
  let result =
    Mdst.Engine.prepare
      {
        Mdst.Engine.ratio;
        demand = 12;
        algorithm = Mixtree.Algorithm.MM;
        scheduler = Mdst.Scheduler.srs;
        mixers = None;
      }
  in

  (* The plan is the mixing forest; the metrics summarise its cost. *)
  Format.printf "%a@.@." Mdst.Plan.pp_summary result.Mdst.Engine.plan;
  Format.printf "%a@.@." Mdst.Metrics.pp result.Mdst.Engine.metrics;

  (* The Gantt chart shows which mixer runs which (1:1) mix-split when,
     how many droplets sit in storage, and when targets are emitted. *)
  print_string
    (Mdst.Gantt.render ~plan:result.Mdst.Engine.plan result.Mdst.Engine.schedule);

  (* Compare with the repeated baseline: 6 independent passes. *)
  let baseline =
    Mdst.Engine.baseline_metrics
      {
        Mdst.Engine.ratio;
        demand = 12;
        algorithm = Mixtree.Algorithm.MM;
        scheduler = Mdst.Scheduler.srs;
        mixers = None;
      }
  in
  Format.printf "@.baseline %a@." Mdst.Metrics.pp baseline;
  Format.printf "streaming saves %.0f%% time and %.0f%% reactant@."
    (Mdst.Metrics.percent_improvement ~baseline:baseline.Mdst.Metrics.tc
       result.Mdst.Engine.metrics.Mdst.Metrics.tc)
    (Mdst.Metrics.percent_improvement
       ~baseline:baseline.Mdst.Metrics.input_total
       result.Mdst.Engine.metrics.Mdst.Metrics.input_total)
