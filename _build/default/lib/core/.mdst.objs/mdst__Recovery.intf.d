lib/core/recovery.mli: Dmf Mixtree Plan Schedule
