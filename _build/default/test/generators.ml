(* Shared QCheck generators and helpers for the test suite. *)

open QCheck2

(* A random composition of 2^d into n parts, each >= 1. *)
let composition_gen ~n ~d =
  let total = Dmf.Binary.pow2 d in
  let open Gen in
  (* Draw n-1 distinct cut points in 1..total-1. *)
  let rec cuts k acc =
    if k = 0 then return acc
    else
      int_range 1 (total - 1) >>= fun c ->
      if List.mem c acc then cuts k acc else cuts (k - 1) (c :: acc)
  in
  cuts (n - 1) [] >|= fun cuts ->
  let sorted = List.sort Int.compare (0 :: total :: cuts) in
  let rec diffs = function
    | a :: (b :: _ as rest) -> (b - a) :: diffs rest
    | [ _ ] | [] -> []
  in
  Array.of_list (diffs sorted)

let ratio_gen =
  let open Gen in
  int_range 2 6 >>= fun d ->
  int_range 2 (min 6 (Dmf.Binary.pow2 d)) >>= fun n ->
  composition_gen ~n ~d >|= Dmf.Ratio.make

let ratio_print r = Dmf.Ratio.to_string r

let algorithm_gen =
  QCheck2.Gen.oneofl Mixtree.Algorithm.all

let demand_gen = QCheck2.Gen.int_range 1 40

let pcr16 = Dmf.Ratio.of_string "2:1:1:1:1:1:9"

(* A deterministic slice of the L=32 synthetic corpus for aggregate
   checks: every 97th ratio keeps runtimes low but spans all N. *)
let corpus_slice = lazy (Bioproto.Synth.sample ~every:97 (Bioproto.Synth.corpus ~sum:32 ()))

let qtest ?(count = 200) name gen print prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name ~print gen prop)
