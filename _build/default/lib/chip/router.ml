let bfs ~allowed ~start ~goal =
  if not (allowed start && allowed goal) then None
  else begin
    let key (p : Geometry.point) = (p.Geometry.x, p.Geometry.y) in
    let parent = Hashtbl.create 64 in
    let queue = Queue.create () in
    Hashtbl.add parent (key start) None;
    Queue.push start queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let p = Queue.pop queue in
      if p = goal then found := true
      else
        List.iter
          (fun next ->
            if allowed next && not (Hashtbl.mem parent (key next)) then begin
              Hashtbl.add parent (key next) (Some p);
              Queue.push next queue
            end)
          (Geometry.neighbours4 p)
    done;
    if not !found then None
    else begin
      let rec backtrack p acc =
        match Hashtbl.find parent (key p) with
        | None -> p :: acc
        | Some prev -> backtrack prev (p :: acc)
      in
      Some (backtrack goal [])
    end
  end

let route ?(blocked = fun _ -> false) layout ~src ~dst =
  let allowed p =
    Layout.in_bounds layout p
    && (not (blocked p))
    &&
    match Layout.module_at layout p with
    | None -> true
    | Some m ->
      m.Chip_module.id = src.Chip_module.id
      || m.Chip_module.id = dst.Chip_module.id
  in
  bfs ~allowed ~start:(Chip_module.anchor src) ~goal:(Chip_module.anchor dst)

let route_cells ?(blocked = fun _ -> false) layout ~allow ~src ~dst =
  let allowed p =
    Layout.in_bounds layout p
    && (not (blocked p))
    &&
    match Layout.module_at layout p with
    | None -> true
    | Some m -> List.mem m.Chip_module.id allow
  in
  bfs ~allowed ~start:src ~goal:dst

let route_ids ?blocked layout ~src ~dst =
  route ?blocked layout ~src:(Layout.find_exn layout src)
    ~dst:(Layout.find_exn layout dst)

let path_cost = function
  | [] -> 0
  | path -> List.length path - 1

let distance layout ~src ~dst =
  Option.map path_cost (route_ids layout ~src ~dst)
