type t = {
  mixers : int;
  cycles : int array;
  mixer_of : int array;
  tc : int;
}

let mixers s = s.mixers

let cycle s id =
  if id < 0 || id >= Array.length s.cycles then
    invalid_arg "Schedule.cycle: id out of range";
  s.cycles.(id)

let mixer s id =
  if id < 0 || id >= Array.length s.mixer_of then
    invalid_arg "Schedule.mixer: id out of range";
  s.mixer_of.(id)

let completion_time s = s.tc

let at_cycle s t =
  let ids = ref [] in
  Array.iteri (fun id c -> if c = t then ids := id :: !ids) s.cycles;
  List.sort (fun a b -> Int.compare s.mixer_of.(a) s.mixer_of.(b)) !ids

let validate ~plan s =
  let ( let* ) r f = Result.bind r f in
  let check cond fmt =
    Format.kasprintf (fun s -> if cond then Ok () else Error s) fmt
  in
  let rec each f = function
    | [] -> Ok ()
    | x :: rest ->
      let* () = f x in
      each f rest
  in
  let n = Plan.n_nodes plan in
  let* () =
    check
      (Array.length s.cycles = n && Array.length s.mixer_of = n)
      "schedule covers %d nodes, plan has %d" (Array.length s.cycles) n
  in
  let* () = check (s.mixers >= 1) "no mixers" in
  let slots = Hashtbl.create 64 in
  each
    (fun node ->
      let id = node.Plan.id in
      let t = s.cycles.(id) and m = s.mixer_of.(id) in
      let* () = check (t >= 1) "node %d unscheduled" id in
      let* () =
        check (m >= 1 && m <= s.mixers) "node %d on bad mixer %d" id m
      in
      let* () =
        check
          (not (Hashtbl.mem slots (t, m)))
          "mixer %d double-booked at cycle %d" m t
      in
      Hashtbl.add slots (t, m) id;
      each
        (fun producer ->
          check
            (s.cycles.(producer) < t)
            "node %d at cycle %d consumes droplet produced at cycle %d" id t
            s.cycles.(producer))
        (Plan.predecessors node))
    (Plan.nodes plan)

let create ~plan ~mixers ~cycles ~mixer_of =
  let tc = Array.fold_left max 0 cycles in
  let s = { mixers; cycles; mixer_of; tc } in
  match validate ~plan s with
  | Ok () -> s
  | Error msg -> invalid_arg ("Schedule.create: " ^ msg)

let emission_order ~plan s =
  Plan.roots plan
  |> List.map (fun r -> (s.cycles.(r), r))
  |> List.sort compare
