lib/mixtree/rsm.ml: Array Dmf Entry Int Tree
