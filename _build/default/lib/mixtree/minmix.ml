let rec build_entries entries k =
  match entries with
  | [] -> invalid_arg "Minmix: empty entry multiset"
  | [ { Entry.fluid; weight } ] ->
    assert (weight = Dmf.Binary.pow2 k);
    Tree.Leaf fluid
  | _ :: _ :: _ ->
    let half = Dmf.Binary.pow2 (k - 1) in
    let left, right = Entry.partition ~half entries in
    Tree.Mix (build_entries left (k - 1), build_entries right (k - 1))

let build r = build_entries (Entry.of_ratio r) (Dmf.Ratio.accuracy r)
