type stats = { mixes : int; inputs : int array; waste : int }

type recipe = {
  depth : int;  (* depth of the chosen subtree; the acyclicity measure *)
  children : (Dmf.Mixture.t * Dmf.Mixture.t) option;
      (* [None] for a pure input droplet. *)
  fluid : Dmf.Fluid.t option;
}

(* Record one construction recipe per distinct droplet value, keeping the
   shallowest subtree realising it.  Droplets of equal value are
   interchangeable, so any recipe is valid; choosing the minimum depth
   makes the recipe graph acyclic: an edge always points to a value whose
   chosen depth is strictly smaller. *)
let collect_recipes ~n tree =
  let recipes = ref Dmf.Mixture.Map.empty in
  let rec walk t =
    let v = Tree.value ~n t in
    let depth = Tree.depth t in
    let candidate =
      match t with
      | Tree.Leaf f -> { depth; children = None; fluid = Some f }
      | Tree.Mix (a, b) ->
        { depth; children = Some (Tree.value ~n a, Tree.value ~n b); fluid = None }
    in
    let keep =
      match Dmf.Mixture.Map.find_opt v !recipes with
      | None -> true
      | Some existing -> depth < existing.depth
    in
    if keep then recipes := Dmf.Mixture.Map.add v candidate !recipes;
    (match t with
    | Tree.Leaf _ -> ()
    | Tree.Mix (a, b) ->
      ignore (walk a);
      ignore (walk b));
    v
  in
  let root = walk tree in
  (root, !recipes)

let demand_stats ~n ~demand tree =
  if demand < 1 then invalid_arg "Sharing.demand_stats: demand must be >= 1";
  let root, recipes = collect_recipes ~n tree in
  (* Edges of the recipe graph strictly decrease the chosen depth, so
     processing values by decreasing depth propagates every use of a value
     before the value itself is expanded. *)
  let order =
    Dmf.Mixture.Map.bindings recipes
    |> List.sort (fun (va, ra) (vb, rb) ->
           match Int.compare rb.depth ra.depth with
           | 0 -> Dmf.Mixture.compare va vb
           | c -> c)
  in
  let uses = Hashtbl.create 64 in
  let add_use v k =
    let current = Option.value ~default:0 (Hashtbl.find_opt uses v) in
    Hashtbl.replace uses v (current + k)
  in
  add_use root demand;
  let mixes = ref 0 in
  let inputs = Array.make n 0 in
  let waste = ref 0 in
  List.iter
    (fun (v, recipe) ->
      let needed = Option.value ~default:0 (Hashtbl.find_opt uses v) in
      if needed > 0 then
        match recipe with
        | { children = None; fluid = Some f; depth = _ } ->
          inputs.(Dmf.Fluid.index f) <- inputs.(Dmf.Fluid.index f) + needed
        | { children = Some (a, b); fluid = _; depth = _ } ->
          let instances = Dmf.Binary.ceil_div needed 2 in
          mixes := !mixes + instances;
          waste := !waste + ((2 * instances) - needed);
          add_use a instances;
          add_use b instances
        | { children = None; fluid = None; depth = _ } -> assert false)
    order;
  { mixes = !mixes; inputs; waste = !waste }

let pass_stats ~n tree = demand_stats ~n ~demand:2 tree
