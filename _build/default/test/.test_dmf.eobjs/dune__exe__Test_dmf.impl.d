test/test_dmf.ml: Alcotest Array Bioproto Dmf Generators List
