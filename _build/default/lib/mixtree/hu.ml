type slot = { cycle : int; mixer : int }

type task = {
  id : int;  (* BFS index, root = 0 *)
  hu_level : int;  (* distance from root + 1; deeper = higher priority *)
  mutable pending_children : int;  (* unscheduled internal children *)
  parent : int option;
}

(* Flatten the internal nodes of the tree into tasks, breadth-first. *)
let tasks_of_tree t =
  let tasks = ref [] in
  let counter = ref 0 in
  let queue = Queue.create () in
  (match t with
  | Tree.Leaf _ -> ()
  | Tree.Mix _ -> Queue.add (t, 1, None) queue);
  while not (Queue.is_empty queue) do
    match Queue.pop queue with
    | Tree.Leaf _, _, _ -> assert false
    | Tree.Mix (a, b), hu_level, parent ->
      let id = !counter in
      incr counter;
      let internal_children =
        List.length
          (List.filter
             (function Tree.Mix _ -> true | Tree.Leaf _ -> false)
             [ a; b ])
      in
      tasks := { id; hu_level; pending_children = internal_children; parent } :: !tasks;
      List.iter
        (function
          | Tree.Mix _ as child -> Queue.add (child, hu_level + 1, Some id) queue
          | Tree.Leaf _ -> ())
        [ a; b ]
  done;
  let arr = Array.of_list (List.rev !tasks) in
  Array.iteri (fun i task -> assert (task.id = i)) arr;
  arr

let run_hu tasks ~mixers =
  if mixers < 1 then invalid_arg "Hu: at least one mixer is required";
  let n = Array.length tasks in
  let slots = Array.make n { cycle = 0; mixer = 0 } in
  let scheduled = Array.make n false in
  let remaining = ref n in
  let cycle = ref 0 in
  while !remaining > 0 do
    incr cycle;
    let ready =
      Array.to_list tasks
      |> List.filter (fun task ->
             (not scheduled.(task.id)) && task.pending_children = 0)
      (* Hu's rule: highest level (deepest task) first. *)
      |> List.sort (fun a b ->
             match Int.compare b.hu_level a.hu_level with
             | 0 -> Int.compare a.id b.id
             | c -> c)
    in
    List.iteri
      (fun i task ->
        if i < mixers then begin
          slots.(task.id) <- { cycle = !cycle; mixer = i + 1 };
          scheduled.(task.id) <- true;
          decr remaining;
          match task.parent with
          | Some p -> tasks.(p).pending_children <- tasks.(p).pending_children - 1
          | None -> ()
        end)
      ready
  done;
  (slots, !cycle)

let schedule t ~mixers =
  let slots, _ = run_hu (tasks_of_tree t) ~mixers in
  Array.to_list slots

let completion_time t ~mixers =
  if mixers < 1 then invalid_arg "Hu: at least one mixer is required";
  match t with
  | Tree.Leaf _ -> 0
  | Tree.Mix _ ->
    let _, tc = run_hu (tasks_of_tree t) ~mixers in
    tc

let min_mixers_for_fastest t =
  match t with
  | Tree.Leaf _ -> 1
  | Tree.Mix _ ->
    let critical_path = Tree.depth t in
    let upper = max 1 (Tree.internal_count t) in
    let rec search m =
      if m >= upper || completion_time t ~mixers:m = critical_path then m
      else search (m + 1)
    in
    search 1
