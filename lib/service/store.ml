type t = {
  find : Request.spec -> Prep.prepared option;
  add : Request.spec -> Prep.prepared -> unit;
  stats : unit -> Jsonl.t;
}
