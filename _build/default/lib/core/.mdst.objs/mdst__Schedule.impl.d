lib/core/schedule.ml: Array Format Hashtbl Int List Plan Result
