(* Tests for demand profiles, the demand-driven assay planner and
   broadcast pin assignment. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let pcr = Generators.pcr16

(* ------------------------------------------------------------------ *)
(* Demand profiles                                                     *)

let test_request_validation () =
  check bool "zero count" true
    (try ignore (Assay.Demand.request ~deadline:5 ~count:0); false
     with Invalid_argument _ -> true);
  check bool "negative deadline" true
    (try ignore (Assay.Demand.request ~deadline:(-1) ~count:1); false
     with Invalid_argument _ -> true)

let test_periodic () =
  let requests = Assay.Demand.periodic ~start:10 ~interval:5 ~count:2 ~batches:3 in
  check int "three batches" 3 (List.length requests);
  check int "total" 6 (Assay.Demand.total requests);
  check (Alcotest.list int) "deadlines expand"
    [ 10; 10; 15; 15; 20; 20 ]
    (Assay.Demand.droplet_deadlines requests)

let test_normalize_merges () =
  let requests =
    [ Assay.Demand.request ~deadline:9 ~count:1;
      Assay.Demand.request ~deadline:3 ~count:2;
      Assay.Demand.request ~deadline:9 ~count:3 ]
  in
  match Assay.Demand.normalize requests with
  | [ a; b ] ->
    check int "first deadline" 3 a.Assay.Demand.deadline;
    check int "merged count" 4 b.Assay.Demand.count
  | _ -> Alcotest.fail "expected two merged requests"

let test_normalize_empty () =
  check bool "empty rejected" true
    (try ignore (Assay.Demand.normalize []); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Planner                                                             *)

let plan ?(mixers = 3) ?(storage_limit = 5) requests =
  Assay.Planner.plan ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~mixers
    ~storage_limit ~scheduler:Mdst.Scheduler.srs ~requests

let test_loose_deadlines_feasible_and_jit () =
  let requests = Assay.Demand.periodic ~start:20 ~interval:15 ~count:4 ~batches:8 in
  let p = plan requests in
  check bool "feasible" true (Assay.Planner.feasible p);
  check int "no buffering needed" 0 p.Assay.Planner.total_earliness;
  check int "all droplets delivered" 32 (List.length p.Assay.Planner.deliveries);
  (* Just-in-time: emissions equal deadlines exactly. *)
  List.iter
    (fun d ->
      check int "emission = deadline" d.Assay.Planner.deadline
        d.Assay.Planner.emission)
    p.Assay.Planner.deliveries

let test_tight_deadlines_report_lateness () =
  let requests = Assay.Demand.periodic ~start:1 ~interval:1 ~count:4 ~batches:8 in
  let p = plan requests in
  check bool "infeasible profile detected" false (Assay.Planner.feasible p);
  check bool "lateness positive" true (p.Assay.Planner.max_lateness > 0)

let test_deliveries_sorted_and_consistent () =
  let requests =
    [ Assay.Demand.request ~deadline:30 ~count:3;
      Assay.Demand.request ~deadline:10 ~count:2;
      Assay.Demand.request ~deadline:60 ~count:5 ]
  in
  let p = plan requests in
  check int "ten deliveries" 10 (List.length p.Assay.Planner.deliveries);
  let deadlines = List.map (fun d -> d.Assay.Planner.deadline) p.Assay.Planner.deliveries in
  check bool "by deadline" true (List.sort compare deadlines = deadlines);
  List.iter
    (fun d ->
      check int "lateness consistent"
        (max 0 (d.Assay.Planner.emission - d.Assay.Planner.deadline))
        d.Assay.Planner.lateness;
      check int "earliness consistent"
        (max 0 (d.Assay.Planner.deadline - d.Assay.Planner.emission))
        d.Assay.Planner.earliness)
    p.Assay.Planner.deliveries

let test_passes_do_not_overlap () =
  let requests = Assay.Demand.periodic ~start:15 ~interval:10 ~count:2 ~batches:10 in
  let p = plan ~storage_limit:3 requests in
  let rec check_order = function
    | (s1, tc1) :: ((s2, _) :: _ as rest) ->
      check bool "sequential passes" true (s1 + tc1 <= s2);
      check_order rest
    | [ _ ] | [] -> ()
  in
  check_order
    (List.map2
       (fun start (pass : Mdst.Streaming.pass) -> (start, pass.Mdst.Streaming.tc))
       p.Assay.Planner.pass_starts p.Assay.Planner.streaming.Mdst.Streaming.passes)

let test_surplus_on_odd_demand () =
  let requests = [ Assay.Demand.request ~deadline:50 ~count:5 ] in
  let p = plan requests in
  check int "five deliveries" 5 (List.length p.Assay.Planner.deliveries);
  check int "one surplus droplet" 1 p.Assay.Planner.surplus

let test_fixed_pass_size () =
  let r =
    Mdst.Streaming.run_fixed ~pass_size:4 ~algorithm:Mixtree.Algorithm.MM
      ~ratio:pcr ~demand:16 ~mixers:3 ~storage_limit:5
      ~scheduler:Mdst.Scheduler.srs ()
  in
  check int "four passes" 4 (Mdst.Streaming.n_passes r);
  check bool "odd size rejected" true
    (try
       ignore
         (Mdst.Streaming.run_fixed ~pass_size:3 ~algorithm:Mixtree.Algorithm.MM
            ~ratio:pcr ~demand:6 ~mixers:3 ~storage_limit:5
            ~scheduler:Mdst.Scheduler.srs ());
       false
     with Invalid_argument _ -> true)

let prop_planner_sound =
  Generators.qtest ~count:40 "planner delivers the full demand"
    QCheck2.Gen.(
      triple (int_range 0 30) (int_range 1 20) (int_range 1 6) >>= fun (s, i, b) ->
      int_range 1 4 >|= fun c -> (s, i, c, b))
    (fun (s, i, c, b) -> Printf.sprintf "start=%d interval=%d count=%d batches=%d" s i c b)
    (fun (start, interval, count, batches) ->
      let requests = Assay.Demand.periodic ~start ~interval ~count ~batches in
      let p = plan requests in
      List.length p.Assay.Planner.deliveries = Assay.Demand.total requests
      && p.Assay.Planner.max_lateness >= 0
      && p.Assay.Planner.surplus >= 0)

(* ------------------------------------------------------------------ *)
(* Pin assignment                                                      *)

let requirements_of ?(demand = 20) () =
  let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~demand in
  let schedule = Mdst.Srs.schedule ~plan ~mixers:3 in
  let layout = Chip.Layout.pcr_fig5 () in
  match Sim.Executor.run ~layout ~plan ~schedule with
  | Error e -> Alcotest.fail e
  | Ok (_, stats) -> (layout, stats)

let test_pin_assignment_sound () =
  let layout, stats = requirements_of () in
  let requirements = stats.Sim.Executor.addressing in
  let assignment =
    Chip.Pin_assign.assign ~width:(Chip.Layout.width layout)
      ~height:(Chip.Layout.height layout) requirements
  in
  check bool "pins assigned" true (Chip.Pin_assign.pins assignment > 0);
  check bool "broadcast saves pins" true
    (Chip.Pin_assign.pins assignment
    < Chip.Pin_assign.addressed_electrodes assignment);
  (* Soundness: two electrodes on the same pin never have a must-actuate
     step of one that is a must-ground step of the other. *)
  List.iter
    (fun r ->
      List.iter
        (fun high ->
          let high_pin = Chip.Pin_assign.pin_of assignment high in
          List.iter
            (fun low ->
              if Chip.Layout.in_bounds layout low then begin
                let low_pin = Chip.Pin_assign.pin_of assignment low in
                if low_pin <> 0 then
                  check bool "no shared pin between high and low" false
                    (high_pin = low_pin)
              end)
            r.Chip.Pin_assign.must_ground)
        r.Chip.Pin_assign.must_actuate)
    requirements

let test_pin_every_actuated_cell_addressed () =
  let layout, stats = requirements_of ~demand:8 () in
  let assignment =
    Chip.Pin_assign.assign ~width:(Chip.Layout.width layout)
      ~height:(Chip.Layout.height layout) stats.Sim.Executor.addressing
  in
  Array.iteri
    (fun y row ->
      Array.iteri
        (fun x count ->
          if count > 0 then
            check bool
              (Printf.sprintf "cell (%d,%d) addressed" x y)
              true
              (Chip.Pin_assign.pin_of assignment { Chip.Geometry.x; y } > 0))
        row)
    stats.Sim.Executor.heatmap

let test_pin_empty_requirements () =
  let assignment = Chip.Pin_assign.assign ~width:10 ~height:10 [] in
  check int "no pins" 0 (Chip.Pin_assign.pins assignment);
  check (Alcotest.float 1e-9) "no saving" 0. (Chip.Pin_assign.saving assignment)

let test_pin_conflicting_cells_separate () =
  let p x y = { Chip.Geometry.x; y } in
  let requirements =
    [
      { Chip.Pin_assign.step = 1; must_actuate = [ p 0 0 ]; must_ground = [ p 5 5 ] };
      { Chip.Pin_assign.step = 1; must_actuate = [ p 5 5 ]; must_ground = [] };
    ]
  in
  let a = Chip.Pin_assign.assign ~width:10 ~height:10 requirements in
  check bool "conflicting electrodes get distinct pins" true
    (Chip.Pin_assign.pin_of a (p 0 0) <> Chip.Pin_assign.pin_of a (p 5 5))

let test_pin_compatible_cells_share () =
  let p x y = { Chip.Geometry.x; y } in
  let requirements =
    [
      { Chip.Pin_assign.step = 1; must_actuate = [ p 0 0 ]; must_ground = [] };
      { Chip.Pin_assign.step = 2; must_actuate = [ p 9 9 ]; must_ground = [] };
    ]
  in
  let a = Chip.Pin_assign.assign ~width:10 ~height:10 requirements in
  check int "one shared pin" 1 (Chip.Pin_assign.pins a)

let () =
  Alcotest.run "assay"
    [
      ( "demand",
        [
          Alcotest.test_case "request validation" `Quick test_request_validation;
          Alcotest.test_case "periodic" `Quick test_periodic;
          Alcotest.test_case "normalize merges" `Quick test_normalize_merges;
          Alcotest.test_case "normalize empty" `Quick test_normalize_empty;
        ] );
      ( "planner",
        [
          Alcotest.test_case "loose deadlines: just-in-time" `Quick
            test_loose_deadlines_feasible_and_jit;
          Alcotest.test_case "tight deadlines: lateness" `Quick
            test_tight_deadlines_report_lateness;
          Alcotest.test_case "delivery consistency" `Quick
            test_deliveries_sorted_and_consistent;
          Alcotest.test_case "passes do not overlap" `Quick
            test_passes_do_not_overlap;
          Alcotest.test_case "surplus on odd demand" `Quick test_surplus_on_odd_demand;
          Alcotest.test_case "fixed pass size" `Quick test_fixed_pass_size;
          prop_planner_sound;
        ] );
      ( "pins",
        [
          Alcotest.test_case "assignment is sound" `Quick test_pin_assignment_sound;
          Alcotest.test_case "every actuated cell addressed" `Quick
            test_pin_every_actuated_cell_addressed;
          Alcotest.test_case "empty requirements" `Quick test_pin_empty_requirements;
          Alcotest.test_case "conflicts separate" `Quick
            test_pin_conflicting_cells_separate;
          Alcotest.test_case "compatible share" `Quick test_pin_compatible_cells_share;
        ] );
    ]
