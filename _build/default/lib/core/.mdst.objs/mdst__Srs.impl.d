lib/core/srs.ml: Array Int List Plan Pqueue Schedule
