type t = {
  total : int;
  hottest : int;
  active_electrodes : int;
  mean_per_active : float;
  heatmap : int array array;
}

let of_stats (stats : Executor.stats) =
  let total = ref 0 and hottest = ref 0 and active = ref 0 in
  Array.iter
    (fun row ->
      Array.iter
        (fun count ->
          total := !total + count;
          hottest := max !hottest count;
          if count > 0 then incr active)
        row)
    stats.Executor.heatmap;
  {
    total = !total;
    hottest = !hottest;
    active_electrodes = !active;
    mean_per_active =
      (if !active = 0 then 0. else float_of_int !total /. float_of_int !active);
    heatmap = stats.Executor.heatmap;
  }

let of_run ~layout ~plan ~schedule =
  match Executor.run ~layout ~plan ~schedule with
  | Error e -> Error e
  | Ok (_, stats) -> Ok (of_stats stats)

let render t =
  let buffer = Buffer.create 256 in
  Array.iter
    (fun row ->
      Array.iter
        (fun count ->
          Buffer.add_char buffer
            (if count = 0 then '.'
             else if count < 10 then Char.chr (Char.code '0' + count)
             else '*'))
        row;
      Buffer.add_char buffer '\n')
    t.heatmap;
  Buffer.add_string buffer
    (Printf.sprintf
       "total=%d actuations, hottest electrode=%d, active electrodes=%d, \
        mean per active=%.1f\n"
       t.total t.hottest t.active_electrodes t.mean_per_active);
  Buffer.contents buffer
