(* Tests for mixing-forest construction and the plan representation. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let pcr = Generators.pcr16

let mm_forest demand =
  Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~demand

(* ------------------------------------------------------------------ *)
(* Paper figures                                                       *)

let test_fig1_demand16 () =
  let p = mm_forest 16 in
  check int "|F| (paper: 8)" 8 (Mdst.Plan.trees p);
  check int "Tms (paper: 19)" 19 (Mdst.Plan.tms p);
  check int "W (paper: 0)" 0 (Mdst.Plan.waste p);
  check int "I (paper: 16)" 16 (Mdst.Plan.input_total p);
  check (Alcotest.array int) "I[] equals the ratio" [| 2; 1; 1; 1; 1; 1; 9 |]
    (Mdst.Plan.input_vector p)

let test_fig2_demand20 () =
  let p = mm_forest 20 in
  check int "|F| (paper: 10)" 10 (Mdst.Plan.trees p);
  check int "Tms (paper: 27)" 27 (Mdst.Plan.tms p);
  check int "W (paper: 5)" 5 (Mdst.Plan.waste p);
  check int "I (paper: 25)" 25 (Mdst.Plan.input_total p);
  check (Alcotest.array int) "I[] (paper: [3,2,2,2,2,2,12])"
    [| 3; 2; 2; 2; 2; 2; 12 |] (Mdst.Plan.input_vector p)

let test_demand2_is_base_tree () =
  let p = mm_forest 2 in
  check int "one tree" 1 (Mdst.Plan.trees p);
  check int "Tms = internal nodes" 7 (Mdst.Plan.tms p);
  check int "waste = Tms - 1" 6 (Mdst.Plan.waste p)

let test_odd_demand_rounds_up () =
  let p = mm_forest 5 in
  check int "three trees" 3 (Mdst.Plan.trees p);
  check int "six targets" 6 (Mdst.Plan.targets p);
  check int "demand preserved" 5 (Mdst.Plan.demand p)

let test_structure () =
  let p = mm_forest 20 in
  (* Property (a) of Section 4.1: every component-tree root at level d. *)
  List.iter
    (fun r -> check int "root level" 4 (Mdst.Plan.node p r).Mdst.Plan.level)
    (Mdst.Plan.roots p);
  (* Roots carry bfs index 1 in their own tree. *)
  List.iter
    (fun r -> check int "root bfs" 1 (Mdst.Plan.node p r).Mdst.Plan.bfs)
    (Mdst.Plan.roots p);
  check bool "plan validates" true (Result.is_ok (Mdst.Plan.validate p))

let test_rejects_zero_demand () =
  check bool "demand 0 rejected" true
    (try ignore (mm_forest 0); false with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Repeated baselines                                                  *)

let test_repeated_no_reuse () =
  let p = Mdst.Forest.repeated ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~demand:20 in
  check int "ten trees" 10 (Mdst.Plan.trees p);
  check int "Tms scales" 70 (Mdst.Plan.tms p);
  check int "waste scales" 60 (Mdst.Plan.waste p);
  check int "inputs scale" 80 (Mdst.Plan.input_total p)

let test_repeated_mtcs_shares_within_pass () =
  let ratio = Dmf.Ratio.of_string "3:3:2" in
  let repeated_mm =
    Mdst.Forest.repeated ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:4
  in
  let repeated_mtcs =
    Mdst.Forest.repeated ~algorithm:Mixtree.Algorithm.MTCS ~ratio ~demand:4
  in
  check bool "MTCS pass cheaper than MM pass" true
    (Mdst.Plan.tms repeated_mtcs <= Mdst.Plan.tms repeated_mm);
  check bool "both valid" true
    (Result.is_ok (Mdst.Plan.validate repeated_mm)
    && Result.is_ok (Mdst.Plan.validate repeated_mtcs))

(* ------------------------------------------------------------------ *)
(* Cross-checks against the demand-driven sharing analysis             *)

let test_forest_matches_sharing_analysis () =
  (* The greedy pool-based forest must achieve the analytical optimum of
     the demand propagation for the PCR tree at several demands. *)
  let tree = Mixtree.Minmix.build pcr in
  List.iter
    (fun demand ->
      let p = mm_forest demand in
      let s = Mixtree.Sharing.demand_stats ~n:7 ~demand:(2 * ((demand + 1) / 2)) tree in
      check int
        (Printf.sprintf "Tms at D=%d" demand)
        s.Mixtree.Sharing.mixes (Mdst.Plan.tms p))
    [ 2; 4; 8; 16; 20; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let forest_case_gen =
  QCheck2.Gen.(triple Generators.ratio_gen Generators.demand_gen Generators.algorithm_gen)

let forest_case_print (r, demand, a) =
  Printf.sprintf "%s D=%d %s" (Dmf.Ratio.to_string r) demand
    (Mixtree.Algorithm.name a)

let prop_forest_valid =
  Generators.qtest ~count:200 "forests validate structurally" forest_case_gen
    forest_case_print (fun (ratio, demand, algorithm) ->
      let p = Mdst.Forest.build ~algorithm ~ratio ~demand in
      Result.is_ok (Mdst.Plan.validate p))

let prop_conservation =
  Generators.qtest ~count:200 "droplet conservation I = targets + W"
    forest_case_gen forest_case_print (fun (ratio, demand, algorithm) ->
      let p = Mdst.Forest.build ~algorithm ~ratio ~demand in
      Mdst.Plan.input_total p = Mdst.Plan.targets p + Mdst.Plan.waste p)

let prop_full_demand_no_waste =
  Generators.qtest ~count:150 "D = 2^d leaves no waste (MM forests)"
    Generators.ratio_gen Generators.ratio_print (fun ratio ->
      let demand = Dmf.Ratio.sum ratio in
      let p = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand in
      Mdst.Plan.waste p = 0
      && Mdst.Plan.input_vector p = Dmf.Ratio.parts ratio)

let prop_forest_beats_repeated =
  Generators.qtest ~count:150 "streaming never uses more input than repeated"
    forest_case_gen forest_case_print (fun (ratio, demand, algorithm) ->
      let forest = Mdst.Forest.build ~algorithm ~ratio ~demand in
      let repeated = Mdst.Forest.repeated ~algorithm ~ratio ~demand in
      Mdst.Plan.input_total forest <= Mdst.Plan.input_total repeated
      && Mdst.Plan.tms forest <= Mdst.Plan.tms repeated)

let prop_tree_count =
  Generators.qtest ~count:150 "|F| = ceil(D / 2)" forest_case_gen
    forest_case_print (fun (ratio, demand, algorithm) ->
      let p = Mdst.Forest.build ~algorithm ~ratio ~demand in
      Mdst.Plan.trees p = (demand + 1) / 2)

let () =
  Alcotest.run "forest"
    [
      ( "paper",
        [
          Alcotest.test_case "Figure 1 (D=16)" `Quick test_fig1_demand16;
          Alcotest.test_case "Figure 2 (D=20)" `Quick test_fig2_demand20;
          Alcotest.test_case "D=2 is the base tree" `Quick test_demand2_is_base_tree;
          Alcotest.test_case "odd demand rounds up" `Quick test_odd_demand_rounds_up;
          Alcotest.test_case "forest structure" `Quick test_structure;
          Alcotest.test_case "zero demand rejected" `Quick test_rejects_zero_demand;
        ] );
      ( "repeated",
        [
          Alcotest.test_case "no reuse across passes" `Quick test_repeated_no_reuse;
          Alcotest.test_case "MTCS shares within a pass" `Quick
            test_repeated_mtcs_shares_within_pass;
        ] );
      ( "cross-check",
        [
          Alcotest.test_case "greedy forest matches demand analysis" `Quick
            test_forest_matches_sharing_analysis;
        ] );
      ( "properties",
        [
          prop_forest_valid;
          prop_conservation;
          prop_full_demand_no_waste;
          prop_forest_beats_repeated;
          prop_tree_count;
        ] );
    ]
