(** The append-only NDJSON journal.

    A WAL directory holds segment files named [wal-<seq12>.ndjson],
    where [<seq12>] is the zero-padded sequence number of the segment's
    first record; records carry strictly increasing sequence numbers
    across segments.  {!Manager} opens a fresh segment on every boot
    and rotates to a new one at each snapshot, so {!Compact} can drop
    whole files that a snapshot has made redundant.

    Durability is tunable with {!fsync_policy}: [every_n = 1] fsyncs
    after every record (strict — a response the client saw is always
    recoverable), larger batches trade a bounded window of lost tail
    records for throughput (measured by the [wal] bench experiment).
    [every_ms] adds a time bound so a slow trickle of requests does not
    postpone the sync indefinitely; either trigger alone may be
    disabled with a non-positive value.

    Not thread-safe; {!Manager} serializes access. *)

type fsync_policy = { every_n : int; every_ms : float }

val strict : fsync_policy
(** [{ every_n = 1; every_ms = 0. }] — sync every record. *)

type t

val open_segment : dir:string -> start_seq:int -> fsync:fsync_policy -> t
(** Create (or append to) the segment whose first record will be
    [start_seq], creating [dir] as needed.
    @raise Unix.Unix_error if the directory or file cannot be made. *)

val append : t -> Record.kind -> int
(** Journal one record; returns the sequence number it was assigned.
    Syncs afterwards if the fsync policy says so. *)

val sync : t -> unit
(** Force an fsync of any unsynced appends now. *)

val rotate : t -> unit
(** Sync and close the current segment, then open a fresh one starting
    at the next sequence number. *)

val close : t -> unit
(** Sync and close.  The value must not be used afterwards. *)

val next_seq : t -> int
(** Sequence number the next {!append} will be assigned. *)

val appends : t -> int
(** Records appended through this value (all segments). *)

val fsyncs : t -> int
(** fsync calls issued through this value. *)

(** {2 Directory layout} *)

val segment_name : int -> string
val segments : dir:string -> (int * string) list
(** [(start_seq, absolute path)] of every segment file in [dir], in
    ascending [start_seq] order; empty for a missing directory. *)

val ensure_dir : string -> unit
(** [mkdir -p]. *)
