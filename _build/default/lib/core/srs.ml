(* Qint: nodes with an internal child — higher level first (stalling costs
   storage; finishing high nodes ends the forest sooner). *)
let int_priority a b =
  match Int.compare b.Plan.level a.Plan.level with
  | 0 -> (
    match Int.compare a.Plan.tree b.Plan.tree with
    | 0 -> Int.compare a.Plan.bfs b.Plan.bfs
    | c -> c)
  | c -> c

(* Qleaf: both children are reservoir inputs — lower level first (a
   high-level Type-C node is useless until its sibling is ready). *)
let leaf_priority a b =
  match Int.compare a.Plan.level b.Plan.level with
  | 0 -> (
    match Int.compare a.Plan.tree b.Plan.tree with
    | 0 -> Int.compare a.Plan.bfs b.Plan.bfs
    | c -> c)
  | c -> c

let schedule ~plan ~mixers =
  if mixers < 1 then invalid_arg "Srs.schedule: at least one mixer";
  let n = Plan.n_nodes plan in
  let cycles = Array.make n 0 in
  let mixer_of = Array.make n 0 in
  let pending = Array.make n 0 in
  List.iter
    (fun node ->
      pending.(node.Plan.id) <- List.length (Plan.predecessors node))
    (Plan.nodes plan);
  let queued = Array.make n false in
  let qint = ref (Pqueue.empty ~compare:int_priority) in
  let qleaf = ref (Pqueue.empty ~compare:leaf_priority) in
  let remaining = ref n in
  let admit () =
    List.iter
      (fun node ->
        if (not queued.(node.Plan.id)) && pending.(node.Plan.id) = 0 then begin
          queued.(node.Plan.id) <- true;
          match Plan.child_kind plan node with
          | `Both_leaves -> qleaf := Pqueue.insert node !qleaf
          | `Both_internal | `One_internal -> qint := Pqueue.insert node !qint
        end)
      (Plan.nodes plan)
  in
  let t = ref 0 in
  let launch t node slot =
    cycles.(node.Plan.id) <- t;
    mixer_of.(node.Plan.id) <- slot;
    decr remaining;
    List.iter
      (fun port ->
        match Plan.consumer plan ~node:node.Plan.id ~port with
        | Some c -> pending.(c) <- pending.(c) - 1
        | None -> ())
      [ 0; 1 ]
  in
  let guard = ref (2 * (n + 2)) in
  while !remaining > 0 do
    decr guard;
    if !guard <= 0 then failwith "Srs.schedule: no progress (internal error)";
    incr t;
    admit ();
    (* Dequeue up to Mc from Qint first, then fill from Qleaf; per
       Algorithm 2 the Qleaf quota is based on |Qint| before dequeuing. *)
    let int_nodes = Pqueue.size !qint in
    let slot = ref 0 in
    let take_from q limit =
      let taken = ref 0 in
      while !taken < limit && not (Pqueue.is_empty !q) do
        match Pqueue.pop !q with
        | None -> ()
        | Some (node, rest) ->
          q := rest;
          incr taken;
          incr slot;
          launch !t node !slot
      done
    in
    take_from qint (min mixers int_nodes);
    take_from qleaf (max 0 (mixers - int_nodes))
  done;
  Schedule.create ~plan ~mixers ~cycles ~mixer_of
