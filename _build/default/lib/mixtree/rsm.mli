(** The RSM base mixing tree, after Hsieh et al. [25].

    RSM ("Reagent-Saving Mixing") biases tree construction so that the
    cheapest fluid — the carrier with the largest part, typically the
    buffer — is loaded in as few, as concentrated, portions as possible,
    keeping the expensive reagents in shallow sub-mixtures that are easy
    to share when preparing multiple targets.  The bias is realised by a
    tie-breaking rule in the exact-halving partition, so exact-target
    semantics are preserved.

    Reimplemented from the published description; see DESIGN.md §3. *)

val build : Dmf.Ratio.t -> Tree.t
(** [build r] is the RSM mixing tree for [r]. *)

val build_with_carrier : carrier:Dmf.Fluid.t -> Dmf.Ratio.t -> Tree.t
(** [build_with_carrier ~carrier r] forces the carrier fluid instead of
    picking the fluid with the largest part. *)
