test/test_engine.ml: Alcotest Array Astring Bioproto Dmf Generators Lazy List Mdst Mixtree Printf QCheck2 String
