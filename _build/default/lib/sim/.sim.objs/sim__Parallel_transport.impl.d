lib/sim/parallel_transport.ml: Chip Hashtbl List Option
