(** Consistent-hash ring over shard labels.

    The router shards the daemon fleet by {!Service.Request.coalesce_key}:
    every request that {e could} merge into the same planning job hashes
    to the same shard, so the admission queue's demand-summing (and the
    plan cache, whose key refines the coalesce key) stays exactly as
    effective as in a single daemon — the exact-coalescing argument of
    the cluster design.

    The ring places [vnodes] points per shard on a hash circle; a key
    belongs to the shard owning the first point at or clockwise of the
    key's hash.  Placement is a pure function of the label list and
    [vnodes], identical across processes and runs.  Adding or removing a
    shard only reassigns the arcs owned by that shard's points: about
    [1/N] of the key space moves, the rest stays put. *)

type t

val default_vnodes : int
(** 128 points per shard — balances shards within ~±25% on realistic
    key populations (pinned by the test-suite tolerance). *)

val create : ?vnodes:int -> string list -> t
(** [create labels] builds the ring; [labels] are the shard identities
    (the router uses ["host:port"]) and their order defines the shard
    indices {!lookup} returns.
    @raise Invalid_argument on an empty list or [vnodes < 1]. *)

val shards : t -> int
(** Number of shards. *)

val label : t -> int -> string
(** The label of shard [i] (inverse of the [create] ordering). *)

val lookup : t -> string -> int
(** Owner shard of a key, in [0 .. shards - 1].  Deterministic. *)

val hash : string -> int
(** The ring's key hash (FNV-1a + finalizer), in [0 .. max_int].
    Exposed for the balance properties in the test suite. *)
