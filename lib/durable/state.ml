type t = {
  cache_capacity : int;
  mutable cache : Service.Request.spec list;  (* most recently used first *)
  mutable outstanding : Service.Request.spec list;  (* admission order *)
  mutable evictions : int;
}

let create ~cache_capacity =
  if cache_capacity < 0 then invalid_arg "State.create: negative capacity";
  { cache_capacity; cache = []; outstanding = []; evictions = 0 }

let copy t = { t with cache_capacity = t.cache_capacity }

let restore ~cache_capacity ~cache_mru ~outstanding =
  let t = create ~cache_capacity in
  t.cache <- List.filteri (fun i _ -> i < cache_capacity) cache_mru;
  t.outstanding <- outstanding;
  t

let touch t spec =
  if t.cache_capacity > 0 then begin
    let key = Service.Request.cache_key spec in
    let rest =
      List.filter (fun s -> Service.Request.cache_key s <> key) t.cache
    in
    let cache = spec :: rest in
    (* Mirror Cache.add: evict from the LRU end while over capacity. *)
    let size = List.length cache in
    if size > t.cache_capacity then begin
      t.evictions <- t.evictions + (size - t.cache_capacity);
      t.cache <- List.filteri (fun i _ -> i < t.cache_capacity) cache
    end
    else t.cache <- cache
  end

(* Discharge [requests] outstanding entries coalesced under [key],
   oldest first.  Entries that are not found are ignored — a journal
   whose accepted records were compacted away mid-batch never arises
   from the Manager, but replay stays total anyway. *)
let discharge t key requests =
  let remaining = ref requests in
  t.outstanding <-
    List.filter
      (fun spec ->
        if !remaining > 0 && Service.Request.coalesce_key spec = key then begin
          decr remaining;
          false
        end
        else true)
      t.outstanding

let apply t = function
  | Record.Accepted spec -> t.outstanding <- t.outstanding @ [ spec ]
  | Record.Completed { spec; requests; ok } ->
    discharge t (Service.Request.coalesce_key spec) requests;
    if ok then touch t spec

let cache_specs t = t.cache
let cache_keys t = List.map Service.Request.cache_key t.cache
let outstanding t = t.outstanding
let evictions t = t.evictions

let equal a b =
  cache_keys a = cache_keys b
  && List.map
       (fun s -> (Service.Request.coalesce_key s, s.Service.Request.demand))
       a.outstanding
     = List.map
         (fun s -> (Service.Request.coalesce_key s, s.Service.Request.demand))
         b.outstanding

let pp ppf t =
  Format.fprintf ppf "@[<v>cache (MRU first):@,";
  List.iter (fun k -> Format.fprintf ppf "  %s@," k) (cache_keys t);
  Format.fprintf ppf "outstanding:@,";
  List.iter
    (fun s ->
      Format.fprintf ppf "  %s D=%d@,"
        (Service.Request.coalesce_key s)
        s.Service.Request.demand)
    t.outstanding;
  Format.fprintf ppf "@]"
