(* Qint: nodes with an internal child — higher level first (stalling costs
   storage; finishing high nodes ends the forest sooner). *)
let int_priority a b =
  match Int.compare b.Plan.level a.Plan.level with
  | 0 -> (
    match Int.compare a.Plan.tree b.Plan.tree with
    | 0 -> Int.compare a.Plan.bfs b.Plan.bfs
    | c -> c)
  | c -> c

(* Qleaf: both children are reservoir inputs — lower level first (a
   high-level Type-C node is useless until its sibling is ready). *)
let leaf_priority a b =
  match Int.compare a.Plan.level b.Plan.level with
  | 0 -> (
    match Int.compare a.Plan.tree b.Plan.tree with
    | 0 -> Int.compare a.Plan.bfs b.Plan.bfs
    | c -> c)
  | c -> c

(* The main loop lives in {!Sched_core}; SRS is only the ready-set: two
   pairing heaps and the per-cycle quota of Algorithm 2 — up to Mc nodes
   from Qint first, then Qleaf fills the rest, with the Qleaf quota
   based on |Qint| before dequeuing.  The quotas are snapshot when the
   engine asks for the cycle's first node.  Both priority orders are
   total ((tree, bfs) identifies a node), so the heaps pop the same
   unique minimum whatever the insertion order, and the schedules are
   bit-identical to the {!Naive.srs} reference at O(n log n) instead of
   O(n·Tc). *)
module Policy = struct
  let name = "SRS"

  type state = {
    mutable qint : Plan.node Pqueue.t;
    mutable qleaf : Plan.node Pqueue.t;
    mutable quota_int : int;
    mutable quota_leaf : int;
    plan : Plan.t;
    mixers : int;
  }

  let init ~plan ~mixers =
    {
      qint = Pqueue.empty ~compare:int_priority;
      qleaf = Pqueue.empty ~compare:leaf_priority;
      quota_int = 0;
      quota_leaf = 0;
      plan;
      mixers;
    }

  let release st batch =
    List.iter
      (fun node ->
        match Plan.child_kind st.plan node with
        | `Both_leaves -> st.qleaf <- Pqueue.insert node st.qleaf
        | `Both_internal | `One_internal -> st.qint <- Pqueue.insert node st.qint)
      batch

  let ready st = Pqueue.size st.qint + Pqueue.size st.qleaf

  let pick st ~fired =
    if fired = 0 then begin
      let int_nodes = Pqueue.size st.qint in
      st.quota_int <- min st.mixers int_nodes;
      st.quota_leaf <- max 0 (st.mixers - int_nodes)
    end;
    if fired < st.quota_int then
      match Pqueue.pop st.qint with
      | Some (node, rest) ->
        st.qint <- rest;
        Some node
      | None -> None
    else if fired < st.quota_int + st.quota_leaf then
      match Pqueue.pop st.qleaf with
      | Some (node, rest) ->
        st.qleaf <- rest;
        Some node
      | None -> None
    else None
end

let policy : Sched_core.policy = (module Policy)
let schedule ~plan ~mixers = Sched_core.run policy ~plan ~mixers
