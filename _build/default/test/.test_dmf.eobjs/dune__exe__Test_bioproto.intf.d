test/test_bioproto.mli:
