(* dmfstream — command-line front end of the MDST droplet-streaming engine.

   Subcommands: plan, schedule, algorithms, compare, stream, layout,
   simulate, dilute, robust, wear, multi, assay, pins, export, recover,
   protocols, client.
   Run [dmfstream --help] for details. *)

open Cmdliner

(* Malformed inputs (a ratio that does not sum to a power of two, a
   non-positive demand, an infeasible mixer count) raise
   [Invalid_argument] deep inside the engine; surface them as one-line
   errors with a nonzero exit instead of a raw exception.  The daemon
   rejects the same inputs through the same [Service.Validate]
   helpers, as a JSON error response. *)
let protect = Service.Validate.run_cli

(* ------------------------------------------------------------------ *)
(* Common arguments                                                    *)

(* Every conv below parses through [Service.Validate] — the exact
   helpers the daemon runs on the matching JSON fields. *)
let msg r = Result.map_error (fun m -> `Msg m) r

let int_conv ~what validate =
  let parse s =
    match int_of_string_opt s with
    | None -> Error (`Msg (Printf.sprintf "%s must be an integer (got %s)" what s))
    | Some v -> msg (validate v)
  in
  Arg.conv (parse, Format.pp_print_int)

let ratio_conv =
  let print ppf r = Dmf.Ratio.pp ppf r in
  Arg.conv ((fun s -> msg (Service.Validate.ratio s)), print)

let ratio_arg =
  let doc =
    "Target ratio, either colon-separated integers summing to a power of \
     two (e.g. 2:1:1:1:1:1:9) or a protocol id (pcr16, ex1..ex5)."
  in
  Arg.(
    required
    & opt (some ratio_conv) None
    & info [ "r"; "ratio" ] ~docv:"RATIO" ~doc)

let demand_arg =
  let doc = "Number of target droplets to produce." in
  Arg.(
    value
    & opt (int_conv ~what:"demand D" Service.Validate.demand) 20
    & info [ "D"; "demand" ] ~docv:"N" ~doc)

let algorithm_conv =
  Arg.conv
    ((fun s -> msg (Service.Validate.algorithm s)), Mixtree.Algorithm.pp)

let algorithm_arg =
  let doc = "Base mixing algorithm: MM, RMA, MTCS or RSM." in
  Arg.(
    value
    & opt algorithm_conv Mixtree.Algorithm.MM
    & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc)

let scheduler_conv =
  Arg.conv ((fun s -> msg (Service.Validate.scheduler s)), Mdst.Scheduler.pp)

let scheduler_arg =
  let doc =
    "Forest scheduler, looked up in the registry (run the algorithms \
     subcommand for the full list): MMS (fastest), SRS (storage-reduced), \
     OMS (critical-path baseline)."
  in
  Arg.(
    value
    & opt scheduler_conv Mdst.Scheduler.srs
    & info [ "s"; "scheduler" ] ~docv:"SCHED" ~doc)

let instrument_arg =
  Arg.(
    value & flag
    & info [ "instrument" ]
        ~doc:
          "Print the scheduler-core counters (cycles, fired nodes, \
           store/evict traffic, peak/average storage, ready-set high-water, \
           mixer occupancy) gathered through the instrumentation hooks.")

let mixers_arg =
  let doc = "On-chip mixers (default: Mlb of the MM tree)." in
  Arg.(
    value
    & opt (some (int_conv ~what:"mixer count Mc" Service.Validate.mixers)) None
    & info [ "m"; "mixers" ] ~docv:"MC" ~doc)

let storage_arg =
  let doc = "On-chip storage units available." in
  Arg.(
    value
    & opt (int_conv ~what:"storage budget q'" Service.Validate.storage) 5
    & info [ "q"; "storage" ] ~docv:"Q" ~doc)

let spec_of ratio demand algorithm scheduler mixers =
  { Mdst.Engine.ratio; demand; algorithm; scheduler; mixers }

(* ------------------------------------------------------------------ *)
(* plan                                                                *)

let plan_cmd =
  let run ratio demand algorithm show_tree =
    protect @@ fun () ->
    let tree = Mixtree.Algorithm.build algorithm ratio in
    let plan = Mdst.Forest.build ~algorithm ~ratio ~demand in
    Format.printf "%a@." Mdst.Plan.pp_summary plan;
    if show_tree then
      Format.printf "@.Base mixing tree (%a):@.%a@." Mixtree.Algorithm.pp
        algorithm
        (Mixtree.Tree.pp ~names:(Dmf.Ratio.names ratio))
        tree
  in
  let show_tree =
    Arg.(value & flag & info [ "tree" ] ~doc:"Also print the base mixing tree.")
  in
  let term = Term.(const run $ ratio_arg $ demand_arg $ algorithm_arg $ show_tree) in
  Cmd.v
    (Cmd.info "plan" ~doc:"Build a mixing forest and print its statistics")
    term

(* ------------------------------------------------------------------ *)
(* schedule                                                            *)

let schedule_cmd =
  let run ratio demand algorithm scheduler mixers gantt instrument =
    protect @@ fun () ->
    let spec = spec_of ratio demand algorithm scheduler mixers in
    let result =
      if instrument then begin
        let mc =
          match mixers with
          | Some m -> m
          | None -> Mdst.Engine.default_mixers ratio
        in
        let hooks, counters = Mdst.Instr.collector ~mixers:mc in
        let result = Mdst.Engine.prepare ~instr:hooks spec in
        Format.printf "%a@." Mdst.Instr.pp_counters (counters ());
        result
      end
      else Mdst.Engine.prepare spec
    in
    Format.printf "%a@." Mdst.Metrics.pp result.Mdst.Engine.metrics;
    if gantt then
      print_string
        (Mdst.Gantt.render ~plan:result.Mdst.Engine.plan
           result.Mdst.Engine.schedule)
  in
  let gantt =
    Arg.(value & flag & info [ "gantt" ] ~doc:"Print the Gantt chart.")
  in
  let term =
    Term.(
      const run $ ratio_arg $ demand_arg $ algorithm_arg $ scheduler_arg
      $ mixers_arg $ gantt $ instrument_arg)
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Schedule a mixing forest on Mc mixers")
    term

(* ------------------------------------------------------------------ *)
(* algorithms                                                          *)

let algorithms_cmd =
  let run () =
    protect @@ fun () ->
    print_string "Base mixing algorithms (-a):\n";
    print_string
      (Mdst.Report.table ~header:[ "name" ]
         ~rows:
           (List.map
              (fun a -> [ Mixtree.Algorithm.name a ])
              Mixtree.Algorithm.all));
    print_string "\nForest schedulers (-s), from the registry:\n";
    print_string
      (Mdst.Report.table ~header:[ "name"; "description" ]
         ~rows:
           (List.map
              (fun s -> [ Mdst.Scheduler.name s; Mdst.Scheduler.describe s ])
              (Mdst.Scheduler.all ())))
  in
  Cmd.v
    (Cmd.info "algorithms"
       ~doc:"List the base mixing algorithms and the registered schedulers")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* compare                                                             *)

let compare_cmd =
  let run ratio demand mixers =
    protect @@ fun () ->
    let results =
      Mdst.Compare.evaluate_all ?mixers ~ratio ~demand
        Mdst.Compare.table2_schemes
    in
    let rows =
      List.map
        (fun (scheme, m) ->
          [
            Mdst.Compare.scheme_name scheme;
            string_of_int m.Mdst.Metrics.tc;
            string_of_int m.Mdst.Metrics.q;
            string_of_int m.Mdst.Metrics.tms;
            string_of_int m.Mdst.Metrics.waste;
            string_of_int m.Mdst.Metrics.input_total;
            string_of_int m.Mdst.Metrics.passes;
          ])
        results
    in
    print_string
      (Mdst.Report.table
         ~header:[ "scheme"; "Tc"; "q"; "Tms"; "W"; "I"; "passes" ]
         ~rows)
  in
  let term = Term.(const run $ ratio_arg $ demand_arg $ mixers_arg) in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Compare the nine schemes of Table 2 on one target ratio")
    term

(* ------------------------------------------------------------------ *)
(* stream                                                              *)

let stream_cmd =
  let run ratio demand algorithm scheduler mixers storage instrument =
    protect @@ fun () ->
    let mixers =
      match mixers with
      | Some m -> m
      | None -> Mdst.Engine.default_mixers ratio
    in
    let instr, counters =
      if instrument then
        let hooks, read = Mdst.Instr.collector ~mixers in
        (Some hooks, Some read)
      else (None, None)
    in
    let result =
      Mdst.Streaming.run ?instr ~algorithm ~ratio ~demand ~mixers
        ~storage_limit:storage ~scheduler ()
    in
    (match counters with
    | Some read -> Format.printf "%a@." Mdst.Instr.pp_counters (read ())
    | None -> ());
    Format.printf
      "demand %d with <= %d storage units: %d pass(es) of up to %d droplets%s@."
      demand storage
      (Mdst.Streaming.n_passes result)
      result.Mdst.Streaming.per_pass_demand
      (if result.Mdst.Streaming.within_limit then ""
       else " (budget infeasible even for one pair; running at D'=2)");
    let rows =
      List.mapi
        (fun i pass ->
          [
            string_of_int (i + 1);
            string_of_int pass.Mdst.Streaming.demand;
            string_of_int pass.Mdst.Streaming.tc;
            string_of_int pass.Mdst.Streaming.q;
            string_of_int pass.Mdst.Streaming.waste;
          ])
        result.Mdst.Streaming.passes
    in
    print_string
      (Mdst.Report.table ~header:[ "pass"; "D'"; "Tc"; "q"; "W" ] ~rows);
    Format.printf "total: Tc=%d W=%d I=%d@." result.Mdst.Streaming.total_cycles
      result.Mdst.Streaming.total_waste result.Mdst.Streaming.total_inputs
  in
  let term =
    Term.(
      const run $ ratio_arg $ demand_arg $ algorithm_arg $ scheduler_arg
      $ mixers_arg $ storage_arg $ instrument_arg)
  in
  Cmd.v
    (Cmd.info "stream"
       ~doc:"Run the multi-pass streaming engine under a storage budget")
    term

(* ------------------------------------------------------------------ *)
(* layout                                                              *)

let layout_cmd =
  let run ratio mixers storage =
    protect @@ fun () ->
    let mixers =
      match mixers with
      | Some m -> m
      | None -> Mdst.Engine.default_mixers ratio
    in
    let layout =
      Chip.Layout.default ~mixers ~storage_units:storage
        ~n_fluids:(Dmf.Ratio.n_fluids ratio) ()
    in
    print_string (Chip.Layout.render layout);
    let matrix = Chip.Cost_matrix.build layout in
    let mixer_ids =
      List.map (fun m -> m.Chip.Chip_module.id) (Chip.Layout.mixers layout)
    in
    let rows =
      List.map
        (fun m -> m.Chip.Chip_module.id)
        (Chip.Layout.reservoirs layout
        @ Chip.Layout.storage_units layout
        @ Chip.Layout.wastes layout)
    in
    print_newline ();
    print_string (Chip.Cost_matrix.render ~rows ~columns:mixer_ids matrix)
  in
  let term = Term.(const run $ ratio_arg $ mixers_arg $ storage_arg) in
  Cmd.v
    (Cmd.info "layout"
       ~doc:"Show the default chip layout and its transport-cost matrix")
    term

(* ------------------------------------------------------------------ *)
(* simulate                                                            *)

let simulate_cmd =
  let run ratio demand algorithm scheduler mixers storage show_trace =
    protect @@ fun () ->
    let spec = spec_of ratio demand algorithm scheduler mixers in
    let result = Mdst.Engine.prepare spec in
    let needed =
      Mdst.Storage.units ~plan:result.Mdst.Engine.plan
        result.Mdst.Engine.schedule
    in
    let layout =
      Chip.Layout.default ~mixers:result.Mdst.Engine.mixers
        ~storage_units:(max storage needed)
        ~n_fluids:(Dmf.Ratio.n_fluids ratio) ()
    in
    match
      Sim.Executor.run ~layout ~plan:result.Mdst.Engine.plan
        ~schedule:result.Mdst.Engine.schedule
    with
    | Error e ->
      Format.eprintf "simulation failed: %s@." e;
      exit 1
    | Ok (trace, stats) ->
      if show_trace then Format.printf "%a@." Sim.Trace.pp trace;
      Format.printf
        "cycles=%d moves=%d electrodes=%d dispensed=%d emitted=%d \
         discarded=%d violations=%d@."
        stats.Sim.Executor.cycles stats.Sim.Executor.moves
        stats.Sim.Executor.electrodes stats.Sim.Executor.dispensed
        (List.length stats.Sim.Executor.emitted)
        stats.Sim.Executor.discarded stats.Sim.Executor.violations;
      (match Sim.Executor.check ~plan:result.Mdst.Engine.plan stats with
      | Ok () -> Format.printf "verification: every target droplet correct@."
      | Error e ->
        Format.eprintf "verification failed: %s@." e;
        exit 1)
  in
  let show_trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the full event trace.")
  in
  let term =
    Term.(
      const run $ ratio_arg $ demand_arg $ algorithm_arg $ scheduler_arg
      $ mixers_arg $ storage_arg $ show_trace)
  in
  Cmd.v
    (Cmd.info "simulate"
       ~doc:"Execute the schedule droplet-by-droplet on a simulated chip")
    term

(* ------------------------------------------------------------------ *)
(* dilute                                                              *)

let dilute_cmd =
  let run c d demand scheduler mixers use_twm =
    protect @@ fun () ->
    let ratio = Mixtree.Dilution.ratio ~c ~d in
    let tree =
      if use_twm then Mixtree.Dilution.twm ~c ~d
      else Mixtree.Dilution.dmrw ~c ~d
    in
    let plan = Mdst.Forest.of_tree ~ratio ~demand ~sharing:true tree in
    let mixers =
      match mixers with
      | Some m -> m
      | None -> Mdst.Engine.default_mixers ratio
    in
    let schedule = Mdst.Scheduler.schedule scheduler ~plan ~mixers in
    Format.printf "dilution target %d/%d via %s:@." c (Dmf.Binary.pow2 d)
      (if use_twm then "two-way mix" else "DMRW binary search");
    Format.printf "%a@." Mdst.Plan.pp_summary plan;
    print_string (Mdst.Gantt.render ~plan schedule)
  in
  let c_arg =
    Arg.(required & opt (some int) None & info [ "c" ] ~docv:"C"
           ~doc:"Target CF numerator (over 2^d).")
  in
  let d_arg =
    Arg.(value & opt int 4 & info [ "d" ] ~docv:"D" ~doc:"Accuracy level.")
  in
  let twm_flag =
    Arg.(value & flag & info [ "twm" ] ~doc:"Use the bit-scan tree instead of DMRW.")
  in
  let term =
    Term.(
      const run $ c_arg $ d_arg $ demand_arg $ scheduler_arg $ mixers_arg
      $ twm_flag)
  in
  Cmd.v
    (Cmd.info "dilute"
       ~doc:"Run the dilution engine (the N = 2 case, after Roy et al. [20])")
    term

(* ------------------------------------------------------------------ *)
(* robust                                                              *)

let robust_cmd =
  let run ratio demand epsilon =
    protect @@ fun () ->
    Format.printf
      "worst-case CF error under a %.1f%% split-volume imbalance:@."
      (epsilon *. 100.);
    let rows =
      List.map
        (fun algorithm ->
          let plan = Mdst.Forest.build ~algorithm ~ratio ~demand in
          let report = Mdst.Split_error.analyze ~plan ~epsilon in
          [
            Mixtree.Algorithm.name algorithm;
            Printf.sprintf "%.5f" report.Mdst.Split_error.max_cf_error;
            Printf.sprintf "%.5f" report.Mdst.Split_error.mean_cf_error;
            Printf.sprintf "%.4f" report.Mdst.Split_error.worst_volume_skew;
          ])
        Mixtree.Algorithm.all
    in
    print_string
      (Mdst.Report.table
         ~header:[ "base algo"; "max CF err"; "mean CF err"; "vol skew" ]
         ~rows);
    Format.printf "(exact preparation error floor: 1/2^d = %.5f)@."
      (1. /. float_of_int (Dmf.Ratio.sum ratio))
  in
  let epsilon_arg =
    Arg.(value & opt float 0.05 & info [ "e"; "epsilon" ] ~docv:"EPS"
           ~doc:"Per-split volume imbalance bound (e.g. 0.05).")
  in
  let term = Term.(const run $ ratio_arg $ demand_arg $ epsilon_arg) in
  Cmd.v
    (Cmd.info "robust"
       ~doc:"Bound the CF error of every target under imbalanced splits")
    term

(* ------------------------------------------------------------------ *)
(* wear                                                                *)

let wear_cmd =
  let run ratio demand scheduler mixers =
    protect @@ fun () ->
    let spec = spec_of ratio demand Mixtree.Algorithm.MM scheduler mixers in
    let result = Mdst.Engine.prepare spec in
    let needed =
      Mdst.Storage.units ~plan:result.Mdst.Engine.plan
        result.Mdst.Engine.schedule
    in
    let layout =
      Chip.Layout.default ~mixers:result.Mdst.Engine.mixers
        ~storage_units:(max 1 needed)
        ~n_fluids:(Dmf.Ratio.n_fluids ratio) ()
    in
    match
      Sim.Wear.of_run ~layout ~plan:result.Mdst.Engine.plan
        ~schedule:result.Mdst.Engine.schedule
    with
    | Error e ->
      Format.eprintf "wear analysis failed: %s@." e;
      exit 1
    | Ok wear -> print_string (Sim.Wear.render wear)
  in
  let term =
    Term.(const run $ ratio_arg $ demand_arg $ scheduler_arg $ mixers_arg)
  in
  Cmd.v
    (Cmd.info "wear"
       ~doc:"Per-electrode actuation heatmap of a simulated run")
    term

(* ------------------------------------------------------------------ *)
(* multi                                                               *)

let multi_cmd =
  let run specs algorithm scheduler mixers =
    protect @@ fun () ->
    let parse spec =
      match String.split_on_char '@' spec with
      | [ ratio; demand ] -> (
        match
          (Bioproto.Protocols.find ratio, int_of_string_opt (String.trim demand))
        with
        | Some p, Some demand -> (p.Bioproto.Protocols.ratio, demand)
        | None, Some demand -> (Dmf.Ratio.of_string ratio, demand)
        | _, None -> invalid_arg ("bad demand in " ^ spec))
      | [ ratio ] -> (Dmf.Ratio.of_string ratio, 2)
      | _ -> invalid_arg ("bad target spec " ^ spec)
    in
    let requests = List.map parse specs in
    let plan = Mdst.Forest.build_multi ~algorithm requests in
    let mixers =
      match mixers with
      | Some m -> m
      | None -> Mdst.Engine.default_mixers (fst (List.hd requests))
    in
    let schedule = Mdst.Scheduler.schedule scheduler ~plan ~mixers in
    Format.printf "%a@." Mdst.Plan.pp_summary plan;
    Format.printf "Tc=%d q=%d@."
      (Mdst.Schedule.completion_time schedule)
      (Mdst.Storage.units ~plan schedule);
    let separate =
      List.fold_left
        (fun acc (ratio, demand) ->
          acc + Mdst.Plan.input_total (Mdst.Forest.build ~algorithm ~ratio ~demand))
        0 requests
    in
    Format.printf "combined input %d vs %d prepared separately@."
      (Mdst.Plan.input_total plan) separate
  in
  let specs_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"RATIO@DEMAND"
          ~doc:"Targets, e.g. 3:3:2@8 3:3:10@8 (same number of fluids each).")
  in
  let term =
    Term.(const run $ specs_arg $ algorithm_arg $ scheduler_arg $ mixers_arg)
  in
  Cmd.v
    (Cmd.info "multi"
       ~doc:"Prepare several target mixtures in one reagent-sharing forest")
    term

(* ------------------------------------------------------------------ *)
(* assay                                                               *)

let assay_cmd =
  let run ratio scheduler mixers storage start interval count batches =
    protect @@ fun () ->
    let requests = Assay.Demand.periodic ~start ~interval ~count ~batches in
    let mixers =
      match mixers with
      | Some m -> m
      | None -> Mdst.Engine.default_mixers ratio
    in
    let p =
      Assay.Planner.plan ~algorithm:Mixtree.Algorithm.MM ~ratio ~mixers
        ~storage_limit:storage ~scheduler ~requests
    in
    Format.printf "%a@." Assay.Planner.pp p;
    Format.printf "pass starts: %s@."
      (String.concat ", " (List.map string_of_int p.Assay.Planner.pass_starts));
    if not (Assay.Planner.feasible p) then
      Format.printf
        "profile infeasible on this chip: worst delivery is %d cycle(s) late@."
        p.Assay.Planner.max_lateness
  in
  let start =
    Arg.(value & opt int 20 & info [ "start" ] ~docv:"T" ~doc:"First deadline.")
  in
  let interval =
    Arg.(value & opt int 15 & info [ "interval" ] ~docv:"T"
           ~doc:"Cycles between batches.")
  in
  let count =
    Arg.(value & opt int 4 & info [ "count" ] ~docv:"N"
           ~doc:"Droplets per batch.")
  in
  let batches =
    Arg.(value & opt int 8 & info [ "batches" ] ~docv:"N"
           ~doc:"Number of batches.")
  in
  let term =
    Term.(
      const run $ ratio_arg $ scheduler_arg $ mixers_arg $ storage_arg
      $ start $ interval $ count $ batches)
  in
  Cmd.v
    (Cmd.info "assay"
       ~doc:"Plan demand-driven production for a periodic consumer")
    term

(* ------------------------------------------------------------------ *)
(* pins                                                                *)

let pins_cmd =
  let run ratio demand scheduler mixers =
    protect @@ fun () ->
    let spec = spec_of ratio demand Mixtree.Algorithm.MM scheduler mixers in
    let result = Mdst.Engine.prepare spec in
    let needed =
      Mdst.Storage.units ~plan:result.Mdst.Engine.plan
        result.Mdst.Engine.schedule
    in
    let layout =
      Chip.Layout.default ~mixers:result.Mdst.Engine.mixers
        ~storage_units:(max 1 needed)
        ~n_fluids:(Dmf.Ratio.n_fluids ratio) ()
    in
    match
      Sim.Executor.run ~layout ~plan:result.Mdst.Engine.plan
        ~schedule:result.Mdst.Engine.schedule
    with
    | Error e ->
      Format.eprintf "simulation failed: %s@." e;
      exit 1
    | Ok (_, stats) ->
      let assignment =
        Chip.Pin_assign.assign ~width:(Chip.Layout.width layout)
          ~height:(Chip.Layout.height layout)
          stats.Sim.Executor.addressing
      in
      Format.printf
        "broadcast addressing: %d driven electrodes served by %d control \
         pins (%.1f%% fewer pins than direct addressing)@."
        (Chip.Pin_assign.addressed_electrodes assignment)
        (Chip.Pin_assign.pins assignment)
        (100. *. Chip.Pin_assign.saving assignment)
  in
  let term =
    Term.(const run $ ratio_arg $ demand_arg $ scheduler_arg $ mixers_arg)
  in
  Cmd.v
    (Cmd.info "pins"
       ~doc:"Broadcast pin assignment for a simulated run (after [10])")
    term

(* ------------------------------------------------------------------ *)
(* export                                                              *)

let export_cmd =
  let run ratio demand algorithm scheduler mixers directory =
    protect @@ fun () ->
    let spec = spec_of ratio demand algorithm scheduler mixers in
    let result = Mdst.Engine.prepare spec in
    let needed =
      Mdst.Storage.units ~plan:result.Mdst.Engine.plan
        result.Mdst.Engine.schedule
    in
    let layout =
      Chip.Layout.default ~mixers:result.Mdst.Engine.mixers
        ~storage_units:(max 1 needed)
        ~n_fluids:(Dmf.Ratio.n_fluids ratio) ()
    in
    if not (Sys.file_exists directory) then Sys.mkdir directory 0o755;
    let gantt_path = Filename.concat directory "gantt.svg" in
    Viz.Gantt_svg.write ~path:gantt_path ~plan:result.Mdst.Engine.plan
      result.Mdst.Engine.schedule;
    let layout_path = Filename.concat directory "layout.svg" in
    Viz.Chip_svg.write ~path:layout_path layout;
    (match
       Sim.Executor.run ~layout ~plan:result.Mdst.Engine.plan
         ~schedule:result.Mdst.Engine.schedule
     with
    | Ok (_, stats) ->
      let wear_path = Filename.concat directory "wear.svg" in
      Viz.Chip_svg.write ~path:wear_path ~heatmap:stats.Sim.Executor.heatmap
        layout;
      Format.printf "wrote %s, %s and %s@." gantt_path layout_path wear_path
    | Error e ->
      Format.printf "wrote %s and %s (no wear map: %s)@." gantt_path
        layout_path e)
  in
  let directory =
    Arg.(value & opt string "out" & info [ "o"; "output" ] ~docv:"DIR"
           ~doc:"Output directory for the SVG files.")
  in
  let term =
    Term.(
      const run $ ratio_arg $ demand_arg $ algorithm_arg $ scheduler_arg
      $ mixers_arg $ directory)
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:"Export the Gantt chart, chip map and wear heatmap as SVG")
    term

(* ------------------------------------------------------------------ *)
(* recover                                                             *)

let recover_cmd =
  let run ratio demand algorithm scheduler mixers failed_node =
    protect @@ fun () ->
    let result =
      Mdst.Engine.prepare (spec_of ratio demand algorithm scheduler mixers)
    in
    let r =
      Mdst.Recovery.recover ~algorithm ~plan:result.Mdst.Engine.plan
        ~schedule:result.Mdst.Engine.schedule ~failed_node
    in
    Format.printf
      "split failure at node %d (cycle %d): %d target(s) already \
       delivered, %d droplet(s) salvaged from storage, %d still needed@."
      r.Mdst.Recovery.failed_node r.Mdst.Recovery.failure_cycle
      r.Mdst.Recovery.delivered
      (Array.length r.Mdst.Recovery.salvaged)
      r.Mdst.Recovery.remaining_demand;
    match (r.Mdst.Recovery.recovery_plan, r.Mdst.Recovery.fresh_restart) with
    | None, _ -> Format.printf "demand already met: no recovery needed@."
    | Some recovery, Some fresh ->
      Format.printf "recovery forest: %a@." Mdst.Plan.pp_summary recovery;
      Format.printf
        "fresh restart would need %d input droplets; salvaging saves %d@."
        (Mdst.Plan.input_total fresh)
        (Mdst.Recovery.reagent_saving r)
    | Some _, None -> ()
  in
  let failed_node =
    Arg.(
      required
      & opt (some int) None
      & info [ "f"; "fail" ] ~docv:"NODE"
          ~doc:"Plan node whose split fails (0-based id).")
  in
  let term =
    Term.(
      const run $ ratio_arg $ demand_arg $ algorithm_arg $ scheduler_arg
      $ mixers_arg $ failed_node)
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Plan checkpoint-based recovery from a failed mix-split")
    term

(* ------------------------------------------------------------------ *)
(* protocols                                                           *)

let protocols_cmd =
  let run () =
    protect @@ fun () ->
    let rows =
      List.map
        (fun p ->
          [
            p.Bioproto.Protocols.id;
            p.Bioproto.Protocols.name;
            Dmf.Ratio.to_string p.Bioproto.Protocols.ratio;
            string_of_int (Dmf.Ratio.n_fluids p.Bioproto.Protocols.ratio);
            string_of_int (Dmf.Ratio.accuracy p.Bioproto.Protocols.ratio);
          ])
        Bioproto.Protocols.all
    in
    print_string
      (Mdst.Report.table ~header:[ "id"; "name"; "ratio"; "N"; "d" ] ~rows)
  in
  Cmd.v
    (Cmd.info "protocols" ~doc:"List the built-in bioprotocol mixtures")
    Term.(const run $ const ())

(* ------------------------------------------------------------------ *)
(* client                                                              *)

let client_cmd =
  let client_ratio =
    (* Unlike the planning subcommands, only the prepare kind needs a
       ratio — stats/ping/recover-stats must work without one. *)
    Arg.(
      value
      & opt (some ratio_conv) None
      & info [ "r"; "ratio" ] ~docv:"RATIO"
          ~doc:"Target ratio (required for --req prepare).")
  in
  let run ratio demand algorithm scheduler mixers storage host port kind =
    protect @@ fun () ->
    (* recover-stats is a stats request whose response is narrowed to
       the durability objects — the wal (recovery/journal) counters of
       a daemon running with --wal-dir, the plan_store counters when it
       also runs with --store-dir, and the replication counters (role,
       last_applied_seq, lag) of a primary serving a feed or a
       follower. *)
    let wal_only = kind = "recover-stats" in
    (* route is a prepare whose "req" field is rewritten: the router
       answers it locally with the shard placement of the coalesce key
       instead of forwarding, so scripts can learn key ownership. *)
    let route = kind = "route" in
    (* promote is a ping whose "req" field is rewritten: a dmfd
       follower answers it by becoming a writable primary (same effect
       as SIGUSR1) and reports the recovery it ran. *)
    let promote = kind = "promote" in
    let kind =
      match kind with
      | "prepare" | "route" ->
        let ratio =
          match ratio with
          | Some r -> r
          | None -> failwith ("--req " ^ kind ^ " needs a --ratio")
        in
        let demand =
          match Service.Validate.demand demand with
          | Ok d -> d
          | Error msg -> failwith msg
        in
        Service.Request.Prepare
          {
            Service.Request.ratio;
            demand;
            algorithm;
            scheduler;
            mixers;
            storage_limit = storage;
          }
      | "stats" | "recover-stats" -> Service.Request.Stats
      | "ping" | "promote" -> Service.Request.Ping
      | other -> failwith ("unknown request kind " ^ other)
    in
    let request = { Service.Request.id = None; kind } in
    let rewrite_req =
      if route then Some "route" else if promote then Some "promote" else None
    in
    let json =
      match (rewrite_req, Service.Request.to_json request) with
      | Some kind, Service.Jsonl.Obj fields ->
        Service.Jsonl.Obj
          (List.map
             (function
               | "req", Service.Jsonl.String _ ->
                 ("req", Service.Jsonl.String kind)
               | binding -> binding)
             fields)
      | _, json -> json
    in
    let fd =
      try Service.Net.connect ~host ~port with
      | Failure msg -> failwith msg
      | Unix.Unix_error (e, _, _) ->
        failwith
          (Printf.sprintf "cannot reach dmfd at %s:%d: %s" host port
             (Unix.error_message e))
    in
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    output_string oc (Service.Jsonl.to_string json);
    output_char oc '\n';
    flush oc;
    (match input_line ic with
    | line -> (
      match Service.Jsonl.of_string line with
      | Ok json ->
        let json =
          if not wal_only then json
          else
            let keep name =
              match Service.Jsonl.member name json with
              | Some v -> [ (name, v) ]
              | None -> []
            in
            match
              keep "wal" @ keep "plan_store" @ keep "replication"
            with
            | [] ->
              failwith
                "the daemon runs without --wal-dir, --store-dir or a \
                 replication role (no wal, plan_store or replication object \
                 in stats)"
            | fields -> Service.Jsonl.Obj fields
        in
        Format.printf "%a@." Service.Jsonl.pp json
      | Error msg -> failwith ("malformed response: " ^ msg))
    | exception End_of_file -> failwith "server closed the connection");
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  let host =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"dmfd host.")
  in
  let port =
    Arg.(
      value & opt int 7433 & info [ "p"; "port" ] ~docv:"PORT" ~doc:"dmfd port.")
  in
  let kind =
    Arg.(
      value & opt string "prepare"
      & info [ "req" ] ~docv:"KIND"
          ~doc:
            "Request kind: prepare, stats, ping, recover-stats (the stats \
             response's wal/recovery, plan_store and replication counters \
             only), route (ask a dmfrouter which shard owns the coalesce \
             key; takes the same options as prepare), or promote (turn a \
             dmfd follower into a writable primary, like SIGUSR1).")
  in
  let client_storage =
    Arg.(
      value
      & opt (some (int_conv ~what:"storage budget q'" Service.Validate.storage))
          None
      & info [ "q"; "storage" ] ~docv:"Q"
          ~doc:"Storage budget q' (switches the server to multi-pass streaming).")
  in
  let term =
    Term.(
      const run $ client_ratio $ demand_arg $ algorithm_arg $ scheduler_arg
      $ mixers_arg $ client_storage $ host $ port $ kind)
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Send one request to a running dmfd and pretty-print the response")
    term

let () =
  let doc = "demand-driven mixture preparation on DMF biochips (DAC'14)" in
  let info = Cmd.info "dmfstream" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            plan_cmd; schedule_cmd; algorithms_cmd; compare_cmd; stream_cmd;
            layout_cmd; simulate_cmd; dilute_cmd; robust_cmd; wear_cmd;
            multi_cmd; assay_cmd; pins_cmd; export_cmd; recover_cmd;
            protocols_cmd; client_cmd;
          ]))
