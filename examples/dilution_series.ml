(* The dilution engine — the N = 2 lineage the paper generalises.

   Roy et al.'s dilution engine [20] produces a stream of droplets of a
   single dilution target; the DAC'14 paper extends the idea to mixtures
   of N >= 3 fluids.  This example (a) compares the two classic dilution
   trees (bit-scan TWM vs binary-search DMRW) as streaming seeds, (b)
   runs the engine for a full 16-droplet demand, and (c) prepares a
   whole dilution series in one reagent-sharing multi-target forest.

   Run with: dune exec examples/dilution_series.exe *)

let section title = print_string (Mdst.Report.section title)

let () =
  section "Single dilution target 7/16: TWM vs DMRW as streaming seeds";
  let d = 4 in
  let rows =
    List.concat_map
      (fun c ->
        let ratio = Mixtree.Dilution.ratio ~c ~d in
        List.map
          (fun (name, tree) ->
            let pass = Mdst.Forest.of_tree ~ratio ~demand:2 ~sharing:true tree in
            let stream =
              Mdst.Forest.of_tree ~ratio ~demand:16 ~sharing:true tree
            in
            [
              Printf.sprintf "%d/16" c;
              name;
              string_of_int (Mdst.Plan.tms pass);
              string_of_int (Mdst.Plan.waste pass);
              string_of_int (Mdst.Plan.tms stream);
              string_of_int (Mdst.Plan.waste stream);
              string_of_int (Mdst.Plan.input_total stream);
            ])
          [
            ("TWM", Mixtree.Dilution.twm ~c ~d);
            ("DMRW", Mixtree.Dilution.dmrw ~c ~d);
          ])
      [ 1; 5; 7; 11; 15 ]
  in
  print_string
    (Mdst.Report.table
       ~header:
         [ "target"; "tree"; "Tms@2"; "W@2"; "Tms@16"; "W@16"; "I@16" ]
       ~rows);
  print_string
    "(at D = 16 = 2^d both engines consume exactly c sample + (16 - c) \
     buffer droplets: zero waste)\n";

  section "Streaming 16 droplets of 7/16 with two mixers";
  let ratio = Mixtree.Dilution.ratio ~c:7 ~d in
  let plan =
    Mdst.Forest.of_tree ~ratio ~demand:16 ~sharing:true
      (Mixtree.Dilution.dmrw ~c:7 ~d)
  in
  let schedule = Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan ~mixers:2 in
  print_string (Mdst.Gantt.render ~plan schedule);

  section "A serial dilution series as one multi-target forest";
  (* 1/2, 1/4, 1/8, 1/16 of the sample — four droplet pairs, one pool. *)
  let requests =
    List.map
      (fun c -> (Mixtree.Dilution.ratio ~c ~d, 2))
      [ 8; 4; 2; 1 ]
  in
  let combined = Mdst.Forest.build_multi ~algorithm:Mixtree.Algorithm.MM requests in
  let separate =
    List.fold_left
      (fun acc (ratio, demand) ->
        acc
        + Mdst.Plan.input_total
            (Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand))
      0 requests
  in
  Format.printf "%a@." Mdst.Plan.pp_summary combined;
  Format.printf
    "series prepared together: %d input droplets; prepared separately: %d@."
    (Mdst.Plan.input_total combined)
    separate;
  (* The series shares beautifully: 1/4 is one mix away from 1/2, etc. *)
  let schedule = Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan:combined ~mixers:2 in
  print_string (Mdst.Gantt.render ~plan:combined schedule)
