(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation and micro-benchmarks each workload with Bechamel.

   Usage:
     dune exec bench/main.exe                 -- run everything
     dune exec bench/main.exe fig1 table2 ... -- run a subset
     BENCH_FULL=1 dune exec bench/main.exe    -- full 6289-ratio corpus
                                                 (default: deterministic
                                                 subsample)
     MDST_DOMAINS=4 dune exec bench/main.exe  -- corpus sweeps on 4 domains
                                                 (default: physical cores)
     DMF_BENCH_REPS=5 dune exec bench/main.exe service wal
                                              -- repeat the service/WAL
                                                 phases 5x and pool their
                                                 latency samples (default 1)

   Experiments: cluster replication fig1 fig3 fig5 table2 table3 fig6
   fig7 table4 ablation dilution robust assay pins routing recovery
   wash pareto scaling service wal store speed.  (cluster forks daemon
   processes and so must precede anything that spawns domains; keep it
   first when selecting subsets that include it.)

   Every run additionally writes BENCH_PR10.json — per-experiment wall
   times, Bechamel ns/run, service req/s with p50/p95/p99 request
   latencies, cluster req/s vs shard count through dmfrouter (cold and
   warm, with the exact-coalescing flag and the 4-shard warm speedup),
   WAL fsync-batch throughput (same percentiles), the group-commit
   sweep (concurrent strict committers vs the serialized PR 5
   discipline), follower replication lag, the cold-vs-warm
   plan-store sweep, domain/core counts and corpus sizes — so
   successive PRs accumulate a machine-readable performance
   trajectory.  The same JSON is copied to
   bench_results/bench-<timestamp>.json plus the stable alias
   bench_results/bench-latest.json (both untracked).  Everything printed
   is also teed into bench_output.txt (untracked) for local
   inspection. *)

let pcr16 = Bioproto.Protocols.pcr ~d:4

let section title = print_string (Mdst.Report.section title)

let full_corpus = Sys.getenv_opt "BENCH_FULL" = Some "1"

let corpus ~every =
  let all = Bioproto.Synth.corpus ~sum:32 () in
  if full_corpus then all else Bioproto.Synth.sample ~every all

let i2s = string_of_int

(* How many times to repeat each service/WAL measurement phase; the
   latency samples of all repetitions are pooled before the percentiles
   are taken, so higher values firm up the tail estimates. *)
let bench_reps =
  match Sys.getenv_opt "DMF_BENCH_REPS" with
  | None -> 1
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 1)

(* Nearest-rank percentile (p in 0..100) of unsorted samples. *)
let percentile p samples =
  match List.sort Float.compare samples with
  | [] -> 0.
  | sorted ->
    let arr = Array.of_list sorted in
    let n = Array.length arr in
    let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int n)) in
    arr.(max 0 (min (n - 1) (rank - 1)))

(* ------------------------------------------------------------------ *)
(* BENCH_PR6.json accumulators                                         *)

let wall_times : (string * float) list ref = ref []
let micro_ns : (string * float) list ref = ref []

(* (workers, phase, requests, wall_s, latencies_ms) per
   service-throughput phase; latencies pooled across repetitions. *)
let service_results : (int * string * int * float * float list) list ref =
  ref []

(* (mode, fsync_every_n, requests, wall_s, fsyncs, latencies_ms) per WAL
   mode. *)
let wal_results : (string * int * int * float * int * float list) list ref =
  ref []

(* (mode, threads, records, wall_s, fsyncs, group_commits,
   avg_batch_size) per group-commit sweep row: the WAL alone under
   concurrent strict committers. *)
let group_commit_results :
    (string * int * int * float * int * int * float) list ref =
  ref []

(* Follower-lag experiment: (backlog_records, backlog_s, live_records,
   live_s, max_lag_records, max_lag_ms). *)
let replication_result :
    (int * float * int * float * int * float) option ref =
  ref None

(* (config, shards, phase, requests, wall_s, ok, latencies_ms) per
   cluster-experiment phase; coalescing is exact iff every cluster
   configuration built precisely one plan per distinct cache key. *)
let cluster_results :
    (string * int * string * int * float * int * float list) list ref =
  ref []

let cluster_plans_exact = ref true

(* Cold vs warm table3-style sweep through the content-addressed plan
   store: (specs, cold_s, warm_s, warm_hits, writes, entries, bytes). *)
let plan_store_result :
    (int * float * float * int * int * int * int) option ref =
  ref None

(* (policy, plan, counters) rows of the scheduler-core experiment. *)
let scheduler_core_results :
    (string * string * Mdst.Instr.counters) list ref =
  ref []

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let bench_json_path = "BENCH_PR10.json"
let bench_results_dir = "bench_results"

let write_bench_json () =
  (* Resolve every value before [open_out]: a bad MDST_DOMAINS raises in
     [default_domains], and truncating the previous trajectory file
     before that would lose it. *)
  let domains = Mdst.Par.default_domains () in
  let experiments =
    List.rev_map
      (fun (name, v) ->
        Printf.sprintf "{\"name\": \"%s\", \"wall_s\": %.6f}"
          (json_escape name) v)
      !wall_times
  in
  let micro =
    List.map
      (fun (name, v) ->
        Printf.sprintf "{\"name\": \"%s\", \"ns_per_run\": %.1f}"
          (json_escape name) v)
      (List.sort compare !micro_ns)
  in
  let scheduler_core =
    List.rev_map
      (fun (policy, plan_name, c) ->
        Printf.sprintf "{\"policy\": \"%s\", \"plan\": \"%s\", %s}"
          (json_escape policy) (json_escape plan_name)
          (String.concat ", "
             (List.map
                (fun (k, v) -> Printf.sprintf "\"%s\": %g" k v)
                (Mdst.Instr.counters_to_fields c))))
      !scheduler_core_results
  in
  let percentile_fields latencies =
    Printf.sprintf "\"p50_ms\": %.3f, \"p95_ms\": %.3f, \"p99_ms\": %.3f"
      (percentile 50. latencies) (percentile 95. latencies)
      (percentile 99. latencies)
  in
  let service =
    List.rev_map
      (fun (workers, phase, requests, wall_s, latencies) ->
        Printf.sprintf
          "{\"workers\": %d, \"phase\": \"%s\", \"requests\": %d, \
           \"wall_s\": %.6f, \"req_per_s\": %.1f, %s}"
          workers (json_escape phase) requests wall_s
          (if wall_s > 0. then float_of_int requests /. wall_s else 0.)
          (percentile_fields latencies))
      !service_results
  in
  let cluster_rows =
    List.rev_map
      (fun (config, shards, phase, requests, wall_s, ok, latencies) ->
        Printf.sprintf
          "{\"config\": \"%s\", \"shards\": %d, \"phase\": \"%s\", \
           \"requests\": %d, \"ok\": %d, \"wall_s\": %.6f, \
           \"req_per_s\": %.1f, %s}"
          (json_escape config) shards (json_escape phase) requests ok wall_s
          (if wall_s > 0. then float_of_int requests /. wall_s else 0.)
          (percentile_fields latencies))
      !cluster_results
  in
  (* Warm throughput of the 4-shard router relative to the direct
     single daemon — the headline scaling number.  On a 1-core box the
     shards serialize and this hovers near 1; the cores field records
     what was available. *)
  let cluster_speedup =
    let warm_rps config shards =
      List.find_map
        (fun (c, s, phase, requests, wall_s, _, _) ->
          if c = config && s = shards && phase = "warm" && wall_s > 0. then
            Some (float_of_int requests /. wall_s)
          else None)
        !cluster_results
    in
    match (warm_rps "direct" 1, warm_rps "router" 4) with
    | Some direct, Some sharded when direct > 0. -> sharded /. direct
    | _ -> 0.
  in
  let wal =
    List.rev_map
      (fun (mode, every_n, requests, wall_s, fsyncs, latencies) ->
        Printf.sprintf
          "{\"mode\": \"%s\", \"fsync_every_n\": %d, \"requests\": %d, \
           \"wall_s\": %.6f, \"req_per_s\": %.1f, \"fsyncs\": %d, %s}"
          (json_escape mode) every_n requests wall_s
          (if wall_s > 0. then float_of_int requests /. wall_s else 0.)
          fsyncs
          (percentile_fields latencies))
      !wal_results
  in
  let group_commit =
    List.rev_map
      (fun (mode, threads, records, wall_s, fsyncs, gcs, avg_batch) ->
        Printf.sprintf
          "{\"mode\": \"%s\", \"threads\": %d, \"records\": %d, \
           \"wall_s\": %.6f, \"rec_per_s\": %.1f, \"fsyncs\": %d, \
           \"group_commits\": %d, \"avg_batch_size\": %.2f}"
          (json_escape mode) threads records wall_s
          (if wall_s > 0. then float_of_int records /. wall_s else 0.)
          fsyncs gcs avg_batch)
      !group_commit_results
  in
  let replication_json =
    match !replication_result with
    | None -> "{\"ran\": false}"
    | Some (backlog, backlog_s, live, live_s, max_lag, max_lag_ms) ->
      Printf.sprintf
        "{\"ran\": true, \"backlog_records\": %d, \"backlog_s\": %.6f, \
         \"backlog_rec_per_s\": %.1f, \"live_records\": %d, \
         \"live_s\": %.6f, \"max_lag_records\": %d, \"max_lag_ms\": %.3f}"
        backlog backlog_s
        (if backlog_s > 0. then float_of_int backlog /. backlog_s else 0.)
        live live_s max_lag max_lag_ms
  in
  let plan_store_json =
    match !plan_store_result with
    | None -> "{\"ran\": false}"
    | Some (specs, cold_s, warm_s, warm_hits, writes, entries, bytes) ->
      Printf.sprintf
        "{\"ran\": true, \"specs\": %d, \"cold_s\": %.6f, \"warm_s\": %.6f, \
         \"warm_hits\": %d, \"writes\": %d, \"entries\": %d, \"bytes\": %d, \
         \"warm_speedup\": %.3f}"
        specs cold_s warm_s warm_hits writes entries bytes
        (if warm_s > 0. then cold_s /. warm_s else 0.)
  in
  let oc = open_out bench_json_path in
  Printf.fprintf oc
    "{\n\
    \  \"pr\": 10,\n\
    \  \"bench\": \"dmfstream\",\n\
    \  \"domains\": %d,\n\
    \  \"cores\": %d,\n\
    \  \"full_corpus\": %b,\n\
    \  \"corpus_size\": {\"table3\": %d, \"fig6\": %d, \"full\": %d},\n\
    \  \"experiments\": [\n    %s\n  ],\n\
    \  \"scheduler_core\": [\n    %s\n  ],\n\
    \  \"service\": [\n    %s\n  ],\n\
    \  \"cluster\": {\n\
    \    \"client_connections\": 8,\n\
    \    \"coalescing_exact\": %b,\n\
    \    \"warm_speedup_4_shards\": %.3f,\n\
    \    \"rows\": [\n      %s\n    ]\n\
    \  },\n\
    \  \"wal\": [\n    %s\n  ],\n\
    \  \"group_commit\": [\n    %s\n  ],\n\
    \  \"replication\": %s,\n\
    \  \"plan_store\": %s,\n\
    \  \"micro_ns_per_run\": [\n    %s\n  ]\n\
     }\n"
    domains
    (Domain.recommended_domain_count ())
    full_corpus
    (List.length (corpus ~every:8))
    (List.length (corpus ~every:40))
    (List.length (Bioproto.Synth.corpus ~sum:32 ()))
    (String.concat ",\n    " experiments)
    (String.concat ",\n    " scheduler_core)
    (String.concat ",\n    " service)
    !cluster_plans_exact cluster_speedup
    (String.concat ",\n      " cluster_rows)
    (String.concat ",\n    " wal)
    (String.concat ",\n    " group_commit)
    replication_json
    plan_store_json
    (String.concat ",\n    " micro);
  close_out oc;
  (* Keep the trajectory under bench_results/ too: one timestamped copy
     per run plus a stable bench-latest.json alias for tooling.  The
     stamped name is not printed, so bench_output.txt stays
     deterministic across runs. *)
  let contents = In_channel.with_open_bin bench_json_path In_channel.input_all in
  (try Unix.mkdir bench_results_dir 0o755
   with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let tm = Unix.localtime (Unix.gettimeofday ()) in
  let stamped =
    Filename.concat bench_results_dir
      (Printf.sprintf "bench-%04d%02d%02d-%02d%02d%02d.json"
         (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
         tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec)
  in
  List.iter
    (fun path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc contents))
    [ stamped; Filename.concat bench_results_dir "bench-latest.json" ];
  Printf.printf "\nwrote %s (+ %s/bench-latest.json)\n" bench_json_path
    bench_results_dir

(* ------------------------------------------------------------------ *)
(* Figure 1 / 2: mixing-forest construction for the PCR master-mix     *)

let fig1 () =
  section "Fig. 1-2: mixing forests for PCR ratio 2:1:1:1:1:1:9 (d=4)";
  let rows =
    List.map
      (fun (demand, paper) ->
        let p =
          Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr16
            ~demand
        in
        [
          i2s demand;
          i2s (Mdst.Plan.trees p);
          i2s (Mdst.Plan.tms p);
          i2s (Mdst.Plan.waste p);
          i2s (Mdst.Plan.input_total p);
          String.concat ","
            (Array.to_list (Array.map i2s (Mdst.Plan.input_vector p)));
          paper;
        ])
      [
        (16, "|F|=8 Tms=19 W=0 I=16");
        (20, "|F|=10 Tms=27 W=5 I=25 I[]=3,2,2,2,2,2,12");
      ]
  in
  print_string
    (Mdst.Report.table
       ~header:[ "D"; "|F|"; "Tms"; "W"; "I"; "I[]"; "paper" ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* Figure 3 / 4: SRS schedule of the D = 20 forest with three mixers   *)

let fig3 () =
  section "Fig. 3-4: SRS schedule, D=20, Mc=3 (paper: Tc=11, q=5)";
  let plan =
    Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr16 ~demand:20
  in
  let srs = Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan ~mixers:3 in
  let mms = Mdst.Scheduler.schedule Mdst.Scheduler.mms ~plan ~mixers:3 in
  print_string (Mdst.Gantt.render ~plan srs);
  Printf.printf
    "measured: SRS Tc=%d q=%d | MMS Tc=%d q=%d (SRS trades time for storage)\n"
    (Mdst.Schedule.completion_time srs)
    (Mdst.Storage.units ~plan srs)
    (Mdst.Schedule.completion_time mms)
    (Mdst.Storage.units ~plan mms)

(* ------------------------------------------------------------------ *)
(* Figure 5: chip layout, cost matrix, electrode actuation             *)

let fig5 () =
  section "Fig. 5: PCR chip layout and droplet-transportation costs";
  let layout = Chip.Layout.pcr_fig5 () in
  print_string (Chip.Layout.render layout);
  let matrix = Chip.Cost_matrix.build layout in
  let ids ms = List.map (fun m -> m.Chip.Chip_module.id) ms in
  print_newline ();
  print_string
    (Chip.Cost_matrix.render
       ~rows:
         (ids (Chip.Layout.reservoirs layout)
         @ ids (Chip.Layout.storage_units layout)
         @ ids (Chip.Layout.wastes layout)
         @ ids (Chip.Layout.mixers layout))
       ~columns:(ids (Chip.Layout.mixers layout))
       matrix);
  let plan =
    Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr16 ~demand:20
  in
  let schedule = Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan ~mixers:3 in
  let pass =
    Mdst.Forest.repeated ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr16 ~demand:2
  in
  let pass_schedule = Mdst.Scheduler.schedule Mdst.Scheduler.oms ~plan:pass ~mixers:3 in
  (match
     ( Chip.Actuation.account ~layout ~plan ~schedule,
       Chip.Actuation.account ~layout ~plan:pass ~schedule:pass_schedule )
   with
  | Ok streamed, Ok one_pass ->
    let repeated = 10 * Chip.Actuation.total one_pass in
    Printf.printf
      "\nelectrode actuations for D=20: streamed forest %d vs repeated MM %d \
       (%.2fx)\n"
      (Chip.Actuation.total streamed)
      repeated
      (float_of_int repeated /. float_of_int (Chip.Actuation.total streamed));
    Printf.printf "paper (hand-placed chip): 386 vs 980 (2.54x)\n"
  | Error e, _ | _, Error e -> Printf.printf "accounting failed: %s\n" e);
  match Chip.Placer.optimize_for ~iterations:1500 ~plan ~schedule layout with
  | Ok (_, before, after) ->
    Printf.printf
      "placement optimisation (extension, after [21]): %d -> %d electrodes\n"
      before after
  | Error e -> Printf.printf "placer failed: %s\n" e

(* ------------------------------------------------------------------ *)
(* Table 2: Ex.1-5 under the nine schemes                              *)

(* Paper values (Tc, q, I) per protocol, columns A..I; -1 = not legible
   in the source scan. *)
let table2_paper =
  [
    ( "ex1",
      [ (128, 1, 272); (15, 13, 41); (16, 8, 41); (128, 0, 304); (12, 12, 43);
        (12, 8, 43); (128, 2, 240); (15, -1, 39); (16, -1, 39) ] );
    ( "ex2",
      [ (128, 0, 144); (34, 15, 35); (34, 4, 35); (128, 0, 144); (34, 15, 35);
        (34, 4, 35); (128, 0, 144); (34, -1, 35); (34, -1, 35) ] );
    ( "ex3",
      [ (128, 1, 432); (12, 9, 45); (13, 9, 45); (128, 0, 464); (12, 10, 47);
        (14, 9, 47); (128, 2, 288); (11, -1, 39); (13, -1, 39) ] );
    ( "ex4",
      [ (128, 1, 208); (20, 13, 37); (20, 6, 37); (128, 0, 256); (15, 12, 40);
        (15, 8, 40); (128, 1, 160); (20, -1, 37); (20, -1, 37) ] );
    ( "ex5",
      [ (128, 2, 304); (17, 13, 40); (17, 9, 40); (128, 1, 320); (17, 12, 41);
        (19, 13, 41); (128, 1, 208); (24, -1, 36); (24, -1, 36) ] );
  ]

let table2 () =
  section "Table 2: Tc / q / I for Ex.1-5 under nine schemes (D=32)";
  (* Evaluate the five protocols concurrently, print in protocol order. *)
  let evaluated =
    Mdst.Par.map
      (fun p ->
        ( p,
          Mdst.Compare.evaluate_all ~ratio:p.Bioproto.Protocols.ratio
            ~demand:32 Mdst.Compare.table2_schemes ))
      Bioproto.Protocols.table2
  in
  List.iter
    (fun (p, results) ->
      let id = p.Bioproto.Protocols.id in
      let ratio = p.Bioproto.Protocols.ratio in
      Printf.printf "\n%s = %s (%s)\n" id
        (Dmf.Ratio.to_string ratio)
        p.Bioproto.Protocols.name;
      let paper_row = List.assoc id table2_paper in
      let cell v = if v < 0 then "-" else i2s v in
      let rows =
        List.map2
          (fun (scheme, m) (ptc, pq, pi) ->
            [
              Mdst.Compare.scheme_name scheme;
              i2s m.Mdst.Metrics.tc;
              cell ptc;
              i2s m.Mdst.Metrics.q;
              cell pq;
              i2s m.Mdst.Metrics.input_total;
              cell pi;
            ])
          results paper_row
      in
      print_string
        (Mdst.Report.table
           ~header:
             [ "scheme"; "Tc"; "Tc(paper)"; "q"; "q(paper)"; "I"; "I(paper)" ]
           ~rows))
    evaluated

(* ------------------------------------------------------------------ *)
(* Table 3: average improvements over the synthetic corpus             *)

let table3_paper = function
  | Mixtree.Algorithm.MM -> (73.0, 72.0, 76.0, 76.0, 23.2, -3.9)
  | Mixtree.Algorithm.RMA -> (73.5, 72.1, 76.6, 76.6, 26.0, -5.5)
  | Mixtree.Algorithm.MTCS -> (71.1, 69.8, 72.4, 72.4, 27.4, -4.4)
  | Mixtree.Algorithm.RSM -> (0., 0., 0., 0., 0., 0.)

let table3 () =
  let ratios = corpus ~every:8 in
  section
    (Printf.sprintf
       "Table 3: average %% improvements over %d synthetic ratios (L=32, \
        D=32)%s"
       (List.length ratios)
       (if full_corpus then "" else " [subsampled; BENCH_FULL=1 for all 6289]"));
  let f = Mdst.Report.float_cell in
  let rows =
    List.concat_map
      (fun algorithm ->
        let imp =
          Mdst.Compare.average_improvements ~ratios ~demand:32 algorithm
        in
        let ptc_m, ptc_s, pi_m, pi_s, pq, ptc_sm = table3_paper algorithm in
        let name = Mixtree.Algorithm.name algorithm in
        [
          [ "Tc: MMS||R"; name; f imp.Mdst.Compare.mms_tc_over_repeated; f ptc_m ];
          [ "Tc: SRS||R"; name; f imp.Mdst.Compare.srs_tc_over_repeated; f ptc_s ];
          [ "I:  MMS||R"; name; f imp.Mdst.Compare.mms_i_over_repeated; f pi_m ];
          [ "I:  SRS||R"; name; f imp.Mdst.Compare.srs_i_over_repeated; f pi_s ];
          [ "q:  SRS||MMS"; name; f imp.Mdst.Compare.srs_q_over_mms; f pq ];
          [ "Tc: SRS||MMS"; name; f imp.Mdst.Compare.srs_tc_over_mms; f ptc_sm ];
        ])
      [ Mixtree.Algorithm.MM; Mixtree.Algorithm.RMA; Mixtree.Algorithm.MTCS ]
  in
  print_string
    (Mdst.Report.table
       ~header:[ "parameter"; "base algo"; "measured %"; "paper %" ]
       ~rows);
  (* The headline claim of the abstract. *)
  let mm =
    Mdst.Compare.average_improvements ~ratios ~demand:32 Mixtree.Algorithm.MM
  in
  Printf.printf
    "headline: MMS produces droplets %.1f%% faster with %.1f%% less reactant \
     (paper: 72.5%% / 75%%)\n"
    mm.Mdst.Compare.mms_tc_over_repeated mm.Mdst.Compare.mms_i_over_repeated

(* ------------------------------------------------------------------ *)
(* Figure 6: average Tc and I versus demand                            *)

let fig6 () =
  let ratios = corpus ~every:40 in
  section
    (Printf.sprintf
       "Fig. 6: average Tc and I vs demand over %d synthetic ratios%s"
       (List.length ratios)
       (if full_corpus then "" else " [subsampled]"));
  let schemes =
    [
      ("RMM", Mdst.Compare.Repeated Mixtree.Algorithm.MM);
      ("RMTCS", Mdst.Compare.Repeated Mixtree.Algorithm.MTCS);
      ( "MM+MMS",
        Mdst.Compare.Streamed (Mixtree.Algorithm.MM, Mdst.Scheduler.mms) );
      ( "MTCS+MMS",
        Mdst.Compare.Streamed (Mixtree.Algorithm.MTCS, Mdst.Scheduler.mms) );
    ]
  in
  let average demand pick scheme =
    (* Parallel over the corpus — one evaluation per ratio. *)
    let total =
      Mdst.Par.map
        (fun ratio -> pick (Mdst.Compare.evaluate ~ratio ~demand scheme))
        ratios
      |> List.fold_left ( + ) 0
    in
    float_of_int total /. float_of_int (List.length ratios)
  in
  print_string "(a) average time of completion Tc vs demand D\n";
  let header = "D" :: List.map fst schemes in
  let rows =
    List.map
      (fun demand ->
        i2s demand
        :: List.map
             (fun (_, s) ->
               Mdst.Report.float_cell
                 (average demand (fun m -> m.Mdst.Metrics.tc) s))
             schemes)
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ]
  in
  print_string (Mdst.Report.table ~header ~rows);
  print_string
    "(expected shape: baselines grow stepwise with ceil(D/2); forests grow \
     slowly)\n\n";
  print_string "(b) average input-droplet usage I vs demand D\n";
  let rows =
    List.map
      (fun demand ->
        i2s demand
        :: List.map
             (fun (_, s) ->
               Mdst.Report.float_cell
                 (average demand (fun m -> m.Mdst.Metrics.input_total) s))
             schemes)
      [ 2; 4; 8; 12; 16; 20; 24; 28; 32 ]
  in
  print_string (Mdst.Report.table ~header ~rows);
  print_string
    "(expected shape: baselines linear in D; forests approach the ideal D \
     droplets in = D droplets out)\n"

(* ------------------------------------------------------------------ *)
(* Figure 7: Tc and q versus the number of mixers                      *)

let fig7 () =
  section "Fig. 7: Tc and q vs mixers M, RMA base tree, PCR d=4, D=32";
  let plan =
    Mdst.Forest.build ~algorithm:Mixtree.Algorithm.RMA ~ratio:pcr16 ~demand:32
  in
  let rows =
    Mdst.Par.map
      (fun mixers ->
        let mms = Mdst.Scheduler.schedule Mdst.Scheduler.mms ~plan ~mixers in
        let srs = Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan ~mixers in
        [
          i2s mixers;
          i2s (Mdst.Schedule.completion_time mms);
          i2s (Mdst.Schedule.completion_time srs);
          i2s (Mdst.Storage.units ~plan mms);
          i2s (Mdst.Storage.units ~plan srs);
        ])
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]
  in
  print_string
    (Mdst.Report.table
       ~header:[ "M"; "Tc MMS"; "Tc SRS"; "q MMS"; "q SRS" ]
       ~rows);
  print_string
    "(expected shape: Tc falls then saturates with M; SRS needs fewer \
     storage units than MMS on average)\n"

(* ------------------------------------------------------------------ *)
(* Table 4: multi-pass streaming under a storage budget                *)

let table4_paper = function
  | 4, 3, 2 -> "One (4,6)"
  | 4, 3, 16 -> "Two (10,7)"
  | 4, 3, 20 -> "Two (11,5)"
  | 4, 3, 32 -> "Three (17,7)"
  | 4, 5, 2 | 4, 7, 2 -> "One (4,6)"
  | 4, 5, 16 | 4, 7, 16 -> "One (7,0)"
  | _ -> "-"

let table4 () =
  section
    "Table 4: PCR streaming with 3 mixers under storage budgets (passes, \
     total Tc, total W)";
  List.iter
    (fun d ->
      let ratio = Bioproto.Protocols.pcr ~d in
      Printf.printf "\naccuracy d = %d (ratio %s)\n" d
        (Dmf.Ratio.to_string ratio);
      let rows =
        List.concat_map
          (fun q ->
            List.map
              (fun demand ->
                let r =
                  Mdst.Streaming.run ~algorithm:Mixtree.Algorithm.MM ~ratio
                    ~demand ~mixers:3 ~storage_limit:q
                    ~scheduler:Mdst.Scheduler.srs ()
                in
                [
                  i2s q;
                  i2s demand;
                  i2s (Mdst.Streaming.n_passes r);
                  Printf.sprintf "(%d,%d)" r.Mdst.Streaming.total_cycles
                    r.Mdst.Streaming.total_waste;
                  table4_paper (d, q, demand);
                ])
              [ 2; 16; 20; 32 ])
          [ 3; 5; 7 ]
      in
      print_string
        (Mdst.Report.table
           ~header:[ "q'"; "D"; "passes"; "(Tc,W)"; "paper" ]
           ~rows))
    [ 4; 5; 6 ]

(* ------------------------------------------------------------------ *)
(* Ablations: where do the savings come from?                          *)

let ablation () =
  section "Ablation 1: waste-droplet reuse on/off (the paper's key idea)";
  let rows =
    List.map
      (fun p ->
        let ratio = p.Bioproto.Protocols.ratio in
        let on =
          Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:32
        in
        let off =
          Mdst.Forest.repeated ~algorithm:Mixtree.Algorithm.MM ~ratio
            ~demand:32
        in
        [
          p.Bioproto.Protocols.id;
          i2s (Mdst.Plan.tms on);
          i2s (Mdst.Plan.tms off);
          i2s (Mdst.Plan.waste on);
          i2s (Mdst.Plan.waste off);
          i2s (Mdst.Plan.input_total on);
          i2s (Mdst.Plan.input_total off);
        ])
      Bioproto.Protocols.table2
  in
  print_string
    (Mdst.Report.table
       ~header:
         [ "ratio"; "Tms on"; "Tms off"; "W on"; "W off"; "I on"; "I off" ]
       ~rows);

  section "Ablation 2: MTCS intra-pass sharing on/off (single pass)";
  let rows =
    List.map
      (fun p ->
        let ratio = p.Bioproto.Protocols.ratio in
        let tree = Mixtree.Mtcs.build ratio in
        let shared = Mdst.Forest.of_tree ~ratio ~demand:2 ~sharing:true tree in
        let unshared =
          Mdst.Forest.of_tree ~ratio ~demand:2 ~sharing:false tree
        in
        [
          p.Bioproto.Protocols.id;
          i2s (Mdst.Plan.tms shared);
          i2s (Mdst.Plan.tms unshared);
          i2s (Mdst.Plan.input_total shared);
          i2s (Mdst.Plan.input_total unshared);
        ])
      Bioproto.Protocols.table2
  in
  print_string
    (Mdst.Report.table
       ~header:[ "ratio"; "Tms shared"; "Tms plain"; "I shared"; "I plain" ]
       ~rows);

  section "Ablation 3: scheduler choice across mixer counts (PCR, D=32)";
  let plan =
    Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr16 ~demand:32
  in
  let rows =
    List.map
      (fun mixers ->
        let mms = Mdst.Scheduler.schedule Mdst.Scheduler.mms ~plan ~mixers in
        let oms = Mdst.Scheduler.schedule Mdst.Scheduler.oms ~plan ~mixers in
        let srs = Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan ~mixers in
        [
          i2s mixers;
          Printf.sprintf "%d/%d"
            (Mdst.Schedule.completion_time mms)
            (Mdst.Storage.units ~plan mms);
          Printf.sprintf "%d/%d"
            (Mdst.Schedule.completion_time oms)
            (Mdst.Storage.units ~plan oms);
          Printf.sprintf "%d/%d"
            (Mdst.Schedule.completion_time srs)
            (Mdst.Storage.units ~plan srs);
        ])
      [ 1; 2; 3; 4; 6; 8 ]
  in
  print_string
    (Mdst.Report.table
       ~header:[ "M"; "MMS Tc/q"; "OMS Tc/q"; "SRS Tc/q" ]
       ~rows)


(* ------------------------------------------------------------------ *)
(* Dilution: the N = 2 lineage ([17] DMRW, [20] dilution engine)       *)

let dilution () =
  section
    "Dilution engine (N=2, after [17, 20]): TWM vs DMRW seeds, d = 5";
  let d = 5 in
  let total_stats tree_of =
    let totals = ref (0, 0, 0) in
    for c = 1 to Dmf.Binary.pow2 d - 1 do
      let ratio = Mixtree.Dilution.ratio ~c ~d in
      let pass = Mdst.Forest.of_tree ~ratio ~demand:2 ~sharing:true (tree_of c) in
      let tms, waste, inputs = !totals in
      totals :=
        ( tms + Mdst.Plan.tms pass,
          waste + Mdst.Plan.waste pass,
          inputs + Mdst.Plan.input_total pass )
    done;
    !totals
  in
  let twm = total_stats (fun c -> Mixtree.Dilution.twm ~c ~d) in
  let dmrw = total_stats (fun c -> Mixtree.Dilution.dmrw ~c ~d) in
  let row name (tms, waste, inputs) =
    [ name; i2s tms; i2s waste; i2s inputs ]
  in
  print_string
    (Mdst.Report.table
       ~header:[ "tree (sum over all 31 targets)"; "Tms"; "W"; "I" ]
       ~rows:[ row "TWM (bit-scan)" twm; row "DMRW (binary search)" dmrw ]);
  print_string
    "(expected shape: DMRW trades slightly more mixes for fewer waste \
     droplets per pass)\n";
  (* The streaming engine of [20]: demand sweep for one target. *)
  let ratio = Mixtree.Dilution.ratio ~c:11 ~d in
  let tree = Mixtree.Dilution.dmrw ~c:11 ~d in
  let rows =
    List.map
      (fun demand ->
        let engine = Mdst.Forest.of_tree ~ratio ~demand ~sharing:true tree in
        let repeated_inputs =
          Dmf.Binary.ceil_div demand 2
          * Mdst.Plan.input_total
              (Mdst.Forest.of_tree ~ratio ~demand:2 ~sharing:true tree)
        in
        [
          i2s demand;
          i2s (Mdst.Plan.tms engine);
          i2s (Mdst.Plan.waste engine);
          i2s (Mdst.Plan.input_total engine);
          i2s repeated_inputs;
        ])
      [ 2; 4; 8; 16; 32 ]
  in
  print_string
    (Mdst.Report.table
       ~header:[ "D"; "Tms"; "W"; "I engine"; "I repeated" ]
       ~rows)

(* ------------------------------------------------------------------ *)
(* Robustness: split-error accumulation per base algorithm             *)

let robust () =
  section
    "Split-error robustness (extension): worst-case CF error, 5% split \
     imbalance, D = 32";
  let epsilon = 0.05 in
  let rows =
    List.map
      (fun p ->
        let ratio = p.Bioproto.Protocols.ratio in
        p.Bioproto.Protocols.id
        :: List.map
             (fun algorithm ->
               let plan = Mdst.Forest.build ~algorithm ~ratio ~demand:32 in
               Printf.sprintf "%.4f"
                 (Mdst.Split_error.max_cf_error ~plan ~epsilon))
             [ Mixtree.Algorithm.MM; Mixtree.Algorithm.RMA;
               Mixtree.Algorithm.MTCS ])
      Bioproto.Protocols.table2
  in
  print_string
    (Mdst.Report.table ~header:[ "ratio"; "MM"; "RMA"; "MTCS" ] ~rows);
  (* Wear on the PCR chip: streamed vs repeated. *)
  let layout = Chip.Layout.pcr_fig5 () in
  let plan =
    Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr16 ~demand:20
  in
  let schedule = Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan ~mixers:3 in
  let pass =
    Mdst.Forest.repeated ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr16 ~demand:2
  in
  let pass_schedule = Mdst.Scheduler.schedule Mdst.Scheduler.oms ~plan:pass ~mixers:3 in
  match
    ( Sim.Wear.of_run ~layout ~plan ~schedule,
      Sim.Wear.of_run ~layout ~plan:pass ~schedule:pass_schedule )
  with
  | Ok streamed, Ok one_pass ->
    Printf.printf
      "electrode wear for D=20: streamed hottest=%d total=%d vs repeated \
       (10 passes) hottest=%d total=%d\n"
      streamed.Sim.Wear.hottest streamed.Sim.Wear.total
      (10 * one_pass.Sim.Wear.hottest)
      (10 * one_pass.Sim.Wear.total)
  | Error e, _ | _, Error e -> Printf.printf "wear analysis failed: %s\n" e


(* ------------------------------------------------------------------ *)
(* Demand-driven assay feeding and pin-constrained addressing          *)

let assay () =
  section
    "Assay feeding (extension): just-in-time production for a periodic \
     consumer";
  let rows =
    List.map
      (fun (interval, label) ->
        let requests =
          Assay.Demand.periodic ~start:20 ~interval ~count:4 ~batches:8
        in
        let p =
          Assay.Planner.plan ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr16
            ~mixers:3 ~storage_limit:5 ~scheduler:Mdst.Scheduler.srs ~requests
        in
        [
          label;
          i2s (Mdst.Streaming.n_passes p.Assay.Planner.streaming);
          i2s p.Assay.Planner.max_lateness;
          i2s p.Assay.Planner.total_earliness;
          i2s p.Assay.Planner.streaming.Mdst.Streaming.total_inputs;
          i2s p.Assay.Planner.makespan;
        ])
      [ (2, "4 droplets / 2 cycles"); (5, "4 droplets / 5 cycles");
        (10, "4 droplets / 10 cycles"); (15, "4 droplets / 15 cycles");
        (30, "4 droplets / 30 cycles") ]
  in
  print_string
    (Mdst.Report.table
       ~header:
         [ "consumer"; "passes"; "max lateness"; "earliness"; "I"; "makespan" ]
       ~rows);
  print_string
    "(expected shape: slow consumers are served just-in-time with zero \
     lateness and zero buffering; fast consumers force larger prebuilt \
     passes, trading buffer residency or lateness for throughput)\n"

let pins () =
  section
    "Broadcast pin assignment (extension, after [10]): PCR chip, D = 20";
  let plan =
    Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr16 ~demand:20
  in
  let schedule = Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan ~mixers:3 in
  let layout = Chip.Layout.pcr_fig5 () in
  match Sim.Executor.run ~layout ~plan ~schedule with
  | Error e -> Printf.printf "simulation failed: %s\n" e
  | Ok (_, stats) ->
    let assignment =
      Chip.Pin_assign.assign ~width:(Chip.Layout.width layout)
        ~height:(Chip.Layout.height layout) stats.Sim.Executor.addressing
    in
    Printf.printf
      "%d driven electrodes, %d control pins, %.1f%% pin saving vs direct \
       addressing\n"
      (Chip.Pin_assign.addressed_electrodes assignment)
      (Chip.Pin_assign.pins assignment)
      (100. *. Chip.Pin_assign.saving assignment)


(* ------------------------------------------------------------------ *)
(* Concurrent droplet routing (extension, after [8])                   *)

let routing () =
  section
    "Parallel droplet routing (extension, after [8]): per-cycle transport \
     on the PCR chip, D = 20";
  let plan =
    Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr16 ~demand:20
  in
  let schedule = Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan ~mixers:3 in
  let layout = Chip.Layout.pcr_fig5 () in
  match Sim.Parallel_transport.analyze ~layout ~plan ~schedule with
  | Error e -> Printf.printf "analysis failed: %s\n" e
  | Ok t ->
    let rows =
      List.map
        (fun r ->
          [
            i2s r.Sim.Parallel_transport.cycle;
            i2s r.Sim.Parallel_transport.moves;
            i2s r.Sim.Parallel_transport.serial_steps;
            i2s r.Sim.Parallel_transport.parallel_steps;
            (if r.Sim.Parallel_transport.fallback then "yes" else "");
          ])
        t.Sim.Parallel_transport.cycles
    in
    print_string
      (Mdst.Report.table
         ~header:[ "cycle"; "moves"; "serial"; "parallel"; "fallback" ]
         ~rows);
    Printf.printf
      "total transport sub-steps: %d serialised vs %d concurrent (%.2fx), \
       %d fallback cycle(s)\n"
      t.Sim.Parallel_transport.total_serial
      t.Sim.Parallel_transport.total_parallel t.Sim.Parallel_transport.speedup
      t.Sim.Parallel_transport.fallbacks


(* ------------------------------------------------------------------ *)
(* Checkpoint-based error recovery (extension)                         *)

let recovery () =
  section
    "Error recovery (extension): split failure at every cycle of the PCR \
     D=20 run";
  let plan =
    Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr16 ~demand:20
  in
  let schedule = Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan ~mixers:3 in
  let pick_node_at_cycle t =
    List.find_opt
      (fun node -> Mdst.Schedule.cycle schedule node.Mdst.Plan.id = t)
      (Mdst.Plan.nodes plan)
  in
  let rows =
    List.filter_map
      (fun t ->
        match pick_node_at_cycle t with
        | None -> None
        | Some node ->
          let r =
            Mdst.Recovery.recover ~algorithm:Mixtree.Algorithm.MM ~plan
              ~schedule ~failed_node:node.Mdst.Plan.id
          in
          let recovery_inputs, fresh_inputs =
            match (r.Mdst.Recovery.recovery_plan, r.Mdst.Recovery.fresh_restart) with
            | Some a, Some b ->
              (i2s (Mdst.Plan.input_total a), i2s (Mdst.Plan.input_total b))
            | _ -> ("-", "-")
          in
          Some
            [
              i2s t;
              i2s r.Mdst.Recovery.delivered;
              i2s (Array.length r.Mdst.Recovery.salvaged);
              i2s r.Mdst.Recovery.remaining_demand;
              recovery_inputs;
              fresh_inputs;
            ])
      (List.init (Mdst.Schedule.completion_time schedule) (fun i -> i + 1))
  in
  print_string
    (Mdst.Report.table
       ~header:
         [ "fail cycle"; "delivered"; "salvaged"; "remaining"; "I recover";
           "I restart" ]
       ~rows);
  print_string
    "(expected shape: the later the failure, the less remains to redo; \
     salvaged droplets always keep recovery at or below the restart \
     cost)\n"


(* ------------------------------------------------------------------ *)
(* Cross-contamination and wash overhead (extension)                   *)

let wash () =
  section
    "Cross-contamination (extension): residue crossings and wash overhead, \
     PCR chip";
  let layout = Chip.Layout.pcr_fig5 () in
  let rows =
    List.filter_map
      (fun demand ->
        let plan =
          Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr16
            ~demand
        in
        let schedule = Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan ~mixers:3 in
        match Sim.Executor.run ~layout ~plan ~schedule with
        | Error _ -> None
        | Ok (trace, stats) ->
          let report = Sim.Contamination.analyze ~layout ~plan ~trace in
          Some
            [
              i2s demand;
              i2s report.Sim.Contamination.total_crossings;
              i2s report.Sim.Contamination.benign_crossings;
              i2s (List.length report.Sim.Contamination.pairs);
              i2s report.Sim.Contamination.contaminated_cells;
              i2s report.Sim.Contamination.wash.washes;
              i2s report.Sim.Contamination.wash.wash_steps;
              Printf.sprintf "%.2f"
                (Sim.Contamination.wash_overhead_ratio report
                   ~transport_electrodes:stats.Sim.Executor.electrodes);
            ])
      [ 2; 8; 16; 20; 32 ]
  in
  print_string
    (Mdst.Report.table
       ~header:
         [ "D"; "crossings"; "benign"; "pairs"; "cells"; "washes";
           "wash steps"; "overhead" ]
       ~rows);
  print_string
    "(benign crossings are same-value droplets — re-used spares never \
     contaminate, one more advantage of the forest's value-keyed pool)\n"


(* ------------------------------------------------------------------ *)
(* Design-space exploration: mixers x storage operating points          *)

let pareto () =
  section
    "Design-space sweep (extension): completion time across mixers x \
     storage budgets, PCR d=4, D=32, SRS";
  let header =
    "Mc \\ q'" :: List.map i2s [ 1; 2; 3; 5; 7; 10 ]
  in
  let rows =
    List.map
      (fun mixers ->
        i2s mixers
        :: List.map
             (fun storage_limit ->
               let run =
                 Mdst.Streaming.run ~algorithm:Mixtree.Algorithm.MM
                   ~ratio:pcr16 ~demand:32 ~mixers ~storage_limit
                   ~scheduler:Mdst.Scheduler.srs ()
               in
               Printf.sprintf "%d/%dp" run.Mdst.Streaming.total_cycles
                 (Mdst.Streaming.n_passes run))
             [ 1; 2; 3; 5; 7; 10 ])
      [ 1; 2; 3; 4; 6; 8 ]
  in
  print_string (Mdst.Report.table ~header ~rows);
  print_string
    "(cells are total cycles / passes: both more mixers and more storage \
     buy speed, with diminishing returns — the designer picks the knee)\n"


(* ------------------------------------------------------------------ *)
(* Scaling with the number of fluids at high accuracy (d = 8)          *)

let scaling () =
  section
    "Scaling (extension): average engine cost vs fluid count N at L=256, \
     D=32, MM+SRS";
  (* A deterministic family per N: spread parts then give the remainder
     to a carrier, mimicking real protocols (a few reagents + buffer). *)
  let ratio_for ~n ~spread =
    let parts = Array.make n 1 in
    for i = 0 to n - 2 do
      parts.(i) <- 1 + ((i * spread) mod 13)
    done;
    let used = Array.fold_left ( + ) 0 parts - parts.(n - 1) in
    parts.(n - 1) <- 256 - used;
    Dmf.Ratio.make parts
  in
  let rows =
    List.map
      (fun n ->
        let ratios = List.map (fun spread -> ratio_for ~n ~spread) [ 1; 3; 5 ] in
        let average pick =
          let total =
            List.fold_left
              (fun acc ratio ->
                let result =
                  Mdst.Engine.prepare
                    { Mdst.Engine.ratio; demand = 32;
                      algorithm = Mixtree.Algorithm.MM;
                      scheduler = Mdst.Scheduler.srs; mixers = None }
                in
                acc + pick result.Mdst.Engine.metrics)
              0 ratios
          in
          float_of_int total /. float_of_int (List.length ratios)
        in
        [
          i2s n;
          Mdst.Report.float_cell (average (fun m -> m.Mdst.Metrics.tc));
          Mdst.Report.float_cell (average (fun m -> m.Mdst.Metrics.q));
          Mdst.Report.float_cell (average (fun m -> m.Mdst.Metrics.input_total));
          Mdst.Report.float_cell (average (fun m -> m.Mdst.Metrics.tms));
        ])
      [ 2; 3; 4; 6; 8; 10; 12 ]
  in
  print_string
    (Mdst.Report.table ~header:[ "N"; "avg Tc"; "avg q"; "avg I"; "avg Tms" ] ~rows);
  print_string
    "(expected shape: cost grows mildly with N — the forest amortises the \
     deeper, busier trees across the whole stream)\n"

(* ------------------------------------------------------------------ *)
(* Preparation-server throughput: the dmfd --stdio transport            *)

(* Distinct corpus ratios so a cold phase builds one forest per request
   (no coalescing, all cache misses).  Shared by [service] and [wal]. *)
let service_lines () =
  List.mapi
    (fun i ratio ->
      Printf.sprintf {|{"req": "prepare", "ratio": "%s", "D": 32, "id": %d}|}
        (Dmf.Ratio.to_string ratio) i)
    (corpus ~every:131)

(* One full request-response round over the pipe transport that
   [dmfd --stdio] uses: write every line, read every response. *)
let stream_requests server lines =
  let n = List.length lines in
  let req_read, req_write = Unix.pipe () in
  let resp_read, resp_write = Unix.pipe () in
  let server_ic = Unix.in_channel_of_descr req_read in
  let server_oc = Unix.out_channel_of_descr resp_write in
  let thread =
    Thread.create
      (fun () ->
        Service.Server.serve_channels server server_ic server_oc;
        close_out_noerr server_oc;
        close_in_noerr server_ic)
      ()
  in
  let client_oc = Unix.out_channel_of_descr req_write in
  let client_ic = Unix.in_channel_of_descr resp_read in
  let t0 = Unix.gettimeofday () in
  (* Per-request service latency: stamp each line as it is enqueued and
     match responses back by their echoed "id" (workers > 1 may answer
     out of order). *)
  let sent = Array.make (max n 1) t0 in
  List.iteri
    (fun i line ->
      output_string client_oc line;
      output_char client_oc '\n';
      sent.(i) <- Unix.gettimeofday ())
    lines;
  close_out client_oc;
  let ok = ref 0 and hits = ref 0 in
  let latencies = ref [] in
  for _ = 1 to n do
    let line = input_line client_ic in
    let now = Unix.gettimeofday () in
    match Service.Jsonl.of_string line with
    | Error _ -> ()
    | Ok json ->
      let flag key =
        Option.bind (Service.Jsonl.member key json) Service.Jsonl.to_bool
        = Some true
      in
      if flag "ok" then incr ok;
      if flag "cache_hit" then incr hits;
      (match
         Option.bind (Service.Jsonl.member "id" json) Service.Jsonl.to_int
       with
      | Some id when id >= 0 && id < n ->
        latencies := ((now -. sent.(id)) *. 1000.) :: !latencies
      | Some _ | None -> ())
  done;
  let wall = Unix.gettimeofday () -. t0 in
  Thread.join thread;
  close_in_noerr client_ic;
  (!ok, !hits, wall, !latencies)

let service () =
  section
    "Service throughput (PR 2): NDJSON requests through the stdio server, \
     cold vs warm plan cache";
  let lines = service_lines () in
  let n = List.length lines in
  let worker_counts =
    let d = Mdst.Par.default_domains () in
    if d > 1 then [ 1; d ] else [ 1 ]
  in
  let rows =
    List.concat_map
      (fun workers ->
        (* One fresh server per repetition, so every cold phase really
           is cold; phase samples are pooled across repetitions. *)
        let runs =
          List.init bench_reps (fun _ ->
              let server =
                Service.Server.create ~workers ~cache_capacity:(2 * n) ()
              in
              let cold = stream_requests server lines in
              let warm = stream_requests server lines in
              Service.Server.stop server;
              (cold, warm))
        in
        let phase name select =
          let ok, hits, wall, latencies =
            List.fold_left
              (fun (ok, hits, wall, lats) run ->
                let o, h, w, l = select run in
                (ok + o, hits + h, wall +. w, List.rev_append l lats))
              (0, 0, 0., []) runs
          in
          let requests = n * bench_reps in
          service_results :=
            (workers, name, requests, wall, latencies) :: !service_results;
          [
            i2s workers; name; i2s requests; i2s ok; i2s hits;
            Printf.sprintf "%.4f" wall;
            Printf.sprintf "%.0f" (float_of_int requests /. wall);
            Printf.sprintf "%.2f" (percentile 50. latencies);
            Printf.sprintf "%.2f" (percentile 95. latencies);
            Printf.sprintf "%.2f" (percentile 99. latencies);
          ]
        in
        [ phase "cold" fst; phase "warm" snd ])
      worker_counts
  in
  print_string
    (Mdst.Report.table
       ~header:
         [
           "workers"; "cache"; "requests"; "ok"; "hits"; "wall s"; "req/s";
           "p50 ms"; "p95 ms"; "p99 ms";
         ]
       ~rows);
  if bench_reps > 1 then
    Printf.printf "(%d repetitions pooled per phase; DMF_BENCH_REPS)\n"
      bench_reps

(* ------------------------------------------------------------------ *)
(* WAL durability tax: throughput vs fsync batch size (PR 5)           *)

let wal () =
  section
    "WAL durability (PR 5): cold-cache request throughput vs fsync batch \
     size (single worker; every_n = 1 syncs before each response)";
  let lines = service_lines () in
  let n = List.length lines in
  let with_temp_dir f =
    let dir = Filename.temp_dir "dmfd-bench-wal" "" in
    Fun.protect
      ~finally:(fun () ->
        Array.iter
          (fun name ->
            try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
          (try Sys.readdir dir with Sys_error _ -> [||]);
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
      (fun () -> f dir)
  in
  (* every_n < 0 is the no-WAL baseline; 0 never syncs on count (the
     one outstanding close-time sync remains); larger batches amortise
     the fsync over more journal records. *)
  let run_mode every_n =
    if every_n < 0 then begin
      let server = Service.Server.create ~workers:1 ~cache_capacity:(2 * n) () in
      let ok, _hits, wall, latencies = stream_requests server lines in
      Service.Server.stop server;
      ("off", 0, ok, wall, 0, latencies)
    end
    else
      with_temp_dir (fun dir ->
        let config =
          {
            Durable.Manager.dir;
            fsync = { Durable.Wal.every_n; every_ms = 0. };
            snapshot_every = 0;
            cache_capacity = 2 * n;
          }
        in
        let manager, _recovery = Durable.Manager.start config in
        let server =
          Service.Server.create ~workers:1 ~cache_capacity:(2 * n)
            ~on_accept:(Durable.Manager.on_accept manager)
            ~on_complete:(fun ~spec ~requests ~ok ->
              Durable.Manager.on_complete manager ~spec ~requests ~ok)
            ()
        in
        let ok, _hits, wall, latencies = stream_requests server lines in
        Service.Server.stop server;
        let fsyncs = Durable.Manager.fsyncs manager in
        Durable.Manager.close manager;
        ("wal", every_n, ok, wall, fsyncs, latencies))
  in
  (* Discarded warm-up pass: the first server to plan the corpus pays
     page-fault and allocator warm-up that would be misread as WAL cost
     (or savings) for whichever mode happens to run first. *)
  ignore (run_mode (-1));
  let rows =
    List.map
      (fun every_n ->
        (* Repetitions pool their latency samples and sum wall time. *)
        let runs = List.init bench_reps (fun _ -> run_mode every_n) in
        let mode, every_n, _, _, _, _ = List.hd runs in
        let ok, wall, fsyncs, latencies =
          List.fold_left
            (fun (ok, wall, fsyncs, lats) (_, _, o, w, f, l) ->
              (ok + o, wall +. w, fsyncs + f, List.rev_append l lats))
            (0, 0., 0, []) runs
        in
        let requests = n * bench_reps in
        wal_results :=
          (mode, every_n, requests, wall, fsyncs, latencies) :: !wal_results;
        [
          mode; i2s every_n; i2s requests; i2s ok; i2s fsyncs;
          Printf.sprintf "%.4f" wall;
          Printf.sprintf "%.0f" (float_of_int requests /. wall);
          Printf.sprintf "%.2f" (percentile 50. latencies);
          Printf.sprintf "%.2f" (percentile 95. latencies);
          Printf.sprintf "%.2f" (percentile 99. latencies);
        ])
      [ -1; 1; 8; 64; 256 ]
  in
  print_string
    (Mdst.Report.table
       ~header:
         [
           "mode"; "fsync n"; "requests"; "ok"; "fsyncs"; "wall s"; "req/s";
           "p50 ms"; "p95 ms"; "p99 ms";
         ]
       ~rows);
  print_string
    "\n(each mode streams the same cold corpus through a fresh server; the\n\
    \ journal records two lines per request — accepted + completed — so\n\
    \ strict mode pays ~2 fsyncs per response)\n";
  (* Group commit (PR 10): the WAL alone, strict durability, concurrent
     committers — no planning cost in the way.  "serial" emulates the
     PR 5 discipline (append + fsync under one global lock, one fsync
     per record, which is what committing under the manager lock
     amounted to); "group" is the commit queue, where concurrent
     committers share the leader's fsync; "unsynced" bounds what the
     device allows with no durability at all.  When serial already runs
     at unsynced speed (tmpfs, battery-backed write cache) an fsync is
     nearly free and there is nothing for batching to win — the CI gate
     uses the unsynced row to detect that and stand down. *)
  section
    "Group commit (PR 10): strict WAL records/s, serialized fsync-per-record \
     vs shared leader fsync";
  let total_records = 1200 * bench_reps in
  let record =
    Durable.Record.Accepted
      {
        Service.Request.ratio = pcr16;
        demand = 8;
        algorithm = Mixtree.Algorithm.MM;
        scheduler = Mdst.Scheduler.srs;
        mixers = Some 3;
        storage_limit = None;
      }
  in
  let run_gc mode threads =
    with_temp_dir (fun dir ->
        let fsync =
          match mode with
          | `Unsynced -> { Durable.Wal.every_n = 0; every_ms = 0. }
          | `Serial | `Group -> Durable.Wal.strict
        in
        let wal = Durable.Wal.open_segment ~dir ~start_seq:1 ~fsync in
        let append_lock = Mutex.create () in
        let serial_lock = Mutex.create () in
        let per_thread = total_records / threads in
        let[@dmflint.allow
             "blocking-under-lock: the serial baseline exists to measure \
              exactly this anti-pattern — one fsync per record under a \
              global lock, the PR 5 discipline the commit queue replaced; \
              the lock is bench-local and guards nothing else"] worker () =
          for _ = 1 to per_thread do
            match mode with
            | `Serial ->
              (* One fsync per record, fully serialized: PR 5. *)
              Mutex.lock serial_lock;
              ignore (Durable.Wal.append wal record);
              Durable.Wal.sync wal;
              Mutex.unlock serial_lock
            | `Group ->
              let seq =
                Mutex.lock append_lock;
                let seq = Durable.Wal.append wal record in
                Mutex.unlock append_lock;
                seq
              in
              Durable.Wal.commit wal ~upto:seq
            | `Unsynced ->
              Mutex.lock append_lock;
              ignore (Durable.Wal.append wal record);
              Mutex.unlock append_lock
          done
        in
        let t0 = Unix.gettimeofday () in
        let ths = List.init threads (fun _ -> Thread.create worker ()) in
        List.iter Thread.join ths;
        let wall = Unix.gettimeofday () -. t0 in
        let fsyncs = Durable.Wal.fsyncs wal in
        let gcs = Durable.Wal.group_commits wal in
        let avg_batch = Durable.Wal.avg_batch_size wal in
        Durable.Wal.close wal;
        let records = per_thread * threads in
        let name =
          match mode with
          | `Serial -> "serial"
          | `Group -> "group"
          | `Unsynced -> "unsynced"
        in
        group_commit_results :=
          (name, threads, records, wall, fsyncs, gcs, avg_batch)
          :: !group_commit_results;
        [
          name; i2s threads; i2s records; i2s fsyncs; i2s gcs;
          Printf.sprintf "%.2f" avg_batch;
          Printf.sprintf "%.4f" wall;
          Printf.sprintf "%.0f" (float_of_int records /. wall);
        ])
  in
  let gc_rows =
    List.map
      (fun (mode, threads) -> run_gc mode threads)
      [
        (`Unsynced, 4);
        (`Serial, 1); (`Serial, 4);
        (`Group, 1); (`Group, 4); (`Group, 16);
      ]
  in
  print_string
    (Mdst.Report.table
       ~header:
         [
           "mode"; "threads"; "records"; "fsyncs"; "group commits";
           "avg batch"; "wall s"; "rec/s";
         ]
       ~rows:gc_rows);
  print_string
    "\n(every row journals the same records with strict durability except\n\
    \ unsynced; serial holds a global lock across append + fsync, group\n\
    \ lets concurrent committers ride one leader fsync — compare the\n\
    \ 4-thread rows for the batching win at equal offered concurrency)\n"

(* ------------------------------------------------------------------ *)
(* Plan store: table3-style sweep, cold vs warm (PR 9)                 *)

(* The same workload as table3 — the subsampled corpus under the
   streamed algorithms — but routed through the content-addressed plan
   store: the cold pass plans every spec and persists it, the warm pass
   answers every spec from disk.  The gap between the two passes is the
   planning work a restarted or sibling daemon skips when it shares the
   store directory. *)

let store () =
  section
    "Plan store (PR 9): table3-style corpus sweep, cold (plan + persist) vs \
     warm (decoded from the content-addressed store)";
  let specs =
    List.concat_map
      (fun ratio ->
        List.concat_map
          (fun algorithm ->
            List.map
              (fun scheduler ->
                {
                  Service.Request.ratio;
                  demand = 32;
                  algorithm;
                  scheduler;
                  mixers = None;
                  storage_limit = None;
                })
              [ Mdst.Scheduler.mms; Mdst.Scheduler.srs ])
          [ Mixtree.Algorithm.MM; Mixtree.Algorithm.RMA ])
      (corpus ~every:8)
  in
  let n = List.length specs in
  let with_temp_dir f =
    let dir = Filename.temp_dir "dmfd-bench-store" "" in
    Fun.protect
      ~finally:(fun () ->
        Array.iter
          (fun name ->
            try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
          (try Sys.readdir dir with Sys_error _ -> [||]);
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
      (fun () -> f dir)
  in
  with_temp_dir (fun dir ->
      let ps = Durable.Plan_store.open_store ~dir () in
      (* Both passes run the daemon's store-first protocol: a hit is
         served from disk, a miss is planned and written through. *)
      let run_pass () =
        let t0 = Unix.gettimeofday () in
        List.iter
          (fun spec ->
            match Durable.Plan_store.find ps spec with
            | Some _ -> ()
            | None -> Durable.Plan_store.add ps spec (Service.Prep.run spec))
          specs;
        Unix.gettimeofday () -. t0
      in
      let cold_s = run_pass () in
      let after_cold = Durable.Plan_store.stats ps in
      let warm_s = run_pass () in
      let s = Durable.Plan_store.stats ps in
      let warm_hits = s.Durable.Plan_store.hits - after_cold.Durable.Plan_store.hits in
      plan_store_result :=
        Some
          ( n, cold_s, warm_s, warm_hits, s.Durable.Plan_store.writes,
            s.Durable.Plan_store.entries, s.Durable.Plan_store.bytes );
      let row phase wall hits =
        [
          phase; i2s n; i2s hits;
          Printf.sprintf "%.4f" wall;
          Printf.sprintf "%.0f" (float_of_int n /. wall);
        ]
      in
      print_string
        (Mdst.Report.table
           ~header:[ "pass"; "specs"; "store hits"; "wall s"; "specs/s" ]
           ~rows:
             [
               row "cold" cold_s after_cold.Durable.Plan_store.hits;
               row "warm" warm_s warm_hits;
             ]);
      Printf.printf
        "\n(warm/cold speedup %.1fx over %d entries, %d bytes on disk; the\n\
        \ warm pass decodes and re-validates every plan instead of\n\
        \ re-planning it)\n"
        (if warm_s > 0. then cold_s /. warm_s else 0.)
        s.Durable.Plan_store.entries s.Durable.Plan_store.bytes)

(* ------------------------------------------------------------------ *)
(* Cluster throughput: dmfrouter over N dmfd shards (PR 7)             *)

(* Spawns real dmfd/dmfrouter processes, so it must run before any
   experiment that creates worker domains: OCaml 5 forbids Unix.fork
   once a domain has ever been spawned.  The experiment registry lists
   it first for exactly that reason.

   Topology per row: C pipelined client connections stream the corpus
   (every key duplicated on every connection) against either one daemon
   directly or a dmfrouter over N single-worker shards.  Cold replays
   plan, warm replays hit the plan cache.  The exactness invariant —
   the whole cluster builds exactly one plan per distinct cache key,
   i.e. sharding by coalesce key loses no coalescing or caching — is
   asserted on the merged stats after both phases.  Throughput scales
   with physical cores; the recorded "cores" field says what this box
   had. *)

let cluster () =
  section
    "Cluster (PR 7): req/s vs shard count through dmfrouter, cold and warm, \
     8 pipelined client connections (single-worker shards)";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let bindir = Filename.concat (Filename.dirname (Filename.dirname Sys.executable_name)) "bin" in
  let dmfd = Filename.concat bindir "dmfd.exe" in
  let dmfrouter = Filename.concat bindir "dmfrouter.exe" in
  if not (Sys.file_exists dmfd && Sys.file_exists dmfrouter) then
    Printf.printf "skipped: %s not built alongside the bench executable\n"
      bindir
  else begin
    let lines =
      List.mapi
        (fun i ratio ->
          Printf.sprintf {|{"req": "prepare", "ratio": "%s", "D": 32, "id": %d}|}
            (Dmf.Ratio.to_string ratio) i)
        (corpus ~every:131)
    in
    let n = List.length lines in
    let conns = 8 in
    (* Launch one process, reading its PORT=<port> announcement from
       stdout; stderr logs go to /dev/null.  The announcement doubles
       as the readiness barrier: it is printed after listen(2). *)
    let spawn prog argv =
      let out_read, out_write = Unix.pipe () in
      let devnull = Unix.openfile "/dev/null" [ Unix.O_RDWR ] 0 in
      Analysis.Runtime.assert_no_domains_spawned ();
      let pid = Unix.create_process prog argv devnull out_write devnull in
      Unix.close out_write;
      Unix.close devnull;
      let ic = Unix.in_channel_of_descr out_read in
      let port =
        match input_line ic with
        | line when String.length line > 5 && String.sub line 0 5 = "PORT=" ->
          int_of_string (String.sub line 5 (String.length line - 5))
        | line -> failwith (prog ^ ": expected PORT=<n>, got " ^ line)
        | exception End_of_file -> failwith (prog ^ " died before announcing its port")
      in
      (pid, ic, port)
    in
    let reap (pid, ic, _port) =
      (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] pid);
      close_in_noerr ic
    in
    (* One phase: every connection pipelines the whole corpus and reads
       its responses back; per-request latency is matched by echoed id
       within the connection. *)
    let stream_phase port =
      let t0 = Unix.gettimeofday () in
      let per_conn = Array.make conns (0, 0, []) in
      let threads =
        List.init conns (fun ci ->
            Thread.create
              (fun () ->
                let fd = Service.Net.connect ~host:"127.0.0.1" ~port in
                (try Unix.setsockopt fd Unix.TCP_NODELAY true
                 with Unix.Unix_error _ -> ());
                let oc = Unix.out_channel_of_descr fd in
                let ic = Unix.in_channel_of_descr fd in
                let sent = Array.make (max n 1) t0 in
                List.iteri
                  (fun i line ->
                    output_string oc line;
                    output_char oc '\n';
                    sent.(i) <- Unix.gettimeofday ())
                  lines;
                flush oc;
                let ok = ref 0 and hits = ref 0 in
                let latencies = ref [] in
                for _ = 1 to n do
                  let line = input_line ic in
                  let now = Unix.gettimeofday () in
                  match Service.Jsonl.of_string line with
                  | Error _ -> ()
                  | Ok json ->
                    let flag key =
                      Option.bind (Service.Jsonl.member key json)
                        Service.Jsonl.to_bool
                      = Some true
                    in
                    if flag "ok" then incr ok;
                    if flag "cache_hit" then incr hits;
                    (match
                       Option.bind (Service.Jsonl.member "id" json)
                         Service.Jsonl.to_int
                     with
                    | Some id when id >= 0 && id < n ->
                      latencies :=
                        ((now -. sent.(id)) *. 1000.) :: !latencies
                    | Some _ | None -> ())
                done;
                (try Unix.close fd with Unix.Unix_error _ -> ());
                per_conn.(ci) <- (!ok, !hits, !latencies))
              ())
      in
      List.iter Thread.join threads;
      let wall = Unix.gettimeofday () -. t0 in
      let ok, hits, latencies =
        Array.fold_left
          (fun (ok, hits, lats) (o, h, l) ->
            (ok + o, hits + h, List.rev_append l lats))
          (0, 0, []) per_conn
      in
      (ok, hits, wall, latencies)
    in
    (* (served, plans_built, coalesced, cache hits) from the endpoint's
       stats — the single daemon's own, or the router's cluster-wide
       merge (counters summed over shards). *)
    let fetch_counters port =
      let fd = Service.Net.connect ~host:"127.0.0.1" ~port in
      let oc = Unix.out_channel_of_descr fd in
      let ic = Unix.in_channel_of_descr fd in
      output_string oc "{\"req\":\"stats\"}\n";
      flush oc;
      let counters =
        match Service.Jsonl.of_string (input_line ic) with
        | Ok json ->
          let geti name obj =
            Option.value ~default:0
              (Option.bind (Service.Jsonl.member name obj) Service.Jsonl.to_int)
          in
          ( geti "served" json,
            geti "plans_built" json,
            geti "coalesced" json,
            match Service.Jsonl.member "cache" json with
            | Some cache -> geti "hits" cache
            | None -> 0 )
        | Error _ -> (0, 0, 0, 0)
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      counters
    in
    let run_config label nshards =
      let shards =
        List.init nshards (fun _ ->
            spawn dmfd
              [| dmfd; "--port"; "0"; "-w"; "1"; "--cache-capacity"; i2s (2 * n) |])
      in
      let router =
        if label = "direct" then None
        else
          Some
            (spawn dmfrouter
               (Array.of_list
                  ([ dmfrouter; "--port"; "0" ]
                  @ List.concat_map
                      (fun (_, _, port) ->
                        [ "--shard"; Printf.sprintf "127.0.0.1:%d" port ])
                      shards)))
      in
      let front =
        match router with
        | Some (_, _, port) -> port
        | None -> (match shards with (_, _, port) :: _ -> port | [] -> 0)
      in
      let cold = stream_phase front in
      let warm = stream_phase front in
      let served, plans, coalesced, hits = fetch_counters front in
      (* The accounting identity that keeps the numbers honest: every
         request the cluster served was exactly one of freshly planned,
         merged into a concurrent batch (demand-summing coalescing), or
         answered from the plan cache — summed over shards with nothing
         lost and nothing double-counted.  (The split between the three
         is scheduling-dependent; the sum is not.) *)
      if served <> plans + coalesced + hits then cluster_plans_exact := false;
      Option.iter reap router;
      List.iter reap shards;
      let row phase (ok, hits, wall, latencies) =
        let requests = n * conns in
        cluster_results :=
          (label, nshards, phase, requests, wall, ok, latencies)
          :: !cluster_results;
        [
          label; i2s nshards; phase; i2s requests; i2s ok; i2s hits;
          i2s plans;
          Printf.sprintf "%.4f" wall;
          Printf.sprintf "%.0f" (float_of_int requests /. wall);
          Printf.sprintf "%.2f" (percentile 50. latencies);
          Printf.sprintf "%.2f" (percentile 95. latencies);
          Printf.sprintf "%.2f" (percentile 99. latencies);
        ]
      in
      [ row "cold" cold; row "warm" warm ]
    in
    let rows =
      List.concat
        [
          run_config "direct" 1;
          run_config "router" 1;
          run_config "router" 2;
          run_config "router" 4;
        ]
    in
    print_string
      (Mdst.Report.table
         ~header:
           [
             "config"; "shards"; "cache"; "requests"; "ok"; "hits"; "plans";
             "wall s"; "req/s"; "p50 ms"; "p95 ms"; "p99 ms";
           ]
         ~rows);
    Printf.printf
      "\n(plans = cluster-wide plans_built after both phases: %d distinct\n\
      \ keys over %d connections; concurrent duplicates either coalesce\n\
      \ into demand-summed batches or hit the plan cache, and the merged\n\
      \ accounting identity served = plans + coalesced + hits held for\n\
      \ every configuration: %s.  Sharding is by coalesce key, so equal\n\
      \ keys always meet in one daemon.  Shard processes are\n\
      \ single-worker; req/s scaling needs cores — this box has %d.)\n"
      n conns
      (if !cluster_plans_exact then "exact" else "VIOLATED")
      (Domain.recommended_domain_count ())
  end

(* ------------------------------------------------------------------ *)
(* Replication: follower backlog catch-up and live-tail lag (PR 10)    *)

(* An in-process primary (manager + feed on an ephemeral port) and a
   real follower: the backlog phase measures how fast a fresh follower
   streams and applies a journal it has never seen; the live phase
   journals while the follower is connected and samples how far it
   trails.  Specs cycle over a handful of distinct ratios so the
   follower's cache-priming replan cost is paid once per ratio and
   streaming dominates — this measures the pipe, not the planner. *)

let replication () =
  section
    "Replication (PR 10): follower backlog catch-up rate and live-tail lag";
  let with_temp_dir f =
    let dir = Filename.temp_dir "dmfd-bench-repl" "" in
    Fun.protect
      ~finally:(fun () ->
        Array.iter
          (fun name ->
            try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
          (try Sys.readdir dir with Sys_error _ -> [||]);
        try Unix.rmdir dir with Unix.Unix_error _ -> ())
      (fun () -> f dir)
  in
  let specs =
    List.filteri
      (fun i _ -> i < 4)
      (List.map
         (fun ratio ->
           {
             Service.Request.ratio;
             demand = 8;
             algorithm = Mixtree.Algorithm.MM;
             scheduler = Mdst.Scheduler.srs;
             mixers = Some 3;
             storage_limit = None;
           })
         (corpus ~every:40))
  in
  let nspecs = List.length specs in
  let spec i = List.nth specs (i mod nspecs) in
  with_temp_dir (fun primary_dir ->
      with_temp_dir (fun follower_dir ->
          (* The primary journals with a relaxed batch policy: this
             experiment measures the feed and the follower, not the
             primary's own fsyncs. *)
          let manager, _ =
            Durable.Manager.start
              {
                Durable.Manager.dir = primary_dir;
                fsync = { Durable.Wal.every_n = 64; every_ms = 0. };
                snapshot_every = 0;
                cache_capacity = 64;
              }
          in
          let feed =
            Replication.Feed.create
              {
                Replication.Feed.dir = primary_dir;
                last_seq = (fun () -> Durable.Manager.last_seq manager);
                fetch_plan = (fun _ -> None);
              }
          in
          Durable.Manager.subscribe_journal manager
            (Replication.Feed.notify feed);
          let m = Mutex.create () in
          let cv = Condition.create () in
          let port = ref 0 in
          ignore
            (Thread.create
               (fun () ->
                 try
                   Replication.Feed.serve_tcp feed
                     ~on_listen:(fun bound ->
                       Mutex.lock m;
                       port := bound;
                       Condition.signal cv;
                       Mutex.unlock m)
                     ~host:"127.0.0.1" ~port:0
                 with _ -> ())
               ());
          Mutex.lock m;
          while !port = 0 do
            Condition.wait cv m
          done;
          let port = !port in
          Mutex.unlock m;
          let journal s =
            Durable.Manager.on_accept manager s;
            Durable.Manager.on_complete manager ~spec:s ~requests:1 ~ok:true
          in
          let await what pred =
            let deadline = Unix.gettimeofday () +. 120. in
            while (not (pred ())) && Unix.gettimeofday () < deadline do
              Thread.delay 0.001
            done;
            if not (pred ()) then failwith ("replication bench: " ^ what)
          in
          (* Backlog: the journal exists before the follower does. *)
          let backlog_specs = 400 * bench_reps in
          for i = 1 to backlog_specs do
            journal (spec i)
          done;
          let backlog_records = 2 * backlog_specs in
          let follower =
            Replication.Follower.create
              {
                Replication.Follower.host = "127.0.0.1";
                port;
                dir = follower_dir;
                cache_capacity = 64;
                queue_capacity = 64;
                workers = Some 1;
                fsync = { Durable.Wal.every_n = 0; every_ms = 0. };
                snapshot_every = 0;
                store = None;
                fetch_plans = false;
                reconnect_ms = 50.;
              }
          in
          let t0 = Unix.gettimeofday () in
          Replication.Follower.start follower;
          await "backlog catch-up timed out" (fun () ->
              Replication.Follower.last_applied follower >= backlog_records);
          let backlog_s = Unix.gettimeofday () -. t0 in
          (* Live tail: journal with the follower connected, sampling
             how many records it trails the primary by. *)
          let live_specs = 400 * bench_reps in
          let max_lag = ref 0 in
          let t1 = Unix.gettimeofday () in
          for i = 1 to live_specs do
            journal (spec i);
            let lag =
              Durable.Manager.last_seq manager
              - Replication.Follower.last_applied follower
            in
            if lag > !max_lag then max_lag := lag
          done;
          let live_records = 2 * live_specs in
          await "live tail catch-up timed out" (fun () ->
              Replication.Follower.last_applied follower
              >= backlog_records + live_records);
          let live_s = Unix.gettimeofday () -. t1 in
          let max_lag_ms =
            match
              Option.bind
                (Service.Jsonl.member "lag_ms"
                   (Replication.Follower.repl_json follower))
                Service.Jsonl.to_float
            with
            | Some v -> Float.max 0. v
            | None -> 0.
          in
          replication_result :=
            Some
              ( backlog_records, backlog_s, live_records, live_s, !max_lag,
                max_lag_ms );
          print_string
            (Mdst.Report.table
               ~header:[ "phase"; "records"; "wall s"; "rec/s"; "max lag" ]
               ~rows:
                 [
                   [
                     "backlog"; i2s backlog_records;
                     Printf.sprintf "%.4f" backlog_s;
                     Printf.sprintf "%.0f"
                       (float_of_int backlog_records /. backlog_s);
                     "-";
                   ];
                   [
                     "live"; i2s live_records;
                     Printf.sprintf "%.4f" live_s;
                     Printf.sprintf "%.0f"
                       (float_of_int live_records /. live_s);
                     i2s !max_lag;
                   ];
                 ]);
          Printf.printf
            "\n(backlog: a fresh follower streams a journal it has never\n\
            \ seen; live: the primary journals while the follower applies —\n\
            \ max lag is the worst records-behind sampled after each\n\
            \ journaled spec; residual heartbeat lag %.3f ms)\n"
            max_lag_ms;
          Replication.Follower.close follower;
          Replication.Feed.stop feed;
          Durable.Manager.close manager))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one Test.make per experiment workload    *)

let speed () =
  section "Bechamel micro-benchmarks (ns per run, OLS on monotonic clock)";
  let open Bechamel in
  let forest demand () =
    ignore
      (Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr16 ~demand)
  in
  let ex1 = (List.hd Bioproto.Protocols.table2).Bioproto.Protocols.ratio in
  let plan20 =
    Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr16 ~demand:20
  in
  let schedule20 = Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan:plan20 ~mixers:3 in
  (* Deep, wide plans (d = 6 and d = 8, hundreds of nodes) exercise the
     event-driven schedulers where the old per-cycle rescan was O(n·Tc);
     the retained naive reference runs next to them so the speedup is
     measured, not assumed. *)
  let plan_d6 =
    Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM
      ~ratio:(Bioproto.Protocols.pcr ~d:6) ~demand:256
  in
  let plan_d8 =
    Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM
      ~ratio:(Dmf.Ratio.of_string "128:123:5") ~demand:512
  in
  let layout = Chip.Layout.pcr_fig5 () in
  let tests =
    Test.make_grouped ~name:"dmfstream"
      [
        Test.make ~name:"fig1: forest D=20" (Staged.stage (forest 20));
        Test.make ~name:"sched d=6 n=280: MMS event-driven"
          (Staged.stage (fun () ->
               ignore (Mdst.Scheduler.schedule Mdst.Scheduler.mms ~plan:plan_d6 ~mixers:4)));
        Test.make ~name:"sched d=6 n=280: MMS naive rescan"
          (Staged.stage (fun () ->
               ignore (Mdst.Naive.mms ~plan:plan_d6 ~mixers:4)));
        Test.make ~name:"sched d=6 n=280: SRS event-driven"
          (Staged.stage (fun () ->
               ignore (Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan:plan_d6 ~mixers:4)));
        Test.make ~name:"sched d=6 n=280: SRS naive rescan"
          (Staged.stage (fun () ->
               ignore (Mdst.Naive.srs ~plan:plan_d6 ~mixers:4)));
        Test.make ~name:"sched d=8 n=510: MMS event-driven"
          (Staged.stage (fun () ->
               ignore (Mdst.Scheduler.schedule Mdst.Scheduler.mms ~plan:plan_d8 ~mixers:4)));
        Test.make ~name:"sched d=8 n=510: MMS naive rescan"
          (Staged.stage (fun () ->
               ignore (Mdst.Naive.mms ~plan:plan_d8 ~mixers:4)));
        Test.make ~name:"sched d=8 n=510: SRS event-driven"
          (Staged.stage (fun () ->
               ignore (Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan:plan_d8 ~mixers:4)));
        Test.make ~name:"sched d=8 n=510: SRS naive rescan"
          (Staged.stage (fun () ->
               ignore (Mdst.Naive.srs ~plan:plan_d8 ~mixers:4)));
        Test.make ~name:"sched d=6 n=280: OMS event-driven"
          (Staged.stage (fun () ->
               ignore (Mdst.Scheduler.schedule Mdst.Scheduler.oms ~plan:plan_d6 ~mixers:4)));
        Test.make ~name:"sched d=6 n=280: OMS naive rescan"
          (Staged.stage (fun () ->
               ignore (Mdst.Naive.oms ~plan:plan_d6 ~mixers:4)));
        Test.make ~name:"fig3: SRS schedule D=20"
          (Staged.stage (fun () ->
               ignore (Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan:plan20 ~mixers:3)));
        Test.make ~name:"fig3: MMS schedule D=20"
          (Staged.stage (fun () ->
               ignore (Mdst.Scheduler.schedule Mdst.Scheduler.mms ~plan:plan20 ~mixers:3)));
        Test.make ~name:"fig5: actuation accounting"
          (Staged.stage (fun () ->
               ignore
                 (Chip.Actuation.account ~layout ~plan:plan20
                    ~schedule:schedule20)));
        Test.make ~name:"table2: Ex.1 MM+SRS evaluation"
          (Staged.stage (fun () ->
               ignore
                 (Mdst.Compare.evaluate ~ratio:ex1 ~demand:32
                    (Mdst.Compare.Streamed
                       (Mixtree.Algorithm.MM, Mdst.Scheduler.srs)))));
        Test.make ~name:"table3: one corpus ratio, all schemes"
          (Staged.stage (fun () ->
               ignore
                 (Mdst.Compare.average_improvements
                    ~ratios:[ Dmf.Ratio.of_string "9:5:7:11" ] ~demand:32
                    Mixtree.Algorithm.MM)));
        Test.make ~name:"fig6: one (ratio, D) cell"
          (Staged.stage (fun () ->
               ignore
                 (Mdst.Compare.evaluate
                    ~ratio:(Dmf.Ratio.of_string "9:5:7:11") ~demand:16
                    (Mdst.Compare.Repeated Mixtree.Algorithm.MM))));
        Test.make ~name:"fig7: MMS across mixer counts"
          (Staged.stage (fun () ->
               List.iter
                 (fun mixers -> ignore (Mdst.Scheduler.schedule Mdst.Scheduler.mms ~plan:plan20 ~mixers))
                 [ 1; 3; 5; 7; 9; 11; 13; 15 ]));
        Test.make ~name:"table4: streaming run q'=3 D=32"
          (Staged.stage (fun () ->
               ignore
                 (Mdst.Streaming.run ~algorithm:Mixtree.Algorithm.MM
                    ~ratio:pcr16 ~demand:32 ~mixers:3 ~storage_limit:3
                    ~scheduler:Mdst.Scheduler.srs ())));
        Test.make ~name:"simulator: PCR D=20 full run"
          (Staged.stage (fun () ->
               ignore
                 (Sim.Executor.run ~layout ~plan:plan20 ~schedule:schedule20)));
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let ns =
        match Analyze.OLS.estimates ols_result with
        | Some (ns :: _) ->
          micro_ns := (name, ns) :: !micro_ns;
          Printf.sprintf "%.0f" ns
        | Some [] | None -> "n/a"
      in
      rows := [ name; ns ] :: !rows)
    results;
  print_string
    (Mdst.Report.table ~header:[ "workload"; "ns/run" ]
       ~rows:(List.sort compare !rows))

(* ------------------------------------------------------------------ *)
(* Scheduler core: every registered policy, with instrumentation hooks *)

let instrument () =
  section "Scheduler core: registered policies under instrumentation";
  let plans =
    [
      ( "pcr16 D=20 Mc=3", 3,
        Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr16
          ~demand:20 );
      ( "pcr d=6 D=64 Mc=4", 4,
        Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM
          ~ratio:(Bioproto.Protocols.pcr ~d:6) ~demand:64 );
    ]
  in
  let rows =
    List.concat_map
      (fun (plan_name, mixers, plan) ->
        List.map
          (fun s ->
            let hooks, counters = Mdst.Instr.collector ~mixers in
            let schedule =
              Mdst.Scheduler.schedule ~instr:hooks s ~plan ~mixers
            in
            let c = counters () in
            scheduler_core_results :=
              (Mdst.Scheduler.name s, plan_name, c)
              :: !scheduler_core_results;
            [
              plan_name;
              Mdst.Scheduler.name s;
              i2s (Mdst.Schedule.completion_time schedule);
              i2s (Mdst.Storage.units ~plan schedule);
              i2s c.Mdst.Instr.fired;
              i2s c.Mdst.Instr.stores;
              i2s c.Mdst.Instr.peak_ready;
              Printf.sprintf "%.2f" c.Mdst.Instr.avg_storage;
              Printf.sprintf "%.2f" c.Mdst.Instr.mixer_occupancy;
            ])
          (Mdst.Scheduler.all ()))
      plans
  in
  print_string
    (Mdst.Report.table
       ~header:
         [
           "plan"; "policy"; "Tc"; "q"; "fired"; "stores"; "peak rdy";
           "avg q"; "occupancy";
         ]
       ~rows)

(* ------------------------------------------------------------------ *)

let experiments =
  [
    (* cluster first: it forks daemon processes, which OCaml 5 forbids
       after any other experiment has spawned worker domains. *)
    ("cluster", cluster);
    ("replication", replication);
    ("fig1", fig1); ("fig3", fig3); ("fig5", fig5); ("table2", table2);
    ("table3", table3); ("fig6", fig6); ("fig7", fig7); ("table4", table4);
    ("ablation", ablation); ("dilution", dilution); ("robust", robust);
    ("assay", assay); ("pins", pins); ("routing", routing);
    ("recovery", recovery); ("wash", wash); ("pareto", pareto);
    ("scaling", scaling); ("instrument", instrument); ("service", service);
    ("wal", wal); ("store", store); ("speed", speed);
  ]

(* Tee fd 1 into [path]: everything the experiments print reaches both
   the terminal and the local transcript file.  Returns the restore
   function — putting the real stdout back closes the pipe's last write
   end, which ends the copier thread. *)
let start_tee path =
  let file = Unix.openfile path [ O_WRONLY; O_CREAT; O_TRUNC ] 0o644 in
  let pipe_read, pipe_write = Unix.pipe () in
  let real_stdout = Unix.dup Unix.stdout in
  Unix.dup2 pipe_write Unix.stdout;
  Unix.close pipe_write;
  let copier =
    Thread.create
      (fun () ->
        let buf = Bytes.create 65536 in
        let rec drain () =
          let k = Unix.read pipe_read buf 0 (Bytes.length buf) in
          if k > 0 then begin
            let rec write_all fd off =
              if off < k then write_all fd (off + Unix.write fd buf off (k - off))
            in
            write_all real_stdout 0;
            write_all file 0;
            drain ()
          end
        in
        (try drain () with Unix.Unix_error _ -> ());
        Unix.close pipe_read)
      ()
  in
  fun () ->
    flush Stdlib.stdout;
    Unix.dup2 real_stdout Unix.stdout;
    Thread.join copier;
    Unix.close real_stdout;
    Unix.close file

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> names
    | _ :: [] | [] -> List.map fst experiments
  in
  (* Validate the selection before redirecting stdout. *)
  List.iter
    (fun name ->
      if not (List.mem_assoc name experiments) then begin
        Printf.eprintf "unknown experiment %s (available: %s)\n" name
          (String.concat ", " (List.map fst experiments));
        exit 1
      end)
    requested;
  let restore = start_tee "bench_output.txt" in
  Fun.protect ~finally:restore (fun () ->
      List.iter
        (fun name ->
          let run = List.assoc name experiments in
          let t0 = Unix.gettimeofday () in
          run ();
          wall_times := (name, Unix.gettimeofday () -. t0) :: !wall_times)
        requested;
      write_bench_json ())
