(** The durable model of the daemon's in-memory state: which plans the
    LRU {!Service.Cache} holds (and in what recency order), and which
    accepted requests are still unanswered.

    Only request {e specs} are stored — never plans.  Planning is
    deterministic (every algorithm dispatches through the
    {!Mdst.Scheduler} registry), so recovery re-derives the plans by
    re-running {!Service.Prep.run}; the journal and snapshots stay
    small and version-independent of the plan representation.

    Applying the record stream in journal order reproduces the server's
    state exactly:
    - [Accepted spec] appends to the outstanding list (admission
      order);
    - [Completed _] discharges [requests] outstanding entries with the
      batch's coalesce key (oldest first) and, when [ok], touches the
      batch's cache key to most-recently-used — inserting it and
      evicting past capacity if it was absent.

    The structure is not thread-safe; {!Manager} serializes access. *)

type t

val create : cache_capacity:int -> t
(** Empty state.  [cache_capacity = 0] disables the cache model, the
    same convention as {!Service.Cache.create}. *)

val copy : t -> t

val restore :
  cache_capacity:int ->
  cache_mru:Service.Request.spec list ->
  outstanding:Service.Request.spec list ->
  t
(** Rebuild a state from serialized contents ({!Snapshot.load}).
    [cache_mru] is most-recently-used first; entries beyond the
    capacity are dropped from the LRU end, so a daemon restarted with a
    smaller cache keeps the hottest plans. *)

val apply : t -> Record.kind -> unit

val cache_specs : t -> Service.Request.spec list
(** Modeled cache contents, most recently used first — the same order
    {!Service.Cache.keys} reports. *)

val cache_keys : t -> string list
(** [Service.Request.cache_key] of {!cache_specs}, in the same order. *)

val outstanding : t -> Service.Request.spec list
(** Accepted-but-unanswered request specs, admission order. *)

val evictions : t -> int
(** Cache evictions the model performed (monotone). *)

val equal : t -> t -> bool
(** Same cache keys in the same recency order, and the same outstanding
    coalesce keys and demands in the same admission order. *)

val pp : Format.formatter -> t -> unit
