(* Nodes are enqueued in (level, tree, bfs) order — "from level l upwards"
   — and dequeued first-in first-out, Mc per time-cycle.

   Event-driven: a node enters the ready buffer exactly once, at the
   moment its pending-predecessor count hits zero (or immediately, for
   leaf-fed nodes), and the buffer is flushed into the FIFO queue at each
   admission point, sorted by (level, tree, bfs).  Because that order is
   total — (tree, bfs) identifies a node — each flushed batch is exactly
   the batch the original per-cycle full-plan rescan admitted, so the
   schedules are bit-identical to the {!Naive.mms} reference while the
   whole run costs O(n log n) instead of O(n·Tc). *)
let enqueue_order a b =
  let na = a.Plan.level and nb = b.Plan.level in
  match Int.compare na nb with
  | 0 -> (
    match Int.compare a.Plan.tree b.Plan.tree with
    | 0 -> Int.compare a.Plan.bfs b.Plan.bfs
    | c -> c)
  | c -> c

let schedule ~plan ~mixers =
  if mixers < 1 then invalid_arg "Mms.schedule: at least one mixer";
  let n = Plan.n_nodes plan in
  let cycles = Array.make n 0 in
  let mixer_of = Array.make n 0 in
  let pending = Array.init n (fun i -> Plan.pred_count plan i) in
  (* Nodes whose pending count reached zero since the last admission. *)
  let fresh = ref [] in
  for i = n - 1 downto 0 do
    if pending.(i) = 0 then fresh := Plan.node plan i :: !fresh
  done;
  let queue = Queue.create () in
  let admit () =
    match !fresh with
    | [] -> ()
    | batch ->
      fresh := [];
      List.iter
        (fun node -> Queue.push node queue)
        (List.sort enqueue_order batch)
  in
  let remaining = ref n in
  let depth = Dmf.Ratio.accuracy (Plan.ratio plan) in
  let run_cycle t =
    let launched = ref 0 in
    while !launched < mixers && not (Queue.is_empty queue) do
      let node = Queue.pop queue in
      incr launched;
      cycles.(node.Plan.id) <- t;
      mixer_of.(node.Plan.id) <- !launched;
      decr remaining;
      Plan.iter_successors plan node.Plan.id (fun c ->
          pending.(c) <- pending.(c) - 1;
          if pending.(c) = 0 then fresh := Plan.node plan c :: !fresh)
    done
  in
  let t = ref 0 in
  (* Phase 1: walk the levels of the forest, one time-cycle per level. *)
  for _level = 1 to depth do
    incr t;
    admit ();
    run_cycle !t
  done;
  (* Phase 2: drain the backlog, admitting newly schedulable nodes. *)
  let guard = ref (Schedule.no_progress_bound ~nodes:n ~depth) in
  while !remaining > 0 do
    decr guard;
    if !guard <= 0 then failwith "Mms.schedule: no progress (internal error)";
    incr t;
    admit ();
    run_cycle !t
  done;
  Schedule.create ~plan ~mixers ~cycles ~mixer_of
