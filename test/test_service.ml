(* The preparation server: JSON codec round-trips, admission-queue
   coalescing (the paper's demand aggregation), LRU plan-cache
   eviction, and an end-to-end stdio smoke with counter accounting. *)

open QCheck2

let pcr16 = Generators.pcr16

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)

let json_gen =
  let open Gen in
  let scalar =
    oneof
      [
        return Service.Jsonl.Null;
        map (fun b -> Service.Jsonl.Bool b) bool;
        map (fun i -> Service.Jsonl.Int i) (int_range (-1_000_000) 1_000_000);
        map (fun f -> Service.Jsonl.Float f) (float_range (-1e9) 1e9);
        map (fun s -> Service.Jsonl.String s) (string_size (int_range 0 12));
      ]
  in
  let key = string_size ~gen:(char_range 'a' 'z') (int_range 1 6) in
  fix
    (fun self depth ->
      if depth = 0 then scalar
      else
        frequency
          [
            (3, scalar);
            ( 1,
              map
                (fun vs -> Service.Jsonl.List vs)
                (list_size (int_range 0 4) (self (depth - 1))) );
            ( 1,
              map
                (fun kvs -> Service.Jsonl.Obj kvs)
                (list_size (int_range 0 4)
                   (pair key (self (depth - 1)))) );
          ])
    2

let prop_json_roundtrip =
  Generators.qtest ~count:500 "Jsonl round-trips any value it prints"
    json_gen
    (fun v -> Service.Jsonl.to_string v)
    (fun v ->
      match Service.Jsonl.of_string (Service.Jsonl.to_string v) with
      | Ok v' -> Service.Jsonl.equal v v'
      | Error _ -> false)

let spec_gen =
  let open Gen in
  Generators.ratio_gen >>= fun ratio ->
  Generators.demand_gen >>= fun demand ->
  Generators.algorithm_gen >>= fun algorithm ->
  oneofl [ Mdst.Scheduler.mms; Mdst.Scheduler.srs; Mdst.Scheduler.oms ] >>= fun scheduler ->
  opt (int_range 1 8) >>= fun mixers ->
  opt (int_range 1 12) >|= fun storage_limit ->
  { Service.Request.ratio; demand; algorithm; scheduler; mixers; storage_limit }

let spec_print (s : Service.Request.spec) = Service.Request.cache_key s

let prop_request_roundtrip =
  Generators.qtest ~count:300 "Request round-trips through its JSON encoding"
    spec_gen spec_print (fun spec ->
      let request =
        { Service.Request.id = Some (Service.Jsonl.Int 42); kind = Prepare spec }
      in
      match Service.Request.of_json (Service.Request.to_json request) with
      | Ok { Service.Request.id = Some (Service.Jsonl.Int 42); kind = Prepare spec' } ->
        Service.Request.cache_key spec = Service.Request.cache_key spec'
        && Dmf.Ratio.equal spec.Service.Request.ratio
             spec'.Service.Request.ratio
      | Ok _ | Error _ -> false)

let decode_errors () =
  let reject line =
    match Service.Request.of_line line with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "accepted %s" line
  in
  reject "not json at all";
  reject {|{"ratio": "2:1:1", "D": 4}|};
  (* no req field *)
  reject {|{"req": "prepare", "D": 4}|};
  (* no ratio *)
  reject {|{"req": "prepare", "ratio": "3:3", "D": 4}|};
  (* sum not 2^d *)
  reject {|{"req": "prepare", "ratio": "2:1:1", "D": 0}|};
  reject {|{"req": "prepare", "ratio": "2:1:1", "D": -3}|};
  reject {|{"req": "prepare", "ratio": "2:1:1", "D": 4, "Mc": 0}|};
  reject {|{"req": "prepare", "ratio": "2:1:1", "D": 4, "scheduler": "XYZ"}|};
  reject {|{"req": "frobnicate"}|};
  (* protocol ids resolve like on the dmfstream command line *)
  match Service.Request.of_line {|{"req": "prepare", "ratio": "pcr16", "D": 4}|} with
  | Ok { Service.Request.kind = Prepare spec; _ } ->
    Alcotest.(check bool) "pcr16 resolves" true
      (Dmf.Ratio.equal spec.Service.Request.ratio pcr16)
  | Ok _ | Error _ -> Alcotest.fail "protocol-id ratio rejected"

(* ------------------------------------------------------------------ *)
(* Coalescing                                                          *)

let spec_for ?(demand = 4) () =
  {
    Service.Request.ratio = pcr16;
    demand;
    algorithm = Mixtree.Algorithm.MM;
    scheduler = Mdst.Scheduler.srs;
    mixers = Some 3;
    storage_limit = None;
  }

let coalescing () =
  let k = 5 in
  let queue = Service.Queue.create ~capacity:8 () in
  let tickets =
    List.init k (fun _ ->
        match Service.Queue.submit queue (spec_for ()) with
        | Ok ticket -> ticket
        | Error msg -> Alcotest.failf "submit rejected: %s" msg)
  in
  (* All k requests merged into a single pending planning job. *)
  Alcotest.(check int) "one pending job" 1 (Service.Queue.depth queue);
  Alcotest.(check int) "k-1 merges" (k - 1) (Service.Queue.coalesced_total queue);
  (* One worker takes the batch: its demand is the sum. *)
  let job =
    match Service.Queue.take queue with
    | Some job -> job
    | None -> Alcotest.fail "queue gave no job"
  in
  Alcotest.(check int) "batch answers k requests" k
    (Service.Queue.job_requests job);
  let spec = Service.Queue.job_spec job in
  Alcotest.(check int) "summed demand" (k * 4) spec.Service.Request.demand;
  (* A request arriving after the take starts a fresh job. *)
  let late =
    match Service.Queue.submit queue (spec_for ()) with
    | Ok t -> t
    | Error msg -> Alcotest.failf "late submit rejected: %s" msg
  in
  Alcotest.(check int) "taken job no longer coalesces" 1
    (Service.Queue.depth queue);
  (* Plan once, answer everyone. *)
  let prepared = Service.Prep.run spec in
  Service.Queue.fulfil job
    (Ok
       {
         Service.Queue.prepared;
         batch_demand = spec.Service.Request.demand;
         coalesced = Service.Queue.job_requests job;
         cache_hit = false;
       });
  let plan, schedule =
    match (prepared.Service.Prep.plan, prepared.Service.Prep.schedule) with
    | Some p, Some s -> (p, s)
    | _ -> Alcotest.fail "single-pass job kept no plan"
  in
  (* The one batch schedule is valid and serves every waiter's own D. *)
  (match Mdst.Schedule.validate ~plan schedule with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "batch schedule invalid: %s" msg);
  List.iter
    (fun ticket ->
      match Service.Queue.wait ticket with
      | Ok outcome ->
        Alcotest.(check int) "batch demand seen by waiter" (k * 4)
          outcome.Service.Queue.batch_demand;
        Alcotest.(check int) "waiter count" k outcome.Service.Queue.coalesced;
        Alcotest.(check bool) "batch covers this waiter's demand" true
          (Mdst.Plan.targets plan >= Service.Queue.ticket_demand ticket)
      | Error msg -> Alcotest.failf "waiter failed: %s" msg)
    tickets;
  (* The batch metrics equal a direct Mdst call for the summed demand
     (the acceptance check: the server adds no cost of its own). *)
  let direct =
    Mdst.Engine.prepare
      {
        Mdst.Engine.ratio = pcr16;
        demand = k * 4;
        algorithm = Mixtree.Algorithm.MM;
        scheduler = Mdst.Scheduler.srs;
        mixers = Some 3;
      }
  in
  let s = prepared.Service.Prep.summary in
  Alcotest.(check int) "Tc matches direct engine call"
    direct.Mdst.Engine.metrics.Mdst.Metrics.tc s.Service.Response.tc;
  Alcotest.(check int) "W matches" direct.Mdst.Engine.metrics.Mdst.Metrics.waste
    s.Service.Response.waste;
  Alcotest.(check int) "q matches" direct.Mdst.Engine.metrics.Mdst.Metrics.q
    s.Service.Response.q;
  (* Drain the late job so its waiter resolves too. *)
  (match Service.Queue.take queue with
  | Some late_job ->
    Service.Queue.fulfil late_job (Error "not planned in this test")
  | None -> Alcotest.fail "late job missing");
  (match Service.Queue.wait late with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "late waiter resolved against the taken batch");
  Service.Queue.close queue

let demand_cap_merge () =
  (* Merging never pushes a batch past Validate.max_demand: the
     overflowing request becomes its own fresh job. *)
  let queue = Service.Queue.create ~capacity:8 () in
  let big = Service.Validate.max_demand - 2 in
  let submit d =
    match Service.Queue.submit queue (spec_for ~demand:d ()) with
    | Ok t -> t
    | Error msg -> Alcotest.failf "submit rejected: %s" msg
  in
  let _t1 = submit big in
  let _t2 = submit 4 in
  Alcotest.(check int) "second job opened" 2 (Service.Queue.depth queue);
  Alcotest.(check int) "no merge past the cap" 0
    (Service.Queue.coalesced_total queue);
  (* The fresh job is now the coalescing target. *)
  let _t3 = submit 4 in
  Alcotest.(check int) "third request merges into the fresh job" 1
    (Service.Queue.coalesced_total queue);
  Service.Queue.close queue

(* ------------------------------------------------------------------ *)
(* LRU cache                                                           *)

let lru_eviction () =
  let cache = Service.Cache.create ~capacity:2 in
  Service.Cache.add cache "a" 1;
  Service.Cache.add cache "b" 2;
  (* Touch "a": now "b" is the least recently used. *)
  Alcotest.(check (option int)) "hit a" (Some 1) (Service.Cache.find cache "a");
  Service.Cache.add cache "c" 3;
  Alcotest.(check (option int)) "b evicted" None (Service.Cache.peek cache "b");
  Alcotest.(check (option int)) "a kept" (Some 1) (Service.Cache.peek cache "a");
  Alcotest.(check (list string)) "MRU order" [ "c"; "a" ]
    (Service.Cache.keys cache);
  Alcotest.(check (option int)) "miss counted" None
    (Service.Cache.find cache "b");
  let s = Service.Cache.stats cache in
  Alcotest.(check int) "hits" 1 s.Service.Cache.hits;
  Alcotest.(check int) "misses" 1 s.Service.Cache.misses;
  Alcotest.(check int) "evictions" 1 s.Service.Cache.evictions;
  Alcotest.(check int) "size" 2 s.Service.Cache.size;
  (* Overwriting refreshes recency instead of growing the cache. *)
  Service.Cache.add cache "a" 10;
  Service.Cache.add cache "d" 4;
  Alcotest.(check (list string)) "c evicted after a's refresh" [ "d"; "a" ]
    (Service.Cache.keys cache);
  (* Capacity 0 disables caching. *)
  let off = Service.Cache.create ~capacity:0 in
  Service.Cache.add off "x" 1;
  Alcotest.(check (option int)) "disabled cache stores nothing" None
    (Service.Cache.peek off "x")

let prop_lru_capacity =
  Generators.qtest ~count:200 "LRU never exceeds capacity and evicts in order"
    Gen.(
      pair (int_range 1 8)
        (list_size (int_range 0 40) (int_range 0 11)))
    (Print.pair string_of_int (Print.list string_of_int))
    (fun (capacity, inserts) ->
      let cache = Service.Cache.create ~capacity in
      List.iter
        (fun k -> Service.Cache.add cache (string_of_int k) k)
        inserts;
      (* Reference model: most-recent-first list of distinct keys. *)
      let model =
        List.fold_left
          (fun acc k ->
            let key = string_of_int k in
            key :: List.filter (fun k' -> k' <> key) acc)
          [] inserts
      in
      let expected = List.filteri (fun i _ -> i < capacity) model in
      Service.Cache.keys cache = expected)

(* ------------------------------------------------------------------ *)
(* stdio end-to-end smoke                                              *)

let geti json key =
  match Option.bind (Service.Jsonl.member key json) Service.Jsonl.to_int with
  | Some v -> v
  | None -> Alcotest.failf "response lacks integer %s" key

let getb json key =
  match Option.bind (Service.Jsonl.member key json) Service.Jsonl.to_bool with
  | Some v -> v
  | None -> Alcotest.failf "response lacks bool %s" key

(* Drive [serve_channels] — the exact transport of [dmfd --stdio] — over
   a pair of pipes: write all request lines, close, collect the
   responses.  No sockets, no subprocess. *)
let round_trip server requests =
  let req_read, req_write = Unix.pipe ~cloexec:false () in
  let resp_read, resp_write = Unix.pipe ~cloexec:false () in
  let server_ic = Unix.in_channel_of_descr req_read in
  let server_oc = Unix.out_channel_of_descr resp_write in
  let server_thread =
    Thread.create
      (fun () ->
        Service.Server.serve_channels server server_ic server_oc;
        close_out_noerr server_oc;
        close_in_noerr server_ic)
      ()
  in
  let client_oc = Unix.out_channel_of_descr req_write in
  let client_ic = Unix.in_channel_of_descr resp_read in
  List.iter
    (fun line ->
      output_string client_oc line;
      output_char client_oc '\n')
    requests;
  close_out client_oc;
  let responses =
    List.map
      (fun _ ->
        match Service.Jsonl.of_string (input_line client_ic) with
        | Ok json -> json
        | Error msg -> Alcotest.failf "bad response line: %s" msg)
      requests
  in
  Thread.join server_thread;
  close_in_noerr client_ic;
  responses

let stdio_smoke () =
  let server = Service.Server.create ~workers:1 ~cache_capacity:16 () in
  (* The first prepare (a distinct, larger job) occupies the single
     worker, so the two identical D=20 requests behind it normally
     coalesce while it runs.  The scheduling race is real, though — the
     worker may drain them one by one — so every assertion below holds
     for both outcomes, with the coalesced count [c] read back from the
     response. *)
  let requests =
    [
      {|{"req": "ping", "id": 1}|};
      {|{"req": "prepare", "ratio": "2:1:1:1:1:1:9", "D": 400, "Mc": 1, "id": 2}|};
      {|{"req": "prepare", "ratio": "2:1:1:1:1:1:9", "D": 20, "Mc": 3, "id": 3}|};
      {|{"req": "prepare", "ratio": "3:3", "D": 4, "id": 4}|};
      {|{"req": "prepare", "ratio": "2:1:1:1:1:1:9", "D": 20, "Mc": 3, "id": 5}|};
      {|{"req": "stats", "id": 6}|};
    ]
  in
  let responses = round_trip server requests in
  match responses with
  | [ pong; slow; first; invalid; second; stats ] ->
    Alcotest.(check bool) "pong ok" true (getb pong "ok");
    Alcotest.(check int) "pong echoes id" 1 (geti pong "id");
    Alcotest.(check bool) "slow prepare ok" true (getb slow "ok");
    Alcotest.(check bool) "invalid ratio rejected" false (getb invalid "ok");
    Alcotest.(check int) "error echoes id" 4 (geti invalid "id");
    (* The invalid request never entered the queue, so the identical
       pair is adjacent there.  c = how many requests its planning job
       answered. *)
    let c = geti first "coalesced" in
    if c < 1 || c > 2 then Alcotest.failf "impossible coalesced count %d" c;
    Alcotest.(check int) "own demand echoed" 20 (geti first "D");
    Alcotest.(check int) "batch demand = summed demand" (20 * c)
      (geti first "batch_D");
    (* The response metrics equal a direct engine call for the batch —
       the server adds no cost of its own (the acceptance criterion). *)
    let direct d =
      (Mdst.Engine.prepare
         {
           Mdst.Engine.ratio = pcr16;
           demand = d;
           algorithm = Mixtree.Algorithm.MM;
           scheduler = Mdst.Scheduler.srs;
           mixers = Some 3;
         })
        .Mdst.Engine.metrics
    in
    let batch = direct (20 * c) in
    Alcotest.(check int) "Tc matches direct call" batch.Mdst.Metrics.tc
      (geti first "Tc");
    Alcotest.(check int) "W matches direct call" batch.Mdst.Metrics.waste
      (geti first "W");
    Alcotest.(check int) "q matches direct call" batch.Mdst.Metrics.q
      (geti first "q");
    Alcotest.(check int) "I matches direct call" batch.Mdst.Metrics.input_total
      (geti first "I");
    (* Its twin saw the same plan: the batch when coalesced, the cached
       plan (same cache key) when not.  Either way no second forest. *)
    if c = 2 then begin
      Alcotest.(check int) "twin in same batch" 40 (geti second "batch_D");
      Alcotest.(check bool) "no cache involved" false (getb second "cache_hit")
    end
    else
      Alcotest.(check bool) "twin served from the plan cache" true
        (getb second "cache_hit");
    Alcotest.(check int) "twin same Tc" (geti first "Tc") (geti second "Tc");
    (* Stats accounting, evaluated at its pipeline position: 5 responses
       written before it, one an error; the pair triggered exactly one
       forest construction whichever way the race went. *)
    Alcotest.(check int) "served" 5 (geti stats "served");
    Alcotest.(check int) "errors" 1 (geti stats "errors");
    Alcotest.(check int) "merged requests" (c - 1) (geti stats "coalesced");
    Alcotest.(check int) "planning jobs" (1 + (3 - c)) (geti stats "jobs");
    Alcotest.(check int) "one forest per distinct target" 2
      (geti stats "plans_built");
    let cache =
      match Service.Jsonl.member "cache" stats with
      | Some obj -> obj
      | None -> Alcotest.fail "stats lacks cache object"
    in
    Alcotest.(check int) "cache misses" 2 (geti cache "misses");
    Alcotest.(check int) "cache hits" (2 - c) (geti cache "hits");
    Alcotest.(check int) "cache size" 2 (geti cache "size");
    Alcotest.(check int) "queue drained" 0 (geti stats "queue_depth");
    (* A fresh stream re-asking for the slow job's exact target is a
       guaranteed cache hit: same cache key, nothing to race with. *)
    let warm =
      round_trip server
        [ {|{"req": "prepare", "ratio": "2:1:1:1:1:1:9", "D": 400, "Mc": 1}|} ]
    in
    (match warm with
    | [ json ] ->
      Alcotest.(check bool) "warm request ok" true (getb json "ok");
      Alcotest.(check bool) "warm request hits the plan cache" true
        (getb json "cache_hit");
      Alcotest.(check int) "warm Tc unchanged" (geti slow "Tc")
        (geti json "Tc")
    | _ -> Alcotest.fail "warm round trip lost the response");
    Service.Server.stop server
  | _ -> Alcotest.fail "wrong response count"

(* ------------------------------------------------------------------ *)
(* kill -9 mid-stream: the crash-recovery e2e smoke                    *)

let with_temp_dir f =
  let dir = Filename.temp_dir "service-test" "" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun name ->
          try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
        (try Sys.readdir dir with Sys_error _ -> [||]);
      try Unix.rmdir dir with Unix.Unix_error _ -> ())
    (fun () -> f dir)

(* A real SIGKILL halfway through a request stream: a forked child runs
   the server with a strict-fsync WAL over pipes, the parent reads two
   responses and kills it with no chance to clean up, then recovers the
   journal and checks every answered response is reproducible. *)
let kill9_recovery () =
  with_temp_dir (fun dir ->
      let ratios =
        List.filteri (fun i _ -> i < 6) (Lazy.force Generators.corpus_slice)
      in
      let lines =
        List.mapi
          (fun i ratio ->
            Printf.sprintf
              {|{"req": "prepare", "ratio": "%s", "D": 32, "id": %d}|}
              (Dmf.Ratio.to_string ratio) i)
          ratios
      in
      let config =
        {
          Durable.Manager.dir;
          fsync = Durable.Wal.strict;
          snapshot_every = 0;
          cache_capacity = 16;
        }
      in
      let req_read, req_write = Unix.pipe ~cloexec:false () in
      let resp_read, resp_write = Unix.pipe ~cloexec:false () in
      Analysis.Runtime.assert_no_domains_spawned ();
      match Unix.fork () with
      | 0 ->
        (* The daemon-to-be-crashed.  Never exits on its own: the parent
           holds the request pipe open and SIGKILLs it mid-stream. *)
        Unix.close req_write;
        Unix.close resp_read;
        (try
           let manager, _ = Durable.Manager.start config in
           let server =
             Service.Server.create ~workers:1 ~cache_capacity:16
               ~on_accept:(Durable.Manager.on_accept manager)
               ~on_complete:(fun ~spec ~requests ~ok ->
                 Durable.Manager.on_complete manager ~spec ~requests ~ok)
               ()
           in
           Service.Server.serve_channels server
             (Unix.in_channel_of_descr req_read)
             (Unix.out_channel_of_descr resp_write)
         with _ -> Unix._exit 1);
        Unix._exit 0
      | pid ->
        Unix.close req_read;
        Unix.close resp_write;
        let client_oc = Unix.out_channel_of_descr req_write in
        let client_ic = Unix.in_channel_of_descr resp_read in
        List.iter
          (fun line ->
            output_string client_oc line;
            output_char client_oc '\n')
          lines;
        flush client_oc;
        let parse line =
          match Service.Jsonl.of_string line with
          | Ok json -> json
          | Error msg -> Alcotest.failf "bad response line: %s" msg
        in
        (* Bind each read: list elements evaluate right to left. *)
        let first_answer = parse (input_line client_ic) in
        let second_answer = parse (input_line client_ic) in
        let answered = [ first_answer; second_answer ] in
        Unix.kill pid Sys.sigkill;
        (match Unix.waitpid [] pid with
        | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
        | _, _ -> Alcotest.fail "child did not die of SIGKILL");
        close_out_noerr client_oc;
        close_in_noerr client_ic;
        (* The journal survived the kill: with a strict fsync policy
           every response the parent read was durable before it was
           written, so recovery rebuilds at least those plans. *)
        let state, stats = Durable.Replay.recover ~dir ~cache_capacity:16 in
        Alcotest.(check bool) "records replayed" true
          (stats.Durable.Replay.replayed >= 4);
        Alcotest.(check bool) "no sequence gap" false stats.Durable.Replay.gap;
        let keys = Durable.State.cache_keys state in
        let answered_lines = List.filteri (fun i _ -> i < 2) lines in
        List.iter
          (fun line ->
            match Service.Request.of_line line with
            | Ok { Service.Request.kind = Prepare spec; _ } ->
              let key = Service.Request.cache_key spec in
              Alcotest.(check bool)
                (Printf.sprintf "answered plan %s recovered" key)
                true (List.mem key keys)
            | Ok _ | Error _ -> Alcotest.fail "bad request line")
          answered_lines;
        (* Boot a fresh daemon from the directory exactly as dmfd does
           and re-issue the answered requests: identical payloads. *)
        let manager, _ = Durable.Manager.start config in
        let server = Service.Server.create ~workers:1 ~cache_capacity:16 () in
        ignore
          (Service.Server.prime server
             ~cache:(Durable.Manager.recovered_cache manager)
             ~pending:(Durable.Manager.recovered_pending manager));
        let replayed = round_trip server answered_lines in
        let volatile = [ "elapsed_ms"; "cache_hit"; "coalesced"; "batch_D" ] in
        let normalize = function
          | Service.Jsonl.Obj kvs ->
            Service.Jsonl.Obj
              (List.filter (fun (k, _) -> not (List.mem k volatile)) kvs)
          | j -> j
        in
        List.iter2
          (fun a b ->
            if not (Service.Jsonl.equal (normalize a) (normalize b)) then
              Alcotest.failf "payload diverged after recovery:\n  %s\n  %s"
                (Service.Jsonl.to_string a) (Service.Jsonl.to_string b))
          answered replayed;
        Service.Server.stop server;
        Durable.Manager.close manager)

(* ------------------------------------------------------------------ *)
(* Primary failover: kill -9 the primary, promote the hot standby      *)

(* Serve one NDJSON stream through the follower (which may promote
   itself mid-stream and delegate to its full server). *)
let follower_round_trip follower requests =
  let req_read, req_write = Unix.pipe ~cloexec:false () in
  let resp_read, resp_write = Unix.pipe ~cloexec:false () in
  let server_ic = Unix.in_channel_of_descr req_read in
  let server_oc = Unix.out_channel_of_descr resp_write in
  let server_thread =
    Thread.create
      (fun () ->
        Replication.Follower.serve_channels follower server_ic server_oc;
        close_out_noerr server_oc;
        close_in_noerr server_ic)
      ()
  in
  let client_oc = Unix.out_channel_of_descr req_write in
  let client_ic = Unix.in_channel_of_descr resp_read in
  List.iter
    (fun line ->
      output_string client_oc line;
      output_char client_oc '\n')
    requests;
  close_out client_oc;
  let responses =
    List.map
      (fun _ ->
        match Service.Jsonl.of_string (input_line client_ic) with
        | Ok json -> json
        | Error msg -> failwith ("bad response line: " ^ msg))
      requests
  in
  Thread.join server_thread;
  close_in_noerr client_ic;
  responses

(* The whole scenario runs in a forked child so the promotion's worker
   domains never taint this (fork-using) test process: the child forks
   the primary-to-be-killed FIRST, then runs the follower — threads
   only — and spawns domains only at promotion, after its own fork. *)
let failover_scenario ~primary_dir ~follower_dir =
  let die fmt =
    Printf.ksprintf
      (fun msg ->
        prerr_endline ("failover scenario: " ^ msg);
        Unix._exit 1)
      fmt
  in
  let ratios =
    List.filteri (fun i _ -> i < 4) (Lazy.force Generators.corpus_slice)
  in
  let lines =
    List.mapi
      (fun i ratio ->
        Printf.sprintf {|{"req": "prepare", "ratio": "%s", "D": 32, "id": %d}|}
          (Dmf.Ratio.to_string ratio) i)
      ratios
  in
  let req_read, req_write = Unix.pipe ~cloexec:false () in
  let resp_read, resp_write = Unix.pipe ~cloexec:false () in
  let port_read, port_write = Unix.pipe ~cloexec:false () in
  (* This runs in a child forked from the domain-free test process;
     domains appear only at promotion, strictly after this fork. *)
  Analysis.Runtime.assert_no_domains_spawned ();
  match Unix.fork () with
  | 0 ->
    (* The primary: a dmfd core plus a replication feed, to be
       SIGKILLed with no chance to clean up. *)
    Unix.close req_write;
    Unix.close resp_read;
    Unix.close port_read;
    (try
       let config =
         {
           Durable.Manager.dir = primary_dir;
           fsync = Durable.Wal.strict;
           snapshot_every = 0;
           cache_capacity = 16;
         }
       in
       let manager, _ = Durable.Manager.start config in
       let feed =
         Replication.Feed.create
           {
             Replication.Feed.dir = primary_dir;
             last_seq = (fun () -> Durable.Manager.last_seq manager);
             fetch_plan = (fun _ -> None);
           }
       in
       Durable.Manager.subscribe_journal manager (Replication.Feed.notify feed);
       ignore
         (Thread.create
            (fun () ->
              Replication.Feed.serve_tcp feed
                ~on_listen:(fun port ->
                  let oc = Unix.out_channel_of_descr port_write in
                  output_string oc (string_of_int port);
                  output_char oc '\n';
                  flush oc)
                ~host:"127.0.0.1" ~port:0)
            ());
       let server =
         Service.Server.create ~workers:1 ~cache_capacity:16
           ~on_accept:(Durable.Manager.on_accept manager)
           ~on_complete:(fun ~spec ~requests ~ok ->
             Durable.Manager.on_complete manager ~spec ~requests ~ok)
           ()
       in
       Service.Server.serve_channels server
         (Unix.in_channel_of_descr req_read)
         (Unix.out_channel_of_descr resp_write)
     with _ -> Unix._exit 1);
    Unix._exit 0
  | primary_pid ->
    Unix.close req_read;
    Unix.close resp_write;
    Unix.close port_write;
    let feed_port =
      match input_line (Unix.in_channel_of_descr port_read) with
      | line -> (
        match int_of_string_opt (String.trim line) with
        | Some port -> port
        | None -> die "bad feed port announce %S" line)
      | exception End_of_file -> die "primary died before announcing its feed"
    in
    let follower =
      Replication.Follower.create
        {
          Replication.Follower.host = "127.0.0.1";
          port = feed_port;
          dir = follower_dir;
          cache_capacity = 16;
          queue_capacity = 64;
          workers = Some 1;
          fsync = Durable.Wal.strict;
          snapshot_every = 0;
          store = None;
          fetch_plans = false;
          reconnect_ms = 50.;
        }
    in
    Replication.Follower.start follower;
    (* Stream the requests to the primary and collect every response:
       these are the accepted-and-answered payloads that must survive
       the kill. *)
    let client_oc = Unix.out_channel_of_descr req_write in
    let client_ic = Unix.in_channel_of_descr resp_read in
    List.iter
      (fun line ->
        output_string client_oc line;
        output_char client_oc '\n')
      lines;
    flush client_oc;
    let answered =
      List.map
        (fun _ ->
          match Service.Jsonl.of_string (input_line client_ic) with
          | Ok json -> json
          | Error msg -> die "bad primary response: %s" msg
          | exception End_of_file -> die "primary died early")
        lines
    in
    (* Each answered prepare journaled an accepted and a completed
       record; wait until the follower has applied them all. *)
    let target = 2 * List.length lines in
    let deadline = Unix.gettimeofday () +. 30. in
    while
      Replication.Follower.last_applied follower < target
      && Unix.gettimeofday () < deadline
    do
      Thread.delay 0.02
    done;
    if Replication.Follower.last_applied follower < target then
      die "follower stuck at seq %d of %d"
        (Replication.Follower.last_applied follower)
        target;
    (* SIGKILL the primary: no flush, no close, no goodbye. *)
    Unix.kill primary_pid Sys.sigkill;
    (match Unix.waitpid [] primary_pid with
    | _, Unix.WSIGNALED s when s = Sys.sigkill -> ()
    | _ -> die "primary did not die of SIGKILL");
    close_out_noerr client_oc;
    close_in_noerr client_ic;
    (* Promote over the wire, then re-issue every answered request on
       the same stream — the promoted node must recover its mirror
       (replayed > 0) and serve byte-identical payloads. *)
    let responses =
      follower_round_trip follower
        (({|{"req": "promote", "id": 100}|} :: lines)
        @ [ {|{"req": "stats", "id": 101}|} ])
    in
    let promote_resp, replayed_resps, stats_resp =
      match responses with
      | p :: rest -> (
        match List.rev rest with
        | s :: answered_rev -> (p, List.rev answered_rev, s)
        | [] -> die "no stats response")
      | [] -> die "no promote response"
    in
    if not (getb promote_resp "ok") then die "promote failed";
    if geti promote_resp "replayed" <= 0 then
      die "promotion replayed nothing (expected a real recovery)";
    if geti stats_resp "served" < List.length lines then
      die "promoted node served %d of %d re-issued requests"
        (geti stats_resp "served") (List.length lines);
    (match Service.Jsonl.member "replication" stats_resp with
    | Some r -> (
      match
        Option.bind (Service.Jsonl.member "role" r) Service.Jsonl.to_str
      with
      | Some "primary" -> ()
      | _ -> die "promoted node does not report role primary")
    | None -> die "promoted node's stats lack a replication object");
    let volatile = [ "elapsed_ms"; "cache_hit"; "coalesced"; "batch_D" ] in
    let normalize = function
      | Service.Jsonl.Obj kvs ->
        Service.Jsonl.Obj
          (List.filter (fun (k, _) -> not (List.mem k volatile)) kvs)
      | j -> j
    in
    List.iter2
      (fun a b ->
        if not (Service.Jsonl.equal (normalize a) (normalize b)) then
          die "payload diverged after failover:\n  %s\n  %s"
            (Service.Jsonl.to_string a) (Service.Jsonl.to_string b))
      answered replayed_resps;
    Replication.Follower.close follower;
    Unix._exit 0

let primary_failover () =
  with_temp_dir (fun primary_dir ->
      with_temp_dir (fun follower_dir ->
          Analysis.Runtime.assert_no_domains_spawned ();
          match Unix.fork () with
          | 0 -> (
            try failover_scenario ~primary_dir ~follower_dir
            with e ->
              prerr_endline ("failover scenario: " ^ Printexc.to_string e);
              Unix._exit 1)
          | pid -> (
            match Unix.waitpid [] pid with
            | _, Unix.WEXITED 0 -> ()
            | _, Unix.WEXITED n ->
              Alcotest.failf "failover scenario exited with %d" n
            | _ -> Alcotest.fail "failover scenario died of a signal")))

let () =
  Alcotest.run "service"
    [
      (* Must run first: OCaml 5 forbids Unix.fork once any domain has
         ever been spawned, and every later server test spawns worker
         domains.  (Each forked child forks again, or spawns domains,
         only after its own fork.) *)
      ( "crash-recovery",
        [
          Alcotest.test_case "kill -9 primary, promote the follower" `Quick
            primary_failover;
          Alcotest.test_case "kill -9 mid-stream, recover, re-answer" `Quick
            (kill9_recovery
            [@dmflint.allow
              "fork-after-domain: the preceding failover test spawns domains \
               only inside its forked child; this test process is still \
               domain-free here, and the fork site re-asserts that at \
               runtime"]);
        ] );
      ( "jsonl",
        [
          prop_json_roundtrip;
          prop_request_roundtrip;
          Alcotest.test_case "decode rejects malformed requests" `Quick
            decode_errors;
        ] );
      ( "queue",
        [
          Alcotest.test_case "k identical requests coalesce into one job"
            `Quick coalescing;
          Alcotest.test_case "merge respects the demand cap" `Quick
            demand_cap_merge;
        ] );
      ( "cache",
        [
          Alcotest.test_case "LRU eviction order and counters" `Quick
            lru_eviction;
          prop_lru_capacity;
        ] );
      ( "server",
        [ Alcotest.test_case "stdio end-to-end smoke" `Quick stdio_smoke ] );
    ]
