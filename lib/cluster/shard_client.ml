(* One pipelined TCP connection to one dmfd shard.

   The daemon's serve_channels answers every connection strictly in
   request order, so the client needs no id matching: it keeps a FIFO of
   response continuations per connection, writes request lines under the
   lock (send order = FIFO order), and a dedicated reader thread pops
   one continuation per response line.

   Failure never hangs a caller.  A broken connection (connect refused,
   write error, EOF from a killed shard) fails every outstanding
   continuation with [None]; the next send retries the connect up to
   [retries] times with [backoff_ms] between attempts, and once the
   budget is spent the shard enters a [cooldown_ms] window in which
   sends fail fast — so a dead shard costs each affected request at most
   the bounded retry budget, and unaffected shards never notice. *)

type config = {
  host : string;
  port : int;
  retries : int;
  backoff_ms : float;
  cooldown_ms : float;
}

let default_config ~host ~port =
  { host; port; retries = 3; backoff_ms = 50.; cooldown_ms = 1000. }

(* The pending FIFO belongs to the connection, not the client: a reader
   of a dead connection can then never steal the continuations queued on
   its replacement. *)
type conn = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  pending : (string option -> unit) Stdlib.Queue.t;
  mutable alive : bool;
}

type counters = {
  mutable sent : int;
  mutable answered : int;
  mutable failed : int;
  mutable connects : int;
}

type t = {
  config : config;
  lock : Mutex.t;
  mutable conn : conn option;
  mutable down_until : float;
  mutable closed : bool;
  c : counters;
}

type stats = {
  addr : string;
  healthy : bool;
  sent : int;
  answered : int;
  failed : int;
  connects : int;
}

let create config =
  {
    config;
    lock = Mutex.create ();
    conn = None;
    down_until = 0.;
    closed = false;
    c = { sent = 0; answered = 0; failed = 0; connects = 0 };
  }

let addr t = Printf.sprintf "%s:%d" t.config.host t.config.port

let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Tear one connection down and collect its unanswered continuations.
   Runs under the lock; the continuations are invoked by the caller
   after release (they take the response-slot locks of client
   transports, which must never nest inside ours). *)
let fail_conn_locked t conn =
  if conn.alive then begin
    conn.alive <- false;
    (match t.conn with Some c when c == conn -> t.conn <- None | _ -> ());
    close_fd conn.fd;
    let orphans = List.of_seq (Stdlib.Queue.to_seq conn.pending) in
    Stdlib.Queue.clear conn.pending;
    t.c.failed <- t.c.failed + List.length orphans;
    orphans
  end
  else []

let fail_conn t conn =
  Mutex.lock t.lock;
  let orphans = fail_conn_locked t conn in
  Mutex.unlock t.lock;
  List.iter (fun k -> k None) orphans

(* Per-connection reader: one response line resolves one continuation,
   in FIFO order.  EOF or any read error kills the connection. *)
let reader t conn () =
  let rec loop () =
    match input_line conn.ic with
    | line ->
      let k =
        Mutex.lock t.lock;
        let k = Stdlib.Queue.take_opt conn.pending in
        (match k with Some _ -> t.c.answered <- t.c.answered + 1 | None -> ());
        Mutex.unlock t.lock;
        k
      in
      (match k with
      | Some k -> k (Some line)
      | None -> (* unsolicited line after a teardown race: drop *) ());
      loop ()
    | exception (End_of_file | Sys_error _) -> fail_conn t conn
  in
  loop ()

let connect_once t =
  let fd = Service.Net.connect ~host:t.config.host ~port:t.config.port in
  (* Per-line request/response traffic: never wait on Nagle. *)
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  let conn =
    {
      fd;
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr fd;
      pending = Stdlib.Queue.create ();
      alive = true;
    }
  in
  t.c.connects <- t.c.connects + 1;
  ignore (Thread.create (reader t conn) ());
  conn

(* Called with the lock held.  Bounded: at most [retries + 1] connect
   attempts with [backoff_ms] pauses, then a cooldown window in which
   the shard fails fast — a dead shard delays each request by at most
   the retry budget and is free after that. *)
let ensure_conn_locked t =
  match t.conn with
  | Some conn when conn.alive -> Some conn
  | _ ->
    if t.closed || Unix.gettimeofday () < t.down_until then None
    else begin
      let attempts = max 1 (t.config.retries + 1) in
      let rec go n =
        match connect_once t with
        | conn ->
          t.conn <- Some conn;
          t.down_until <- 0.;
          Some conn
        | exception (Unix.Unix_error _ | Failure _) ->
          if n + 1 >= attempts then begin
            t.down_until <-
              Unix.gettimeofday () +. (t.config.cooldown_ms /. 1000.);
            None
          end
          else begin
            Thread.delay (t.config.backoff_ms /. 1000.);
            go (n + 1)
          end
      in
      go 0
    end

let send t line k =
  Mutex.lock t.lock;
  match ensure_conn_locked t with
  | None ->
    t.c.failed <- t.c.failed + 1;
    Mutex.unlock t.lock;
    k None
  | Some conn -> (
    Stdlib.Queue.push k conn.pending;
    match
      output_string conn.oc line;
      output_char conn.oc '\n';
      flush conn.oc
    with
    | () ->
      t.c.sent <- t.c.sent + 1;
      Mutex.unlock t.lock
    | exception Sys_error _ ->
      (* The write failed, so [k] is still in this conn's FIFO and the
         teardown below resolves it (with every earlier continuation,
         in order). *)
      let orphans = fail_conn_locked t conn in
      Mutex.unlock t.lock;
      List.iter (fun k -> k None) orphans)
[@@dmflint.allow
  "blocking-under-lock: t.lock must cover push-to-pending and the \
   socket write together — that pairing is what keeps the pipelined \
   FIFO aligned with the shard's response order (see the module \
   comment); reconnect backoff under the same lock bounds the stall \
   at the retry budget and only delays requests for the shard that \
   is already down"]

let healthy t =
  Mutex.lock t.lock;
  let up =
    match t.conn with
    | Some conn -> conn.alive
    | None -> (not t.closed) && Unix.gettimeofday () >= t.down_until
  in
  Mutex.unlock t.lock;
  up

let stats t =
  Mutex.lock t.lock;
  let connected = match t.conn with Some c -> c.alive | None -> false in
  let s =
    {
      addr = addr t;
      healthy =
        connected
        || ((not t.closed) && Unix.gettimeofday () >= t.down_until);
      sent = t.c.sent;
      answered = t.c.answered;
      failed = t.c.failed;
      connects = t.c.connects;
    }
  in
  Mutex.unlock t.lock;
  s

let close t =
  Mutex.lock t.lock;
  t.closed <- true;
  let orphans = match t.conn with Some c -> fail_conn_locked t c | None -> [] in
  Mutex.unlock t.lock;
  List.iter (fun k -> k None) orphans
