lib/viz/chip_svg.ml: Array Chip Fun List Printf Svg
