(* Tests for the dmflint analyzer itself, in two layers:

   1. A fixture corpus (test/lint_fixtures) with one known-bad and one
      known-clean module per rule.  We assert the exact (rule, file,
      line) triples the engine reports — nothing more, nothing less —
      so a precision or recall regression in any rule pack fails here
      with a readable diff.

   2. A self-check over the repository's own build: every finding in
      lib/ and bin/ must carry a rationale-bearing suppression, and the
      interprocedural lock-order graph must be acyclic.

   The fixture modules are deliberately NOT linked into this
   executable: bad_eintr's module initializer installs a SIGTERM
   handler, which must not happen inside the test process.  The dune
   rule only depends on the fixture *build* so the .cmt files exist. *)

(* Under `dune runtest` the action runs in _build/default/test, where
   the fixture tree is a sibling; under `dune exec` from the source
   root it is not, so fall back to the explicit build path. *)
let fixture_root, repo_root =
  if Sys.file_exists "lint_fixtures" then ("lint_fixtures", "..")
  else ("_build/default/test/lint_fixtures", "_build/default")

(* (rule id, file basename, line), sorted. *)
let triples findings =
  findings
  |> List.map (fun (f : Lint.Finding.t) ->
         (f.rule.Lint.Ids.id, Filename.basename f.loc.Lint.Summary.file,
          f.loc.Lint.Summary.line))
  |> List.sort compare

let show (id, file, line) = Printf.sprintf "%s %s:%d" id file line

let triple_list = Alcotest.(list (triple string string int))

let run_fixtures () = Lint.Engine.run ~root:fixture_root ~excludes:[]

let test_fixture_findings () =
  let r = run_fixtures () in
  Alcotest.(check (list string)) "fixtures load cleanly" []
    (List.map (fun (e : Lint.Loader.error) -> e.path) r.errors);
  let expected =
    [
      ("DML000", "bad_suppress.ml", 10);
      ("DML001", "bad_lock_order.ml", 9);
      ("DML002", "bad_blocking.ml", 8);
      ("DML002", "bad_suppress.ml", 8);
      ("DML003", "bad_callback.ml", 8);
      ("DML004", "bad_condvar.ml", 7);
      ("DML005", "bad_fork.ml", 6);
      ("DML006", "bad_eintr.ml", 6);
    ]
  in
  Alcotest.check triple_list "unsuppressed findings" expected
    (triples (Lint.Engine.unsuppressed r));
  (* Exactly one rule per bad file means every clean_* counterpart
     produced nothing; make the contrapositive explicit anyway. *)
  List.iter
    (fun t ->
      let _, file, _ = t in
      if String.length file >= 6 && String.sub file 0 6 = "clean_" then
        Alcotest.failf "clean fixture produced a finding: %s" (show t))
    (triples (Lint.Engine.unsuppressed r))

let test_fixture_suppression () =
  let r = run_fixtures () in
  let suppressed =
    List.filter (fun (f : Lint.Finding.t) -> f.suppressed <> None) r.findings
  in
  Alcotest.check triple_list "suppressed findings"
    [ ("DML002", "clean_suppress.ml", 9) ]
    (triples suppressed);
  List.iter
    (fun (f : Lint.Finding.t) ->
      match f.suppressed with
      | Some why -> Alcotest.(check bool) "rationale present" false (why = "")
      | None -> ())
    suppressed

let test_fixture_cycle () =
  let r = run_fixtures () in
  Alcotest.(check int) "one lock-order cycle" 1 (List.length r.cycles);
  let cycle = List.concat r.cycles in
  let expect_node n =
    Alcotest.(check bool) (n ^ " in cycle") true (List.mem n cycle)
  in
  expect_node "Lint_fixtures.Bad_lock_order.a";
  expect_node "Lint_fixtures.Bad_lock_order.b";
  List.iter
    (fun n ->
      if
        String.length n >= 5
        && String.sub n 0 5 <> "Lint_"
        (* all fixture locks live in Lint_fixtures.* *)
      then Alcotest.failf "unexpected lock in cycle: %s" n)
    cycle

(* The repository gate, run from _build/default/test: scan the whole
   build tree two levels up, minus the deliberately-broken fixtures. *)
let test_repo_clean () =
  let r = Lint.Engine.run ~root:repo_root ~excludes:[ "lint_fixtures" ] in
  Alcotest.(check bool) "analyzed a real unit count" true
    (List.length r.units > 20);
  (match Lint.Engine.unsuppressed r with
  | [] -> ()
  | leaks ->
      Alcotest.failf "repo has unsuppressed findings:\n%s"
        (String.concat "\n" (List.map Lint.Finding.to_human leaks)));
  Alcotest.(check (list (list string))) "repo lock graph is acyclic" []
    r.cycles;
  List.iter
    (fun (f : Lint.Finding.t) ->
      match f.suppressed with
      | Some "" -> Alcotest.failf "empty rationale on %s" (Lint.Finding.key f)
      | _ -> ())
    r.findings

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "exact findings" `Quick test_fixture_findings;
          Alcotest.test_case "suppression contract" `Quick
            test_fixture_suppression;
          Alcotest.test_case "lock-order cycle" `Quick test_fixture_cycle;
        ] );
      ( "self-check",
        [ Alcotest.test_case "repo lints clean" `Quick test_repo_clean ] );
    ]
