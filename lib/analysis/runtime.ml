(* The spawn ledger is an atomic, not a mutex-guarded cell: it is
   read on fork paths that run while worker domains may be live, and
   it must never itself introduce a lock. *)

let spawned = Atomic.make 0

let note_domain_spawn () = Atomic.incr spawned
let domains_spawned () = Atomic.get spawned

let assert_no_domains_spawned () =
  let n = Atomic.get spawned in
  if n > 0 then
    invalid_arg
      (Printf.sprintf
         "fork-after-domain: refusing to fork after %d domain spawn(s); \
          OCaml 5 cannot fork once a domain has been spawned (dmflint rule \
          fork-after-domain)"
         n)

let rec retry_eintr f =
  match f () with
  | v -> v
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_eintr f

let read_retry fd buf off len =
  retry_eintr (fun () -> Unix.read fd buf off len)

let write_retry fd buf off len =
  retry_eintr (fun () -> Unix.write fd buf off len)

let waitpid_retry flags pid = retry_eintr (fun () -> Unix.waitpid flags pid)
