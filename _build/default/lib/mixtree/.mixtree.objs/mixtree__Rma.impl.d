lib/mixtree/rma.ml: Dmf Entry List Tree
