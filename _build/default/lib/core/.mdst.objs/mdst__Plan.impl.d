lib/core/plan.ml: Array Dmf Format Fun Hashtbl List Result String
