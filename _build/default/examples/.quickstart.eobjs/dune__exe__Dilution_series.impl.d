examples/dilution_series.ml: Format List Mdst Mixtree Printf
