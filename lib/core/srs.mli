(** Storage_Reduced_Scheduling (Algorithm 2).

    SRS keeps two priority queues of schedulable nodes.  [Qint] holds the
    nodes with at least one internal child (Type-A and Type-B): stalling
    one of these keeps droplets waiting in storage, and executing a
    {e higher}-level one first finishes the forest earlier, so [Qint] is
    ordered by decreasing level.  [Qleaf] holds the nodes whose both
    children are reservoir inputs (Type-C): stalling them is free, and a
    {e lower}-level one is preferred since a high-level Type-C node
    cannot help its parent until its sibling is also done.  Each cycle
    dequeues up to [Mc] nodes from [Qint] first, then fills the remaining
    mixers from [Qleaf].

    SRS may finish a few cycles later than MMS, but needs fewer on-chip
    storage units (Table 3 reports 25.5% fewer on average). *)

val policy : Sched_core.policy
(** SRS as a ready-set policy over the shared {!Sched_core} engine: the
    two priority queues and the per-cycle quota of Algorithm 2. *)

val schedule : plan:Plan.t -> mixers:int -> Schedule.t
(** [schedule ~plan ~mixers] runs SRS.  @raise Invalid_argument if
    [mixers < 1]. *)
