(* Clean counterpart of bad_lock_order: both paths take a before b. *)

let a = Mutex.create ()
let b = Mutex.create ()

let first () =
  Mutex.lock a;
  Mutex.lock b;
  Mutex.unlock b;
  Mutex.unlock a

let second () =
  Mutex.lock a;
  Mutex.lock b;
  Mutex.unlock b;
  Mutex.unlock a
