(** Cross-contamination analysis and wash estimation.

    Real reagents leave residues: when droplets of {e different}
    compositions traverse the same electrode, the later one picks up
    traces of the earlier one unless a wash droplet cleans the cell in
    between (Zhao and Chakrabarty's wash-droplet line of work).  This
    module replays a simulation trace, reconstructs which droplet crossed
    which electrode when, and reports:

    - the {b contamination pairs}: (cell, earlier droplet, later droplet)
      with different values and no intervening wash;
    - a greedy {b wash plan}: after each schedule cycle, one wash droplet
      per contaminated region sweeps the dirty cells of that cycle by
      nearest-neighbour order, dispensed from and disposed to the waste
      reservoirs — an upper bound on the wash overhead.

    Shared-composition traversals (two droplets of the same exact value)
    do not contaminate — one more reason droplet re-use is cheap. *)

type visit = { step : int; droplet : int; value : Dmf.Mixture.t; cycle : int }

type pair = {
  cell : Chip.Geometry.point;
  first : visit;
  second : visit;  (** The contaminated (later) traversal. *)
}

type wash_plan = {
  washes : int;  (** Wash droplets dispensed. *)
  wash_steps : int;  (** Electrodes actuated by the wash sweeps. *)
}

type t = {
  pairs : pair list;
  contaminated_cells : int;  (** Distinct cells with at least one pair. *)
  total_crossings : int;  (** All same-cell different-droplet successions. *)
  benign_crossings : int;  (** Successions with identical values. *)
  wash : wash_plan;
}

val analyze :
  layout:Chip.Layout.t ->
  plan:Mdst.Plan.t ->
  trace:Trace.t ->
  t
(** [analyze ~layout ~plan ~trace] replays the trace.  The plan supplies
    the fluid universe for droplet values. *)

val wash_overhead_ratio : t -> transport_electrodes:int -> float
(** Wash actuations relative to the run's own transport actuations. *)
