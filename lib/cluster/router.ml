(* The consistent-hash routing front-end.

   One router process owns a ring over N dmfd shards and speaks the
   same NDJSON protocol as a single daemon, so dmfstream (or any
   client) points at it unchanged.  Per client connection the router
   mirrors the daemon's transport discipline: a reader thread admits
   lines the moment they arrive and appends one response slot per line
   to a FIFO; forwarded responses fill their slot whenever the shard
   answers; a writer thread emits slots strictly in request order.
   Requests to different shards therefore proceed concurrently while
   each client still sees responses in the order it asked.

   Prepare requests are forwarded as raw bytes — the router parses just
   enough of the line to compute the coalesce key and never re-encodes,
   so the shard sees exactly what the client wrote (ids included).
   Ping and the [route] placement diagnostic are answered locally;
   stats fans out to every shard (and every follower) and merges
   deterministically (Cluster.Stats).  A dead shard turns into error
   responses within the shard client's bounded retry budget — never a
   hang — and shows up with [healthy:false] in the merged stats.

   A shard may register a hot standby (a dmfd --follow node).  The ring
   still hashes to the primary's label, but each forwarded request goes
   through the group: lead with the healthy primary, and when its
   transport is down and the follower's is not, lead with the follower
   instead — which serves cached reads while following and everything
   once promoted.  Whichever node leads, a [None] falls through to the
   other exactly once before the client sees an error. *)

module Jsonl = Service.Jsonl
module Request = Service.Request
module Response = Service.Response

type group = {
  primary : Shard_client.t;
  follower : Shard_client.t option;
}

type t = {
  ring : Ring.t;
  groups : group array;
}

let create ?vnodes ?(retries = 3) ?(backoff_ms = 50.) ?(cooldown_ms = 1000.)
    endpoints =
  if endpoints = [] then invalid_arg "Router.create: at least one shard";
  let client (host, port) =
    Shard_client.create
      { Shard_client.host; port; retries; backoff_ms; cooldown_ms }
  in
  let labels =
    List.map
      (fun ((host, port), _) -> Printf.sprintf "%s:%d" host port)
      endpoints
  in
  let ring = Ring.create ?vnodes labels in
  let groups =
    Array.of_list
      (List.map
         (fun (primary, follower) ->
           { primary = client primary; follower = Option.map client follower })
         endpoints)
  in
  { ring; groups }

let shards t = Array.length t.groups

let followers t =
  Array.fold_left
    (fun acc g -> if g.follower = None then acc else acc + 1)
    0 t.groups

let route t spec =
  let idx = Ring.lookup t.ring (Request.coalesce_key spec) in
  (idx, Ring.label t.ring idx)

let close t =
  Array.iter
    (fun g ->
      Shard_client.close g.primary;
      Option.iter Shard_client.close g.follower)
    t.groups

(* Failover ordering for one forwarded line.  Prefer the primary while
   its transport looks healthy; when it is down and the follower is
   not, lead with the follower.  Chaining [Shard_client.send] on the
   second client from inside the first's continuation is allowed — the
   no-reentrancy rule in [Shard_client.send] is per client handle. *)
let group_send g line k =
  match g.follower with
  | None -> Shard_client.send g.primary line k
  | Some f ->
    let first, second =
      if Shard_client.healthy g.primary || not (Shard_client.healthy f) then
        (g.primary, f)
      else (f, g.primary)
    in
    Shard_client.send first line (function
      | Some _ as resp -> k resp
      | None -> Shard_client.send second line k)

(* ------------------------------------------------------------------ *)
(* Response slots: filled out of order, drained in order.              *)

type slot = {
  m : Mutex.t;
  cv : Condition.t;
  mutable line : string;
  mutable filled : bool;
}

let slot_make () =
  { m = Mutex.create (); cv = Condition.create (); line = ""; filled = false }

let slot_fill slot line =
  Mutex.lock slot.m;
  if not slot.filled then begin
    slot.line <- line;
    slot.filled <- true;
    Condition.signal slot.cv
  end;
  Mutex.unlock slot.m

let slot_await slot =
  Mutex.lock slot.m;
  while not slot.filled do
    Condition.wait slot.cv slot.m
  done;
  let line = slot.line in
  Mutex.unlock slot.m;
  line

let error_line ~id msg =
  Response.to_line { Response.id; elapsed_ms = None; body = Response.Error msg }

(* ------------------------------------------------------------------ *)
(* Stats fan-out                                                       *)

let stats_line = "{\"req\":\"stats\"}"

(* Ask every node — primaries and followers alike — for its stats;
   when the last answer (or failure) lands, merge and hand the body to
   [k].  A node is reported healthy iff it answered {e this} probe with
   [ok:true] — live truth at probe time, not the transport's optimism —
   which is what the kill-9 smoke asserts on. *)
let stats_fanout t k =
  let n = Array.length t.groups in
  let prim = Array.make n None in
  let fol = Array.make n None in
  let m = Mutex.create () in
  let remaining =
    ref
      (Array.fold_left
         (fun acc g -> acc + if g.follower = None then 1 else 2)
         0 t.groups)
  in
  let finish () =
    let probe client body =
      let c = Shard_client.stats client in
      ({ c with Shard_client.healthy = c.healthy && body <> None }, body)
    in
    let entries =
      List.map
        (fun i ->
          let g = t.groups.(i) in
          ( probe g.primary prim.(i),
            Option.map (fun f -> probe f fol.(i)) g.follower ))
        (List.init n Fun.id)
    in
    k (Stats.merge entries)
  in
  let parse resp =
    Option.bind resp (fun line ->
        match Jsonl.of_string line with
        | Ok json
          when Option.bind (Jsonl.member "ok" json) Jsonl.to_bool = Some true
          ->
          Some json
        | Ok _ | Error _ -> None)
  in
  let probe client arr i =
    Shard_client.send client stats_line (fun resp ->
        let parsed = parse resp in
        Mutex.lock m;
        arr.(i) <- parsed;
        decr remaining;
        let last = !remaining = 0 in
        Mutex.unlock m;
        if last then finish ())
  in
  Array.iteri
    (fun i g ->
      probe g.primary prim i;
      Option.iter (fun f -> probe f fol i) g.follower)
    t.groups

let stats_response_line ~id body =
  let fields = match body with Jsonl.Obj fields -> fields | other -> [ ("stats", other) ] in
  let envelope =
    [ ("ok", Jsonl.Bool true); ("req", Jsonl.String "stats") ]
    @ (match id with Some v -> [ ("id", v) ] | None -> [])
  in
  Jsonl.to_string (Jsonl.Obj (envelope @ fields))

(* Blocking variant for embedders (tests, a future admin endpoint). *)
let stats_json t =
  let slot = slot_make () in
  stats_fanout t (fun body -> slot_fill slot (Jsonl.to_string body));
  match Jsonl.of_string (slot_await slot) with
  | Ok json -> json
  | Error _ -> Jsonl.Null

(* ------------------------------------------------------------------ *)
(* Per-connection proxy loop                                           *)

let route_response_line ~id spec (idx, addr) =
  Jsonl.to_string
    (Jsonl.Obj
       ([ ("ok", Jsonl.Bool true); ("req", Jsonl.String "route") ]
       @ (match id with Some v -> [ ("id", v) ] | None -> [])
       @ [
           ("key", Jsonl.String (Request.coalesce_key spec));
           ("shard", Jsonl.Int idx);
           ("addr", Jsonl.String addr);
         ]))

let handle_line t push line =
  match Jsonl.of_string line with
  | Error msg -> push (`Ready (error_line ~id:None msg))
  | Ok json -> (
    let id = Jsonl.member "id" json in
    match Option.bind (Jsonl.member "req" json) Jsonl.to_str with
    | Some "ping" ->
      push
        (`Ready
          (Response.to_line
             { Response.id; elapsed_ms = None; body = Response.Pong }))
    | Some "stats" ->
      let slot = slot_make () in
      push (`Slot slot);
      stats_fanout t (fun body ->
          slot_fill slot (stats_response_line ~id body))
    | Some "route" -> (
      match Request.spec_of_json json with
      | Ok spec -> push (`Ready (route_response_line ~id spec (route t spec)))
      | Error msg -> push (`Ready (error_line ~id msg)))
    | Some "prepare" -> (
      match Request.spec_of_json json with
      | Error msg -> push (`Ready (error_line ~id msg))
      | Ok spec ->
        let idx, addr = route t spec in
        let slot = slot_make () in
        push (`Slot slot);
        group_send t.groups.(idx) line (function
          | Some response -> slot_fill slot response
          | None ->
            slot_fill slot
              (error_line ~id
                 (Printf.sprintf "shard %s unavailable" addr))))
    | Some other -> push (`Ready (error_line ~id ("unknown request kind " ^ other)))
    | None ->
      push
        (`Ready
          (error_line ~id "request needs a \"req\" field (prepare, stats, ping)")))

let serve_channels t ic oc =
  let fifo = Stdlib.Queue.create () in
  let lock = Mutex.create () in
  let nonempty = Condition.create () in
  let eof = ref false in
  let push item =
    Mutex.lock lock;
    Stdlib.Queue.push item fifo;
    Condition.signal nonempty;
    Mutex.unlock lock
  in
  let next () =
    Mutex.lock lock;
    let rec wait () =
      match Stdlib.Queue.take_opt fifo with
      | Some item ->
        Mutex.unlock lock;
        Some item
      | None ->
        if !eof then begin
          Mutex.unlock lock;
          None
        end
        else begin
          Condition.wait nonempty lock;
          wait ()
        end
    in
    wait ()
  in
  let writer () =
    let rec loop () =
      match next () with
      | None -> ()
      | Some item ->
        let line =
          match item with `Ready line -> line | `Slot slot -> slot_await slot
        in
        output_string oc line;
        output_char oc '\n';
        flush oc;
        loop ()
    in
    loop ()
  in
  let writer_thread = Thread.create writer () in
  let rec read_loop () =
    match Jsonl.read_line ic with
    | Jsonl.Eof -> ()
    | Jsonl.Oversized n ->
      push
        (`Ready
          (error_line ~id:None
             (Printf.sprintf "request line of %d bytes exceeds the %d byte limit"
                n Jsonl.max_line_bytes)));
      read_loop ()
    | Jsonl.Line line | Jsonl.Tail line ->
      if String.trim line <> "" then handle_line t push line;
      read_loop ()
  in
  read_loop ();
  Mutex.lock lock;
  eof := true;
  Condition.signal nonempty;
  Mutex.unlock lock;
  Thread.join writer_thread

let serve_tcp ?on_listen t ~host ~port =
  let addr = Service.Net.resolve ~host ~port in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock addr;
  Unix.listen sock 64;
  (match on_listen with
  | None -> ()
  | Some f -> (
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, bound) -> f bound
    | Unix.ADDR_UNIX _ -> f port));
  while true do
    match Unix.accept sock with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _peer ->
      ignore
        (Thread.create
           (fun fd ->
             let ic = Unix.in_channel_of_descr fd in
             let oc = Unix.out_channel_of_descr fd in
             (try serve_channels t ic oc with _ -> ());
             (try close_out oc with _ -> ());
             try Unix.close fd with _ -> ())
           fd)
  done
