(* dmfrouter — consistent-hash routing front-end for a dmfd fleet.

   Speaks the same NDJSON protocol as a single daemon, so any client
   (dmfstream, the bench harness, a pipe of raw JSON) points at it
   unchanged.  Prepare requests are forwarded — as raw bytes — to the
   shard owning their coalesce key on a consistent-hash ring, so
   requests that could merge into one planning job always meet in the
   same daemon and demand-summing coalescing stays exactly as effective
   as in a single process.  stats fans out to every shard and merges;
   ping and the route placement diagnostic are answered locally.

     dmfrouter --shard 127.0.0.1:7433 --shard 127.0.0.1:7434 --port 7400
     dmfrouter --shard 127.0.0.1:7433 --port 0   # announce PORT=<n>
     dmfrouter --shard 127.0.0.1:7433,127.0.0.1:7533   # with hot standby

   A dead shard produces error responses within a bounded retry budget
   (never a hang) and is reported healthy:false in merged stats; the
   other shards keep streaming.  When a shard lists a follower after a
   comma, requests fail over to it while the primary's transport is
   down: cached reads immediately, writes once the follower is promoted
   (dmfd --follow promotes on SIGUSR1 or a promote request). *)

open Cmdliner

let parse_host_port s =
  match String.rindex_opt s ':' with
  | None -> Error (`Msg (Printf.sprintf "%S is not HOST:PORT" s))
  | Some i -> (
    let host = String.sub s 0 i in
    let port_s = String.sub s (i + 1) (String.length s - i - 1) in
    match int_of_string_opt port_s with
    | Some port when port > 0 && port < 65536 && host <> "" ->
      Ok (host, port)
    | _ -> Error (`Msg (Printf.sprintf "%S is not HOST:PORT" s)))

let parse_endpoint s =
  match String.index_opt s ',' with
  | None -> Result.map (fun p -> (p, None)) (parse_host_port s)
  | Some i ->
    let primary = String.sub s 0 i in
    let follower = String.sub s (i + 1) (String.length s - i - 1) in
    Result.bind (parse_host_port primary) (fun p ->
        Result.map (fun f -> (p, Some f)) (parse_host_port follower))

let endpoint_conv =
  let pp_host_port ppf (host, port) = Format.fprintf ppf "%s:%d" host port in
  Arg.conv
    ( parse_endpoint,
      fun ppf (primary, follower) ->
        match follower with
        | None -> pp_host_port ppf primary
        | Some f -> Format.fprintf ppf "%a,%a" pp_host_port primary pp_host_port f
    )

let shards_arg =
  Arg.(
    non_empty
    & opt_all endpoint_conv []
    & info [ "s"; "shard" ] ~docv:"HOST:PORT[,FHOST:FPORT]"
        ~doc:
          "A dmfd shard endpoint, optionally paired with a hot-standby \
           follower after a comma. Repeatable; the option order defines the \
           ring's shard indices, so every router over the same list routes \
           identically.")

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Address to bind.")

let port_arg =
  Arg.(
    value & opt int 7400
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:
          "TCP port to listen on. 0 binds a kernel-chosen ephemeral port and \
           announces it on stdout as a PORT=<n> line.")

let vnodes_arg =
  Arg.(
    value
    & opt int Cluster.Ring.default_vnodes
    & info [ "vnodes" ] ~docv:"N"
        ~doc:"Ring points per shard (balance/remap granularity).")

let retries_arg =
  Arg.(
    value & opt int 3
    & info [ "retries" ] ~docv:"N"
        ~doc:"Reconnect attempts per request to a down shard.")

let backoff_arg =
  Arg.(
    value & opt float 50.
    & info [ "backoff-ms" ] ~docv:"MS"
        ~doc:"Pause between reconnect attempts.")

let cooldown_arg =
  Arg.(
    value & opt float 1000.
    & info [ "cooldown-ms" ] ~docv:"MS"
        ~doc:
          "Fail-fast window after the retry budget is spent: requests to the \
           shard error immediately until the window expires.")

let run shards host port vnodes retries backoff_ms cooldown_ms =
  Service.Validate.run_cli (fun () ->
      let router =
        Cluster.Router.create ~vnodes ~retries ~backoff_ms ~cooldown_ms shards
      in
      let shutdown _signal =
        ignore
          (Thread.create
             (fun () ->
               Cluster.Router.close router;
               exit 0)
             ())
      in
      Sys.set_signal Sys.sigterm (Sys.Signal_handle shutdown);
      Sys.set_signal Sys.sigint (Sys.Signal_handle shutdown);
      (* Forwarding to a shard that died mid-write raises EPIPE on this
         process by default; the shard client turns it into an error
         response instead. *)
      Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
      let on_listen bound =
        Printf.printf "PORT=%d\n%!" bound;
        Printf.eprintf
          "dmfrouter: routing %s:%d over %d shard(s), %d follower(s): %s\n%!"
          host bound
          (Cluster.Router.shards router)
          (Cluster.Router.followers router)
          (String.concat ", "
             (List.map
                (fun ((h, p), follower) ->
                  match follower with
                  | None -> Printf.sprintf "%s:%d" h p
                  | Some (fh, fp) -> Printf.sprintf "%s:%d,%s:%d" h p fh fp)
                shards))
      in
      Cluster.Router.serve_tcp router ~on_listen ~host ~port)

let cmd =
  let doc = "consistent-hash routing front-end for a dmfd shard fleet" in
  let term =
    Term.(
      const run $ shards_arg $ host_arg $ port_arg $ vnodes_arg $ retries_arg
      $ backoff_arg $ cooldown_arg)
  in
  Cmd.v (Cmd.info "dmfrouter" ~version:"1.0.0" ~doc) term

let () = exit (Cmd.eval cmd)
