(* A builder that clusters same-fluid entries (the opposite bias of RMA's
   [balance_fluids]): identical sub-multisets then recur on both sides of
   the tree, creating duplicate intermediate values that sharing can
   exploit. *)
let rec build_clustered entries k =
  match entries with
  | [] -> invalid_arg "Mtcs: empty entry multiset"
  | [ { Entry.fluid; weight } ] ->
    assert (weight = Dmf.Binary.pow2 k);
    Tree.Leaf fluid
  | _ :: _ :: _ ->
    let half = Dmf.Binary.pow2 (k - 1) in
    let left, right = Entry.partition ~half entries in
    Tree.Mix (build_clustered left (k - 1), build_clustered right (k - 1))

let build r =
  let n = Dmf.Ratio.n_fluids r in
  let candidates =
    [ Minmix.build r; build_clustered (Entry.of_ratio r) (Dmf.Ratio.accuracy r) ]
  in
  let cost t =
    let stats = Sharing.pass_stats ~n t in
    (stats.Sharing.mixes, Array.fold_left ( + ) 0 stats.Sharing.inputs)
  in
  match candidates with
  | [] -> assert false
  | first :: rest ->
    List.fold_left
      (fun best t -> if cost t < cost best then t else best)
      first rest
