(* Clean counterpart of bad_condvar: the canonical lock / re-check /
   wait loop. *)

let m = Mutex.create ()
let ready = Condition.create ()
let flag = ref false

let await () =
  Mutex.lock m;
  while not !flag do
    Condition.wait ready m
  done;
  Mutex.unlock m

let fire () =
  Mutex.lock m;
  flag := true;
  Condition.signal ready;
  Mutex.unlock m
