lib/chip/actuation.mli: Layout Mdst
