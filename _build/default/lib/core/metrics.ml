type t = {
  scheme : string;
  mixers : int;
  demand : int;
  tc : int;
  q : int;
  tms : int;
  waste : int;
  inputs : int array;
  input_total : int;
  trees : int;
  passes : int;
}

let of_schedule ~scheme ~plan s =
  let inputs = Plan.input_vector plan in
  {
    scheme;
    mixers = Schedule.mixers s;
    demand = Plan.demand plan;
    tc = Schedule.completion_time s;
    q = Storage.units ~plan s;
    tms = Plan.tms plan;
    waste = Plan.waste plan;
    inputs;
    input_total = Array.fold_left ( + ) 0 inputs;
    trees = Plan.trees plan;
    passes = 1;
  }

let percent_improvement ~baseline v =
  if baseline = 0 then 0.
  else float_of_int (baseline - v) /. float_of_int baseline *. 100.

let pp ppf m =
  Format.fprintf ppf
    "%s: Mc=%d D=%d Tc=%d q=%d Tms=%d W=%d I=%d (%d trees, %d passes)"
    m.scheme m.mixers m.demand m.tc m.q m.tms m.waste m.input_total m.trees
    m.passes
