type t = {
  failed_node : int;
  failure_cycle : int;
  delivered : int;
  salvaged : Dmf.Mixture.t array;
  remaining_demand : int;
  recovery_plan : Plan.t option;
  fresh_restart : Plan.t option;
}

let recover ~algorithm ~plan ~schedule ~failed_node =
  if failed_node < 0 || failed_node >= Plan.n_nodes plan then
    invalid_arg "Recovery.recover: failed node out of range";
  let distinct_targets =
    List.fold_left
      (fun acc r -> Dmf.Mixture.Set.add (Plan.root_value plan r) acc)
      Dmf.Mixture.Set.empty (Plan.roots plan)
    |> Dmf.Mixture.Set.cardinal
  in
  if distinct_targets > 1 then
    invalid_arg "Recovery.recover: multi-target plans are not supported";
  let failure_cycle = Schedule.cycle schedule failed_node in
  let executed id = Schedule.cycle schedule id <= failure_cycle in
  (* Targets already emitted: both droplets of every executed root,
     except the failed node's own outputs. *)
  let delivered =
    List.fold_left
      (fun acc r ->
        if executed r && r <> failed_node then acc + 2 else acc)
      0 (Plan.roots plan)
  in
  (* Surviving droplets: spares of executed nodes that were parked in
     storage for a consumer scheduled after the failure.  Waste droplets
     were already discarded, consumed droplets are gone, and the failed
     node's outputs were lost. *)
  let salvaged = ref [] in
  List.iter
    (fun node ->
      let id = node.Plan.id in
      if executed id && id <> failed_node && not (Plan.is_root plan id) then
        List.iter
          (fun port ->
            match Plan.consumer plan ~node:id ~port with
            | Some c when not (executed c) ->
              salvaged := node.Plan.value :: !salvaged
            | Some _ | None -> ())
          [ 0; 1 ])
    (Plan.nodes plan);
  (* Unconsumed reserves of the original plan survive too. *)
  Array.iteri
    (fun i value ->
      let still_there =
        not (Plan.reserve_consumed plan i)
        || List.exists
             (fun node ->
               (not (executed node.Plan.id))
               && List.exists
                    (function
                      | Plan.Reserve j -> j = i
                      | Plan.Input _ | Plan.Output _ -> false)
                    [ node.Plan.left; node.Plan.right ])
             (Plan.nodes plan)
      in
      if still_there then salvaged := value :: !salvaged)
    (Plan.reserves plan);
  let salvaged = Array.of_list (List.rev !salvaged) in
  let remaining_demand = Plan.demand plan - delivered in
  let ratio = Plan.ratio plan in
  let recovery_plan, fresh_restart =
    if remaining_demand <= 0 then (None, None)
    else begin
      let tree = Mixtree.Algorithm.build algorithm ratio in
      (* Recovery wants maximal droplet reuse, so spares are shared
         immediately regardless of the base algorithm's execution
         model. *)
      ( Some
          (Forest.of_tree ~reserves:salvaged ~ratio ~demand:remaining_demand
             ~sharing:true tree),
        Some
          (Forest.of_tree ~ratio ~demand:remaining_demand ~sharing:true tree)
      )
    end
  in
  {
    failed_node;
    failure_cycle;
    delivered;
    salvaged;
    remaining_demand;
    recovery_plan;
    fresh_restart;
  }

let reagent_saving t =
  match (t.recovery_plan, t.fresh_restart) with
  | Some recovery, Some fresh ->
    Plan.input_total fresh - Plan.input_total recovery
  | None, _ | _, None -> 0
