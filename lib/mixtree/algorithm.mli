(** The four base mixing algorithms of the literature (Table 1).

    Each algorithm turns a target ratio into a base mixing tree of depth
    at most [d]; the MDST engine then grows a mixing forest from that
    tree.  MTCS additionally executes with intra-pass droplet sharing
    (identical intermediate mixtures computed once per pass). *)

type t =
  | MM  (** Min-Mix, Thies et al. [24]. *)
  | RMA  (** Layout-aware, Roy et al. [18] — most waste, best streaming seed. *)
  | MTCS  (** Mix-split minimising, Kumar et al. [16]. *)
  | RSM  (** Reagent-saving, Hsieh et al. [25]. *)

val all : t list
(** All algorithms, in the paper's citation order. *)

val build : t -> Dmf.Ratio.t -> Tree.t
(** [build algo r] is the base mixing tree of [algo] for [r].  The result
    always satisfies [Tree.validate ~ratio:r].  Memoised on
    [(algo, parts r)]: repeated requests return the shared immutable
    tree; safe to call concurrently from several domains. *)

val intra_pass_sharing : t -> bool
(** Whether a stand-alone pass of the algorithm shares identical
    intermediate droplets ([true] only for MTCS). *)

val name : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit
