(* The original O(n·T) schedulers, retained verbatim as the differential
   reference for the event-driven rewrites — the {!Mms}, {!Srs} and
   {!Oms} policies over {!Sched_core}: all three rescan the whole plan
   once per time-cycle to find newly schedulable nodes.  Kept out of the
   hot paths; used by the property tests and the speed benchmark only. *)

let enqueue_order a b =
  let na = a.Plan.level and nb = b.Plan.level in
  match Int.compare na nb with
  | 0 -> (
    match Int.compare a.Plan.tree b.Plan.tree with
    | 0 -> Int.compare a.Plan.bfs b.Plan.bfs
    | c -> c)
  | c -> c

let mms ~plan ~mixers =
  if mixers < 1 then invalid_arg "Naive.mms: at least one mixer";
  let n = Plan.n_nodes plan in
  let cycles = Array.make n 0 in
  let mixer_of = Array.make n 0 in
  let pending = Array.make n 0 in
  List.iter
    (fun node ->
      pending.(node.Plan.id) <- List.length (Plan.predecessors node))
    (Plan.nodes plan);
  let enqueued = Array.make n false in
  let queue = Queue.create () in
  let remaining = ref n in
  let depth = Dmf.Ratio.accuracy (Plan.ratio plan) in
  (* Admit every node that has become schedulable and is not yet queued. *)
  let admit () =
    Plan.nodes plan
    |> List.filter (fun node ->
           (not enqueued.(node.Plan.id)) && pending.(node.Plan.id) = 0)
    |> List.sort enqueue_order
    |> List.iter (fun node ->
           enqueued.(node.Plan.id) <- true;
           Queue.push node queue)
  in
  let run_cycle t =
    let launched = ref 0 in
    while !launched < mixers && not (Queue.is_empty queue) do
      let node = Queue.pop queue in
      incr launched;
      cycles.(node.Plan.id) <- t;
      mixer_of.(node.Plan.id) <- !launched;
      decr remaining;
      (match Plan.consumer plan ~node:node.Plan.id ~port:0 with
      | Some c -> pending.(c) <- pending.(c) - 1
      | None -> ());
      match Plan.consumer plan ~node:node.Plan.id ~port:1 with
      | Some c -> pending.(c) <- pending.(c) - 1
      | None -> ()
    done
  in
  let t = ref 0 in
  for _level = 1 to depth do
    incr t;
    admit ();
    run_cycle !t
  done;
  let guard = ref (Schedule.no_progress_bound ~nodes:n ~depth) in
  while !remaining > 0 do
    decr guard;
    if !guard <= 0 then failwith "Naive.mms: no progress (internal error)";
    incr t;
    admit ();
    run_cycle !t
  done;
  Schedule.create ~plan ~mixers ~cycles ~mixer_of

let int_priority a b =
  match Int.compare b.Plan.level a.Plan.level with
  | 0 -> (
    match Int.compare a.Plan.tree b.Plan.tree with
    | 0 -> Int.compare a.Plan.bfs b.Plan.bfs
    | c -> c)
  | c -> c

let leaf_priority a b =
  match Int.compare a.Plan.level b.Plan.level with
  | 0 -> (
    match Int.compare a.Plan.tree b.Plan.tree with
    | 0 -> Int.compare a.Plan.bfs b.Plan.bfs
    | c -> c)
  | c -> c

let srs ~plan ~mixers =
  if mixers < 1 then invalid_arg "Naive.srs: at least one mixer";
  let n = Plan.n_nodes plan in
  let cycles = Array.make n 0 in
  let mixer_of = Array.make n 0 in
  let pending = Array.make n 0 in
  List.iter
    (fun node ->
      pending.(node.Plan.id) <- List.length (Plan.predecessors node))
    (Plan.nodes plan);
  let queued = Array.make n false in
  let qint = ref (Pqueue.empty ~compare:int_priority) in
  let qleaf = ref (Pqueue.empty ~compare:leaf_priority) in
  let remaining = ref n in
  let admit () =
    List.iter
      (fun node ->
        if (not queued.(node.Plan.id)) && pending.(node.Plan.id) = 0 then begin
          queued.(node.Plan.id) <- true;
          match Plan.child_kind plan node with
          | `Both_leaves -> qleaf := Pqueue.insert node !qleaf
          | `Both_internal | `One_internal -> qint := Pqueue.insert node !qint
        end)
      (Plan.nodes plan)
  in
  let t = ref 0 in
  let launch t node slot =
    cycles.(node.Plan.id) <- t;
    mixer_of.(node.Plan.id) <- slot;
    decr remaining;
    List.iter
      (fun port ->
        match Plan.consumer plan ~node:node.Plan.id ~port with
        | Some c -> pending.(c) <- pending.(c) - 1
        | None -> ())
      [ 0; 1 ]
  in
  let depth = Dmf.Ratio.accuracy (Plan.ratio plan) in
  let guard = ref (Schedule.no_progress_bound ~nodes:n ~depth) in
  while !remaining > 0 do
    decr guard;
    if !guard <= 0 then failwith "Naive.srs: no progress (internal error)";
    incr t;
    admit ();
    let int_nodes = Pqueue.size !qint in
    let slot = ref 0 in
    let take_from q limit =
      let taken = ref 0 in
      while !taken < limit && not (Pqueue.is_empty !q) do
        match Pqueue.pop !q with
        | None -> ()
        | Some (node, rest) ->
          q := rest;
          incr taken;
          incr slot;
          launch !t node !slot
      done
    in
    take_from qint (min mixers int_nodes);
    take_from qleaf (max 0 (mixers - int_nodes))
  done;
  Schedule.create ~plan ~mixers ~cycles ~mixer_of

let oms_priority a b =
  match Int.compare a.Plan.level b.Plan.level with
  | 0 -> (
    match Int.compare a.Plan.tree b.Plan.tree with
    | 0 -> Int.compare a.Plan.bfs b.Plan.bfs
    | c -> c)
  | c -> c

let oms ~plan ~mixers =
  if mixers < 1 then invalid_arg "Naive.oms: at least one mixer";
  let n = Plan.n_nodes plan in
  let cycles = Array.make n 0 in
  let mixer_of = Array.make n 0 in
  let pending = Array.make n 0 in
  List.iter
    (fun node -> pending.(node.Plan.id) <- List.length (Plan.predecessors node))
    (Plan.nodes plan);
  let scheduled = Array.make n false in
  let remaining = ref n in
  let t = ref 0 in
  while !remaining > 0 do
    incr t;
    let ready =
      Plan.nodes plan
      |> List.filter (fun node ->
             (not scheduled.(node.Plan.id)) && pending.(node.Plan.id) = 0)
      |> List.sort oms_priority
    in
    List.iteri
      (fun i node ->
        if i < mixers then begin
          let id = node.Plan.id in
          scheduled.(id) <- true;
          cycles.(id) <- !t;
          mixer_of.(id) <- i + 1;
          decr remaining;
          List.iter
            (fun port ->
              match Plan.consumer plan ~node:id ~port with
              | Some c -> pending.(c) <- pending.(c) - 1
              | None -> ())
            [ 0; 1 ]
        end)
      ready
  done;
  Schedule.create ~plan ~mixers ~cycles ~mixer_of
