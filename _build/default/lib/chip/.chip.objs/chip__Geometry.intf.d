lib/chip/geometry.mli: Format
