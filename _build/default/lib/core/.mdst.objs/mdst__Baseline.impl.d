lib/core/baseline.ml: Array Dmf Forest Metrics Mixtree Oms
