lib/sim/executor.mli: Chip Dmf Mdst Trace
