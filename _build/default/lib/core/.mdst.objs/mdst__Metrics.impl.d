lib/core/metrics.ml: Array Format Plan Schedule Storage
