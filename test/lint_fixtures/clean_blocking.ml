(* Clean counterpart of bad_blocking: the lock covers only the shared
   state, the sleep happens outside it. *)

let m = Mutex.create ()
let counter = ref 0

let tick () =
  Mutex.lock m;
  incr counter;
  Mutex.unlock m;
  Thread.delay 0.01
