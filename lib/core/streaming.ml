type pass = {
  demand : int;
  plan : Plan.t;
  schedule : Schedule.t;
  tc : int;
  q : int;
  waste : int;
}

type t = {
  passes : pass list;
  per_pass_demand : int;
  total_cycles : int;
  total_waste : int;
  total_inputs : int;
  storage_limit : int;
  within_limit : bool;
}

let make_pass ?instr ~algorithm ~ratio ~mixers ~scheduler demand =
  let plan = Forest.build ~algorithm ~ratio ~demand in
  let schedule = Scheduler.schedule ?instr scheduler ~plan ~mixers in
  {
    demand;
    plan;
    schedule;
    tc = Schedule.completion_time schedule;
    q = Storage.units ~plan schedule;
    waste = Plan.waste plan;
  }

let max_demand_per_pass ~algorithm ~ratio ~mixers ~storage_limit ~scheduler
    ~max_demand =
  let rec search best candidate =
    if candidate > max_demand then best
    else
      let pass = make_pass ~algorithm ~ratio ~mixers ~scheduler candidate in
      let best = if pass.q <= storage_limit then Some candidate else best in
      search best (candidate + 2)
  in
  search None 2

(* Only the final passes are instrumented: the per-pass-demand probes
   explore candidate plans that never run, so their counters would
   pollute the aggregate. *)
let run_general ?instr ~pass_size ~algorithm ~ratio ~demand ~mixers
    ~storage_limit ~scheduler () =
  if demand < 1 then invalid_arg "Streaming.run: demand must be >= 1";
  if mixers < 1 then invalid_arg "Streaming.run: at least one mixer";
  let per_pass_demand, within_limit =
    match pass_size with
    | Some d' ->
      if d' < 2 || d' land 1 = 1 then
        invalid_arg "Streaming.run: pass size must be even and positive";
      let probe = make_pass ~algorithm ~ratio ~mixers ~scheduler d' in
      (d', probe.q <= storage_limit)
    | None -> (
      match
        max_demand_per_pass ~algorithm ~ratio ~mixers ~storage_limit
          ~scheduler
          ~max_demand:(demand + (demand land 1))
      with
      | Some d' -> (d', true)
      | None -> (2, false))
  in
  let rec plan_passes remaining acc =
    if remaining <= 0 then List.rev acc
    else
      let this = min per_pass_demand remaining in
      let pass = make_pass ?instr ~algorithm ~ratio ~mixers ~scheduler this in
      plan_passes (remaining - this) (pass :: acc)
  in
  let passes = plan_passes demand [] in
  {
    passes;
    per_pass_demand;
    total_cycles = List.fold_left (fun acc p -> acc + p.tc) 0 passes;
    total_waste = List.fold_left (fun acc p -> acc + p.waste) 0 passes;
    total_inputs =
      List.fold_left (fun acc p -> acc + Plan.input_total p.plan) 0 passes;
    storage_limit;
    within_limit;
  }

let run ?instr ~algorithm ~ratio ~demand ~mixers ~storage_limit ~scheduler () =
  run_general ?instr ~pass_size:None ~algorithm ~ratio ~demand ~mixers
    ~storage_limit ~scheduler ()

let run_fixed ?instr ~pass_size ~algorithm ~ratio ~demand ~mixers
    ~storage_limit ~scheduler () =
  run_general ?instr ~pass_size:(Some pass_size) ~algorithm ~ratio ~demand
    ~mixers ~storage_limit ~scheduler ()

let n_passes t = List.length t.passes
