lib/sim/contamination.mli: Chip Dmf Mdst Trace
