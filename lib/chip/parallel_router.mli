(** Concurrent droplet routing with space-time reservations.

    The sequential {!Router} moves one droplet at a time; real
    compilers route all of a cycle's droplets concurrently (path
    scheduling, Grissom and Brisk [8]).  This module plans a batch of
    moves on a time-expanded grid: droplets step (or wait) once per
    sub-step, and the dynamic DMF fluidic constraint is enforced — two
    unrelated droplets may never come within Chebyshev distance 1 of
    each other at the same sub-step or at adjacent sub-steps.  Droplets
    heading into the same module (the two operands of one mixer) are
    exempt from mutual segregation once both cells lie inside that
    module.

    Planning is prioritised: longer moves are routed first, each
    against the reservations of the already-routed ones, with waiting
    allowed.  This is a heuristic — prioritised planning is not
    complete — so {!route_batch} can fail on pathological batches; the
    time horizon bounds the search.

    The search runs on flat int-indexed arrays (node [t * cells +
    cell]) with stamped visit/reservation marks, so planning one
    droplet costs O(nodes) with no per-expansion scan of the reserved
    trajectories; {!Reference} keeps the original Hashtbl/Queue
    planner as the differential oracle. *)

type request = {
  id : int;  (** Caller's identifier, echoed in the result. *)
  src : Geometry.point;
  dst : Geometry.point;
  allow : string list;  (** Modules this droplet may enter. *)
}

type routed = {
  id : int;
  trajectory : Geometry.point list;
      (** Position at sub-steps 0, 1, ...; repeated positions are
          waits.  All trajectories in a batch have equal length
          (droplets park at their destination). *)
}

(** Reusable planning buffers: time-expanded visit/parent/queue arrays
    and the stamped reservation grid.  One scratch serves any number of
    sequential {!route_batch} calls (it grows to the largest layout and
    horizon seen); it is not thread-safe. *)
module Scratch : sig
  type t

  val create : unit -> t
end

val route_batch :
  ?scratch:Scratch.t ->
  ?horizon:int ->
  Layout.t ->
  request list ->
  (routed list, string) result
(** [route_batch layout requests] plans all moves concurrently.
    [horizon] bounds the sub-step count (default: grid perimeter x 4).
    Fails when some droplet cannot reach its destination within the
    horizon under the accumulated reservations.  Pass [scratch] to
    reuse planning buffers across consecutive batches. *)

val makespan : routed list -> int
(** Sub-steps until the last droplet arrives (trajectory length - 1);
    0 for an empty batch. *)

val validate : Layout.t -> routed list -> (unit, string) result
(** Re-checks every constraint of a planned batch: unit steps or waits
    only, in-bounds, module avoidance (except same-module pairs), and
    the dynamic segregation rule at equal and adjacent sub-steps. *)

(** The original space-time planner — per-call Hashtbl parent maps and
    a linear scan of every reserved trajectory per expansion — kept as
    the differential reference for the stamped flat-array planner. *)
module Reference : sig
  val route_batch :
    ?horizon:int -> Layout.t -> request list -> (routed list, string) result
end
