(** Fixed worker pool on OCaml 5 domains.

    [workers] domains drain the admission queue; each wraps its handler
    in {!Mdst.Par.serialized}, so planning code that reaches a parallel
    corpus helper degrades to serial inside a worker — the pool owns the
    parallelism, exactly like {!Mdst.Par}'s chunk workers.  A handler
    that escapes with an exception fulfils its job with an [Error]
    instead of killing the worker. *)

type t

val start : workers:int -> handler:(Queue.job -> unit) -> Queue.t -> t
(** Spawn [workers] domains, each looping [take -> handler] until the
    queue is closed and drained.  The handler must {!Queue.fulfil} the
    job.  @raise Invalid_argument if [workers < 1]. *)

val workers : t -> int

val join : t -> unit
(** Wait for every worker to exit (call {!Queue.close} first). *)
