(* Shared TCP name resolution for every networked front end.

   One helper, used by the dmfstream client, the dmfd TCP listener and
   the dmfrouter shard pool, so they all accept exactly the same host
   syntax and fail with the same message.  Resolution goes through
   [Unix.getaddrinfo]: unlike the deprecated [Unix.gethostbyname] it is
   thread-safe (the router resolves shard addresses from many threads)
   and does not share a static result buffer. *)

let resolve ~host ~port =
  match Unix.inet_addr_of_string host with
  | addr -> Unix.ADDR_INET (addr, port)
  | exception Failure _ -> (
    let hints =
      [ Unix.AI_SOCKTYPE Unix.SOCK_STREAM; Unix.AI_FAMILY Unix.PF_INET ]
    in
    let inet = function
      | { Unix.ai_addr = Unix.ADDR_INET _ as addr; _ } -> Some addr
      | _ -> None
    in
    match
      List.find_map inet
        (try Unix.getaddrinfo host (string_of_int port) hints
         with Unix.Unix_error _ -> [])
    with
    | Some addr -> addr
    | None -> failwith ("cannot resolve host " ^ host))

let connect ~host ~port =
  let addr = resolve ~host ~port in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (* connect(2) interrupted by a signal keeps establishing the
     connection in the background, so the retry can find the socket
     already connected: EISCONN on the retry is success. *)
  match
    Analysis.Runtime.retry_eintr (fun () ->
        try Unix.connect fd addr
        with Unix.Unix_error (Unix.EISCONN, _, _) -> ())
  with
  | () -> fd
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e
