test/test_extra_props.mli:
