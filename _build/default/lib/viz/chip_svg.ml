let cell = 22.
let margin = 30.

let kind_color = function
  | Chip.Chip_module.Reservoir _ -> "#4e79a7"
  | Chip.Chip_module.Mixer -> "#e15759"
  | Chip.Chip_module.Storage -> "#edc948"
  | Chip.Chip_module.Waste -> "#9c755f"
  | Chip.Chip_module.Output_port -> "#59a14f"

let render ?heatmap layout =
  let w = Chip.Layout.width layout and h = Chip.Layout.height layout in
  let width = margin +. (float_of_int w *. cell) +. margin in
  let height = margin +. (float_of_int h *. cell) +. margin in
  let elements = ref [] in
  let push e = elements := e :: !elements in
  let cx x = margin +. (float_of_int x *. cell) in
  let cy y = margin +. (float_of_int y *. cell) in
  (* Electrode grid, shaded by wear when a heatmap is given. *)
  let max_heat =
    match heatmap with
    | None -> 0
    | Some grid ->
      Array.fold_left
        (fun acc row -> Array.fold_left max acc row)
        1 grid
  in
  for y = 0 to h - 1 do
    for x = 0 to w - 1 do
      let heat =
        match heatmap with None -> 0 | Some grid -> grid.(y).(x)
      in
      let fill, opacity =
        if heat = 0 then ("#f4f4f4", None)
        else
          ( "#d62728",
            Some (0.15 +. (0.85 *. float_of_int heat /. float_of_int max_heat)) )
      in
      let children =
        [ Svg.rect ~x:(cx x) ~y:(cy y) ~w:(cell -. 1.) ~h:(cell -. 1.) ~fill
            ?opacity ~stroke:"#ddd" () ]
        @
        if heat > 0 then
          [ Svg.title (Printf.sprintf "(%d,%d): %d actuations" x y heat) ]
        else []
      in
      push (Svg.group children)
    done
  done;
  (* Modules. *)
  List.iter
    (fun m ->
      let r = m.Chip.Chip_module.rect in
      push
        (Svg.group
           [
             Svg.rect
               ~x:(cx r.Chip.Geometry.x)
               ~y:(cy r.Chip.Geometry.y)
               ~w:((float_of_int r.Chip.Geometry.w *. cell) -. 1.)
               ~h:((float_of_int r.Chip.Geometry.h *. cell) -. 1.)
               ~rx:3.
               ~fill:(kind_color m.Chip.Chip_module.kind)
               ~stroke:"#333"
               ~opacity:(if heatmap = None then 1.0 else 0.45)
               ();
             Svg.text
               ~x:(cx r.Chip.Geometry.x +. (float_of_int r.Chip.Geometry.w *. cell /. 2.))
               ~y:(cy r.Chip.Geometry.y +. (float_of_int r.Chip.Geometry.h *. cell /. 2.) +. 3.)
               ~anchor:"middle" ~fill:"#111"
               m.Chip.Chip_module.id;
             Svg.title
               (Printf.sprintf "%s (%s)" m.Chip.Chip_module.id
                  (Chip.Chip_module.kind_name m.Chip.Chip_module.kind));
           ]))
    (Chip.Layout.modules layout);
  Svg.document ~width ~height (List.rev !elements)

let write ~path ?heatmap layout =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ?heatmap layout))
