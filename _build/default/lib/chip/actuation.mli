(** Electrode-actuation accounting of a schedule on a layout.

    Executing a mixing forest on a chip moves droplets between modules:
    reservoir dispenses, producer-to-consumer transfers (directly or via a
    storage unit), waste disposal and target emission.  Each movement
    actuates one electrode per step of its route; Section 5 compares the
    total actuation count of the streamed forest (386 electrodes on the
    Figure 5 layout) against repeated MM passes (980) — excessive
    actuation degrades biochip reliability and lifetime [10]. *)

type movement = {
  cycle : int;  (** Schedule cycle during which the move happens. *)
  description : string;  (** Human-readable droplet identity. *)
  src : string;  (** Source module id. *)
  dst : string;  (** Destination module id. *)
  cost : int;  (** Electrodes actuated. *)
}

type t = {
  movements : movement list;
  total_electrodes : int;
  dispenses : int;  (** Reservoir dispenses (droplets drawn). *)
  via_storage : int;  (** Transfers that went through a storage unit. *)
  direct_transfers : int;  (** Producer-to-consumer transfers mixer-to-mixer. *)
  to_waste : int;
  emitted : int;  (** Target droplets routed to the output port. *)
}

val account :
  layout:Layout.t ->
  plan:Mdst.Plan.t ->
  schedule:Mdst.Schedule.t ->
  (t, string) result
(** [account ~layout ~plan ~schedule] derives every droplet movement and
    its cost.  Fails if the layout lacks a reservoir for some fluid, has
    too few mixers or storage units, or some route does not exist. *)

val total : t -> int
