examples/fault_tolerant_run.ml: Array Bioproto Chip Dmf Format List Mdst Mixtree Sim
