(* DML006: this program installs a signal handler, so every slow
   syscall can fail with EINTR — the raw select is a latent crash. *)

let () = Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> ()))

let poll fd = ignore (Unix.select [ fd ] [] [] 0.01)

let main () = poll Unix.stdin

let () = if Array.length Sys.argv > 10 then main ()
