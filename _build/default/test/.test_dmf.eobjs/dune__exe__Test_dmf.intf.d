test/test_dmf.mli:
