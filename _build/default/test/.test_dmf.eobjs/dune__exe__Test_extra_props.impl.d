test/test_extra_props.ml: Alcotest Array Chip Dmf Fun Gen Generators List Mdst Mixtree Printf QCheck2 Sim String Viz
