(* Phase 2: re-interpret every function from an empty held set, with
   summaries available, and emit findings + lock-graph edges.  Findings
   fire in the frame that actually holds the lock (every function is a
   phase-2 root), so a blocking callee produces one finding per
   offending call site, not one per transitive path. *)

module SS = Set.Make (String)
module S = Summary

type out = {
  mutable findings : Finding.t list;
  graph : Lockgraph.t;
  mutable pairs : (string * string * S.loc) list;  (* condvar, mutex *)
}

let add_finding out rule loc msg =
  out.findings <- Finding.make rule loc msg :: out.findings

let held_names held = String.concat ", " (List.rev_map fst held)

(* Functions transitively reachable — via calls and escaping refs —
   from the <init> of any unit that installs a Sys.Signal_handle, plus
   the handlers themselves.  Only these run in a program where EINTR is
   live. *)
let signal_reachable units (prop : Propagate.t) =
  let roots =
    List.concat_map
      (fun u ->
        if u.S.installs_signal_handler then
          (u.S.modname ^ ".<init>") :: u.S.signal_roots
        else [])
      units
  in
  let visited = ref SS.empty in
  let rec visit n =
    if not (SS.mem n !visited) then begin
      visited := SS.add n !visited;
      match Propagate.find prop n with
      | Some s ->
        SS.iter visit s.Propagate.calls;
        SS.iter visit s.Propagate.refs
      | None -> ()
    end
  in
  List.iter visit roots;
  !visited

type flags = { mutable spawned : bool; mutable asserted : bool }

let run (units : S.unit_info list) (prop : Propagate.t) =
  let out = { findings = []; graph = Lockgraph.create (); pairs = [] } in
  let reachable = signal_reachable units prop in
  let summ g = Propagate.find prop g in
  let rec exec ~sensitive flags held evs =
    List.fold_left (step ~sensitive flags) held evs
  and step ~sensitive flags held ev =
    match ev with
    | S.Acquire { lock; loc } ->
      if List.mem_assoc lock held then begin
        add_finding out Ids.lock_order loc
          (Printf.sprintf "lock %s acquired while already held" lock);
        held
      end
      else begin
        List.iter (fun (h, _) -> Lockgraph.add out.graph h lock loc) held;
        (lock, loc) :: held
      end
    | S.Release { lock } -> List.remove_assoc lock held
    | S.Wait { cond; mutex; loc } ->
      out.pairs <- (cond, mutex, loc) :: out.pairs;
      if not (List.mem_assoc mutex held) then
        add_finding out Ids.condvar_mutex loc
          (Printf.sprintf "Condition.wait on %s without its mutex %s held"
             cond mutex);
      let others = List.remove_assoc mutex held in
      if others <> [] then
        add_finding out Ids.condvar_mutex loc
          (Printf.sprintf
             "Condition.wait on %s parks the thread while still holding %s"
             cond (held_names others));
      held
    | S.Call { callee = S.Global g; loc; guarded } ->
      if g = Prims.assert_no_domains then flags.asserted <- true;
      let gs = summ g in
      (* blocking / callback under a lock *)
      (if held <> [] then
         if SS.mem g Prims.blocking then
           add_finding out Ids.blocking_under_lock loc
             (Printf.sprintf "%s may block while holding %s" g
                (held_names held))
         else
           match gs with
           | Some s -> (
             (match s.Propagate.blocks with
             | Some (w, _) ->
               add_finding out Ids.blocking_under_lock loc
                 (Printf.sprintf "%s may block (%s) while holding %s" g w
                    (held_names held))
             | None -> ());
             match s.Propagate.callback with
             | Some (cb, _) ->
               add_finding out Ids.callback_under_lock loc
                 (Printf.sprintf
                    "%s may invoke the caller-supplied function %s while \
                     holding %s"
                    g cb (held_names held))
             | None -> ())
           | None -> ());
      (* lock-order edges through the callee *)
      (match gs with
      | Some s ->
        SS.iter
          (fun a ->
            List.iter (fun (h, _) -> Lockgraph.add out.graph h a loc) held)
          s.Propagate.acquires
      | None -> ());
      (* fork-after-domain, in program order *)
      let callee_forks =
        SS.mem g Prims.fork
        || match gs with Some s -> s.Propagate.forks | None -> false
      in
      let callee_spawns =
        g = Prims.spawn
        || match gs with Some s -> s.Propagate.spawns | None -> false
      in
      (if SS.mem g Prims.fork then
         if flags.spawned then
           add_finding out Ids.fork_after_domain loc
             (Printf.sprintf "%s after Domain.spawn in program order" g)
         else if not flags.asserted then
           add_finding out Ids.fork_after_domain loc
             (Printf.sprintf
                "%s without a preceding \
                 Analysis.Runtime.assert_no_domains_spawned ()"
                g)
         else ()
       else if callee_forks && flags.spawned then
         add_finding out Ids.fork_after_domain loc
           (Printf.sprintf "%s may fork, but domains were already spawned" g));
      if callee_spawns then flags.spawned <- true;
      (* EINTR discipline *)
      if sensitive && SS.mem g Prims.interruptible && not guarded then
        add_finding out Ids.eintr_unsafe loc
          (Printf.sprintf
             "%s can fail with EINTR here (signal handlers are installed); \
              guard it or use Analysis.Runtime.retry_eintr"
             g);
      held
    | S.Call { callee = S.Callback { name; _ }; loc; _ } ->
      if held <> [] then
        add_finding out Ids.callback_under_lock loc
          (Printf.sprintf
             "caller-supplied function %s invoked while holding %s" name
             (held_names held));
      held
    | S.Ref { name; loc } ->
      if held <> [] then begin
        if SS.mem name Prims.blocking then
          add_finding out Ids.blocking_under_lock loc
            (Printf.sprintf
               "%s handed to an iterator may block while holding %s" name
               (held_names held))
        else
          match summ name with
          | Some s -> (
            match s.Propagate.blocks with
            | Some (w, _) ->
              add_finding out Ids.blocking_under_lock loc
                (Printf.sprintf
                   "%s handed to an iterator may block (%s) while holding %s"
                   name w (held_names held))
            | None -> ())
          | None -> ()
      end;
      (match summ name with
      | Some s ->
        if s.Propagate.forks && flags.spawned then
          add_finding out Ids.fork_after_domain loc
            (Printf.sprintf
               "%s (which may fork) is registered to run after Domain.spawn \
                in program order"
               name);
        if s.Propagate.spawns then flags.spawned <- true
      | None -> ());
      held
    | S.ClosureArg { callee; index; fresh; body } ->
      let inner_held =
        if fresh then []
        else
          let extra =
            match callee with
            | Some c -> Propagate.param_held prop (c, index)
            | None -> SS.empty
          in
          SS.fold
            (fun l acc ->
              if List.mem_assoc l acc then acc
              else (l, { S.file = ""; line = 0; col = 0 }) :: acc)
            extra held
      in
      ignore (exec ~sensitive flags inner_held body);
      held
    | S.Branch alts ->
      let sp0 = flags.spawned and as0 = flags.asserted in
      let outs =
        List.map
          (fun alt ->
            flags.spawned <- sp0;
            flags.asserted <- as0;
            let h = exec ~sensitive flags held alt in
            (h, flags.spawned, flags.asserted))
          alts
      in
      flags.spawned <- sp0 || List.exists (fun (_, s, _) -> s) outs;
      flags.asserted <-
        (match outs with
        | [] -> as0
        | _ -> List.for_all (fun (_, _, a) -> a) outs);
      (* Must-hold join: keep a lock only if every alternative exits
         holding it (matching Propagate's Branch semantics). *)
      (match outs with
      | [] -> held
      | (first, _, _) :: rest ->
        List.filter
          (fun (l, _) ->
            List.for_all (fun (h, _, _) -> List.mem_assoc l h) rest)
          first)
  in
  List.iter
    (fun u ->
      List.iter
        (fun f ->
          let sensitive = SS.mem f.S.qname reachable in
          let flags = { spawned = false; asserted = false } in
          ignore (exec ~sensitive flags [] f.S.events))
        u.S.funcs)
    units;
  (* Condvar/mutex pairing: each condition variable class must wait on
     one mutex class everywhere. *)
  let by_cond = Hashtbl.create 16 in
  List.iter
    (fun (c, m, loc) ->
      let cur = try Hashtbl.find by_cond c with Not_found -> [] in
      Hashtbl.replace by_cond c ((m, loc) :: cur))
    (List.rev out.pairs);
  Hashtbl.iter
    (fun c pairs ->
      match List.rev pairs with
      | [] -> ()
      | (m0, _) :: rest ->
        List.iter
          (fun (m, loc) ->
            if m <> m0 then
              add_finding out Ids.condvar_mutex loc
                (Printf.sprintf
                   "condition variable %s waits with mutex %s here but with \
                    %s elsewhere"
                   c m m0))
          rest)
    by_cond;
  out
