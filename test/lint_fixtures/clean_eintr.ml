(* Clean counterpart of bad_eintr: the interruptible call runs inside
   Analysis.Runtime.retry_eintr. *)

let () = Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> ()))

let poll fd =
  ignore
    (Analysis.Runtime.retry_eintr (fun () -> Unix.select [ fd ] [] [] 0.01))

let main () = poll Unix.stdin

let () = if Array.length Sys.argv > 10 then main ()
