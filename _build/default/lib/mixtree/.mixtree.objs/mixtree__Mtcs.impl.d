lib/mixtree/mtcs.ml: Array Dmf Entry List Minmix Sharing Tree
