(** Pin-constrained broadcast electrode addressing.

    Driving every electrode from its own control pin is expensive;
    broadcast addressing (Huang, Ho, Chakrabarty [10] — the reliability
    reference of Section 5) lets several electrodes share one pin when
    their actuation sequences never conflict.  We use the classic
    three-valued model: at every actuation step an electrode either
    {e must} be actuated (a droplet is being pulled onto it), {e must}
    stay grounded (actuating it would tear or drag a nearby droplet), or
    is a don't-care.  A group of electrodes may share a pin iff no
    member's must-ground step is another member's must-actuate step.

    Grouping is greedy and sound by construction: an electrode joins the
    first existing pin whose accumulated must-actuate and must-ground
    step sets stay conflict-free, otherwise it opens a new pin. *)

type requirement = {
  step : int;  (** Global actuation step (strictly increasing per move). *)
  must_actuate : Geometry.point list;
  must_ground : Geometry.point list;
}

type t

val assign : width:int -> height:int -> requirement list -> t
(** [assign ~width ~height requirements] groups the electrodes of a
    [width x height] grid.  Electrodes never mentioned keep pin 0 (the
    always-grounded pin). *)

val pins : t -> int
(** Number of control pins used (excluding the ground pin). *)

val addressed_electrodes : t -> int
(** Electrodes that required a driven pin. *)

val pin_of : t -> Geometry.point -> int
(** The pin of an electrode; 0 for never-driven electrodes. *)

val saving : t -> float
(** [1 - pins / addressed_electrodes], the reduction versus direct
    addressing (0 when nothing is addressed). *)
