lib/sim/pipeline.mli: Chip Contamination Executor Mdst Stdlib Trace Wear
