let cell_w = 46.
let cell_h = 26.
let margin = 54.

let render ~plan schedule =
  let tc = Mdst.Schedule.completion_time schedule in
  let mixers = Mdst.Schedule.mixers schedule in
  let occupancy = Mdst.Storage.profile ~plan schedule in
  let max_occupancy = Array.fold_left max 1 occupancy in
  let storage_h = 40. in
  let width = margin +. (float_of_int tc *. cell_w) +. 20. in
  let height =
    margin +. (float_of_int mixers *. cell_h) +. storage_h +. 60.
  in
  let elements = ref [] in
  let push e = elements := e :: !elements in
  (* Axis labels. *)
  for t = 1 to tc do
    push
      (Svg.text
         ~x:(margin +. ((float_of_int t -. 0.5) *. cell_w))
         ~y:(margin -. 8.) ~anchor:"middle"
         (string_of_int t))
  done;
  for m = 1 to mixers do
    push
      (Svg.text ~x:8.
         ~y:(margin +. ((float_of_int m -. 0.35) *. cell_h))
         (Printf.sprintf "M%d" m))
  done;
  (* Mixer cells. *)
  List.iter
    (fun node ->
      let id = node.Mdst.Plan.id in
      let t = Mdst.Schedule.cycle schedule id in
      let m = Mdst.Schedule.mixer schedule id in
      let x = margin +. (float_of_int (t - 1) *. cell_w) in
      let y = margin +. (float_of_int (m - 1) *. cell_h) in
      push
        (Svg.group
           [
             Svg.rect ~x:(x +. 1.) ~y:(y +. 1.) ~w:(cell_w -. 2.)
               ~h:(cell_h -. 2.) ~rx:3.
               ~fill:(Svg.palette node.Mdst.Plan.tree)
               ~stroke:"#333" ();
             Svg.text
               ~x:(x +. (cell_w /. 2.))
               ~y:(y +. (cell_h /. 2.) +. 3.5)
               ~anchor:"middle" ~fill:"#fff"
               (Mdst.Gantt.label node);
             Svg.title
               (Printf.sprintf "%s @ cycle %d: %s" (Mdst.Gantt.label node) t
                  (Dmf.Mixture.to_string node.Mdst.Plan.value));
           ]))
    (Mdst.Plan.nodes plan);
  (* Storage occupancy bars. *)
  let base = margin +. (float_of_int mixers *. cell_h) +. 18. in
  push (Svg.text ~x:8. ~y:(base +. 14.) "q");
  Array.iteri
    (fun i occ ->
      let h =
        storage_h *. float_of_int occ /. float_of_int max_occupancy
      in
      push
        (Svg.group
           [
             Svg.rect
               ~x:(margin +. (float_of_int i *. cell_w) +. 6.)
               ~y:(base +. storage_h -. h)
               ~w:(cell_w -. 12.) ~h ~fill:"#888" ();
             Svg.title
               (Printf.sprintf "cycle %d: %d droplet(s) stored" (i + 1) occ);
           ]))
    occupancy;
  (* Emission markers. *)
  let emissions = Mdst.Schedule.emission_order ~plan schedule in
  let ey = base +. storage_h +. 22. in
  push (Svg.text ~x:8. ~y:ey "out");
  List.iter
    (fun (t, _) ->
      push
        (Svg.rect
           ~x:(margin +. ((float_of_int t -. 0.5) *. cell_w) -. 4.)
           ~y:(ey -. 10.) ~w:8. ~h:8. ~rx:4. ~fill:"#2a9d2a" ()))
    emissions;
  push
    (Svg.text ~x:margin
       ~y:(height -. 8.)
       (Printf.sprintf "Tc = %d cycles, q = %d storage units, %d targets" tc
          (Mdst.Storage.units ~plan schedule)
          (Mdst.Plan.targets plan)));
  Svg.document ~width ~height (List.rev !elements)

let write ~path ~plan schedule =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (render ~plan schedule))
