lib/mixtree/tree.ml: Array Dmf Format Printf
