examples/fault_tolerant_run.mli:
