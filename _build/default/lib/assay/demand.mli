(** Downstream droplet demand profiles.

    The paper's motivation is {e demand-driven} preparation: a bioassay
    consumes master-mix droplets over time — "the resultant mixture is
    next used in several reactions, each requiring a certain amount of
    master-mix as determined by the assay" (Section 1).  A profile lists
    when and how many target droplets the downstream protocol needs. *)

type request = {
  deadline : int;  (** Absolute time-cycle by which the droplets are needed. *)
  count : int;  (** Number of target droplets needed by then. *)
}

val request : deadline:int -> count:int -> request
(** @raise Invalid_argument if [count < 1] or [deadline < 0]. *)

val periodic :
  start:int -> interval:int -> count:int -> batches:int -> request list
(** [periodic ~start ~interval ~count ~batches] models a cyclic consumer
    (e.g. a thermocycler drawing [count] droplets every [interval]
    cycles, [batches] times, first at cycle [start]).
    @raise Invalid_argument on non-positive [interval], [count] or
    [batches], or negative [start]. *)

val total : request list -> int
(** Total droplets demanded. *)

val normalize : request list -> request list
(** Sort by deadline and merge equal deadlines.
    @raise Invalid_argument on an empty profile. *)

val droplet_deadlines : request list -> int list
(** One deadline per individual droplet, ascending. *)
