(** Electrode-wear analysis of a simulation trace.

    "Excessive electrode actuation leads to reliability problems and
    reduced lifetime for biochips" (Section 5, after [10]).  This module
    turns an execution into a per-electrode actuation heatmap and
    summary wear statistics, so the streamed forest can be compared with
    repeated baseline passes not just in total actuations but in how
    hard the hottest electrode is driven. *)

type t = {
  total : int;  (** Total electrode actuations. *)
  hottest : int;  (** Actuations of the most-used electrode. *)
  active_electrodes : int;  (** Electrodes actuated at least once. *)
  mean_per_active : float;
  heatmap : int array array;  (** Indexed [y].[x]; same size as the grid. *)
}

val of_stats : Executor.stats -> t
(** Summarise the heatmap of an existing run. *)

val of_run :
  layout:Chip.Layout.t ->
  plan:Mdst.Plan.t ->
  schedule:Mdst.Schedule.t ->
  (t, string) result
(** Re-executes the schedule with the simulator and accumulates the
    per-cell actuation counts of every routed move (module-internal
    mixing actuation is not counted, matching the paper's
    transport-cost accounting). *)

val render : t -> string
(** ASCII heatmap: [.] never used, digits 1-9, [*] for 10+. *)
