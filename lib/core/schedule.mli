(** Mixer schedules of a mixing-forest plan.

    A schedule assigns every mix-split node [m_ij] of a plan to an on-chip
    mixer [Mk] and a time-cycle [t] (the paper's [m_ij |-> Mk^t]
    notation).  All mix-splits are unit-time; a droplet produced at cycle
    [t] can be consumed from cycle [t + 1] on. *)

type t

val create : plan:Plan.t -> mixers:int -> cycles:int array -> mixer_of:int array -> t
(** [create ~plan ~mixers ~cycles ~mixer_of] packages per-node cycle and
    mixer assignments (indexed by node id; cycles and mixers numbered
    from 1).  @raise Invalid_argument if invalid (see {!validate}). *)

val mixers : t -> int
(** Number of on-chip mixers [Mc] the schedule was built for. *)

val cycle : t -> int -> int
(** [cycle s id] is the time-cycle at which node [id] executes. *)

val mixer : t -> int -> int
(** [mixer s id] is the mixer index (1-based) executing node [id]. *)

val completion_time : t -> int
(** [Tc], the largest used cycle. *)

val at_cycle : t -> int -> int list
(** [at_cycle s t] is the ids of the nodes executing at cycle [t], in
    mixer order. *)

val validate : plan:Plan.t -> t -> (unit, string) result
(** Checks: every node scheduled exactly once; at most [Mc] nodes per
    cycle, on distinct mixers; every node strictly later than the
    producers of both of its input droplets. *)

val no_progress_bound : nodes:int -> depth:int -> int
(** Shared guard for the scheduler main loops: an upper bound on the
    number of cycles any correct schedule of a [nodes]-node plan with
    base-tree depth [depth] can take, with slack.  Exceeding it is an
    internal error (corrupt pending counts), never a property of a
    merely deep or degenerate plan. *)

val emission_order : plan:Plan.t -> t -> (int * int) list
(** [(cycle, root_id)] pairs of target-droplet emissions sorted by cycle —
    the droplet streaming sequence. *)
