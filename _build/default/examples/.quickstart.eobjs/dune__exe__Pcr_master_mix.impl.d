examples/pcr_master_mix.ml: Bioproto Chip Dmf Format List Mdst Mixtree Sim
