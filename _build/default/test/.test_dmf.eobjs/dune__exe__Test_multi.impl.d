test/test_multi.ml: Alcotest Dmf Generators Int List Mdst Mixtree Printf QCheck2 Result String
