(* Tests for the droplet-level simulator. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let pcr = Generators.pcr16

let simulate ?(ratio = pcr) ?(demand = 20) ?(mixers = 3)
    ?(algorithm = Mixtree.Algorithm.MM) ?(scheduler = `SRS) () =
  let plan = Mdst.Forest.build ~algorithm ~ratio ~demand in
  let schedule =
    match scheduler with
    | `SRS -> Mdst.Srs.schedule ~plan ~mixers
    | `MMS -> Mdst.Mms.schedule ~plan ~mixers
  in
  let q = Mdst.Storage.units ~plan schedule in
  let layout =
    Chip.Layout.default ~mixers ~storage_units:(max 1 q)
      ~n_fluids:(Dmf.Ratio.n_fluids ratio) ()
  in
  (plan, schedule, Sim.Executor.run ~layout ~plan ~schedule)

let test_pcr_run () =
  let plan, schedule, result = simulate () in
  match result with
  | Error e -> Alcotest.fail e
  | Ok (trace, stats) ->
    check int "cycles" (Mdst.Schedule.completion_time schedule) stats.Sim.Executor.cycles;
    check int "dispensed = I" (Mdst.Plan.input_total plan) stats.Sim.Executor.dispensed;
    check int "emitted = targets" (Mdst.Plan.targets plan)
      (List.length stats.Sim.Executor.emitted);
    check int "discarded = W" (Mdst.Plan.waste plan) stats.Sim.Executor.discarded;
    check int "no segregation violations" 0 stats.Sim.Executor.violations;
    check int "stats electrodes match the trace" (Sim.Trace.electrodes trace)
      stats.Sim.Executor.electrodes;
    check bool "verification passes" true
      (Result.is_ok (Sim.Executor.check ~plan stats))

let test_emitted_values_exact () =
  let plan, _, result = simulate ~demand:16 () in
  match result with
  | Error e -> Alcotest.fail e
  | Ok (_, stats) ->
    let target = Dmf.Mixture.of_ratio pcr in
    check int "sixteen targets" 16 (List.length stats.Sim.Executor.emitted);
    List.iter
      (fun v -> check bool "value exact" true (Dmf.Mixture.equal target v))
      stats.Sim.Executor.emitted;
    ignore plan

let test_mms_schedule_simulates () =
  let plan, _, result = simulate ~scheduler:`MMS () in
  match result with
  | Error e -> Alcotest.fail e
  | Ok (_, stats) ->
    check bool "verification passes" true
      (Result.is_ok (Sim.Executor.check ~plan stats))

let test_other_ratios () =
  List.iter
    (fun (ratio, demand) ->
      let ratio = Dmf.Ratio.of_string ratio in
      let plan, _, result = simulate ~ratio ~demand ~mixers:2 () in
      match result with
      | Error e -> Alcotest.fail e
      | Ok (_, stats) ->
        check bool
          (Printf.sprintf "%s verified" (Dmf.Ratio.to_string ratio))
          true
          (Result.is_ok (Sim.Executor.check ~plan stats));
        check int "no violations" 0 stats.Sim.Executor.violations)
    [ ("3:5", 8); ("1:1:2", 6); ("3:4:9", 12); ("1:1:1:1:1:1:1:1", 16) ]

let test_trace_mix_events () =
  let plan, _, result = simulate ~demand:8 () in
  match result with
  | Error e -> Alcotest.fail e
  | Ok (trace, _) ->
    let mixes =
      List.filter (function Sim.Trace.Mix _ -> true | _ -> false) trace
    in
    check int "one Mix event per plan node" (Mdst.Plan.tms plan) (List.length mixes)

let test_trace_chronological () =
  let _, _, result = simulate ~demand:8 () in
  match result with
  | Error e -> Alcotest.fail e
  | Ok (trace, _) ->
    let cycles = List.map Sim.Trace.cycle_of trace in
    check bool "nondecreasing cycles" true
      (List.sort compare cycles = cycles)

let test_rejects_undersized_layout () =
  let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~demand:20 in
  let schedule = Mdst.Srs.schedule ~plan ~mixers:3 in
  let too_few_mixers = Chip.Layout.default ~mixers:1 ~n_fluids:7 () in
  check bool "too few mixers" true
    (Result.is_error (Sim.Executor.run ~layout:too_few_mixers ~plan ~schedule));
  let too_little_storage =
    Chip.Layout.default ~mixers:3 ~storage_units:1 ~n_fluids:7 ()
  in
  check bool "too little storage" true
    (Result.is_error (Sim.Executor.run ~layout:too_little_storage ~plan ~schedule))

let test_check_catches_shortfall () =
  let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~demand:4 in
  let bogus =
    { Sim.Executor.cycles = 1; moves = 0; electrodes = 0; dispensed = 0;
      emitted = []; discarded = 0; violations = 0;
      heatmap = Array.make_matrix 1 1 0; addressing = [] }
  in
  check bool "empty emission rejected" true
    (Result.is_error (Sim.Executor.check ~plan bogus))

let prop_simulation_matches_plan =
  Generators.qtest ~count:40 "simulation agrees with plan accounting"
    QCheck2.Gen.(pair Generators.ratio_gen (int_range 2 12))
    (fun (r, d) -> Printf.sprintf "%s D=%d" (Dmf.Ratio.to_string r) d)
    (fun (ratio, demand) ->
      let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand in
      let schedule = Mdst.Srs.schedule ~plan ~mixers:2 in
      let q = Mdst.Storage.units ~plan schedule in
      let layout =
        Chip.Layout.default ~mixers:2 ~storage_units:(max 1 q)
          ~n_fluids:(Dmf.Ratio.n_fluids ratio) ()
      in
      match Sim.Executor.run ~layout ~plan ~schedule with
      | Error _ -> false
      | Ok (_, stats) ->
        stats.Sim.Executor.dispensed = Mdst.Plan.input_total plan
        && List.length stats.Sim.Executor.emitted = Mdst.Plan.targets plan
        && stats.Sim.Executor.discarded = Mdst.Plan.waste plan
        && Result.is_ok (Sim.Executor.check ~plan stats))

let () =
  Alcotest.run "sim"
    [
      ( "executor",
        [
          Alcotest.test_case "PCR D=20 full run" `Quick test_pcr_run;
          Alcotest.test_case "emitted values exact" `Quick test_emitted_values_exact;
          Alcotest.test_case "MMS schedule simulates" `Quick test_mms_schedule_simulates;
          Alcotest.test_case "other ratios" `Quick test_other_ratios;
          Alcotest.test_case "undersized layouts rejected" `Quick
            test_rejects_undersized_layout;
          Alcotest.test_case "check catches shortfall" `Quick
            test_check_catches_shortfall;
        ] );
      ( "trace",
        [
          Alcotest.test_case "one Mix event per node" `Quick test_trace_mix_events;
          Alcotest.test_case "chronological order" `Quick test_trace_chronological;
        ] );
      ("properties", [ prop_simulation_matches_plan ]);
    ]
