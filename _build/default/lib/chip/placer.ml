type flows = ((string * string) * int) list

let flows_of_accounting accounting =
  let counts = Hashtbl.create 32 in
  List.iter
    (fun m ->
      let key = (m.Actuation.src, m.Actuation.dst) in
      let current = Option.value ~default:0 (Hashtbl.find_opt counts key) in
      Hashtbl.replace counts key (current + 1))
    accounting.Actuation.movements;
  Hashtbl.fold (fun key count acc -> (key, count) :: acc) counts []
  |> List.sort compare

let unreachable_penalty = 10_000

let transport_cost layout flows =
  let matrix = Cost_matrix.build layout in
  List.fold_left
    (fun acc ((src, dst), count) ->
      let cost =
        match (Layout.find layout src, Layout.find layout dst) with
        | Some _, Some _ ->
          if Cost_matrix.reachable matrix ~src ~dst then
            Cost_matrix.cost matrix ~src ~dst
          else unreachable_penalty
        | None, _ | _, None -> unreachable_penalty
      in
      acc + (count * cost))
    0 flows

(* Swap the rectangles of two same-kind, same-size modules. *)
let swap_modules layout a b =
  let ma = Layout.find_exn layout a and mb = Layout.find_exn layout b in
  let replace m =
    if m.Chip_module.id = a then { m with Chip_module.rect = mb.Chip_module.rect }
    else if m.Chip_module.id = b then
      { m with Chip_module.rect = ma.Chip_module.rect }
    else m
  in
  Layout.make ~width:(Layout.width layout) ~height:(Layout.height layout)
    ~modules:(List.map replace (Layout.modules layout))

let swap_groups layout =
  let same_size a b =
    a.Chip_module.rect.Geometry.w = b.Chip_module.rect.Geometry.w
    && a.Chip_module.rect.Geometry.h = b.Chip_module.rect.Geometry.h
  in
  let group modules =
    List.concat_map
      (fun m ->
        List.filter_map
          (fun m' ->
            if
              m.Chip_module.id < m'.Chip_module.id && same_size m m'
            then Some (m.Chip_module.id, m'.Chip_module.id)
            else None)
          modules)
      modules
  in
  group (Layout.reservoirs layout)
  @ group (Layout.mixers layout)
  @ group (Layout.storage_units layout)

let optimize ?(iterations = 2000) ?(seed = 42) layout ~flows =
  let pairs = Array.of_list (swap_groups layout) in
  if Array.length pairs = 0 then (layout, transport_cost layout flows)
  else begin
    let state = Random.State.make [| seed |] in
    let current = ref layout in
    let current_cost = ref (transport_cost layout flows) in
    let best = ref layout in
    let best_cost = ref !current_cost in
    for i = 0 to iterations - 1 do
      let a, b = pairs.(Random.State.int state (Array.length pairs)) in
      let candidate = swap_modules !current a b in
      let cost = transport_cost candidate flows in
      let temperature =
        float_of_int (iterations - i) /. float_of_int iterations
      in
      let accept =
        cost <= !current_cost
        || Random.State.float state 1.0
           < exp (float_of_int (!current_cost - cost) /. (temperature *. 50.))
      in
      if accept then begin
        current := candidate;
        current_cost := cost;
        if cost < !best_cost then begin
          best := candidate;
          best_cost := cost
        end
      end
    done;
    (!best, !best_cost)
  end

let optimize_for ?iterations ?seed ~plan ~schedule layout =
  match Actuation.account ~layout ~plan ~schedule with
  | Error e -> Error e
  | Ok accounting ->
    let flows = flows_of_accounting accounting in
    let before = accounting.Actuation.total_electrodes in
    let improved, _ = optimize ?iterations ?seed layout ~flows in
    (match Actuation.account ~layout:improved ~plan ~schedule with
    | Error e -> Error e
    | Ok improved_accounting ->
      Ok (improved, before, improved_accounting.Actuation.total_electrodes))
