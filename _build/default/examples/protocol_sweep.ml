(* Scheme comparison across real bioprotocol mixtures (Table 2 scenario).

   Evaluates the nine schemes of the paper's Table 2 — three repeated
   baselines and the streaming engine with MMS / SRS on three base
   mixing algorithms — on the five protocol ratios Ex.1..Ex.5 (all on
   the scale 256, demand 32), and summarises the savings.

   Run with: dune exec examples/protocol_sweep.exe *)

let () =
  List.iter
    (fun p ->
      print_string
        (Mdst.Report.section
           (Printf.sprintf "%s — %s (%s)" p.Bioproto.Protocols.id
              p.Bioproto.Protocols.name
              (Dmf.Ratio.to_string p.Bioproto.Protocols.ratio)));
      let results =
        Mdst.Compare.evaluate_all ~ratio:p.Bioproto.Protocols.ratio ~demand:32
          Mdst.Compare.table2_schemes
      in
      let rows =
        List.map
          (fun (scheme, m) ->
            [
              Mdst.Compare.scheme_name scheme;
              string_of_int m.Mdst.Metrics.tc;
              string_of_int m.Mdst.Metrics.q;
              string_of_int m.Mdst.Metrics.waste;
              string_of_int m.Mdst.Metrics.input_total;
            ])
          results
      in
      print_string
        (Mdst.Report.table ~header:[ "scheme"; "Tc"; "q"; "W"; "I" ] ~rows))
    Bioproto.Protocols.table2;

  print_string (Mdst.Report.section "Average savings across Ex.1..Ex.5");
  let ratios =
    List.map (fun p -> p.Bioproto.Protocols.ratio) Bioproto.Protocols.table2
  in
  let rows =
    List.map
      (fun algorithm ->
        let imp =
          Mdst.Compare.average_improvements ~ratios ~demand:32 algorithm
        in
        [
          Mixtree.Algorithm.name algorithm;
          Mdst.Report.float_cell imp.Mdst.Compare.mms_tc_over_repeated;
          Mdst.Report.float_cell imp.Mdst.Compare.srs_tc_over_repeated;
          Mdst.Report.float_cell imp.Mdst.Compare.mms_i_over_repeated;
          Mdst.Report.float_cell imp.Mdst.Compare.srs_q_over_mms;
        ])
      [ Mixtree.Algorithm.MM; Mixtree.Algorithm.RMA; Mixtree.Algorithm.MTCS ]
  in
  print_string
    (Mdst.Report.table
       ~header:
         [ "base algo"; "Tc: MMS||R %"; "Tc: SRS||R %"; "I: MMS||R %";
           "q: SRS||MMS %" ]
       ~rows)
