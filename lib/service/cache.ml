(* Classic LRU: a hash table from key to a node of an intrusive doubly
   linked list ordered by recency (head = most recent, tail = next to
   evict).  One mutex guards the whole structure — operations are a few
   pointer swaps, so a finer scheme would buy nothing. *)

type 'v node = {
  key : string;
  mutable value : 'v;
  mutable prev : 'v node option;  (* towards the head (more recent) *)
  mutable next : 'v node option;  (* towards the tail (less recent) *)
}

type 'v t = {
  lock : Mutex.t;
  table : (string, 'v node) Hashtbl.t;
  capacity : int;
  mutable head : 'v node option;
  mutable tail : 'v node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;
  capacity : int;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Cache.create: negative capacity";
  {
    lock = Mutex.create ();
    table = Hashtbl.create (max 16 capacity);
    capacity;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f
[@@dmflint.allow
  "callback-under-lock: with-lock combinator; dmflint analyzes every \
   caller's closure under t.lock via param_held"]

let unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
  n.prev <- None;
  n.next <- None

let push_front t n =
  n.next <- t.head;
  n.prev <- None;
  (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
  t.head <- Some n

let find (t : 'v t) key =
  locked t (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some n ->
        t.hits <- t.hits + 1;
        unlink t n;
        push_front t n;
        Some n.value
      | None ->
        t.misses <- t.misses + 1;
        None)

let evict_tail (t : 'v t) =
  match t.tail with
  | None -> ()
  | Some n ->
    unlink t n;
    Hashtbl.remove t.table n.key;
    t.evictions <- t.evictions + 1

let add (t : 'v t) key value =
  if t.capacity > 0 then
    locked t (fun () ->
        (match Hashtbl.find_opt t.table key with
        | Some n ->
          n.value <- value;
          unlink t n;
          push_front t n
        | None ->
          let n = { key; value; prev = None; next = None } in
          Hashtbl.replace t.table key n;
          push_front t n);
        while Hashtbl.length t.table > t.capacity do
          evict_tail t
        done)

let peek t key =
  locked t (fun () ->
      Option.map (fun n -> n.value) (Hashtbl.find_opt t.table key))

let keys t =
  locked t (fun () ->
      let rec walk acc = function
        | None -> List.rev acc
        | Some n -> walk (n.key :: acc) n.next
      in
      walk [] t.head)

let stats (t : 'v t) =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        size = Hashtbl.length t.table;
        capacity = t.capacity;
      })

let clear t =
  locked t (fun () ->
      Hashtbl.reset t.table;
      t.head <- None;
      t.tail <- None)
