(** Binding stored droplets to physical storage units.

    Algorithm 3 counts {e how many} storage units a schedule needs; to
    execute the schedule on a chip each stored droplet must also be
    assigned a concrete unit.  Residency intervals are assigned greedily
    in order of their start cycle — optimal for interval graphs, so the
    assignment succeeds whenever the layout provides at least
    [Storage.units] many units. *)

type t
(** An assignment of droplets to storage-unit ids. *)

val allocate :
  plan:Mdst.Plan.t ->
  schedule:Mdst.Schedule.t ->
  units:string list ->
  (t, string) result
(** [allocate ~plan ~schedule ~units] returns an assignment, or [Error]
    naming the first droplet that could not be placed. *)

val unit_for : t -> producer:int -> port:int -> string option
(** The storage unit holding that droplet, if it is ever stored. *)

val bindings : t -> ((int * int) * string) list
(** All [(producer, port), unit] pairs. *)
