lib/chip/parallel_router.mli: Geometry Layout
