(* The follower's local journal: a byte-for-byte mirror of the
   primary's WAL directory, written from the feed stream.

   Record lines arrive verbatim and are appended to segment files of
   the same names the primary uses, so the local directory is always a
   prefix-plus-tail copy of the primary's — which is what makes the
   write position a valid resume cursor and lets promotion reuse
   {!Durable.Manager.start}'s ordinary crash recovery unchanged.

   The sink is single-writer: only the follower's engine thread calls
   the mutating operations, so there is no lock here beyond the
   cross-process directory claim.  {!Follower} snapshots the counters
   it publishes under its own mutex. *)

module Wal = Durable.Wal
module Snapshot = Durable.Snapshot

type t = {
  dir : string;
  lock_file : Unix.file_descr;
  mutable fd : Unix.file_descr option;
  mutable segment : int;
  mutable offset : int;
  mutable dirty : bool;
  mutable appended : int;
  mutable fsyncs : int;
}

(* Same claim discipline as {!Durable.Manager}: a promoted follower and
   a still-running one must never share a directory, and the kernel
   drops the lock if the process dies. *)
let acquire_dir_lock dir =
  let fd =
    Unix.openfile (Filename.concat dir "LOCK")
      [ Unix.O_RDWR; Unix.O_CREAT ]
      0o644
  in
  match Unix.lockf fd Unix.F_TLOCK 0 with
  | () -> fd
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EACCES), _, _) ->
    Unix.close fd;
    failwith
      (Printf.sprintf "wal directory %s is in use by another process" dir)

let create ~dir =
  Wal.ensure_dir dir;
  {
    dir;
    lock_file = acquire_dir_lock dir;
    fd = None;
    segment = 0;
    offset = 0;
    dirty = false;
    appended = 0;
    fsyncs = 0;
  }

let dir t = t.dir

(* The resume cursor is just where the last mirrored segment ends.  A
   follower that crashed mid-line resumes from the torn offset; the
   resumed stream then re-appends from there, so the torn bytes must be
   cut first — {!Follower} truncates what {!Durable.Replay} reports
   before asking for the cursor. *)
let cursor t =
  match t.fd with
  | Some _ -> { Wire.segment = t.segment; offset = t.offset }
  | None -> (
    match List.rev (Wal.segments ~dir:t.dir) with
    | (segment, path) :: _ ->
      { Wire.segment; offset = (Unix.stat path).Unix.st_size }
    | [] -> Wire.start)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then
      go (off + Unix.write_substring fd s off (len - off))
  in
  go 0

let close_fd t =
  match t.fd with
  | None -> ()
  | Some fd ->
    if t.dirty then begin
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      t.fsyncs <- t.fsyncs + 1;
      t.dirty <- false
    end;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    t.fd <- None

(* Full resync: the primary could not resume our cursor, so drop every
   mirrored file (the LOCK stays) and start over from its snapshot. *)
let reset t =
  close_fd t;
  t.segment <- 0;
  t.offset <- 0;
  List.iter (fun (_seq, path) -> Sys.remove path) (Wal.segments ~dir:t.dir);
  List.iter (fun (_seq, path) -> Sys.remove path) (Snapshot.list ~dir:t.dir)

(* Verbatim snapshot bytes from the primary, written with the same
   tmp + fsync + rename discipline {!Durable.Snapshot.write} uses so a
   crash mid-reset never leaves a half snapshot for promotion to load. *)
let put_snapshot t ~seq ~data =
  let path = Filename.concat t.dir (Snapshot.name seq) in
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      write_all fd data;
      Unix.fsync fd);
  Sys.rename tmp path;
  let dfd = Unix.openfile t.dir [ Unix.O_RDONLY ] 0 in
  (try Unix.fsync dfd with Unix.Unix_error _ -> ());
  Unix.close dfd

let open_segment t segment =
  close_fd t;
  let path = Filename.concat t.dir (Wal.segment_name segment) in
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  t.fd <- Some fd;
  t.segment <- segment;
  t.offset <- (Unix.fstat fd).Unix.st_size

let append_line t line =
  match t.fd with
  | None -> failwith "replication sink: record line before any open frame"
  | Some fd ->
    write_all fd (line ^ "\n");
    t.offset <- t.offset + String.length line + 1;
    t.appended <- t.appended + 1;
    t.dirty <- true

let flush t =
  match t.fd with
  | Some fd when t.dirty ->
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    t.fsyncs <- t.fsyncs + 1;
    t.dirty <- false
  | _ -> ()

let appended t = t.appended
let fsyncs t = t.fsyncs

let close t =
  close_fd t;
  try Unix.close t.lock_file with Unix.Unix_error _ -> ()
