(* Clean counterpart of bad_callback: snapshot under the lock, invoke
   the callback after releasing it. *)

let m = Mutex.create ()
let state = ref 0

let notify cb =
  Mutex.lock m;
  let snapshot = !state in
  Mutex.unlock m;
  cb snapshot
