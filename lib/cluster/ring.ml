(* Consistent-hash ring over shard labels.

   Each shard contributes [vnodes] points on a 62-bit hash circle; a key
   is owned by the first point clockwise of its own hash.  Adding or
   removing a shard moves only the points of that shard, so only the
   arcs it owned (about 1/N of the keys) change hands — the property the
   remap tests in test_cluster pin down.

   The hash is FNV-1a folded into OCaml's native int (multiplication
   wraps mod 2^63 on 64-bit platforms, so the value is identical across
   processes — router and tests must agree on key placement), followed
   by a splitmix-style finalizer: FNV alone diffuses the short numeric
   suffixes of vnode labels poorly, and a biased circle defeats the
   whole balancing argument. *)

let fnv_prime = 0x100000001b3
let fnv_seed = 0x3cbf29ce4842221

let hash key =
  let h = ref fnv_seed in
  String.iter (fun c -> h := (!h lxor Char.code c) * fnv_prime) key;
  (* Finalizer: two xor-shift-multiply rounds (constants < 2^62). *)
  let h = !h in
  let h = (h lxor (h lsr 30)) * 0x2545f4914f6cdd1d in
  let h = (h lxor (h lsr 27)) * 0x1b03738712fad17 in
  (h lxor (h lsr 31)) land max_int

type t = {
  labels : string array;
  points : (int * int) array;  (* (point hash, shard index), sorted *)
}

let default_vnodes = 128

let create ?(vnodes = default_vnodes) labels =
  if labels = [] then invalid_arg "Ring.create: at least one shard";
  if vnodes < 1 then invalid_arg "Ring.create: at least one vnode";
  let labels = Array.of_list labels in
  let points =
    Array.init
      (Array.length labels * vnodes)
      (fun i ->
        let shard = i / vnodes and v = i mod vnodes in
        (hash (Printf.sprintf "%s#%d" labels.(shard) v), shard))
  in
  (* Ties (hash collisions between shards' points) break on the shard
     index, deterministically. *)
  Array.sort compare points;
  { labels; points }

let shards t = Array.length t.labels
let label t i = t.labels.(i)

let lookup t key =
  let h = hash key in
  let points = t.points in
  let n = Array.length points in
  (* First point with hash >= h; wraps to point 0 past the last. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if fst points.(mid) < h then search (mid + 1) hi else search lo mid
  in
  let idx = search 0 n in
  snd points.(if idx = n then 0 else idx)
