(** Typed responses of the preparation service.

    One response is one JSON object on one line, always carrying an
    [ok] boolean and the [req] kind it answers, plus the request's [id]
    when one was given.  A schedule response reports the cost metrics of
    the planned batch — [Tc], [q], [Tms], [W], [I] — together with the
    coalescing facts: the waiter's own demand [D], the merged batch
    demand [batch_D], and how many requests shared the planning job. *)

type summary = {
  scheme : string;  (** E.g. ["MM+SRS"]. *)
  mixers : int;
  demand : int;  (** The demand the batch was planned for. *)
  tc : int;
  q : int;
  tms : int;
  waste : int;
  input_total : int;
  trees : int;
  passes : int;
  within_limit : bool;
      (** [false] only for a streaming run whose storage budget cannot
          fit even a two-droplet pass. *)
}

val summary_of_metrics : Mdst.Metrics.t -> summary

type stats = {
  queue_depth : int;
  workers : int;
  served : int;  (** Responses written, this transport and others. *)
  errors : int;  (** Error responses among them. *)
  coalesced : int;  (** Requests that merged into an existing job. *)
  jobs : int;  (** Planning jobs executed by the pool. *)
  plans_built : int;  (** Jobs that actually built a forest (cache misses). *)
  cache : Cache.stats;
  avg_latency_ms : float;  (** Mean submit-to-completion of prepare requests. *)
  uptime_s : float;
  wal : Jsonl.t option;
      (** Journal/recovery counters when the daemon runs with a
          write-ahead log ([dmfd --wal-dir]), [None] otherwise — so a
          daemon without durability serves byte-identical stats. *)
  store : Jsonl.t option;
      (** Plan-store counters when the daemon runs with a
          content-addressed store ([dmfd --store-dir]), encoded as the
          [plan_store] object; [None] otherwise, same discipline as
          [wal]. *)
  replication : Jsonl.t option;
      (** Replication role and progress (role, last_applied_seq, lag)
          when the daemon serves or follows a replication feed, encoded
          as the [replication] object; [None] otherwise, same
          discipline as [wal]. *)
}

type body =
  | Schedule of {
      summary : summary;
      demand : int;  (** This waiter's own demand. *)
      batch_demand : int;
      coalesced : int;  (** Requests answered by the same planning job. *)
      cache_hit : bool;
      instr : Mdst.Instr.counters option;
          (** Scheduler-core counters of the planning job (see
              {!Mdst.Instr}), encoded as a nested [instr] object. *)
    }
  | Pong
  | Stats of stats
  | Error of string

type t = {
  id : Jsonl.t option;
  elapsed_ms : float option;  (** Wall time from admission to completion. *)
  body : body;
}

val ok : t -> bool
(** [false] exactly for {!Error} bodies. *)

val to_json : t -> Jsonl.t

val to_line : t -> string
(** [to_string] of {!to_json} — one protocol line, no newline. *)
