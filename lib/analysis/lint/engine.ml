(* Orchestration: load -> extract -> propagate -> rules -> cycles ->
   suppression matching.  A suppression is an attribute
   [@dmflint.allow "<rule>: <rationale>"] whose carrier's line span
   covers the finding, in the same file, for the same rule; malformed
   suppressions are themselves findings (DML000) and cannot be
   suppressed. *)

type result = {
  findings : Finding.t list;  (* sorted; suppressed ones marked *)
  graph : Lockgraph.t;
  cycles : string list list;
  units : Summary.unit_info list;
  errors : Loader.error list;
}

let apply_suppressions units findings =
  let sups = List.concat_map (fun u -> u.Summary.suppressions) units in
  List.iter
    (fun (f : Finding.t) ->
      if f.rule.Ids.id <> Ids.bad_suppression.Ids.id then
        match
          List.find_opt
            (fun s ->
              s.Summary.s_file = f.loc.Summary.file
              && f.loc.Summary.line >= s.Summary.s_line_start
              && f.loc.Summary.line <= s.Summary.s_line_end
              &&
              match Ids.by_name s.Summary.s_rule with
              | Some r -> r.Ids.id = f.rule.Ids.id
              | None -> false)
            sups
        with
        | Some s -> f.suppressed <- Some s.Summary.s_rationale
        | None -> ())
    findings

let dedup findings =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun f ->
      let k = Finding.key f in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    findings

let run ~root ~excludes =
  let units, errors = Loader.load ~root ~excludes in
  let prop = Propagate.run units in
  let out = Rules.run units prop in
  let cycles = Lockgraph.cycles out.Rules.graph in
  let cycle_findings =
    List.map
      (fun scc ->
        let loc, where =
          match Lockgraph.cycle_witness out.Rules.graph scc with
          | Some (_, _, loc) -> (loc, "")
          | None -> ({ Summary.file = ""; line = 0; col = 0 }, "")
        in
        ignore where;
        Finding.make Ids.lock_order loc
          (Printf.sprintf "lock-order cycle: %s"
             (String.concat " -> " (scc @ [ List.hd scc ]))))
      cycles
  in
  let bad_sup_findings =
    List.concat_map
      (fun u ->
        List.map
          (fun loc ->
            Finding.make Ids.bad_suppression loc
              "malformed [@dmflint.allow]: payload must be \"<rule>: \
               <rationale>\" naming a known rule with a non-empty rationale")
          u.Summary.bad_suppressions)
      units
  in
  let findings =
    dedup (out.Rules.findings @ cycle_findings @ bad_sup_findings)
  in
  apply_suppressions units findings;
  let findings = List.sort Finding.compare findings in
  { findings; graph = out.Rules.graph; cycles; units; errors }

let unsuppressed r =
  List.filter (fun (f : Finding.t) -> f.suppressed = None) r.findings
