test/test_sim.ml: Alcotest Array Chip Dmf Generators List Mdst Mixtree Printf QCheck2 Result Sim
