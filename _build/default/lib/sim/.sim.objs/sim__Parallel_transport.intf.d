lib/sim/parallel_transport.mli: Chip Mdst
