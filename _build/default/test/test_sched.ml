(* Tests for the schedulers (MMS, SRS, OMS), storage counting and the
   Gantt renderer. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let pcr = Generators.pcr16

let forest demand =
  Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~demand

(* ------------------------------------------------------------------ *)
(* Paper's worked example (Figures 3-4)                                *)

let test_srs_fig3 () =
  let plan = forest 20 in
  let s = Mdst.Srs.schedule ~plan ~mixers:3 in
  check int "Tc (paper: 11)" 11 (Mdst.Schedule.completion_time s);
  check int "q (paper: 5)" 5 (Mdst.Storage.units ~plan s)

let test_mms_demand20 () =
  let plan = forest 20 in
  let mms = Mdst.Mms.schedule ~plan ~mixers:3 in
  let srs = Mdst.Srs.schedule ~plan ~mixers:3 in
  check bool "MMS at least as fast as SRS" true
    (Mdst.Schedule.completion_time mms <= Mdst.Schedule.completion_time srs);
  check bool "SRS needs at most MMS's storage" true
    (Mdst.Storage.units ~plan srs <= Mdst.Storage.units ~plan mms)

let test_mms_demand16 () =
  let plan = forest 16 in
  let s = Mdst.Mms.schedule ~plan ~mixers:3 in
  check int "Tc for the zero-waste forest" 7 (Mdst.Schedule.completion_time s)

(* ------------------------------------------------------------------ *)
(* Schedule mechanics                                                  *)

let test_validate_catches_violations () =
  let plan = forest 4 in
  let n = Mdst.Plan.n_nodes plan in
  (* All nodes crammed into cycle 1 violates both precedence and mixer
     capacity. *)
  check bool "invalid schedule rejected" true
    (try
       ignore
         (Mdst.Schedule.create ~plan ~mixers:2 ~cycles:(Array.make n 1)
            ~mixer_of:(Array.make n 1));
       false
     with Invalid_argument _ -> true)

let test_at_cycle () =
  let plan = forest 20 in
  let s = Mdst.Srs.schedule ~plan ~mixers:3 in
  let total =
    List.fold_left
      (fun acc t -> acc + List.length (Mdst.Schedule.at_cycle s t))
      0
      (List.init (Mdst.Schedule.completion_time s) (fun i -> i + 1))
  in
  check int "every node appears exactly once" (Mdst.Plan.n_nodes plan) total

let test_emission_order () =
  let plan = forest 20 in
  let s = Mdst.Srs.schedule ~plan ~mixers:3 in
  let emissions = Mdst.Schedule.emission_order ~plan s in
  check int "ten emissions" 10 (List.length emissions);
  let cycles = List.map fst emissions in
  check bool "sorted by cycle" true (List.sort compare cycles = cycles)

let test_single_mixer () =
  let plan = forest 8 in
  let s = Mdst.Mms.schedule ~plan ~mixers:1 in
  (* One mixer serialises everything. *)
  check int "Tc = Tms" (Mdst.Plan.tms plan) (Mdst.Schedule.completion_time s)

let test_mixer_count_rejected () =
  let plan = forest 4 in
  check bool "zero mixers rejected" true
    (try ignore (Mdst.Mms.schedule ~plan ~mixers:0); false
     with Invalid_argument _ -> true);
  check bool "SRS zero mixers rejected" true
    (try ignore (Mdst.Srs.schedule ~plan ~mixers:0); false
     with Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* OMS                                                                 *)

let test_oms_matches_hu_on_trees () =
  List.iter
    (fun ratio ->
      let ratio = Dmf.Ratio.of_string ratio in
      let tree = Mixtree.Minmix.build ratio in
      let plan = Mdst.Forest.repeated ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:2 in
      List.iter
        (fun mixers ->
          let s = Mdst.Oms.schedule ~plan ~mixers in
          check int
            (Printf.sprintf "tc %s m=%d" (Dmf.Ratio.to_string ratio) mixers)
            (Mixtree.Hu.completion_time tree ~mixers)
            (Mdst.Schedule.completion_time s))
        [ 1; 2; 3; 4 ])
    [ "2:1:1:1:1:1:9"; "128:123:5"; "3:5"; "9:17:26:9:195" ]

(* ------------------------------------------------------------------ *)
(* Storage counting                                                    *)

(* Brute-force recomputation of the storage profile from first
   principles: at cycle t, a droplet is stored iff it was produced before
   cycle t and will be consumed after cycle t. *)
let brute_force_storage plan s =
  let tc = Mdst.Schedule.completion_time s in
  let best = ref 0 in
  for t = 1 to tc do
    let stored = ref 0 in
    List.iter
      (fun node ->
        let id = node.Mdst.Plan.id in
        let tn = Mdst.Schedule.cycle s id in
        List.iter
          (fun port ->
            match Mdst.Plan.consumer plan ~node:id ~port with
            | None -> ()
            | Some c ->
              let tp = Mdst.Schedule.cycle s c in
              if tn < t && t < tp then incr stored)
          [ 0; 1 ])
      (Mdst.Plan.nodes plan);
    best := max !best !stored
  done;
  !best

let test_storage_matches_brute_force () =
  List.iter
    (fun demand ->
      let plan = forest demand in
      List.iter
        (fun mixers ->
          let s = Mdst.Srs.schedule ~plan ~mixers in
          check int
            (Printf.sprintf "q at D=%d m=%d" demand mixers)
            (brute_force_storage plan s)
            (Mdst.Storage.units ~plan s))
        [ 1; 3; 5 ])
    [ 2; 8; 20 ]

let test_storage_profile_length () =
  let plan = forest 20 in
  let s = Mdst.Srs.schedule ~plan ~mixers:3 in
  check int "profile spans Tc cycles" (Mdst.Schedule.completion_time s)
    (Array.length (Mdst.Storage.profile ~plan s))

let test_residencies_have_positive_spans () =
  let plan = forest 20 in
  let s = Mdst.Mms.schedule ~plan ~mixers:3 in
  List.iter
    (fun r ->
      check bool "span well-formed" true
        (r.Mdst.Storage.from_cycle <= r.Mdst.Storage.to_cycle))
    (Mdst.Storage.residencies ~plan s)

(* ------------------------------------------------------------------ *)
(* Gantt                                                               *)

let test_gantt_renders () =
  let plan = forest 20 in
  let s = Mdst.Srs.schedule ~plan ~mixers:3 in
  let chart = Mdst.Gantt.render ~plan s in
  check bool "mentions Tc" true
    (Astring.String.is_infix ~affix:"Tc = 11" chart);
  check bool "mentions q" true (Astring.String.is_infix ~affix:"q = 5" chart);
  check bool "labels m11" true (Astring.String.is_infix ~affix:"m11" chart)

let test_gantt_label () =
  let node =
    { Mdst.Plan.id = 0; tree = 9; level = 1; bfs = 4;
      value = Dmf.Mixture.pure ~n:2 (Dmf.Fluid.make 0);
      left = Mdst.Plan.Input (Dmf.Fluid.make 0);
      right = Mdst.Plan.Input (Dmf.Fluid.make 1) }
  in
  check Alcotest.string "single digits" "m94" (Mdst.Gantt.label node);
  check Alcotest.string "double digits" "m10,4"
    (Mdst.Gantt.label { node with Mdst.Plan.tree = 10 })

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)

let sched_case_gen =
  QCheck2.Gen.(
    triple Generators.ratio_gen Generators.demand_gen (int_range 1 6))

let sched_case_print (r, d, m) =
  Printf.sprintf "%s D=%d m=%d" (Dmf.Ratio.to_string r) d m

let prop_scheduler_valid scheduler name =
  Generators.qtest ~count:200 (name ^ " schedules are valid") sched_case_gen
    sched_case_print (fun (ratio, demand, mixers) ->
      let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand in
      let s = scheduler ~plan ~mixers in
      Result.is_ok (Mdst.Schedule.validate ~plan s))

let prop_srs_storage_not_worse_aggregate () =
  (* Table 3's claim is an average, not a per-instance bound; check the
     aggregate over a deterministic corpus slice. *)
  let ratios = Lazy.force Generators.corpus_slice in
  let total_mms = ref 0 and total_srs = ref 0 in
  List.iter
    (fun ratio ->
      let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand:32 in
      let mixers = Mdst.Engine.default_mixers ratio in
      let mms = Mdst.Mms.schedule ~plan ~mixers in
      let srs = Mdst.Srs.schedule ~plan ~mixers in
      total_mms := !total_mms + Mdst.Storage.units ~plan mms;
      total_srs := !total_srs + Mdst.Storage.units ~plan srs)
    ratios;
  check bool
    (Printf.sprintf "aggregate SRS storage (%d) <= aggregate MMS storage (%d)"
       !total_srs !total_mms)
    true
    (!total_srs <= !total_mms)

let prop_tc_lower_bound =
  Generators.qtest ~count:150 "Tc >= ceil(Tms / Mc) and >= depth"
    sched_case_gen sched_case_print (fun (ratio, demand, mixers) ->
      let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio ~demand in
      let s = Mdst.Mms.schedule ~plan ~mixers in
      let tc = Mdst.Schedule.completion_time s in
      (* The critical path is the depth of the base tree, which can be
         shorter than the accuracy level when the ratio reduces. *)
      tc >= Dmf.Binary.ceil_div (Mdst.Plan.tms plan) mixers
      && tc >= Mixtree.Tree.depth (Mixtree.Minmix.build ratio))

let () =
  Alcotest.run "sched"
    [
      ( "paper",
        [
          Alcotest.test_case "SRS Figure 3 (Tc=11, q=5)" `Quick test_srs_fig3;
          Alcotest.test_case "MMS vs SRS trade-off at D=20" `Quick
            test_mms_demand20;
          Alcotest.test_case "MMS at D=16" `Quick test_mms_demand16;
        ] );
      ( "mechanics",
        [
          Alcotest.test_case "validation catches violations" `Quick
            test_validate_catches_violations;
          Alcotest.test_case "at_cycle partitions nodes" `Quick test_at_cycle;
          Alcotest.test_case "emission order" `Quick test_emission_order;
          Alcotest.test_case "single mixer serialises" `Quick test_single_mixer;
          Alcotest.test_case "zero mixers rejected" `Quick
            test_mixer_count_rejected;
        ] );
      ( "oms",
        [ Alcotest.test_case "matches Hu on single trees" `Quick
            test_oms_matches_hu_on_trees ] );
      ( "storage",
        [
          Alcotest.test_case "matches brute force" `Quick
            test_storage_matches_brute_force;
          Alcotest.test_case "profile length" `Quick test_storage_profile_length;
          Alcotest.test_case "residency spans" `Quick
            test_residencies_have_positive_spans;
        ] );
      ( "gantt",
        [
          Alcotest.test_case "renders the paper chart" `Quick test_gantt_renders;
          Alcotest.test_case "node labels" `Quick test_gantt_label;
        ] );
      ( "properties",
        [
          prop_scheduler_valid Mdst.Mms.schedule "MMS";
          prop_scheduler_valid Mdst.Srs.schedule "SRS";
          prop_scheduler_valid Mdst.Oms.schedule "OMS";
          Alcotest.test_case "aggregate SRS storage <= MMS" `Slow
            prop_srs_storage_not_worse_aggregate;
          prop_tc_lower_bound;
        ] );
    ]
