(* Phase 1: interprocedural fixpoint over per-function summaries.
   Every function is interpreted from an empty held set; calls pull in
   their callee's summary; closures passed to a combinator are
   interpreted under the locks that combinator holds at the invocation
   of that parameter (param_held), which is itself discovered during
   the fixpoint.  Closures handed to a thread-starter run with an empty
   held set and contribute nothing to the spawning function's
   lock-sensitive facts (they execute on another thread), but their
   spawns/forks still propagate. *)

module SS = Set.Make (String)
module S = Summary

type summ = {
  mutable acquires : SS.t;  (* locks possibly acquired during a call *)
  mutable blocks : (string * S.loc) option;  (* witness prim, its site *)
  mutable callback : (string * S.loc) option;
      (* invokes a function value that is not one of its own parameters
         (field projection, pattern-bound hook): callers cannot
         discharge it by passing a known-safe closure *)
  mutable spawns : bool;
  mutable forks : bool;
  mutable calls : SS.t;
  mutable refs : SS.t;
}

type t = {
  summaries : (string, summ) Hashtbl.t;
  param_held : (string * int, SS.t) Hashtbl.t;
}

let find t name = Hashtbl.find_opt t.summaries name
let param_held t key =
  match Hashtbl.find_opt t.param_held key with
  | Some s -> s
  | None -> SS.empty

let fresh_summ () =
  {
    acquires = SS.empty;
    blocks = None;
    callback = None;
    spawns = false;
    forks = false;
    calls = SS.empty;
    refs = SS.empty;
  }

let run (units : S.unit_info list) =
  let t = { summaries = Hashtbl.create 256; param_held = Hashtbl.create 64 } in
  List.iter
    (fun u ->
      List.iter
        (fun f -> Hashtbl.replace t.summaries f.S.qname (fresh_summ ()))
        u.S.funcs)
    units;
  let changed = ref true in
  let grow_set get set v s =
    if not (SS.subset v (get s)) then begin
      set s (SS.union (get s) v);
      changed := true
    end
  in
  let add_acquires =
    grow_set (fun s -> s.acquires) (fun s v -> s.acquires <- v)
  in
  let add_calls = grow_set (fun s -> s.calls) (fun s v -> s.calls <- v) in
  let add_refs = grow_set (fun s -> s.refs) (fun s v -> s.refs <- v) in
  let set_blocks s w =
    if s.blocks = None then begin
      s.blocks <- Some w;
      changed := true
    end
  in
  let set_callback s w =
    if s.callback = None then begin
      s.callback <- Some w;
      changed := true
    end
  in
  let set_spawns s =
    if not s.spawns then begin
      s.spawns <- true;
      changed := true
    end
  in
  let set_forks s =
    if not s.forks then begin
      s.forks <- true;
      changed := true
    end
  in
  let add_param_held key held =
    let cur = param_held t key in
    if not (SS.subset held cur) then begin
      Hashtbl.replace t.param_held key (SS.union cur held);
      changed := true
    end
  in
  (* [live]: false inside a closure that runs on another thread — its
     lock-sensitive facts are not the enclosing function's. *)
  let rec walk fname s ~live held evs =
    List.fold_left (step fname s ~live) held evs
  and step fname s ~live held ev =
    match ev with
    | S.Acquire { lock; _ } ->
      if live then add_acquires (SS.singleton lock) s;
      SS.add lock held
    | S.Release { lock } -> SS.remove lock held
    | S.Wait { loc; _ } ->
      if live then set_blocks s ("Condition.wait", loc);
      held
    | S.Call { callee = S.Global g; loc; _ } ->
      add_calls (SS.singleton g) s;
      if live && SS.mem g Prims.blocking then set_blocks s (g, loc);
      if SS.mem g Prims.fork then set_forks s;
      if g = Prims.spawn then set_spawns s;
      (match find t g with
      | Some gs ->
        if live then begin
          add_acquires gs.acquires s;
          (match gs.blocks with Some w -> set_blocks s w | None -> ());
          (match gs.callback with Some w -> set_callback s w | None -> ())
        end;
        if gs.spawns then set_spawns s;
        if gs.forks then set_forks s
      | None -> ());
      held
    | S.Call { callee = S.Callback { param_index = Some i; _ }; _ } ->
      if live then add_param_held (fname, i) held;
      held
    | S.Call { callee = S.Callback { name; param_index = None }; loc; _ } ->
      if live then set_callback s (name, loc);
      held
    | S.Ref { name; loc } ->
      add_refs (SS.singleton name) s;
      (* A blocking function handed to an iterator (Array.iter
         Domain.join ...) blocks just like calling it. *)
      if live && SS.mem name Prims.blocking then set_blocks s (name, loc);
      (match find t name with
      | Some gs ->
        if gs.spawns then set_spawns s;
        if gs.forks then set_forks s;
        if live then (
          match gs.blocks with Some w -> set_blocks s w | None -> ())
      | None -> ());
      held
    | S.ClosureArg { callee; index; fresh; body } ->
      let inner_held =
        if fresh then SS.empty
        else
          match callee with
          | Some c -> SS.union held (param_held t (c, index))
          | None -> held
      in
      ignore (walk fname s ~live:(live && not fresh) inner_held body);
      held
    | S.Branch alts ->
      (* Must-hold join: a lock is held after the branch only if every
         alternative exits with it held.  Union would let one
         wait-loop path poison everything downstream of an inlined
         local function with a phantom held lock. *)
      (match List.map (fun alt -> walk fname s ~live held alt) alts with
      | [] -> held
      | first :: rest -> List.fold_left SS.inter first rest)
  in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    List.iter
      (fun u ->
        List.iter
          (fun f ->
            match find t f.S.qname with
            | Some s ->
              ignore (walk f.S.qname s ~live:true SS.empty f.S.events)
            | None -> ())
          u.S.funcs)
      units
  done;
  t
