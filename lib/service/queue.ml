type outcome = {
  prepared : Prep.prepared;
  batch_demand : int;
  coalesced : int;
  cache_hit : bool;
}

(* One result cell per job, shared by all its waiters. *)
type job = {
  key : string;
  mutable spec : Request.spec;  (* demand = sum over waiters *)
  mutable requests : int;
  cell_lock : Mutex.t;
  cell_cond : Condition.t;
  mutable result : (outcome, string) result option;
}

type ticket = { job : job; my_demand : int }

type t = {
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  pending : job Stdlib.Queue.t;
  by_key : (string, job) Hashtbl.t;  (* pending jobs only *)
  capacity : int;
  on_admit : (Request.spec -> unit) option;
  mutable coalesced : int;
  mutable closed : bool;
}

let create ?on_admit ~capacity () =
  if capacity < 1 then invalid_arg "Queue.create: capacity must be positive";
  {
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    pending = Stdlib.Queue.create ();
    by_key = Hashtbl.create 64;
    capacity;
    on_admit;
    coalesced = 0;
    closed = false;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f
[@@dmflint.allow
  "callback-under-lock: with-lock combinator; dmflint analyzes every \
   caller's closure under t.lock via param_held, so the indirect call \
   here is the mechanism, not an escape hatch"]

let new_job key spec =
  {
    key;
    spec;
    requests = 1;
    cell_lock = Mutex.create ();
    cell_cond = Condition.create ();
    result = None;
  }

(* The admission hook runs under the queue lock, before any worker can
   take the job: what it observes (e.g. what the WAL journals) is
   exactly the admission order, and an admitted request is journaled
   strictly before its job can complete. *)
let admitted t (spec : Request.spec) quiet ticket =
  (match t.on_admit with
  | Some hook when not quiet -> hook spec
  | Some _ | None -> ());
  Ok ticket

let submit ?(quiet = false) t (spec : Request.spec) =
  let key = Request.coalesce_key spec in
  locked t (fun () ->
      if t.closed then Error "server is shutting down"
      else
        match Hashtbl.find_opt t.by_key key with
        | Some job
          when job.spec.Request.demand + spec.Request.demand
               <= Validate.max_demand ->
          (* Merge: sum the demand, remember our share. *)
          job.spec <-
            {
              job.spec with
              Request.demand = job.spec.Request.demand + spec.Request.demand;
            };
          job.requests <- job.requests + 1;
          t.coalesced <- t.coalesced + 1;
          admitted t spec quiet { job; my_demand = spec.Request.demand }
        | Some _ | None ->
          (* New pending job; block while the queue is full. *)
          let rec wait_for_room () =
            if t.closed then Error "server is shutting down"
            else if Stdlib.Queue.length t.pending >= t.capacity then begin
              Condition.wait t.not_full t.lock;
              wait_for_room ()
            end
            else begin
              let job = new_job key spec in
              Stdlib.Queue.push job t.pending;
              (* A fuller batch may already exist under this key when the
                 merge above hit the demand cap; the newest pending job
                 is the one later requests coalesce into. *)
              Hashtbl.replace t.by_key key job;
              Condition.signal t.not_empty;
              admitted t spec quiet { job; my_demand = spec.Request.demand }
            end
          in
          wait_for_room ())
[@@dmflint.allow
  "callback-under-lock: the on_admit hook deliberately runs under the \
   queue lock so it observes exact admission order (the WAL journals \
   an accepted request strictly before its job can complete); the \
   hook's contract is non-blocking and lock-free, see the comment on \
   [admitted]"]

let take t =
  locked t (fun () ->
      let rec wait_for_job () =
        match Stdlib.Queue.take_opt t.pending with
        | Some job ->
          (* From here on the job is frozen: forget the key so identical
             later requests start a fresh job instead of mutating one a
             worker is already planning. *)
          (match Hashtbl.find_opt t.by_key job.key with
          | Some j when j == job -> Hashtbl.remove t.by_key job.key
          | Some _ | None -> ());
          Condition.signal t.not_full;
          Some job
        | None ->
          if t.closed then None
          else begin
            Condition.wait t.not_empty t.lock;
            wait_for_job ()
          end
      in
      wait_for_job ())

let job_spec job = job.spec
let job_requests job = job.requests

let fulfil job result =
  Mutex.lock job.cell_lock;
  if job.result = None then begin
    job.result <- Some result;
    Condition.broadcast job.cell_cond
  end;
  Mutex.unlock job.cell_lock

let wait ticket =
  let job = ticket.job in
  Mutex.lock job.cell_lock;
  let rec loop () =
    match job.result with
    | Some r -> r
    | None ->
      Condition.wait job.cell_cond job.cell_lock;
      loop ()
  in
  let r = loop () in
  Mutex.unlock job.cell_lock;
  r

let ticket_demand ticket = ticket.my_demand

let depth t = locked t (fun () -> Stdlib.Queue.length t.pending)
let coalesced_total t = locked t (fun () -> t.coalesced)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.not_empty;
      Condition.broadcast t.not_full)
