(* Tests for the cross-contamination analysis. *)

let check = Alcotest.check
let int = Alcotest.int
let bool = Alcotest.bool
let pcr = Generators.pcr16

let run demand =
  let plan = Mdst.Forest.build ~algorithm:Mixtree.Algorithm.MM ~ratio:pcr ~demand in
  let schedule = Mdst.Srs.schedule ~plan ~mixers:3 in
  let layout = Chip.Layout.pcr_fig5 () in
  match Sim.Executor.run ~layout ~plan ~schedule with
  | Error e -> Alcotest.fail e
  | Ok (trace, stats) ->
    (plan, layout, trace, stats, Sim.Contamination.analyze ~layout ~plan ~trace)

let test_consistency () =
  let _, _, _, stats, report = run 20 in
  check bool "crossings happen on a busy chip" true
    (report.Sim.Contamination.total_crossings > 0);
  check bool "benign <= total" true
    (report.Sim.Contamination.benign_crossings
    <= report.Sim.Contamination.total_crossings);
  check int "pairs + benign = total"
    report.Sim.Contamination.total_crossings
    (List.length report.Sim.Contamination.pairs
    + report.Sim.Contamination.benign_crossings);
  check bool "dirty cells bounded by pairs" true
    (report.Sim.Contamination.contaminated_cells
    <= List.length report.Sim.Contamination.pairs);
  check bool "wash overhead ratio finite" true
    (Sim.Contamination.wash_overhead_ratio report
       ~transport_electrodes:stats.Sim.Executor.electrodes
    >= 0.)

let test_pairs_are_cross_value () =
  let _, _, _, _, report = run 20 in
  List.iter
    (fun p ->
      check bool "pair values differ" false
        (Dmf.Mixture.equal p.Sim.Contamination.first.Sim.Contamination.value
           p.Sim.Contamination.second.Sim.Contamination.value);
      check bool "chronological" true
        (p.Sim.Contamination.first.Sim.Contamination.step
        < p.Sim.Contamination.second.Sim.Contamination.step))
    report.Sim.Contamination.pairs

let test_wash_plan_nonempty_when_contaminated () =
  let _, _, _, _, report = run 20 in
  if report.Sim.Contamination.contaminated_cells > 0 then begin
    check bool "some washes" true (report.Sim.Contamination.wash.washes > 0);
    check bool "wash route does work" true
      (report.Sim.Contamination.wash.wash_steps > 0)
  end

let test_single_pass_less_contaminated_than_stream () =
  (* A D=2 pass moves far fewer distinct mixtures than a D=20 stream. *)
  let _, _, _, _, small = run 2 in
  let _, _, _, _, large = run 20 in
  check bool "contamination grows with traffic" true
    (List.length small.Sim.Contamination.pairs
    <= List.length large.Sim.Contamination.pairs)

let () =
  Alcotest.run "contamination"
    [
      ( "analysis",
        [
          Alcotest.test_case "consistency" `Quick test_consistency;
          Alcotest.test_case "pairs are cross-value" `Quick
            test_pairs_are_cross_value;
          Alcotest.test_case "wash plan" `Quick
            test_wash_plan_nonempty_when_contaminated;
          Alcotest.test_case "traffic scaling" `Quick
            test_single_pass_less_contaminated_than_stream;
        ] );
    ]
