lib/core/mms.mli: Plan Schedule
