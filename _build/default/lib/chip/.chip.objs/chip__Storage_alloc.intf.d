lib/chip/storage_alloc.mli: Mdst
