let version = 1

let name seq = Printf.sprintf "snapshot-%012d.json" seq

let prefix = "snapshot-"
let suffix = ".json"

let list ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | names ->
    let pn = String.length prefix and sn = String.length suffix in
    Array.to_list names
    |> List.filter_map (fun n ->
           let len = String.length n in
           if
             len > pn + sn
             && String.sub n 0 pn = prefix
             && String.sub n (len - sn) sn = suffix
           then
             match int_of_string_opt (String.sub n pn (len - pn - sn)) with
             | Some seq -> Some (seq, Filename.concat dir n)
             | None -> None
           else None)
    |> List.sort compare

let body_json ~seq state =
  [
    ("version", Service.Jsonl.Int version);
    ("seq", Service.Jsonl.Int seq);
    ( "cache",
      Service.Jsonl.List
        (List.map Record.spec_to_json (State.cache_specs state)) );
    ( "outstanding",
      Service.Jsonl.List
        (List.map Record.spec_to_json (State.outstanding state)) );
  ]

let write_all fd s =
  let n = String.length s in
  let written = ref 0 in
  while !written < n do
    written := !written + Unix.write_substring fd s !written (n - !written)
  done

let write ~dir ~seq state =
  Wal.ensure_dir dir;
  let body = body_json ~seq state in
  let crc = Crc32.string (Service.Jsonl.to_string (Service.Jsonl.Obj body)) in
  let text =
    Service.Jsonl.to_string
      (Service.Jsonl.Obj (body @ [ ("crc", Service.Jsonl.Int crc) ]))
    ^ "\n"
  in
  let path = Filename.concat dir (name seq) in
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      write_all fd text;
      Unix.fsync fd);
  Unix.rename tmp path;
  (* Make the rename itself durable where the platform allows it. *)
  (match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | dfd ->
    (try Unix.fsync dfd with Unix.Unix_error _ -> ());
    Unix.close dfd
  | exception Unix.Unix_error _ -> ());
  path

let ( let* ) = Result.bind

let spec_list name json =
  match Service.Jsonl.member name json with
  | Some (Service.Jsonl.List items) ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* spec = Record.spec_of_json item in
        Ok (spec :: acc))
      (Ok []) items
    |> Result.map List.rev
  | Some _ -> Error (Printf.sprintf "snapshot field %S must be a list" name)
  | None -> Error (Printf.sprintf "snapshot is missing the %S field" name)

let load ~cache_capacity path =
  let* text =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Ok (In_channel.input_all ic))
    with Sys_error msg -> Error msg
  in
  let* json = Service.Jsonl.of_string (String.trim text) in
  let* kvs =
    match json with
    | Service.Jsonl.Obj kvs -> Ok kvs
    | _ -> Error "snapshot must be a JSON object"
  in
  let* stored_crc =
    match Service.Jsonl.(member "crc" json |> Option.map to_int) with
    | Some (Some c) -> Ok c
    | _ -> Error "snapshot is missing an integer \"crc\" field"
  in
  let body = List.filter (fun (k, _) -> k <> "crc") kvs in
  let computed =
    Crc32.string (Service.Jsonl.to_string (Service.Jsonl.Obj body))
  in
  if computed <> stored_crc then Error "snapshot crc mismatch"
  else
    let* v =
      match Service.Jsonl.(member "version" json |> Option.map to_int) with
      | Some (Some v) -> Ok v
      | _ -> Error "snapshot is missing an integer \"version\" field"
    in
    if v > version then
      Error (Printf.sprintf "snapshot version %d is newer than %d" v version)
    else
      let* cache_mru = spec_list "cache" json in
      let* outstanding = spec_list "outstanding" json in
      Ok (State.restore ~cache_capacity ~cache_mru ~outstanding)

let load_latest ~dir ~cache_capacity =
  let candidates = List.rev (list ~dir) in
  List.find_map
    (fun (seq, path) ->
      match load ~cache_capacity path with
      | Ok state -> Some (seq, state)
      | Error _ -> None)
    candidates
