test/test_mixtree.ml: Alcotest Array Dmf Generators Hashtbl Int List Mixtree Printf QCheck2 Result
