(* The primary side of replication: serve WAL segments plus the live
   tail to any number of followers, straight from the segment files on
   disk.

   Reading the journal from disk instead of teeing appends in memory
   keeps the feed entirely outside the manager's locks: the only
   coupling is a journal listener ({!notify}) that bumps a version
   counter and wakes parked sessions, so a slow follower can never
   stall a commit.  Sessions forward only complete newline-terminated
   lines (a partial tail is buffered until the writer finishes it), so
   followers always receive whole records.

   A session is one NDJSON connection.  Its first frame picks the mode:
   [subscribe] streams records forever; [plan_get] answers plan-store
   payload lookups request/response until the peer hangs up. *)

module Jsonl = Service.Jsonl
module Wal = Durable.Wal
module Snapshot = Durable.Snapshot
module Plan_store = Durable.Plan_store

type config = {
  dir : string;  (** The primary's WAL directory. *)
  last_seq : unit -> int;  (** {!Durable.Manager.last_seq}. *)
  fetch_plan : Service.Request.spec -> string option;
      (** Plan-store payload bytes for a spec, if stored. *)
}

type t = {
  config : config;
  wake : Mutex.t;
  tick : Condition.t;
  mutable version : int;  (** Bumped by {!notify}; parked sessions wait on it. *)
  mutable stopped : bool;
  mutable subscribers : int;
  mutable records_streamed : int;
  mutable resumes : int;
  mutable resets : int;
  mutable plans_served : int;
}

let create config =
  (* Streaming writes race follower deaths as a matter of course; an
     unhandled SIGPIPE would kill the daemon instead of surfacing as
     the EPIPE the session loop already catches. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  {
    config;
    wake = Mutex.create ();
    tick = Condition.create ();
    version = 0;
    stopped = false;
    subscribers = 0;
    records_streamed = 0;
    resumes = 0;
    resets = 0;
    plans_served = 0;
  }

let notify t _seq =
  Mutex.lock t.wake;
  t.version <- t.version + 1;
  Condition.broadcast t.tick;
  Mutex.unlock t.wake

let stop t =
  Mutex.lock t.wake;
  t.stopped <- true;
  Condition.broadcast t.tick;
  Mutex.unlock t.wake

let stopped t =
  Mutex.lock t.wake;
  let s = t.stopped in
  Mutex.unlock t.wake;
  s

(* Capture the version {e before} probing the files; a notify between
   the probe and the park then returns immediately instead of being
   missed. *)
let current_version t =
  Mutex.lock t.wake;
  let v = t.version in
  Mutex.unlock t.wake;
  v

let wait_tick t seen =
  Mutex.lock t.wake;
  while (not t.stopped) && t.version <= seen do
    Condition.wait t.tick t.wake
  done;
  Mutex.unlock t.wake

let bump t f =
  Mutex.lock t.wake;
  f t;
  Mutex.unlock t.wake
[@@dmflint.allow
  "callback-under-lock: with-lock combinator; every closure passed in \
   is a single counter increment — no I/O, no parking, no reentry"]

let now_ms () = Unix.gettimeofday () *. 1000.

let send oc frame =
  output_string oc (Wire.to_line frame);
  output_char oc '\n';
  flush oc

let heartbeat t oc =
  send oc (Wire.At { last_seq = t.config.last_seq (); ms = now_ms () })

(* ------------------------------------------------------------------ *)
(* Subscribe sessions                                                  *)

let segment_after ~dir segment =
  List.find_map
    (fun (seq, _path) -> if seq > segment then Some seq else None)
    (Wal.segments ~dir)

(* A cursor resumes iff its segment file still exists (compaction may
   have dropped it) and its offset is inside the file — the follower's
   mirror being verbatim, any shorter offset is a clean line boundary
   from its own past. *)
let resolve t (c : Wire.cursor) =
  if c.segment <= 0 then None
  else
    match List.assoc_opt c.segment (Wal.segments ~dir:t.config.dir) with
    | None -> None
    | Some path ->
      if c.offset <= (Unix.stat path).Unix.st_size then Some c else None

exception Stop_session

(* Forward the complete lines of [tail ^ chunk], returning the new
   partial tail.  Lines go out verbatim — same bytes, same newlines —
   with a heartbeat every [at_every] records so the follower can
   measure lag without waiting for an idle point. *)
let at_every = 512

let forward_lines t oc ~tail ~chunk ~streak =
  let data = tail ^ chunk in
  let parts = String.split_on_char '\n' data in
  let rec go streak = function
    | [] -> ("", streak)
    | [ last ] -> (last, streak)
    | line :: rest ->
      output_string oc line;
      output_char oc '\n';
      bump t (fun t -> t.records_streamed <- t.records_streamed + 1);
      let streak = streak + 1 in
      if streak >= at_every then begin
        flush oc;
        heartbeat t oc;
        go 0 rest
      end
      else go streak rest
  in
  let tail, streak = go streak parts in
  flush oc;
  (tail, streak)

(* Stream one segment from [offset] until a successor segment exists
   and the file is drained past a complete final line; then move on.
   The successor check happens only after a read that returned no
   bytes {e and} a re-read confirms end of file — rotation creates the
   successor strictly after the old segment's last append, so a
   confirmed EOF with a successor in the listing means the file is
   final. *)
let rec stream_segment t oc ~segment ~offset =
  send oc (Wire.Open_segment segment);
  let path = Filename.concat t.config.dir (Wal.segment_name segment) in
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let next =
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        ignore (Unix.lseek fd offset Unix.SEEK_SET);
        let chunk = Bytes.create 65536 in
        let rec drain ~tail ~streak ~idle =
          if stopped t then raise Stop_session;
          let seen = current_version t in
          let n = Analysis.Runtime.read_retry fd chunk 0 (Bytes.length chunk) in
          if n > 0 then
            let tail, streak =
              forward_lines t oc ~tail ~chunk:(Bytes.sub_string chunk 0 n)
                ~streak
            in
            drain ~tail ~streak ~idle:false
          else if tail = "" && segment_after ~dir:t.config.dir segment <> None
          then
            (* Confirmed EOF on a rotated-away segment: next file. *)
            segment_after ~dir:t.config.dir segment
          else begin
            (* Caught up (or waiting out a torn tail the writer is
               still finishing).  Tell the follower where the journal
               stands once per idle episode, then park. *)
            if not idle then heartbeat t oc;
            wait_tick t seen;
            drain ~tail ~streak ~idle:true
          end
        in
        drain ~tail:"" ~streak:0 ~idle:false)
  in
  match next with
  | Some segment -> stream_segment t oc ~segment ~offset:0
  | None -> ()

let rec first_segment t =
  match Wal.segments ~dir:t.config.dir with
  | (segment, _) :: _ -> segment
  | [] ->
    if stopped t then raise Stop_session;
    let seen = current_version t in
    wait_tick t seen;
    first_segment t

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let subscribe t oc cursor =
  bump t (fun t -> t.subscribers <- t.subscribers + 1);
  Fun.protect
    ~finally:(fun () -> bump t (fun t -> t.subscribers <- t.subscribers - 1))
    (fun () ->
      let start =
        match resolve t cursor with
        | Some c ->
          bump t (fun t -> t.resumes <- t.resumes + 1);
          send oc (Wire.Hello { resumed = true; last_seq = t.config.last_seq () });
          c
        | None ->
          bump t (fun t -> t.resets <- t.resets + 1);
          send oc
            (Wire.Hello { resumed = false; last_seq = t.config.last_seq () });
          (match List.rev (Snapshot.list ~dir:t.config.dir) with
          | (seq, path) :: _ ->
            send oc (Wire.Snapshot { seq; data = read_file path })
          | [] -> ());
          { Wire.segment = first_segment t; offset = 0 }
      in
      try stream_segment t oc ~segment:start.Wire.segment ~offset:start.Wire.offset
      with Stop_session -> ())

(* ------------------------------------------------------------------ *)
(* Plan-fetch sessions                                                 *)

let serve_plan t oc spec =
  let key = Plan_store.key_of_spec spec in
  let data = t.config.fetch_plan spec in
  if data <> None then bump t (fun t -> t.plans_served <- t.plans_served + 1);
  send oc (Wire.Plan { key; data })

let rec plan_loop t ic oc =
  match Jsonl.read_line ic with
  | Jsonl.Eof | Jsonl.Oversized _ -> ()
  | Jsonl.Line line | Jsonl.Tail line -> (
    match Wire.of_line line with
    | Ok (Wire.Plan_get spec) ->
      serve_plan t oc spec;
      plan_loop t ic oc
    | Ok _ | Error _ -> ())

(* ------------------------------------------------------------------ *)

let handle t ic oc =
  match Jsonl.read_line ic with
  | Jsonl.Eof | Jsonl.Oversized _ -> ()
  | Jsonl.Line line | Jsonl.Tail line -> (
    match Wire.of_line line with
    | Ok (Wire.Subscribe cursor) -> subscribe t oc cursor
    | Ok (Wire.Plan_get spec) ->
      serve_plan t oc spec;
      plan_loop t ic oc
    | Ok _ | Error _ -> ())

let stats_json t =
  Mutex.lock t.wake;
  let subscribers = t.subscribers
  and records_streamed = t.records_streamed
  and resumes = t.resumes
  and resets = t.resets
  and plans_served = t.plans_served in
  Mutex.unlock t.wake;
  Jsonl.Obj
    [
      ("role", Jsonl.String "primary");
      ("last_seq", Jsonl.Int (t.config.last_seq ()));
      ("subscribers", Jsonl.Int subscribers);
      ("records_streamed", Jsonl.Int records_streamed);
      ("resumes", Jsonl.Int resumes);
      ("resets", Jsonl.Int resets);
      ("plans_served", Jsonl.Int plans_served);
    ]

let serve_tcp ?on_listen t ~host ~port =
  let addr = Service.Net.resolve ~host ~port in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock addr;
  Unix.listen sock 16;
  (match on_listen with
  | None -> ()
  | Some f -> (
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, bound) -> f bound
    | Unix.ADDR_UNIX _ -> f port));
  while not (stopped t) do
    (* Same discipline as the service listener: a signal interrupts the
       blocking accept; keep serving until told to stop. *)
    match Unix.accept sock with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | fd, _peer ->
      ignore
        (Thread.create
           (fun fd ->
             let ic = Unix.in_channel_of_descr fd in
             let oc = Unix.out_channel_of_descr fd in
             (try handle t ic oc with _ -> ());
             (try close_out oc with _ -> ());
             try Unix.close fd with _ -> ())
           fd)
  done;
  try Unix.close sock with Unix.Unix_error _ -> ()
