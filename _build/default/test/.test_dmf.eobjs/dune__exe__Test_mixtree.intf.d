test/test_mixtree.mli:
