examples/quickstart.mli:
