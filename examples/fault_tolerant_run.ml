(* A fault-tolerant streaming run, end to end.

   The engine prepares 20 PCR master-mix droplets; midway, a checkpoint
   detects that one mix-split failed to separate and both daughters were
   discarded.  The recovery planner salvages whatever still sits in
   storage, rebuilds only the missing mixtures, and the run continues —
   cheaper than restarting and with a bounded CF error even under
   imbalanced splits.

   Run with: dune exec examples/fault_tolerant_run.exe *)

let ratio = Bioproto.Protocols.pcr ~d:4
let algorithm = Mixtree.Algorithm.MM

let section title = print_string (Mdst.Report.section title)

let () =
  section "Nominal run: 20 droplets, 3 mixers, SRS";
  let plan = Mdst.Forest.build ~algorithm ~ratio ~demand:20 in
  let schedule = Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan ~mixers:3 in
  Format.printf "%a@." Mdst.Plan.pp_summary plan;

  section "Failure: the split of node m3,2 does not separate (cycle 3)";
  (* Pick the node labelled m32 — third tree, second mix. *)
  let failed =
    List.find
      (fun node -> node.Mdst.Plan.tree = 3 && node.Mdst.Plan.bfs = 2)
      (Mdst.Plan.nodes plan)
  in
  let recovery =
    Mdst.Recovery.recover ~algorithm ~plan ~schedule
      ~failed_node:failed.Mdst.Plan.id
  in
  Format.printf
    "checkpoint at cycle %d: %d targets already emitted, %d droplets \
     salvaged from storage, %d droplets still owed@."
    recovery.Mdst.Recovery.failure_cycle recovery.Mdst.Recovery.delivered
    (Array.length recovery.Mdst.Recovery.salvaged)
    recovery.Mdst.Recovery.remaining_demand;
  Array.iteri
    (fun i v ->
      Format.printf "  salvaged droplet %d: %a@." i Dmf.Mixture.pp v)
    recovery.Mdst.Recovery.salvaged;

  (match
     (recovery.Mdst.Recovery.recovery_plan, recovery.Mdst.Recovery.fresh_restart)
   with
  | Some rec_plan, Some fresh ->
    section "Recovery forest (salvage-seeded) vs fresh restart";
    Format.printf "recovery: %a@." Mdst.Plan.pp_summary rec_plan;
    Format.printf "restart:  %a@." Mdst.Plan.pp_summary fresh;
    Format.printf "salvaging saves %d input droplet(s)@."
      (Mdst.Recovery.reagent_saving recovery);
    let rec_schedule = Mdst.Scheduler.schedule Mdst.Scheduler.srs ~plan:rec_plan ~mixers:3 in
    print_string (Mdst.Gantt.render ~plan:rec_plan rec_schedule);
    section "Robustness of the recovery run";
    let report = Mdst.Split_error.analyze ~plan:rec_plan ~epsilon:0.05 in
    Format.printf
      "worst-case CF error under 5%% split imbalance: %.5f (error floor \
       1/2^d = %.5f)@."
      report.Mdst.Split_error.max_cf_error
      (1. /. float_of_int (Dmf.Ratio.sum ratio))
  | _ -> Format.printf "demand already met — nothing to recover@.");

  section "Contamination picture of the nominal run";
  let layout = Chip.Layout.pcr_fig5 () in
  match Sim.Executor.run ~layout ~plan ~schedule with
  | Error e -> Format.printf "simulation failed: %s@." e
  | Ok (trace, stats) ->
    let report = Sim.Contamination.analyze ~layout ~plan ~trace in
    Format.printf
      "%d same-cell crossings (%d benign: identical mixtures), %d dirty \
       cells, wash estimate %d actuations (%.2fx transport)@."
      report.Sim.Contamination.total_crossings
      report.Sim.Contamination.benign_crossings
      report.Sim.Contamination.contaminated_cells
      report.Sim.Contamination.wash.Sim.Contamination.wash_steps
      (Sim.Contamination.wash_overhead_ratio report
         ~transport_electrodes:stats.Sim.Executor.electrodes)
