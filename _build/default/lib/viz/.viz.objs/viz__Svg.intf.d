lib/viz/svg.mli:
