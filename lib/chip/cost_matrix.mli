(** Droplet-transportation cost matrix (the matrix of Figure 5).

    Pairwise shortest-path costs, in electrodes actuated, between every
    pair of modules on an otherwise empty chip.  Used by the actuation
    accounting and by the placer's objective.

    [build] runs one single-source flood fill per module (O(n) BFS
    passes) instead of one BFS per pair (O(n²)); [build_pairwise] keeps
    the pairwise construction as the differential reference.  [update]
    recomputes only the rows and columns of modules whose rectangles
    changed, which makes the placer's per-swap re-evaluation O(2)
    floods instead of a full rebuild. *)

type t

val build : ?scratch:Router.Scratch.t -> Layout.t -> t
(** All-pairs costs via one flood fill per source module.  Unreachable
    pairs are recorded as such and raise on lookup.  Pass [scratch] to
    reuse BFS buffers across consecutive builds. *)

val update :
  ?scratch:Router.Scratch.t -> t -> Layout.t -> changed:string list -> t
(** [update t layout ~changed] is the matrix of [layout], obtained from
    [t] by re-flooding only the modules named in [changed] (rows and,
    by symmetry, columns).  Only valid when [layout] differs from the
    matrix's layout by moves that leave the overall set of occupied
    cells unchanged — e.g. the placer's same-size rectangle swaps —
    so that paths between unchanged modules are unaffected.  [t] is
    not mutated.
    @raise Invalid_argument on unknown ids or a changed module count. *)

val cost : t -> src:string -> dst:string -> int
(** @raise Invalid_argument on unknown ids or unreachable pairs. *)

val reachable : t -> src:string -> dst:string -> bool

val labels : t -> string list

val build_pairwise : Layout.t -> t
(** The original one-BFS-per-pair construction (via
    {!Router.Reference}), kept as the differential reference for
    {!build} and {!update}. *)

val render : ?rows:string list -> ?columns:string list -> t -> string
(** A text matrix restricted to the given module ids (all by default) —
    the Figure 5 presentation uses reservoirs, storage and waste rows
    against mixer columns. *)
