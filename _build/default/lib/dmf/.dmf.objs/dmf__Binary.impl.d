lib/dmf/binary.ml: List
