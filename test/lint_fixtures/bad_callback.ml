(* DML003: a caller-supplied function runs while the lock is held —
   if it blocks or takes this lock, the process deadlocks. *)

let m = Mutex.create ()

let notify cb =
  Mutex.lock m;
  cb ();
  Mutex.unlock m
