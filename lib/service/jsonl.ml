type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_literal f =
  if not (Float.is_finite f) then
    invalid_arg "Jsonl: cannot encode a non-finite float";
  (* %.17g round-trips every double; force a marker so the parser reads
     the number back as a float, not an int. *)
  let s = Printf.sprintf "%.17g" f in
  if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
  else s ^ ".0"

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | String s -> escape_string buf s
  | List vs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_string buf ", ";
        write buf v)
      vs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_string buf ", ";
        escape_string buf k;
        Buffer.add_string buf ": ";
        write buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over the input string.                   *)

exception Parse_error of string

let parse_error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | Some _ | None -> false
  do
    advance c
  done

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "expected '%c' at offset %d, got '%c'" ch c.pos x
  | None -> parse_error "expected '%c' at offset %d, got end of input" ch c.pos

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else parse_error "invalid literal at offset %d" c.pos

(* Decode a 4-hex-digit escape; surrogate pairs combine into one scalar. *)
let hex4 c =
  if c.pos + 4 > String.length c.s then
    parse_error "truncated \\u escape at offset %d" c.pos;
  let v = int_of_string_opt ("0x" ^ String.sub c.s c.pos 4) in
  match v with
  | Some v ->
    c.pos <- c.pos + 4;
    v
  | None -> parse_error "invalid \\u escape at offset %d" c.pos

let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' ->
      advance c;
      Buffer.contents buf
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> parse_error "unterminated escape"
      | Some ch ->
        advance c;
        (match ch with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          let u = hex4 c in
          let u =
            if u >= 0xD800 && u <= 0xDBFF then begin
              (* High surrogate: require the low half. *)
              expect c '\\';
              expect c 'u';
              let lo = hex4 c in
              if lo < 0xDC00 || lo > 0xDFFF then
                parse_error "unpaired surrogate at offset %d" c.pos;
              0x10000 + (((u - 0xD800) lsl 10) lor (lo - 0xDC00))
            end
            else if u >= 0xDC00 && u <= 0xDFFF then
              parse_error "unpaired surrogate at offset %d" c.pos
            else u
          in
          add_utf8 buf u
        | ch -> parse_error "invalid escape '\\%c'" ch);
        loop ())
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      loop ()
  in
  loop ()

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  if peek c = Some '-' then advance c;
  let digits () =
    let n = ref 0 in
    while match peek c with Some '0' .. '9' -> true | _ -> false do
      incr n;
      advance c
    done;
    if !n = 0 then parse_error "malformed number at offset %d" c.pos
  in
  digits ();
  if peek c = Some '.' then begin
    is_float := true;
    advance c;
    digits ()
  end;
  (match peek c with
  | Some ('e' | 'E') ->
    is_float := true;
    advance c;
    (match peek c with Some ('+' | '-') -> advance c | _ -> ());
    digits ()
  | _ -> ());
  let text = String.sub c.s start (c.pos - start) in
  if !is_float then Float (float_of_string text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> Float (float_of_string text) (* out of native int range *)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> parse_error "expected ',' or ']' at offset %d" c.pos
      in
      List (elements [])
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let binding () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        (k, parse_value c)
      in
      let rec bindings acc =
        let kv = binding () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          bindings (kv :: acc)
        | Some '}' ->
          advance c;
          List.rev (kv :: acc)
        | _ -> parse_error "expected ',' or '}' at offset %d" c.pos
      in
      Obj (bindings [])
    end
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_error "unexpected character '%c' at offset %d" ch c.pos

let of_string s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos < String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* [compare] (not [=]) so that NaN equals itself and the codec's
   round-trip property holds on every float it can print. *)
let equal a b = Stdlib.compare a b = 0

(* ------------------------------------------------------------------ *)
(* Pretty printing                                                     *)

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.pp_print_string ppf (float_literal f)
  | String s ->
    let buf = Buffer.create (String.length s + 2) in
    escape_string buf s;
    Format.pp_print_string ppf (Buffer.contents buf)
  | List vs ->
    Format.fprintf ppf "@[<hv 2>[%a]@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         pp)
      vs
  | Obj kvs ->
    Format.fprintf ppf "@[<hv 2>{@ %a@;<1 -2>}@]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         (fun ppf (k, v) -> Format.fprintf ppf "@[<h>%s: %a@]" k pp v))
      kvs

(* ------------------------------------------------------------------ *)
(* Bounded line reading                                                *)

type line =
  | Line of string
  | Tail of string
  | Oversized of int
  | Eof

let max_line_bytes = 1 lsl 20

let read_line ?(max_bytes = max_line_bytes) ic =
  let buf = Buffer.create 128 in
  (* Over the bound: stop buffering, just count until newline or EOF so
     the stream stays line-synchronized for the caller. *)
  let rec skip n =
    match input_char ic with
    | '\n' -> Oversized n
    | _ -> skip (n + 1)
    | exception End_of_file -> Oversized n
  in
  let rec loop () =
    match input_char ic with
    | '\n' -> Line (Buffer.contents buf)
    | c ->
      if Buffer.length buf >= max_bytes then skip (Buffer.length buf + 1)
      else begin
        Buffer.add_char buf c;
        loop ()
      end
    | exception End_of_file ->
      if Buffer.length buf = 0 then Eof else Tail (Buffer.contents buf)
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_str = function String s -> Some s | _ -> None
let to_list = function List vs -> Some vs | _ -> None
