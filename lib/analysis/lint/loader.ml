(* .cmt discovery and reading.  The analyzer consumes whatever typed
   trees dune has already produced (dune always passes -bin-annot), so
   "lint the repo" is: build, then point the loader at the build tree. *)

type error = { path : string; reason : string }

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let excluded excludes path =
  List.exists (fun e -> e <> "" && contains ~sub:e path) excludes

let rec scan acc dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> acc
  | entries ->
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc name ->
        if name = ".git" then acc
        else
          let path = Filename.concat dir name in
          if Sys.is_directory path then scan acc path
          else if Filename.check_suffix name ".cmt" then path :: acc
          else acc)
      acc entries

(* Returns units in deterministic order, de-duplicated by module name
   (the same unit can appear under several build contexts). *)
let load ~root ~excludes =
  let cmts = List.sort String.compare (scan [] root) in
  let seen = Hashtbl.create 64 in
  let units = ref [] in
  let errors = ref [] in
  List.iter
    (fun path ->
      if not (excluded excludes path) then
        match Cmt_format.read_cmt path with
        | exception e ->
          errors := { path; reason = Printexc.to_string e } :: !errors
        | cmt -> (
          let source_excluded =
            match cmt.Cmt_format.cmt_sourcefile with
            | Some f -> excluded excludes f
            | None -> false
          in
          if (not source_excluded) && not (Hashtbl.mem seen cmt.cmt_modname)
          then
            match cmt.Cmt_format.cmt_annots with
            | Cmt_format.Implementation str ->
              Hashtbl.replace seen cmt.cmt_modname ();
              (match Extract.of_structure ~modname:cmt.cmt_modname str with
              | u -> units := u :: !units
              | exception e ->
                errors := { path; reason = Printexc.to_string e } :: !errors)
            | _ -> ()))
    cmts;
  (List.rev !units, List.rev !errors)
