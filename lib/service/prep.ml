let resolved_mixers (spec : Request.spec) =
  match spec.Request.mixers with
  | Some m -> m
  | None -> Mdst.Engine.default_mixers spec.Request.ratio

type prepared = {
  summary : Response.summary;
  instr : Mdst.Instr.counters;
  plan : Mdst.Plan.t option;
  schedule : Mdst.Schedule.t option;
}

let run (spec : Request.spec) =
  let mixers = resolved_mixers spec in
  let hooks, counters = Mdst.Instr.collector ~mixers in
  match spec.Request.storage_limit with
  | None ->
    let result =
      Mdst.Engine.prepare ~instr:hooks
        {
          Mdst.Engine.ratio = spec.Request.ratio;
          demand = spec.Request.demand;
          algorithm = spec.Request.algorithm;
          scheduler = spec.Request.scheduler;
          mixers = spec.Request.mixers;
        }
    in
    {
      summary = Response.summary_of_metrics result.Mdst.Engine.metrics;
      instr = counters ();
      plan = Some result.Mdst.Engine.plan;
      schedule = Some result.Mdst.Engine.schedule;
    }
  | Some storage_limit ->
    let r =
      Mdst.Streaming.run ~instr:hooks ~algorithm:spec.Request.algorithm
        ~ratio:spec.Request.ratio ~demand:spec.Request.demand ~mixers
        ~storage_limit ~scheduler:spec.Request.scheduler ()
    in
    let fold f = List.fold_left f 0 r.Mdst.Streaming.passes in
    let summary =
      {
        Response.scheme =
          Mdst.Engine.scheme_name spec.Request.algorithm spec.Request.scheduler;
        mixers;
        demand = spec.Request.demand;
        tc = r.Mdst.Streaming.total_cycles;
        q =
          fold (fun acc pass -> max acc pass.Mdst.Streaming.q);
        tms =
          fold (fun acc pass -> acc + Mdst.Plan.tms pass.Mdst.Streaming.plan);
        waste = r.Mdst.Streaming.total_waste;
        input_total = r.Mdst.Streaming.total_inputs;
        trees =
          fold (fun acc pass -> acc + Mdst.Plan.trees pass.Mdst.Streaming.plan);
        passes = Mdst.Streaming.n_passes r;
        within_limit = r.Mdst.Streaming.within_limit;
      }
    in
    { summary; instr = counters (); plan = None; schedule = None }
