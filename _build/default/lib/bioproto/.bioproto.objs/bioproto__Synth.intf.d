lib/bioproto/synth.mli: Dmf
