type t = {
  labels : string list;
  index : (string, int) Hashtbl.t;
  cost : int option array array;
}

(* Distance from a flooded source to [dst]: the flood covers free cells
   and the source module's own cells, so a path reaches [dst] by
   stepping from some flooded neighbour [n] onto a boundary cell [c] of
   the destination rectangle and then walking inside the rectangle to
   the anchor.  The rectangle is convex and fully passable, so the
   inside walk costs exactly the Manhattan distance — taking the
   minimum over all (c, n) pairs reproduces the pairwise BFS distance. *)
let distance_from_flood layout dist dst =
  let width = Layout.width layout in
  let anchor = Chip_module.anchor dst in
  let r = dst.Chip_module.rect in
  let best = ref max_int in
  for dy = 0 to r.Geometry.h - 1 do
    for dx = 0 to r.Geometry.w - 1 do
      let c = { Geometry.x = r.Geometry.x + dx; y = r.Geometry.y + dy } in
      let inside = Geometry.manhattan c anchor in
      let consider (n : Geometry.point) =
        if Layout.in_bounds layout n then begin
          let d = dist.((n.Geometry.y * width) + n.Geometry.x) in
          if d >= 0 && d + 1 + inside < !best then best := d + 1 + inside
        end
      in
      List.iter consider (Geometry.neighbours4 c)
    done
  done;
  if !best = max_int then None else Some !best

let fill_row ?scratch layout modules cost i =
  let src = modules.(i) in
  let dist =
    Router.flood ?scratch layout ~allow:[ src.Chip_module.id ]
      ~start:(Chip_module.anchor src)
  in
  Array.iteri
    (fun j dst ->
      if i = j then cost.(i).(j) <- Some 0
      else cost.(i).(j) <- distance_from_flood layout dist dst)
    modules

let build ?scratch layout =
  let scratch =
    match scratch with Some s -> s | None -> Router.Scratch.create ()
  in
  let modules = Array.of_list (Layout.modules layout) in
  let labels = Array.to_list (Array.map (fun m -> m.Chip_module.id) modules) in
  let n = Array.length modules in
  let index = Hashtbl.create n in
  List.iteri (fun i id -> Hashtbl.add index id i) labels;
  let cost = Array.make_matrix n n None in
  for i = 0 to n - 1 do
    fill_row ~scratch layout modules cost i
  done;
  { labels; index; cost }

let update ?scratch t layout ~changed =
  let scratch =
    match scratch with Some s -> s | None -> Router.Scratch.create ()
  in
  let modules = Array.of_list (Layout.modules layout) in
  let n = Array.length modules in
  if n <> List.length t.labels then
    invalid_arg "Cost_matrix.update: module count changed";
  let cost = Array.map Array.copy t.cost in
  let t' = { t with cost } in
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.index id with
      | None -> invalid_arg (Printf.sprintf "Cost_matrix: unknown module %s" id)
      | Some i ->
        fill_row ~scratch layout modules cost i;
        (* Costs are symmetric: mirror the fresh row into the column so
           unchanged sources see the moved module's new position. *)
        for j = 0 to n - 1 do
          cost.(j).(i) <- cost.(i).(j)
        done)
    changed;
  t'

let lookup t id =
  match Hashtbl.find_opt t.index id with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Cost_matrix: unknown module %s" id)

let reachable t ~src ~dst = t.cost.(lookup t src).(lookup t dst) <> None

let cost t ~src ~dst =
  match t.cost.(lookup t src).(lookup t dst) with
  | Some c -> c
  | None ->
    invalid_arg (Printf.sprintf "Cost_matrix: %s unreachable from %s" dst src)

let labels t = t.labels

(* All-pairs build via one BFS per (src, dst) pair: the original
   implementation, kept as the differential reference for the
   single-source [build]. *)
let build_pairwise layout =
  let labels = List.map (fun m -> m.Chip_module.id) (Layout.modules layout) in
  let n = List.length labels in
  let index = Hashtbl.create n in
  List.iteri (fun i id -> Hashtbl.add index id i) labels;
  let cost = Array.make_matrix n n None in
  List.iteri
    (fun i src ->
      List.iteri
        (fun j dst ->
          if i = j then cost.(i).(j) <- Some 0
          else if j > i then begin
            let c = Router.Reference.distance layout ~src ~dst in
            cost.(i).(j) <- c;
            cost.(j).(i) <- c
          end)
        labels)
    labels;
  { labels; index; cost }

let render ?rows ?columns t =
  let rows = Option.value ~default:t.labels rows in
  let columns = Option.value ~default:t.labels columns in
  let cell src dst =
    match t.cost.(lookup t src).(lookup t dst) with
    | Some c -> string_of_int c
    | None -> "-"
  in
  let header = "" :: columns in
  let body = List.map (fun r -> r :: List.map (cell r) columns) rows in
  (* Column widths in one pass over the rows (no List.nth transpose). *)
  let widths = Array.make (List.length header) 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i s -> widths.(i) <- max widths.(i) (String.length s))
        row)
    (header :: body);
  let render_row row =
    String.concat " "
      (List.mapi (fun i cell -> Printf.sprintf "%*s" widths.(i) cell) row)
  in
  String.concat "\n" (List.map render_row (header :: body)) ^ "\n"
