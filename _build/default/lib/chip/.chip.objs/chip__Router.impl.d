lib/chip/router.ml: Chip_module Geometry Hashtbl Layout List Option Queue
