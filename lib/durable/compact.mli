(** Journal compaction: drop what the latest snapshot made redundant.

    A snapshot at sequence number [s] subsumes every record with
    [seq <= s], so any segment whose records all fall at or below [s]
    can be deleted, as can every older snapshot.  Whole files only —
    segments are rotated at snapshot time precisely so the boundary
    falls between files and no rewrite is needed. *)

val run : ?store:Plan_store.t -> dir:string -> upto:int -> unit -> int * int
(** [run ~dir ~upto] deletes journal segments that end at or before
    sequence [upto] and snapshots older than [upto]; returns
    [(segments_removed, snapshots_removed)].  A segment's end is
    inferred from the next segment's start, so the newest segment is
    never removed.  Deletion failures are ignored (compaction retries
    at the next snapshot).

    [store] additionally runs the plan store's size-bounded GC
    ({!Plan_store.gc}) on the same cadence — disk reclamation for the
    journal and the store happen at one well-defined point. *)
