(** The forest-scheduler registry — the one dispatch point.

    Every layer that picks a scheduler by value or by name — the
    streaming engine, the comparison tables, the assay planner, the
    service daemon, the CLI and the benchmarks — goes through this
    module.  A handle {!t} is a plain value (safe to store in specs,
    compare structurally and print); the policy it names is looked up in
    the registry at dispatch time.  Adding a scheduler is one
    {!register} call: the CLI flag, the daemon's [scheduler] JSON field,
    [dmfstream algorithms] and the registry equivalence tests all pick
    it up from here.

    The built-in entries are the paper's {!Mms} and {!Srs} plus the
    {!Oms} baseline scheduler. *)

type t
(** A registered scheduler.  Handles are ordinary immutable values:
    structural equality and polymorphic comparison are safe. *)

val mms : t
(** M_Mixers_Schedule, Algorithm 1. *)

val srs : t
(** Storage_Reduced_Scheduling, Algorithm 2. *)

val oms : t
(** Critical-path (Hu) list scheduling. *)

val name : t -> string
(** Canonical registry name, e.g. ["SRS"]. *)

val describe : t -> string
(** One-line description, shown by [dmfstream algorithms]. *)

val all : unit -> t list
(** Every registered scheduler, in registration order (built-ins
    first). *)

val register : name:string -> describe:string -> Sched_core.policy -> t
(** [register ~name ~describe policy] adds a scheduler to the registry
    and returns its handle.  Names are matched case-insensitively by
    {!of_string}.  @raise Invalid_argument on an empty or duplicate
    name. *)

val of_string : string -> (t, string) result
(** Case-insensitive lookup by name.  The error is the one-line
    rejection message shared by the daemon's JSON validation and the
    CLI argument parser, listing the registered names. *)

val to_string : t -> string
(** Same as {!name}; [of_string (to_string t) = Ok t]. *)

val schedule : ?instr:Instr.t -> t -> plan:Plan.t -> mixers:int -> Schedule.t
(** Dispatch to the handle's policy via {!Sched_core.run}.
    @raise Invalid_argument if [mixers < 1]. *)

val pp : Format.formatter -> t -> unit
