test/test_viz.ml: Alcotest Astring Chip Filename Generators List Mdst Mixtree Sim String Sys Viz
