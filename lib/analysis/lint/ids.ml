(* The rule registry.  IDs are stable: tests, suppressions and CI
   output all key on them, so a rule is never renumbered — new rules
   append.  Suppressions may name a rule by id ("DML002") or by name
   ("blocking-under-lock"). *)

type rule = {
  id : string;
  name : string;
  summary : string;
}

let bad_suppression =
  {
    id = "DML000";
    name = "bad-suppression";
    summary =
      "[@dmflint.allow] payload must be \"<rule>: <rationale>\" with a \
       non-empty rationale — a suppression is a reviewable claim";
  }

let lock_order =
  {
    id = "DML001";
    name = "lock-order";
    summary =
      "cycle in the interprocedural may-hold-while-acquiring lock-order \
       graph (potential deadlock), or a lock re-acquired while held";
  }

let blocking_under_lock =
  {
    id = "DML002";
    name = "blocking-under-lock";
    summary =
      "a blocking operation (Unix I/O, fsync, connect, sleep, join, queue \
       parking) may run while a mutex is held";
  }

let callback_under_lock =
  {
    id = "DML003";
    name = "callback-under-lock";
    summary =
      "a caller-supplied function value (callback / continuation) may be \
       invoked while a mutex is held";
  }

let condvar_mutex =
  {
    id = "DML004";
    name = "condvar-mutex";
    summary =
      "Condition.wait without its mutex held, with a mutex other than the \
       condvar's established pair, or parking while other locks are held";
  }

let fork_after_domain =
  {
    id = "DML005";
    name = "fork-after-domain";
    summary =
      "Unix.fork / Unix.create_process reachable after Domain.spawn in \
       program order, or a fork site without a preceding \
       Analysis.Runtime.assert_no_domains_spawned ()";
  }

let eintr_unsafe =
  {
    id = "DML006";
    name = "eintr-unsafe";
    summary =
      "raw interruptible Unix call in an executable that installs signal \
       handlers, without an EINTR guard or Analysis.Runtime.retry_eintr";
  }

let all =
  [
    bad_suppression;
    lock_order;
    blocking_under_lock;
    callback_under_lock;
    condvar_mutex;
    fork_after_domain;
    eintr_unsafe;
  ]

let by_name s =
  List.find_opt (fun r -> r.id = s || r.name = s) all
