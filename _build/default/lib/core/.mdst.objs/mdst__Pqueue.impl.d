lib/core/pqueue.ml: List
