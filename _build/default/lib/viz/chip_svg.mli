(** SVG rendering of a chip layout — the graphical Figure 5.

    Electrode grid with the placed modules coloured by kind and labelled;
    an optional wear heatmap shades each electrode by its actuation
    count. *)

val render : ?heatmap:int array array -> Chip.Layout.t -> string
(** A standalone SVG document.  [heatmap] must match the grid dimensions
    when given (as produced by {!Sim.Executor.run}). *)

val write : path:string -> ?heatmap:int array array -> Chip.Layout.t -> unit
(** Write the document to a file.  @raise Sys_error on IO failure. *)
