examples/dilution_series.mli:
