(** The server's view of a second plan-cache tier.

    The on-disk content-addressed store lives in [Durable.Plan_store],
    which depends on this library — so the server cannot name it.  As
    with the WAL hooks on {!Server.create}, the dependency is inverted:
    this record is the narrow interface the server consults on an LRU
    miss, and [dmfd] wires [Durable.Plan_store] into it.  All three
    closures must be safe to call from any worker domain. *)

type t = {
  find : Request.spec -> Prep.prepared option;
      (** Consulted on LRU miss, before planning.  Must return [None]
          rather than raise: a store failure costs a re-plan, never a
          request. *)
  add : Request.spec -> Prep.prepared -> unit;
      (** Write-through after a fresh plan is built. *)
  stats : unit -> Jsonl.t;
      (** Becomes the [plan_store] object of stats responses. *)
}
