(* Nodes are enqueued in (level, tree, bfs) order — "from level l upwards"
   — and dequeued first-in first-out, Mc per time-cycle.

   The main loop lives in {!Sched_core}; MMS is only the ready-set: a
   FIFO queue whose admission batches are sorted by (level, tree, bfs).
   Because that order is total — (tree, bfs) identifies a node — each
   released batch is exactly the batch the original per-cycle full-plan
   rescan admitted, so the schedules are bit-identical to the
   {!Naive.mms} reference while the whole run costs O(n log n) instead
   of O(n·Tc). *)
let enqueue_order a b =
  let na = a.Plan.level and nb = b.Plan.level in
  match Int.compare na nb with
  | 0 -> (
    match Int.compare a.Plan.tree b.Plan.tree with
    | 0 -> Int.compare a.Plan.bfs b.Plan.bfs
    | c -> c)
  | c -> c

module Policy = struct
  let name = "MMS"

  type state = Plan.node Queue.t

  let init ~plan:_ ~mixers:_ = Queue.create ()

  let release queue batch =
    List.iter (fun node -> Queue.push node queue) (List.sort enqueue_order batch)

  let ready queue = Queue.length queue
  let pick queue ~fired:_ = Queue.take_opt queue
end

let policy : Sched_core.policy = (module Policy)
let schedule ~plan ~mixers = Sched_core.run policy ~plan ~mixers
