lib/chip/actuation.ml: Chip_module Cost_matrix Layout List Mdst Option Printf Result Storage_alloc
