type t =
  | Element of { tag : string; attrs : (string * string) list; children : t list }
  | Text_node of string

let escape s =
  let buffer = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buffer "&lt;"
      | '>' -> Buffer.add_string buffer "&gt;"
      | '&' -> Buffer.add_string buffer "&amp;"
      | '"' -> Buffer.add_string buffer "&quot;"
      | '\'' -> Buffer.add_string buffer "&apos;"
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let f2s x =
  (* Compact float rendering: "12" rather than "12.". *)
  if Float.is_integer x && Float.abs x < 1e9 then
    string_of_int (int_of_float x)
  else Printf.sprintf "%.2f" x

let rect ~x ~y ~w ~h ?rx ?fill ?stroke ?opacity () =
  let attrs =
    [ ("x", f2s x); ("y", f2s y); ("width", f2s w); ("height", f2s h) ]
    @ (match rx with Some r -> [ ("rx", f2s r) ] | None -> [])
    @ (match fill with Some c -> [ ("fill", c) ] | None -> [])
    @ (match stroke with Some c -> [ ("stroke", c) ] | None -> [])
    @ (match opacity with Some o -> [ ("fill-opacity", f2s o) ] | None -> [])
  in
  Element { tag = "rect"; attrs; children = [] }

let line ~x1 ~y1 ~x2 ~y2 ?(stroke = "#333") ?(width = 1.) () =
  Element
    {
      tag = "line";
      attrs =
        [ ("x1", f2s x1); ("y1", f2s y1); ("x2", f2s x2); ("y2", f2s y2);
          ("stroke", stroke); ("stroke-width", f2s width) ];
      children = [];
    }

let text ~x ~y ?(size = 10.) ?(fill = "#111") ?(anchor = "start") content =
  Element
    {
      tag = "text";
      attrs =
        [ ("x", f2s x); ("y", f2s y); ("font-size", f2s size); ("fill", fill);
          ("text-anchor", anchor); ("font-family", "monospace") ];
      children = [ Text_node (escape content) ];
    }

let title content =
  Element { tag = "title"; attrs = []; children = [ Text_node (escape content) ] }

let group ?transform children =
  let attrs =
    match transform with Some t -> [ ("transform", t) ] | None -> []
  in
  Element { tag = "g"; attrs; children }

let rec render buffer = function
  | Text_node s -> Buffer.add_string buffer s
  | Element { tag; attrs; children } ->
    Buffer.add_char buffer '<';
    Buffer.add_string buffer tag;
    List.iter
      (fun (k, v) ->
        Buffer.add_string buffer
          (Printf.sprintf " %s=\"%s\"" k (escape v)))
      attrs;
    if children = [] then Buffer.add_string buffer "/>"
    else begin
      Buffer.add_char buffer '>';
      List.iter (render buffer) children;
      Buffer.add_string buffer (Printf.sprintf "</%s>" tag)
    end

let document ~width ~height children =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%s\" height=\"%s\" \
        viewBox=\"0 0 %s %s\">"
       (f2s width) (f2s height) (f2s width) (f2s height));
  List.iter (render buffer) children;
  Buffer.add_string buffer "</svg>";
  Buffer.contents buffer

let palette_colors =
  [|
    "#4e79a7"; "#f28e2b"; "#e15759"; "#76b7b2"; "#59a14f"; "#edc948";
    "#b07aa1"; "#ff9da7"; "#9c755f"; "#bab0ac"; "#1f77b4"; "#d62728";
  |]

let palette i =
  palette_colors.(abs i mod Array.length palette_colors)
