(** Plain-text table rendering for benches, examples and the CLI. *)

val table : header:string list -> rows:string list list -> string
(** [table ~header ~rows] renders an aligned text table with a rule under
    the header.  Ragged rows are padded with empty cells. *)

val section : string -> string
(** [section title] is a banner line for grouping several tables. *)

val float_cell : float -> string
(** One-decimal rendering, e.g. ["72.5"]. *)
