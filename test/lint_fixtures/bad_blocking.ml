(* DML002: sleeping while holding the lock stalls every other thread
   that needs it. *)

let m = Mutex.create ()

let slow_critical () =
  Mutex.lock m;
  Thread.delay 0.01;
  Mutex.unlock m
