lib/mixtree/entry.ml: Array Dmf Format Int List
