(* Remove the first entry with the given weight; [None] if absent. *)
let take_weight w entries =
  let rec go acc = function
    | [] -> None
    | e :: rest ->
      if e.Entry.weight = w then Some (e, List.rev_append acc rest)
      else go (e :: acc) rest
  in
  go [] entries

let rec build_entries entries k =
  match entries with
  | [] -> invalid_arg "Rma: empty entry multiset"
  | [ { Entry.fluid; weight } ] ->
    assert (weight = Dmf.Binary.pow2 k);
    Tree.Leaf fluid
  | _ :: _ :: _ -> (
    let half = Dmf.Binary.pow2 (k - 1) in
    match take_weight half entries with
    | Some (leaf_entry, others) ->
      (* Caterpillar step: a single reservoir loading covers one half. *)
      Tree.Mix (Tree.Leaf leaf_entry.Entry.fluid, build_entries others (k - 1))
    | None ->
      (* No loading of the right magnitude: split the largest one, then
         partition, spreading same-fluid duplicates across both sides. *)
      let entries =
        match Entry.split_largest entries with
        | Some split -> split
        | None -> entries
      in
      let left, right = Entry.balance_fluids (Entry.partition ~half entries) in
      Tree.Mix (build_entries left (k - 1), build_entries right (k - 1)))

let build r = build_entries (Entry.of_ratio r) (Dmf.Ratio.accuracy r)
