(** Instrumentation hooks of the scheduling core.

    {!Sched_core.run} accepts an optional hook record and invokes it at
    well-defined points of the event-driven main loop.  When no record
    is passed, the engine skips all bookkeeping (no storage tracking, no
    ready-set measurement) — instrumentation is strictly zero-cost when
    absent, and a hooked run produces the exact same schedule as an
    unhooked one.

    Hook timing, for one time-cycle [t]:

    + every node fired at [t] raises [on_fire];
    + firing a node first raises [on_evict] for each of its stored
      inputs (droplets of {!Plan.Output} or {!Plan.Reserve} sources),
      then [on_store] for each of its output droplets that has a
      consumer — even a droplet consumed on the very next cycle passes
      through storage accounting as a zero-residency store/evict pair;
    + after the last firing, [on_cycle] reports the cycle totals.

    [on_cycle]'s [stored] is measured after the cycle's evictions and
    before its productions — exactly the occupancy Algorithm 3 assigns
    to cycle [t], so the high-water mark over a run equals
    {!Storage.units}.  Reserve droplets are pre-seeded with [on_store]
    at cycle 0 before the first cycle runs. *)

type t = {
  on_cycle : cycle:int -> fired:int -> ready:int -> stored:int -> unit;
      (** End of a cycle: nodes fired this cycle, ready-set size after
          admission (before firing), and storage occupancy per Alg. 3. *)
  on_fire : cycle:int -> mixer:int -> node:Plan.node -> unit;
      (** A node is assigned to a mixer at a cycle. *)
  on_store : cycle:int -> source:Plan.source -> unit;
      (** A consumer-bound droplet enters storage accounting.  [cycle]
          is the production cycle (0 for pre-seeded reserves); the
          droplet occupies storage from [cycle + 1]. *)
  on_evict : cycle:int -> source:Plan.source -> unit;
      (** A stored droplet is consumed at [cycle]. *)
}

val none : t
(** All four hooks are no-ops. *)

(** Per-schedule counters aggregated by {!collector}.  A collector fed
    several runs (the passes of a streaming plan) accumulates: sums for
    [cycles], [fired], [stores] and [evictions]; maxima for the peaks;
    [avg_storage] and [mixer_occupancy] over all cycles seen. *)
type counters = {
  cycles : int;  (** Time-cycles run — the summed completion time. *)
  fired : int;  (** Mix-split operations — the summed node count. *)
  stores : int;  (** Droplets that entered storage accounting. *)
  evictions : int;  (** Stored droplets consumed (unused reserves stay). *)
  peak_storage : int;  (** High-water occupancy = [Storage.units]. *)
  avg_storage : float;  (** Mean per-cycle occupancy. *)
  peak_ready : int;  (** Ready-set high-water after admission. *)
  mixer_occupancy : float;  (** [fired / (mixers * cycles)]. *)
}

val collector : mixers:int -> t * (unit -> counters)
(** [collector ~mixers] is a hook record accumulating into a fresh set
    of counters, and the function reading them out. *)

val pp_counters : Format.formatter -> counters -> unit

val counters_to_fields : counters -> (string * float) list
(** Flat [(name, value)] pairs, in {!pp_counters} order — for JSON or
    tabular encoders that should not depend on the record layout. *)
