test/test_contamination.ml: Alcotest Chip Dmf Generators List Mdst Mixtree Sim
