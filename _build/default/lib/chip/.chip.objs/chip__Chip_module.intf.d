lib/chip/chip_module.mli: Dmf Format Geometry
