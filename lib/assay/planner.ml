type delivery = {
  deadline : int;
  emission : int;
  lateness : int;
  earliness : int;
}

type t = {
  streaming : Mdst.Streaming.t;
  pass_starts : int list;
  deliveries : delivery list;
  max_lateness : int;
  total_earliness : int;
  makespan : int;
  surplus : int;
}

(* Relative emission cycles of one pass, one entry per droplet (each
   component-tree root emits two). *)
let pass_emissions (pass : Mdst.Streaming.pass) =
  Mdst.Schedule.emission_order ~plan:pass.Mdst.Streaming.plan
    pass.Mdst.Streaming.schedule
  |> List.concat_map (fun (cycle, _) -> [ cycle; cycle ])
  |> List.sort Int.compare

let plan_with ~streaming ~deadlines =
  let demand = List.length deadlines in
  let passes = streaming.Mdst.Streaming.passes in
  let emissions_per_pass = List.map pass_emissions passes in
  (* Slice the deadline list into the chunks each pass serves, in pass
     order; the last pass may produce a surplus droplet. *)
  let chunks =
    let rec slice deadlines = function
      | [] -> []
      | emissions :: rest ->
        let n = List.length emissions in
        let chunk = List.filteri (fun i _ -> i < n) deadlines in
        let remaining =
          List.filteri (fun i _ -> i >= n) deadlines
        in
        (emissions, chunk) :: slice remaining rest
    in
    slice deadlines emissions_per_pass
  in
  (* Backward pass: the latest start of pass i so that (a) its own chunk
     deadlines hold and (b) the next pass can still start in time. *)
  let no_constraint = max_int / 4 in
  let latest_starts =
    List.fold_right
      (fun ((emissions, chunk), tc) acc ->
        let own =
          List.fold_left2
            (fun lim emission deadline -> min lim (deadline - emission))
            no_constraint
            (List.filteri (fun i _ -> i < List.length chunk) emissions)
            chunk
        in
        let next_bound =
          match acc with
          | [] -> no_constraint
          | next :: _ -> next - tc
        in
        min own next_bound :: acc)
      (List.map2
         (fun c (pass : Mdst.Streaming.pass) -> (c, pass.Mdst.Streaming.tc))
         chunks passes)
      []
  in
  (* Forward pass: start as late as allowed but never before the previous
     pass has finished (passes share the chip). *)
  let pass_starts, makespan =
    List.fold_left2
      (fun (starts, free_at) latest (pass : Mdst.Streaming.pass) ->
        let start = max free_at (max 0 latest) in
        (start :: starts, start + pass.Mdst.Streaming.tc))
      ([], 0) latest_starts passes
  in
  let pass_starts = List.rev pass_starts in
  let deliveries =
    List.concat
      (List.map2
         (fun start (emissions, chunk) ->
           List.map2
             (fun emission deadline ->
               let emission = start + emission in
               {
                 deadline;
                 emission;
                 lateness = max 0 (emission - deadline);
                 earliness = max 0 (deadline - emission);
               })
             (List.filteri (fun i _ -> i < List.length chunk) emissions)
             chunk)
         pass_starts chunks)
  in
  {
    streaming;
    pass_starts;
    deliveries;
    max_lateness = List.fold_left (fun acc d -> max acc d.lateness) 0 deliveries;
    total_earliness =
      List.fold_left (fun acc d -> acc + d.earliness) 0 deliveries;
    makespan;
    surplus =
      List.fold_left (fun acc e -> acc + List.length e) 0 emissions_per_pass
      - demand;
  }

(* Try every feasible even pass size and keep the plan with the least
   lateness, then the least buffer residency, then the least reactant. *)
let plan ~algorithm ~ratio ~mixers ~storage_limit ~scheduler ~requests =
  let deadlines = Demand.droplet_deadlines requests in
  let demand = List.length deadlines in
  let max_fit =
    Mdst.Streaming.max_demand_per_pass ~algorithm ~ratio ~mixers
      ~storage_limit ~scheduler ~max_demand:(demand + (demand land 1))
  in
  let candidates =
    match max_fit with
    | None -> [ None ]
    | Some top -> List.init (top / 2) (fun i -> Some (2 * (i + 1)))
  in
  let score t =
    ( t.max_lateness,
      t.total_earliness,
      t.streaming.Mdst.Streaming.total_inputs,
      Mdst.Streaming.n_passes t.streaming )
  in
  let build pass_size =
    let streaming =
      match pass_size with
      | None ->
        Mdst.Streaming.run ~algorithm ~ratio ~demand ~mixers ~storage_limit
          ~scheduler ()
      | Some pass_size ->
        Mdst.Streaming.run_fixed ~pass_size ~algorithm ~ratio ~demand ~mixers
          ~storage_limit ~scheduler ()
    in
    plan_with ~streaming ~deadlines
  in
  (* Candidate pass sizes are evaluated independently (each runs its own
     streaming plan); sweep them across domains and pick the best of the
     in-order results. *)
  match Mdst.Par.map build candidates with
  | [] -> assert false
  | first :: rest ->
    List.fold_left (fun best t -> if score t < score best then t else best)
      first rest

let feasible t = t.max_lateness = 0

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%d deliveries in %d pass(es), makespan %d:@ max lateness %d, total \
     earliness %d, surplus %d@]"
    (List.length t.deliveries)
    (Mdst.Streaming.n_passes t.streaming)
    t.makespan t.max_lateness t.total_earliness t.surplus
