type t = {
  on_cycle : cycle:int -> fired:int -> ready:int -> stored:int -> unit;
  on_fire : cycle:int -> mixer:int -> node:Plan.node -> unit;
  on_store : cycle:int -> source:Plan.source -> unit;
  on_evict : cycle:int -> source:Plan.source -> unit;
}

let none =
  {
    on_cycle = (fun ~cycle:_ ~fired:_ ~ready:_ ~stored:_ -> ());
    on_fire = (fun ~cycle:_ ~mixer:_ ~node:_ -> ());
    on_store = (fun ~cycle:_ ~source:_ -> ());
    on_evict = (fun ~cycle:_ ~source:_ -> ());
  }

type counters = {
  cycles : int;
  fired : int;
  stores : int;
  evictions : int;
  peak_storage : int;
  avg_storage : float;
  peak_ready : int;
  mixer_occupancy : float;
}

type acc = {
  mutable cycles : int;
  mutable fired : int;
  mutable stores : int;
  mutable evictions : int;
  mutable peak_storage : int;
  mutable stored_sum : int;
  mutable peak_ready : int;
}

let collector ~mixers =
  if mixers < 1 then invalid_arg "Instr.collector: at least one mixer";
  let a =
    {
      cycles = 0;
      fired = 0;
      stores = 0;
      evictions = 0;
      peak_storage = 0;
      stored_sum = 0;
      peak_ready = 0;
    }
  in
  let hooks =
    {
      on_cycle =
        (fun ~cycle:_ ~fired ~ready ~stored ->
          a.cycles <- a.cycles + 1;
          a.fired <- a.fired + fired;
          a.stored_sum <- a.stored_sum + stored;
          if stored > a.peak_storage then a.peak_storage <- stored;
          if ready > a.peak_ready then a.peak_ready <- ready);
      on_fire = (fun ~cycle:_ ~mixer:_ ~node:_ -> ());
      on_store = (fun ~cycle:_ ~source:_ -> a.stores <- a.stores + 1);
      on_evict = (fun ~cycle:_ ~source:_ -> a.evictions <- a.evictions + 1);
    }
  in
  let read () =
    let cycles = a.cycles in
    {
      cycles;
      fired = a.fired;
      stores = a.stores;
      evictions = a.evictions;
      peak_storage = a.peak_storage;
      avg_storage =
        (if cycles = 0 then 0.
         else float_of_int a.stored_sum /. float_of_int cycles);
      peak_ready = a.peak_ready;
      mixer_occupancy =
        (if cycles = 0 then 0.
         else float_of_int a.fired /. float_of_int (mixers * cycles));
    }
  in
  (hooks, read)

let counters_to_fields (c : counters) =
  [
    ("cycles", float_of_int c.cycles);
    ("fired", float_of_int c.fired);
    ("stores", float_of_int c.stores);
    ("evictions", float_of_int c.evictions);
    ("peak_storage", float_of_int c.peak_storage);
    ("avg_storage", c.avg_storage);
    ("peak_ready", float_of_int c.peak_ready);
    ("mixer_occupancy", c.mixer_occupancy);
  ]

let pp_counters ppf (c : counters) =
  Format.fprintf ppf
    "@[<v>cycles %d, fired %d, stores %d, evictions %d@ peak storage %d, avg \
     storage %.2f, peak ready %d, mixer occupancy %.2f@]"
    c.cycles c.fired c.stores c.evictions c.peak_storage c.avg_storage
    c.peak_ready c.mixer_occupancy
