examples/quickstart.ml: Dmf Format Mdst Mixtree
