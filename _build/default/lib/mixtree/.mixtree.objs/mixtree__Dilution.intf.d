lib/mixtree/dilution.mli: Dmf Tree
