(** Target mixture ratios.

    A target mixture [M] of [N >= 2] fluids is specified by an integer
    ratio [a1 : a2 : ... : aN] whose sum is the ratio-sum [L = 2^d], where
    [d] is the accuracy level: a depth-[d] mixing tree realises each
    concentration factor with error below [1 / 2^d] (Section 2.1 of the
    paper).  Every part is at least 1 — a fluid absent from the mixture is
    simply not listed. *)

type t
(** A validated target ratio. *)

val make : ?names:string array -> int array -> t
(** [make parts] validates and builds a ratio.
    @raise Invalid_argument if fewer than two parts are given, any part is
    [< 1], the sum is not a power of two, or [names] has a different length
    than [parts]. *)

val of_string : string -> t
(** [of_string "2:1:1:1:1:1:9"] parses the paper's colon-separated ratio
    notation.  @raise Invalid_argument on malformed input. *)

val parts : t -> int array
(** [parts r] is a fresh copy of the integer parts. *)

val part : t -> int -> int
(** [part r i] is [ai].  @raise Invalid_argument on out-of-range [i]. *)

val n_fluids : t -> int
(** [n_fluids r] is [N], the number of constituent fluids. *)

val sum : t -> int
(** [sum r] is the ratio-sum [L = 2^d]. *)

val accuracy : t -> int
(** [accuracy r] is the accuracy level [d] with [sum r = 2^d]. *)

val names : t -> string array
(** [names r] are the display names of the fluids ([x1 .. xN] by
    default). *)

val fluids : t -> Fluid.t list
(** [fluids r] is the list of fluid identifiers [x1; ...; xN]. *)

val equal : t -> t -> bool
(** Structural equality on the parts (names are ignored). *)

val compare : t -> t -> int
(** Total order on the parts (length first, then lexicographic); names
    are ignored, consistently with {!equal}. *)

val hash : t -> int
(** Structural hash of the parts, consistent with {!equal} — ratios can
    key [Hashtbl] tables (memo caches of trees and plans). *)

val key : t -> string
(** Canonical cache key, ["a1:a2:...:aN"] — equal ratios have equal keys
    regardless of fluid names. *)

val rescale : t -> d:int -> t
(** [rescale r ~d] re-approximates [r] on the scale [2^d] (see
    {!approximate}).  Useful to study the same protocol at several accuracy
    levels, as in Table 4 of the paper. *)

val approximate : ?names:string array -> d:int -> float array -> t
(** [approximate ~d percents] rounds a volumetric percentage vector (for
    instance the PCR master-mix [{10; 8; 0.8; 0.8; 1; 1; 78.4}]) to an
    integer ratio summing to [2^d], with every part at least 1, using the
    largest-remainder method.
    @raise Invalid_argument if any percentage is non-positive, or if there
    are more fluids than [2^d] parts available. *)

val approximation_error : t -> float array -> float
(** [approximation_error r percents] is the maximum absolute CF error
    [max_i |ai / 2^d - pi / sum p|] of [r] with respect to the exact
    percentage vector — below [1 / 2^d] when each ideal part is at least
    one (Section 2.1). *)

val to_string : t -> string
(** Colon-separated rendering, e.g. ["2:1:1:1:1:1:9"]. *)

val pp : Format.formatter -> t -> unit
