lib/core/plan.mli: Dmf Format
