lib/core/forest.mli: Dmf Mixtree Plan
