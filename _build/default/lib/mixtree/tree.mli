(** Mixing trees.

    A mixing tree is the binary-tree representation of the (1:1) mix-split
    steps needed to prepare a target mixture from its constituent fluids
    (Section 2.1).  A leaf is a unit droplet of a pure input fluid; an
    internal node mixes the droplets produced by its two children and
    splits the result into two unit droplets — one consumed by the parent,
    the other discarded as waste (except at the root, where both droplets
    are targets).

    A leaf at depth [delta] contributes [2^-delta] of the final volume, so
    a tree of depth [d] realises ratios on the scale [2^d] exactly. *)

type t =
  | Leaf of Dmf.Fluid.t
  | Mix of t * t

val depth : t -> int
(** [depth t] is the length of the longest root-to-leaf path ([Leaf] has
    depth 0). *)

val internal_count : t -> int
(** [internal_count t] is the number of mix-split steps of one pass of the
    tree — the per-pass [Tms]. *)

val leaf_count : t -> int
(** [leaf_count t] is the number of input droplets of one pass. *)

val waste_count : t -> int
(** [waste_count t] is the number of waste droplets of one stand-alone
    pass: one per non-root internal node ([internal_count t - 1]); a bare
    leaf produces no waste. *)

val input_vector : n:int -> t -> int array
(** [input_vector ~n t] counts leaf droplets per fluid — the per-pass
    [I\[\]] over a universe of [n] fluids. *)

val value : n:int -> t -> Dmf.Mixture.t
(** [value ~n t] is the exact mixture value of the droplets emitted at the
    root of [t]. *)

val validate : ratio:Dmf.Ratio.t -> t -> (unit, string) result
(** [validate ~ratio t] checks that [t] realises [ratio]: the root value
    equals the target and the depth does not exceed the accuracy level. *)

val subtrees_by_level : d:int -> t -> (int * t) list
(** [subtrees_by_level ~d t] lists every subtree of [t] paired with its
    level in the paper's numbering (the root of the base tree is at level
    [d], its children at [d - 1], ...).  Leaves are included at their
    level. *)

val equal : t -> t -> bool

val pp : ?names:string array -> Format.formatter -> t -> unit
(** ASCII rendering of the tree structure with per-node values. *)
