(* Deterministic merge of per-shard stats responses.

   The router's stats answer must be a function of the shard answers
   alone — same inputs, same output, independent of fan-out completion
   order — so the bench and the CI smoke can assert on it.  Counters
   are summed, avg_latency_ms is weighted by each shard's served count,
   uptime_s is the oldest shard's, plan-store counters are summed (with
   the on-disk totals taken as maxima, since shards share one store
   directory), and everything per-shard (including the nested
   durability [wal] and [replication] objects, which have no meaningful
   sum) is kept verbatim under a [shards] array in ring-index order.

   A shard may carry a follower probe: its body is merged into the
   summed counters too (a follower's cache hits answered requests the
   primary never saw), its verbatim fields nest under the shard entry's
   [follower] object, and the [cluster] and [replication] summaries
   count roles and the worst follower lag. *)

module Jsonl = Service.Jsonl

type probe = Shard_client.stats * Jsonl.t option

let geti name json =
  match Option.bind (Jsonl.member name json) Jsonl.to_int with
  | Some v -> v
  | None -> 0

let getf name json =
  match Option.bind (Jsonl.member name json) Jsonl.to_float with
  | Some v -> v
  | None -> 0.

(* Fields of the daemon's stats body that merge by summation. *)
let summed_fields =
  [ "queue_depth"; "workers"; "served"; "errors"; "coalesced"; "jobs";
    "plans_built" ]

let cache_fields = [ "hits"; "misses"; "evictions"; "size"; "capacity" ]

(* Per-handle plan-store counters sum across shards; [entries] and
   [bytes] do not — the shards of one cluster share a single store
   directory, so each reports the same files and the merged view takes
   the maximum instead of counting them once per shard. *)
let store_summed_fields =
  [ "hits"; "misses"; "writes"; "errors"; "gc_runs"; "gc_removed";
    "served_from_store" ]

let store_max_fields = [ "entries"; "bytes"; "max_bytes" ]

(* Per-node fields kept verbatim inside a shard (or follower) entry. *)
let kept_fields =
  summed_fields
  @ [ "cache"; "avg_latency_ms"; "uptime_s"; "wal"; "plan_store";
      "replication" ]

let node_entry ((c : Shard_client.stats), stats) =
  [
    ("addr", Jsonl.String c.Shard_client.addr);
    ("healthy", Jsonl.Bool c.Shard_client.healthy);
    ("sent", Jsonl.Int c.Shard_client.sent);
    ("answered", Jsonl.Int c.Shard_client.answered);
    ("failed", Jsonl.Int c.Shard_client.failed);
    ("connects", Jsonl.Int c.Shard_client.connects);
  ]
  @
  match stats with
  | Some s ->
    let keep name =
      match Jsonl.member name s with Some v -> [ (name, v) ] | None -> []
    in
    List.concat_map keep kept_fields
  | None -> []

let repl_role body =
  Option.bind (Jsonl.member "replication" body) (fun r ->
      Option.bind (Jsonl.member "role" r) Jsonl.to_str)

let merge entries =
  let primaries = List.map fst entries in
  let followers = List.filter_map snd entries in
  let answered =
    List.filter_map (fun (_, stats) -> stats) (primaries @ followers)
  in
  let sum get name = List.fold_left (fun acc s -> acc + get name s) 0 answered in
  let counters =
    List.map (fun name -> (name, Jsonl.Int (sum geti name))) summed_fields
  in
  let cache =
    Jsonl.Obj
      (List.map
         (fun name ->
           ( name,
             Jsonl.Int
               (List.fold_left
                  (fun acc s ->
                    match Jsonl.member "cache" s with
                    | Some c -> acc + geti name c
                    | None -> acc)
                  0 answered) ))
         cache_fields)
  in
  let served_total = sum geti "served" in
  let avg_latency_ms =
    if served_total = 0 then 0.
    else
      List.fold_left
        (fun acc s ->
          acc +. (getf "avg_latency_ms" s *. float_of_int (geti "served" s)))
        0. answered
      /. float_of_int served_total
  in
  let uptime_s =
    List.fold_left (fun acc s -> Float.max acc (getf "uptime_s" s)) 0. answered
  in
  let stores =
    List.filter_map (fun s -> Jsonl.member "plan_store" s) answered
  in
  let plan_store =
    if stores = [] then []
    else
      [
        ( "plan_store",
          Jsonl.Obj
            (List.map
               (fun name ->
                 ( name,
                   Jsonl.Int
                     (List.fold_left (fun acc st -> acc + geti name st) 0 stores)
                 ))
               store_summed_fields
            @ List.filter_map
                (fun name ->
                  let vs = List.filter_map (Jsonl.member name) stores in
                  let ints = List.filter_map Jsonl.to_int vs in
                  match ints with
                  | [] -> None
                  | _ ->
                    Some
                      (name, Jsonl.Int (List.fold_left Int.max 0 ints)))
                store_max_fields) );
      ]
  in
  (* Role census plus the worst follower lag — only present when some
     node reported a [replication] object at all. *)
  let repl_bodies =
    List.filter_map (fun s -> Jsonl.member "replication" s) answered
  in
  let replication =
    if repl_bodies = [] then []
    else
      let count role =
        List.length
          (List.filter
             (fun s -> repl_role s = Some role)
             answered)
      in
      let max_lag get =
        List.fold_left (fun acc r -> Float.max acc (get r)) 0. repl_bodies
      in
      [
        ( "replication",
          Jsonl.Obj
            [
              ("primaries", Jsonl.Int (count "primary"));
              ("followers", Jsonl.Int (count "follower"));
              ( "max_lag_records",
                Jsonl.Int
                  (int_of_float (max_lag (fun r -> float_of_int (geti "lag_records" r)))) );
              ("max_lag_ms", Jsonl.Float (max_lag (getf "lag_ms")));
            ] );
      ]
  in
  let shard_entries =
    List.map
      (fun (primary, follower) ->
        Jsonl.Obj
          (node_entry primary
          @
          match follower with
          | Some probe -> [ ("follower", Jsonl.Obj (node_entry probe)) ]
          | None -> []))
      entries
  in
  let healthy probes =
    List.length
      (List.filter (fun ((c : Shard_client.stats), _) -> c.healthy) probes)
  in
  Jsonl.Obj
    (counters
    @ [
        ("cache", cache);
        ("avg_latency_ms", Jsonl.Float avg_latency_ms);
        ("uptime_s", Jsonl.Float uptime_s);
      ]
    @ plan_store
    @ replication
    @ [
        ( "cluster",
          Jsonl.Obj
            [
              ("shards", Jsonl.Int (List.length entries));
              ("healthy", Jsonl.Int (healthy primaries));
              ("followers", Jsonl.Int (List.length followers));
              ("followers_healthy", Jsonl.Int (healthy followers));
            ] );
        ("shards", Jsonl.List shard_entries);
      ])
