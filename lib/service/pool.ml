type t = { domains : unit Domain.t array }

let worker_loop queue handler () =
  let rec loop () =
    match Queue.take queue with
    | None -> ()
    | Some job ->
      (try Mdst.Par.serialized (fun () -> handler job)
       with e ->
         (* Idempotent: a no-op if the handler already fulfilled. *)
         Queue.fulfil job (Error (Printexc.to_string e)));
      loop ()
  in
  loop ()

let start ~workers ~handler queue =
  if workers < 1 then invalid_arg "Pool.start: at least one worker";
  Analysis.Runtime.note_domain_spawn ();
  { domains = Array.init workers (fun _ -> Domain.spawn (worker_loop queue handler)) }

let workers t = Array.length t.domains

let join t = Array.iter Domain.join t.domains
