lib/core/storage.ml: Array List Plan Schedule
