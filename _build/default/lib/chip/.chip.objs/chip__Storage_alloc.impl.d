lib/chip/storage_alloc.ml: Hashtbl List Mdst Printf
