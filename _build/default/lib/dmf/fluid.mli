(** Input fluids (reactants).

    A fluid is one of the [N] reactants of a target mixture, supplied at
    CF = 100% from an on-chip reservoir.  Fluids are identified by their
    index in the target ratio; display names (["x1"], ["dNTPs"], ...) are
    carried separately by {!Ratio.t}. *)

type t
(** A fluid identifier. *)

val make : int -> t
(** [make i] is the fluid with 0-based index [i].
    @raise Invalid_argument if [i < 0]. *)

val index : t -> int
(** [index f] is the 0-based index of [f] in the target ratio. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val default_name : t -> string
(** [default_name f] is the paper's naming scheme: fluid [i] is
    ["x<i+1>"]. *)

val pp : Format.formatter -> t -> unit
(** [pp] prints the default name. *)
